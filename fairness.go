// Package fairness is a Go implementation of utility-based protocol
// fairness from "How Fair is Your Protocol? A Utility-based Approach to
// Protocol Optimality" (Garay, Katz, Tackmann, Zikas — PODC 2015).
//
// The library provides:
//
//   - a synchronous protocol-execution engine with rushing, adaptively
//     corrupting adversaries and hybrid setup phases (sub-package
//     internal/sim, surfaced here through type aliases);
//   - the paper's utility machinery: payoff vectors ~γ over the fairness
//     events E00/E01/E10/E11, Monte-Carlo estimation of the attacker
//     utility u_A(Π, A), the relative-fairness relation, optimal and
//     utility-balanced fairness, and corruption costs;
//   - the paper's protocols: the contract-signing pair Π1/Π2, the
//     optimally fair ΠOpt-2SFE and ΠOpt-nSFE, the honest-majority
//     Π_GMW^{1/2}, the Lemma 18 and Π0 separation protocols, and the
//     Gordon–Katz 1/p-secure protocols with the leaky Π̃;
//   - an attack-strategy library including the proof-optimal
//     lock-and-abort adversaries; and
//   - the experiment harness regenerating every theorem/lemma of the
//     paper as a paper-vs-measured table (cmd/fairness).
//
// Quick start — measure how fair a protocol is:
//
//	gamma := fairness.StandardPayoff()
//	proto := fairness.NewOptimalTwoParty(fairness.Swap())
//	report, err := fairness.EstimateUtility(proto,
//	    fairness.NewAgen(), gamma, sampler, 2000, 1)
//	// report.Utility ≈ (γ10+γ11)/2 — the Theorem 3/4 optimum.
package fairness

import (
	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/protocols/contract"
	"repro/internal/protocols/gordonkatz"
	"repro/internal/protocols/multiparty"
	"repro/internal/protocols/twoparty"
	"repro/internal/search"
	"repro/internal/sim"
	"repro/internal/sim/trace"
	"repro/internal/stats"
	"repro/internal/transport"
)

// Core model types.
type (
	// Payoff is the vector ~γ = (γ00, γ01, γ10, γ11).
	Payoff = core.Payoff
	// Event is one of the fairness events E00/E01/E10/E11.
	Event = core.Event
	// Outcome is the ideal-world interpretation of one execution.
	Outcome = core.Outcome
	// UtilityReport summarizes a Monte-Carlo utility estimation.
	UtilityReport = core.UtilityReport
	// SupReport is the result of a sup-utility search.
	SupReport = core.SupReport
	// NamedAdversary pairs a strategy with a label.
	NamedAdversary = core.NamedAdversary
	// StrategySpace is a lazily enumerable strategy space — the domain
	// of the Definition 1 sup as SupUtilitySpace and the best-response
	// search engine see it.
	StrategySpace = core.StrategySpace
	// SliceSpace adapts an eager []NamedAdversary to StrategySpace.
	SliceSpace = core.SliceSpace
	// BoundedSpace is a StrategySpace with axes, coordinates, and static
	// per-strategy utility upper bounds for branch-and-bound pruning.
	BoundedSpace = core.BoundedSpace
	// StrategyAxis is one dimension of a structured strategy space.
	StrategyAxis = core.Axis
	// InputSampler draws one input vector per run (the environment Z).
	InputSampler = core.InputSampler
	// InputSamplerInto is the allocation-free InputSampler variant used
	// with WithSamplerInto on the compiled hot path.
	InputSamplerInto = core.InputSamplerInto
	// EstimatorOption configures EstimateUtility / SupUtility
	// (parallelism, batch size, observers, metrics). Options tune
	// scheduling and instrumentation only — the estimate is a pure
	// function of (runs, seed).
	EstimatorOption = core.Option
	// ObserverFactory builds one engine observer per estimation run.
	ObserverFactory = core.ObserverFactory
	// SupObserverFactory builds per-run observers keyed by strategy label.
	SupObserverFactory = core.SupObserverFactory
	// Relation orders two protocols under Definition 1.
	Relation = core.Relation
	// PerTUtilities holds best t-adversary utilities for t = 1..n−1.
	PerTUtilities = core.PerTUtilities
	// CostFn is a symmetric corruption-cost function.
	CostFn = core.CostFn
	// Estimate is a Monte-Carlo mean with confidence interval.
	Estimate = stats.Estimate
)

// Engine types.
type (
	// Protocol is a synchronous protocol runnable by the engine.
	Protocol = sim.Protocol
	// Party is one protocol machine.
	Party = sim.Party
	// Adversary is an attack strategy.
	Adversary = sim.Adversary
	// AdversaryCloner is the optional capability the parallel estimator
	// uses to give each worker an independent strategy copy.
	AdversaryCloner = sim.AdversaryCloner
	// Message is a round message.
	Message = sim.Message
	// PartyID identifies a party (1-based).
	PartyID = sim.PartyID
	// Value is a protocol input or output.
	Value = sim.Value
	// Trace records one execution.
	Trace = sim.Trace
	// Passive is the no-corruption adversary.
	Passive = sim.Passive
	// OutputRecord is one party's final output (value, ⊥ flag).
	OutputRecord = sim.OutputRecord
	// Observer receives the engine's event stream during an execution.
	Observer = sim.Observer
	// NopObserver is an embeddable all-no-op Observer.
	NopObserver = sim.NopObserver
	// EngineMetrics counts engine events (runs, rounds, messages, …).
	EngineMetrics = sim.Metrics
	// Execution is one protocol run decomposed into callable phases
	// (SetupPhase, Step, Finalize).
	Execution = sim.Execution
	// PartyBackend runs the party machines for an Execution (in-memory
	// or, via the transport, in remote processes).
	PartyBackend = sim.PartyBackend
	// FailStopInfo records why and when a party fail-stopped (the
	// fail-stop → abort-adversary degradation).
	FailStopInfo = sim.FailStopInfo
	// FailStopObserver is the optional Observer extension receiving
	// fail-stop abort events.
	FailStopObserver = sim.FailStopObserver
)

// Events.
const (
	E00 = core.E00
	E01 = core.E01
	E10 = core.E10
	E11 = core.E11
)

// Fairness relations.
const (
	StrictlyFairer   = core.StrictlyFairer
	EquallyFair      = core.EquallyFair
	StrictlyLessFair = core.StrictlyLessFair
)

// Payoff vectors.
var (
	// StandardPayoff is ~γ = (0, 0, 1, 1/2) ∈ Γ+fair.
	StandardPayoff = core.StandardPayoff
	// GordonKatzPayoff is ~γ = (0, 0, 1, 0) from Section 5.
	GordonKatzPayoff = core.GordonKatzPayoff
)

// Execution and measurement.
var (
	// Run executes one protocol instance against an adversary.
	Run = sim.Run
	// RunObserved is Run with engine observers attached.
	RunObserved = sim.RunObserved
	// NewExecution opens a stepwise execution (SetupPhase/Step/Finalize).
	NewExecution = sim.NewExecution
	// NewExecutionWithBackend is NewExecution on an explicit PartyBackend.
	NewExecutionWithBackend = sim.NewExecutionWithBackend
	// Classify maps a trace to its ideal-world outcome.
	Classify = core.Classify
	// EstimateUtility measures u_A(Π, A) by Monte-Carlo simulation on
	// the batched estimation engine. Configure it with options:
	//
	//	fairness.EstimateUtility(proto, adv, gamma, sampler, runs, seed,
	//	    fairness.WithParallelism(4), fairness.WithObserver(factory))
	//
	// The report is bit-identical for any option combination (see the
	// determinism contract in internal/core).
	EstimateUtility = core.EstimateUtility
	// SupUtility approximates sup_A u_A(Π, A) over an eager strategy
	// slice; it is the documented one-line adapter over SupUtilitySpace
	// via SliceSpace and takes the same options as EstimateUtility.
	SupUtility = core.SupUtility
	// SupUtilitySpace approximates sup_A u_A(Π, A) over a StrategySpace
	// by exhaustive enumeration (use Search for racing elimination).
	SupUtilitySpace = core.SupUtilitySpace
	// WithParallelism sets the estimation worker count (<= 0 selects
	// DefaultParallelism).
	WithParallelism = core.WithParallelism
	// WithBatchSize sets how many runs a worker leases at a time.
	WithBatchSize = core.WithBatchSize
	// WithObserver attaches a per-run engine observer factory.
	WithObserver = core.WithObserver
	// WithSupObserver attaches per-run observers keyed by strategy label.
	WithSupObserver = core.WithSupObserver
	// WithMetrics accumulates merged engine counters into a caller's
	// sim.Metrics across estimations.
	WithMetrics = core.WithMetrics
	// WithCompiledPlans toggles compiled execution plans on the
	// estimator hot path (on by default; results are bit-identical
	// either way, with automatic interpreter fallback for pairs whose
	// plan probe fails).
	WithCompiledPlans = core.WithCompiledPlans
	// WithSamplerInto installs an allocation-free input sampler that
	// refills engine-owned buffers instead of allocating per run.
	WithSamplerInto = core.WithSamplerInto
	// DefaultParallelism is the worker count used for parallelism <= 0.
	DefaultParallelism = core.DefaultParallelism
	// CloneAdversary copies a strategy for an estimation worker.
	CloneAdversary = sim.CloneAdversary
	// NewAdversaryFactory adapts a constructor function into a cloneable
	// strategy for the parallel estimator.
	NewAdversaryFactory = adversary.NewFactory
	// Compare orders two sup-utilities under Definition 1.
	Compare = core.Compare
	// AtLeastAsFair is the ⪰γ relation.
	AtLeastAsFair = core.AtLeastAsFair
	// FixedInputs builds a constant input sampler.
	FixedInputs = core.FixedInputs
)

// Closed-form bounds.
var (
	TwoPartyOptimalBound   = core.TwoPartyOptimalBound
	MultiPartyTBound       = core.MultiPartyTBound
	MultiPartyOptimalBound = core.MultiPartyOptimalBound
	BalancedSumBound       = core.BalancedSumBound
	GordonKatzBound        = core.GordonKatzBound
	IdealBound             = core.IdealBound
)

// Balance and corruption costs.
var (
	IsUtilityBalanced = core.IsUtilityBalanced
	IsPhiFair         = core.IsPhiFair
	IsIdeallyCFair    = core.IsIdeallyCFair
	OptimalCost       = core.OptimalCost
	ZeroCost          = core.ZeroCost
	LinearCost        = core.LinearCost
	Dominates         = core.Dominates
	StrictlyDominates = core.StrictlyDominates
)

// Adversary strategies.
var (
	// NewStatic corrupts a fixed set and runs it honestly.
	NewStatic = adversary.NewStatic
	// NewLockAbort is the A1/A2/A_ī lock-and-abort family.
	NewLockAbort = adversary.NewLockAbort
	// NewAllBut corrupts everyone except one party.
	NewAllBut = adversary.NewAllBut
	// NewAgen is the Theorem 4 mixed adversary.
	NewAgen = adversary.NewAgen
	// NewAllButMixer is the Lemma 13 mixed adversary.
	NewAllButMixer = adversary.NewAllButMixer
	// NewAbortAt aborts at a fixed round.
	NewAbortAt = adversary.NewAbortAt
	// NewSetupAbort aborts the hybrid setup.
	NewSetupAbort = adversary.NewSetupAbort
	// TwoPartySpace is the standard two-party strategy space.
	TwoPartySpace = adversary.TwoPartySpace
	// MultiPartyTSpace is the t-adversary strategy space.
	MultiPartyTSpace = adversary.MultiPartyTSpace
	// MultiPartySpace is the full multi-party strategy space.
	MultiPartySpace = adversary.MultiPartySpace
	// NewRawTwoParty is the raw two-party BoundedSpace (corrupted set ×
	// abort round × input substitution) the search engine races over.
	NewRawTwoParty = adversary.NewRawTwoParty
	// WithSubstitutions adds an input-substitution axis to NewRawTwoParty.
	WithSubstitutions = adversary.WithSubstitutions
	// WithFirstHit adds a protocol-specific first-hit arm to
	// NewRawTwoParty (e.g. fairness.NewFirstHit for Gordon–Katz).
	WithFirstHit = adversary.WithFirstHit
)

// Best-response search (racing + branch-and-bound over strategy
// spaces; see internal/search and DESIGN.md §11).
type (
	// SearchOptions tunes the racing schedule (wave sizes, elimination
	// confidence δ, beam width, checkpoint path).
	SearchOptions = search.Options
	// SearchReport is a search outcome: the certified best response,
	// per-arm results, and the run-savings accounting.
	SearchReport = search.Report
	// SearchArm is one strategy's fate inside a search.
	SearchArm = search.ArmResult
	// RawSpaceOption configures NewRawTwoParty.
	RawSpaceOption = adversary.RawOption
)

var (
	// Search races a StrategySpace to its best response, certifying the
	// winner at full resolution while eliminating dominated arms early.
	Search = search.Run
	// SearchContext is Search with cancellation.
	SearchContext = search.RunContext
)

// Two-party protocols.
type (
	// TwoPartyFunction describes a two-party function for ΠOpt-2SFE.
	TwoPartyFunction = twoparty.Function
)

var (
	// NewOptimalTwoParty is ΠOpt-2SFE (Section 4.1).
	NewOptimalTwoParty = twoparty.New
	// NewFixedOrderTwoParty is the unfair fixed-order baseline.
	NewFixedOrderTwoParty = twoparty.NewFixedOrder
	// NewOneRoundTwoParty is the Lemma 10 single-round strawman.
	NewOneRoundTwoParty = twoparty.NewOneRound
	// Swap is the paper's swap function f_swp.
	Swap = twoparty.Swap
	// Millionaires is [x1 > x2].
	Millionaires = twoparty.Millionaires
)

// Contract signing (Introduction).
type (
	// Pi1 is the naive contract-signing protocol.
	Pi1 = contract.Pi1
	// Pi2 is the coin-toss-ordered variant.
	Pi2 = contract.Pi2
	// ContractPair is the protocols' global output.
	ContractPair = contract.Pair
)

// Multi-party protocols.
type (
	// MultiPartyFunction describes an n-party function.
	MultiPartyFunction = multiparty.Function
)

var (
	// NewOptimalMultiParty is ΠOpt-nSFE (Section 4.2).
	NewOptimalMultiParty = multiparty.NewOptN
	// NewGMWHalf is the honest-majority Π_GMW^{1/2} (Lemma 17).
	NewGMWHalf = multiparty.NewGMWHalf
	// NewLemma18 is the optimal-but-unbalanced protocol of Lemma 18.
	NewLemma18 = multiparty.NewLemma18
	// NewHybridPi0 is the balanced-but-suboptimal Π0 (Appendix B.1).
	NewHybridPi0 = multiparty.NewHybrid
	// Concat is the concatenation function of Lemmas 12–16.
	Concat = multiparty.Concat
	// MaxFn is max(x1..xn) (auction example).
	MaxFn = multiparty.Max
	// SumFn is Σ x_i.
	SumFn = multiparty.Sum
)

// Gordon–Katz partial fairness (Section 5).
var (
	// NewPolyDomain is the [GK10] §3.2 protocol.
	NewPolyDomain = gordonkatz.NewPolyDomain
	// NewPolyRange is the [GK10] §3.3 protocol.
	NewPolyRange = gordonkatz.NewPolyRange
	// NewPitilde is the leaky protocol Π̃ (Appendix C.5).
	NewPitilde = gordonkatz.NewPitilde
	// NewGKMultiParty is the Beimel-et-al-style n-party 1/p protocol.
	NewGKMultiParty = gordonkatz.NewMultiParty
	// ANDnFunction is the n-way conjunction for the multi-party protocol.
	ANDnFunction = gordonkatz.ANDn
	// NewLeakExtractor is the Lemma 26 input-extraction attack.
	NewLeakExtractor = gordonkatz.NewLeakExtractor
	// NewFirstHit is the exact Gordon–Katz round-guessing attacker.
	NewFirstHit = gordonkatz.NewFirstHit
	// ANDFunction is the boolean conjunction with explicit domains.
	ANDFunction = gordonkatz.AND
)

// Experiments (the paper-vs-measured harness behind cmd/fairness).
type (
	// ExperimentConfig controls Monte-Carlo effort.
	ExperimentConfig = experiments.Config
	// ExperimentResult is one experiment's table.
	ExperimentResult = experiments.Result
)

var (
	// RunAllExperiments executes E01..E12.
	RunAllExperiments = experiments.RunAll
	// Experiments lists the individual experiments.
	Experiments = experiments.All
	// DefaultExperimentConfig is the EXPERIMENTS.md configuration.
	DefaultExperimentConfig = experiments.DefaultConfig
	// QuickExperimentConfig is the fast smoke-test configuration.
	QuickExperimentConfig = experiments.QuickConfig
)

// Structured transcripts (JSONL serializations of the observer stream).
type (
	// TraceLine is one transcript event.
	TraceLine = trace.Line
	// TraceMeta labels a transcript recorder's lines.
	TraceMeta = trace.Meta
	// TraceRecorder buffers one run's transcript.
	TraceRecorder = trace.Recorder
	// TraceSink multiplexes concurrent runs into one JSONL stream.
	TraceSink = trace.Sink
)

var (
	// NewTraceRecorder builds a standalone one-run transcript recorder.
	NewTraceRecorder = trace.NewRecorder
	// NewTraceSink wraps a writer in a JSONL transcript sink.
	NewTraceSink = trace.NewSink
	// ParseTranscript reads a JSONL transcript back into lines.
	ParseTranscript = trace.Parse
	// FormatTraceLine renders one transcript line for humans.
	FormatTraceLine = trace.FormatLine
	// PrintTranscript pretty-prints a JSONL transcript stream.
	PrintTranscript = trace.Fprint
)

// Network transport (run protocols over loopback TCP).
type (
	// TransportCodec serializes message payloads for TCP sessions.
	TransportCodec = transport.Codec
	// GobCodec is the default gob payload codec.
	GobCodec = transport.GobCodec
	// SessionConfig tunes a TCP session (codec, timeouts, observers,
	// fault injection, reconnect/resume budgets).
	SessionConfig = transport.SessionConfig
	// SessionReport is the full result of a chaos-tolerant TCP session:
	// outputs, trace, fail-stop verdicts, resume count.
	SessionReport = transport.SessionReport
)

var (
	// RunOverTCP executes one honest protocol session over loopback TCP.
	RunOverTCP = transport.RunSession
	// RunOverTCPConfig is RunOverTCP with an explicit SessionConfig.
	RunOverTCPConfig = transport.RunSessionConfig
	// RunOverTCPReport runs a session tolerating faults: transient
	// connection faults heal via reconnect/resume, unrecoverable peers
	// degrade into fail-stop aborts reported in the SessionReport.
	RunOverTCPReport = transport.RunSessionReport
	// RegisterContractGobTypes enables Π1/Π2 over TCP.
	RegisterContractGobTypes = contract.RegisterGobTypes
	// RegisterTwoPartyGobTypes enables ΠOpt-2SFE over TCP.
	RegisterTwoPartyGobTypes = twoparty.RegisterGobTypes
	// RegisterMultiPartyGobTypes enables the n-party protocols over TCP.
	RegisterMultiPartyGobTypes = multiparty.RegisterGobTypes
	// RegisterGordonKatzGobTypes enables the GK protocols over TCP.
	RegisterGordonKatzGobTypes = gordonkatz.RegisterGobTypes
)

// Deterministic fault injection (chaos-testing the transport; every
// chaos run is replayable from its seed and schedule alone).
type (
	// FaultInjector decides the fate of session frames.
	FaultInjector = faultinject.Injector
	// FaultPoint identifies one frame's first transmission.
	FaultPoint = faultinject.Point
	// FaultDecision is the injector's verdict for one point.
	FaultDecision = faultinject.Decision
	// FaultRule matches points in an explicit fault schedule.
	FaultRule = faultinject.Rule
	// FaultSchedule fires explicit rules (first match with budget left).
	FaultSchedule = faultinject.Schedule
	// FaultProfile configures the seeded random injector.
	FaultProfile = faultinject.Profile
	// FaultOp is the action taken on a frame.
	FaultOp = faultinject.Op
)

// Fault operations.
const (
	FaultNone       = faultinject.None
	FaultDrop       = faultinject.Drop
	FaultDelay      = faultinject.Delay
	FaultDuplicate  = faultinject.Duplicate
	FaultReorder    = faultinject.Reorder
	FaultCorrupt    = faultinject.Corrupt
	FaultDisconnect = faultinject.Disconnect
	FaultKill       = faultinject.Kill
)

var (
	// NewFaultSchedule builds an explicit, replayable fault plan.
	NewFaultSchedule = faultinject.NewSchedule
	// NewRandomFaults builds the seeded hash-based injector: decisions
	// are a pure function of (seed, party, direction, sequence).
	NewRandomFaults = faultinject.NewRandom
)
