package fairness

import (
	"math/rand"
	"testing"
)

// The facade tests double as end-to-end smoke tests of the public API.

func swapSampler(r *rand.Rand) []Value {
	return []Value{uint64(r.Intn(1 << 16)), uint64(r.Intn(1 << 16))}
}

func TestQuickstartFlow(t *testing.T) {
	gamma := StandardPayoff()
	if err := gamma.ValidateFairPlus(); err != nil {
		t.Fatal(err)
	}
	proto := NewOptimalTwoParty(Swap())
	rep, err := EstimateUtility(proto, NewAgen(), gamma, swapSampler, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	bound := TwoPartyOptimalBound(gamma)
	if !rep.Utility.MatchesWithin(bound, 0.07) {
		t.Errorf("Agen utility %v, want ≈ %v", rep.Utility, bound)
	}
}

func TestFacadeRunAndClassify(t *testing.T) {
	proto := NewOptimalTwoParty(Millionaires())
	tr, err := Run(proto, []Value{uint64(9), uint64(4)}, Passive{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	oc := Classify(tr)
	if oc.Event != E01 {
		t.Errorf("passive event = %v, want E01", oc.Event)
	}
	if !tr.AllHonestDelivered() {
		t.Error("honest run should deliver")
	}
	if !ValuesEqualForTest(tr.ExpectedOutput, uint64(1)) {
		t.Errorf("9 > 4 should output 1, got %v", tr.ExpectedOutput)
	}
}

// ValuesEqualForTest avoids exporting sim.ValuesEqual just for tests.
func ValuesEqualForTest(a, b Value) bool { return a == b }

func TestFacadeComparison(t *testing.T) {
	gamma := StandardPayoff()
	sampler := func(r *rand.Rand) []Value {
		return []Value{uint64(r.Int63()), uint64(r.Int63())}
	}
	sup1, err := SupUtility(Pi1{}, TwoPartySpace(Pi1{}.NumRounds()), gamma, sampler, 120, 2)
	if err != nil {
		t.Fatal(err)
	}
	sup2, err := SupUtility(Pi2{}, TwoPartySpace(Pi2{}.NumRounds()), gamma, sampler, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	if Compare(sup2.BestReport.Utility, sup1.BestReport.Utility, 0.08) != StrictlyFairer {
		t.Errorf("Π2 should be strictly fairer (sup2 %v, sup1 %v)",
			sup2.BestReport.Utility, sup1.BestReport.Utility)
	}
}

func TestFacadeMultiParty(t *testing.T) {
	fn, err := Concat(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	proto := NewOptimalMultiParty(fn)
	gamma := StandardPayoff()
	sampler := func(r *rand.Rand) []Value {
		return []Value{uint64(r.Intn(256)), uint64(r.Intn(256)), uint64(r.Intn(256))}
	}
	rep, err := EstimateUtility(proto, NewAllButMixer(3), gamma, sampler, 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Utility.MatchesWithin(MultiPartyOptimalBound(gamma, 3), 0.07) {
		t.Errorf("utility %v, want ≈ %v", rep.Utility, MultiPartyOptimalBound(gamma, 3))
	}
}

func TestFacadeGordonKatz(t *testing.T) {
	proto, err := NewPolyDomain(ANDFunction(), 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EstimateUtility(proto, NewLockAbort(1), GordonKatzPayoff(),
		FixedInputs(uint64(1), uint64(1)), 600, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Utility.LeqWithin(0.25, 0.04) {
		t.Errorf("GK p=4 utility %v, want ≤ 1/4", rep.Utility)
	}
}

func TestFacadeBoundsConsistent(t *testing.T) {
	g := StandardPayoff()
	if TwoPartyOptimalBound(g) != MultiPartyOptimalBound(g, 2) {
		t.Error("two-party bound should equal n=2 multi-party bound")
	}
	if GordonKatzBound(g, 1) != g.G10 {
		t.Error("p=1 GK bound should be γ10")
	}
	if IdealBound(g) != g.G11 {
		t.Error("ideal bound should be γ11 for Γ+fair")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	if len(Experiments()) != 15 {
		t.Errorf("expected 15 experiments, got %d", len(Experiments()))
	}
	cfg := QuickExperimentConfig()
	if cfg.Runs <= 0 || cfg.SupRuns <= 0 {
		t.Error("quick config must have positive run counts")
	}
}
