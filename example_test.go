package fairness_test

// Godoc examples for the main library flows. Each runs as a test and its
// output is verified, so the documentation cannot rot.

import (
	"fmt"
	"math/rand"

	fairness "repro"
)

// ExampleEstimateUtility measures the optimal attacker's utility against
// ΠOpt-2SFE and compares it with the paper's closed form.
func ExampleEstimateUtility() {
	gamma := fairness.StandardPayoff()
	proto := fairness.NewOptimalTwoParty(fairness.Swap())
	sampler := func(r *rand.Rand) []fairness.Value {
		return []fairness.Value{uint64(r.Intn(1 << 16)), uint64(r.Intn(1 << 16))}
	}
	report, err := fairness.EstimateUtility(proto, fairness.NewAgen(), gamma, sampler, 4000, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	bound := fairness.TwoPartyOptimalBound(gamma)
	fmt.Printf("within optimum: %v\n", report.Utility.MatchesWithin(bound, 0.05))
	// Output:
	// within optimum: true
}

// ExampleCompare ranks the Introduction's two contract-signing protocols
// under the relative-fairness relation of Definition 1.
func ExampleCompare() {
	gamma := fairness.StandardPayoff()
	sampler := func(r *rand.Rand) []fairness.Value {
		return []fairness.Value{uint64(r.Int63()), uint64(r.Int63())}
	}
	sup1, err := fairness.SupUtility(fairness.Pi1{}, fairness.TwoPartySpace(3), gamma, sampler, 300, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sup2, err := fairness.SupUtility(fairness.Pi2{}, fairness.TwoPartySpace(4), gamma, sampler, 300, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("Π2 vs Π1:", fairness.Compare(sup2.BestReport.Utility, sup1.BestReport.Utility, 0.05))
	// Output:
	// Π2 vs Π1: strictly fairer
}

// ExampleClassify runs one protocol execution and maps it to its
// ideal-world fairness event.
func ExampleClassify() {
	proto := fairness.NewOptimalTwoParty(fairness.Millionaires())
	trace, err := fairness.Run(proto, []fairness.Value{uint64(9), uint64(4)}, fairness.Passive{}, 7)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	outcome := fairness.Classify(trace)
	fmt.Printf("event=%v output=%v\n", outcome.Event, trace.ExpectedOutput)
	// Output:
	// event=E01 output=1
}

// ExampleRunOverTCP executes a protocol session over loopback TCP.
func ExampleRunOverTCP() {
	fairness.RegisterContractGobTypes()
	outs, err := fairness.RunOverTCP(fairness.Pi1{},
		[]fairness.Value{uint64(11), uint64(22)}, fairness.GobCodec{}, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("party 1: %+v\n", outs[1].Value)
	// Output:
	// party 1: {S1:11 S2:22}
}

// ExampleIsUtilityBalanced checks Definition 5 on a measured per-t
// utility profile.
func ExampleIsUtilityBalanced() {
	gamma := fairness.StandardPayoff()
	n := 4
	optimal := fairness.PerTUtilities{
		fairness.MultiPartyTBound(gamma, n, 1),
		fairness.MultiPartyTBound(gamma, n, 2),
		fairness.MultiPartyTBound(gamma, n, 3),
	}
	gmwStep := fairness.PerTUtilities{gamma.G11, gamma.G10, gamma.G10}
	fmt.Println("ΠOpt-nSFE balanced:", fairness.IsUtilityBalanced(optimal, gamma, 0.01))
	fmt.Println("Π_GMW^{1/2} balanced:", fairness.IsUtilityBalanced(gmwStep, gamma, 0.01))
	// Output:
	// ΠOpt-nSFE balanced: true
	// Π_GMW^{1/2} balanced: false
}
