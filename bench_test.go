package fairness

// Benchmark harness: one benchmark per experiment (the paper has no
// numbered tables/figures; its evaluation is the set of theorems and
// lemmas indexed E01..E12 in DESIGN.md), plus substrate micro-benchmarks.
// Each experiment benchmark regenerates its paper-vs-measured rows at the
// quick configuration and reports the headline measured value as a
// custom metric, so `go test -bench=.` reprints the whole evaluation.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/experiments"
	"repro/internal/gmw"
	"repro/internal/ot"
)

func benchExperiment(b *testing.B, run func(experiments.Config) (experiments.Result, error)) {
	b.Helper()
	cfg := experiments.QuickConfig()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		cfg.Seed = experiments.QuickConfig().Seed + int64(i)
		res, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		if !row.Pass {
			b.Errorf("%s %q: paper %s %v, measured %v (%s)",
				last.ID, row.Label, row.Dir, row.Paper, row.Measured, row.Note)
		}
	}
	if len(last.Rows) > 0 {
		b.ReportMetric(last.Rows[0].Measured, "utility")
	}
}

func BenchmarkE01ContractSigning(b *testing.B) {
	benchExperiment(b, experiments.E01ContractSigning)
}

func BenchmarkE02TwoPartyUpper(b *testing.B) {
	benchExperiment(b, experiments.E02TwoPartyUpper)
}

func BenchmarkE03TwoPartyLower(b *testing.B) {
	benchExperiment(b, experiments.E03TwoPartyLower)
}

func BenchmarkE04ReconRounds(b *testing.B) {
	benchExperiment(b, experiments.E04ReconstructionRounds)
}

func BenchmarkE05MultiUpper(b *testing.B) {
	benchExperiment(b, experiments.E05MultiPartyUpper)
}

func BenchmarkE06MultiLower(b *testing.B) {
	benchExperiment(b, experiments.E06MultiPartyLower)
}

func BenchmarkE07BalancedSum(b *testing.B) {
	benchExperiment(b, experiments.E07BalancedSum)
}

func BenchmarkE08GMWUnbalanced(b *testing.B) {
	benchExperiment(b, experiments.E08GMWUnbalanced)
}

func BenchmarkE09Separations(b *testing.B) {
	benchExperiment(b, experiments.E09Separations)
}

func BenchmarkE10CorruptionCost(b *testing.B) {
	benchExperiment(b, experiments.E10CorruptionCost)
}

func BenchmarkE11GordonKatz(b *testing.B) {
	benchExperiment(b, experiments.E11GordonKatz)
}

func BenchmarkE12Separation(b *testing.B) {
	benchExperiment(b, experiments.E12PartialFairnessSeparation)
}

func BenchmarkE13Ablations(b *testing.B) {
	benchExperiment(b, experiments.E13Ablations)
}

func BenchmarkE14AttackGame(b *testing.B) {
	benchExperiment(b, experiments.E14AttackGame)
}

func BenchmarkE15SubstrateGap(b *testing.B) {
	benchExperiment(b, experiments.E15SubstrateGap)
}

// Substrate micro-benchmarks.

func BenchmarkSubstrateEngineRun2SFE(b *testing.B) {
	proto := NewOptimalTwoParty(Swap())
	inputs := []Value{uint64(111), uint64(222)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(proto, inputs, Passive{}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateEngineRunNSFE(b *testing.B) {
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			fn, err := Concat(n, 8)
			if err != nil {
				b.Fatal(err)
			}
			proto := NewOptimalMultiParty(fn)
			inputs := make([]Value, n)
			for i := range inputs {
				inputs[i] = uint64(i)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(proto, inputs, Passive{}, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSubstrateLockAbortRun(b *testing.B) {
	proto := NewOptimalTwoParty(Swap())
	inputs := []Value{uint64(111), uint64(222)}
	adv := NewLockAbort(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(proto, inputs, adv, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateGordonKatzRun(b *testing.B) {
	proto, err := NewPolyDomain(ANDFunction(), 8)
	if err != nil {
		b.Fatal(err)
	}
	inputs := []Value{uint64(1), uint64(1)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(proto, inputs, Passive{}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateGMWDealerOT(b *testing.B) {
	circ, err := circuit.MillionairesCircuit(16)
	if err != nil {
		b.Fatal(err)
	}
	eval, err := gmw.NewEvaluator(circ, 2, ot.Dealer{})
	if err != nil {
		b.Fatal(err)
	}
	inputs, err := gmw.InputsFromGlobal(circ, make([]bool, 32), 2)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Evaluate(rng, inputs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateGMWNaorPinkasOT(b *testing.B) {
	circ, err := circuit.AndCircuit()
	if err != nil {
		b.Fatal(err)
	}
	eval, err := gmw.NewEvaluator(circ, 2, ot.NaorPinkas{})
	if err != nil {
		b.Fatal(err)
	}
	inputs, err := gmw.InputsFromGlobal(circ, []bool{true, true}, 2)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Evaluate(rng, inputs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubstrateClassify(b *testing.B) {
	proto := NewOptimalTwoParty(Swap())
	tr, err := Run(proto, []Value{uint64(1), uint64(2)}, Passive{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Classify(tr)
	}
}

// Estimator hot-path benchmarks: the batched engine end to end (master
// stream, worker arena, classify, tally), sized so one benchmark
// iteration is one Monte-Carlo run — ns/op and allocs/op read directly
// as per-run costs. CI enforces an allocs/op budget on these (see the
// bench-smoke job); the arena-level budget lives in
// internal/sim.TestArenaRunAllocs and internal/core.TestEstimateAllocs.

func benchEstimate(b *testing.B, proto Protocol, adv Adversary, sampler InputSampler, opts ...EstimatorOption) {
	b.Helper()
	b.ReportAllocs()
	rep, err := EstimateUtility(proto, adv, StandardPayoff(), sampler, b.N, 1, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.Utility.Mean, "utility")
}

func BenchmarkEstimate2SFE(b *testing.B) {
	sampler := func(r *rand.Rand) []Value {
		return []Value{uint64(r.Intn(1 << 20)), uint64(r.Intn(1 << 20))}
	}
	benchEstimate(b, NewOptimalTwoParty(Swap()), NewLockAbort(1), sampler, WithParallelism(1))
}

func BenchmarkEstimate2SFEDefaultParallel(b *testing.B) {
	sampler := func(r *rand.Rand) []Value {
		return []Value{uint64(r.Intn(1 << 20)), uint64(r.Intn(1 << 20))}
	}
	benchEstimate(b, NewOptimalTwoParty(Swap()), NewLockAbort(1), sampler)
}

// BenchmarkEstimate2SFEInterpreted is the plain-interpreter reference
// for the compiled-plan speedup: identical workload and report to
// BenchmarkEstimate2SFE with WithCompiledPlans(false).
func BenchmarkEstimate2SFEInterpreted(b *testing.B) {
	sampler := func(r *rand.Rand) []Value {
		return []Value{uint64(r.Intn(1 << 20)), uint64(r.Intn(1 << 20))}
	}
	benchEstimate(b, NewOptimalTwoParty(Swap()), NewLockAbort(1), sampler,
		WithParallelism(1), WithCompiledPlans(false))
}

// BenchmarkEstimate2SFECompiledMill is the compiled path's allocation
// floor: millionaires' inputs and outputs stay below 256 (boxing into
// Value is free) and the in-place sampler refills engine-owned buffers,
// so allocs/op — which benchEstimate makes equal to allocs/run — is
// pinned at <= 2 by CI's bench-smoke budget.
func BenchmarkEstimate2SFECompiledMill(b *testing.B) {
	into := func(r *rand.Rand, dst []Value) []Value {
		return append(dst, uint64(r.Intn(200)), uint64(r.Intn(200)))
	}
	benchEstimate(b, NewOptimalTwoParty(Millionaires()), NewLockAbort(1), nil,
		WithParallelism(1), WithSamplerInto(into))
}

func BenchmarkEstimateNSFE(b *testing.B) {
	fn, err := Concat(4, 8)
	if err != nil {
		b.Fatal(err)
	}
	sampler := func(r *rand.Rand) []Value {
		in := make([]Value, 4)
		for i := range in {
			in[i] = uint64(r.Intn(256))
		}
		return in
	}
	benchEstimate(b, NewOptimalMultiParty(fn), NewLockAbort(1, 3), sampler, WithParallelism(1))
}

// Parallel-estimation benchmarks: the same E05/E07-class multi-party
// workload at worker counts 1 and 4. The determinism contract makes the
// two produce identical reports, so the only delta is wall-clock.
//
// Measured on the single-CPU dev container (Xeon 2.10GHz, go1.24):
//
//	BenchmarkE07BalancedSumSequential      1   3.01e9 ns/op
//	BenchmarkE07BalancedSumParallel4       1   2.77e9 ns/op
//
// i.e. at parity with one core — the pool adds no measurable overhead
// even when it cannot help. The runs are embarrassingly parallel (the
// workers share nothing after the sequential pre-draw), so on a P-core
// host the parallel variant approaches a min(P, 4)× speedup; CI's
// 4-vCPU runner is where the gap shows.
func benchE07AtParallelism(b *testing.B, par int) {
	b.Helper()
	cfg := experiments.QuickConfig()
	cfg.Parallelism = par
	for i := 0; i < b.N; i++ {
		cfg.Seed = experiments.QuickConfig().Seed + int64(i)
		if _, err := experiments.E07BalancedSum(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE07BalancedSumSequential(b *testing.B) { benchE07AtParallelism(b, 1) }
func BenchmarkE07BalancedSumParallel4(b *testing.B)  { benchE07AtParallelism(b, 4) }
