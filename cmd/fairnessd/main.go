// Command fairnessd is the always-on estimation daemon: an HTTP+JSON
// front end over the shared service layer (internal/service), serving
// utility estimates, sup-searches, bound-certifying sweeps, and real
// transport sessions from one bounded worker pool with an LRU result
// cache.
//
// Endpoints:
//
//	POST /v1/estimate  {"proto","adv","gamma"?,"runs","seed"}  → utility report (sync)
//	POST /v1/sup       {"proto","advs",...}                    → sup-search report (sync)
//	POST /v1/search    {"proto","space"?,...}                  → 202 {"job_id"}; poll /v1/jobs/{id}
//	POST /v1/sweep     {"spec":{...}}                          → 202 {"job_id"}; poll /v1/jobs/{id}
//	GET  /v1/jobs/{id}                                         → job status + sweep summary
//	POST /v1/session   {"proto","inputs","seed"}               → one session over loopback TCP
//	GET  /healthz                                              → liveness
//	GET  /metrics                                              → Prometheus text format
//
// Determinism contract: a response is a pure function of the request
// parameters — byte-identical whether computed fresh, served from the
// cache (the X-Fairnessd-Cache header distinguishes the two), or
// produced by the equivalent CLI invocation at any parallelism.
//
// -selfcheck runs the built-in load harness instead of serving:
// it boots the daemon on a loopback port, fires concurrent estimation
// requests (cache-hit repeats included), verifies byte-identity of
// repeated responses, and appends the measured request rate and cache
// hit rate to BENCH_service.json.
//
// Chaos flags (-drop, -delay, -kill-party, …) apply to /v1/session
// sessions, exercising the transport's fault-injection resilience.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/cliflags"
	"repro/internal/protocols/contract"
	"repro/internal/protocols/gordonkatz"
	"repro/internal/protocols/multiparty"
	"repro/internal/protocols/twoparty"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fairnessd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fairnessd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address")
	workers := fs.Int("workers", 0, "service pool workers (0 = one per CPU)")
	cacheSize := fs.Int("cache", service.DefaultCacheSize, "result-cache entries (negative disables)")
	est := cliflags.RegisterEstimation(fs, cliflags.EstimationSpec{
		Runs:      1000,
		RunsUsage: "default runs for requests that omit a run count",
		Parallel:  true,
	})
	chaos := cliflags.RegisterChaos(fs)
	maxBody := fs.Int64("max-body-bytes", defaultMaxBody, "request body size limit in bytes")
	selfcheck := fs.Bool("selfcheck", false, "run the load harness instead of serving")
	scRequests := fs.Int("selfcheck-requests", 200, "selfcheck request count")
	scOut := fs.String("o", "BENCH_service.json", "selfcheck report file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Sessions run over the gob transport; register every protocol
	// family's payload types once.
	contract.RegisterGobTypes()
	twoparty.RegisterGobTypes()
	multiparty.RegisterGobTypes()
	gordonkatz.RegisterGobTypes()

	pool := service.New(service.Config{
		Workers:     *workers,
		CacheSize:   *cacheSize,
		Parallelism: est.Parallel,
	})
	defer pool.Close()
	srv := newServer(pool, chaos, est.Runs, *maxBody)

	if *selfcheck {
		return runSelfcheck(srv, pool, *scRequests, *scOut)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("fairnessd: listening on %s (workers=%d cache=%d default-runs=%d)\n",
		*addr, *workers, *cacheSize, est.Runs)
	return httpSrv.ListenAndServe()
}
