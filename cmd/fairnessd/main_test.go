package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/protocols/contract"
	"repro/internal/search"
	"repro/internal/service"
	"repro/internal/sweep"
)

// newTestServer boots a daemon over a fresh pool on an httptest server.
func newTestServer(t *testing.T) (*httptest.Server, *service.Pool) {
	t.Helper()
	contract.RegisterGobTypes()
	pool := service.New(service.Config{Workers: 4, CacheSize: 128, Parallelism: 2})
	t.Cleanup(pool.Close)
	ts := httptest.NewServer(newServer(pool, &cliflags.Chaos{Timeout: 2 * time.Second}, 1000, 0))
	t.Cleanup(ts.Close)
	return ts, pool
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestEstimateEquivalence is the daemon's determinism pin: /v1/estimate
// answers — fresh and cache-hit — carry exactly the numbers a direct
// core.EstimateUtility call produces for the same (params, seed), and
// the two response bodies are byte-identical.
func TestEstimateEquivalence(t *testing.T) {
	ts, _ := newTestServer(t)
	params := service.EstimateParams{Proto: "2sfe-opt", Adv: "lock-abort:1", Runs: 300, Seed: 42}

	proto, sampler, err := service.BuildProtocol(params.Proto)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := service.BuildAdversary(params.Adv, proto.NumParties())
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.EstimateUtility(proto, adv, core.StandardPayoff(), sampler, params.Runs, params.Seed)
	if err != nil {
		t.Fatal(err)
	}

	resp1, body1 := postJSON(t, ts.URL+"/v1/estimate", params)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("fresh request: status %d, body %s", resp1.StatusCode, body1)
	}
	if h := resp1.Header.Get(cacheHeader); h != "miss" {
		t.Fatalf("fresh request: %s = %q, want miss", cacheHeader, h)
	}
	resp2, body2 := postJSON(t, ts.URL+"/v1/estimate", params)
	if h := resp2.Header.Get(cacheHeader); h != "hit" {
		t.Fatalf("repeat request: %s = %q, want hit", cacheHeader, h)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache-hit body differs from fresh body:\n%s\n%s", body1, body2)
	}

	var got estimateResponse
	if err := json.Unmarshal(body1, &got); err != nil {
		t.Fatal(err)
	}
	if got.Report.Utility.Mean != want.Utility.Mean ||
		got.Report.Utility.HalfWidth != want.Utility.HalfWidth ||
		got.Report.Utility.N != want.Utility.N {
		t.Fatalf("daemon utility %+v != core %+v", got.Report.Utility, want.Utility)
	}
	for i, ev := range []core.Event{core.E00, core.E01, core.E10, core.E11} {
		if got.Report.Events[i] != want.EventFreq[ev] {
			t.Fatalf("event %d: daemon %v != core %v", i, got.Report.Events[i], want.EventFreq[ev])
		}
	}
	if got.Report.Engine.Runs != want.Metrics.Runs || got.Report.Engine.Messages != want.Metrics.Messages {
		t.Fatalf("daemon engine view %+v != core metrics %+v", got.Report.Engine, want.Metrics)
	}
}

// TestConcurrentBurst fires ~200 concurrent estimation requests with
// cache-hit repeats (the CI smoke runs this under -race) and checks
// every response succeeded and repeats are byte-identical.
func TestConcurrentBurst(t *testing.T) {
	ts, pool := newTestServer(t)
	points := []service.EstimateParams{
		{Proto: "pi1", Adv: "agen", Runs: 80, Seed: 1},
		{Proto: "pi2", Adv: "lock-abort:1", Runs: 80, Seed: 2},
		{Proto: "2sfe-opt", Adv: "lock-abort:2", Runs: 80, Seed: 3},
		{Proto: "2sfe-oneround", Adv: "agen", Runs: 80, Seed: 4},
		{Proto: "gk-pitilde", Adv: "passive", Runs: 80, Seed: 5},
	}
	const total = 200

	var (
		mu     sync.Mutex
		bodies = map[int][]byte{}
	)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			point := i % len(points)
			resp, body := postJSON(t, ts.URL+"/v1/estimate", points[point])
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if prev, ok := bodies[point]; !ok {
				bodies[point] = body
			} else if !bytes.Equal(prev, body) {
				t.Errorf("point %d: response bodies diverged", point)
			}
		}(i)
	}
	wg.Wait()

	st := pool.Stats()
	if st.Submitted != total {
		t.Fatalf("pool saw %d submissions, want %d", st.Submitted, total)
	}
	if st.Failed != 0 {
		t.Fatalf("%d jobs failed", st.Failed)
	}
	// Single-flight coalescing: exactly one execution per distinct
	// point, every other request a cache hit or follower.
	if want := int64(total - len(points)); st.CacheHits != want {
		t.Fatalf("%d cache hits across %d requests, want %d", st.CacheHits, total, want)
	}
}

// TestSupEndpoint checks /v1/sup against core.SupUtility.
func TestSupEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	params := service.SupParams{
		Proto: "2sfe-opt", Advs: []string{"passive", "lock-abort:1", "agen"}, Runs: 100, Seed: 9,
	}
	resp, body := postJSON(t, ts.URL+"/v1/sup", params)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got supResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}

	proto, sampler, _ := service.BuildProtocol(params.Proto)
	advs := make([]core.NamedAdversary, len(params.Advs))
	for i, name := range params.Advs {
		a, err := service.BuildAdversary(name, proto.NumParties())
		if err != nil {
			t.Fatal(err)
		}
		advs[i] = core.NamedAdversary{Name: name, Adv: a}
	}
	want, err := core.SupUtility(proto, advs, core.StandardPayoff(), sampler, params.Runs, params.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Best != want.Best {
		t.Fatalf("best = %q, want %q", got.Best, want.Best)
	}
	if got.BestReport.Utility.Mean != want.BestReport.Utility.Mean {
		t.Fatalf("best utility %v != %v", got.BestReport.Utility.Mean, want.BestReport.Utility.Mean)
	}
	if len(got.Strategies) != len(want.All) {
		t.Fatalf("got %d strategies, want %d", len(got.Strategies), len(want.All))
	}

	// Byte identity on repeat.
	resp2, body2 := postJSON(t, ts.URL+"/v1/sup", params)
	if h := resp2.Header.Get(cacheHeader); h != "hit" {
		t.Fatalf("repeat sup: %s = %q", cacheHeader, h)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("repeated sup bodies differ")
	}
}

// TestSweepAsync submits a sweep, polls the job to completion, and
// checks the summary against a direct sweep.Run.
func TestSweepAsync(t *testing.T) {
	ts, _ := newTestServer(t)
	spec := sweep.DefaultSpec()
	spec.Families = []string{"pi1"}
	spec.Gammas = sweep.StandardGammas()[:1]
	spec.Ns = []int{2}
	spec.Costs = []string{"zero"}
	spec.AbortSweep = false
	spec.Runs = 60
	spec.Seed = 7

	resp, body := postJSON(t, ts.URL+"/v1/sweep", service.SweepParams{Spec: spec})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var accepted jobView
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}

	var final jobView
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", ts.URL, accepted.JobID))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(r.Body)
		_ = r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d: %s", r.StatusCode, data)
		}
		if err := json.Unmarshal(data, &final); err != nil {
			t.Fatal(err)
		}
		if final.Status != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep job did not finish in time")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if final.Status != "done" || final.Sweep == nil {
		t.Fatalf("job = %+v, want done with summary", final)
	}

	want, err := sweep.Run(spec, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.Sweep.Records != len(want.Records) || final.Sweep.TotalChecks != want.TotalChecks ||
		final.Sweep.Breaches != len(want.Breaches) || !final.Sweep.OK {
		t.Fatalf("sweep view %+v disagrees with direct run (records=%d checks=%d breaches=%d)",
			final.Sweep, len(want.Records), want.TotalChecks, len(want.Breaches))
	}
}

// TestSearchAsync exercises POST /v1/search end to end: 202 + job ID,
// poll to completion, the view carries the same certified winner a
// direct search.Run finds, and resubmission is a cache hit.
func TestSearchAsync(t *testing.T) {
	ts, _ := newTestServer(t)
	params := service.SearchParams{
		Proto: "pi1", Wave: 40, RaceRuns: 200, FinalRuns: 400, Seed: 11,
	}

	proto, sampler, err := service.BuildProtocol(params.Proto)
	if err != nil {
		t.Fatal(err)
	}
	space, err := service.BuildSpace(params.Space, params.Proto)
	if err != nil {
		t.Fatal(err)
	}
	want, err := search.Run(proto, space, service.DefaultPayoff(params.Proto), sampler, params.Seed, params.Options())
	if err != nil {
		t.Fatal(err)
	}

	poll := func(id uint64) jobView {
		t.Helper()
		var v jobView
		deadline := time.Now().Add(30 * time.Second)
		for {
			r, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id))
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(r.Body)
			_ = r.Body.Close()
			if r.StatusCode != http.StatusOK {
				t.Fatalf("poll status %d: %s", r.StatusCode, data)
			}
			if err := json.Unmarshal(data, &v); err != nil {
				t.Fatal(err)
			}
			if v.Status != "running" {
				return v
			}
			if time.Now().After(deadline) {
				t.Fatal("search job did not finish in time")
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	resp, body := postJSON(t, ts.URL+"/v1/search", params)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var accepted jobView
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	final := poll(accepted.JobID)
	if final.Status != "done" || final.Search == nil {
		t.Fatalf("job = %+v, want done with search view", final)
	}
	if final.Search.Best != want.Best {
		t.Fatalf("daemon best %q, want %q", final.Search.Best, want.Best)
	}
	if final.Search.Utility.Mean != want.BestReport.Utility.Mean ||
		final.Search.TotalRuns != want.TotalRuns || final.Search.Waves != want.Waves {
		t.Fatalf("search view %+v disagrees with direct run (mean=%g runs=%d waves=%d)",
			final.Search, want.BestReport.Utility.Mean, want.TotalRuns, want.Waves)
	}
	if final.Search.CacheHit {
		t.Fatal("first search submission claims a cache hit")
	}

	resp2, body2 := postJSON(t, ts.URL+"/v1/search", params)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit status %d: %s", resp2.StatusCode, body2)
	}
	var accepted2 jobView
	if err := json.Unmarshal(body2, &accepted2); err != nil {
		t.Fatal(err)
	}
	final2 := poll(accepted2.JobID)
	if final2.Search == nil || !final2.Search.CacheHit {
		t.Fatalf("resubmission job = %+v, want cache hit", final2)
	}
	cached := *final2.Search
	cached.CacheHit = false
	if cached != *final.Search {
		t.Fatalf("cached search view differs beyond the hit flag: %+v vs %+v", final2.Search, final.Search)
	}

	// Malformed search params are rejected at submission, not queued.
	bad, badBody := postJSON(t, ts.URL+"/v1/search", service.SearchParams{Proto: "nsfe-opt:3"})
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("raw space on a 3-party protocol: status %d, body %s", bad.StatusCode, badBody)
	}
}

// TestSessionEndpoint runs a real Π2 session over loopback TCP.
func TestSessionEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/session", sessionRequest{
		Proto: "pi2", Inputs: []uint64{0xA11CE, 0xB0B}, Seed: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got sessionResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Outputs) != 2 || len(got.FailStops) != 0 {
		t.Fatalf("session response %+v, want 2 outputs, no fail-stops", got)
	}
	for _, out := range got.Outputs {
		if !out.OK {
			t.Fatalf("party %d output not OK: %+v", out.Party, got)
		}
	}
}

// TestHealthzAndMetrics checks the operational endpoints.
func TestHealthzAndMetrics(t *testing.T) {
	ts, _ := newTestServer(t)
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r.Body)
	_ = r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", r.StatusCode)
	}
	var hv healthView
	if err := json.Unmarshal(data, &hv); err != nil {
		t.Fatal(err)
	}
	if hv.Status != "ok" {
		t.Fatalf("healthz = %+v", hv)
	}

	// One estimate so the counters move.
	if resp, body := postJSON(t, ts.URL+"/v1/estimate",
		service.EstimateParams{Proto: "pi1", Adv: "agen", Runs: 50, Seed: 1}); resp.StatusCode != 200 {
		t.Fatalf("estimate: %d %s", resp.StatusCode, body)
	}
	r, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(r.Body)
	_ = r.Body.Close()
	for _, metric := range []string{
		"fairnessd_jobs_submitted_total 1",
		"fairnessd_jobs_completed_total 1",
		"fairness_engine_runs_total 50",
	} {
		if !strings.Contains(string(text), metric) {
			t.Fatalf("metrics output missing %q:\n%s", metric, text)
		}
	}
}

// TestBadRequests pins the error surface.
func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		path string
		body string
		want int
	}{
		{"/v1/estimate", `{"proto":"nope","adv":"agen","runs":10,"seed":1}`, 400},
		{"/v1/estimate", `{"proto":"pi1","adv":"nope","runs":10,"seed":1}`, 400},
		{"/v1/estimate", `{"bogus_field":1}`, 400},
		{"/v1/estimate", `not json`, 400},
		{"/v1/sup", `{"proto":"pi1","advs":[],"runs":10,"seed":1}`, 400},
		{"/v1/session", `{"proto":"pi2","inputs":[1],"seed":1}`, 400},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("POST %s %s: status %d, want %d", c.path, c.body, resp.StatusCode, c.want)
		}
	}
	r, err := http.Get(ts.URL + "/v1/jobs/999")
	if err != nil {
		t.Fatal(err)
	}
	_ = r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", r.StatusCode)
	}
}
