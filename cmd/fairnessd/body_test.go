package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cliflags"
	"repro/internal/service"
)

// TestBodySizeLimit pins the request-body cap: every decoding endpoint
// answers 413 for an oversized body, and a well-formed request under
// the same cap still succeeds.
func TestBodySizeLimit(t *testing.T) {
	pool := service.New(service.Config{Workers: 1, CacheSize: 8})
	t.Cleanup(pool.Close)
	srv := newServer(pool, &cliflags.Chaos{Timeout: 2 * time.Second}, 1000, 512)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// A syntactically valid JSON object far past the 512-byte cap.
	huge := `{"proto":"` + strings.Repeat("x", 4096) + `"}`
	for _, ep := range []string{"/v1/estimate", "/v1/sup", "/v1/sweep", "/v1/session"} {
		resp, err := http.Post(ts.URL+ep, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatalf("%s: %v", ep, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body: status = %d, want %d", ep, resp.StatusCode, http.StatusRequestEntityTooLarge)
		}
	}

	// Under the cap the endpoint still works.
	payload, _ := json.Marshal(service.EstimateParams{Proto: "pi1", Adv: "agen", Runs: 50, Seed: 1})
	resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body under cap: status = %d, want 200", resp.StatusCode)
	}
}

// TestEstimateRequestContextCanceled pins the cancellation wiring: a
// synchronous estimate whose request context is already dead fails
// without running a single simulation.
func TestEstimateRequestContextCanceled(t *testing.T) {
	pool := service.New(service.Config{Workers: 1, CacheSize: 8})
	t.Cleanup(pool.Close)
	srv := newServer(pool, &cliflags.Chaos{Timeout: 2 * time.Second}, 1000, 0)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	payload, _ := json.Marshal(service.EstimateParams{Proto: "pi1", Adv: "agen", Runs: 500, Seed: 9})
	req := httptest.NewRequest("POST", "/v1/estimate", bytes.NewReader(payload)).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)

	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("canceled request: status = %d, want 500 (body %s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "canceled") {
		t.Errorf("error body %q does not mention cancellation", rec.Body.String())
	}
	if got := pool.Metrics(); got.Runs != 0 {
		t.Errorf("canceled request ran %d simulations, want 0", got.Runs)
	}
}

// TestSweepJobSurvivesRequest pins that the async sweep endpoint is
// NOT tied to the request context: the job keeps running after the 202
// response's request context dies, and polling finds it done.
func TestSweepJobSurvivesRequest(t *testing.T) {
	ts, _ := newTestServer(t)
	spec := map[string]any{
		"Families": []string{"pi1"},
		"Gammas":   []map[string]float64{{"G00": 0.5, "G01": 0, "G10": 2, "G11": 1}},
		"Ns":       []int{2},
		"Costs":    []string{"zero"},
		"Runs":     40,
		"Seed":     3,
	}
	resp, body := postJSON(t, ts.URL+"/v1/sweep", map[string]any{"spec": spec})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: status = %d, body %s", resp.StatusCode, body)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	// The submit request is long gone; the job must still complete.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body := postGet(t, ts.URL, v.JobID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: status = %d, body %s", resp.StatusCode, body)
		}
		var jv jobView
		if err := json.Unmarshal(body, &jv); err != nil {
			t.Fatal(err)
		}
		if jv.Status == "done" {
			if jv.Sweep == nil || !jv.Sweep.OK {
				t.Fatalf("sweep finished badly: %+v", jv.Sweep)
			}
			return
		}
		if jv.Status == "failed" {
			t.Fatalf("sweep failed: %s", jv.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep did not finish in time")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func postGet(t *testing.T, base string, id uint64) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + strconv.FormatUint(id, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestSelfcheckPreservesFabricSection pins the BENCH_service.json
// round-trip: a selfcheck rewrite keeps the fabric key fairbench wrote.
func TestSelfcheckPreservesFabricSection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_service.json")
	seedDoc := `{"history":[],"fabric":{"workers":4,"cells_per_sec":123.4}}`
	if err := os.WriteFile(path, []byte(seedDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	var traj selfcheckTrajectory
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatal(err)
	}
	traj.History = append(traj.History, selfcheckReport{Generated: "t"})
	out, err := json.Marshal(traj)
	if err != nil {
		t.Fatal(err)
	}
	var round map[string]json.RawMessage
	if err := json.Unmarshal(out, &round); err != nil {
		t.Fatal(err)
	}
	fab, ok := round["fabric"]
	if !ok {
		t.Fatal("fabric section dropped by selfcheck trajectory round-trip")
	}
	if !bytes.Equal(fab, []byte(`{"workers":4,"cells_per_sec":123.4}`)) {
		t.Errorf("fabric section rewritten: %s", fab)
	}
}
