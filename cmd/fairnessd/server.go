package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/transport"
)

// cacheHeader is the response header carrying cache-hit status. It is
// a header — not a body field — so that a cache-hit response body is
// byte-identical to the fresh one (the daemon's determinism contract).
const cacheHeader = "X-Fairnessd-Cache"

// defaultMaxBody caps request bodies at 1 MiB. The largest legitimate
// request — a sweep spec with every list populated — is a few KiB, so
// the cap only ever cuts off hostile or accidental floods.
const defaultMaxBody = 1 << 20

// server is the fairnessd HTTP surface over one service pool.
type server struct {
	pool *service.Pool
	// chaos is the session fault profile from the daemon's flags; nil
	// Injector means fault-free sessions.
	chaos *cliflags.Chaos
	// defaultRuns fills estimate/sup requests that omit a run count.
	defaultRuns int
	// maxBody bounds request body bytes (≤0 selects defaultMaxBody).
	maxBody int64
	start   time.Time
	mux     *http.ServeMux
}

func newServer(pool *service.Pool, chaos *cliflags.Chaos, defaultRuns int, maxBody int64) *server {
	if maxBody <= 0 {
		maxBody = defaultMaxBody
	}
	s := &server{pool: pool, chaos: chaos, defaultRuns: defaultRuns, maxBody: maxBody, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	mux.HandleFunc("POST /v1/sup", s.handleSup)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/session", s.handleSession)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON writes a fixed-shape view; views contain no maps with
// non-deterministic ordering, so equal values marshal to equal bytes.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorView struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorView{Error: err.Error()})
}

// decodeBody decodes a JSON request body under the server's size cap.
// Oversized bodies answer 413 (MaxBytesReader also closes the
// connection, so the flood stops at the cap rather than being read).
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// statView is the JSON shape of a stats.Estimate.
type statView struct {
	Mean      float64 `json:"mean"`
	HalfWidth float64 `json:"half_width"`
	N         int64   `json:"n"`
}

// engineView is the JSON shape of sim.Metrics.
type engineView struct {
	Runs        int64 `json:"runs"`
	Rounds      int64 `json:"rounds"`
	Messages    int64 `json:"messages"`
	Broadcasts  int64 `json:"broadcasts"`
	Deliveries  int64 `json:"deliveries"`
	Corruptions int64 `json:"corruptions"`
	SetupAborts int64 `json:"setup_aborts"`
	FailStops   int64 `json:"fail_stops"`
}

func engineOf(m sim.Metrics) engineView {
	return engineView{
		Runs: m.Runs, Rounds: m.Rounds, Messages: m.Messages,
		Broadcasts: m.Broadcasts, Deliveries: m.Deliveries,
		Corruptions: m.Corruptions, SetupAborts: m.SetupAborts, FailStops: m.FailStops,
	}
}

// reportView is the JSON shape of a core.UtilityReport.
type reportView struct {
	Utility               statView   `json:"utility"`
	Events                [4]float64 `json:"events"` // Pr[E00], Pr[E01], Pr[E10], Pr[E11]
	CorrectnessViolations float64    `json:"correctness_violations"`
	PrivacyBreaches       float64    `json:"privacy_breaches"`
	MeanCorrupted         float64    `json:"mean_corrupted"`
	Runs                  int        `json:"runs"`
	Engine                engineView `json:"engine"`
}

func reportOf(rep core.UtilityReport) reportView {
	return reportView{
		Utility: statView{Mean: rep.Utility.Mean, HalfWidth: rep.Utility.HalfWidth, N: rep.Utility.N},
		Events: [4]float64{
			rep.EventFreq[core.E00], rep.EventFreq[core.E01],
			rep.EventFreq[core.E10], rep.EventFreq[core.E11],
		},
		CorrectnessViolations: rep.CorrectnessViolations,
		PrivacyBreaches:       rep.PrivacyBreaches,
		MeanCorrupted:         rep.MeanCorrupted,
		Runs:                  rep.Runs,
		Engine:                engineOf(rep.Metrics),
	}
}

// estimateResponse is the /v1/estimate body.
type estimateResponse struct {
	Proto  string     `json:"proto"`
	Adv    string     `json:"adv"`
	Gamma  [4]float64 `json:"gamma"`
	Runs   int        `json:"runs"`
	Seed   int64      `json:"seed"`
	Report reportView `json:"report"`
}

func (s *server) fillRuns(runs int) int {
	if runs <= 0 {
		return s.defaultRuns
	}
	return runs
}

func markCache(w http.ResponseWriter, res *service.Result) {
	if res.CacheHit {
		w.Header().Set(cacheHeader, "hit")
	} else {
		w.Header().Set(cacheHeader, "miss")
	}
}

func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var params service.EstimateParams
	if !s.decodeBody(w, r, &params) {
		return
	}
	params.Runs = s.fillRuns(params.Runs)
	// Synchronous job: tie its lifetime to the request so a client that
	// hangs up frees the queue slot instead of burning a worker.
	job, err := s.pool.Submit(params, service.WithJobContext(r.Context()))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := job.Wait()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	markCache(w, res)
	g := resolveGamma(params.Gamma, params.Proto)
	writeJSON(w, http.StatusOK, estimateResponse{
		Proto: params.Proto, Adv: params.Adv, Gamma: g,
		Runs: params.Runs, Seed: params.Seed,
		Report: reportOf(*res.Estimate),
	})
}

func resolveGamma(g *[4]float64, proto string) [4]float64 {
	if g != nil {
		return *g
	}
	d := service.DefaultPayoff(proto)
	return [4]float64{d.G00, d.G01, d.G10, d.G11}
}

// strategyView is one sup-search strategy's outcome.
type strategyView struct {
	Name   string     `json:"name"`
	Report reportView `json:"report"`
}

// supResponse is the /v1/sup body.
type supResponse struct {
	Proto      string         `json:"proto"`
	Advs       []string       `json:"advs"`
	Gamma      [4]float64     `json:"gamma"`
	Runs       int            `json:"runs"`
	Seed       int64          `json:"seed"`
	Best       string         `json:"best"`
	BestReport reportView     `json:"best_report"`
	Strategies []strategyView `json:"strategies"`
	Engine     engineView     `json:"engine"`
}

func (s *server) handleSup(w http.ResponseWriter, r *http.Request) {
	var params service.SupParams
	if !s.decodeBody(w, r, &params) {
		return
	}
	params.Runs = s.fillRuns(params.Runs)
	// Synchronous like estimate: canceled requests cancel the job.
	job, err := s.pool.Submit(params, service.WithJobContext(r.Context()))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := job.Wait()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	markCache(w, res)
	sup := res.Sup
	strategies := make([]strategyView, 0, len(sup.All))
	names := make([]string, 0, len(sup.All))
	for name := range sup.All {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		strategies = append(strategies, strategyView{Name: name, Report: reportOf(sup.All[name])})
	}
	writeJSON(w, http.StatusOK, supResponse{
		Proto: params.Proto, Advs: params.Advs, Gamma: resolveGamma(params.Gamma, params.Proto),
		Runs: params.Runs, Seed: params.Seed,
		Best: sup.Best, BestReport: reportOf(sup.BestReport),
		Strategies: strategies, Engine: engineOf(sup.Metrics),
	})
}

// jobView is the async job status body (/v1/sweep, /v1/jobs/{id}).
type jobView struct {
	JobID  uint64 `json:"job_id"`
	Kind   string `json:"kind"`
	Status string `json:"status"` // running | done | failed
	Error  string `json:"error,omitempty"`
	// Sweep is set once a sweep job is done.
	Sweep *sweepView `json:"sweep,omitempty"`
	// Search is set once a search job is done.
	Search *searchView `json:"search,omitempty"`
}

// searchView summarizes a finished best-response search job.
type searchView struct {
	Best           string   `json:"best"`
	Utility        statView `json:"utility"`
	Arms           int      `json:"arms"`
	Waves          int      `json:"waves"`
	TotalRuns      int64    `json:"total_runs"`
	ExhaustiveRuns int64    `json:"exhaustive_runs"`
	Savings        float64  `json:"savings"`
	Replayed       int      `json:"replayed,omitempty"`
	CacheHit       bool     `json:"cache_hit"`
}

// sweepView summarizes a finished sweep job.
type sweepView struct {
	Records     int      `json:"records"`
	TotalChecks int      `json:"total_checks"`
	Breaches    int      `json:"breaches"`
	Resumed     int      `json:"resumed"`
	Skipped     []string `json:"skipped,omitempty"`
	OK          bool     `json:"ok"`
	CacheHit    bool     `json:"cache_hit"`
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var params service.SweepParams
	if !s.decodeBody(w, r, &params) {
		return
	}
	// Deliberately NOT tied to r.Context(): the sweep is async — the 202
	// response ends the request, and the job must outlive it for the
	// client to poll /v1/jobs/{id}.
	job, err := s.pool.Submit(params)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Async: the client polls GET /v1/jobs/{id}. A cache-hit sweep is
	// already done by the time Submit returns.
	writeJSON(w, http.StatusAccepted, viewOf(job))
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var params service.SearchParams
	if !s.decodeBody(w, r, &params) {
		return
	}
	// Async like sweep: a search can race a large space for minutes, so
	// the job is deliberately NOT tied to r.Context() — the 202 response
	// ends the request and the client polls GET /v1/jobs/{id}. Repeated
	// submissions with equal (params, seed) are cache hits.
	job, err := s.pool.Submit(params)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, viewOf(job))
}

func viewOf(job *service.Job) jobView {
	v := jobView{JobID: job.ID, Kind: string(job.Kind), Status: "running"}
	if !job.Finished() {
		return v
	}
	res, err := job.Wait()
	if err != nil {
		v.Status = "failed"
		v.Error = err.Error()
		return v
	}
	v.Status = "done"
	if res.Search != nil {
		sr := res.Search
		v.Search = &searchView{
			Best: sr.Best,
			Utility: statView{
				Mean:      sr.BestReport.Utility.Mean,
				HalfWidth: sr.BestReport.Utility.HalfWidth,
				N:         sr.BestReport.Utility.N,
			},
			Arms: len(sr.Arms), Waves: sr.Waves,
			TotalRuns: sr.TotalRuns, ExhaustiveRuns: sr.ExhaustiveRuns,
			Savings: sr.Savings(), Replayed: sr.Replayed,
			CacheHit: res.CacheHit,
		}
	}
	if res.Sweep != nil {
		v.Sweep = &sweepView{
			Records:     len(res.Sweep.Records),
			TotalChecks: res.Sweep.TotalChecks,
			Breaches:    len(res.Sweep.Breaches),
			Resumed:     res.Sweep.Resumed,
			Skipped:     res.Sweep.Skipped,
			OK:          res.Sweep.OK(),
			CacheHit:    res.CacheHit,
		}
	}
	return v
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id: %w", err))
		return
	}
	job, ok := s.pool.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such job %d", id))
		return
	}
	writeJSON(w, http.StatusOK, viewOf(job))
}

// sessionRequest asks for one real protocol session over the
// chaos-hardened transport (loopback TCP, per the daemon's chaos
// flags). Inputs are uint64 party inputs in party order.
type sessionRequest struct {
	Proto  string   `json:"proto"`
	Inputs []uint64 `json:"inputs"`
	Seed   int64    `json:"seed"`
}

// sessionOutput is one surviving party's output.
type sessionOutput struct {
	Party int    `json:"party"`
	Value string `json:"value"`
	OK    bool   `json:"ok"`
}

// sessionFailStop is one fail-stopped party.
type sessionFailStop struct {
	Party int    `json:"party"`
	Round int    `json:"round"`
	Cause string `json:"cause"`
}

// sessionResponse is the /v1/session body.
type sessionResponse struct {
	Proto     string            `json:"proto"`
	Seed      int64             `json:"seed"`
	Outputs   []sessionOutput   `json:"outputs"`
	FailStops []sessionFailStop `json:"fail_stops,omitempty"`
	Resumes   int               `json:"resumes"`
}

func (s *server) handleSession(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	proto, _, err := service.BuildProtocol(req.Proto)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Inputs) != proto.NumParties() {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("protocol %s needs %d inputs, got %d", req.Proto, proto.NumParties(), len(req.Inputs)))
		return
	}
	inputs := make([]sim.Value, len(req.Inputs))
	for i, v := range req.Inputs {
		inputs[i] = v
	}
	cfg := transport.SessionConfig{}
	if s.chaos != nil {
		inj, err := s.chaos.Injector()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if inj != nil {
			cfg.Fault = inj
			cfg.RoundTimeout = s.chaos.Timeout
			cfg.MaxResumes = 64
		}
	}
	rep, err := transport.RunSessionReport(proto, inputs, req.Seed, cfg)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := sessionResponse{Proto: req.Proto, Seed: req.Seed, Resumes: rep.Resumes}
	for id := sim.PartyID(1); int(id) <= proto.NumParties(); id++ {
		if rec, ok := rep.Outputs[id]; ok {
			resp.Outputs = append(resp.Outputs, sessionOutput{
				Party: int(id), Value: fmt.Sprintf("%v", rec.Value), OK: rec.OK,
			})
		}
		if info, ok := rep.FailStops[id]; ok {
			resp.FailStops = append(resp.FailStops, sessionFailStop{
				Party: int(id), Round: info.Round, Cause: info.Cause,
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// healthView is the /healthz body.
type healthView struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Jobs          int64   `json:"jobs_submitted"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthView{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Jobs:          s.pool.Stats().Submitted,
	})
}

// handleMetrics renders the pool counters and the merged engine metrics
// in the Prometheus text exposition format, fed by the same
// Observer/Metrics stream every estimate aggregates.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.pool.Stats()
	m := s.pool.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	type row struct {
		name, help string
		value      int64
	}
	rows := []row{
		{"fairnessd_jobs_submitted_total", "Jobs accepted, cache hits included.", st.Submitted},
		{"fairnessd_jobs_completed_total", "Jobs finished successfully.", st.Completed},
		{"fairnessd_jobs_failed_total", "Jobs whose execution errored.", st.Failed},
		{"fairnessd_cache_hits_total", "Submissions served from the result cache.", st.CacheHits},
		{"fairnessd_cache_entries", "Current result-cache population.", st.CacheEntries},
		{"fairness_engine_runs_total", "Simulated protocol executions.", m.Runs},
		{"fairness_engine_rounds_total", "Executed message rounds.", m.Rounds},
		{"fairness_engine_messages_total", "Committed messages.", m.Messages},
		{"fairness_engine_broadcasts_total", "Broadcast messages.", m.Broadcasts},
		{"fairness_engine_deliveries_total", "Inbox deliveries.", m.Deliveries},
		{"fairness_engine_corruptions_total", "Corruption events.", m.Corruptions},
		{"fairness_engine_setup_aborts_total", "Aborted hybrid setups.", m.SetupAborts},
		{"fairness_engine_fail_stops_total", "Fail-stop aborts.", m.FailStops},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			r.name, r.help, r.name, typeOf(r.name), r.name, r.value)
	}
	fmt.Fprintf(w, "# HELP fairnessd_uptime_seconds Seconds since daemon start.\n"+
		"# TYPE fairnessd_uptime_seconds gauge\nfairnessd_uptime_seconds %.3f\n",
		time.Since(s.start).Seconds())
}

func typeOf(name string) string {
	if name == "fairnessd_cache_entries" {
		return "gauge"
	}
	return "counter"
}
