package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/service"
)

// selfcheckReport is one load-harness invocation's measurement.
type selfcheckReport struct {
	Generated      string  `json:"generated"`
	GoVersion      string  `json:"go_version"`
	GOOS           string  `json:"goos"`
	GOARCH         string  `json:"goarch"`
	CPUs           int     `json:"cpus"`
	Requests       int     `json:"requests"`
	Concurrency    int     `json:"concurrency"`
	DistinctPoints int     `json:"distinct_points"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	CacheHits      int64   `json:"cache_hits"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	ByteIdentical  bool    `json:"byte_identical"`
	Failures       int     `json:"failures"`
}

// selfcheckTrajectory is the BENCH_service.json document: every
// invocation appends to the history (the fairbench convention).
// Fabric is fairbench's distributed-sweep benchmark section, carried
// opaquely so a selfcheck rewrite never drops or reorders it.
type selfcheckTrajectory struct {
	History []selfcheckReport `json:"history"`
	Fabric  json.RawMessage   `json:"fabric,omitempty"`
	Search  json.RawMessage   `json:"search,omitempty"`
}

// selfcheckPoints are the estimation parameter points the harness
// cycles through; repeats of each point exercise the cache-hit path.
var selfcheckPoints = []service.EstimateParams{
	{Proto: "pi1", Adv: "agen", Runs: 200, Seed: 1},
	{Proto: "pi2", Adv: "lock-abort:1", Runs: 200, Seed: 2},
	{Proto: "2sfe-opt", Adv: "lock-abort:2", Runs: 200, Seed: 3},
	{Proto: "2sfe-oneround", Adv: "agen", Runs: 200, Seed: 4},
	{Proto: "2sfe-fixed2", Adv: "static:1", Runs: 200, Seed: 5},
	{Proto: "gk-pitilde", Adv: "passive", Runs: 200, Seed: 6},
	{Proto: "nsfe-opt:3", Adv: "lock-abort:1", Runs: 100, Seed: 7},
	{Proto: "gk-polydomain:2", Adv: "leak-extractor", Runs: 100, Seed: 8},
}

// runSelfcheck boots the daemon on a loopback listener, hammers
// /v1/estimate with concurrent requests (cache-hit repeats included),
// verifies repeated responses are byte-identical, and appends the
// sustained request rate and cache hit rate to outPath.
func runSelfcheck(srv *server, pool *service.Pool, requests int, outPath string) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() { _ = httpSrv.Close() }()
	base := "http://" + ln.Addr().String()

	concurrency := 4 * runtime.GOMAXPROCS(0)
	if concurrency > requests {
		concurrency = requests
	}
	fmt.Printf("fairnessd selfcheck: %d requests, %d concurrent, %d distinct points @ %s\n",
		requests, concurrency, len(selfcheckPoints), base)

	var (
		mu       sync.Mutex
		bodies   = map[int][]byte{} // point index → first response body
		mismatch int
		failures int
	)
	client := &http.Client{Timeout: 2 * time.Minute}
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				point := i % len(selfcheckPoints)
				payload, _ := json.Marshal(selfcheckPoints[point])
				resp, err := client.Post(base+"/v1/estimate", "application/json", bytes.NewReader(payload))
				if err != nil {
					mu.Lock()
					failures++
					mu.Unlock()
					continue
				}
				body, err := io.ReadAll(resp.Body)
				_ = resp.Body.Close()
				mu.Lock()
				if err != nil || resp.StatusCode != http.StatusOK {
					failures++
				} else if prev, ok := bodies[point]; !ok {
					bodies[point] = body
				} else if !bytes.Equal(prev, body) {
					mismatch++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < requests; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	st := pool.Stats()
	rep := selfcheckReport{
		Generated:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		CPUs:           runtime.NumCPU(),
		Requests:       requests,
		Concurrency:    concurrency,
		DistinctPoints: len(selfcheckPoints),
		ElapsedMS:      float64(elapsed.Microseconds()) / 1e3,
		RequestsPerSec: float64(requests) / elapsed.Seconds(),
		CacheHits:      st.CacheHits,
		CacheHitRate:   float64(st.CacheHits) / float64(max64(st.Submitted, 1)),
		ByteIdentical:  mismatch == 0,
		Failures:       failures,
	}

	var traj selfcheckTrajectory
	if data, err := os.ReadFile(outPath); err == nil {
		_ = json.Unmarshal(data, &traj)
	}
	traj.History = append(traj.History, rep)
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("selfcheck: %.1f req/s over %s, cache hit rate %.1f%% (%d/%d), byte-identical=%v\n",
		rep.RequestsPerSec, elapsed.Round(time.Millisecond), 100*rep.CacheHitRate,
		st.CacheHits, st.Submitted, rep.ByteIdentical)
	fmt.Printf("selfcheck: report appended to %s (%d entries)\n", outPath, len(traj.History))
	if failures > 0 {
		return fmt.Errorf("selfcheck: %d request(s) failed", failures)
	}
	if mismatch > 0 {
		return fmt.Errorf("selfcheck: %d repeated response(s) were not byte-identical", mismatch)
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
