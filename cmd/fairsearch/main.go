// Command fairsearch races a strategy space to the protocol's certified
// best response — the sup of Definition 1 — using successive
// elimination and branch-and-bound instead of exhaustive enumeration.
//
// Usage:
//
//	fairsearch -proto 2sfe-opt
//	fairsearch -proto gk-polydomain:4 -runs 8000 -sup 1500
//	fairsearch -proto pi2 -arms 8 -search-checkpoint search.jsonl
//	fairsearch -proto pi2 -exhaustive            # ground-truth comparator
//
// The racing schedule admits arms in descending static-bound order
// (pruning any arm whose bound cannot beat the incumbent), races the
// survivors in geometrically growing waves with Wilson-interval
// eliminations under the -elim-delta union bound, and certifies the
// winner at the full -runs resolution. The certified winner and its
// utility are bit-identical to what -exhaustive computes for that arm;
// only the number of simulated runs differs (the printed savings).
//
// -search-checkpoint streams every scheduling decision and measured
// wave to a JSONL file; re-running with the same flags resumes it and
// converges to a byte-identical checkpoint.
//
// Protocols and spaces come from the shared registry: see fairsim -h
// for protocol names; -space raw (default) is the structured corrupted
// set × abort round × input substitution space, -space classic the
// curated slice space of package adversary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/search"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fairsearch:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fairsearch", flag.ContinueOnError)
	protoName := fs.String("proto", "2sfe-opt", "protocol to search")
	spaceName := fs.String("space", service.SpaceRaw, "strategy space (raw or classic)")
	wave := fs.Int("wave", 0, "first racing wave's per-arm runs (0 = engine default)")
	growth := fs.Int("growth", 0, "per-wave geometric growth factor (0 = engine default)")
	exhaustive := fs.Bool("exhaustive", false, "estimate every arm at full resolution (the comparator racing is measured against)")
	jsonOut := fs.Bool("json", false, "print the full search report as JSON")
	est := cliflags.RegisterEstimation(fs, cliflags.EstimationSpec{
		Runs:      5000,
		RunsUsage: "certification runs for the winner (and per-arm cost of -exhaustive)",
		Sup:       true,
		SupRuns:   1000,
		SupUsage:  "racing run cap per arm",
		Seed:      1,
		Parallel:  true,
	})
	sf := cliflags.RegisterSearch(fs)
	paired := fs.Bool("paired-seeds", false,
		"race arms on common random numbers (CRN): paired eliminations kill dominated arms earlier; changes report bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	proto, _, err := service.BuildProtocol(*protoName)
	if err != nil {
		return err
	}
	space, err := service.BuildSpace(*spaceName, *protoName)
	if err != nil {
		return err
	}
	gamma := service.DefaultPayoff(*protoName)

	var opts []service.JobOption
	if sf.Checkpoint != "" {
		opts = append(opts, service.WithCheckpoint(sf.Checkpoint))
	}
	if est.Given("parallel") {
		opts = append(opts, service.WithJobParallelism(est.Parallel))
	}
	pool := service.New(service.Config{Workers: 1, CacheSize: -1, Parallelism: est.Parallel})
	defer pool.Close()
	job, err := pool.Submit(service.SearchParams{
		Proto: *protoName, Space: *spaceName,
		Wave: *wave, Growth: *growth,
		RaceRuns: est.Sup, FinalRuns: est.Runs,
		Delta: sf.ElimDelta, MaxArms: sf.Arms,
		Exhaustive: *exhaustive, PairedSeeds: *paired, Seed: est.Seed,
	}, opts...)
	if err != nil {
		return err
	}
	res, err := job.Wait()
	if err != nil {
		return err
	}
	rep := res.Search

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("protocol : %s (n=%d, rounds=%d)\n", proto.Name(), proto.NumParties(), proto.NumRounds())
	fmt.Printf("space    : %s (%d arms)\n", space.Describe(), space.Len())
	fmt.Printf("payoff   : %+v\n", gamma)
	fmt.Printf("best     : %s\n", rep.Best)
	fmt.Printf("utility  : %s\n", rep.BestReport.Utility)
	fmt.Printf("events   : E00=%.4f E01=%.4f E10=%.4f E11=%.4f\n",
		rep.BestReport.EventFreq[core.E00], rep.BestReport.EventFreq[core.E01],
		rep.BestReport.EventFreq[core.E10], rep.BestReport.EventFreq[core.E11])
	fmt.Printf("schedule : %d waves, δ=%g (δ'=%.2e per check, z=%.2f)\n",
		rep.Waves, rep.Delta, rep.DeltaPrime, rep.Z)
	if rep.Replayed > 0 {
		fmt.Printf("resumed  : %d records replayed from %s\n", rep.Replayed, sf.Checkpoint)
	}
	fmt.Printf("cost     : %d runs vs %d exhaustive — %.1f× savings\n",
		rep.TotalRuns, rep.ExhaustiveRuns, rep.Savings())
	counts := map[string]int{}
	for _, a := range rep.Arms {
		counts[a.Status]++
	}
	fmt.Printf("arms     : %d best, %d survivors, %d killed, %d pruned\n",
		counts[search.StatusBest], counts[search.StatusSurvivor],
		counts[search.StatusKilled], counts[search.StatusPruned])
	for _, a := range rep.Arms {
		if a.Status == search.StatusBest || a.Status == search.StatusSurvivor {
			fmt.Printf("  %-28s %-8s bound=%.3f runs=%-6d mean=%.4f [%.4f, %.4f]\n",
				a.Name, a.Status, a.Bound, a.Runs, a.Mean, a.Lo, a.Hi)
		}
	}
	return nil
}
