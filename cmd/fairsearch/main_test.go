package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	if err := run([]string{"-proto", "pi1", "-sup", "200", "-runs", "400", "-seed", "11"}); err != nil {
		t.Fatalf("smoke search failed: %v", err)
	}
}

func TestRunBadProto(t *testing.T) {
	if err := run([]string{"-proto", "nope"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunBadSpace(t *testing.T) {
	if err := run([]string{"-proto", "pi1", "-space", "fancy"}); err == nil {
		t.Fatal("unknown space accepted")
	}
}

// TestRunCheckpointReplay reruns a checkpointed search and requires the
// second invocation to leave the checkpoint byte-identical: the whole
// schedule replays from the file, nothing is recomputed differently.
func TestRunCheckpointReplay(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "search.jsonl")
	args := []string{"-proto", "pi1", "-sup", "200", "-runs", "400", "-seed", "11", "-search-checkpoint", cp}
	if err := run(args); err != nil {
		t.Fatalf("first run: %v", err)
	}
	first, err := os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("checkpoint is empty after a completed search")
	}
	if err := run(args); err != nil {
		t.Fatalf("replay run: %v", err)
	}
	second, err := os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatal("checkpoint changed across a pure replay")
	}
}
