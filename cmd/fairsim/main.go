// Command fairsim runs a single protocol against a single adversary
// strategy and prints the resulting utility report — a REPL-style probe
// for exploring the fairness landscape.
//
// Usage:
//
//	fairsim -proto 2sfe-opt -adv lock-abort:1 -runs 2000 -seed 7 [-parallel P]
//	fairsim -proto 2sfe-opt -adv lock-abort:1 -runs 4 -trace out.jsonl
//	fairsim -print-trace out.jsonl
//
// -trace writes a structured JSONL transcript of every simulated run
// (the engine's observer event stream); -print-trace pretty-prints such
// a transcript round by round and exits.
//
// Protocols: pi1, pi2, 2sfe-opt, 2sfe-fixed2, 2sfe-oneround,
// nsfe-opt:N, nsfe-gmw12:N, nsfe-lemma18:N, nsfe-hybrid:N,
// gk-polydomain:P, gk-polyrange:P, gk-pitilde.
//
// Adversaries: passive, static:IDS, lock-abort:IDS, abort:R:IDS,
// setup-abort:IDS, agen, allbut-mixer, leak-extractor
// (IDS is a +-separated party list, e.g. lock-abort:1+3).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/sim/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fairsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fairsim", flag.ContinueOnError)
	protoName := fs.String("proto", "2sfe-opt", "protocol to run")
	advName := fs.String("adv", "agen", "adversary strategy")
	est := cliflags.RegisterEstimation(fs, cliflags.EstimationSpec{
		Runs:       1000,
		Seed:       1,
		Parallel:   true,
		Trace:      true,
		TraceUsage: "write a JSONL transcript of every run to this file",
	})
	printTrace := fs.String("print-trace", "", "pretty-print a JSONL transcript file and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *printTrace != "" {
		f, err := os.Open(*printTrace)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		return trace.Fprint(os.Stdout, f)
	}

	proto, _, err := service.BuildProtocol(*protoName)
	if err != nil {
		return err
	}
	gamma := service.DefaultPayoff(*protoName)

	var opts []service.JobOption
	var sink *trace.Sink
	if est.Trace != "" {
		f, err := os.Create(est.Trace)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		sink = trace.NewSink(f)
		opts = append(opts, service.WithTrace(sink), service.WithTraceLabel(*advName))
	}

	pool := service.New(service.Config{Workers: 1, CacheSize: -1, Parallelism: est.Parallel})
	defer pool.Close()
	job, err := pool.Submit(service.EstimateParams{
		Proto: *protoName, Adv: *advName, Runs: est.Runs, Seed: est.Seed,
	}, opts...)
	if err != nil {
		return err
	}
	res, err := job.Wait()
	if err != nil {
		return err
	}
	rep := *res.Estimate
	fmt.Printf("protocol : %s (n=%d, rounds=%d)\n", proto.Name(), proto.NumParties(), proto.NumRounds())
	fmt.Printf("adversary: %s\n", *advName)
	fmt.Printf("payoff   : %+v\n", gamma)
	fmt.Printf("utility  : %s\n", rep.Utility)
	fmt.Printf("events   : E00=%.4f E01=%.4f E10=%.4f E11=%.4f\n",
		rep.EventFreq[core.E00], rep.EventFreq[core.E01], rep.EventFreq[core.E10], rep.EventFreq[core.E11])
	fmt.Printf("violations=%.4f privacy-breaches=%.4f mean-corrupted=%.2f\n",
		rep.CorrectnessViolations, rep.PrivacyBreaches, rep.MeanCorrupted)
	m := rep.Metrics
	fmt.Printf("engine   : runs=%d rounds=%d msgs=%d broadcasts=%d corruptions=%d setup-aborts=%d\n",
		m.Runs, m.Rounds, m.Messages, m.Broadcasts, m.Corruptions, m.SetupAborts)
	if sink != nil {
		if err := sink.Err(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		st := sink.Stats()
		if st.Runs != m.Runs || st.Rounds != m.Rounds || st.Sends != m.Messages {
			return fmt.Errorf("trace: transcript stats %+v disagree with engine metrics %+v", st, m)
		}
		fmt.Printf("trace    : %s (%d lines, %d runs; counts match engine metrics)\n",
			est.Trace, st.Lines, st.Runs)
	}
	return nil
}
