// Command fairsim runs a single protocol against a single adversary
// strategy and prints the resulting utility report — a REPL-style probe
// for exploring the fairness landscape.
//
// Usage:
//
//	fairsim -proto 2sfe-opt -adv lock-abort:1 -runs 2000 -seed 7 [-parallel P]
//	fairsim -proto 2sfe-opt -adv lock-abort:1 -runs 4 -trace out.jsonl
//	fairsim -print-trace out.jsonl
//
// -trace writes a structured JSONL transcript of every simulated run
// (the engine's observer event stream); -print-trace pretty-prints such
// a transcript round by round and exits.
//
// Protocols: pi1, pi2, 2sfe-opt, 2sfe-fixed2, 2sfe-oneround,
// nsfe-opt:N, nsfe-gmw12:N, nsfe-lemma18:N, nsfe-hybrid:N,
// gk-polydomain:P, gk-polyrange:P, gk-pitilde.
//
// Adversaries: passive, static:IDS, lock-abort:IDS, abort:R:IDS,
// setup-abort:IDS, agen, allbut-mixer, leak-extractor
// (IDS is a +-separated party list, e.g. lock-abort:1+3).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/protocols/contract"
	"repro/internal/protocols/gordonkatz"
	"repro/internal/protocols/multiparty"
	"repro/internal/protocols/twoparty"
	"repro/internal/sim"
	"repro/internal/sim/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fairsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fairsim", flag.ContinueOnError)
	protoName := fs.String("proto", "2sfe-opt", "protocol to run")
	advName := fs.String("adv", "agen", "adversary strategy")
	runs := fs.Int("runs", 1000, "Monte-Carlo runs")
	seed := fs.Int64("seed", 1, "random seed")
	parallel := fs.Int("parallel", 0, "estimation workers (0 = one per CPU, 1 = sequential)")
	traceFile := fs.String("trace", "", "write a JSONL transcript of every run to this file")
	printTrace := fs.String("print-trace", "", "pretty-print a JSONL transcript file and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *printTrace != "" {
		f, err := os.Open(*printTrace)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		return trace.Fprint(os.Stdout, f)
	}

	proto, sampler, err := buildProtocol(*protoName)
	if err != nil {
		return err
	}
	adv, err := buildAdversary(*advName, proto.NumParties())
	if err != nil {
		return err
	}
	gamma := core.StandardPayoff()
	if strings.HasPrefix(*protoName, "gk-") {
		gamma = core.GordonKatzPayoff()
	}

	opts := []core.Option{core.WithParallelism(*parallel)}
	var sink *trace.Sink
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		sink = trace.NewSink(f)
		opts = append(opts, core.WithObserver(func(run int) sim.Observer {
			return sink.Recorder(trace.Meta{Strategy: *advName, Run: run})
		}))
	}

	rep, err := core.EstimateUtility(proto, adv, gamma, sampler, *runs, *seed, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("protocol : %s (n=%d, rounds=%d)\n", proto.Name(), proto.NumParties(), proto.NumRounds())
	fmt.Printf("adversary: %s\n", *advName)
	fmt.Printf("payoff   : %+v\n", gamma)
	fmt.Printf("utility  : %s\n", rep.Utility)
	fmt.Printf("events   : E00=%.4f E01=%.4f E10=%.4f E11=%.4f\n",
		rep.EventFreq[core.E00], rep.EventFreq[core.E01], rep.EventFreq[core.E10], rep.EventFreq[core.E11])
	fmt.Printf("violations=%.4f privacy-breaches=%.4f mean-corrupted=%.2f\n",
		rep.CorrectnessViolations, rep.PrivacyBreaches, rep.MeanCorrupted)
	m := rep.Metrics
	fmt.Printf("engine   : runs=%d rounds=%d msgs=%d broadcasts=%d corruptions=%d setup-aborts=%d\n",
		m.Runs, m.Rounds, m.Messages, m.Broadcasts, m.Corruptions, m.SetupAborts)
	if sink != nil {
		if err := sink.Err(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		st := sink.Stats()
		if st.Runs != m.Runs || st.Rounds != m.Rounds || st.Sends != m.Messages {
			return fmt.Errorf("trace: transcript stats %+v disagree with engine metrics %+v", st, m)
		}
		fmt.Printf("trace    : %s (%d lines, %d runs; counts match engine metrics)\n",
			*traceFile, st.Lines, st.Runs)
	}
	return nil
}

func buildProtocol(name string) (sim.Protocol, core.InputSampler, error) {
	base, arg, _ := strings.Cut(name, ":")
	n := 0
	if arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil {
			return nil, nil, fmt.Errorf("bad protocol argument %q: %w", arg, err)
		}
		n = v
	}
	uniformN := func(parties, max int) core.InputSampler {
		return func(r *rand.Rand) []sim.Value {
			in := make([]sim.Value, parties)
			for i := range in {
				in[i] = uint64(r.Intn(max))
			}
			return in
		}
	}
	switch base {
	case "pi1":
		return contract.Pi1{}, uniformN(2, 1<<16), nil
	case "pi2":
		return contract.Pi2{}, uniformN(2, 1<<16), nil
	case "2sfe-opt":
		return twoparty.New(twoparty.Swap()), uniformN(2, 1<<20), nil
	case "2sfe-fixed2":
		return twoparty.NewFixedOrder(twoparty.Swap(), 2), uniformN(2, 1<<20), nil
	case "2sfe-oneround":
		return twoparty.NewOneRound(twoparty.Swap()), uniformN(2, 1<<20), nil
	case "nsfe-opt", "nsfe-gmw12", "nsfe-lemma18", "nsfe-hybrid":
		if n < 2 {
			n = 4
		}
		fn, err := multiparty.Concat(n, 8)
		if err != nil {
			return nil, nil, err
		}
		var p sim.Protocol
		switch base {
		case "nsfe-opt":
			p = multiparty.NewOptN(fn)
		case "nsfe-gmw12":
			p = multiparty.NewGMWHalf(fn)
		case "nsfe-lemma18":
			p = multiparty.NewLemma18(fn)
		default:
			p = multiparty.NewHybrid(fn)
		}
		return p, uniformN(n, 256), nil
	case "gk-polydomain", "gk-polyrange":
		if arg == "" {
			n = 4
		}
		if n < 1 {
			return nil, nil, fmt.Errorf("gk protocols need p ≥ 1, got %d", n)
		}
		var (
			p   gordonkatz.Protocol
			err error
		)
		if base == "gk-polydomain" {
			p, err = gordonkatz.NewPolyDomain(gordonkatz.AND(), n)
		} else {
			p, err = gordonkatz.NewPolyRange(gordonkatz.AND(), n)
		}
		if err != nil {
			return nil, nil, err
		}
		return p, core.FixedInputs(uint64(1), uint64(1)), nil
	case "gk-pitilde":
		p, err := gordonkatz.NewPitilde()
		if err != nil {
			return nil, nil, err
		}
		return p, uniformN(2, 2), nil
	default:
		return nil, nil, fmt.Errorf("unknown protocol %q", name)
	}
}

func buildAdversary(name string, n int) (sim.Adversary, error) {
	parts := strings.Split(name, ":")
	parseIDs := func(s string) ([]sim.PartyID, error) {
		var ids []sim.PartyID
		for _, tok := range strings.Split(s, "+") {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("bad party id %q: %w", tok, err)
			}
			ids = append(ids, sim.PartyID(v))
		}
		return ids, nil
	}
	switch parts[0] {
	case "passive":
		return sim.Passive{}, nil
	case "agen":
		return adversary.NewAgen(), nil
	case "allbut-mixer":
		return adversary.NewAllButMixer(n), nil
	case "leak-extractor":
		return gordonkatz.NewLeakExtractor(), nil
	case "static", "lock-abort", "setup-abort":
		if len(parts) != 2 {
			return nil, fmt.Errorf("%s needs a party list, e.g. %s:1+2", parts[0], parts[0])
		}
		ids, err := parseIDs(parts[1])
		if err != nil {
			return nil, err
		}
		switch parts[0] {
		case "static":
			return adversary.NewStatic(ids...), nil
		case "lock-abort":
			return adversary.NewLockAbort(ids...), nil
		default:
			return adversary.NewSetupAbort(ids...), nil
		}
	case "abort":
		if len(parts) != 3 {
			return nil, fmt.Errorf("abort needs round and party list, e.g. abort:2:1")
		}
		round, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad round %q: %w", parts[1], err)
		}
		ids, err := parseIDs(parts[2])
		if err != nil {
			return nil, err
		}
		return adversary.NewAbortAt(round, ids...), nil
	default:
		return nil, fmt.Errorf("unknown adversary %q", name)
	}
}
