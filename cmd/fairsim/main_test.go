package main

import (
	"strings"
	"testing"
)

func TestRunEndToEnd(t *testing.T) {
	if err := run([]string{"-proto", "pi1", "-adv", "lock-abort:2", "-runs", "50", "-seed", "3"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	err := run([]string{"-proto", "nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Errorf("err = %v", err)
	}
}
