package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenMatrix is the frozen flag matrix: the refactor onto the service
// layer must keep every one of these invocations byte-identical.
var goldenMatrix = []struct {
	name string
	args []string
}{
	{"2sfe_lock", []string{"-proto", "2sfe-opt", "-adv", "lock-abort:1", "-runs", "200", "-seed", "7"}},
	{"pi2_abort", []string{"-proto", "pi2", "-adv", "abort:2:1", "-runs", "100", "-seed", "3"}},
	{"gk_leak", []string{"-proto", "gk-polydomain:2", "-adv", "leak-extractor", "-runs", "100", "-seed", "5"}},
	{"gmw_setup", []string{"-proto", "nsfe-gmw12:4", "-adv", "setup-abort:1+2", "-runs", "100", "-seed", "2"}},
	{"2sfe_parallel1", []string{"-proto", "2sfe-opt", "-adv", "agen", "-runs", "150", "-seed", "9", "-parallel", "1"}},
}

func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	defer func() { os.Stdout = old }()
	fn()
	_ = w.Close()
	out := <-done
	os.Stdout = old
	return out
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenOutput pins the command's stdout for the frozen flag matrix.
func TestGoldenOutput(t *testing.T) {
	for _, tc := range goldenMatrix {
		t.Run(tc.name, func(t *testing.T) {
			var rerr error
			out := captureStdout(t, func() { rerr = run(tc.args) })
			if rerr != nil {
				t.Fatalf("run: %v\noutput:\n%s", rerr, out)
			}
			checkGolden(t, tc.name, out)
		})
	}
}
