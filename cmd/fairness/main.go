// Command fairness runs the paper-reproduction experiments (E01..E12)
// and prints one paper-vs-measured table per theorem/lemma.
//
// Usage:
//
//	fairness [-quick] [-runs N] [-sup N] [-seed S] [-parallel P] [-exp E05[,E07]] [-trace F]
//
// The default configuration matches EXPERIMENTS.md; -quick runs a fast
// smoke sweep. -parallel sets the estimation worker count (0, the
// default, means one worker per CPU; 1 forces sequential execution);
// results are identical for every setting. -trace writes a JSONL
// transcript of every simulated run to F (pretty-print it with
// `fairsim -print-trace F`); expect large files outside -quick/-exp.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/sim/trace"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// options is the parsed command line.
type options struct {
	cfg       experiments.Config
	selected  map[string]bool
	format    string
	traceFile string
}

// parseArgs builds the experiment configuration. Overrides apply only
// when their flag was explicitly given (detected via fs.Visit), so
// explicit zero values — in particular -seed 0 — are honored instead of
// silently falling back to the defaults.
func parseArgs(args []string) (options, error) {
	fs := flag.NewFlagSet("fairness", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "use the fast smoke-test configuration")
	est := cliflags.RegisterEstimation(fs, cliflags.EstimationSpec{
		RunsUsage: "override Monte-Carlo runs per measurement",
		Sup:       true,
		SupUsage:  "override per-strategy runs in sup searches",
		SeedUsage: "override the experiment seed",
		Parallel:  true,
		Trace:     true,
	})
	only := fs.String("exp", "", "comma-separated experiment IDs (default: all)")
	format := fs.String("format", "text", "output format: text or markdown")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	if est.Given("runs") {
		cfg.Runs = est.Runs
	}
	if est.Given("sup") {
		cfg.SupRuns = est.Sup
	}
	if est.Given("seed") {
		cfg.Seed = est.Seed
	}
	if est.Given("parallel") {
		cfg.Parallelism = est.Parallel
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			selected[id] = true
		}
	}
	return options{cfg: cfg, selected: selected, format: *format, traceFile: est.Trace}, nil
}

func run(args []string) int {
	opts, err := parseArgs(args)
	if err != nil {
		return 2
	}
	cfg := opts.cfg
	if opts.traceFile != "" {
		f, err := os.Create(opts.traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fairness:", err)
			return 1
		}
		defer func() { _ = f.Close() }()
		cfg.Trace = trace.NewSink(f)
	}
	pool := service.New(service.Config{Workers: 1, CacheSize: -1, Parallelism: cfg.Parallelism})
	defer pool.Close()

	fmt.Printf("utility-based fairness reproduction (runs=%d sup=%d seed=%d γ=%+v)\n\n",
		cfg.Runs, cfg.SupRuns, cfg.Seed, cfg.Gamma)

	allPass := true
	for _, e := range experiments.All() {
		if len(opts.selected) > 0 && !opts.selected[e.ID] {
			continue
		}
		// One service job per experiment: the pool keeps per-experiment
		// engine metrics on each result and merges the totals.
		job, err := pool.Submit(service.ExperimentParams{IDs: []string{e.ID}, Config: cfg})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			return 1
		}
		jres, err := job.Wait()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 1
		}
		res := jres.Experiments[0]
		if opts.format == "markdown" {
			printMarkdown(res)
		} else {
			printResult(res)
		}
		if !res.Pass() {
			allPass = false
		}
	}
	m := pool.Metrics()
	fmt.Printf("engine: runs=%d rounds=%d msgs=%d broadcasts=%d corruptions=%d setup-aborts=%d\n",
		m.Runs, m.Rounds, m.Messages, m.Broadcasts, m.Corruptions, m.SetupAborts)
	if cfg.Trace != nil {
		if err := cfg.Trace.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "fairness: trace:", err)
			return 1
		}
		st := cfg.Trace.Stats()
		fmt.Printf("trace : %s (%d lines, %d runs)\n", opts.traceFile, st.Lines, st.Runs)
	}
	if !allPass {
		fmt.Println("RESULT: some rows FAILED")
		return 1
	}
	fmt.Println("RESULT: all experiments consistent with the paper")
	return 0
}

func printResult(res experiments.Result) {
	fmt.Printf("%s — %s\n", res.ID, res.Title)
	fmt.Printf("    claim: %s\n", res.Claim)
	fmt.Printf("    %-46s %10s %2s %10s %8s  %s\n", "quantity", "paper", "", "measured", "status", "note")
	for _, row := range res.Rows {
		status := "ok"
		if !row.Pass {
			status = "FAIL"
		}
		ci := ""
		if row.CI > 0 {
			ci = fmt.Sprintf("±%.3f", row.CI)
		}
		fmt.Printf("    %-46s %10.4f %2s %10.4f %8s  %s %s\n",
			row.Label, row.Paper, row.Dir, row.Measured, status, ci, row.Note)
	}
	if m := res.Metrics; m.Runs > 0 {
		fmt.Printf("    engine: runs=%d rounds=%d msgs=%d corruptions=%d setup-aborts=%d\n",
			m.Runs, m.Rounds, m.Messages, m.Corruptions, m.SetupAborts)
	}
	fmt.Println()
}

// printMarkdown renders one experiment as a GitHub-flavored table, the
// format used by EXPERIMENTS.md.
func printMarkdown(res experiments.Result) {
	fmt.Printf("## %s — %s\n\n", res.ID, res.Title)
	fmt.Printf("*%s*\n\n", res.Claim)
	fmt.Println("| quantity | paper | | measured | status |")
	fmt.Println("|---|---:|:-:|---:|:-:|")
	for _, row := range res.Rows {
		status := "ok"
		if !row.Pass {
			status = "**FAIL**"
		}
		measured := fmt.Sprintf("%.4f", row.Measured)
		if row.CI > 0 {
			measured += fmt.Sprintf(" ± %.3f", row.CI)
		}
		dir := row.Dir
		if dir == "<=" {
			dir = "≤"
		} else if dir == ">=" {
			dir = "≥"
		}
		fmt.Printf("| %s | %.4f | %s | %s | %s |\n", row.Label, row.Paper, dir, measured, status)
	}
	fmt.Println()
}
