package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenMatrix is the frozen flag matrix: the refactor onto the service
// layer must keep every one of these invocations byte-identical.
var goldenMatrix = []struct {
	name string
	args []string
}{
	{"quick_e01", []string{"-quick", "-runs", "60", "-sup", "40", "-exp", "E01"}},
	{"quick_e04_markdown", []string{"-quick", "-runs", "60", "-sup", "40", "-exp", "E04", "-format", "markdown"}},
	{"quick_e04_seed0", []string{"-quick", "-seed", "0", "-runs", "60", "-sup", "40", "-exp", "E04"}},
	{"quick_e05_parallel1", []string{"-quick", "-runs", "60", "-sup", "40", "-exp", "E05", "-parallel", "1"}},
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// everything it wrote.
func captureStdout(t *testing.T, fn func()) []byte {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		data, _ := io.ReadAll(r)
		done <- data
	}()
	defer func() { os.Stdout = old }()
	fn()
	_ = w.Close()
	out := <-done
	os.Stdout = old
	return out
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenOutput pins the command's stdout for the frozen flag matrix.
func TestGoldenOutput(t *testing.T) {
	for _, tc := range goldenMatrix {
		t.Run(tc.name, func(t *testing.T) {
			var code int
			out := captureStdout(t, func() { code = run(tc.args) })
			if code != 0 {
				t.Fatalf("exit code %d\noutput:\n%s", code, out)
			}
			checkGolden(t, tc.name, out)
		})
	}
}
