package main

import "testing"

func TestRunSelectedQuick(t *testing.T) {
	if code := run([]string{"-quick", "-runs", "60", "-sup", "40", "-exp", "E01"}); code != 0 {
		t.Errorf("exit code %d", code)
	}
}

func TestRunUnknownExperimentSelectsNothing(t *testing.T) {
	// An unknown ID simply selects no experiments; everything vacuously
	// passes.
	if code := run([]string{"-quick", "-exp", "E99"}); code != 0 {
		t.Errorf("exit code %d", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-definitely-not-a-flag"}); code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
}

func TestRunSeedOverride(t *testing.T) {
	if code := run([]string{"-quick", "-seed", "7", "-runs", "60", "-sup", "40", "-exp", "E04"}); code != 0 {
		t.Errorf("exit code %d", code)
	}
}

func TestRunMarkdownFormat(t *testing.T) {
	if code := run([]string{"-quick", "-runs", "60", "-sup", "40", "-exp", "E04", "-format", "markdown"}); code != 0 {
		t.Errorf("exit code %d", code)
	}
}
