package main

import "testing"

func TestRunSelectedQuick(t *testing.T) {
	if code := run([]string{"-quick", "-runs", "60", "-sup", "40", "-exp", "E01"}); code != 0 {
		t.Errorf("exit code %d", code)
	}
}

func TestRunUnknownExperimentSelectsNothing(t *testing.T) {
	// An unknown ID simply selects no experiments; everything vacuously
	// passes.
	if code := run([]string{"-quick", "-exp", "E99"}); code != 0 {
		t.Errorf("exit code %d", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-definitely-not-a-flag"}); code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
}

func TestRunSeedOverride(t *testing.T) {
	if code := run([]string{"-quick", "-seed", "7", "-runs", "60", "-sup", "40", "-exp", "E04"}); code != 0 {
		t.Errorf("exit code %d", code)
	}
}

// TestParseArgsExplicitZeroes pins the fs.Visit fix: explicitly passing
// -seed 0 (or -runs/-sup/-parallel 0) must be honored, not treated as
// "flag absent" and silently replaced by the default configuration.
func TestParseArgsExplicitZeroes(t *testing.T) {
	opts, err := parseArgs([]string{"-seed", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.Seed != 0 {
		t.Errorf("explicit -seed 0 gave cfg.Seed = %d, want 0", opts.cfg.Seed)
	}
	// Unset flags keep the defaults.
	def := parseOrDie(t, nil)
	if opts.cfg.Runs != def.cfg.Runs || opts.cfg.SupRuns != def.cfg.SupRuns {
		t.Errorf("unset -runs/-sup should keep defaults: %+v vs %+v", opts.cfg, def.cfg)
	}
	if def.cfg.Seed == 0 {
		t.Fatal("default seed must be nonzero for this test to mean anything")
	}
	// -runs 0 and -sup 0 pass through too (they will surface ErrNoRuns,
	// which is the honored behaviour — not a silent fallback).
	opts, err = parseArgs([]string{"-runs", "0", "-sup", "0", "-parallel", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.Runs != 0 || opts.cfg.SupRuns != 0 || opts.cfg.Parallelism != 0 {
		t.Errorf("explicit zero overrides not honored: %+v", opts.cfg)
	}
}

func parseOrDie(t *testing.T, args []string) options {
	t.Helper()
	opts, err := parseArgs(args)
	if err != nil {
		t.Fatal(err)
	}
	return opts
}

// TestParseArgsParallel checks the -parallel plumbing.
func TestParseArgsParallel(t *testing.T) {
	opts := parseOrDie(t, []string{"-quick", "-parallel", "3"})
	if opts.cfg.Parallelism != 3 {
		t.Errorf("cfg.Parallelism = %d, want 3", opts.cfg.Parallelism)
	}
	// Without the flag, -quick keeps its fixed pool size.
	opts = parseOrDie(t, []string{"-quick"})
	if opts.cfg.Parallelism != 4 {
		t.Errorf("quick default Parallelism = %d, want 4", opts.cfg.Parallelism)
	}
}

// TestRunSeedZero runs an experiment end-to-end at the previously
// unselectable seed 0.
func TestRunSeedZero(t *testing.T) {
	if code := run([]string{"-quick", "-seed", "0", "-runs", "60", "-sup", "40", "-exp", "E04"}); code != 0 {
		t.Errorf("exit code %d", code)
	}
}

func TestRunMarkdownFormat(t *testing.T) {
	if code := run([]string{"-quick", "-runs", "60", "-sup", "40", "-exp", "E04", "-format", "markdown"}); code != 0 {
		t.Errorf("exit code %d", code)
	}
}
