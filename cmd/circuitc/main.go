// Command circuitc builds the library's boolean circuits, reports their
// statistics (gate counts, AND depth — the GMW online round cost), and
// imports/exports Bristol-fashion circuit files.
//
// Usage:
//
//	circuitc -fn millionaires:16            # stats to stdout
//	circuitc -fn max:4x8 -o max.bristol     # export
//	circuitc -in adder.bristol              # import + stats
//
// Functions: and, xor, millionaires:BITS, swap:BITS, equality:BITS,
// concat:NxBITS, max:NxBITS, sum:NxBITS.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/circuit"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "circuitc:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("circuitc", flag.ContinueOnError)
	fn := fs.String("fn", "", "library function to build (see usage)")
	in := fs.String("in", "", "Bristol file to import instead of -fn")
	out := fs.String("o", "", "write the circuit to this Bristol file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		circ *circuit.Circuit
		err  error
		name string
	)
	switch {
	case *in != "":
		f, ferr := os.Open(*in)
		if ferr != nil {
			return ferr
		}
		defer func() { _ = f.Close() }()
		circ, err = circuit.ReadBristol(f)
		name = *in
	case *fn != "":
		circ, err = buildFn(*fn)
		name = *fn
	default:
		return fmt.Errorf("need -fn or -in")
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "circuit  : %s\n", name)
	fmt.Fprintf(stdout, "inputs   : %d wires (%d parties)\n", circ.NumInputs, numParties(circ))
	fmt.Fprintf(stdout, "gates    : %d total, %d AND\n", len(circ.Gates), circ.NumAndGates())
	fmt.Fprintf(stdout, "outputs  : %d wires\n", len(circ.Outputs))
	fmt.Fprintf(stdout, "AND depth: %d (GMW online rounds: %d)\n", circ.AndDepth(), circ.AndDepth()+1)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := circuit.WriteBristol(f, circ); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "written  : %s\n", *out)
	}
	return nil
}

func numParties(c *circuit.Circuit) int {
	max := 0
	for _, o := range c.InputOwner {
		if o+1 > max {
			max = o + 1
		}
	}
	return max
}

// buildFn parses specs like "millionaires:16" or "max:4x8".
func buildFn(spec string) (*circuit.Circuit, error) {
	name, arg, _ := strings.Cut(spec, ":")
	parseBits := func(def int) (int, error) {
		if arg == "" {
			return def, nil
		}
		var b int
		if _, err := fmt.Sscanf(arg, "%d", &b); err != nil {
			return 0, fmt.Errorf("bad bits %q: %w", arg, err)
		}
		return b, nil
	}
	parseNxB := func() (int, int, error) {
		var n, b int
		if _, err := fmt.Sscanf(arg, "%dx%d", &n, &b); err != nil {
			return 0, 0, fmt.Errorf("want NxBITS, got %q: %w", arg, err)
		}
		return n, b, nil
	}
	switch name {
	case "and":
		return circuit.AndCircuit()
	case "xor":
		return circuit.XorCircuit()
	case "millionaires":
		b, err := parseBits(16)
		if err != nil {
			return nil, err
		}
		return circuit.MillionairesCircuit(b)
	case "swap":
		b, err := parseBits(16)
		if err != nil {
			return nil, err
		}
		return circuit.SwapCircuit(b)
	case "equality":
		b, err := parseBits(16)
		if err != nil {
			return nil, err
		}
		return circuit.EqualityCircuit(b)
	case "concat":
		n, b, err := parseNxB()
		if err != nil {
			return nil, err
		}
		return circuit.ConcatCircuit(n, b)
	case "max":
		n, b, err := parseNxB()
		if err != nil {
			return nil, err
		}
		return circuit.MaxCircuit(n, b)
	case "sum":
		n, b, err := parseNxB()
		if err != nil {
			return nil, err
		}
		return circuit.SumCircuit(n, b)
	default:
		return nil, fmt.Errorf("unknown function %q", name)
	}
}
