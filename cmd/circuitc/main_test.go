package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBuildFnSpecs(t *testing.T) {
	good := []string{
		"and", "xor", "millionaires", "millionaires:8", "swap:4",
		"equality:6", "concat:3x4", "max:4x6", "sum:2x5",
	}
	for _, spec := range good {
		if _, err := buildFn(spec); err != nil {
			t.Errorf("buildFn(%q): %v", spec, err)
		}
	}
	bad := []string{"", "nope", "millionaires:x", "max:4", "max:0x4", "concat:1x4"}
	for _, spec := range bad {
		if _, err := buildFn(spec); err == nil {
			t.Errorf("buildFn(%q) succeeded", spec)
		}
	}
}

func TestRunExportImport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "m8.bristol")
	if err := run([]string{"-fn", "millionaires:8", "-o", out}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", out}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, os.Stdout); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"-fn", "bogus"}, os.Stdout); err == nil {
		t.Error("bogus function accepted")
	}
	if err := run([]string{"-in", "/nonexistent/file"}, os.Stdout); err == nil {
		t.Error("missing file accepted")
	}
}
