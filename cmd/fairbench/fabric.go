package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faultinject"
	"repro/internal/sweep"
	"repro/internal/transport"
)

// fabricReport is the "fabric" section of BENCH_service.json: the
// distributed sweep fabric's throughput against the single-machine
// baseline over the same grid, plus the recovery-time-after-kill
// metric from a worker crashed mid-run.
type fabricReport struct {
	Generated         string    `json:"generated"`
	GoVersion         string    `json:"go_version"`
	CPUs              int       `json:"cpus"`
	Workers           int       `json:"workers"`
	Cells             int       `json:"cells"`
	Runs              int       `json:"runs"`
	SingleElapsedMS   float64   `json:"single_elapsed_ms"`
	SingleCellsPerSec float64   `json:"single_cells_per_sec"`
	ElapsedMS         float64   `json:"elapsed_ms"`
	CellsPerSec       float64   `json:"cells_per_sec"`
	Deaths            int       `json:"deaths"`
	Steals            int       `json:"steals"`
	RecoveriesMS      []float64 `json:"recoveries_ms,omitempty"`
	ByteIdentical     bool      `json:"byte_identical"`
}

// serviceDoc mirrors BENCH_service.json: the selfcheck history is
// carried opaquely (fairnessd owns it — see selfcheckTrajectory's
// matching Fabric/Search passthroughs), and this side owns the fabric
// and search keys.
type serviceDoc struct {
	History json.RawMessage    `json:"history,omitempty"`
	Fabric  *fabricReport      `json:"fabric,omitempty"`
	Search  *searchBenchReport `json:"search,omitempty"`
}

// fabricBenchSpec is the benchmark grid: broad enough that leases
// split meaningfully across workers, small enough for CI.
func fabricBenchSpec(runs int, seed int64) sweep.Spec {
	return sweep.Spec{
		Families:   []string{"oneround", "optn", "2sfe"},
		Gammas:     []core.Payoff{core.StandardPayoff()},
		Ns:         []int{2, 3},
		Costs:      []string{"zero", "optimal"},
		AbortSweep: true,
		Runs:       runs,
		Seed:       seed,
	}
}

// runFabricBench times the same sweep grid twice — single-machine
// sweep.Run, then the fabric with `workers` in-process workers, one of
// which is crashed mid-run by a seeded kill profile — verifies the two
// checkpoints are byte-identical, and writes the fabric section of
// outPath (preserving the fairnessd selfcheck history already there).
func runFabricBench(workers, runs int, seed int64, outPath string) error {
	spec := fabricBenchSpec(runs, seed)
	plan, err := sweep.Plan(spec)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "fairbench-fabric")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	singlePath := filepath.Join(dir, "single.jsonl")
	fabricPath := filepath.Join(dir, "fabric.jsonl")

	fmt.Printf("fabric bench: %d cells, %d workers, one seeded mid-run kill\n", len(plan.Cells), workers)
	singleStart := time.Now()
	if _, err := sweep.Run(spec, singlePath, nil); err != nil {
		return fmt.Errorf("single-machine baseline: %w", err)
	}
	singleElapsed := time.Since(singleStart)

	// Crash one worker for real: the kill profile severs its stream at
	// an early record frame with no goodbye, so the run exercises death
	// detection, re-lease, and recovery — not just the happy path.
	kill, err := faultinject.NewRandom(1, faultinject.Profile{KillParty: 1, KillRound: 3})
	if err != nil {
		return err
	}
	cfg := fabric.Config{
		Spec:         spec,
		Workers:      workers,
		LeaseTTL:     fabric.DefaultLocalTTL,
		Checkpoint:   fabricPath,
		WorkerStream: transport.StreamConfig{Fault: kill},
	}
	sum, stats, err := fabric.RunLocal(cfg, workers)
	if err != nil {
		return fmt.Errorf("fabric run: %w", err)
	}
	if !sum.OK() {
		return fmt.Errorf("fabric run: %d bound breaches", len(sum.Breaches))
	}

	want, err := os.ReadFile(singlePath)
	if err != nil {
		return err
	}
	got, err := os.ReadFile(fabricPath)
	if err != nil {
		return err
	}
	identical := bytes.Equal(want, got)

	rep := &fabricReport{
		Generated:         time.Now().UTC().Format(time.RFC3339),
		GoVersion:         runtime.Version(),
		CPUs:              runtime.NumCPU(),
		Workers:           workers,
		Cells:             stats.Cells,
		Runs:              runs,
		SingleElapsedMS:   float64(singleElapsed.Microseconds()) / 1e3,
		SingleCellsPerSec: float64(stats.Cells) / singleElapsed.Seconds(),
		ElapsedMS:         stats.ElapsedMS,
		CellsPerSec:       stats.CellsPerSec,
		Deaths:            stats.Deaths,
		Steals:            stats.Steals,
		RecoveriesMS:      stats.RecoveriesMS,
		ByteIdentical:     identical,
	}

	var doc serviceDoc
	if data, err := os.ReadFile(outPath); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("unrecognized schema in %s: %w", outPath, err)
		}
	}
	doc.Fabric = rep
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}

	fmt.Printf("fabric bench: single %.1f cells/s, fabric %.1f cells/s, deaths=%d recoveries=%v byte-identical=%v\n",
		rep.SingleCellsPerSec, rep.CellsPerSec, rep.Deaths, rep.RecoveriesMS, identical)
	fmt.Printf("wrote fabric section to %s\n", outPath)
	if !identical {
		return fmt.Errorf("fabric checkpoint differs from single-machine checkpoint")
	}
	if rep.Deaths == 0 {
		return fmt.Errorf("kill profile produced no worker death; recovery metric is empty")
	}
	return nil
}
