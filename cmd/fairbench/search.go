package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/search"
	"repro/internal/service"
)

// searchBenchEntry is one family's racing-vs-exhaustive comparison.
type searchBenchEntry struct {
	Proto          string  `json:"proto"`
	Space          string  `json:"space"`
	Arms           int     `json:"arms"`
	Best           string  `json:"best"`
	Utility        string  `json:"utility"`
	Waves          int     `json:"waves"`
	TotalRuns      int64   `json:"total_runs"`
	ExhaustiveRuns int64   `json:"exhaustive_runs"`
	Savings        float64 `json:"savings"`
	// Agrees reports that the racing winner's certified utility matches
	// the exhaustive comparator's: exactly equal when the winners share a
	// name (both certify at the same arm seed), within combined
	// half-widths across a tie class.
	Agrees bool `json:"agrees_with_exhaustive"`
}

// searchBenchReport is the "search" section of BENCH_service.json.
type searchBenchReport struct {
	Generated   string             `json:"generated"`
	GoVersion   string             `json:"go_version"`
	CPUs        int                `json:"cpus"`
	Seed        int64              `json:"seed"`
	MinSavings  float64            `json:"min_savings_required"`
	MinObserved float64            `json:"min_observed_savings"`
	Entries     []searchBenchEntry `json:"entries"`
}

// searchBenchFamilies are the acceptance families: the proof-optimal
// adversary of each is known in closed form, so recovering it at a
// fraction of the exhaustive cost is the whole point of the engine.
var searchBenchFamilies = []string{"2sfe-opt", "pi1", "pi2", "gk-polydomain:2"}

// searchBenchOptions mirrors the acceptance test's racing schedule.
var searchBenchOptions = search.Options{
	Wave: 100, Growth: 2, RaceRuns: 600, FinalRuns: 6000, Delta: 0.05,
}

// runSearchBench races every acceptance family against its exhaustive
// comparator, verifies the certified winners agree, and writes the
// search section of outPath (preserving the selfcheck history and
// fabric section already there). It fails if any family's savings
// ratio falls below minSavings or any winner disagrees.
func runSearchBench(minSavings float64, seed int64, outPath string) error {
	rep := &searchBenchReport{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		CPUs:        runtime.NumCPU(),
		Seed:        seed,
		MinSavings:  minSavings,
		MinObserved: math.Inf(1),
	}
	for _, protoName := range searchBenchFamilies {
		proto, sampler, err := service.BuildProtocol(protoName)
		if err != nil {
			return err
		}
		space, err := service.BuildSpace(service.SpaceRaw, protoName)
		if err != nil {
			return err
		}
		gamma := service.DefaultPayoff(protoName)
		raced, err := search.Run(proto, space, gamma, sampler, seed, searchBenchOptions)
		if err != nil {
			return fmt.Errorf("%s: racing: %w", protoName, err)
		}
		exh := searchBenchOptions
		exh.Exhaustive = true
		ground, err := search.Run(proto, space, gamma, sampler, seed, exh)
		if err != nil {
			return fmt.Errorf("%s: exhaustive: %w", protoName, err)
		}
		agrees := math.Abs(raced.BestReport.Utility.Mean-ground.BestReport.Utility.Mean) <=
			raced.BestReport.Utility.HalfWidth+ground.BestReport.Utility.HalfWidth
		if raced.Best == ground.Best {
			agrees = raced.BestReport.Utility.Mean == ground.BestReport.Utility.Mean
		}
		e := searchBenchEntry{
			Proto: protoName, Space: space.Describe(), Arms: space.Len(),
			Best: raced.Best, Utility: raced.BestReport.Utility.String(),
			Waves: raced.Waves, TotalRuns: raced.TotalRuns,
			ExhaustiveRuns: raced.ExhaustiveRuns, Savings: raced.Savings(),
			Agrees: agrees,
		}
		rep.Entries = append(rep.Entries, e)
		rep.MinObserved = math.Min(rep.MinObserved, e.Savings)
		fmt.Printf("%-16s best %-20s u=%s  %6d vs %7d runs  %5.1f× savings  agrees=%v\n",
			protoName, raced.Best, raced.BestReport.Utility,
			raced.TotalRuns, raced.ExhaustiveRuns, raced.Savings(), agrees)
	}

	var doc serviceDoc
	if data, err := os.ReadFile(outPath); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("unrecognized schema in %s: %w", outPath, err)
		}
	}
	doc.Search = rep
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote search section to %s (min savings %.1f×, floor %.1f×)\n",
		outPath, rep.MinObserved, minSavings)

	for _, e := range rep.Entries {
		if !e.Agrees {
			return fmt.Errorf("%s: racing winner %q disagrees with exhaustive enumeration", e.Proto, e.Best)
		}
	}
	if rep.MinObserved < minSavings {
		return fmt.Errorf("savings floor breached: %.1f× < required %.1f×", rep.MinObserved, minSavings)
	}
	return nil
}
