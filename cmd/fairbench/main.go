// Command fairbench measures the Monte-Carlo estimator's throughput and
// writes a machine-readable report (BENCH_estimator.json): ns/run,
// runs/sec, and allocation counts for each workload at parallelism 1, 4,
// and one-per-CPU. The estimates themselves are checked to be
// byte-identical across the parallelism settings (the engine's
// determinism contract), so the numbers compare pure scheduling
// overhead, never different work.
//
// Parallelism settings above the machine's CPU count are skipped (they
// measure oversubscription, not speedup); the skip is recorded in the
// report. The output file keeps a trajectory: each invocation appends
// its report to the history instead of overwriting, so regressions are
// visible across commits. A pre-trajectory single-report file is
// wrapped as the first history entry.
//
// Usage:
//
//	fairbench [-runs N] [-seed S] [-o BENCH_estimator.json]
//	fairbench -fabric [-fabric-workers N] [-fabric-runs R] [-service-o BENCH_service.json]
//	fairbench -search [-min-savings X] [-service-o BENCH_service.json]
//	fairbench -vr [-vr-min-cv X] [-vr-min-crn Y] [-o BENCH_estimator.json]
//
// -fabric benchmarks the distributed sweep fabric instead: the same
// grid is swept single-machine and then across N in-process workers
// (one crashed mid-run by a seeded kill), the checkpoints are verified
// byte-identical, and cells/sec plus recovery-time-after-kill land in
// the fabric section of BENCH_service.json (the selfcheck history
// already there is preserved).
//
// -search benchmarks the best-response search engine: every acceptance
// family is raced to its certified best response and compared against
// exhaustive enumeration of the same space; the savings ratios land in
// the search section of BENCH_service.json, and the run fails if any
// family falls below -min-savings (default 10×) or any certified
// winner disagrees with the comparator.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/adversary"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/protocols/multiparty"
	"repro/internal/protocols/twoparty"
	"repro/internal/sim"
)

// measurement is one workload × engine × parallelism timing.
type measurement struct {
	// Engine is "compiled" (sim.PlanRunner replay, the default) or
	// "interpreted" (plain sim.Arena via WithCompiledPlans(false)).
	Engine       string  `json:"engine"`
	Parallelism  int     `json:"parallelism"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	NsPerRun     float64 `json:"ns_per_run"`
	RunsPerSec   float64 `json:"runs_per_sec"`
	AllocsPerRun float64 `json:"allocs_per_run"`
	BytesPerRun  float64 `json:"bytes_per_run"`
	Utility      string  `json:"utility"`
}

// workloadReport groups one workload's measurements.
type workloadReport struct {
	Proto        string        `json:"proto"`
	Adversary    string        `json:"adversary"`
	Runs         int           `json:"runs"`
	Seed         int64         `json:"seed"`
	Measurements []measurement `json:"measurements"`
	SpeedupMax   float64       `json:"speedup_max_vs_sequential"`
	// CompiledSpeedup is interpreted ns/run ÷ compiled ns/run, both at
	// parallelism 1: the pure win of plan replay over the interpreter.
	CompiledSpeedup float64 `json:"compiled_speedup_vs_interpreted"`
	// SkippedParallelism lists requested settings above the CPU count.
	SkippedParallelism []int `json:"skipped_parallelism,omitempty"`
}

// report is one fairbench invocation's document.
type report struct {
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// GOMAXPROCS is the scheduler's actual worker ceiling — it can differ
	// from CPUs under cgroup limits or an explicit GOMAXPROCS setting,
	// and it, not CPUs, bounds the achievable speedup.
	GOMAXPROCS int              `json:"gomaxprocs"`
	Workloads  []workloadReport `json:"workloads"`
	// VarianceReduction is set by -vr invocations (which carry no
	// throughput workloads); absent from every other report, so
	// pre-existing trajectory entries keep loading unchanged.
	VarianceReduction *vrReport `json:"variance_reduction,omitempty"`
}

// trajectory is the BENCH_estimator.json document: every invocation's
// report, oldest first.
type trajectory struct {
	History []report `json:"history"`
}

// workload is a protocol × adversary estimation target. samplerInto,
// when set, replaces sampler via core.WithSamplerInto (both must draw
// identically — the engine cross-checks the utilities).
type workload struct {
	name        string
	advName     string
	proto       sim.Protocol
	adv         func() sim.Adversary
	sampler     core.InputSampler
	samplerInto core.InputSamplerInto
}

func workloads() ([]workload, error) {
	fn, err := multiparty.Concat(4, 8)
	if err != nil {
		return nil, err
	}
	uniformN := func(parties, max int) core.InputSampler {
		return func(r *rand.Rand) []sim.Value {
			in := make([]sim.Value, parties)
			for i := range in {
				in[i] = uint64(r.Intn(max))
			}
			return in
		}
	}
	return []workload{
		{
			name: "2sfe-opt", advName: "lock-abort:1",
			proto:   twoparty.New(twoparty.Swap()),
			adv:     func() sim.Adversary { return adversary.NewLockAbort(1) },
			sampler: uniformN(2, 1<<20),
		},
		{
			// The allocation-floor workload: millionaires' inputs and
			// outputs stay below 256, so boxing them into sim.Value is
			// free, and the in-place sampler removes the per-run input
			// slice — the compiled path's ≤2 allocs/run target is pinned
			// here (and in core.TestEstimateAllocsCompiled).
			name: "2sfe-mill", advName: "lock-abort:1",
			proto:   twoparty.New(twoparty.Millionaires()),
			adv:     func() sim.Adversary { return adversary.NewLockAbort(1) },
			sampler: uniformN(2, 200),
			samplerInto: func(r *rand.Rand, dst []sim.Value) []sim.Value {
				return append(dst, uint64(r.Intn(200)), uint64(r.Intn(200)))
			},
		},
		{
			name: "nsfe-opt:4", advName: "lock-abort:1+3",
			proto:   multiparty.NewOptN(fn),
			adv:     func() sim.Adversary { return adversary.NewLockAbort(1, 3) },
			sampler: uniformN(4, 256),
		},
	}, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fairbench:", err)
		os.Exit(1)
	}
}

// loadTrajectory reads an existing output file, accepting both the
// trajectory schema and the pre-trajectory single-report schema (which
// becomes the first history entry). A missing file yields an empty
// trajectory.
func loadTrajectory(path string) (trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return trajectory{}, nil
		}
		return trajectory{}, err
	}
	var tr trajectory
	if err := json.Unmarshal(data, &tr); err == nil && tr.History != nil {
		return tr, nil
	}
	var single report
	if err := json.Unmarshal(data, &single); err == nil && len(single.Workloads) > 0 {
		return trajectory{History: []report{single}}, nil
	}
	return trajectory{}, fmt.Errorf("unrecognized report schema in %s", path)
}

func run(args []string) error {
	fs := flag.NewFlagSet("fairbench", flag.ContinueOnError)
	est := cliflags.RegisterEstimation(fs, cliflags.EstimationSpec{
		Runs:      20000,
		RunsUsage: "Monte-Carlo runs per measurement",
		Seed:      1,
		SeedUsage: "estimation seed",
	})
	out := fs.String("o", "BENCH_estimator.json", "output file")
	fabricBench := fs.Bool("fabric", false, "benchmark the distributed sweep fabric instead of the estimator")
	fabricWorkers := fs.Int("fabric-workers", 4, "in-process fabric workers (-fabric mode)")
	fabricRuns := fs.Int("fabric-runs", 60, "Monte-Carlo runs per sweep cell (-fabric mode)")
	serviceOut := fs.String("service-o", "BENCH_service.json", "fabric/search report file (-fabric and -search modes)")
	searchBench := fs.Bool("search", false, "benchmark the best-response search engine against exhaustive enumeration")
	minSavings := fs.Float64("min-savings", 10, "fail -search mode below this racing-vs-exhaustive savings ratio")
	vrBench := fs.Bool("vr", false, "benchmark the variance-reduction estimators (control variates, CRN pairing, stratification)")
	vrMinCV := fs.Float64("vr-min-cv", 3, "fail -vr mode below this control-variate runs-reduction ratio")
	vrMinCRN := fs.Float64("vr-min-crn", 1.5, "fail -vr mode below this CRN paired-delta runs-reduction ratio")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fabricBench {
		return runFabricBench(*fabricWorkers, *fabricRuns, est.Seed, *serviceOut)
	}
	if *searchBench {
		return runSearchBench(*minSavings, est.Seed, *serviceOut)
	}
	if *vrBench {
		return runVRBench(est.Runs, est.Seed, *vrMinCV, *vrMinCRN, *out)
	}

	cpus := runtime.NumCPU()
	requested := []int{1, 4, core.DefaultParallelism()}
	var settings, skipped []int
	for _, par := range requested {
		switch {
		case par > cpus:
			// Oversubscribed workers measure scheduler churn, not the
			// engine; record the skip instead of a misleading number.
			skipped = append(skipped, par)
		case contains(settings, par):
			// A duplicate setting (e.g. one-per-CPU == 1 on a 1-CPU host)
			// would just repeat the measurement.
		default:
			settings = append(settings, par)
		}
	}

	wls, err := workloads()
	if err != nil {
		return err
	}
	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       cpus,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	gamma := core.StandardPayoff()
	for _, wl := range wls {
		wr := workloadReport{
			Proto: wl.name, Adversary: wl.advName,
			Runs: est.Runs, Seed: est.Seed,
			SkippedParallelism: skipped,
		}
		measure := func(engine string, par int) (measurement, core.UtilityReport, error) {
			opts := []core.Option{core.WithParallelism(par)}
			if engine == "interpreted" {
				opts = append(opts, core.WithCompiledPlans(false))
			}
			sampler := wl.sampler
			if wl.samplerInto != nil {
				opts = append(opts, core.WithSamplerInto(wl.samplerInto))
				sampler = nil
			}
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			r, err := core.EstimateUtility(wl.proto, wl.adv(), gamma, sampler, est.Runs, est.Seed, opts...)
			if err != nil {
				return measurement{}, r, fmt.Errorf("%s %s parallelism %d: %w", wl.name, engine, par, err)
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			m := measurement{
				Engine:       engine,
				Parallelism:  par,
				ElapsedMS:    float64(elapsed.Microseconds()) / 1e3,
				NsPerRun:     float64(elapsed.Nanoseconds()) / float64(est.Runs),
				RunsPerSec:   float64(est.Runs) / elapsed.Seconds(),
				AllocsPerRun: float64(after.Mallocs-before.Mallocs) / float64(est.Runs),
				BytesPerRun:  float64(after.TotalAlloc-before.TotalAlloc) / float64(est.Runs),
				Utility:      r.Utility.String(),
			}
			fmt.Printf("%-12s %-16s %-11s parallelism=%-3d %10.1f ns/run %12.0f runs/s %8.1f allocs/run\n",
				wl.name, wl.advName, engine, par, m.NsPerRun, m.RunsPerSec, m.AllocsPerRun)
			return m, r, nil
		}
		// The interpreted reference at parallelism 1 both anchors the
		// compiled speedup and cross-checks bit-identical utilities.
		interp, baseline, err := measure("interpreted", 1)
		if err != nil {
			return err
		}
		wr.Measurements = append(wr.Measurements, interp)
		var compiledSeq measurement
		for i, par := range settings {
			m, r, err := measure("compiled", par)
			if err != nil {
				return err
			}
			if r.Utility != baseline.Utility {
				return fmt.Errorf("%s: compiled parallelism %d utility %v differs from interpreted %v",
					wl.name, par, r.Utility, baseline.Utility)
			}
			if i == 0 {
				compiledSeq = m
			}
			wr.Measurements = append(wr.Measurements, m)
		}
		for _, par := range skipped {
			fmt.Printf("%-12s %-16s parallelism=%-3d skipped (> %d CPUs)\n",
				wl.name, wl.advName, par, cpus)
		}
		last := wr.Measurements[len(wr.Measurements)-1]
		wr.SpeedupMax = compiledSeq.NsPerRun / last.NsPerRun
		wr.CompiledSpeedup = interp.NsPerRun / compiledSeq.NsPerRun
		fmt.Printf("%-12s %-16s compiled speedup %.2fx vs interpreted\n",
			wl.name, wl.advName, wr.CompiledSpeedup)
		rep.Workloads = append(rep.Workloads, wr)
	}

	traj, err := loadTrajectory(*out)
	if err != nil {
		return err
	}
	traj.History = append(traj.History, rep)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(traj); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d reports in trajectory)\n", *out, len(traj.History))
	return nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
