// Command fairbench measures the Monte-Carlo estimator's throughput and
// writes a machine-readable report (BENCH_estimator.json): ns/run and
// runs/sec for each workload at parallelism 1, 4, and one-per-CPU. The
// estimates themselves are checked to be byte-identical across the
// parallelism settings (the engine's determinism contract), so the
// numbers compare pure scheduling overhead, never different work.
//
// Usage:
//
//	fairbench [-runs N] [-seed S] [-o BENCH_estimator.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/protocols/multiparty"
	"repro/internal/protocols/twoparty"
	"repro/internal/sim"
)

// measurement is one workload × parallelism timing.
type measurement struct {
	Parallelism int     `json:"parallelism"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	NsPerRun    float64 `json:"ns_per_run"`
	RunsPerSec  float64 `json:"runs_per_sec"`
	Utility     string  `json:"utility"`
}

// workloadReport groups one workload's measurements.
type workloadReport struct {
	Proto        string        `json:"proto"`
	Adversary    string        `json:"adversary"`
	Runs         int           `json:"runs"`
	Seed         int64         `json:"seed"`
	Measurements []measurement `json:"measurements"`
	SpeedupMax   float64       `json:"speedup_max_vs_sequential"`
}

// report is the BENCH_estimator.json document.
type report struct {
	Generated string           `json:"generated"`
	GoVersion string           `json:"go_version"`
	GOOS      string           `json:"goos"`
	GOARCH    string           `json:"goarch"`
	CPUs      int              `json:"cpus"`
	Workloads []workloadReport `json:"workloads"`
}

// workload is a protocol × adversary estimation target.
type workload struct {
	name    string
	advName string
	proto   sim.Protocol
	adv     func() sim.Adversary
	sampler core.InputSampler
}

func workloads() ([]workload, error) {
	fn, err := multiparty.Concat(4, 8)
	if err != nil {
		return nil, err
	}
	uniformN := func(parties, max int) core.InputSampler {
		return func(r *rand.Rand) []sim.Value {
			in := make([]sim.Value, parties)
			for i := range in {
				in[i] = uint64(r.Intn(max))
			}
			return in
		}
	}
	return []workload{
		{
			name: "2sfe-opt", advName: "lock-abort:1",
			proto:   twoparty.New(twoparty.Swap()),
			adv:     func() sim.Adversary { return adversary.NewLockAbort(1) },
			sampler: uniformN(2, 1<<20),
		},
		{
			name: "nsfe-opt:4", advName: "lock-abort:1+3",
			proto:   multiparty.NewOptN(fn),
			adv:     func() sim.Adversary { return adversary.NewLockAbort(1, 3) },
			sampler: uniformN(4, 256),
		},
	}, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fairbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fairbench", flag.ContinueOnError)
	runs := fs.Int("runs", 20000, "Monte-Carlo runs per measurement")
	seed := fs.Int64("seed", 1, "estimation seed")
	out := fs.String("o", "BENCH_estimator.json", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	maxPar := core.DefaultParallelism()
	settings := []int{1, 4, maxPar}

	wls, err := workloads()
	if err != nil {
		return err
	}
	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	gamma := core.StandardPayoff()
	for _, wl := range wls {
		wr := workloadReport{Proto: wl.name, Adversary: wl.advName, Runs: *runs, Seed: *seed}
		var baseline core.UtilityReport
		for i, par := range settings {
			start := time.Now()
			r, err := core.EstimateUtilityParallel(wl.proto, wl.adv(), gamma, wl.sampler, *runs, *seed, par)
			if err != nil {
				return fmt.Errorf("%s parallelism %d: %w", wl.name, par, err)
			}
			elapsed := time.Since(start)
			if i == 0 {
				baseline = r
			} else if r.Utility != baseline.Utility {
				return fmt.Errorf("%s: parallelism %d utility %v differs from sequential %v",
					wl.name, par, r.Utility, baseline.Utility)
			}
			wr.Measurements = append(wr.Measurements, measurement{
				Parallelism: par,
				ElapsedMS:   float64(elapsed.Microseconds()) / 1e3,
				NsPerRun:    float64(elapsed.Nanoseconds()) / float64(*runs),
				RunsPerSec:  float64(*runs) / elapsed.Seconds(),
				Utility:     r.Utility.String(),
			})
			fmt.Printf("%-12s %-16s parallelism=%-3d %10.1f ns/run %12.0f runs/s\n",
				wl.name, wl.advName, par,
				wr.Measurements[i].NsPerRun, wr.Measurements[i].RunsPerSec)
		}
		first, last := wr.Measurements[0], wr.Measurements[len(wr.Measurements)-1]
		wr.SpeedupMax = first.NsPerRun / last.NsPerRun
		rep.Workloads = append(rep.Workloads, wr)
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
