package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunFabricBench pins the fabric benchmark end-to-end: it must
// crash a worker, verify byte-identity, and write the fabric section
// into the service report without touching the selfcheck history.
func TestRunFabricBench(t *testing.T) {
	if testing.Short() {
		t.Skip("fabric benchmark skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "BENCH_service.json")
	seed := `{"history":[{"generated":"pinned"}]}`
	if err := os.WriteFile(out, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := runFabricBench(3, 30, 11, out); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc serviceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Fabric == nil {
		t.Fatal("no fabric section written")
	}
	if !doc.Fabric.ByteIdentical {
		t.Error("fabric checkpoint not byte-identical to single-machine run")
	}
	if doc.Fabric.Deaths < 1 {
		t.Errorf("Deaths = %d, want >= 1", doc.Fabric.Deaths)
	}
	if len(doc.Fabric.RecoveriesMS) == 0 {
		t.Error("no recovery timings recorded")
	}
	var hist []map[string]any
	if err := json.Unmarshal(doc.History, &hist); err != nil {
		t.Fatalf("selfcheck history mangled: %v", err)
	}
	if len(hist) != 1 || hist[0]["generated"] != "pinned" {
		t.Errorf("selfcheck history not preserved: %s", doc.History)
	}
}
