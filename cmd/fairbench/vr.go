package main

// fairbench -vr: the variance-reduction benchmark. It measures how many
// Monte-Carlo runs each statistical lever of DESIGN.md §12 saves on the
// workload it was built for, and appends the ratios to the
// BENCH_estimator.json trajectory under "variance_reduction":
//
//   - control variate: the Gordon–Katz first-hit cell at the paper's
//     payoff, plain versus core.WithControlVariate — runs to reach the
//     target half-width, plain ÷ residual (floor -vr-min-cv);
//   - common random numbers: the certified delta between two
//     neighbouring 2SFE abort strategies, independently seeded versus
//     core.WithPairedSeeds — runs to certify the delta at the target
//     half-width, unpaired ÷ paired (floor -vr-min-crn);
//   - post-stratification on the abort round: informational only — the
//     half-width shrink of stats.StratifiedEstimate over the engine's
//     core.AbortRoundTally against the pooled estimate at equal runs.
//
// Ratios are recorded as run counts, never half-width quotients: the
// exact-residual estimator's half-width is legitimately zero and the
// report must stay encodable (JSON holds no Inf).

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/protocols/gordonkatz"
	"repro/internal/protocols/twoparty"
	"repro/internal/sim"
	"repro/internal/stats"
)

// vrTargetHW is the half-width every runs-to-target search drives to.
const vrTargetHW = 0.01

// vrWorkload is one lever's measurement.
type vrWorkload struct {
	Name      string `json:"name"`
	Technique string `json:"technique"`
	// PlainRuns and ReducedRuns are the runs needed to reach the target
	// half-width without and with the lever; RunsRatio is their quotient
	// (the lever's savings). Zero when the workload is half-width-based.
	PlainRuns   int     `json:"plain_runs,omitempty"`
	ReducedRuns int     `json:"reduced_runs,omitempty"`
	RunsRatio   float64 `json:"runs_ratio,omitempty"`
	// PlainHW and ReducedHW compare half-widths at equal runs (the
	// stratification workload); HWRatio is plain ÷ reduced, 0 when the
	// reduced interval is degenerate.
	PlainHW   float64 `json:"plain_half_width,omitempty"`
	ReducedHW float64 `json:"reduced_half_width,omitempty"`
	HWRatio   float64 `json:"half_width_ratio,omitempty"`
	// Floor is the ratio below which the benchmark fails (0 = advisory).
	Floor float64 `json:"floor,omitempty"`
	OK    bool    `json:"ok"`
	Note  string  `json:"note,omitempty"`
}

// vrReport is one -vr invocation's document.
type vrReport struct {
	Seed         int64        `json:"seed"`
	TargetHW     float64      `json:"target_half_width"`
	Workloads    []vrWorkload `json:"workloads"`
	AllOK        bool         `json:"all_ok"`
	ElapsedMS    float64      `json:"elapsed_ms"`
	StratifyRuns int          `json:"stratify_runs"`
}

// runsToTarget finds the smallest run count (up to a doubling cap) whose
// measured half-width reaches target: geometric growth to bracket, then
// bisection. Monte-Carlo half-widths are only statistically monotone in
// the run count, so the result is a representative cost, not a sharp
// minimum — which is exactly what a savings ratio needs.
func runsToTarget(target float64, measure func(runs int) (float64, error)) (int, error) {
	const cap = 1 << 21
	lo, hi := 0, 16
	for {
		hw, err := measure(hi)
		if err != nil {
			return 0, err
		}
		if hw <= target {
			break
		}
		if hi >= cap {
			return 0, fmt.Errorf("half-width %g still above target %g at %d runs", hw, target, hi)
		}
		lo = hi
		hi *= 2
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		hw, err := measure(mid)
		if err != nil {
			return 0, err
		}
		if hw <= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// finiteOr0 keeps the report JSON-encodable: encoding/json rejects Inf
// and NaN, and a degenerate interval is reported as 0 with a note.
func finiteOr0(x float64) float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return 0
	}
	return x
}

// vrControlVariate measures the Gordon–Katz exact-residual lever.
func vrControlVariate(seed int64, floor float64) (vrWorkload, error) {
	w := vrWorkload{
		Name: "gk-firsthit-p4", Technique: "control-variate",
		Floor: floor,
	}
	proto, err := gordonkatz.NewPolyDomain(gordonkatz.AND(), 4)
	if err != nil {
		return w, err
	}
	gamma := core.GordonKatzPayoff()
	cv := core.GKFirstHitControl(gamma, proto.NumRounds()/2, 0.5)
	measure := func(extra ...core.Option) func(runs int) (float64, error) {
		return func(runs int) (float64, error) {
			r, err := core.EstimateUtility(proto, gordonkatz.NewFirstHit(1), gamma,
				core.FixedInputs(uint64(1), uint64(1)), runs, seed, extra...)
			if err != nil {
				return 0, err
			}
			return r.Utility.HalfWidth, nil
		}
	}
	if w.PlainRuns, err = runsToTarget(vrTargetHW, measure()); err != nil {
		return w, fmt.Errorf("plain: %w", err)
	}
	if w.ReducedRuns, err = runsToTarget(vrTargetHW, measure(core.WithControlVariate(cv))); err != nil {
		return w, fmt.Errorf("control variate: %w", err)
	}
	w.RunsRatio = float64(w.PlainRuns) / float64(w.ReducedRuns)
	w.OK = w.RunsRatio >= floor
	w.Note = fmt.Sprintf("residual against %s (exact mean %.6f)", cv.Name, cv.Mean)
	return w, nil
}

// vrPairedDelta measures the CRN lever on a certified cross-strategy
// delta: abort-at-1 versus abort-at-2 on ΠOpt-2SFE. The unpaired
// comparator runs the same per-run difference estimator over two
// independently seeded estimations, so the ratio isolates exactly what
// seed pairing buys — the correlation between the paired runs.
func vrPairedDelta(seed int64, floor float64) (vrWorkload, error) {
	w := vrWorkload{
		Name: "2sfe-abort1-vs-abort2", Technique: "crn-paired-delta",
		Floor: floor,
	}
	proto := twoparty.New(twoparty.Swap())
	gamma := core.StandardPayoff()
	sampler := func(r *rand.Rand) []sim.Value {
		return []sim.Value{uint64(r.Intn(1 << 20)), uint64(r.Intn(1 << 20))}
	}
	z := stats.ZQuantile(0.05)
	master := int64(uint64(seed)*0x9e3779b9 | 1)
	measure := func(paired bool) func(runs int) (float64, error) {
		return func(runs int) (float64, error) {
			logA := make([]core.Event, runs)
			logB := make([]core.Event, runs)
			optsA := []core.Option{core.WithEventLog(logA)}
			optsB := []core.Option{core.WithEventLog(logB)}
			if paired {
				optsA = append(optsA, core.WithPairedSeeds(master))
				optsB = append(optsB, core.WithPairedSeeds(master))
			}
			if _, err := core.EstimateUtility(proto, adversary.NewAbortAt(1, 1), gamma,
				sampler, runs, seed, optsA...); err != nil {
				return 0, err
			}
			if _, err := core.EstimateUtility(proto, adversary.NewAbortAt(2, 1), gamma,
				sampler, runs, seed+7919, optsB...); err != nil {
				return 0, err
			}
			va := make([]float64, runs)
			vb := make([]float64, runs)
			for i := 0; i < runs; i++ {
				va[i] = gamma.Of(logA[i])
				vb[i] = gamma.Of(logB[i])
			}
			est, err := stats.PairedEstimateZ(va, vb, z)
			if err != nil {
				return 0, err
			}
			return est.HalfWidth, nil
		}
	}
	var err error
	if w.PlainRuns, err = runsToTarget(vrTargetHW, measure(false)); err != nil {
		return w, fmt.Errorf("unpaired: %w", err)
	}
	if w.ReducedRuns, err = runsToTarget(vrTargetHW, measure(true)); err != nil {
		return w, fmt.Errorf("paired: %w", err)
	}
	w.RunsRatio = float64(w.PlainRuns) / float64(w.ReducedRuns)
	w.OK = w.RunsRatio >= floor
	w.Note = "delta certified by stats.PairedEstimate at z for δ=0.05"
	return w, nil
}

// vrStratified measures post-stratification on the abort round:
// Gordon–Katz first-hit over uniform boolean inputs (so the abort round
// explains part, not all, of the outcome variance), pooled half-width
// versus the stratified reduction at the same runs. Advisory only: the
// proportional weights are empirical here, so the mean matches the
// pooled estimate exactly and the interval shrink is the whole story.
func vrStratified(runs int, seed int64) (vrWorkload, error) {
	w := vrWorkload{
		Name: "gk-firsthit-p2-uniform", Technique: "abort-round-stratification",
		OK: true,
	}
	proto, err := gordonkatz.NewPolyDomain(gordonkatz.AND(), 2)
	if err != nil {
		return w, err
	}
	gamma := core.StandardPayoff()
	sampler := func(r *rand.Rand) []sim.Value {
		return []sim.Value{uint64(r.Intn(2)), uint64(r.Intn(2))}
	}
	tally := core.NewAbortRoundTally()
	rep, err := core.EstimateUtility(proto, gordonkatz.NewFirstHit(1), gamma,
		sampler, runs, seed, core.WithAbortRoundStrata(tally))
	if err != nil {
		return w, err
	}
	values := []float64{gamma.Of(core.E00), gamma.Of(core.E01), gamma.Of(core.E10), gamma.Of(core.E11)}
	total := float64(tally.Total())
	var strata []stats.Stratum
	for _, round := range tally.Rounds() {
		counts := tally.Counts(round)
		var n int64
		for _, c := range counts {
			n += c
		}
		strata = append(strata, stats.Stratum{
			Weight: float64(n) / total,
			Values: values,
			Counts: counts[:],
		})
	}
	est, err := stats.StratifiedEstimate(strata)
	if err != nil {
		return w, err
	}
	w.PlainHW = finiteOr0(rep.Utility.HalfWidth)
	w.ReducedHW = finiteOr0(est.HalfWidth)
	if w.ReducedHW > 0 && w.PlainHW > 0 {
		w.HWRatio = w.PlainHW / w.ReducedHW
	}
	w.Note = fmt.Sprintf("%d strata over %d runs, proportional empirical weights", len(strata), runs)
	return w, nil
}

// runVRBench runs the three lever workloads, appends the report to the
// estimator trajectory, and fails when a floored ratio falls short.
func runVRBench(stratifyRuns int, seed int64, minCV, minCRN float64, out string) error {
	start := time.Now()
	vr := vrReport{Seed: seed, TargetHW: vrTargetHW, AllOK: true, StratifyRuns: stratifyRuns}

	cv, err := vrControlVariate(seed, minCV)
	if err != nil {
		return fmt.Errorf("vr control-variate workload: %w", err)
	}
	vr.Workloads = append(vr.Workloads, cv)
	fmt.Printf("%-24s %-26s %7d plain runs %7d reduced %8.1fx (floor %g)\n",
		cv.Name, cv.Technique, cv.PlainRuns, cv.ReducedRuns, cv.RunsRatio, cv.Floor)

	crn, err := vrPairedDelta(seed, minCRN)
	if err != nil {
		return fmt.Errorf("vr paired-delta workload: %w", err)
	}
	vr.Workloads = append(vr.Workloads, crn)
	fmt.Printf("%-24s %-26s %7d plain runs %7d reduced %8.1fx (floor %g)\n",
		crn.Name, crn.Technique, crn.PlainRuns, crn.ReducedRuns, crn.RunsRatio, crn.Floor)

	strat, err := vrStratified(stratifyRuns, seed)
	if err != nil {
		return fmt.Errorf("vr stratification workload: %w", err)
	}
	vr.Workloads = append(vr.Workloads, strat)
	fmt.Printf("%-24s %-26s hw %.5f plain vs %.5f stratified %6.2fx (advisory)\n",
		strat.Name, strat.Technique, strat.PlainHW, strat.ReducedHW, strat.HWRatio)

	for _, w := range vr.Workloads {
		if !w.OK {
			vr.AllOK = false
		}
	}
	vr.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3

	rep := report{
		Generated:         time.Now().UTC().Format(time.RFC3339),
		GoVersion:         runtime.Version(),
		GOOS:              runtime.GOOS,
		GOARCH:            runtime.GOARCH,
		CPUs:              runtime.NumCPU(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		VarianceReduction: &vr,
	}
	traj, err := loadTrajectory(out)
	if err != nil {
		return err
	}
	traj.History = append(traj.History, rep)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(traj); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d reports in trajectory)\n", out, len(traj.History))

	if !vr.AllOK {
		for _, w := range vr.Workloads {
			if !w.OK {
				return fmt.Errorf("vr workload %s: runs ratio %.2f below floor %g", w.Name, w.RunsRatio, w.Floor)
			}
		}
	}
	return nil
}
