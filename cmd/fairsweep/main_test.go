package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestRunSmallGrid(t *testing.T) {
	if code := run([]string{"-families", "2sfe,oneround", "-n", "2",
		"-runs", "120", "-no-abort-sweep", "-quiet"}); code != 0 {
		t.Errorf("exit code %d", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-definitely-not-a-flag"}); code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
}

func TestRunUnknownFamily(t *testing.T) {
	if code := run([]string{"-families", "nope"}); code != 1 {
		t.Errorf("exit code %d, want 1", code)
	}
}

func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	cp := filepath.Join(dir, "cp.jsonl")
	args := []string{"-families", "gk", "-p", "2", "-runs", "100",
		"-checkpoint", cp, "-quiet"}
	if code := run(args); code != 0 {
		t.Fatalf("first run: exit code %d", code)
	}
	before, err := os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	if code := run(args); code != 0 {
		t.Fatalf("resume: exit code %d", code)
	}
	after, err := os.ReadFile(cp)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("no-op resume modified the checkpoint")
	}
}

func TestParseSpecExplicitZeroes(t *testing.T) {
	// -seed 0 and -runs 0 (adaptive) must be honored, not replaced by
	// the defaults (fs.Visit idiom, as in cmd/fairness).
	spec, _, _, _, _, err := parseSpec([]string{"-seed", "0", "-runs", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 0 {
		t.Errorf("explicit -seed 0 gave Seed = %d", spec.Seed)
	}
	if spec.Runs != 0 {
		t.Errorf("explicit -runs 0 gave Runs = %d", spec.Runs)
	}
	def, _, _, _, _, err := parseSpec(nil)
	if err != nil {
		t.Fatal(err)
	}
	if def.Seed == 0 {
		t.Fatal("default seed must be nonzero for this test to mean anything")
	}
}

func TestParseGammas(t *testing.T) {
	gs, err := parseGammas("0,0,1,0.5; 0,0,1,0")
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 2 || gs[0] != core.StandardPayoff() || gs[1] != core.GordonKatzPayoff() {
		t.Errorf("parseGammas = %+v", gs)
	}
	if _, err := parseGammas("1,2,3"); err == nil {
		t.Error("3-component vector accepted")
	}
	if _, err := parseGammas("a,b,c,d"); err == nil {
		t.Error("non-numeric vector accepted")
	}
}

// TestRunFabricByteIdentical pins the CLI fabric mode: `-fabric N`
// shards the grid over in-process workers and writes a checkpoint
// byte-identical to the plain single-machine invocation.
func TestRunFabricByteIdentical(t *testing.T) {
	dir := t.TempDir()
	local := filepath.Join(dir, "local.jsonl")
	fab := filepath.Join(dir, "fabric.jsonl")
	base := []string{"-families", "2sfe,oneround", "-n", "2", "-runs", "60", "-quiet"}

	if code := run(append([]string{"-checkpoint", local}, base...)); code != 0 {
		t.Fatalf("local run: exit code %d", code)
	}
	if code := run(append([]string{"-checkpoint", fab, "-fabric", "2", "-lease-ttl", "1500ms"}, base...)); code != 0 {
		t.Fatalf("fabric run: exit code %d", code)
	}
	want, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(fab)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Error("fabric checkpoint differs from single-machine checkpoint")
	}
}

// TestRunWorkerRequiresJoin pins the usage error for a worker with no
// coordinator address.
func TestRunWorkerRequiresJoin(t *testing.T) {
	if code := run([]string{"-worker"}); code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
}
