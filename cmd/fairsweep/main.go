// Command fairsweep runs the bound-certifying parameter sweep: a
// deterministic grid over (protocol family, payoff vector γ, party
// count n, corruption threshold t, attacker — including an abort-round
// sweep — and cost function), certifying every cell against the paper's
// applicable closed-form bound. Any breach fails the sweep with exit
// code 1.
//
// Usage:
//
//	fairsweep [-checkpoint F] [-families LIST] [-n LIST] [-t LIST] [-p LIST]
//	          [-runs N | -target-hw W -delta D] [-sup N] [-slack S]
//	          [-seed S] [-parallel P] [-no-abort-sweep] [-quiet] [-v]
//
// With -checkpoint, every record is streamed to a JSONL file as it is
// produced; re-running the same command against an existing checkpoint
// resumes after the last complete record and produces byte-identical
// output to an uninterrupted run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// parseInts parses a comma-separated integer list ("2,3,5").
func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseGammas parses a semicolon-separated list of payoff vectors, each
// four comma-separated components γ00,γ01,γ10,γ11.
func parseGammas(s string) ([]core.Payoff, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []core.Payoff
	for _, vec := range strings.Split(s, ";") {
		parts := strings.Split(vec, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("bad payoff vector %q: want γ00,γ01,γ10,γ11", vec)
		}
		var g [4]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("bad payoff vector %q: %w", vec, err)
			}
			g[i] = v
		}
		out = append(out, core.Payoff{G00: g[0], G01: g[1], G10: g[2], G11: g[3]})
	}
	return out, nil
}

// parseSpec builds the sweep spec from the command line. Overrides apply
// only when their flag was explicitly given (fs.Visit), so explicit
// zeros — notably -seed 0 and -runs 0 (adaptive) — are honored.
func parseSpec(args []string) (spec sweep.Spec, checkpoint string, quiet, verbose bool, err error) {
	fs := flag.NewFlagSet("fairsweep", flag.ContinueOnError)
	families := fs.String("families", "", "comma-separated protocol families (default: all)")
	gammas := fs.String("gammas", "", "semicolon-separated payoff vectors γ00,γ01,γ10,γ11 (default: standard grid)")
	ns := fs.String("n", "", "comma-separated party counts (default: 2,3,4,5)")
	ts := fs.String("t", "", "comma-separated corruption thresholds (default: all 1..n-1)")
	ps := fs.String("p", "", "comma-separated Gordon–Katz p values (default: 2,4,8)")
	costs := fs.String("costs", "", "comma-separated cost functions: zero,optimal (default: both)")
	est := cliflags.RegisterEstimation(fs, cliflags.EstimationSpec{
		RunsUsage:     "flat Monte-Carlo runs per cell (0 = adaptive via stats.SamplesFor)",
		Sup:           true,
		SupUsage:      "per-strategy runs for sup-search cells (0 = no sup cells)",
		SeedUsage:     "sweep seed",
		Parallel:      true,
		ParallelUsage: "per-cell estimation workers (0 = one per CPU)",
	})
	targetHW := fs.Float64("target-hw", 0, "adaptive-sampling target certification margin")
	delta := fs.Float64("delta", 0, "sweep-wide false-breach probability budget")
	maxRuns := fs.Int("max-runs", 0, "adaptive run-count ceiling")
	slack := fs.Float64("slack", 0, "flat extra certification tolerance")
	noCompiled := fs.Bool("no-compiled-plans", false, "pin the estimator to the interpreter (debugging; records are identical)")
	noAbort := fs.Bool("no-abort-sweep", false, "disable the abort-at-round attacker dimension")
	cp := fs.String("checkpoint", "", "JSONL checkpoint path (resumes if the file exists)")
	q := fs.Bool("quiet", false, "suppress per-record progress")
	v := fs.Bool("v", false, "print every record, not just breaches")
	if err := fs.Parse(args); err != nil {
		return sweep.Spec{}, "", false, false, err
	}

	spec = sweep.DefaultSpec()
	given := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { given[f.Name] = true })

	if given["families"] {
		spec.Families = splitList(*families)
	}
	if given["gammas"] {
		if spec.Gammas, err = parseGammas(*gammas); err != nil {
			return sweep.Spec{}, "", false, false, err
		}
	}
	if given["n"] {
		if spec.Ns, err = parseInts(*ns); err != nil {
			return sweep.Spec{}, "", false, false, err
		}
	}
	if given["t"] {
		if spec.Ts, err = parseInts(*ts); err != nil {
			return sweep.Spec{}, "", false, false, err
		}
	}
	if given["p"] {
		if spec.Ps, err = parseInts(*ps); err != nil {
			return sweep.Spec{}, "", false, false, err
		}
	}
	if given["costs"] {
		spec.Costs = splitList(*costs)
	}
	if est.Given("runs") {
		spec.Runs = est.Runs
	}
	if given["target-hw"] {
		spec.TargetHW = *targetHW
	}
	if given["delta"] {
		spec.Delta = *delta
	}
	if given["max-runs"] {
		spec.MaxRuns = *maxRuns
	}
	if est.Given("sup") {
		spec.SupRuns = est.Sup
	}
	if given["slack"] {
		spec.Slack = *slack
	}
	if est.Given("seed") {
		spec.Seed = est.Seed
	}
	if est.Given("parallel") {
		spec.Parallelism = est.Parallel
	}
	if *noCompiled {
		spec.NoCompiledPlans = true
	}
	if *noAbort {
		spec.AbortSweep = false
	}
	return spec, *cp, *q, *v, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func run(args []string) int {
	spec, checkpoint, quiet, verbose, err := parseSpec(args)
	if err != nil {
		return 2
	}

	mode := fmt.Sprintf("runs=%d", spec.Runs)
	if spec.Runs == 0 {
		mode = fmt.Sprintf("adaptive target-hw=%g delta=%g", spec.TargetHW, spec.Delta)
	}
	fmt.Printf("fairsweep: families=%v n=%v %s seed=%d\n",
		spec.Families, spec.Ns, mode, spec.Seed)
	if checkpoint != "" {
		fmt.Printf("fairsweep: checkpoint %s\n", checkpoint)
	}

	progress := func(done, total int, rec sweep.Record, resumed bool) {
		if quiet {
			return
		}
		if !rec.OK || verbose {
			printRecord(done, total, rec, resumed)
		}
	}
	pool := service.New(service.Config{Workers: 1, CacheSize: -1})
	defer pool.Close()
	job, err := pool.Submit(service.SweepParams{Spec: spec},
		service.WithCheckpoint(checkpoint), service.WithProgress(progress))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fairsweep:", err)
		return 1
	}
	res, err := job.Wait()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fairsweep:", err)
		return 1
	}
	sum := res.Sweep

	for _, msg := range sum.Skipped {
		fmt.Printf("skipped: %s\n", msg)
	}
	if sum.Resumed > 0 {
		fmt.Printf("resumed: %d of %d records from checkpoint\n", sum.Resumed, len(sum.Records))
	}
	fmt.Printf("records: %d  checks: %d  breaches: %d\n",
		len(sum.Records), sum.TotalChecks, len(sum.Breaches))
	if !sum.OK() {
		for _, br := range sum.Breaches {
			printRecord(0, 0, br, false)
		}
		fmt.Println("RESULT: BOUND BREACH")
		return 1
	}
	fmt.Println("RESULT: all cells certified against the paper's bounds")
	return 0
}

// printRecord renders one record's certifications on a single line.
func printRecord(done, total int, rec sweep.Record, resumed bool) {
	var b strings.Builder
	if total > 0 {
		fmt.Fprintf(&b, "[%d/%d] ", done, total)
	}
	fmt.Fprintf(&b, "%s %s γ=(%g,%g,%g,%g) n=%d", rec.Kind, rec.Family,
		rec.Gamma[0], rec.Gamma[1], rec.Gamma[2], rec.Gamma[3], rec.N)
	if rec.Kind == "cell" {
		fmt.Fprintf(&b, " t=%d adv=%s cost=%s", rec.T, rec.Adv, rec.Cost)
		if rec.P > 0 {
			fmt.Fprintf(&b, " p=%d", rec.P)
		}
	}
	fmt.Fprintf(&b, " mean=%.4f±%.4f", rec.Mean, rec.HalfWidth)
	for _, ck := range rec.Checks {
		status := "ok"
		if !ck.OK {
			status = "BREACH"
		}
		fmt.Fprintf(&b, "  %s %s %.4f [%s]", ck.Name, ck.Dir, ck.Bound, status)
	}
	if resumed {
		b.WriteString("  (resumed)")
	}
	fmt.Println(b.String())
}
