// Command fairsweep runs the bound-certifying parameter sweep: a
// deterministic grid over (protocol family, payoff vector γ, party
// count n, corruption threshold t, attacker — including an abort-round
// sweep — and cost function), certifying every cell against the paper's
// applicable closed-form bound. Any breach fails the sweep with exit
// code 1.
//
// Usage:
//
//	fairsweep [-checkpoint F] [-families LIST] [-n LIST] [-t LIST] [-p LIST]
//	          [-runs N | -target-hw W -delta D] [-sup N] [-slack S]
//	          [-seed S] [-parallel P] [-no-abort-sweep] [-quiet] [-v]
//
// With -checkpoint, every record is streamed to a JSONL file as it is
// produced; re-running the same command against an existing checkpoint
// resumes after the last complete record and produces byte-identical
// output to an uninterrupted run.
//
// Distributed modes (the sweep fabric, internal/fabric):
//
//	fairsweep -coordinator ADDR -workers N [...spec flags...]
//	    serve the sweep as a fabric coordinator: listen on ADDR, lease
//	    cell ranges to joining workers, survive worker crashes, and
//	    merge a certified report byte-identical to a local run.
//	fairsweep -worker -join ADDR [-lease-ttl D]
//	    join a coordinator as a worker (spec flags are ignored — the
//	    spec arrives over the wire and is verified by grid fingerprint).
//	fairsweep -fabric N [...spec flags...]
//	    run coordinator plus N in-process workers on loopback — the
//	    full lease protocol over real TCP in one process.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/service"
	"repro/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// parseInts parses a comma-separated integer list ("2,3,5").
func parseInts(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseGammas parses a semicolon-separated list of payoff vectors, each
// four comma-separated components γ00,γ01,γ10,γ11.
func parseGammas(s string) ([]core.Payoff, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []core.Payoff
	for _, vec := range strings.Split(s, ";") {
		parts := strings.Split(vec, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("bad payoff vector %q: want γ00,γ01,γ10,γ11", vec)
		}
		var g [4]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("bad payoff vector %q: %w", vec, err)
			}
			g[i] = v
		}
		out = append(out, core.Payoff{G00: g[0], G01: g[1], G10: g[2], G11: g[3]})
	}
	return out, nil
}

// fabricOptions selects fairsweep's distributed modes (all off by
// default; see the package comment).
type fabricOptions struct {
	coordinator string        // -coordinator: listen address, "" = off
	workers     int           // -workers: expected worker count
	worker      bool          // -worker: run as a joining worker
	join        string        // -join: coordinator address to join
	local       int           // -fabric: in-process worker count, 0 = off
	leaseTTL    time.Duration // -lease-ttl: failure-detection horizon
}

// parseSpec builds the sweep spec from the command line. Overrides apply
// only when their flag was explicitly given (fs.Visit), so explicit
// zeros — notably -seed 0 and -runs 0 (adaptive) — are honored.
func parseSpec(args []string) (spec sweep.Spec, checkpoint string, quiet, verbose bool, fab fabricOptions, err error) {
	fs := flag.NewFlagSet("fairsweep", flag.ContinueOnError)
	families := fs.String("families", "", "comma-separated protocol families (default: all)")
	gammas := fs.String("gammas", "", "semicolon-separated payoff vectors γ00,γ01,γ10,γ11 (default: standard grid)")
	ns := fs.String("n", "", "comma-separated party counts (default: 2,3,4,5)")
	ts := fs.String("t", "", "comma-separated corruption thresholds (default: all 1..n-1)")
	ps := fs.String("p", "", "comma-separated Gordon–Katz p values (default: 2,4,8)")
	costs := fs.String("costs", "", "comma-separated cost functions: zero,optimal (default: both)")
	est := cliflags.RegisterEstimation(fs, cliflags.EstimationSpec{
		RunsUsage:     "flat Monte-Carlo runs per cell (0 = adaptive via stats.SamplesFor)",
		Sup:           true,
		SupUsage:      "per-strategy runs for sup-search cells (0 = no sup cells)",
		SeedUsage:     "sweep seed",
		Parallel:      true,
		ParallelUsage: "per-cell estimation workers (0 = one per CPU)",
	})
	targetHW := fs.Float64("target-hw", 0, "adaptive-sampling target certification margin")
	delta := fs.Float64("delta", 0, "sweep-wide false-breach probability budget")
	maxRuns := fs.Int("max-runs", 0, "adaptive run-count ceiling")
	slack := fs.Float64("slack", 0, "flat extra certification tolerance")
	supSearch := fs.Bool("sup-search", false, "compute sup cells with the racing search engine (keyed \"sup-search\")")
	vr := cliflags.RegisterVariance(fs)
	noCompiled := fs.Bool("no-compiled-plans", false, "pin the estimator to the interpreter (debugging; records are identical)")
	noAbort := fs.Bool("no-abort-sweep", false, "disable the abort-at-round attacker dimension")
	cp := fs.String("checkpoint", "", "JSONL checkpoint path (resumes if the file exists)")
	coordinator := fs.String("coordinator", "", "serve the sweep as a fabric coordinator on this listen address")
	workers := fs.Int("workers", 4, "expected worker count (coordinator mode; sizes the initial range split)")
	workerMode := fs.Bool("worker", false, "run as a fabric worker (requires -join)")
	join := fs.String("join", "", "coordinator address to join (worker mode)")
	fabricN := fs.Int("fabric", 0, "run the sweep on this many in-process fabric workers")
	leaseTTL := fs.Duration("lease-ttl", 3*time.Second, "fabric lease TTL (worker silence past this is death)")
	q := fs.Bool("quiet", false, "suppress per-record progress")
	v := fs.Bool("v", false, "print every record, not just breaches")
	if err := fs.Parse(args); err != nil {
		return sweep.Spec{}, "", false, false, fabricOptions{}, err
	}

	spec = sweep.DefaultSpec()
	given := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { given[f.Name] = true })

	if given["families"] {
		spec.Families = splitList(*families)
	}
	if given["gammas"] {
		if spec.Gammas, err = parseGammas(*gammas); err != nil {
			return sweep.Spec{}, "", false, false, fabricOptions{}, err
		}
	}
	if given["n"] {
		if spec.Ns, err = parseInts(*ns); err != nil {
			return sweep.Spec{}, "", false, false, fabricOptions{}, err
		}
	}
	if given["t"] {
		if spec.Ts, err = parseInts(*ts); err != nil {
			return sweep.Spec{}, "", false, false, fabricOptions{}, err
		}
	}
	if given["p"] {
		if spec.Ps, err = parseInts(*ps); err != nil {
			return sweep.Spec{}, "", false, false, fabricOptions{}, err
		}
	}
	if given["costs"] {
		spec.Costs = splitList(*costs)
	}
	if est.Given("runs") {
		spec.Runs = est.Runs
	}
	if given["target-hw"] {
		spec.TargetHW = *targetHW
	}
	if given["delta"] {
		spec.Delta = *delta
	}
	if given["max-runs"] {
		spec.MaxRuns = *maxRuns
	}
	if est.Given("sup") {
		spec.SupRuns = est.Sup
	}
	if *supSearch {
		spec.SupSearch = true
	}
	if given["slack"] {
		spec.Slack = *slack
	}
	if est.Given("seed") {
		spec.Seed = est.Seed
	}
	if est.Given("parallel") {
		spec.Parallelism = est.Parallel
	}
	if *noCompiled {
		spec.NoCompiledPlans = true
	}
	if *noAbort {
		spec.AbortSweep = false
	}
	if vr.PairedSeeds {
		spec.PairedSeeds = true
	}
	if vr.ControlVariates {
		spec.ControlVariates = true
	}
	fab = fabricOptions{
		coordinator: *coordinator, workers: *workers,
		worker: *workerMode, join: *join,
		local: *fabricN, leaseTTL: *leaseTTL,
	}
	return spec, *cp, *q, *v, fab, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func run(args []string) int {
	spec, checkpoint, quiet, verbose, fab, err := parseSpec(args)
	if err != nil {
		return 2
	}
	if fab.worker {
		return runWorker(fab)
	}
	if fab.coordinator != "" || fab.local > 0 {
		if spec.PairedSeeds {
			// Paired delta records reduce two cells' per-run event logs at
			// once; range workers only hold their own cells' logs.
			fmt.Fprintln(os.Stderr, "fairsweep: -paired-seeds sweeps cannot run on the fabric; run single-machine")
			return 2
		}
		return runFabric(spec, checkpoint, quiet, fab)
	}

	mode := fmt.Sprintf("runs=%d", spec.Runs)
	if spec.Runs == 0 {
		mode = fmt.Sprintf("adaptive target-hw=%g delta=%g", spec.TargetHW, spec.Delta)
	}
	fmt.Printf("fairsweep: families=%v n=%v %s seed=%d\n",
		spec.Families, spec.Ns, mode, spec.Seed)
	if checkpoint != "" {
		fmt.Printf("fairsweep: checkpoint %s\n", checkpoint)
	}

	progress := func(done, total int, rec sweep.Record, resumed bool) {
		if quiet {
			return
		}
		if !rec.OK || verbose {
			printRecord(done, total, rec, resumed)
		}
	}
	pool := service.New(service.Config{Workers: 1, CacheSize: -1})
	defer pool.Close()
	job, err := pool.Submit(service.SweepParams{Spec: spec},
		service.WithCheckpoint(checkpoint), service.WithProgress(progress))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fairsweep:", err)
		return 1
	}
	res, err := job.Wait()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fairsweep:", err)
		return 1
	}
	return printSummary(res.Sweep)
}

// printSummary renders the certified summary's verdict and returns the
// process exit code — shared by the local and fabric paths so both
// report identically.
func printSummary(sum *sweep.Summary) int {
	for _, msg := range sum.Skipped {
		fmt.Printf("skipped: %s\n", msg)
	}
	if sum.Resumed > 0 {
		fmt.Printf("resumed: %d of %d records from checkpoint\n", sum.Resumed, len(sum.Records))
	}
	fmt.Printf("records: %d  checks: %d  breaches: %d\n",
		len(sum.Records), sum.TotalChecks, len(sum.Breaches))
	if !sum.OK() {
		for _, br := range sum.Breaches {
			printRecord(0, 0, br, false)
		}
		fmt.Println("RESULT: BOUND BREACH")
		return 1
	}
	fmt.Println("RESULT: all cells certified against the paper's bounds")
	return 0
}

// runWorker joins a coordinator and computes leases until the sweep
// completes (or the coordinator declares this worker dead).
func runWorker(fab fabricOptions) int {
	if fab.join == "" {
		fmt.Fprintln(os.Stderr, "fairsweep: -worker requires -join ADDR")
		return 2
	}
	fmt.Printf("fairsweep: worker joining %s (lease-ttl %s)\n", fab.join, fab.leaseTTL)
	w := fabric.NewWorker(fab.join, fabric.JoinStream(fab.leaseTTL))
	if err := w.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "fairsweep: worker:", err)
		return 1
	}
	fmt.Println("fairsweep: worker done")
	return 0
}

// runFabric shards the sweep across fabric workers — remote
// (-coordinator) or in-process (-fabric N) — and prints the same
// certified verdict as a local run.
func runFabric(spec sweep.Spec, checkpoint string, quiet bool, fab fabricOptions) int {
	cfg := fabric.Config{
		Spec: spec, Addr: fab.coordinator, Workers: fab.workers,
		LeaseTTL: fab.leaseTTL, Checkpoint: checkpoint,
	}
	if !quiet {
		cfg.OnRecord = func(accepted, total int) {
			if tenth := total / 10; tenth == 0 || accepted%tenth == 0 || accepted == total {
				fmt.Printf("fabric: %d/%d cells certified\n", accepted, total)
			}
		}
	}

	var (
		sum   *sweep.Summary
		stats fabric.Stats
	)
	if fab.coordinator != "" {
		co, err := fabric.NewCoordinator(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fairsweep: coordinator:", err)
			return 1
		}
		fmt.Printf("fairsweep: coordinator on %s awaiting workers (expected %d, lease-ttl %s)\n",
			co.Addr(), cfg.Workers, fab.leaseTTL)
		var err2 error
		sum, stats, err2 = co.Run()
		if err2 != nil {
			fmt.Fprintln(os.Stderr, "fairsweep: coordinator:", err2)
			return 1
		}
	} else {
		fmt.Printf("fairsweep: in-process fabric, %d workers (lease-ttl %s)\n", fab.local, fab.leaseTTL)
		var err error
		sum, stats, err = fabric.RunLocal(cfg, fab.local)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fairsweep: fabric:", err)
			return 1
		}
	}
	fmt.Printf("fabric: workers=%d deaths=%d steals=%d requeues=%d duplicates=%d  %.1f cells/s\n",
		stats.Joined, stats.Deaths, stats.Steals, stats.Requeues,
		stats.DuplicateRecords, stats.CellsPerSec)
	return printSummary(sum)
}

// printRecord renders one record's certifications on a single line.
func printRecord(done, total int, rec sweep.Record, resumed bool) {
	var b strings.Builder
	if total > 0 {
		fmt.Fprintf(&b, "[%d/%d] ", done, total)
	}
	fmt.Fprintf(&b, "%s %s γ=(%g,%g,%g,%g) n=%d", rec.Kind, rec.Family,
		rec.Gamma[0], rec.Gamma[1], rec.Gamma[2], rec.Gamma[3], rec.N)
	if rec.Kind == "cell" {
		fmt.Fprintf(&b, " t=%d adv=%s cost=%s", rec.T, rec.Adv, rec.Cost)
		if rec.P > 0 {
			fmt.Fprintf(&b, " p=%d", rec.P)
		}
	}
	fmt.Fprintf(&b, " mean=%.4f±%.4f", rec.Mean, rec.HalfWidth)
	for _, ck := range rec.Checks {
		status := "ok"
		if !ck.OK {
			status = "BREACH"
		}
		fmt.Fprintf(&b, "  %s %s %.4f [%s]", ck.Name, ck.Dir, ck.Bound, status)
	}
	if resumed {
		b.WriteString("  (resumed)")
	}
	fmt.Println(b.String())
}
