// Partial fairness: the Gordon–Katz 1/p-secure protocol for AND under the
// Section 5 payoff vector ~γ = (0, 0, 1, 0), swept over p — followed by
// the Π̃ separation: a protocol that passes the Gordon–Katz definitions
// while leaking an honest input with probability 1/4.
//
//	go run ./examples/partialfairness
package main

import (
	"fmt"
	"log"
	"math/rand"

	fairness "repro"
)

func main() {
	gamma := fairness.GordonKatzPayoff()
	worst := fairness.FixedInputs(uint64(1), uint64(1)) // x = (1,1): output = counterparty's bit

	fmt.Println("== Gordon–Katz poly-domain protocol for AND, utility vs p ==")
	fmt.Printf("payoff γ = (0,0,1,0): utility = Pr[adversary-only output]\n\n")
	fmt.Printf("%-4s %-10s %-14s %-10s\n", "p", "rounds", "measured", "bound 1/p")
	for _, p := range []int{2, 4, 8, 16} {
		proto, err := fairness.NewPolyDomain(fairness.ANDFunction(), p)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := fairness.EstimateUtility(proto, fairness.NewLockAbort(1),
			gamma, worst, 3000, int64(p))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-10d %-14s %.4f\n", p, proto.NumRounds(), rep.Utility.String(), 1.0/float64(p))
	}

	fmt.Println("\n== the Π̃ separation (Lemmas 26/27) ==")
	pitilde, err := fairness.NewPitilde()
	if err != nil {
		log.Fatal(err)
	}
	// 1/2-security holds…
	rep, err := fairness.EstimateUtility(pitilde, fairness.NewLockAbort(1), gamma, worst, 3000, 31)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("utility of the best abort attack: %s (≤ 1/2: 1/2-secure)\n", rep.Utility)

	// …but the first-message deviation extracts p1's input.
	leak, err := fairness.EstimateUtility(pitilde, fairness.NewLeakExtractor(), gamma,
		func(r *rand.Rand) []fairness.Value {
			return []fairness.Value{uint64(r.Intn(2)), uint64(0)}
		}, 3000, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified input extractions:       %.4f of runs (paper: 1/4)\n", leak.PrivacyBreaches)
	fmt.Println("\nΠ̃ is 1/2-secure and \"fully private\" by the Gordon–Katz")
	fmt.Println("definitions, yet leaks x1 outright — no simulator for F_sfe^$ can")
	fmt.Println("produce that trace. Utility-based fairness strictly implies")
	fmt.Println("1/p-security (Section 5).")
}
