// Contract signing: the paper's opening example. Two parties can exchange
// signed contracts with protocol Π1 (p1 opens first, then p2) or Π2
// (a coin toss decides who opens first). Which is fairer?
//
//	go run ./examples/contractsigning
package main

import (
	"fmt"
	"log"
	"math/rand"

	fairness "repro"
)

func main() {
	gamma := fairness.StandardPayoff()
	sampler := func(r *rand.Rand) []fairness.Value {
		return []fairness.Value{uint64(r.Int63()), uint64(r.Int63())}
	}

	fmt.Println("Which contract-signing protocol should the parties use?")
	fmt.Printf("payoff vector γ = %+v\n\n", gamma)

	type entry struct {
		name  string
		proto fairness.Protocol
	}
	sups := make(map[string]fairness.Estimate, 2)
	for _, e := range []entry{
		{"Π1 (fixed order)", fairness.Pi1{}},
		{"Π2 (coin-tossed order)", fairness.Pi2{}},
	} {
		space := fairness.SliceSpace(fairness.TwoPartySpace(e.proto.NumRounds()))
		sup, err := fairness.SupUtilitySpace(e.proto, space, gamma, sampler, 1500, 11)
		if err != nil {
			log.Fatal(err)
		}
		sups[e.name] = sup.BestReport.Utility
		fmt.Printf("%-24s best attacker: %-16s utility %s\n",
			e.name, sup.Best, sup.BestReport.Utility)
		fmt.Printf("%-24s events: E10=%.3f E11=%.3f\n\n", "",
			sup.BestReport.EventFreq[fairness.E10], sup.BestReport.EventFreq[fairness.E11])
	}

	rel := fairness.Compare(sups["Π2 (coin-tossed order)"], sups["Π1 (fixed order)"], 0.03)
	fmt.Printf("verdict: Π2 is %v than Π1.\n", rel)
	fmt.Printf("paper:   u*(Π1) = γ10 = %.2f, u*(Π2) = (γ10+γ11)/2 = %.2f —\n",
		gamma.G10, fairness.TwoPartyOptimalBound(gamma))
	fmt.Println("         the coin toss halves the attacker's advantage: Π2 is")
	fmt.Println("         \"twice as fair as\" Π1 (Introduction of the paper).")
}
