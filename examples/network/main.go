// Network: run the paper's protocols over real TCP connections. Every
// party is a client speaking gob frames to a round-synchronizing host on
// the loopback interface — the same protocol machines as the in-memory
// fairness engine, across a genuine serialization boundary.
//
//	go run ./examples/network
package main

import (
	"fmt"
	"log"

	fairness "repro"
)

func main() {
	fairness.RegisterContractGobTypes()
	fairness.RegisterTwoPartyGobTypes()
	fairness.RegisterMultiPartyGobTypes()

	fmt.Println("== Π2 contract signing over TCP ==")
	outs, err := fairness.RunOverTCP(fairness.Pi2{},
		[]fairness.Value{uint64(0xA11CE), uint64(0xB0B)}, fairness.GobCodec{}, 1)
	if err != nil {
		log.Fatal(err)
	}
	for id := fairness.PartyID(1); id <= 2; id++ {
		fmt.Printf("party %d output: %+v\n", id, outs[id].Value)
	}

	fmt.Println("\n== ΠOpt-2SFE (millionaires) over TCP ==")
	outs, err = fairness.RunOverTCP(fairness.NewOptimalTwoParty(fairness.Millionaires()),
		[]fairness.Value{uint64(52_000), uint64(47_500)}, fairness.GobCodec{}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("party 1: alice richer = %v\nparty 2: alice richer = %v\n",
		outs[1].Value, outs[2].Value)

	fmt.Println("\n== ΠOpt-nSFE (5-party max) over TCP ==")
	fn, err := fairness.MaxFn(5)
	if err != nil {
		log.Fatal(err)
	}
	outs, err = fairness.RunOverTCP(fairness.NewOptimalMultiParty(fn),
		[]fairness.Value{uint64(310), uint64(455), uint64(290), uint64(505), uint64(470)},
		fairness.GobCodec{}, 3)
	if err != nil {
		log.Fatal(err)
	}
	for id := fairness.PartyID(1); id <= 5; id++ {
		fmt.Printf("party %d winning price: %v\n", id, outs[id].Value)
	}
	fmt.Println("\nSame machines, real sockets: the fairness engine's protocols are")
	fmt.Println("ordinary message-driven state machines. Adversarial measurements")
	fmt.Println("stay in the in-memory engine, where rushing and corruption live.")
}
