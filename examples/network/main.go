// Network: run the paper's protocols over real TCP connections. Every
// party is a client speaking gob frames to a round-synchronizing host on
// the loopback interface — the same protocol machines as the in-memory
// fairness engine, across a genuine serialization boundary. The host is
// the engine itself: it drives the shared Execution phases over a remote
// party backend, so observers attached to a TCP session see the exact
// event stream an in-memory run produces — demonstrated below by
// recording and printing a session transcript.
//
//	go run ./examples/network
package main

import (
	"fmt"
	"log"

	fairness "repro"
)

func main() {
	fairness.RegisterContractGobTypes()
	fairness.RegisterTwoPartyGobTypes()
	fairness.RegisterMultiPartyGobTypes()

	fmt.Println("== Π2 contract signing over TCP ==")
	outs, err := fairness.RunOverTCP(fairness.Pi2{},
		[]fairness.Value{uint64(0xA11CE), uint64(0xB0B)}, fairness.GobCodec{}, 1)
	if err != nil {
		log.Fatal(err)
	}
	for id := fairness.PartyID(1); id <= 2; id++ {
		fmt.Printf("party %d output: %+v\n", id, outs[id].Value)
	}

	fmt.Println("\n== ΠOpt-2SFE (millionaires) over TCP, observed ==")
	rec := fairness.NewTraceRecorder(fairness.TraceMeta{Strategy: "tcp-session"})
	var metrics fairness.EngineMetrics
	outs, err = fairness.RunOverTCPConfig(fairness.NewOptimalTwoParty(fairness.Millionaires()),
		[]fairness.Value{uint64(52_000), uint64(47_500)}, 2,
		fairness.SessionConfig{Observers: []fairness.Observer{rec, &metrics}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("party 1: alice richer = %v\nparty 2: alice richer = %v\n",
		outs[1].Value, outs[2].Value)
	fmt.Printf("engine metrics: rounds=%d msgs=%d deliveries=%d\n",
		metrics.Rounds, metrics.Messages, metrics.Deliveries)
	fmt.Println("transcript excerpt (same observer stream as an in-memory run):")
	const excerpt = 8
	for i, line := range rec.Lines() {
		if i >= excerpt {
			fmt.Printf("  … %d more lines\n", len(rec.Lines())-excerpt)
			break
		}
		if s := fairness.FormatTraceLine(line); s != "" {
			fmt.Println(" ", s)
		}
	}

	fmt.Println("\n== ΠOpt-nSFE (5-party max) over TCP ==")
	fn, err := fairness.MaxFn(5)
	if err != nil {
		log.Fatal(err)
	}
	outs, err = fairness.RunOverTCP(fairness.NewOptimalMultiParty(fn),
		[]fairness.Value{uint64(310), uint64(455), uint64(290), uint64(505), uint64(470)},
		fairness.GobCodec{}, 3)
	if err != nil {
		log.Fatal(err)
	}
	for id := fairness.PartyID(1); id <= 5; id++ {
		fmt.Printf("party %d winning price: %v\n", id, outs[id].Value)
	}
	fmt.Println("\nSame machines, real sockets: the fairness engine's protocols are")
	fmt.Println("ordinary message-driven state machines. Adversarial measurements")
	fmt.Println("stay in the in-memory engine, where rushing and corruption live.")
}
