// Network: run the paper's protocols over real TCP connections. Every
// party is a client speaking gob frames to a round-synchronizing host on
// the loopback interface — the same protocol machines as the in-memory
// fairness engine, across a genuine serialization boundary. The host is
// the engine itself: it drives the shared Execution phases over a remote
// party backend, so observers attached to a TCP session see the exact
// event stream an in-memory run produces — demonstrated below by
// recording and printing a session transcript.
//
//	go run ./examples/network
//
// Chaos mode exercises the transport's resilience layer with
// deterministic, seeded fault injection: transient faults (drops,
// delays) heal via the reconnect/resume handshake with byte-identical
// outputs, and killing a party degrades the run into the model's
// fail-stop abort instead of an error.
//
//	go run ./examples/network -chaos-seed 7 -drop 0.05 -delay 0.05
//	go run ./examples/network -chaos-seed 7 -kill-party 2 -kill-round 1
package main

import (
	"flag"
	"fmt"
	"log"

	fairness "repro"
	"repro/internal/cliflags"
)

func main() {
	chaos := cliflags.RegisterChaos(flag.CommandLine)
	flag.Parse()

	fairness.RegisterContractGobTypes()
	fairness.RegisterTwoPartyGobTypes()
	fairness.RegisterMultiPartyGobTypes()

	fmt.Println("== Π2 contract signing over TCP ==")
	outs, err := fairness.RunOverTCP(fairness.Pi2{},
		[]fairness.Value{uint64(0xA11CE), uint64(0xB0B)}, fairness.GobCodec{}, 1)
	if err != nil {
		log.Fatal(err)
	}
	for id := fairness.PartyID(1); id <= 2; id++ {
		fmt.Printf("party %d output: %+v\n", id, outs[id].Value)
	}

	fmt.Println("\n== ΠOpt-2SFE (millionaires) over TCP, observed ==")
	rec := fairness.NewTraceRecorder(fairness.TraceMeta{Strategy: "tcp-session"})
	var metrics fairness.EngineMetrics
	outs, err = fairness.RunOverTCPConfig(fairness.NewOptimalTwoParty(fairness.Millionaires()),
		[]fairness.Value{uint64(52_000), uint64(47_500)}, 2,
		fairness.SessionConfig{Observers: []fairness.Observer{rec, &metrics}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("party 1: alice richer = %v\nparty 2: alice richer = %v\n",
		outs[1].Value, outs[2].Value)
	fmt.Printf("engine metrics: rounds=%d msgs=%d deliveries=%d\n",
		metrics.Rounds, metrics.Messages, metrics.Deliveries)
	fmt.Println("transcript excerpt (same observer stream as an in-memory run):")
	const excerpt = 8
	for i, line := range rec.Lines() {
		if i >= excerpt {
			fmt.Printf("  … %d more lines\n", len(rec.Lines())-excerpt)
			break
		}
		if s := fairness.FormatTraceLine(line); s != "" {
			fmt.Println(" ", s)
		}
	}

	fmt.Println("\n== ΠOpt-nSFE (5-party max) over TCP ==")
	fn, err := fairness.MaxFn(5)
	if err != nil {
		log.Fatal(err)
	}
	auction := []fairness.Value{uint64(310), uint64(455), uint64(290), uint64(505), uint64(470)}
	outs, err = fairness.RunOverTCP(fairness.NewOptimalMultiParty(fn), auction, fairness.GobCodec{}, 3)
	if err != nil {
		log.Fatal(err)
	}
	for id := fairness.PartyID(1); id <= 5; id++ {
		fmt.Printf("party %d winning price: %v\n", id, outs[id].Value)
	}

	if chaos.Enabled() {
		runChaos(fn, auction, chaos)
	} else {
		fmt.Println("\nSame machines, real sockets: the fairness engine's protocols are")
		fmt.Println("ordinary message-driven state machines. Adversarial measurements")
		fmt.Println("stay in the in-memory engine, where rushing and corruption live.")
		fmt.Println("\n(rerun with -drop 0.05, -delay 0.05, or -kill-party 2 to watch the")
		fmt.Println(" resilience layer heal faults or degrade a crash into a fail-stop)")
	}
}

// runChaos reruns the auction under a seeded fault profile and reports
// how the resilience layer coped.
func runChaos(fn fairness.MultiPartyFunction, inputs []fairness.Value, chaos *cliflags.Chaos) {
	fmt.Printf("\n== chaos: ΠOpt-nSFE under seeded faults (seed %d) ==\n", chaos.Seed)
	inj, err := chaos.Injector()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := fairness.RunOverTCPReport(fairness.NewOptimalMultiParty(fn), inputs, chaos.Seed,
		fairness.SessionConfig{Fault: inj, RoundTimeout: chaos.Timeout, MaxResumes: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resume handshakes: %d\n", rep.Resumes)
	if len(rep.FailStops) == 0 {
		fmt.Println("fail-stops: none — every fault healed; outputs are byte-identical")
		fmt.Println("to the fault-free run (same seed ⇒ same faults ⇒ same healing):")
	} else {
		for id, info := range rep.FailStops {
			fmt.Printf("fail-stop: party %d at round %d (%s) — priced like an abort\n",
				id, info.Round, info.Cause)
		}
		fmt.Println("surviving outputs:")
	}
	for id := fairness.PartyID(1); id <= fairness.PartyID(len(inputs)); id++ {
		if rec, ok := rep.Outputs[id]; ok {
			fmt.Printf("party %d winning price: %v\n", id, rec.Value)
		} else {
			fmt.Printf("party %d: no output (fail-stopped)\n", id)
		}
	}
}
