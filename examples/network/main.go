// Network: run the paper's protocols over real TCP connections. Every
// party is a client speaking gob frames to a round-synchronizing host on
// the loopback interface — the same protocol machines as the in-memory
// fairness engine, across a genuine serialization boundary. The host is
// the engine itself: it drives the shared Execution phases over a remote
// party backend, so observers attached to a TCP session see the exact
// event stream an in-memory run produces — demonstrated below by
// recording and printing a session transcript.
//
//	go run ./examples/network
//
// Chaos mode exercises the transport's resilience layer with
// deterministic, seeded fault injection: transient faults (drops,
// delays) heal via the reconnect/resume handshake with byte-identical
// outputs, and killing a party degrades the run into the model's
// fail-stop abort instead of an error.
//
//	go run ./examples/network -chaos-seed 7 -drop 0.05 -delay 0.05
//	go run ./examples/network -chaos-seed 7 -kill-party 2 -kill-round 1
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	fairness "repro"
)

func main() {
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the deterministic fault injector")
	drop := flag.Float64("drop", 0, "per-frame drop probability (chaos mode)")
	delay := flag.Float64("delay", 0, "per-frame delay probability (chaos mode)")
	maxDelay := flag.Duration("max-delay", 5*time.Millisecond, "upper bound on injected delays")
	killParty := flag.Int("kill-party", 0, "party to crash (0 = nobody)")
	killRound := flag.Int("kill-round", 1, "round at which -kill-party crashes")
	timeout := flag.Duration("timeout", 2*time.Second, "per-frame round timeout in chaos mode")
	flag.Parse()

	fairness.RegisterContractGobTypes()
	fairness.RegisterTwoPartyGobTypes()
	fairness.RegisterMultiPartyGobTypes()

	fmt.Println("== Π2 contract signing over TCP ==")
	outs, err := fairness.RunOverTCP(fairness.Pi2{},
		[]fairness.Value{uint64(0xA11CE), uint64(0xB0B)}, fairness.GobCodec{}, 1)
	if err != nil {
		log.Fatal(err)
	}
	for id := fairness.PartyID(1); id <= 2; id++ {
		fmt.Printf("party %d output: %+v\n", id, outs[id].Value)
	}

	fmt.Println("\n== ΠOpt-2SFE (millionaires) over TCP, observed ==")
	rec := fairness.NewTraceRecorder(fairness.TraceMeta{Strategy: "tcp-session"})
	var metrics fairness.EngineMetrics
	outs, err = fairness.RunOverTCPConfig(fairness.NewOptimalTwoParty(fairness.Millionaires()),
		[]fairness.Value{uint64(52_000), uint64(47_500)}, 2,
		fairness.SessionConfig{Observers: []fairness.Observer{rec, &metrics}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("party 1: alice richer = %v\nparty 2: alice richer = %v\n",
		outs[1].Value, outs[2].Value)
	fmt.Printf("engine metrics: rounds=%d msgs=%d deliveries=%d\n",
		metrics.Rounds, metrics.Messages, metrics.Deliveries)
	fmt.Println("transcript excerpt (same observer stream as an in-memory run):")
	const excerpt = 8
	for i, line := range rec.Lines() {
		if i >= excerpt {
			fmt.Printf("  … %d more lines\n", len(rec.Lines())-excerpt)
			break
		}
		if s := fairness.FormatTraceLine(line); s != "" {
			fmt.Println(" ", s)
		}
	}

	fmt.Println("\n== ΠOpt-nSFE (5-party max) over TCP ==")
	fn, err := fairness.MaxFn(5)
	if err != nil {
		log.Fatal(err)
	}
	auction := []fairness.Value{uint64(310), uint64(455), uint64(290), uint64(505), uint64(470)}
	outs, err = fairness.RunOverTCP(fairness.NewOptimalMultiParty(fn), auction, fairness.GobCodec{}, 3)
	if err != nil {
		log.Fatal(err)
	}
	for id := fairness.PartyID(1); id <= 5; id++ {
		fmt.Printf("party %d winning price: %v\n", id, outs[id].Value)
	}

	if *drop > 0 || *delay > 0 || *killParty > 0 {
		runChaos(fn, auction, *chaosSeed, *drop, *delay, *maxDelay, *killParty, *killRound, *timeout)
	} else {
		fmt.Println("\nSame machines, real sockets: the fairness engine's protocols are")
		fmt.Println("ordinary message-driven state machines. Adversarial measurements")
		fmt.Println("stay in the in-memory engine, where rushing and corruption live.")
		fmt.Println("\n(rerun with -drop 0.05, -delay 0.05, or -kill-party 2 to watch the")
		fmt.Println(" resilience layer heal faults or degrade a crash into a fail-stop)")
	}
}

// runChaos reruns the auction under a seeded fault profile and reports
// how the resilience layer coped.
func runChaos(fn fairness.MultiPartyFunction, inputs []fairness.Value,
	seed int64, drop, delay float64, maxDelay time.Duration,
	killParty, killRound int, timeout time.Duration) {
	fmt.Printf("\n== chaos: ΠOpt-nSFE under seeded faults (seed %d) ==\n", seed)
	inj, err := fairness.NewRandomFaults(seed, fairness.FaultProfile{
		Drop: drop, Delay: delay, MaxDelay: maxDelay,
		KillParty: killParty, KillRound: killRound,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := fairness.RunOverTCPReport(fairness.NewOptimalMultiParty(fn), inputs, seed,
		fairness.SessionConfig{Fault: inj, RoundTimeout: timeout, MaxResumes: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resume handshakes: %d\n", rep.Resumes)
	if len(rep.FailStops) == 0 {
		fmt.Println("fail-stops: none — every fault healed; outputs are byte-identical")
		fmt.Println("to the fault-free run (same seed ⇒ same faults ⇒ same healing):")
	} else {
		for id, info := range rep.FailStops {
			fmt.Printf("fail-stop: party %d at round %d (%s) — priced like an abort\n",
				id, info.Round, info.Cause)
		}
		fmt.Println("surviving outputs:")
	}
	for id := fairness.PartyID(1); id <= fairness.PartyID(len(inputs)); id++ {
		if rec, ok := rep.Outputs[id]; ok {
			fmt.Printf("party %d winning price: %v\n", id, rec.Value)
		} else {
			fmt.Printf("party %d: no output (fail-stopped)\n", id)
		}
	}
}
