// Quickstart: evaluate a function with the optimally fair two-party
// protocol ΠOpt-2SFE, then measure how fair it actually is by pitting the
// paper's optimal attacker against it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	fairness "repro"
)

func main() {
	// 1. A single fair evaluation: the swap function f(x1,x2) = (x2,x1).
	proto := fairness.NewOptimalTwoParty(fairness.Swap())
	trace, err := fairness.Run(proto,
		[]fairness.Value{uint64(1234), uint64(5678)}, fairness.Passive{}, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== one honest run of ΠOpt-2SFE (swap) ==")
	fmt.Printf("inputs:  x1=1234 x2=5678\n")
	fmt.Printf("output:  %v (both parties)\n", trace.ExpectedOutput)
	fmt.Printf("event:   %v (honest delivery)\n\n", fairness.Classify(trace).Event)

	// 2. How fair is this protocol? Attack it with the Theorem 4
	// adversary Agen and compare against the paper's exact optimum.
	gamma := fairness.StandardPayoff()
	sampler := func(r *rand.Rand) []fairness.Value {
		return []fairness.Value{uint64(r.Intn(1 << 20)), uint64(r.Intn(1 << 20))}
	}
	// Options tune scheduling only — the report is bit-identical for any
	// parallelism or batch size (the estimator's determinism contract).
	report, err := fairness.EstimateUtility(proto, fairness.NewAgen(), gamma, sampler, 3000, 7,
		fairness.WithParallelism(fairness.DefaultParallelism()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== utility of the optimal attacker (Agen) ==")
	fmt.Printf("payoff vector γ = %+v\n", gamma)
	fmt.Printf("measured utility : %s\n", report.Utility)
	fmt.Printf("paper optimum    : (γ10+γ11)/2 = %.4f (Theorems 3 & 4)\n",
		fairness.TwoPartyOptimalBound(gamma))
	fmt.Printf("event split      : E10=%.3f (adversary-only output) E11=%.3f (both)\n",
		report.EventFreq[fairness.E10], report.EventFreq[fairness.E11])
	fmt.Println("\nΠOpt-2SFE concedes the output exclusively to the attacker only")
	fmt.Println("half the time — and no two-party protocol for general functions")
	fmt.Println("can do better.")
}
