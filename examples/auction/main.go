// Auction: a five-party sealed-bid auction computing the winning price
// with ΠOpt-nSFE, with a corruption sweep showing the Lemma 11 utility
// profile (t·γ10 + (n−t)·γ11)/n and a comparison against the honest-
// majority Π_GMW^{1/2}, whose fairness collapses at t = ⌈n/2⌉.
//
//	go run ./examples/auction
package main

import (
	"fmt"
	"log"
	"math/rand"

	fairness "repro"
)

func main() {
	const n = 5
	fn, err := fairness.MaxFn(n)
	if err != nil {
		log.Fatal(err)
	}
	proto := fairness.NewOptimalMultiParty(fn)

	// One honest auction.
	bids := []fairness.Value{uint64(310), uint64(455), uint64(290), uint64(505), uint64(470)}
	trace, err := fairness.Run(proto, bids, fairness.Passive{}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== sealed-bid auction with ΠOpt-nSFE ==")
	fmt.Printf("bids: %v\n", bids)
	fmt.Printf("winning price: %v (event %v)\n\n", trace.ExpectedOutput, fairness.Classify(trace).Event)

	// Corruption sweep: how much can a bidding ring of size t gain?
	gamma := fairness.StandardPayoff()
	sampler := func(r *rand.Rand) []fairness.Value {
		in := make([]fairness.Value, n)
		for i := range in {
			in[i] = uint64(r.Intn(1000))
		}
		return in
	}
	fmt.Println("== bidding-ring sweep (lock-and-abort coalitions) ==")
	fmt.Printf("%-4s %-12s %-12s\n", "t", "measured", "paper (tγ10+(n−t)γ11)/n")
	for t := 1; t < n; t++ {
		ids := make([]fairness.PartyID, t)
		for i := range ids {
			ids[i] = fairness.PartyID(i + 1)
		}
		rep, err := fairness.EstimateUtility(proto, fairness.NewLockAbort(ids...),
			gamma, sampler, 1200, int64(t))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d %-12s %.4f\n", t, rep.Utility.String(),
			fairness.MultiPartyTBound(gamma, n, t))
	}

	// Against the traditionally fair GMW-1/2, a coalition of ⌈n/2⌉ = 3
	// takes everything.
	gmw := fairness.NewGMWHalf(fn)
	rep, err := fairness.EstimateUtility(gmw, fairness.NewLockAbort(1, 2, 3),
		gamma, sampler, 1200, 77)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nΠ_GMW^{1/2} under a 3-of-5 ring: utility %s — full γ10 = %.1f.\n",
		rep.Utility, gamma.G10)
	fmt.Println("ΠOpt-nSFE degrades gracefully where traditional fairness falls off")
	fmt.Println("a cliff (Lemma 17); it is also utility-balanced (Lemma 14).")
}
