// Millionaires: Yao's classic problem on the full substrate stack. The
// comparison circuit is evaluated with the GMW protocol (XOR-shared
// wires, Naor–Pinkas oblivious transfers for AND gates) — the paper's
// unfair SFE phase — and the output is then released through the
// optimally fair two-round reconstruction of ΠOpt-2SFE.
//
//	go run ./examples/millionaires
package main

import (
	"fmt"
	"log"
	"math/rand"

	fairness "repro"
	"repro/internal/circuit"
	"repro/internal/gmw"
	"repro/internal/ot"
)

func main() {
	const bits = 16
	alice, bob := uint64(52_000), uint64(47_500)

	// Phase 1 substrate, explicitly: GMW over the comparison circuit
	// with real Naor–Pinkas OT.
	circ, err := circuit.MillionairesCircuit(bits)
	if err != nil {
		log.Fatal(err)
	}
	eval, err := gmw.NewEvaluator(circ, 2, ot.NaorPinkas{})
	if err != nil {
		log.Fatal(err)
	}
	inputs, err := gmw.InputsFromGlobal(circ,
		append(circuit.UintToBits(alice, bits), circuit.UintToBits(bob, bits)...), 2)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	shares, err := eval.EvaluateShares(rng, inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== GMW evaluation (phase 1, unfair SFE) ==")
	fmt.Printf("circuit: %d wires, %d AND gates (1 OT each per party pair)\n",
		circ.NumWires(), circ.NumAndGates())
	fmt.Printf("post-evaluation: each party holds an XOR share of the result;\n")
	partial := shares.RevealExcept(map[int]bool{1: true})
	fmt.Printf("a party withholding its share leaves the other with noise: %v\n",
		circuit.BitsToUint(partial))
	fmt.Printf("full reveal: alice richer = %v\n\n", shares.Reveal()[0])

	// Phase 2: the same comparison released fairly with ΠOpt-2SFE.
	proto := fairness.NewOptimalTwoParty(fairness.Millionaires())
	trace, err := fairness.Run(proto, []fairness.Value{alice, bob}, fairness.Passive{}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== fair release (ΠOpt-2SFE) ==")
	fmt.Printf("output: alice richer = %v (event %v)\n",
		trace.ExpectedOutput, fairness.Classify(trace).Event)

	// And what an attacker gains against the fair release:
	gamma := fairness.StandardPayoff()
	sampler := func(r *rand.Rand) []fairness.Value {
		return []fairness.Value{uint64(r.Intn(1 << bits)), uint64(r.Intn(1 << bits))}
	}
	rep, err := fairness.EstimateUtility(proto, fairness.NewAgen(), gamma, sampler, 2000, 17)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best-attacker utility: %s (optimum (γ10+γ11)/2 = %.3f)\n",
		rep.Utility, fairness.TwoPartyOptimalBound(gamma))
}
