package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Check is one certification inside a record: Value compared against
// Bound in direction Dir ("<=", ">=", "="), with the statistical Margin
// the comparison was widened by.
type Check struct {
	Name   string  `json:"name"`
	Dir    string  `json:"dir"`
	Bound  float64 `json:"bound"`
	Value  float64 `json:"value"`
	Margin float64 `json:"margin"`
	OK     bool    `json:"ok"`
}

// Record is one checkpoint line: a measured cell ("cell"), an
// aggregate per-t sum ("sum"), or a paired cross-cell delta ("delta",
// PairedSeeds sweeps only). Records are pure functions of (Spec,
// Seed), which is what makes the JSONL stream byte-identical across
// re-runs and resumes. Pair is set only on delta records (the second
// member's cell key), so pre-existing record bytes are unchanged.
type Record struct {
	Kind      string     `json:"kind"`
	Key       string     `json:"key"`
	Family    string     `json:"family"`
	Gamma     [4]float64 `json:"gamma"`
	N         int        `json:"n"`
	T         int        `json:"t,omitempty"`
	Adv       string     `json:"adv,omitempty"`
	Cost      string     `json:"cost,omitempty"`
	P         int        `json:"p,omitempty"`
	Runs      int        `json:"runs,omitempty"`
	Seed      int64      `json:"seed,omitempty"`
	Mean      float64    `json:"mean"`
	HalfWidth float64    `json:"hw"`
	Samples   int64      `json:"samples,omitempty"`
	Events    [4]float64 `json:"events,omitempty"`
	Checks    []Check    `json:"checks"`
	Note      string     `json:"note,omitempty"`
	Pair      string     `json:"pair,omitempty"`
	OK        bool       `json:"ok"`
}

// header is the checkpoint's first line. A resume refuses a checkpoint
// whose header does not match the planned sweep exactly — mixing grids
// would silently corrupt the record sequence.
type header struct {
	Kind    string `json:"kind"` // always "sweep-header"
	Version int    `json:"version"`
	Seed    int64  `json:"seed"`
	Records int    `json:"records"`
	// Grid fingerprints the planned record sequence: the hash of every
	// planned key in order.
	Grid string `json:"grid"`
}

const checkpointVersion = 1

func (s *Sweep) header() header {
	keys := ""
	for _, c := range s.Cells {
		keys += c.Key + "\n"
	}
	for _, p := range s.Sums {
		keys += p.Key + "\n"
	}
	for _, d := range s.Deltas {
		keys += d.Key + "\n"
	}
	return header{
		Kind:    "sweep-header",
		Version: checkpointVersion,
		Seed:    s.Spec.Seed,
		Records: s.Records(),
		Grid:    fmt.Sprintf("%016x", KeyHash(keys, s.Spec.Seed)),
	}
}

// marshalLine renders one checkpoint line. json.Marshal over the fixed
// struct shapes is deterministic (field order is declaration order), so
// equal records give equal bytes.
func marshalLine(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Checkpoint streams records to a JSONL file, flushing after every line
// so an interrupted sweep loses at most one torn trailing line.
type Checkpoint struct {
	f  *os.File
	w  *bufio.Writer
	n  int // records written (excluding the header)
	hd header
}

// CreateCheckpoint starts a fresh checkpoint at path, writing the
// sweep's header line.
func CreateCheckpoint(path string, s *Sweep) (*Checkpoint, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: create checkpoint: %w", err)
	}
	cp := &Checkpoint{f: f, w: bufio.NewWriter(f), hd: s.header()}
	line, err := marshalLine(cp.hd)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := cp.w.Write(line); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: write checkpoint header: %w", err)
	}
	if err := cp.flush(); err != nil {
		f.Close()
		return nil, err
	}
	return cp, nil
}

func (cp *Checkpoint) flush() error {
	if err := cp.w.Flush(); err != nil {
		return fmt.Errorf("sweep: flush checkpoint: %w", err)
	}
	if err := cp.f.Sync(); err != nil {
		return fmt.Errorf("sweep: sync checkpoint: %w", err)
	}
	return nil
}

// Append writes one record and flushes it to disk.
func (cp *Checkpoint) Append(rec Record) error {
	line, err := marshalLine(rec)
	if err != nil {
		return fmt.Errorf("sweep: marshal record %s: %w", rec.Key, err)
	}
	if _, err := cp.w.Write(line); err != nil {
		return fmt.Errorf("sweep: write record %s: %w", rec.Key, err)
	}
	cp.n++
	return cp.flush()
}

// Done reports the number of records written through this handle.
func (cp *Checkpoint) Done() int { return cp.n }

// Close flushes and closes the underlying file.
func (cp *Checkpoint) Close() error {
	if err := cp.flush(); err != nil {
		cp.f.Close()
		return err
	}
	return cp.f.Close()
}

// LoadCheckpoint reads a (possibly interrupted) checkpoint and returns
// the completed records in file order. It validates the header against
// the planned sweep, validates every record's key against the plan's
// record sequence, and tolerates exactly one torn trailing line (an
// interrupt mid-write), which it reports via truncateTo ≥ 0 — the byte
// offset the file must be truncated to before appending. A checkpoint
// from a different grid, or with records out of sequence, is an error.
func LoadCheckpoint(path string, s *Sweep) (recs []Record, truncateTo int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, -1, fmt.Errorf("sweep: read checkpoint: %w", err)
	}
	wantHeader, err := marshalLine(s.header())
	if err != nil {
		return nil, -1, err
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 || !bytes.Equal(data[:nl+1], wantHeader) {
		return nil, -1, fmt.Errorf("sweep: checkpoint %s does not match this sweep (header mismatch)", path)
	}

	wantKeys := make([]string, 0, s.Records())
	for _, c := range s.Cells {
		wantKeys = append(wantKeys, c.Key)
	}
	for _, p := range s.Sums {
		wantKeys = append(wantKeys, p.Key)
	}
	for _, d := range s.Deltas {
		wantKeys = append(wantKeys, d.Key)
	}

	offset := int64(nl + 1)
	rest := data[nl+1:]
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			// Torn trailing line: the interrupt hit mid-write. Resume by
			// truncating it away and re-running its record.
			return recs, offset, nil
		}
		line := rest[:nl+1]
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// A complete but unparsable line is corruption, not a tear.
			return nil, -1, fmt.Errorf("sweep: checkpoint record %d: %w", len(recs), err)
		}
		if len(recs) >= len(wantKeys) {
			return nil, -1, fmt.Errorf("sweep: checkpoint has %d extra record(s)", len(recs)+1-len(wantKeys))
		}
		if rec.Key != wantKeys[len(recs)] {
			return nil, -1, fmt.Errorf("sweep: checkpoint record %d has key %s, want %s (grid drift)",
				len(recs), rec.Key, wantKeys[len(recs)])
		}
		recs = append(recs, rec)
		offset += int64(nl + 1)
		rest = rest[nl+1:]
	}
	return recs, offset, nil
}

// ResumeCheckpoint reopens path for appending after LoadCheckpoint,
// truncating any torn trailing line first.
func ResumeCheckpoint(path string, s *Sweep, done int, truncateTo int64) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("sweep: reopen checkpoint: %w", err)
	}
	if err := f.Truncate(truncateTo); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: truncate torn checkpoint tail: %w", err)
	}
	if _, err := f.Seek(truncateTo, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: seek checkpoint: %w", err)
	}
	return &Checkpoint{f: f, w: bufio.NewWriter(f), n: done, hd: s.header()}, nil
}
