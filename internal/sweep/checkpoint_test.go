package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeCompleted runs a full sweep into path and returns the plan and
// the file bytes.
func writeCompleted(t *testing.T, spec Spec, path string) (*Sweep, []byte) {
	t.Helper()
	if _, err := Run(spec, path, nil); err != nil {
		t.Fatal(err)
	}
	sw, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return sw, data
}

func TestLoadCheckpointHeaderMismatch(t *testing.T) {
	spec := rangeSpec()
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	writeCompleted(t, spec, path)

	// A different seed replans a different grid fingerprint; its header
	// must be refused before any record is trusted.
	other := spec
	other.Seed++
	sw, err := Plan(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(path, sw); err == nil ||
		!strings.Contains(err.Error(), "header mismatch") {
		t.Errorf("foreign-seed load: err = %v, want header mismatch", err)
	}
}

// TestLoadCheckpointTornTailThenGarbage covers the corruption case next
// to the benign tear: a line cut mid-write is recoverable only when it
// is the LAST line. If writes continued past it — here a valid-looking
// record line lands after the tear — the tear becomes a complete but
// unparsable line, and the load must fail rather than resume over
// corruption.
func TestLoadCheckpointTornTailThenGarbage(t *testing.T) {
	spec := rangeSpec()
	path := filepath.Join(t.TempDir(), "cp.jsonl")
	sw, data := writeCompleted(t, spec, path)

	lines := bytes.SplitAfter(data, []byte("\n"))
	lines = lines[:len(lines)-1] // drop empty split tail
	if len(lines) < 4 {
		t.Fatalf("need at least 4 lines, have %d", len(lines))
	}

	// Benign tear first: everything through record 2, then half of
	// record 3 with no newline. Loads cleanly, truncateTo points at the
	// end of the intact prefix.
	tornAt := len(lines) - 1
	intact := bytes.Join(lines[:tornAt], nil)
	torn := append(append([]byte{}, intact...), lines[tornAt][:len(lines[tornAt])/2]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, truncateTo, err := LoadCheckpoint(path, sw)
	if err != nil {
		t.Fatalf("benign torn tail: %v", err)
	}
	if len(recs) != tornAt-1 { // minus the header line
		t.Errorf("benign torn tail: %d records, want %d", len(recs), tornAt-1)
	}
	if truncateTo != int64(len(intact)) {
		t.Errorf("benign torn tail: truncateTo = %d, want %d", truncateTo, len(intact))
	}

	// Now the corruption variant: the same tear, but a complete valid
	// record line follows it. The torn fragment plus the next line is a
	// complete unparsable line — corruption, not a tear.
	garbled := append(append([]byte{}, torn...), []byte("\n")...)
	garbled = append(garbled, lines[tornAt]...)
	if err := os.WriteFile(path, garbled, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(path, sw); err == nil ||
		!strings.Contains(err.Error(), "checkpoint record") {
		t.Errorf("torn tail + garbage: err = %v, want corruption error", err)
	}
}

// TestRunEmptyCheckpointFile pins the empty-file resume path: an
// existing zero-byte checkpoint has no header to validate, so resuming
// over it must fail loudly instead of silently restarting — the file's
// provenance is unknown.
func TestRunEmptyCheckpointFile(t *testing.T) {
	spec := rangeSpec()
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	sw, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(path, sw); err == nil ||
		!strings.Contains(err.Error(), "header mismatch") {
		t.Errorf("empty-file load: err = %v, want header mismatch", err)
	}
	if _, err := Run(spec, path, nil); err == nil ||
		!strings.Contains(err.Error(), "header mismatch") {
		t.Errorf("empty-file resume via Run: err = %v, want header mismatch", err)
	}
}
