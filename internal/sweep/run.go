package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"

	"repro/internal/core"
)

// Summary is the outcome of a sweep run.
type Summary struct {
	// Records holds every record in checkpoint order (cells, then sums).
	Records []Record
	// Breaches lists the records with at least one failed certification.
	Breaches []Record
	// Resumed is how many records were restored from the checkpoint
	// instead of re-measured.
	Resumed int
	// TotalChecks is the number of certifications performed.
	TotalChecks int
	// Skipped surfaces grid points that could not be instantiated.
	Skipped []string
}

// OK reports whether every certification in the sweep passed.
func (s *Summary) OK() bool { return len(s.Breaches) == 0 }

// ErrBreach is returned (wrapped) by Run when any certification fails.
var ErrBreach = errors.New("sweep: bound breach")

// Progress, when non-nil, receives every record as it is produced or
// restored (done counts records so far, total the full sweep).
type Progress func(done, total int, rec Record, resumed bool)

// Run plans and executes the sweep. With a non-empty checkpoint path the
// record stream is checkpointed to JSONL; if the file already exists the
// sweep resumes after its last complete record, re-measuring nothing,
// so an interrupted-then-resumed run writes byte-identical records to
// an uninterrupted one. Run returns the summary together with an
// ErrBreach-wrapping error when any certification failed — the summary
// stays valid in that case.
func Run(spec Spec, path string, progress Progress) (*Summary, error) {
	return RunContext(context.Background(), spec, path, progress)
}

// RunContext is Run with cancellation: ctx is checked between cells, so
// a canceled sweep stops after the record in flight instead of running
// the grid to completion. The checkpoint stays valid — a later run
// resumes after the last completed record. Cancellation never truncates
// or reorders records, so the byte-identity contract is unaffected.
func RunContext(ctx context.Context, spec Spec, path string, progress Progress) (*Summary, error) {
	sw, err := Plan(spec)
	if err != nil {
		return nil, err
	}
	sum := &Summary{TotalChecks: sw.TotalChecks(), Skipped: sw.Skipped}
	total := sw.Records()

	var cp *Checkpoint
	var done []Record
	if path != "" {
		if _, statErr := os.Stat(path); statErr == nil {
			recs, truncateTo, loadErr := LoadCheckpoint(path, sw)
			if loadErr != nil {
				return nil, loadErr
			}
			cp, err = ResumeCheckpoint(path, sw, len(recs), truncateTo)
			if err != nil {
				return nil, err
			}
			done = recs
			sum.Resumed = len(recs)
		} else {
			cp, err = CreateCheckpoint(path, sw)
			if err != nil {
				return nil, err
			}
		}
		defer cp.Close()
	}

	emit := func(rec Record, resumed bool) error {
		sum.Records = append(sum.Records, rec)
		if !rec.OK {
			sum.Breaches = append(sum.Breaches, rec)
		}
		if !resumed && cp != nil {
			if err := cp.Append(rec); err != nil {
				return err
			}
		}
		if progress != nil {
			progress(len(sum.Records), total, rec, resumed)
		}
		return nil
	}

	// Paired delta pair members need their per-run event logs; capture
	// them while the cell is measured anyway, or lazily re-measure (same
	// deterministic coins, same log) a cell that was restored from the
	// checkpoint when a still-pending delta needs it.
	needLog := map[int]bool{}
	for _, d := range sw.Deltas {
		needLog[d.A], needLog[d.B] = true, true
	}
	logs := map[int][]core.Event{}
	logFor := func(i int) ([]core.Event, error) {
		if log, ok := logs[i]; ok {
			return log, nil
		}
		log := make([]core.Event, sw.Cells[i].Runs)
		if _, err := sw.runCell(sw.Cells[i], log); err != nil {
			return nil, err
		}
		logs[i] = log
		return log, nil
	}

	// Cells in canonical order, restoring the checkpointed prefix.
	cellRecs := make([]Record, len(sw.Cells))
	for i, c := range sw.Cells {
		var rec Record
		resumed := i < len(done)
		if resumed {
			rec = done[i]
		} else {
			if err := ctx.Err(); err != nil {
				return sum, fmt.Errorf("sweep: canceled after %d of %d records: %w",
					len(sum.Records), total, err)
			}
			var log []core.Event
			if needLog[i] {
				log = make([]core.Event, c.Runs)
			}
			rec, err = sw.runCell(c, log)
			if err != nil {
				return sum, err
			}
			if log != nil {
				logs[i] = log
			}
		}
		cellRecs[i] = rec
		if err := emit(rec, resumed); err != nil {
			return sum, err
		}
	}
	// Aggregate sums, reduced from the cell records just produced (or
	// restored — either way the same deterministic values).
	for i, p := range sw.Sums {
		idx := len(sw.Cells) + i
		var rec Record
		resumed := idx < len(done)
		if resumed {
			rec = done[idx]
		} else {
			rec = sw.runSum(p, cellRecs)
		}
		if err := emit(rec, resumed); err != nil {
			return sum, err
		}
	}
	// Paired cross-cell deltas (PairedSeeds only), reduced from the
	// member cells' per-run event logs.
	for i, d := range sw.Deltas {
		idx := len(sw.Cells) + len(sw.Sums) + i
		var rec Record
		resumed := idx < len(done)
		if resumed {
			rec = done[idx]
		} else {
			if err := ctx.Err(); err != nil {
				return sum, fmt.Errorf("sweep: canceled after %d of %d records: %w",
					len(sum.Records), total, err)
			}
			logA, err := logFor(d.A)
			if err != nil {
				return sum, err
			}
			logB, err := logFor(d.B)
			if err != nil {
				return sum, err
			}
			rec, err = sw.runDelta(d, logA, logB)
			if err != nil {
				return sum, err
			}
		}
		if err := emit(rec, resumed); err != nil {
			return sum, err
		}
	}

	if !sum.OK() {
		return sum, fmt.Errorf("%w: %d of %d record(s) failed certification",
			ErrBreach, len(sum.Breaches), len(sum.Records))
	}
	return sum, nil
}
