package sweep

// Range iteration and distributed merge: the hooks the fabric
// (internal/fabric) shards a sweep over. A coordinator splits the
// plan's canonical cell order into contiguous ranges, workers execute
// cells by index with RunCellIndex (every record is a pure function of
// (Spec, cell index), so any worker computes any cell bit-identically),
// and Merge reassembles the per-cell records — wherever they were
// computed — into the same certified checkpoint a single-machine Run
// writes, byte for byte.

import (
	"fmt"
)

// CellRange is a half-open [Start, End) slice of the plan's canonical
// cell order.
type CellRange struct {
	Start, End int
}

// Len returns the number of cells in the range.
func (r CellRange) Len() int { return r.End - r.Start }

// SplitRanges splits [0, total) into at most parts contiguous,
// near-equal ranges (the first total%parts ranges are one longer).
// Deterministic: same inputs, same split. Empty ranges are never
// returned; fewer than parts ranges come back when total < parts.
func SplitRanges(total, parts int) []CellRange {
	if total <= 0 || parts <= 0 {
		return nil
	}
	if parts > total {
		parts = total
	}
	out := make([]CellRange, 0, parts)
	base, extra := total/parts, total%parts
	start := 0
	for i := 0; i < parts; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, CellRange{Start: start, End: start + size})
		start += size
	}
	return out
}

// RunCellIndex measures and certifies the i-th cell of the plan's
// canonical order. It is the distributed counterpart of the Run loop
// body: records depend only on (Spec, i), never on which machine or in
// which order cells execute.
func (s *Sweep) RunCellIndex(i int) (Record, error) {
	if i < 0 || i >= len(s.Cells) {
		return Record{}, fmt.Errorf("sweep: cell index %d out of range [0,%d)", i, len(s.Cells))
	}
	return s.runCell(s.Cells[i], nil)
}

// GridFingerprint returns the plan's grid hash — the same fingerprint
// the checkpoint header carries. Two plans with equal fingerprints
// enumerate identical record sequences, which is what lets a fabric
// worker verify it planned the same grid as its coordinator before
// accepting leases.
func (s *Sweep) GridFingerprint() string { return s.header().Grid }

// Merge assembles a complete set of per-cell records (cellRecs[i] is
// the record of Cells[i], produced by RunCellIndex anywhere) into the
// certified report Run would have produced: it validates every record
// key against the plan, computes the aggregate sum records, optionally
// writes the full header+records checkpoint to path, and returns the
// summary. The written file is byte-identical to an uninterrupted
// single-machine Run over the same spec — Record marshaling is
// deterministic and JSON-round-trip stable, so records that crossed a
// wire merge to the same bytes. Like Run, Merge returns the summary
// together with an ErrBreach-wrapping error when any certification
// failed.
func (s *Sweep) Merge(path string, cellRecs []Record, progress Progress) (*Summary, error) {
	if len(s.Deltas) > 0 {
		// Delta records reduce per-run event logs from two cells at once;
		// a range worker only ever holds its own cells' logs, so paired
		// sweeps with planned deltas must run on one machine.
		return nil, fmt.Errorf("sweep: merge: paired-seed sweeps with %d planned delta record(s) cannot be merged from ranges; run them single-machine", len(s.Deltas))
	}
	if len(cellRecs) != len(s.Cells) {
		return nil, fmt.Errorf("sweep: merge: %d cell records for %d planned cells", len(cellRecs), len(s.Cells))
	}
	for i, rec := range cellRecs {
		if rec.Key != s.Cells[i].Key {
			return nil, fmt.Errorf("sweep: merge: cell %d has key %q, want %q (grid drift)",
				i, rec.Key, s.Cells[i].Key)
		}
	}

	sum := &Summary{TotalChecks: s.TotalChecks(), Skipped: s.Skipped}
	total := s.Records()

	var cp *Checkpoint
	if path != "" {
		var err error
		cp, err = CreateCheckpoint(path, s)
		if err != nil {
			return nil, err
		}
		defer cp.Close()
	}

	emit := func(rec Record) error {
		sum.Records = append(sum.Records, rec)
		if !rec.OK {
			sum.Breaches = append(sum.Breaches, rec)
		}
		if cp != nil {
			if err := cp.Append(rec); err != nil {
				return err
			}
		}
		if progress != nil {
			progress(len(sum.Records), total, rec, false)
		}
		return nil
	}

	for _, rec := range cellRecs {
		if err := emit(rec); err != nil {
			return sum, err
		}
	}
	for _, p := range s.Sums {
		if err := emit(s.runSum(p, cellRecs)); err != nil {
			return sum, err
		}
	}

	if !sum.OK() {
		return sum, fmt.Errorf("%w: %d of %d record(s) failed certification",
			ErrBreach, len(sum.Breaches), len(sum.Records))
	}
	return sum, nil
}
