package sweep

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/protocols/contract"
	"repro/internal/protocols/gordonkatz"
	"repro/internal/protocols/multiparty"
	"repro/internal/protocols/twoparty"
	"repro/internal/sim"
)

// A family names one protocol construction the grid can instantiate at
// varying (γ, n, t, p). The applicable closed-form bound — the theorem
// the cell certifies — is part of the family definition.
//
// Families and their bounds:
//
//	2sfe     ΠOpt-2SFE on the swap function; Theorem 3: ≤ (γ10+γ11)/2
//	oneround the Lemma 10 single-round strawman; trivial ceiling γ10
//	pi1      naive contract signing; trivial ceiling γ10
//	pi2      coin-toss-ordered contract signing; Introduction: ≤ (γ10+γ11)/2
//	optn     ΠOpt-nSFE on concatenation; Lemma 11: ≤ (t·γ10+(n−t)·γ11)/n
//	gmwhalf  Π_GMW^{1/2} on concatenation; Lemma 17 step profile:
//	         ≤ γ10 for t ≥ threshold, ≤ γ11 below
//	gk       Gordon–Katz poly-domain on AND; Theorems 23/24:
//	         ≤ ((p−1)·γ11+γ10)/p, cross-checked against GKFirstHitExact
var familyOrder = []string{"2sfe", "oneround", "pi1", "pi2", "optn", "gmwhalf", "gk"}

// concatBits is the per-party input width of the concatenation function
// (matching internal/experiments).
const concatBits = 8

// knownFamily reports whether name is a sweepable family.
func knownFamily(name string) bool {
	for _, f := range familyOrder {
		if f == name {
			return true
		}
	}
	return false
}

// twoPartyOnly reports whether the family exists only at n = 2.
func twoPartyOnly(name string) bool {
	switch name {
	case "2sfe", "oneround", "pi1", "pi2", "gk":
		return true
	}
	return false
}

// hasSetup reports whether the family runs a hybrid setup phase a
// setup-abort strategy can target.
func hasSetup(name string) bool {
	switch name {
	case "2sfe", "optn", "gmwhalf", "gk":
		return true
	}
	return false
}

// buildProtocol instantiates the family at the cell's parameters.
func buildProtocol(family string, n, p int) (sim.Protocol, error) {
	switch family {
	case "2sfe":
		return twoparty.New(twoparty.Swap()), nil
	case "oneround":
		return twoparty.NewOneRound(twoparty.Swap()), nil
	case "pi1":
		return contract.Pi1{}, nil
	case "pi2":
		return contract.Pi2{}, nil
	case "optn":
		fn, err := multiparty.Concat(n, concatBits)
		if err != nil {
			return nil, err
		}
		return multiparty.NewOptN(fn), nil
	case "gmwhalf":
		fn, err := multiparty.Concat(n, concatBits)
		if err != nil {
			return nil, err
		}
		return multiparty.NewGMWHalf(fn), nil
	case "gk":
		return gordonkatz.NewPolyDomain(gordonkatz.AND(), p)
	}
	return nil, fmt.Errorf("sweep: unknown family %q", family)
}

// buildSampler returns the family's environment: the input distribution
// of the corresponding proof (worst-case for the lower-bound families,
// uniform otherwise).
func buildSampler(family string, n int) core.InputSampler {
	switch family {
	case "2sfe", "oneround":
		return func(r *rand.Rand) []sim.Value {
			return []sim.Value{uint64(r.Intn(1 << 20)), uint64(r.Intn(1 << 20))}
		}
	case "pi1", "pi2":
		return func(r *rand.Rand) []sim.Value {
			return []sim.Value{uint64(r.Int63()), uint64(r.Int63())}
		}
	case "gk":
		// The Gordon–Katz worst-case environment for AND: x = (1, 1).
		return core.FixedInputs(uint64(1), uint64(1))
	default: // optn, gmwhalf
		return func(r *rand.Rand) []sim.Value {
			in := make([]sim.Value, n)
			for i := range in {
				in[i] = uint64(r.Intn(1 << concatBits))
			}
			return in
		}
	}
}

// buildAdversary instantiates the cell's attacker. The corrupted set is
// the canonical prefix {1..t} (adversary.TSubsets' first probe).
func buildAdversary(c Cell) (sim.Adversary, error) {
	set := adversary.TSubsets(c.N, c.T)[0]
	switch {
	case c.Adv == "lock":
		return adversary.NewLockAbort(set...), nil
	case c.Adv == "setup":
		return adversary.NewSetupAbort(set...), nil
	case c.Adv == "gmwsetup":
		return multiparty.NewGMWSetupAttacker(set...), nil
	case c.Adv == "firsthit":
		return gordonkatz.NewFirstHit(1), nil
	case len(c.Adv) > 6 && c.Adv[:6] == "abort@":
		var r int
		if _, err := fmt.Sscanf(c.Adv, "abort@%d", &r); err != nil {
			return nil, fmt.Errorf("sweep: bad adversary %q: %w", c.Adv, err)
		}
		return adversary.NewAbortAt(r, set...), nil
	}
	return nil, fmt.Errorf("sweep: unknown adversary %q", c.Adv)
}

// buildSpace returns the sup-search strategy space for a "sup" cell.
func buildSpace(c Cell, proto sim.Protocol) []core.NamedAdversary {
	if c.N == 2 {
		return adversary.TwoPartySpace(proto.NumRounds())
	}
	space := adversary.MultiPartyTSpace(c.N, c.T, proto.NumRounds())
	if c.Family == "gmwhalf" {
		for si, set := range adversary.TSubsets(c.N, c.T) {
			space = append(space, core.NamedAdversary{
				Name: fmt.Sprintf("gmw-setup-t%d-s%d", c.T, si),
				Adv:  multiparty.NewGMWSetupAttacker(set...),
			})
		}
	}
	return space
}

// cellBound returns the applicable closed-form utility ceiling for the
// cell — the quantity every attacker in the cell is certified against.
func cellBound(c Cell, proto sim.Protocol) (name string, bound float64) {
	switch c.Family {
	case "2sfe", "pi2":
		return "two-party-optimal", core.TwoPartyOptimalBound(c.Gamma)
	case "oneround", "pi1":
		// No fairness guarantee: the trivial Γfair ceiling max γ_ij = γ10.
		return "trivial-gamma10", c.Gamma.G10
	case "optn":
		return "multiparty-t", core.MultiPartyTBound(c.Gamma, c.N, c.T)
	case "gmwhalf":
		gmw := proto.(multiparty.GMWHalf)
		if c.T >= gmw.Threshold() {
			return "gmw-step-gamma10", c.Gamma.G10
		}
		return "gmw-step-gamma11", c.Gamma.G11
	case "gk":
		return "gordon-katz", core.GordonKatzBound(c.Gamma, c.P)
	}
	return "trivial-gamma10", c.Gamma.G10
}
