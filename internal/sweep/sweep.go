// Package sweep is the bound-certifying parameter-sweep engine: it
// turns the paper's closed-form theorems (Theorems 3–6, Lemmas 11–18,
// Theorems 23/24) into a standing regression oracle for the Monte-Carlo
// estimator.
//
// A sweep enumerates a deterministic grid over (protocol family, payoff
// vector γ, party count n, corruption threshold t, attacker — including
// an abort-round sweep — and cost function), measures every cell with
// the options-based core.EstimateUtility / core.SupUtility on the
// batched estimation engine, and certifies the estimate against the
// applicable closed-form bound using the estimate's confidence interval
// widened to a sweep-wide union-bound margin, plus flat slack. Any
// breach fails the sweep.
//
// Determinism contract (the PR-4 contract extended to the grid): every
// cell is keyed by a hash of (cell parameters, sweep seed), the cell's
// estimation seed is derived from that hash, and cells are executed and
// checkpointed in canonical grid order — so re-running, or interrupting
// and resuming from the JSONL checkpoint, yields byte-identical cell
// records. Parallelism lives inside each cell (the estimator's worker
// pool), never across cells, which keeps the checkpoint stream ordered
// without a reorder buffer.
//
// Statistical contract: with adaptive sampling (Spec.Runs == 0) each
// cell's run count is sized by stats.SamplesFor so its certification
// margin reaches Spec.TargetHW at confidence 1 − δ′, where
// δ′ = Spec.Delta / (total checks) — a union bound making Spec.Delta the
// false-breach budget for the whole sweep, not per cell.
package sweep

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/search"
	"repro/internal/stats"
)

// Spec describes one sweep grid. The zero value is not runnable; use
// DefaultSpec or fill in at least Families, Gammas and Ns.
type Spec struct {
	// Families lists the protocol families to sweep (see families.go):
	// "2sfe", "oneround", "pi1", "pi2", "optn", "gmwhalf", "gk".
	Families []string
	// Gammas are the payoff vectors γ; every vector must be in Γ+fair
	// (the regime the certified bounds are proved in).
	Gammas []core.Payoff
	// Ns are the party counts for the multi-party families. Two-party
	// families instantiate only at n = 2 (other n are counted as skipped).
	Ns []int
	// Ts restricts the corruption thresholds; nil means every t in
	// 1..n−1. Aggregate per-t sum records are emitted only for (γ, n)
	// combinations whose full threshold range is present.
	Ts []int
	// Ps are the Gordon–Katz 1/p parameters for the "gk" family.
	Ps []int
	// Costs lists corruption-cost functions applied per cell: "zero"
	// (free corruption — certifies the raw bound) and "optimal" (the
	// Theorem 6 closed-form cost c(t) = bound(t) − IdealBound(γ), which
	// additionally certifies ideal ~γ^C-fairness: u − c(t) ≤ IdealBound).
	Costs []string
	// AbortSweep adds an abort-at-round attacker for every round
	// r = 1..NumRounds+1 — the grid's round dimension.
	AbortSweep bool
	// SupRuns, when > 0, adds one sup-search cell per (family, γ, n, t)
	// running core.SupUtilitySpace over the standard strategy space with
	// this many runs per strategy.
	SupRuns int
	// SupSearch computes the sup cells with the racing best-response
	// search engine (internal/search) instead of exhaustive enumeration:
	// the certified winner is estimated at SupRuns resolution, dominated
	// strategies are eliminated early. Cells get Adv "sup-search" — a
	// distinct key — so records never collide with the frozen "sup"
	// matrix.
	SupSearch bool

	// Runs is the flat per-cell run count; 0 selects adaptive sampling.
	Runs int
	// TargetHW is the adaptive-sampling target certification margin.
	TargetHW float64
	// Delta is the sweep-wide false-breach probability budget.
	Delta float64
	// MinRuns/MaxRuns clamp adaptive run counts.
	MinRuns, MaxRuns int
	// Slack is flat extra tolerance added to every certification.
	Slack float64
	// Seed drives all randomness; same (Spec, Seed) ⇒ same bytes out.
	Seed int64
	// Parallelism is the per-cell estimator worker count (0 = one per
	// CPU). It never changes any record — see core.EstimateUtility.
	Parallelism int
	// BatchSize is the estimator batch size (0 = default).
	BatchSize int
	// NoCompiledPlans disables the estimator's compiled execution plans
	// (core.WithCompiledPlans), pinning every cell to the interpreter.
	// Like Parallelism it never changes any record — compiled runs are
	// bit-identical — so it exists only for engine debugging.
	NoCompiledPlans bool

	// PairedSeeds switches every cell to common-random-numbers run
	// seeding (core.WithPairedSeeds): run i of every cell draws its coins
	// from a sweep-wide master stream keyed by the run index alone, so
	// neighbouring cells' runs pair and the sweep emits extra "delta"
	// records certifying cross-cell differences (currently the
	// Gordon–Katz consecutive-p deltas at the Section 5 payoff) through
	// stats.PairedEstimate. Unlike the scheduling knobs this changes the
	// coin sequences, so paired records are NOT byte-comparable to the
	// frozen unpaired matrices; with the flag off the output is
	// byte-identical to before the flag existed.
	PairedSeeds bool
	// ControlVariates enables exact-residual estimation
	// (core.WithControlVariate) on cells backed by an exact law —
	// currently the Gordon–Katz first-hit cells, whose E10 probability is
	// core.GKFirstHitExact. The cell then samples only the payoff's
	// residual against the law, reaching the same certified margin at a
	// fraction of the variance (at the Section 5 payoff the residual is
	// identically zero and the estimate is exact). Means change only
	// within the estimator's confidence interval, but the records' bytes
	// differ — off by default, byte-identical when off.
	ControlVariates bool
}

// DefaultSpec is the full standing grid: every family, three Γ+fair
// payoff points, n up to 5, both cost functions, abort-round sweep on.
func DefaultSpec() Spec {
	return Spec{
		Families:   []string{"2sfe", "oneround", "pi1", "pi2", "optn", "gmwhalf", "gk"},
		Gammas:     StandardGammas(),
		Ns:         []int{2, 3, 4, 5},
		Ps:         []int{2, 4, 8},
		Costs:      []string{"zero", "optimal"},
		AbortSweep: true,
		TargetHW:   0.05,
		Delta:      0.01,
		MinRuns:    200,
		MaxRuns:    20000,
		Seed:       20150302,
	}
}

// StandardGammas returns the three Γ+fair payoff points the standing
// grid evaluates: the EXPERIMENTS.md vector (0,0,1,½), the Section 5
// Gordon–Katz vector (0,0,1,0), and an interior point with γ00 > 0.
func StandardGammas() []core.Payoff {
	return []core.Payoff{
		core.StandardPayoff(),
		core.GordonKatzPayoff(),
		{G00: 0.25, G01: 0, G10: 1, G11: 0.75},
	}
}

// Cell is one grid point: a (protocol, γ, n, t, attacker, cost[, p])
// tuple plus the derived run count and estimation seed.
type Cell struct {
	Index  int
	Family string
	Gamma  core.Payoff
	N, T   int
	// Adv names the attacker: "lock", "setup", "gmwsetup", "abort@r",
	// "firsthit", "sup" (an exhaustive sup-search over the standard
	// space), or "sup-search" (the same sup via the racing engine).
	Adv  string
	Cost string
	// P is the Gordon–Katz 1/p parameter (gk family only).
	P int
	// Runs is the cell's Monte-Carlo run count (adaptive or flat).
	Runs int
	// Seed is the cell's estimation seed, derived from the key hash.
	Seed int64
	// Key is the deterministic hash of (cell params, sweep seed).
	Key string
}

// paramString is the canonical parameter encoding hashed into Key.
func (c Cell) paramString() string {
	return fmt.Sprintf("%s|g=%s|n=%d|t=%d|adv=%s|cost=%s|p=%d",
		c.Family, gammaString(c.Gamma), c.N, c.T, c.Adv, c.Cost, c.P)
}

func gammaString(g core.Payoff) string {
	return fmt.Sprintf("%g,%g,%g,%g", g.G00, g.G01, g.G10, g.G11)
}

// KeyHash hashes a canonical parameter string together with a seed
// (FNV-1a 64). It is the sweep's cell-key function, exported so the
// service layer can key its result cache with the identical scheme:
// same canonical params + same seed ⇒ same key ⇒ (by the estimator's
// determinism contract) same result.
func KeyHash(params string, seed int64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|seed=%d", params, seed)
	return h.Sum64()
}

// sumPlan is one planned aggregate record: the per-t utility sum of one
// (family, γ, n) at the first cost point, certified against the
// balanced-sum bound (optn, Lemma 14) or the Lemma 17 lower bound
// (gmwhalf, even n).
type sumPlan struct {
	Family  string
	Gamma   core.Payoff
	N       int
	Cost    string
	cellIdx []int // the contributing per-t cells, t = 1..n−1
	Key     string
}

func (p sumPlan) paramString() string {
	return fmt.Sprintf("sum|%s|g=%s|n=%d|cost=%s",
		p.Family, gammaString(p.Gamma), p.N, p.Cost)
}

// deltaPlan is one planned cross-cell delta record (PairedSeeds only):
// the paired per-run difference of cell A minus cell B, certified with
// stats.PairedEstimate over the cells' shared coin sequences.
type deltaPlan struct {
	A, B int // indices into Sweep.Cells
	Key  string
}

func deltaParamString(a, b Cell) string {
	return fmt.Sprintf("delta|%s||%s", a.paramString(), b.paramString())
}

// Sweep is a planned grid ready to run or resume.
type Sweep struct {
	Spec  Spec
	Cells []Cell
	Sums  []sumPlan
	// Deltas are the planned paired cross-cell records; empty unless
	// Spec.PairedSeeds is set.
	Deltas []deltaPlan
	// Skipped lists (family, n) combinations the grid could not
	// instantiate (e.g. a two-party family at n = 5) — surfaced, not
	// silently dropped.
	Skipped []string
	// deltaPrime is the per-check confidence budget Delta/totalChecks.
	deltaPrime float64
	// totalChecks counts every certification in the sweep (union bound).
	totalChecks int
	// pairedMaster seeds the sweep-wide CRN stream (PairedSeeds only).
	pairedMaster int64
}

// Records returns the number of records a complete run writes (cells +
// aggregate sums + paired deltas, excluding the header).
func (s *Sweep) Records() int { return len(s.Cells) + len(s.Sums) + len(s.Deltas) }

// TotalChecks returns the number of certifications across the sweep.
func (s *Sweep) TotalChecks() int { return s.totalChecks }

// advsFor lists the attacker kinds for one family cell.
func (s Spec) advsFor(family string, rounds int) []string {
	if family == "gk" {
		return []string{"firsthit"}
	}
	advs := []string{"lock"}
	if hasSetup(family) {
		advs = append(advs, "setup")
	}
	if family == "gmwhalf" {
		advs = append(advs, "gmwsetup")
	}
	if s.AbortSweep {
		for r := 1; r <= rounds+1; r++ {
			advs = append(advs, fmt.Sprintf("abort@%d", r))
		}
	}
	if s.SupRuns > 0 {
		if s.SupSearch {
			advs = append(advs, "sup-search")
		} else {
			advs = append(advs, "sup")
		}
	}
	return advs
}

// checksFor counts the certifications a cell performs: the family bound,
// the ideal-cost check for cost="optimal", and the gk extras (Wilson
// Pr[E10] ceiling; exact first-hit cross-check at the Section 5 vector).
func checksFor(c Cell) int {
	n := 1
	if c.Cost == "optimal" {
		n++
	}
	if c.Family == "gk" {
		n++ // Wilson Pr[E10] ≤ 1/p
		if c.Gamma == core.GordonKatzPayoff() {
			n++ // exact GKFirstHitExact cross-check
		}
	}
	return n
}

// span is the payoff range max γ_ij − min γ_ij: utilities are
// [min, max]-bounded, which scales the Hoeffding margins.
func span(g core.Payoff) float64 {
	lo := math.Min(math.Min(g.G00, g.G01), math.Min(g.G10, g.G11))
	hi := math.Max(math.Max(g.G00, g.G01), math.Max(g.G10, g.G11))
	if hi == lo {
		return 1
	}
	return hi - lo
}

func withDefaults(spec Spec) Spec {
	if spec.TargetHW <= 0 {
		spec.TargetHW = 0.05
	}
	if spec.Delta <= 0 {
		spec.Delta = 0.01
	}
	if spec.MinRuns <= 0 {
		spec.MinRuns = 200
	}
	if spec.MaxRuns <= 0 {
		spec.MaxRuns = 20000
	}
	if len(spec.Costs) == 0 {
		spec.Costs = []string{"zero"}
	}
	if len(spec.Ps) == 0 {
		spec.Ps = []int{2, 4}
	}
	return spec
}

// Plan validates the spec and enumerates the grid in canonical order:
// family → γ → (p | n → t) → attacker → cost, then the aggregate sum
// records. The enumeration, the per-cell run counts, and every seed are
// pure functions of (Spec, Seed).
func Plan(spec Spec) (*Sweep, error) {
	spec = withDefaults(spec)
	if len(spec.Families) == 0 {
		return nil, fmt.Errorf("sweep: no families")
	}
	if len(spec.Gammas) == 0 {
		return nil, fmt.Errorf("sweep: no payoff vectors")
	}
	for _, f := range spec.Families {
		if !knownFamily(f) {
			return nil, fmt.Errorf("sweep: unknown family %q (known: %v)", f, familyOrder)
		}
	}
	for _, g := range spec.Gammas {
		if err := g.ValidateFairPlus(); err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
	}
	for _, n := range spec.Ns {
		if n < 2 {
			return nil, fmt.Errorf("sweep: party count n=%d out of range (need n ≥ 2)", n)
		}
	}
	for _, t := range spec.Ts {
		if t < 1 {
			return nil, fmt.Errorf("sweep: corruption threshold t=%d out of range (need t ≥ 1)", t)
		}
	}
	for _, p := range spec.Ps {
		if p < 2 {
			return nil, fmt.Errorf("sweep: Gordon–Katz p=%d out of range (need p ≥ 2)", p)
		}
	}
	for _, c := range spec.Costs {
		if c != "zero" && c != "optimal" {
			return nil, fmt.Errorf("sweep: unknown cost function %q (known: zero, optimal)", c)
		}
	}
	needsN := false
	for _, f := range spec.Families {
		if !twoPartyOnly(f) {
			needsN = true
		}
	}
	if len(spec.Ns) == 0 {
		if needsN {
			return nil, fmt.Errorf("sweep: no party counts")
		}
		spec.Ns = []int{2}
	}

	tSelected := func(t int) bool {
		if len(spec.Ts) == 0 {
			return true
		}
		for _, want := range spec.Ts {
			if want == t {
				return true
			}
		}
		return false
	}

	sw := &Sweep{Spec: spec}
	skipped := map[string]bool{}
	addCell := func(c Cell) {
		c.Index = len(sw.Cells)
		sw.Cells = append(sw.Cells, c)
	}
	for _, fam := range spec.Families {
		for _, g := range spec.Gammas {
			if fam == "gk" {
				for _, p := range spec.Ps {
					if _, err := buildProtocol(fam, 2, p); err != nil {
						return nil, fmt.Errorf("sweep: %s p=%d: %w", fam, p, err)
					}
					for _, cost := range spec.Costs {
						addCell(Cell{Family: fam, Gamma: g, N: 2, T: 1,
							Adv: "firsthit", Cost: cost, P: p})
					}
				}
				continue
			}
			for _, n := range spec.Ns {
				if twoPartyOnly(fam) && n != 2 {
					skipped[fmt.Sprintf("%s at n=%d (two-party family)", fam, n)] = true
					continue
				}
				proto, err := buildProtocol(fam, n, 0)
				if err != nil {
					return nil, fmt.Errorf("sweep: %s n=%d: %w", fam, n, err)
				}
				for t := 1; t < n; t++ {
					if !tSelected(t) {
						continue
					}
					for _, adv := range spec.advsFor(fam, proto.NumRounds()) {
						for _, cost := range spec.Costs {
							addCell(Cell{Family: fam, Gamma: g, N: n, T: t,
								Adv: adv, Cost: cost})
						}
					}
				}
			}
		}
	}
	if len(sw.Cells) == 0 {
		return nil, fmt.Errorf("sweep: empty grid")
	}

	// Aggregate per-t sums: optn (balanced-sum upper bound, Lemma 14) and
	// gmwhalf at even n (the Lemma 17 lower bound, via the setup
	// attacker's step profile). Only complete threshold ranges qualify.
	sumAdv := map[string]string{"optn": "lock", "gmwhalf": "gmwsetup"}
	cellAt := make(map[string]int, len(sw.Cells))
	for i, c := range sw.Cells {
		cellAt[c.paramString()] = i
	}
	for _, fam := range spec.Families {
		adv, ok := sumAdv[fam]
		if !ok {
			continue
		}
		if fam == "gmwhalf" {
			// The closed-form sum bound (Lemma 17) is for even n only.
			adv = sumAdv[fam]
		}
		for _, g := range spec.Gammas {
			for _, n := range spec.Ns {
				if fam == "gmwhalf" && n%2 != 0 {
					continue
				}
				plan := sumPlan{Family: fam, Gamma: g, N: n, Cost: spec.Costs[0]}
				complete := true
				for t := 1; t < n; t++ {
					probe := Cell{Family: fam, Gamma: g, N: n, T: t,
						Adv: adv, Cost: spec.Costs[0]}
					idx, ok := cellAt[probe.paramString()]
					if !ok {
						complete = false
						break
					}
					plan.cellIdx = append(plan.cellIdx, idx)
				}
				if !complete || len(plan.cellIdx) == 0 {
					continue
				}
				plan.Key = fmt.Sprintf("%016x", KeyHash(plan.paramString(), spec.Seed))
				sw.Sums = append(sw.Sums, plan)
			}
		}
	}

	// Paired cross-cell deltas (PairedSeeds only): consecutive-p
	// Gordon–Katz first-hit cells at the Section 5 payoff, first cost
	// point — the pairs whose difference has an exact closed form
	// (GKFirstHitExact) to certify against. Both members share γ, so
	// adaptive sampling gives them identical run counts and their
	// per-run outcomes pair index by index.
	if spec.PairedSeeds {
		var gkIdx []int
		for i, c := range sw.Cells {
			if c.Family == "gk" && c.Adv == "firsthit" &&
				c.Gamma == core.GordonKatzPayoff() && c.Cost == spec.Costs[0] {
				gkIdx = append(gkIdx, i)
			}
		}
		for j := 0; j+1 < len(gkIdx); j++ {
			sw.Deltas = append(sw.Deltas, deltaPlan{A: gkIdx[j], B: gkIdx[j+1]})
		}
		sw.pairedMaster = int64(KeyHash("paired-master", spec.Seed) &^ (1 << 63))
	}

	// Union-bound confidence budget, then adaptive (or flat) run counts
	// and derived per-cell seeds.
	for i := range sw.Cells {
		sw.totalChecks += checksFor(sw.Cells[i])
	}
	sw.totalChecks += len(sw.Sums)
	sw.totalChecks += 2 * len(sw.Deltas) // nonneg + exact per delta
	sw.deltaPrime = spec.Delta / float64(sw.totalChecks)
	for i := range sw.Cells {
		c := &sw.Cells[i]
		if c.Adv == "sup" || c.Adv == "sup-search" {
			c.Runs = spec.SupRuns
		} else if spec.Runs > 0 {
			c.Runs = spec.Runs
		} else {
			eps := spec.TargetHW / span(c.Gamma)
			runs := stats.SamplesFor(eps, sw.deltaPrime)
			if runs < spec.MinRuns {
				runs = spec.MinRuns
			}
			if runs > spec.MaxRuns {
				runs = spec.MaxRuns
			}
			c.Runs = runs
		}
		h := KeyHash(fmt.Sprintf("%s|runs=%d", c.paramString(), c.Runs), spec.Seed)
		c.Key = fmt.Sprintf("%016x", h)
		c.Seed = int64(h &^ (1 << 63))
	}
	for i := range sw.Deltas {
		d := &sw.Deltas[i]
		a, b := sw.Cells[d.A], sw.Cells[d.B]
		if a.Runs != b.Runs {
			return nil, fmt.Errorf("sweep: delta pair (%s, %s) has mismatched run counts %d/%d",
				a.Key, b.Key, a.Runs, b.Runs)
		}
		h := KeyHash(fmt.Sprintf("%s|runs=%d", deltaParamString(a, b), a.Runs), spec.Seed)
		d.Key = fmt.Sprintf("%016x", h)
	}

	for msg := range skipped {
		sw.Skipped = append(sw.Skipped, msg)
	}
	sort.Strings(sw.Skipped)
	return sw, nil
}

// margin returns the certification margin for one cell estimate: the
// estimator's 95% normal half-width widened to the sweep-wide
// union-bound Hoeffding half-width (range-scaled), whichever is larger.
func (s *Sweep) margin(c Cell, hw float64) float64 {
	return s.marginSpan(span(c.Gamma), c.Runs, hw)
}

// marginSpan is margin with an explicit sample range: control-variate
// cells certify over the residual payoffs, whose range (possibly zero —
// the estimate is then exact) replaces the full payoff span in the
// Hoeffding widening.
func (s *Sweep) marginSpan(sp float64, runs int, hw float64) float64 {
	hoeff := sp * stats.HoeffdingHalfWidth(int64(runs), s.deltaPrime)
	return math.Max(hw, hoeff)
}

// residualSpan is the range of the residual payoffs γ(E) − C(E) the
// control-variate estimator actually samples.
func residualSpan(g core.Payoff, cv core.ControlVariate) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, e := range core.Events() {
		v := g.Of(e) - cv.EventValue[i]
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return hi - lo
}

// runCell measures and certifies one cell. Deterministic: depends only
// on the cell (which embeds its runs and seed) and the spec's
// scheduling-neutral options — plus, when enabled, the statistical
// options (PairedSeeds, ControlVariates), which are themselves pure
// functions of (Spec, Seed). A non-nil eventLog (len ≥ c.Runs) receives
// the per-run classified events for paired delta reduction; it never
// affects the record.
func (s *Sweep) runCell(c Cell, eventLog []core.Event) (Record, error) {
	proto, err := buildProtocol(c.Family, c.N, c.P)
	if err != nil {
		return Record{}, fmt.Errorf("sweep: cell %s: %w", c.Key, err)
	}
	sampler := buildSampler(c.Family, c.N)
	opts := []core.Option{core.WithParallelism(s.Spec.Parallelism)}
	if s.Spec.BatchSize > 0 {
		opts = append(opts, core.WithBatchSize(s.Spec.BatchSize))
	}
	if s.Spec.NoCompiledPlans {
		opts = append(opts, core.WithCompiledPlans(false))
	}
	if s.Spec.PairedSeeds {
		opts = append(opts, core.WithPairedSeeds(s.pairedMaster))
	}
	if eventLog != nil {
		opts = append(opts, core.WithEventLog(eventLog))
	}
	cellSpan := span(c.Gamma)
	cvNote := ""
	if s.Spec.ControlVariates && c.Family == "gk" && c.Adv == "firsthit" {
		cv := core.GKFirstHitControl(c.Gamma, proto.NumRounds()/2, 0.5)
		opts = append(opts, core.WithControlVariate(cv))
		cellSpan = residualSpan(c.Gamma, cv)
		cvNote = "cv=" + cv.Name
	}

	var rep core.UtilityReport
	note := ""
	switch {
	case c.Adv == "sup":
		space := buildSpace(c, proto)
		sup, err := core.SupUtilitySpace(proto, core.SliceSpace(space), c.Gamma, sampler, c.Runs, c.Seed, opts...)
		if err != nil {
			return Record{}, fmt.Errorf("sweep: cell %s: %w", c.Key, err)
		}
		rep = sup.BestReport
		note = "best: " + sup.Best
	case c.Adv == "sup-search":
		// The racing engine certifies the winner at the same c.Runs
		// resolution the exhaustive sup cell would use — the margin
		// arithmetic below sees an estimate of identical sample size —
		// while racing spends at most c.Runs per eliminated rival.
		so := search.Options{
			RaceRuns: c.Runs, FinalRuns: c.Runs,
			Parallelism:     s.Spec.Parallelism,
			BatchSize:       s.Spec.BatchSize,
			NoCompiledPlans: s.Spec.NoCompiledPlans,
		}
		srep, err := search.Run(proto, core.SliceSpace(buildSpace(c, proto)), c.Gamma, sampler, c.Seed, so)
		if err != nil {
			return Record{}, fmt.Errorf("sweep: cell %s: %w", c.Key, err)
		}
		rep = srep.BestReport
		note = fmt.Sprintf("best: %s (raced %d/%d runs)", srep.Best, srep.TotalRuns, srep.ExhaustiveRuns)
	default:
		adv, err := buildAdversary(c)
		if err != nil {
			return Record{}, err
		}
		rep, err = core.EstimateUtility(proto, adv, c.Gamma, sampler, c.Runs, c.Seed, opts...)
		if err != nil {
			return Record{}, fmt.Errorf("sweep: cell %s: %w", c.Key, err)
		}
	}

	if cvNote != "" {
		if note != "" {
			note += "; "
		}
		note += cvNote
	}

	est := rep.Utility
	m := s.marginSpan(cellSpan, c.Runs, est.HalfWidth)
	boundName, bound := cellBound(c, proto)
	rec := Record{
		Kind: "cell", Key: c.Key, Family: c.Family,
		Gamma: [4]float64{c.Gamma.G00, c.Gamma.G01, c.Gamma.G10, c.Gamma.G11},
		N:     c.N, T: c.T, Adv: c.Adv, Cost: c.Cost, P: c.P,
		Runs: c.Runs, Seed: c.Seed,
		Mean: est.Mean, HalfWidth: est.HalfWidth, Samples: est.N,
		Events: [4]float64{
			rep.EventFreq[core.E00], rep.EventFreq[core.E01],
			rep.EventFreq[core.E10], rep.EventFreq[core.E11],
		},
		Note: note,
	}

	addCheck := func(ck Check) { rec.Checks = append(rec.Checks, ck) }
	slack := s.Spec.Slack
	// The family bound: Lo (CI widened to the union-bound margin) must
	// not exceed bound + slack — the empirical "≤ up to negligible".
	addCheck(Check{
		Name: boundName, Dir: "<=", Bound: bound, Value: est.Mean, Margin: m,
		OK: est.Mean-m <= bound+slack,
	})
	if c.Cost == "optimal" {
		// Theorem 6 / Lemma 22: under the closed-form optimal cost
		// c(t) = bound(t) − s(t), the cost-adjusted utility must not
		// exceed the ideal payoff s(t) = IdealBound(γ).
		ideal := core.IdealBound(c.Gamma)
		cost := func(int) float64 { return bound - ideal }
		adjusted := core.UtilityWithCost(est.Mean, c.T, cost)
		addCheck(Check{
			Name: "ideal-cost", Dir: "<=", Bound: ideal, Value: adjusted, Margin: m,
			OK: adjusted-m <= ideal+slack,
		})
	}
	if c.Family == "gk" {
		iters := proto.NumRounds() / 2
		// Wilson score certification of the raw fairness-failure
		// frequency Pr[E10] against the 1/p ceiling (Theorems 23/24).
		e10 := int64(math.Round(rec.Events[2] * float64(c.Runs)))
		lo, _, werr := stats.WilsonInterval(e10, int64(c.Runs))
		if werr != nil {
			return Record{}, fmt.Errorf("sweep: cell %s: %w", c.Key, werr)
		}
		addCheck(Check{
			Name: "gk-e10-wilson", Dir: "<=", Bound: 1 / float64(c.P),
			Value: rec.Events[2], Margin: rec.Events[2] - lo,
			OK: lo <= 1/float64(c.P)+slack,
		})
		if c.Gamma == core.GordonKatzPayoff() {
			// At ~γ = (0,0,1,0) the first-hit utility IS Pr[E10], with the
			// exact closed form (1−(1−h)^r)/(r·h) at h = ½.
			exact := core.GKFirstHitExact(iters, 0.5)
			addCheck(Check{
				Name: "gk-first-hit-exact", Dir: "=", Bound: exact,
				Value: est.Mean, Margin: m,
				OK: math.Abs(est.Mean-exact) <= m+slack,
			})
		}
	}

	rec.OK = true
	for _, ck := range rec.Checks {
		if !ck.OK {
			rec.OK = false
		}
	}
	return rec, nil
}

// runSum reduces the already-computed per-t cell records of one sum plan
// into an aggregate record.
func (s *Sweep) runSum(p sumPlan, cellRecs []Record) Record {
	var sum, marginSum float64
	for _, idx := range p.cellIdx {
		cr := cellRecs[idx]
		sum += cr.Mean
		marginSum += s.margin(s.Cells[idx], cr.HalfWidth)
	}
	rec := Record{
		Kind: "sum", Key: p.Key, Family: p.Family,
		Gamma: [4]float64{p.Gamma.G00, p.Gamma.G01, p.Gamma.G10, p.Gamma.G11},
		N:     p.N, Cost: p.Cost,
		Mean: sum, HalfWidth: marginSum,
	}
	slack := s.Spec.Slack
	switch p.Family {
	case "optn":
		// Lemmas 14/16: the per-t sum of ΠOpt-nSFE is utility-balanced.
		bound := core.BalancedSumBound(p.Gamma, p.N)
		rec.Checks = []Check{{
			Name: "balanced-sum", Dir: "<=", Bound: bound, Value: sum,
			Margin: marginSum, OK: sum-marginSum <= bound+slack,
		}}
	case "gmwhalf":
		// Lemma 17 (even n): the setup attacker's per-t sum reaches
		// (n/2)·γ10 + (n/2−1)·γ11, exceeding the balanced optimum.
		bound := core.GMWEvenNSumLowerBound(p.Gamma, p.N)
		rec.Checks = []Check{{
			Name: "gmw-sum-lower", Dir: ">=", Bound: bound, Value: sum,
			Margin: marginSum, OK: sum+marginSum >= bound-slack,
		}}
	}
	rec.OK = true
	for _, ck := range rec.Checks {
		if !ck.OK {
			rec.OK = false
		}
	}
	return rec
}

// runDelta reduces the member cells' per-run event logs into a paired
// delta record: the CRN-paired estimate of u(cell A) − u(cell B),
// certified against monotonicity (the first-hit utility decreases in p)
// and against the exact closed-form difference. The pairing is what
// makes this affordable — the cells share coin sequences, so the
// per-run differences carry only the cells' genuine disagreement.
func (s *Sweep) runDelta(d deltaPlan, logA, logB []core.Event) (Record, error) {
	a, b := s.Cells[d.A], s.Cells[d.B]
	va := make([]float64, a.Runs)
	vb := make([]float64, b.Runs)
	for i := range va {
		va[i] = a.Gamma.Of(logA[i])
		vb[i] = b.Gamma.Of(logB[i])
	}
	est, err := stats.PairedEstimateZ(va, vb, stats.ZQuantile(s.deltaPrime))
	if err != nil {
		return Record{}, fmt.Errorf("sweep: delta %s: %w", d.Key, err)
	}
	protoA, err := buildProtocol(a.Family, a.N, a.P)
	if err != nil {
		return Record{}, fmt.Errorf("sweep: delta %s: %w", d.Key, err)
	}
	protoB, err := buildProtocol(b.Family, b.N, b.P)
	if err != nil {
		return Record{}, fmt.Errorf("sweep: delta %s: %w", d.Key, err)
	}
	exact := core.GKFirstHitExact(protoA.NumRounds()/2, 0.5) -
		core.GKFirstHitExact(protoB.NumRounds()/2, 0.5)

	m := est.HalfWidth
	slack := s.Spec.Slack
	rec := Record{
		Kind: "delta", Key: d.Key, Family: a.Family,
		Gamma: [4]float64{a.Gamma.G00, a.Gamma.G01, a.Gamma.G10, a.Gamma.G11},
		N:     a.N, T: a.T, Adv: a.Adv, Cost: a.Cost, P: a.P,
		Runs: a.Runs,
		Mean: est.Mean, HalfWidth: est.HalfWidth, Samples: est.N,
		Note: fmt.Sprintf("paired vs p=%d", b.P),
		Pair: b.Key,
	}
	rec.Checks = []Check{{
		// Monotonicity: more rounds can only lower the first-hit utility.
		Name: "gk-delta-nonneg", Dir: ">=", Bound: 0, Value: est.Mean, Margin: m,
		OK: est.Mean+m >= -slack,
	}, {
		// The difference of two exact laws is itself exact.
		Name: "gk-delta-exact", Dir: "=", Bound: exact, Value: est.Mean, Margin: m,
		OK: math.Abs(est.Mean-exact) <= m+slack,
	}}
	rec.OK = rec.Checks[0].OK && rec.Checks[1].OK
	return rec, nil
}
