package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// rangeSpec is a small grid with both cell and aggregate sum records.
func rangeSpec() Spec {
	return Spec{
		Families:   []string{"oneround", "optn"},
		Gammas:     []core.Payoff{core.StandardPayoff()},
		Ns:         []int{2, 3},
		Costs:      []string{"zero", "optimal"},
		AbortSweep: true,
		Runs:       60,
		Seed:       77,
	}
}

func TestSplitRanges(t *testing.T) {
	cases := []struct{ total, parts int }{
		{10, 3}, {10, 10}, {10, 1}, {3, 10}, {1000, 7}, {1, 1}, {0, 4}, {5, 0},
	}
	for _, c := range cases {
		ranges := SplitRanges(c.total, c.parts)
		if c.total <= 0 || c.parts <= 0 {
			if ranges != nil {
				t.Errorf("SplitRanges(%d,%d) = %v, want nil", c.total, c.parts, ranges)
			}
			continue
		}
		// Contiguous cover of [0, total), no empty ranges, sizes within 1.
		next, minLen, maxLen := 0, c.total, 0
		for _, r := range ranges {
			if r.Start != next || r.Len() <= 0 {
				t.Fatalf("SplitRanges(%d,%d): bad range %v at cursor %d", c.total, c.parts, r, next)
			}
			if r.Len() < minLen {
				minLen = r.Len()
			}
			if r.Len() > maxLen {
				maxLen = r.Len()
			}
			next = r.End
		}
		if next != c.total {
			t.Errorf("SplitRanges(%d,%d): covers [0,%d), want [0,%d)", c.total, c.parts, next, c.total)
		}
		if maxLen-minLen > 1 {
			t.Errorf("SplitRanges(%d,%d): unbalanced sizes [%d,%d]", c.total, c.parts, minLen, maxLen)
		}
		want := c.parts
		if c.total < c.parts {
			want = c.total
		}
		if len(ranges) != want {
			t.Errorf("SplitRanges(%d,%d): %d ranges, want %d", c.total, c.parts, len(ranges), want)
		}
	}
}

// TestMergeByteIdenticalToRun is the fabric's core determinism
// guarantee at the sweep layer: cells computed out of order by
// RunCellIndex, JSON-round-tripped (as the wire does), and merged,
// produce a checkpoint byte-identical to a single-machine Run.
func TestMergeByteIdenticalToRun(t *testing.T) {
	spec := rangeSpec()
	dir := t.TempDir()
	runPath := filepath.Join(dir, "run.jsonl")
	mergePath := filepath.Join(dir, "merge.jsonl")

	sum, err := Run(spec, runPath, nil)
	if err != nil {
		t.Fatal(err)
	}

	sw, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sw.GridFingerprint() == "" {
		t.Fatal("empty grid fingerprint")
	}
	// Compute the cells via RunCellIndex in reverse order — any worker,
	// any order — and round-trip each record through JSON, exactly as
	// the fabric's record frames do.
	cellRecs := make([]Record, len(sw.Cells))
	for i := len(sw.Cells) - 1; i >= 0; i-- {
		rec, err := sw.RunCellIndex(i)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		var rt Record
		if err := json.Unmarshal(data, &rt); err != nil {
			t.Fatal(err)
		}
		cellRecs[i] = rt
	}

	mergeSum, err := sw.Merge(mergePath, cellRecs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(mergeSum.Records) != len(sum.Records) {
		t.Fatalf("merge produced %d records, run produced %d", len(mergeSum.Records), len(sum.Records))
	}

	a, err := os.ReadFile(runPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(mergePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("merged checkpoint differs from single-machine run (%d vs %d bytes)", len(b), len(a))
	}
}

func TestMergeRejectsDriftAndGaps(t *testing.T) {
	sw, err := Plan(rangeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Merge("", make([]Record, len(sw.Cells)-1), nil); err == nil ||
		!strings.Contains(err.Error(), "cell records") {
		t.Errorf("short record set: err = %v, want record-count error", err)
	}
	recs := make([]Record, len(sw.Cells))
	for i := range recs {
		recs[i] = Record{Key: sw.Cells[i].Key}
	}
	recs[2].Key = "0000000000000000"
	if _, err := sw.Merge("", recs, nil); err == nil || !strings.Contains(err.Error(), "grid drift") {
		t.Errorf("drifted key: err = %v, want grid-drift error", err)
	}
}

func TestRunCellIndexBounds(t *testing.T) {
	sw, err := Plan(rangeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.RunCellIndex(-1); err == nil {
		t.Error("RunCellIndex(-1) succeeded")
	}
	if _, err := sw.RunCellIndex(len(sw.Cells)); err == nil {
		t.Error("RunCellIndex(len) succeeded")
	}
}

// TestRunContextCancel pins the cancellation contract: a canceled sweep
// stops between cells with a valid checkpoint, and a later Run resumes
// it to a byte-identical complete file.
func TestRunContextCancel(t *testing.T) {
	spec := rangeSpec()
	dir := t.TempDir()
	path := filepath.Join(dir, "cancel.jsonl")
	refPath := filepath.Join(dir, "ref.jsonl")

	ctx, cancel := context.WithCancel(context.Background())
	stopAfter := 5
	progress := func(done, total int, rec Record, resumed bool) {
		if done == stopAfter {
			cancel()
		}
	}
	sum, err := RunContext(ctx, spec, path, progress)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext: err = %v, want context.Canceled", err)
	}
	if len(sum.Records) != stopAfter {
		t.Fatalf("canceled after %d records, want %d", len(sum.Records), stopAfter)
	}

	if _, err := Run(spec, path, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, refPath, nil); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(path)
	b, _ := os.ReadFile(refPath)
	if !bytes.Equal(a, b) {
		t.Fatal("resumed-after-cancel checkpoint differs from uninterrupted run")
	}
}
