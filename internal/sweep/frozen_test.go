package sweep

// Frozen-matrix determinism contract: the variance-reduction options
// are off by default, and with them off every sweep record must stay
// byte-identical to the fixture generated before the options existed.
// These tests are the repository's tripwire against the statistical
// machinery leaking into the default path — a single drifted byte here
// means cached results, checkpoints, and cross-version comparisons are
// silently broken.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// frozenSpec is the exact grid the checked-in fixture was generated
// from (testdata/frozen_vr_off.jsonl, produced by the pre-variance
// sweep code). Do not change it — regenerate the fixture only for a
// deliberate, documented format break.
func frozenSpec() Spec {
	return Spec{
		Families: []string{"2sfe", "gk"},
		Gammas:   StandardGammas(),
		Ns:       []int{2},
		Ps:       []int{2, 4},
		Costs:    []string{"zero"},
		Runs:     200,
		Seed:     7,
	}
}

// TestFrozenMatrixByteIdentical replays the fixture grid with every
// variance-reduction option off and demands byte equality, record for
// record, with the pre-variance output.
func TestFrozenMatrixByteIdentical(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "frozen_vr_off.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(frozenSpec(), "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	for _, rec := range sum.Records {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		got.Write(line)
		got.WriteByte('\n')
	}
	if !bytes.Equal(got.Bytes(), want) {
		gotLines := strings.Split(got.String(), "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if gotLines[i] != wantLines[i] {
				t.Fatalf("record %d drifted from the frozen matrix\n got: %s\nwant: %s", i, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("record count drifted: got %d lines, frozen matrix has %d", len(gotLines), len(wantLines))
	}
}

// pairedSpec is the frozen grid with CRN pairing and control variates
// switched on: the gk/firsthit cells at the Gordon–Katz payoff gain
// certified delta records between consecutive p values.
func pairedSpec() Spec {
	spec := frozenSpec()
	spec.PairedSeeds = true
	spec.ControlVariates = true
	return spec
}

// TestPairedSweepDeltas: with PairedSeeds on, the plan gains delta
// records pairing neighbouring Gordon–Katz cells, each certified
// against both monotonicity and the exact first-hit law, and the
// control-variate cells carry the residual annotation.
func TestPairedSweepDeltas(t *testing.T) {
	sw, err := Plan(pairedSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Deltas) == 0 {
		t.Fatal("paired plan has no delta records; want one per consecutive gk p pair")
	}
	sum, err := Run(pairedSpec(), "", nil)
	if err != nil {
		t.Fatalf("paired sweep breached: %v", err)
	}
	if len(sum.Records) != len(sw.Cells)+len(sw.Sums)+len(sw.Deltas) {
		t.Fatalf("got %d records, want %d cells + %d sums + %d deltas",
			len(sum.Records), len(sw.Cells), len(sw.Sums), len(sw.Deltas))
	}
	var deltas, cvCells int
	for _, rec := range sum.Records {
		switch {
		case rec.Kind == "delta":
			deltas++
			if rec.Pair == "" {
				t.Errorf("delta record %s has no pair key", rec.Key)
			}
			if len(rec.Checks) != 2 {
				t.Errorf("delta record %s has %d checks, want nonneg + exact", rec.Key, len(rec.Checks))
			}
			for _, c := range rec.Checks {
				if !c.OK {
					t.Errorf("delta check %s failed: value %v vs bound %v", c.Name, c.Value, c.Bound)
				}
			}
		case rec.Kind == "cell" && rec.Family == "gk" && rec.Adv == "firsthit":
			if !strings.Contains(rec.Note, "cv=gk-first-hit") {
				t.Errorf("gk cell %s lacks the control-variate note: %q", rec.Key, rec.Note)
			}
			cvCells++
		}
	}
	if deltas != len(sw.Deltas) {
		t.Errorf("emitted %d delta records, planned %d", deltas, len(sw.Deltas))
	}
	if cvCells == 0 {
		t.Error("no gk first-hit cell carried the control variate")
	}
}

// TestPairedSweepResumeByteIdentical: resuming an interrupted paired
// sweep must converge to the uninterrupted checkpoint byte for byte —
// including the delta records, whose event logs are deterministically
// re-measured for checkpoint-restored pair members.
func TestPairedSweepResumeByteIdentical(t *testing.T) {
	spec := pairedSpec()
	dir := t.TempDir()

	full := filepath.Join(dir, "full.jsonl")
	if _, err := Run(spec, full, nil); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(want, []byte("\n"))
	// Cut inside the record stream so restored cells feed later deltas.
	cut := filepath.Join(dir, "resume.jsonl")
	prefix := bytes.Join(lines[:4], nil) // header + 3 records
	if err := os.WriteFile(cut, prefix, 0o644); err != nil {
		t.Fatal(err)
	}
	sum, err := Run(spec, cut, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Resumed != 3 {
		t.Errorf("resumed %d records, want 3", sum.Resumed)
	}
	got, err := os.ReadFile(cut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed paired checkpoint is not byte-identical to the uninterrupted run")
	}
}

// TestMergeRejectsPairedDeltas: delta records reduce two cells' per-run
// event logs at once, which a range worker cannot provide — the fabric
// merge path must refuse paired plans outright instead of silently
// dropping the deltas.
func TestMergeRejectsPairedDeltas(t *testing.T) {
	sw, err := Plan(pairedSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Merge("", make([]Record, len(sw.Cells)), nil); err == nil ||
		!strings.Contains(err.Error(), "single-machine") {
		t.Fatalf("Merge on a paired plan: err = %v, want single-machine rejection", err)
	}
}

// TestPairedSpecChangesKeysOnly: switching the options on must not
// change the number or order of cells — only the record content and the
// added deltas — and the unpaired plan must carry no deltas at all.
func TestPairedSpecChangesKeysOnly(t *testing.T) {
	off, err := Plan(frozenSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(off.Deltas) != 0 {
		t.Fatalf("options-off plan carries %d deltas, want none", len(off.Deltas))
	}
	on, err := Plan(pairedSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(on.Cells) != len(off.Cells) || len(on.Sums) != len(off.Sums) {
		t.Fatalf("options changed the grid: %d/%d cells, %d/%d sums",
			len(on.Cells), len(off.Cells), len(on.Sums), len(off.Sums))
	}
	for i := range on.Cells {
		if on.Cells[i].Key != off.Cells[i].Key {
			t.Errorf("cell %d key drifted: %s vs %s — cell identity must not depend on the options",
				i, on.Cells[i].Key, off.Cells[i].Key)
		}
	}
}
