package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// smokeSpec is a small but family-complete grid: every family, two γ
// points, n ∈ {2, 3, 4}, both costs, abort sweep on.
func smokeSpec() Spec {
	return Spec{
		Families:   []string{"2sfe", "oneround", "pi1", "pi2", "optn", "gmwhalf", "gk"},
		Gammas:     []core.Payoff{core.StandardPayoff(), core.GordonKatzPayoff()},
		Ns:         []int{2, 3, 4},
		Ps:         []int{2, 4},
		Costs:      []string{"zero", "optimal"},
		AbortSweep: true,
		Runs:       400,
		Seed:       20150302,
	}
}

func TestPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"no families", Spec{Gammas: StandardGammas(), Ns: []int{2}}, "no families"},
		{"no gammas", Spec{Families: []string{"2sfe"}, Ns: []int{2}}, "no payoff vectors"},
		{"unknown family", Spec{Families: []string{"nope"}, Gammas: StandardGammas(), Ns: []int{2}}, "unknown family"},
		{"bad n", Spec{Families: []string{"optn"}, Gammas: StandardGammas(), Ns: []int{1}}, "out of range"},
		{"bad p", Spec{Families: []string{"gk"}, Gammas: StandardGammas(), Ps: []int{1}}, "out of range"},
		{"bad cost", Spec{Families: []string{"2sfe"}, Gammas: StandardGammas(), Ns: []int{2}, Costs: []string{"quadratic"}}, "unknown cost"},
		{"not fair-plus", Spec{Families: []string{"2sfe"}, Ns: []int{2},
			Gammas: []core.Payoff{{G00: 0.9, G01: 0, G10: 1, G11: 0.5}}}, "fair"},
	}
	for _, c := range cases {
		if _, err := Plan(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Plan() error = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestPlanDeterministicAndKeyed(t *testing.T) {
	a, err := Plan(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(smokeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) || a.Records() != b.Records() {
		t.Fatalf("plans differ in size: %d/%d vs %d/%d", len(a.Cells), a.Records(), len(b.Cells), b.Records())
	}
	seen := map[string]bool{}
	for i := range a.Cells {
		if a.Cells[i] != b.Cells[i] {
			t.Fatalf("cell %d differs across identical plans:\n%+v\n%+v", i, a.Cells[i], b.Cells[i])
		}
		if seen[a.Cells[i].Key] {
			t.Fatalf("duplicate cell key %s", a.Cells[i].Key)
		}
		seen[a.Cells[i].Key] = true
		if a.Cells[i].Seed < 0 {
			t.Fatalf("cell %d: negative seed %d", i, a.Cells[i].Seed)
		}
	}
	// Two-party families must be skipped, not silently dropped, at n > 2.
	if len(a.Skipped) == 0 {
		t.Error("expected skipped (family, n) combinations for two-party families at n=3,4")
	}
	// A different sweep seed re-keys every cell.
	spec := smokeSpec()
	spec.Seed++
	c, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cells[0].Key == a.Cells[0].Key {
		t.Error("sweep seed does not enter the cell key")
	}
}

func TestAdaptiveRuns(t *testing.T) {
	spec := smokeSpec()
	spec.Runs = 0
	spec.TargetHW = 0.2
	spec.MinRuns = 50
	spec.MaxRuns = 300
	sw, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sw.Cells {
		if c.Runs < spec.MinRuns || c.Runs > spec.MaxRuns {
			t.Fatalf("cell %s: adaptive runs %d outside [%d, %d]", c.Key, c.Runs, spec.MinRuns, spec.MaxRuns)
		}
	}
	// A tighter target must not decrease any run count.
	tight := spec
	tight.TargetHW = 0.05
	tight.MaxRuns = 100000
	tw, err := Plan(tight)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tw.Cells {
		if tw.Cells[i].Runs < sw.Cells[i].Runs {
			t.Fatalf("cell %d: tighter target reduced runs %d -> %d", i, sw.Cells[i].Runs, tw.Cells[i].Runs)
		}
	}
}

// TestSweepSmokeNoBreaches is the in-repo version of the CI smoke: the
// full family grid must certify cleanly against the paper's bounds.
func TestSweepSmokeNoBreaches(t *testing.T) {
	sum, err := Run(smokeSpec(), "", nil)
	if err != nil {
		for _, br := range sum.Breaches {
			t.Errorf("breach: %s %s n=%d t=%d adv=%s cost=%s: %+v",
				br.Family, br.Kind, br.N, br.T, br.Adv, br.Cost, br.Checks)
		}
		t.Fatal(err)
	}
	if len(sum.Records) == 0 || sum.TotalChecks == 0 {
		t.Fatal("empty sweep")
	}
	// The grid must include aggregate sum records for optn (n=3,4) and
	// gmwhalf (n=4 only: even n).
	kinds := map[string]int{}
	for _, r := range sum.Records {
		if r.Kind == "sum" {
			kinds[r.Family]++
		}
	}
	if kinds["optn"] != 4 { // 2 γ × n ∈ {3, 4}; n=2 has t range {1} too — count below
		// optn sums exist for every n with a complete t-range: n=2,3,4 ⇒ 3 per γ.
		if kinds["optn"] != 6 {
			t.Errorf("optn sum records = %d, want 6", kinds["optn"])
		}
	}
	if kinds["gmwhalf"] != 4 { // even n ∈ {2, 4} × 2 γ
		t.Errorf("gmwhalf sum records = %d, want 4", kinds["gmwhalf"])
	}
}

// TestSupCells exercises the SupUtility entry point through the grid.
func TestSupCells(t *testing.T) {
	spec := Spec{
		Families: []string{"2sfe", "gmwhalf"},
		Gammas:   []core.Payoff{core.StandardPayoff()},
		Ns:       []int{2, 4},
		Runs:     200,
		SupRuns:  120,
		Seed:     7,
	}
	sum, err := Run(spec, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	supSeen := false
	for _, r := range sum.Records {
		if r.Adv == "sup" {
			supSeen = true
			if r.Note == "" {
				t.Errorf("sup record %s lacks best-strategy note", r.Key)
			}
		}
	}
	if !supSeen {
		t.Fatal("no sup cells in grid with SupRuns set")
	}
}

// TestSupSearchCells pins the racing sup path: with Spec.SupSearch the
// grid emits "sup-search" cells — fresh keys, so frozen "sup" records
// can never be confused with raced ones — that certify the same winning
// strategy the exhaustive sup cell finds, race strictly fewer runs than
// enumeration would, and reproduce byte-for-byte.
func TestSupSearchCells(t *testing.T) {
	spec := Spec{
		Families: []string{"pi1"},
		Gammas:   []core.Payoff{core.StandardPayoff()},
		Ns:       []int{2},
		Costs:    []string{"zero"},
		Runs:     200,
		SupRuns:  200,
		Seed:     7,
	}
	exh, err := Run(spec, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	spec.SupSearch = true
	raced, err := Run(spec, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	bestOf := func(sum *Summary, adv string) map[string]string {
		out := map[string]string{}
		for _, r := range sum.Records {
			if r.Adv != adv {
				continue
			}
			name := strings.TrimPrefix(r.Note, "best: ")
			if i := strings.Index(name, " ("); i >= 0 {
				name = name[:i]
			}
			out[fmt.Sprintf("%s/n%d/t%d", r.Family, r.N, r.T)] = name
		}
		return out
	}
	want := bestOf(exh, "sup")
	got := bestOf(raced, "sup-search")
	if len(want) == 0 || len(got) == 0 {
		t.Fatalf("missing sup cells: exhaustive=%d raced=%d", len(want), len(got))
	}
	for cell, name := range want {
		if got[cell] != name {
			t.Errorf("cell %s: raced best %q, want exhaustive best %q", cell, got[cell], name)
		}
	}
	for _, r := range raced.Records {
		if r.Adv == "sup-search" && !strings.Contains(r.Note, "raced") {
			t.Errorf("sup-search record %s lacks racing note: %q", r.Key, r.Note)
		}
	}
	if !raced.OK() {
		t.Fatalf("raced sweep breached: %+v", raced.Breaches)
	}

	again, err := Run(spec, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(raced.Records, again.Records) {
		t.Fatal("sup-search records are not reproducible across runs")
	}
}

// TestResumeByteIdentical is the tentpole's determinism acceptance test:
// interrupt a sweep partway (simulated by a checkpoint holding a prefix,
// including a torn trailing line), resume it, and require the resulting
// JSONL to be byte-identical to an uninterrupted run's.
func TestResumeByteIdentical(t *testing.T) {
	spec := smokeSpec()
	spec.Families = []string{"2sfe", "optn", "gk"}
	spec.Ns = []int{2, 3}
	spec.Runs = 150
	dir := t.TempDir()

	full := filepath.Join(dir, "full.jsonl")
	if _, err := Run(spec, full, nil); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(want, []byte("\n"))
	if len(lines) < 8 {
		t.Fatalf("sweep too small for a meaningful interrupt: %d lines", len(lines))
	}

	// Interrupt after 5 records, mid-write of the 6th: a torn tail.
	cut := filepath.Join(dir, "resume.jsonl")
	prefix := bytes.Join(lines[:6], nil) // header + 5 records
	torn := append(append([]byte{}, prefix...), lines[6][:len(lines[6])/2]...)
	if err := os.WriteFile(cut, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	sum, err := Run(spec, cut, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Resumed != 5 {
		t.Errorf("resumed %d records, want 5", sum.Resumed)
	}
	got, err := os.ReadFile(cut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed checkpoint is not byte-identical to uninterrupted run\nwant %d bytes, got %d", len(want), len(got))
	}

	// Resuming a complete checkpoint re-measures nothing and rewrites
	// nothing.
	sum2, err := Run(spec, cut, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Resumed != len(sum2.Records) {
		t.Errorf("complete checkpoint: resumed %d of %d", sum2.Resumed, len(sum2.Records))
	}
	again, err := os.ReadFile(cut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Error("no-op resume modified the checkpoint")
	}
}

// TestResumeRejectsForeignCheckpoint pins the header/key validation: a
// checkpoint from a different grid or seed must refuse to resume.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	spec := Spec{
		Families: []string{"2sfe"}, Gammas: []core.Payoff{core.StandardPayoff()},
		Ns: []int{2}, Runs: 100, Seed: 1,
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.jsonl")
	if _, err := Run(spec, path, nil); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Seed = 2
	if _, err := Run(other, path, nil); err == nil || !strings.Contains(err.Error(), "header mismatch") {
		t.Errorf("foreign checkpoint accepted: err = %v", err)
	}

	// A record whose key drifts from the plan is corruption, not a tear.
	sw, err := Plan(spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(data, []byte(`"key":"`+sw.Cells[0].Key+`"`), []byte(`"key":"0000000000000000"`), 1)
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(path, sw); err == nil || !strings.Contains(err.Error(), "grid drift") {
		t.Errorf("drifted record accepted: err = %v", err)
	}
}

// TestBreachDetection plants an impossible bound via a hostile payoff
// route: certify against a deliberately wrong slack-free comparison by
// shrinking MaxRuns? Instead, the honest route — a cell whose measured
// utility provably exceeds a *tighter* bound — is synthesized by
// checking that certification fails when Slack is large and negative.
func TestBreachDetection(t *testing.T) {
	spec := Spec{
		Families: []string{"oneround"},
		Gammas:   []core.Payoff{core.StandardPayoff()},
		Ns:       []int{2},
		Runs:     200,
		Seed:     3,
		Slack:    -2, // impossible tolerance: every check must now fail
	}
	sum, err := Run(spec, "", nil)
	if err == nil || !errors.Is(err, ErrBreach) {
		t.Fatalf("expected ErrBreach, got %v", err)
	}
	if sum == nil || len(sum.Breaches) == 0 {
		t.Fatal("breach summary empty")
	}
	for _, br := range sum.Breaches {
		if br.OK {
			t.Error("breach record marked OK")
		}
	}
}
