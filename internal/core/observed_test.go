package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestMetricsAggregation checks that the report's engine metrics are
// identical for sequential and parallel estimation and consistent with
// the workload's shape.
func TestMetricsAggregation(t *testing.T) {
	const runs = 60
	seq, err := EstimateUtility(flipProtocol{}, &grabber{}, StandardPayoff(), uniformInputs, runs, 11, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := EstimateUtility(flipProtocol{}, &grabber{}, StandardPayoff(), uniformInputs, runs, 11, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sequential and parallel reports diverge:\nseq: %+v\npar: %+v", seq, par)
	}
	if seq.Metrics.Runs != runs {
		t.Errorf("Metrics.Runs = %d, want %d", seq.Metrics.Runs, runs)
	}
	wantRounds := int64(runs * (flipProtocol{}.NumRounds() + 1))
	if seq.Metrics.Rounds != wantRounds {
		t.Errorf("Metrics.Rounds = %d, want %d", seq.Metrics.Rounds, wantRounds)
	}
	if seq.Metrics.Corruptions != runs {
		t.Errorf("Metrics.Corruptions = %d, want %d (one static corruption per run)", seq.Metrics.Corruptions, runs)
	}
	if seq.Metrics.Messages == 0 {
		t.Error("Metrics.Messages = 0")
	}
}

// countingObserver records which run indices it was attached to.
type countingObserver struct {
	sim.NopObserver
	mu   *sync.Mutex
	runs *[]int
	run  int
}

func (c countingObserver) RunFinished(*sim.Trace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	*c.runs = append(*c.runs, c.run)
}

// TestObserverFactoryCoversEveryRun checks the factory is invoked once
// per run with the run index, under parallelism, without perturbing the
// report.
func TestObserverFactoryCoversEveryRun(t *testing.T) {
	const runs = 40
	plain, err := EstimateUtility(flipProtocol{}, &grabber{}, StandardPayoff(), uniformInputs, runs, 5, WithParallelism(3))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seen []int
	factory := func(run int) sim.Observer {
		return countingObserver{mu: &mu, runs: &seen, run: run}
	}
	observed, err := EstimateUtility(flipProtocol{}, &grabber{}, StandardPayoff(), uniformInputs, runs, 5, WithParallelism(3), WithObserver(factory))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Fatal("attaching observers changed the report")
	}
	if len(seen) != runs {
		t.Fatalf("observer saw %d runs, want %d", len(seen), runs)
	}
	covered := make(map[int]bool, runs)
	for _, r := range seen {
		covered[r] = true
	}
	for i := 0; i < runs; i++ {
		if !covered[i] {
			t.Errorf("run %d never observed", i)
		}
	}
}

// TestSupObservedMetrics checks the sup-search surfaces summed metrics
// and labels the per-strategy observer stream.
func TestSupObservedMetrics(t *testing.T) {
	advs := []NamedAdversary{
		{Name: "grabber", Adv: &grabber{}},
		{Name: "passive", Adv: sim.Passive{}},
	}
	var mu sync.Mutex
	strategies := map[string]int{}
	factory := func(strategy string, run int) sim.Observer {
		mu.Lock()
		strategies[strategy]++
		mu.Unlock()
		return nil
	}
	rep, err := SupUtility(flipProtocol{}, advs, StandardPayoff(), uniformInputs, 20, 3, WithParallelism(2), WithSupObserver(factory))
	if err != nil {
		t.Fatal(err)
	}
	var want sim.Metrics
	for _, r := range rep.All {
		want.Add(r.Metrics)
	}
	if rep.Metrics != want {
		t.Errorf("SupReport.Metrics = %+v, want sum of per-strategy metrics %+v", rep.Metrics, want)
	}
	if rep.Metrics.Runs != 40 {
		t.Errorf("total runs = %d, want 40", rep.Metrics.Runs)
	}
	for _, na := range advs {
		if strategies[na.Name] != 20 {
			t.Errorf("strategy %q observed %d times, want 20", na.Name, strategies[na.Name])
		}
	}
}
