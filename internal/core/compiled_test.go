package core_test

// Compiled-vs-interpreted equivalence: estimating with compiled
// execution plans (the default) must reproduce the interpreter's reports
// bit-for-bit — same means, frequencies, run fractions, and metrics — on
// the same protocol × adversary × seed × parallelism × batch matrix the
// frozen-legacy tests pin. Together with TestEngineMatchesLegacy*, this
// anchors the compiled path to the PR-1 estimator transitively.

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/protocols/twoparty"
	"repro/internal/sim"
)

func TestCompiledMatchesInterpretedEstimate(t *testing.T) {
	for _, tc := range equivCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			proto, err := tc.proto()
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range []int64{0, 1, 42, -9} {
				want, err := core.EstimateUtility(proto, tc.newAdv(), core.StandardPayoff(), tc.sampler, 61, seed,
					core.WithParallelism(1), core.WithCompiledPlans(false))
				if err != nil {
					t.Fatal(err)
				}
				for _, par := range []int{1, 2, 4, 0} {
					for _, batch := range []int{1, 3, 64, 0} {
						got, err := core.EstimateUtility(proto, tc.newAdv(), core.StandardPayoff(), tc.sampler, 61, seed,
							core.WithParallelism(par), core.WithBatchSize(batch), core.WithCompiledPlans(true))
						if err != nil {
							t.Fatal(err)
						}
						requireEquivalent(t, fmt.Sprintf("seed %d par %d batch %d", seed, par, batch), want, got)
					}
				}
			}
		})
	}
}

// TestCompiledMatchesInterpretedSup pins the sup-search under compiled
// plans: identical per-strategy reports, Best, and merged metrics.
func TestCompiledMatchesInterpretedSup(t *testing.T) {
	proto := twoparty.New(twoparty.Swap())
	sampler := func(r *rand.Rand) []sim.Value {
		return []sim.Value{uint64(r.Intn(256)), uint64(r.Intn(256))}
	}
	space := func() []core.NamedAdversary {
		return []core.NamedAdversary{
			{"lock-abort:1", adversary.NewLockAbort(1)},
			{"lock-abort:2", adversary.NewLockAbort(2)},
			{"setup-abort", adversary.NewSetupAbort(1)},
			{"agen", adversary.NewAgen()},
		}
	}
	for _, seed := range []int64{7, 99} {
		want, err := core.SupUtility(proto, space(), core.StandardPayoff(), sampler, 53, seed,
			core.WithParallelism(1), core.WithCompiledPlans(false))
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 2, 0} {
			got, err := core.SupUtility(proto, space(), core.StandardPayoff(), sampler, 53, seed,
				core.WithParallelism(par), core.WithCompiledPlans(true))
			if err != nil {
				t.Fatal(err)
			}
			if got.Best != want.Best {
				t.Fatalf("par %d: best %q != interpreted %q", par, got.Best, want.Best)
			}
			if got.Metrics != want.Metrics {
				t.Fatalf("par %d: merged metrics diverge", par)
			}
			for name, w := range want.All {
				requireEquivalent(t, fmt.Sprintf("par %d strategy %s", par, name), w, got.All[name])
			}
		}
	}
}

// TestSamplerIntoMatchesSampler pins that WithSamplerInto changes
// nothing but allocation behavior when the two samplers draw
// identically.
func TestSamplerIntoMatchesSampler(t *testing.T) {
	proto := twoparty.New(twoparty.Swap())
	sampler := func(r *rand.Rand) []sim.Value {
		return []sim.Value{uint64(r.Intn(256)), uint64(r.Intn(256))}
	}
	into := func(r *rand.Rand, dst []sim.Value) []sim.Value {
		return append(dst, uint64(r.Intn(256)), uint64(r.Intn(256)))
	}
	for _, par := range []int{1, 3} {
		want, err := core.EstimateUtility(proto, adversary.NewAgen(), core.StandardPayoff(), sampler, 101, 5,
			core.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.EstimateUtility(proto, adversary.NewAgen(), core.StandardPayoff(), nil, 101, 5,
			core.WithParallelism(par), core.WithSamplerInto(into))
		if err != nil {
			t.Fatal(err)
		}
		requireEquivalent(t, fmt.Sprintf("par %d", par), want, got)
	}
}

// TestSupUtilityBestSelection is the regression for the best-selection
// sentinel bug: the old bestU = -1e18 seed left rep.Best empty both
// when every mean was NaN (a NaN payoff entry poisons every strategy's
// mean — 0·NaN = NaN in the count reduction) and when every mean sat
// below the sentinel. The selection must instead seed from the first
// comparable strategy, never pick a NaN mean, and report an error when
// no strategy is comparable.
func TestSupUtilityBestSelection(t *testing.T) {
	proto := twoparty.New(twoparty.Swap())
	sampler := core.FixedInputs(uint64(5), uint64(9))
	space := func() []core.NamedAdversary {
		return []core.NamedAdversary{
			{"passive", sim.Passive{}},
			{"lock-abort:1", adversary.NewLockAbort(1)},
		}
	}

	// Every utility below the old sentinel: passive runs are all E01
	// (mean -2e19), lock-abort mixes E10/E11 (mean -1e19, the larger).
	gamma := core.Payoff{G00: -1e19, G01: -2e19, G10: -1e19, G11: -1e19}
	rep, err := core.SupUtility(proto, space(), gamma, sampler, 31, 3, core.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best != "lock-abort:1" {
		t.Fatalf("best = %q, want %q (means below the old sentinel left Best empty)", rep.Best, "lock-abort:1")
	}
	if rep.BestReport.Utility.Mean != -1e19 {
		t.Fatalf("best mean = %v, want -1e19", rep.BestReport.Utility.Mean)
	}

	// A NaN payoff entry makes every mean NaN: the sup is undefined and
	// must say so instead of returning an empty Best.
	nanGamma := core.Payoff{G00: 0, G01: math.NaN(), G10: 1, G11: 0.5}
	_, err = core.SupUtility(proto, space(), nanGamma, sampler, 31, 3, core.WithParallelism(1))
	if err == nil {
		t.Fatal("all-NaN space returned a report instead of an error")
	}
	if !strings.Contains(err.Error(), "NaN") {
		t.Fatalf("error %q does not describe the NaN condition", err)
	}
}

// TestEstimateAllocsCompiled pins the tentpole's end-to-end allocation
// target: the full compiled hot path — in-place sampler, batcher lease,
// planned run, classify, tally — stays within 2 allocations per run for
// a small-range pair (Millionaires under lock-abort).
func TestEstimateAllocsCompiled(t *testing.T) {
	proto := twoparty.New(twoparty.Millionaires())
	adv := adversary.NewLockAbort(1)
	into := func(r *rand.Rand, dst []sim.Value) []sim.Value {
		return append(dst, uint64(r.Intn(200)), uint64(r.Intn(200)))
	}
	const runs = 2000
	seed := int64(1)
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := core.EstimateUtility(proto, adv, core.StandardPayoff(), nil, runs, seed,
			core.WithParallelism(1), core.WithSamplerInto(into)); err != nil {
			t.Fatal(err)
		}
		seed++
	})
	perRun := allocs / runs
	if perRun > 2 {
		t.Fatalf("compiled estimator allocates %.2f/run, budget 2", perRun)
	}
	t.Logf("compiled estimator: %.2f allocs/run", perRun)
}
