package core

import (
	"repro/internal/sim"
)

// Outcome is the ideal-world interpretation of one real execution: the
// fairness event the canonical simulator provokes, plus flags for
// behaviour that no simulator for the respective functionality could
// produce (used by the Gordon–Katz comparison of Section 5).
type Outcome struct {
	Event Event
	// CorrectnessViolation: some honest party output a wrong (non-⊥)
	// value. Legal only for protocols analysed against F_sfe^$ (the
	// randomized-abort functionality of Appendix C.2); fatal against
	// F_sfe^⊥.
	CorrectnessViolation bool
	// PrivacyBreach: the adversary demonstrably extracted an honest
	// party's input — not simulatable against any of the paper's
	// functionalities (Lemma 26's attack on Π̃).
	PrivacyBreach bool
	// Corrupted is the number of deviating parties t: parties corrupted
	// by the adversary plus parties fail-stopped by infrastructure
	// failures. A crashed party is priced exactly like a corrupted party
	// that aborted at the same round (the fail-stop → security-with-abort
	// degradation), so corruption costs apply to it too.
	Corrupted int
}

// Classify maps an execution trace to its outcome, following the
// correspondence the paper's proofs establish (see DESIGN.md §4):
//
//   - t = 0 ⇒ E01 on delivery (the paper folds "no corruption" into E01),
//     E00 otherwise;
//   - t = n ⇒ E11 (the paper folds "everyone corrupted" into E11: with no
//     honest party there is nobody to treat unfairly);
//   - otherwise the event is determined by (learned, delivered), where
//     "learned" is the engine-verified fact that the adversary's view
//     determined the output and "delivered" means every honest party
//     output the expected value.
//
// Fail-stopped parties (Trace.FailStops) count toward t: the fail-stop
// degradation maps an infrastructure failure onto the abort adversary
// that corrupts the crashed party and goes silent at the same round, so
// a chaos run is priced by the same events as an adversarial run. A
// fail-stop run where the survivors delivered the defaulted output is
// E01 (abort before learning), never an error.
func Classify(tr *sim.Trace) Outcome {
	n := len(tr.Inputs)
	t := tr.NumDeviating()
	out := Outcome{
		CorrectnessViolation: tr.AnyHonestWrong(),
		PrivacyBreach:        tr.PrivacyBreach,
		Corrupted:            t,
	}
	delivered := tr.AllHonestDelivered()
	switch {
	case t == 0:
		if delivered {
			out.Event = E01
		} else {
			out.Event = E00
		}
	case t == n:
		out.Event = E11
	default:
		switch {
		case tr.AdvLearned && delivered:
			out.Event = E11
		case tr.AdvLearned && !delivered:
			out.Event = E10
		case !tr.AdvLearned && delivered:
			out.Event = E01
		default:
			out.Event = E00
		}
	}
	return out
}
