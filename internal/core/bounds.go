package core

import (
	"errors"
	"fmt"
)

// Closed-form bounds from the paper, used to validate the measured
// utilities in EXPERIMENTS.md and, grid-wide, by the sweep engine
// (internal/sweep).
//
// The bound functions validate their parameters and panic on nonsense
// inputs (n ≤ 0, t outside 0..n, p ≤ 0) instead of silently returning
// NaN/±Inf: they are pure formulas whose callers construct the arguments,
// so an out-of-range value is a programming error, and the sweep grid —
// which enumerates exactly these edges — must be able to rely on a loud
// failure rather than a poisoned certificate. The panic values wrap
// ErrBadT / ErrBadN / ErrBadP so recovering callers can errors.Is them.

// Validation errors for bound parameters (ErrBadT lives in balance.go).
var (
	// ErrBadN is returned (via panic) for party counts n ≤ 0.
	ErrBadN = errors.New("core: party count n out of range")
	// ErrBadP is returned (via panic) for Gordon–Katz parameters p ≤ 0.
	ErrBadP = errors.New("core: partial-fairness parameter p out of range")
)

// checkN panics unless n ≥ 1.
func checkN(fn string, n int) {
	if n <= 0 {
		panic(fmt.Errorf("%w: %s(n=%d)", ErrBadN, fn, n))
	}
}

// checkT panics unless 0 ≤ t ≤ n.
func checkT(fn string, n, t int) {
	if t < 0 || t > n {
		panic(fmt.Errorf("%w: %s(n=%d, t=%d)", ErrBadT, fn, n, t))
	}
}

// TwoPartyOptimalBound is (γ10 + γ11)/2 — the exact optimal-fairness
// value for general two-party SFE (Theorems 3 and 4): ΠOpt-2SFE's best
// attacker earns at most this, and for the swap function no protocol does
// better.
func TwoPartyOptimalBound(g Payoff) float64 {
	return (g.G10 + g.G11) / 2
}

// TwoPartyLowerPairSum is γ10 + γ11 — Lemma 7's bound on the *sum* of the
// utilities of the two one-sided strategies A1 and A2 against any secure
// swap protocol.
func TwoPartyLowerPairSum(g Payoff) float64 {
	return g.G10 + g.G11
}

// MultiPartyTBound is (t·γ10 + (n−t)·γ11)/n — Lemma 11's bound on any
// t-adversary against ΠOpt-nSFE. It panics (wrapping ErrBadN/ErrBadT)
// for n ≤ 0 or t outside 0..n; the degenerate ends t = 0 and t = n are
// allowed and give γ11 and γ10.
func MultiPartyTBound(g Payoff, n, t int) float64 {
	checkN("MultiPartyTBound", n)
	checkT("MultiPartyTBound", n, t)
	return (float64(t)*g.G10 + float64(n-t)*g.G11) / float64(n)
}

// MultiPartyOptimalBound is ((n−1)·γ10 + γ11)/n — the sup over t of
// Lemma 11 (t = n−1), matched by the Lemma 13 lower bound for the
// concatenation function. Panics (wrapping ErrBadN) for n ≤ 0.
func MultiPartyOptimalBound(g Payoff, n int) float64 {
	checkN("MultiPartyOptimalBound", n)
	return MultiPartyTBound(g, n, n-1)
}

// BalancedSumBound is (n−1)(γ10 + γ11)/2 — Lemma 14's bound on the sum of
// best-t-adversary utilities for t = 1..n−1, tight by Lemma 16; the
// defining quantity of utility-balanced fairness (Definition 5). Panics
// (wrapping ErrBadN) for n ≤ 0.
func BalancedSumBound(g Payoff, n int) float64 {
	checkN("BalancedSumBound", n)
	return float64(n-1) * (g.G10 + g.G11) / 2
}

// GMWEvenNSumLowerBound is the Lemma 17 lower bound for Π_GMW^{1/2} with
// an even number of parties: the sum of best t-adversary utilities is at
// least (n/2)·γ10 + (n/2−1)·γ11 = (n−1)(γ10+γ11)/2 + (γ10−γ11)/2 —
// exceeding BalancedSumBound by exactly (γ10−γ11)/2, so the protocol is
// not utility balanced. (For n/2 ≤ t ≤ n−1 the best adversary earns γ10;
// for t < n/2 it earns γ11.)
func GMWEvenNSumLowerBound(g Payoff, n int) float64 {
	checkN("GMWEvenNSumLowerBound", n)
	if n%2 != 0 {
		return BalancedSumBound(g, n)
	}
	half := n / 2
	return float64(n-half)*g.G10 + float64(half-1)*g.G11
}

// IdealBound is the utility of the best adversary against the fully fair
// functionality F_sfe (the dummy protocol Φ of Definition 19): it may
// complete (E11), abort losing the output (E00), or stay out (E01); for
// ~γ ∈ Γ+fair the best choice is E11, i.e. γ11.
func IdealBound(g Payoff) float64 {
	return maxf(g.G11, maxf(g.G00, g.G01))
}

// GordonKatzBound is ((p−1)·γ11 + γ10)/p — the utility ceiling achieved
// by the Gordon–Katz 1/p-secure protocols (Section 5): fairness holds
// with probability (p−1)/p (event E11 at best) and fails with
// probability 1/p (event E10). Panics (wrapping ErrBadP) for p ≤ 0.
func GordonKatzBound(g Payoff, p int) float64 {
	if p <= 0 {
		panic(fmt.Errorf("%w: GordonKatzBound(p=%d)", ErrBadP, p))
	}
	return (float64(p-1)*g.G11 + g.G10) / float64(p)
}

// Lemma18SumLowerBound is the sum (3n−1)γ10/(2n) + (n+1)γ11/(2n) of the
// single-corruption and (n−1)-corruption attackers' utilities against the
// Lemma 18 protocol — strictly above 2/(n−1)·BalancedSumBound's per-pair
// share, witnessing that optimal fairness does not imply utility balance.
func Lemma18SumLowerBound(g Payoff, n int) float64 {
	checkN("Lemma18SumLowerBound", n)
	nn := float64(n)
	return ((3*nn-1)*g.G10 + (nn+1)*g.G11) / (2 * nn)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// GKFirstHitExact is the exact success probability of the first-hit abort
// against a Gordon–Katz iterated-reveal protocol with a uniform switch
// round i* over r iterations and per-round fake-hit probability h (the
// chance a pre-switch value coincides with the real output):
//
//	Pr[E10] = (1/r)·Σ_{k=1..r} (1−h)^{k−1} = (1−(1−h)^r)/(r·h),
//
// which is ≤ 1/(r·h); with r = p/h this is the 1/p bound of Theorems
// 23/24. Used to cross-check the Monte-Carlo measurements exactly.
//
// At h = 0 the attack succeeds with certainty: no fake value ever
// coincides with the real output, so the first hit is the switch round i*
// itself, whichever round that is — Σ_{k=1..r} (1−0)^{k−1}/r = 1, the
// continuous extension of the closed form. (The attacker still aborts
// before its round-i* message goes out, so the honest party is left with
// the F_sfe^$ fallback: event E10 in every run.)
func GKFirstHitExact(r int, h float64) float64 {
	if h > 1 || h != h {
		panic(fmt.Errorf("%w: GKFirstHitExact(h=%v) outside [0,1]", ErrBadP, h))
	}
	if r <= 0 {
		return 0
	}
	if h <= 0 {
		return 1 // the first hit is i* itself, in every run
	}
	acc := 1.0
	q := 1 - h
	for k := 1; k < r; k++ {
		acc = acc*q + 1
	}
	return acc / float64(r)
}
