package core

import (
	"errors"
	"fmt"

	"repro/internal/mathx"
)

// Utility-balanced fairness (Definition 5), φ-fairness (Definition 21),
// corruption costs and ideal ~γ^C-fairness (Definitions 19–20, Theorem 6).

// PerTUtilities holds u_A(Π, A_t) for the best t-adversary, t = 1..n−1
// (index 0 ↔ t = 1). The t = 0 and t = n cases are excluded from balance
// sums, as in Definition 5 (their utilities are γ01 and γ11 by
// definition for every protocol).
type PerTUtilities []float64

// Sum returns Σ_t u_A(Π, A_t).
func (p PerTUtilities) Sum() float64 { return mathx.SumFloat(p) }

// ErrBadT is returned for out-of-range corruption counts.
var ErrBadT = errors.New("core: corruption count t out of range")

// At returns the utility of the best t-adversary (1 ≤ t ≤ n−1).
func (p PerTUtilities) At(t int) (float64, error) {
	if t < 1 || t > len(p) {
		return 0, fmt.Errorf("%w: t=%d with n-1=%d", ErrBadT, t, len(p))
	}
	return p[t-1], nil
}

// IsUtilityBalanced reports whether the per-t utilities meet the
// utility-balanced criterion: their sum does not exceed the optimal value
// (n−1)(γ10+γ11)/2 by more than tol. By Lemmas 14 and 16 this sum is both
// achievable and unimprovable, so "≤ bound + tol" characterizes balance
// (the paper: exceeding the bound non-negligibly ⇒ not utility-balanced).
func IsUtilityBalanced(p PerTUtilities, g Payoff, tol float64) bool {
	n := len(p) + 1
	return mathx.LessOrApprox(p.Sum(), BalancedSumBound(g, n), tol)
}

// CostFn is a corruption-cost function c: [n] → R with C(I) = c(|I|),
// the symmetric case of Theorem 6.
type CostFn func(t int) float64

// ZeroCost is the free-corruption cost function.
func ZeroCost(int) float64 { return 0 }

// LinearCost charges perParty per corruption.
func LinearCost(perParty float64) CostFn {
	return func(t int) float64 { return perParty * float64(t) }
}

// OptimalCost is the optimal cost function of Theorem 6 in the explicit
// form of Lemma 22: c(t) = φ(t) − s(t) with φ(t) = u_A(Π, A_t) the best
// t-adversary's cost-free utility and s(t) = IdealBound(g) the payoff of
// the best t-adversary against the fully fair dummy protocol. Under this
// cost, the cost-adjusted utility u(t) − c(t) equals the ideal payoff
// exactly, so Π is ideally ~γ^C-fair, and by Theorem 6(2) no protocol is
// ideally fair under a strictly dominated (cheaper) cost function.
func OptimalCost(p PerTUtilities, g Payoff) CostFn {
	ideal := IdealBound(g)
	return func(t int) float64 {
		u, err := p.At(t)
		if err != nil {
			return 0
		}
		return u - ideal
	}
}

// UtilityWithCost is the cost-adjusted payoff of Equation (5) for a
// symmetric cost function: u − c(t).
func UtilityWithCost(u float64, t int, c CostFn) float64 {
	return u - c(t)
}

// Dominates reports whether c1 weakly dominates c2 on t = 1..n−1
// (Definition 20): c1(t) ≥ c2(t) − tol everywhere.
func Dominates(c1, c2 CostFn, n int, tol float64) bool {
	for t := 1; t <= n-1; t++ {
		if !mathx.GreaterOrApprox(c1(t), c2(t), tol) {
			return false
		}
	}
	return true
}

// StrictlyDominates reports whether c1(t) > c2(t) + tol for every t
// (Definition 20's strict version).
func StrictlyDominates(c1, c2 CostFn, n int, tol float64) bool {
	for t := 1; t <= n-1; t++ {
		if c1(t) <= c2(t)+tol {
			return false
		}
	}
	return true
}

// IsPhiFair reports whether the measured per-t utilities satisfy
// Definition 21: u_A(Π, A_t) ≤ φ(t) + tol for every t.
func IsPhiFair(p PerTUtilities, phi func(int) float64, tol float64) bool {
	for t := 1; t <= len(p); t++ {
		u, err := p.At(t)
		if err != nil {
			return false
		}
		if !mathx.LessOrApprox(u, phi(t), tol) {
			return false
		}
	}
	return true
}

// IsIdeallyCFair checks ideal ~γ^C-fairness (Definition 19 via Lemma 22)
// for a symmetric cost function: the cost-adjusted utility of the best
// t-adversary, u(t) − c(t), must not exceed s(t), the payoff of the best
// t-adversary against the dummy F_sfe-hybrid protocol Φ. For ~γ ∈ Γ+fair
// and t ≥ 1, s(t) = γ11 = IdealBound(g) (against the fully fair
// functionality the best the adversary can do is let the run complete).
func IsIdeallyCFair(p PerTUtilities, g Payoff, c CostFn, tol float64) bool {
	ideal := IdealBound(g)
	for t := 1; t <= len(p); t++ {
		u, err := p.At(t)
		if err != nil {
			return false
		}
		if !mathx.LessOrApprox(u-c(t), ideal, tol) {
			return false
		}
	}
	return true
}
