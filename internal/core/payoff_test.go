package core

import (
	"errors"
	"math"
	"testing"
)

func TestEventString(t *testing.T) {
	tests := []struct {
		e    Event
		want string
	}{
		{E00, "E00"}, {E01, "E01"}, {E10, "E10"}, {E11, "E11"}, {Event(42), "Event(42)"},
	}
	for _, tt := range tests {
		if got := tt.e.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestEventsOrder(t *testing.T) {
	es := Events()
	if len(es) != 4 || es[0] != E00 || es[3] != E11 {
		t.Errorf("Events() = %v", es)
	}
}

func TestPayoffOf(t *testing.T) {
	p := Payoff{G00: 1, G01: 2, G10: 3, G11: 4}
	if p.Of(E00) != 1 || p.Of(E01) != 2 || p.Of(E10) != 3 || p.Of(E11) != 4 {
		t.Error("Of mismatch")
	}
	if p.Of(Event(9)) != 0 {
		t.Error("unknown event should pay 0")
	}
}

func TestValidateFair(t *testing.T) {
	tests := []struct {
		name string
		p    Payoff
		ok   bool
	}{
		{"standard", StandardPayoff(), true},
		{"gordon-katz", GordonKatzPayoff(), true},
		{"gamma01 nonzero", Payoff{G01: 0.1, G10: 1}, false},
		{"gamma10 not max", Payoff{G00: 2, G10: 1, G11: 0.5}, false},
		{"gamma10 equals gamma11", Payoff{G10: 1, G11: 1}, false},
		{"negative gamma00", Payoff{G00: -1, G10: 1}, false},
		{"negative gamma11", Payoff{G11: -1, G10: 1}, false},
		{"all-zero", Payoff{}, false},
		{"valid asymmetric", Payoff{G00: 0.9, G01: 0, G10: 1, G11: 0.2}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.ValidateFair()
			if tt.ok && err != nil {
				t.Errorf("ValidateFair() = %v, want nil", err)
			}
			if !tt.ok && !errors.Is(err, ErrNotFair) {
				t.Errorf("ValidateFair() = %v, want ErrNotFair", err)
			}
		})
	}
}

func TestValidateFairPlus(t *testing.T) {
	if err := StandardPayoff().ValidateFairPlus(); err != nil {
		t.Errorf("standard payoff should be Γ+fair: %v", err)
	}
	// γ00 > γ11: in Γfair but not Γ+fair.
	p := Payoff{G00: 0.9, G01: 0, G10: 1, G11: 0.2}
	if err := p.ValidateFair(); err != nil {
		t.Fatalf("fixture should be Γfair: %v", err)
	}
	if err := p.ValidateFairPlus(); !errors.Is(err, ErrNotFairPlus) {
		t.Errorf("ValidateFairPlus() = %v, want ErrNotFairPlus", err)
	}
	// Not even Γfair.
	if err := (Payoff{G01: 1}).ValidateFairPlus(); !errors.Is(err, ErrNotFairPlus) {
		t.Error("invalid payoff should fail Γ+fair")
	}
}

func TestBounds(t *testing.T) {
	g := StandardPayoff() // γ10=1, γ11=0.5
	approx := func(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

	if got := TwoPartyOptimalBound(g); !approx(got, 0.75) {
		t.Errorf("TwoPartyOptimalBound = %v, want 0.75", got)
	}
	if got := TwoPartyLowerPairSum(g); !approx(got, 1.5) {
		t.Errorf("TwoPartyLowerPairSum = %v, want 1.5", got)
	}
	if got := MultiPartyTBound(g, 5, 2); !approx(got, (2*1+3*0.5)/5) {
		t.Errorf("MultiPartyTBound(5,2) = %v", got)
	}
	if got := MultiPartyOptimalBound(g, 5); !approx(got, (4*1+0.5)/5) {
		t.Errorf("MultiPartyOptimalBound(5) = %v", got)
	}
	if got := BalancedSumBound(g, 5); !approx(got, 4*1.5/2) {
		t.Errorf("BalancedSumBound(5) = %v", got)
	}
	if got := IdealBound(g); !approx(got, 0.5) {
		t.Errorf("IdealBound = %v, want γ11", got)
	}
	if got := GordonKatzBound(g, 4); !approx(got, (3*0.5+1)/4) {
		t.Errorf("GordonKatzBound(4) = %v", got)
	}
	// For p=1 (no fairness at all) the bound is γ10.
	if got := GordonKatzBound(g, 1); !approx(got, 1) {
		t.Errorf("GordonKatzBound(1) = %v, want γ10", got)
	}
}

func TestGMWEvenNSumLowerBound(t *testing.T) {
	g := StandardPayoff()
	// n=4: t=2,3 earn γ10; t=1 earns γ11 → 2·1 + 1·0.5 = 2.5, strictly
	// above the balanced bound 3·1.5/2 = 2.25.
	got := GMWEvenNSumLowerBound(g, 4)
	if math.Abs(got-2.5) > 1e-12 {
		t.Errorf("GMWEvenNSumLowerBound(4) = %v, want 2.5", got)
	}
	if got <= BalancedSumBound(g, 4) {
		t.Error("even-n GMW bound must exceed the balanced bound")
	}
	// Odd n: reduces to the balanced bound.
	if GMWEvenNSumLowerBound(g, 5) != BalancedSumBound(g, 5) {
		t.Error("odd n should give the balanced bound")
	}
}

func TestLemma18SumLowerBound(t *testing.T) {
	g := StandardPayoff()
	// n=4: (3·4−1)·1/(2·4) + (4+1)·0.5/(2·4) = 11/8 + 2.5/8 = 13.5/8.
	got := Lemma18SumLowerBound(g, 4)
	want := (11.0 + 2.5) / 8.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Lemma18SumLowerBound(4) = %v, want %v", got, want)
	}
	// It must exceed the two-adversary share of the balanced optimum,
	// 2·(γ10+γ11)/2·... i.e. the pair bound γ10+γ11 = 1.5? The paper's
	// point: the two utilities sum above what a balanced protocol allows
	// for the same pair (t=1 plus t=n−1 contribute (γ10+γ11) in the
	// balanced optimum by Lemma 15's tightness).
	if got <= TwoPartyLowerPairSum(g)+1e-12 {
		t.Errorf("Lemma18 sum %v should exceed pair bound %v", got, TwoPartyLowerPairSum(g))
	}
}

func TestGKFirstHitExact(t *testing.T) {
	// Closed form vs direct series.
	direct := func(r int, h float64) float64 {
		sum := 0.0
		for k := 1; k <= r; k++ {
			sum += math.Pow(1-h, float64(k-1))
		}
		return sum / float64(r)
	}
	for _, tc := range []struct {
		r int
		h float64
	}{{4, 0.5}, {8, 0.5}, {16, 0.25}, {32, 0.125}} {
		got := GKFirstHitExact(tc.r, tc.h)
		want := direct(tc.r, tc.h)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("r=%d h=%v: %v vs %v", tc.r, tc.h, got, want)
		}
		// And the 1/(r·h) ceiling.
		if got > 1/(float64(tc.r)*tc.h)+1e-12 {
			t.Errorf("r=%d h=%v: %v exceeds 1/(r·h)", tc.r, tc.h, got)
		}
	}
	if GKFirstHitExact(0, 0.5) != 0 {
		t.Error("r=0")
	}
}

// TestGKFirstHitExactZeroH pins the h→0 behaviour: with no fake hits the
// attacker's first hit is the switch round i* itself, so Pr[E10] = 1 —
// the closed form (1−(1−h)^r)/(r·h) tends to 1 as h→0⁺, and the h = 0
// branch must agree with that limit (regression: it used to return 1/r).
func TestGKFirstHitExactZeroH(t *testing.T) {
	if got := GKFirstHitExact(10, 0); got != 1 {
		t.Errorf("GKFirstHitExact(10, 0) = %v, want 1", got)
	}
	if got := GKFirstHitExact(1, 0); got != 1 {
		t.Errorf("GKFirstHitExact(1, 0) = %v, want 1", got)
	}
	// Continuity from above: the value approaches 1 monotonically as h
	// shrinks, for several r.
	for _, r := range []int{2, 10, 64} {
		prev := GKFirstHitExact(r, 0.5)
		for _, h := range []float64{0.25, 1e-1, 1e-2, 1e-4, 1e-8} {
			got := GKFirstHitExact(r, h)
			if got < prev-1e-15 {
				t.Errorf("r=%d: value decreased from %v to %v as h shrank to %v", r, prev, got, h)
			}
			if got > 1+1e-12 {
				t.Errorf("r=%d h=%v: %v exceeds 1", r, h, got)
			}
			prev = got
		}
		// The h→0⁺ limit is the h=0 branch.
		limit := GKFirstHitExact(r, 1e-12)
		if math.Abs(limit-GKFirstHitExact(r, 0)) > 1e-6 {
			t.Errorf("r=%d: limit %v disagrees with h=0 value %v", r, limit, GKFirstHitExact(r, 0))
		}
	}
}

// TestGordonKatzPayoffClasses pins the doc-comment claim: ~γ = (0,0,1,0)
// is in Γ+fair (γ00 = γ11 = 0 is allowed — the chain 0 ≤ γ00 ≤ γ11 < γ10
// holds with equality in the middle) and therefore also in Γfair.
func TestGordonKatzPayoffClasses(t *testing.T) {
	g := GordonKatzPayoff()
	if err := g.ValidateFair(); err != nil {
		t.Errorf("GordonKatzPayoff should be Γfair: %v", err)
	}
	if err := g.ValidateFairPlus(); err != nil {
		t.Errorf("GordonKatzPayoff should be Γ+fair: %v", err)
	}
}

// TestGMWEvenNExcess pins the Lemma 17 excess: for even n the per-t sum
// lower bound exceeds the balanced bound by exactly (γ10−γ11)/2 (the
// quantity DESIGN.md §3 row E8 cites).
func TestGMWEvenNExcess(t *testing.T) {
	for _, g := range []Payoff{StandardPayoff(), GordonKatzPayoff(), {G00: 0.1, G10: 2, G11: 0.7}} {
		for _, n := range []int{4, 6, 10} {
			excess := GMWEvenNSumLowerBound(g, n) - BalancedSumBound(g, n)
			want := (g.G10 - g.G11) / 2
			if math.Abs(excess-want) > 1e-12 {
				t.Errorf("gamma=%+v n=%d: excess = %v, want (γ10−γ11)/2 = %v", g, n, excess, want)
			}
		}
	}
}
