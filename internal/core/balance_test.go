package core

import (
	"errors"
	"math"
	"testing"
)

func TestPerTUtilities(t *testing.T) {
	p := PerTUtilities{0.6, 0.7, 0.8} // n = 4
	if got := p.Sum(); math.Abs(got-2.1) > 1e-12 {
		t.Errorf("Sum = %v", got)
	}
	u, err := p.At(2)
	if err != nil || u != 0.7 {
		t.Errorf("At(2) = %v, %v", u, err)
	}
	if _, err := p.At(0); !errors.Is(err, ErrBadT) {
		t.Errorf("At(0) err = %v", err)
	}
	if _, err := p.At(4); !errors.Is(err, ErrBadT) {
		t.Errorf("At(4) err = %v", err)
	}
}

func TestIsUtilityBalanced(t *testing.T) {
	g := StandardPayoff() // balanced bound for n=4: 3·1.5/2 = 2.25
	balanced := PerTUtilities{
		MultiPartyTBound(g, 4, 1),
		MultiPartyTBound(g, 4, 2),
		MultiPartyTBound(g, 4, 3),
	}
	if !IsUtilityBalanced(balanced, g, 0.01) {
		t.Errorf("ΠOpt-nSFE per-t utilities (sum %v) should be balanced (bound %v)",
			balanced.Sum(), BalancedSumBound(g, 4))
	}
	// The Lemma 17 even-n GMW utilities: t≥n/2 earn γ10, t<n/2 earn γ11.
	gmw := PerTUtilities{g.G11, g.G10, g.G10}
	if IsUtilityBalanced(gmw, g, 0.01) {
		t.Errorf("even-n GMW utilities (sum %v) must NOT be balanced (bound %v)",
			gmw.Sum(), BalancedSumBound(g, 4))
	}
}

func TestCostFunctions(t *testing.T) {
	if ZeroCost(5) != 0 {
		t.Error("ZeroCost")
	}
	c := LinearCost(0.25)
	if c(4) != 1.0 {
		t.Errorf("LinearCost(0.25)(4) = %v", c(4))
	}
	g := StandardPayoff() // IdealBound = 0.5
	p := PerTUtilities{0.6, 0.7, 0.8}
	fc := OptimalCost(p, g)
	if math.Abs(fc(2)-0.2) > 1e-12 {
		t.Errorf("OptimalCost(2) = %v, want u(2)−γ11 = 0.2", fc(2))
	}
	if fc(0) != 0 || fc(9) != 0 {
		t.Error("out-of-range cost should be 0")
	}
	if got := UtilityWithCost(0.9, 2, fc); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("UtilityWithCost = %v", got)
	}
}

func TestDominance(t *testing.T) {
	c1 := LinearCost(0.5)
	c2 := LinearCost(0.25)
	if !Dominates(c1, c2, 4, 0) {
		t.Error("0.5t should dominate 0.25t")
	}
	if Dominates(c2, c1, 4, 0) {
		t.Error("0.25t should not dominate 0.5t")
	}
	if !StrictlyDominates(c1, c2, 4, 0) {
		t.Error("0.5t should strictly dominate 0.25t")
	}
	if StrictlyDominates(c1, c1, 4, 0) {
		t.Error("no strict self-dominance")
	}
	if !Dominates(c1, c1, 4, 1e-9) {
		t.Error("weak self-dominance")
	}
}

func TestIsPhiFair(t *testing.T) {
	g := StandardPayoff()
	p := PerTUtilities{
		MultiPartyTBound(g, 4, 1),
		MultiPartyTBound(g, 4, 2),
		MultiPartyTBound(g, 4, 3),
	}
	phi := func(t int) float64 { return MultiPartyTBound(g, 4, t) }
	if !IsPhiFair(p, phi, 0.001) {
		t.Error("per-t bounds should be φ-fair for φ = the bounds themselves")
	}
	tooTight := func(int) float64 { return 0.1 }
	if IsPhiFair(p, tooTight, 0.001) {
		t.Error("φ ≡ 0.1 should fail")
	}
}

func TestIsIdeallyCFair(t *testing.T) {
	g := StandardPayoff() // IdealBound = γ11 = 0.5
	p := PerTUtilities{0.625, 0.75, 0.875}
	// Theorem 6(1) via Lemma 22: with c(t) = u(t) − s(t) the protocol is
	// ideally γ^C-fair because u(t) − c(t) = γ11 exactly.
	opt := OptimalCost(p, g)
	if !IsIdeallyCFair(p, g, opt, 1e-9) {
		t.Error("optimal cost should make the protocol ideally fair")
	}
	// Zero cost: u(t) > γ11 for every t here, so not ideally fair.
	if IsIdeallyCFair(p, g, ZeroCost, 1e-9) {
		t.Error("free corruption should not be ideally fair for these utilities")
	}
	// The Theorem 6(2) shape: a strictly dominated (cheaper) cost
	// function fails ideal fairness for the same utilities.
	lower := func(t int) float64 { return opt(t) - 0.2 }
	if IsIdeallyCFair(p, g, lower, 1e-9) {
		t.Error("strictly dominated cost function should fail ideal fairness")
	}
	if !StrictlyDominates(opt, lower, 4, 0) {
		t.Error("fixture: optimal cost should strictly dominate the lowered cost")
	}
}
