package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// flipProtocol is a two-party test protocol whose only adversarial lever
// is withholding the round-1 message: party machines exchange inputs and
// output the XOR. A corrupted party that stays silent denies the honest
// party its output while (having seen the honest message first — rushing)
// learning the result itself.
type flipProtocol struct{}

func (flipProtocol) Name() string                                       { return "test-flip" }
func (flipProtocol) NumParties() int                                    { return 2 }
func (flipProtocol) NumRounds() int                                     { return 1 }
func (flipProtocol) DefaultInput(sim.PartyID) sim.Value                 { return uint64(0) }
func (flipProtocol) Setup([]sim.Value, *rand.Rand) ([]sim.Value, error) { return nil, nil }
func (flipProtocol) Func(in []sim.Value) sim.Value {
	return in[0].(uint64) ^ in[1].(uint64)
}

func (flipProtocol) NewParty(id sim.PartyID, input sim.Value, _ sim.Value, _ bool, _ *rand.Rand) (sim.Party, error) {
	return &flipParty{id: id, input: input.(uint64)}, nil
}

type flipParty struct {
	id     sim.PartyID
	input  uint64
	result uint64
	done   bool
}

func (p *flipParty) Round(round int, inbox []sim.Message) ([]sim.Message, error) {
	switch round {
	case 1:
		return []sim.Message{{From: p.id, To: sim.PartyID(3 - int(p.id)), Payload: p.input}}, nil
	case 2:
		for _, m := range inbox {
			if v, ok := m.Payload.(uint64); ok {
				p.result, p.done = p.input^v, true
			}
		}
	}
	return nil, nil
}

func (p *flipParty) Output() (sim.Value, bool) {
	if !p.done {
		return nil, false
	}
	return p.result, true
}
func (p *flipParty) Clone() sim.Party { cp := *p; return &cp }

// grabber corrupts party 1, reads the honest round-1 message (rushing),
// learns the output, and never responds — the maximal unfair strategy
// for flipProtocol.
type grabber struct {
	ctx     *sim.AdvContext
	learned sim.Value
	ok      bool
}

func (g *grabber) Reset(ctx *sim.AdvContext)                            { g.ctx, g.learned, g.ok = ctx, nil, false }
func (g *grabber) InitialCorruptions() []sim.PartyID                    { return []sim.PartyID{1} }
func (g *grabber) SubstituteInput(_ sim.PartyID, v sim.Value) sim.Value { return v }
func (g *grabber) ObserveSetup(map[sim.PartyID]sim.Value) bool          { return false }
func (g *grabber) CorruptBefore(int) []sim.PartyID                      { return nil }
func (g *grabber) OnCorrupt(sim.PartyID, sim.Party, sim.Value)          {}
func (g *grabber) Act(round int, _ map[sim.PartyID][]sim.Message, rushed []sim.Message) []sim.Message {
	if round == 1 {
		for _, m := range rushed {
			if v, ok := m.Payload.(uint64); ok {
				g.learned = g.ctx.Inputs[0].(uint64) ^ v
				g.ok = true
			}
		}
	}
	return nil
}
func (g *grabber) Learned() (sim.Value, bool) { return g.learned, g.ok }

// CloneAdversary lets the parallel-estimation tests hand each worker its
// own grabber (the strategy is stateful across a run).
func (g *grabber) CloneAdversary() sim.Adversary { return &grabber{} }

func uniformInputs(r *rand.Rand) []sim.Value {
	return []sim.Value{uint64(r.Intn(16)), uint64(r.Intn(16))}
}

func TestEstimateUtilityPassive(t *testing.T) {
	rep, err := EstimateUtility(flipProtocol{}, sim.Passive{}, StandardPayoff(), uniformInputs, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Passive ⇒ always E01 ⇒ utility γ01 = 0.
	if rep.Utility.Mean != 0 {
		t.Errorf("passive utility = %v, want 0", rep.Utility.Mean)
	}
	if rep.EventFreq[E01] != 1 {
		t.Errorf("E01 freq = %v, want 1", rep.EventFreq[E01])
	}
	if rep.MeanCorrupted != 0 {
		t.Errorf("mean corrupted = %v, want 0", rep.MeanCorrupted)
	}
	if rep.Runs != 200 {
		t.Errorf("runs = %d", rep.Runs)
	}
}

func TestEstimateUtilityGrabber(t *testing.T) {
	g := StandardPayoff()
	rep, err := EstimateUtility(flipProtocol{}, &grabber{}, g, uniformInputs, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The grabber always provokes E10 against this (maximally unfair)
	// protocol, earning γ10 every run.
	if rep.EventFreq[E10] != 1 {
		t.Errorf("E10 freq = %v, want 1 (events: %v)", rep.EventFreq[E10], rep.EventFreq)
	}
	if math.Abs(rep.Utility.Mean-g.G10) > 1e-9 {
		t.Errorf("utility = %v, want γ10 = %v", rep.Utility.Mean, g.G10)
	}
}

func TestEstimateUtilityErrors(t *testing.T) {
	if _, err := EstimateUtility(flipProtocol{}, sim.Passive{}, StandardPayoff(), uniformInputs, 0, 1); !errors.Is(err, ErrNoRuns) {
		t.Errorf("runs=0: %v, want ErrNoRuns", err)
	}
}

func TestEstimateUtilityDeterministic(t *testing.T) {
	r1, err := EstimateUtility(flipProtocol{}, &grabber{}, StandardPayoff(), uniformInputs, 50, 77)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := EstimateUtility(flipProtocol{}, &grabber{}, StandardPayoff(), uniformInputs, 50, 77)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Utility.Mean != r2.Utility.Mean {
		t.Error("same seed produced different estimates")
	}
}

func TestFixedInputs(t *testing.T) {
	s := FixedInputs(uint64(1), uint64(2))
	got := s(rand.New(rand.NewSource(1)))
	if len(got) != 2 || got[0] != uint64(1) || got[1] != uint64(2) {
		t.Errorf("FixedInputs sampler = %v", got)
	}
	// Mutating the returned slice must not affect later draws.
	got[0] = uint64(9)
	again := s(rand.New(rand.NewSource(1)))
	if again[0] != uint64(1) {
		t.Error("FixedInputs aliases its backing slice")
	}
}

func TestSupUtility(t *testing.T) {
	advs := []NamedAdversary{
		{Name: "passive", Adv: sim.Passive{}},
		{Name: "grabber", Adv: &grabber{}},
	}
	rep, err := SupUtility(flipProtocol{}, advs, StandardPayoff(), uniformInputs, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best != "grabber" {
		t.Errorf("best = %q, want grabber", rep.Best)
	}
	if len(rep.All) != 2 {
		t.Errorf("All has %d entries", len(rep.All))
	}
	if rep.All["passive"].Utility.Mean >= rep.All["grabber"].Utility.Mean {
		t.Error("grabber should dominate passive")
	}
}

func TestSupUtilityEmpty(t *testing.T) {
	if _, err := SupUtility(flipProtocol{}, nil, StandardPayoff(), uniformInputs, 10, 1); err == nil {
		t.Error("empty strategy space accepted")
	}
}

func TestCompareRelation(t *testing.T) {
	a := stats.Estimate{Mean: 0.5}
	b := stats.Estimate{Mean: 0.9}
	if got := Compare(a, b, 0.01); got != StrictlyFairer {
		t.Errorf("Compare = %v, want StrictlyFairer", got)
	}
	if got := Compare(b, a, 0.01); got != StrictlyLessFair {
		t.Errorf("Compare = %v, want StrictlyLessFair", got)
	}
	if got := Compare(a, stats.Estimate{Mean: 0.505}, 0.01); got != EquallyFair {
		t.Errorf("Compare = %v, want EquallyFair", got)
	}
	if !AtLeastAsFair(a, b, 0.01) {
		t.Error("0.5 should be at least as fair as 0.9")
	}
	if AtLeastAsFair(b, a, 0.01) {
		t.Error("0.9 is not at least as fair as 0.5")
	}
	if !AtLeastAsFair(a, a, 0.01) {
		t.Error("reflexivity")
	}
}

func TestRelationString(t *testing.T) {
	if StrictlyFairer.String() != "strictly fairer" ||
		EquallyFair.String() != "equally fair" ||
		StrictlyLessFair.String() != "strictly less fair" {
		t.Error("relation names")
	}
	if Relation(9).String() != "Relation(9)" {
		t.Error("unknown relation name")
	}
}

func TestUtilityReportString(t *testing.T) {
	rep := UtilityReport{
		Utility:   stats.Estimate{Mean: 0.75, HalfWidth: 0.01, N: 100},
		EventFreq: map[Event]float64{E10: 0.5, E11: 0.5},
	}
	s := rep.String()
	if s == "" {
		t.Error("empty report string")
	}
}
