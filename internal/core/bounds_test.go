package core

import (
	"errors"
	"math"
	"testing"
)

// mustPanicWith runs f and asserts it panics with an error wrapping want.
func mustPanicWith(t *testing.T, want error, name string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("%s: expected panic wrapping %v, got none", name, want)
			return
		}
		err, ok := r.(error)
		if !ok {
			t.Errorf("%s: panic value %v is not an error", name, r)
			return
		}
		if !errors.Is(err, want) {
			t.Errorf("%s: panic %v does not wrap %v", name, err, want)
		}
	}()
	f()
}

func TestBoundValues(t *testing.T) {
	g := StandardPayoff() // (0, 0, 1, 1/2)
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"TwoPartyOptimalBound", TwoPartyOptimalBound(g), 0.75},
		{"TwoPartyLowerPairSum", TwoPartyLowerPairSum(g), 1.5},
		{"MultiPartyTBound n=4 t=2", MultiPartyTBound(g, 4, 2), 0.75},
		{"MultiPartyTBound t=0", MultiPartyTBound(g, 4, 0), g.G11},
		{"MultiPartyTBound t=n", MultiPartyTBound(g, 4, 4), g.G10},
		{"MultiPartyOptimalBound n=4", MultiPartyOptimalBound(g, 4), (3 + 0.5) / 4},
		{"MultiPartyOptimalBound n=1", MultiPartyOptimalBound(g, 1), g.G11},
		{"BalancedSumBound n=5", BalancedSumBound(g, 5), 3},
		{"BalancedSumBound n=1", BalancedSumBound(g, 1), 0},
		{"GordonKatzBound p=4", GordonKatzBound(g, 4), (3*0.5 + 1) / 4},
		{"GordonKatzBound p=1", GordonKatzBound(g, 1), g.G10},
		{"IdealBound", IdealBound(g), g.G11},
		{"GMWEvenNSumLowerBound n=4", GMWEvenNSumLowerBound(g, 4), 2*g.G10 + 1*g.G11},
		{"Lemma18SumLowerBound n=4", Lemma18SumLowerBound(g, 4), (11 + 2.5) / 8},
	}
	for _, c := range cases {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
		if math.IsNaN(c.got) || math.IsInf(c.got, 0) {
			t.Errorf("%s = %v: not finite", c.name, c.got)
		}
	}
}

// TestBoundEdgeValidation pins the loud-failure contract the sweep grid
// relies on: out-of-range n, t, p never produce NaN/±Inf, they panic
// with a value wrapping the package's sentinel errors.
func TestBoundEdgeValidation(t *testing.T) {
	g := StandardPayoff()
	mustPanicWith(t, ErrBadN, "MultiPartyTBound n=0", func() { MultiPartyTBound(g, 0, 0) })
	mustPanicWith(t, ErrBadN, "MultiPartyTBound n=-3", func() { MultiPartyTBound(g, -3, 1) })
	mustPanicWith(t, ErrBadT, "MultiPartyTBound t=-1", func() { MultiPartyTBound(g, 4, -1) })
	mustPanicWith(t, ErrBadT, "MultiPartyTBound t=n+1", func() { MultiPartyTBound(g, 4, 5) })
	mustPanicWith(t, ErrBadN, "MultiPartyOptimalBound n=0", func() { MultiPartyOptimalBound(g, 0) })
	mustPanicWith(t, ErrBadN, "MultiPartyOptimalBound n=-1", func() { MultiPartyOptimalBound(g, -1) })
	mustPanicWith(t, ErrBadN, "BalancedSumBound n=0", func() { BalancedSumBound(g, 0) })
	mustPanicWith(t, ErrBadN, "GMWEvenNSumLowerBound n=0", func() { GMWEvenNSumLowerBound(g, 0) })
	mustPanicWith(t, ErrBadN, "Lemma18SumLowerBound n=0", func() { Lemma18SumLowerBound(g, 0) })
	mustPanicWith(t, ErrBadP, "GordonKatzBound p=0", func() { GordonKatzBound(g, 0) })
	mustPanicWith(t, ErrBadP, "GordonKatzBound p=-2", func() { GordonKatzBound(g, -2) })
	mustPanicWith(t, ErrBadP, "GKFirstHitExact h=1.5", func() { GKFirstHitExact(4, 1.5) })
	mustPanicWith(t, ErrBadP, "GKFirstHitExact h=NaN", func() { GKFirstHitExact(4, math.NaN()) })
}

func TestGKFirstHitExactEdges(t *testing.T) {
	if got := GKFirstHitExact(0, 0.5); got != 0 {
		t.Errorf("r=0: got %v, want 0", got)
	}
	if got := GKFirstHitExact(-1, 0.5); got != 0 {
		t.Errorf("r<0: got %v, want 0", got)
	}
	if got := GKFirstHitExact(6, 0); got != 1 {
		t.Errorf("h=0: got %v, want 1", got)
	}
	// h = 1: every pre-switch round hits, so the attack succeeds only when
	// i* = 1, i.e. with probability 1/r.
	if got := GKFirstHitExact(8, 1); math.Abs(got-1.0/8) > 1e-15 {
		t.Errorf("h=1: got %v, want 1/8", got)
	}
	// The closed form (1−(1−h)^r)/(r·h) matches the recurrence.
	for _, r := range []int{1, 2, 5, 16} {
		for _, h := range []float64{0.1, 0.5, 0.9} {
			want := (1 - math.Pow(1-h, float64(r))) / (float64(r) * h)
			if got := GKFirstHitExact(r, h); math.Abs(got-want) > 1e-12 {
				t.Errorf("GKFirstHitExact(%d, %v) = %v, want %v", r, h, got, want)
			}
			if got := GKFirstHitExact(r, h); got > 1/(float64(r)*h)+1e-12 {
				t.Errorf("GKFirstHitExact(%d, %v) = %v exceeds 1/(r·h)", r, h, got)
			}
		}
	}
}
