package core_test

// Frozen-legacy equivalence: the batched options-based engine must
// reproduce the PR-1 estimator's reports exactly. legacyEstimate and
// legacySup below are verbatim-frozen copies of the original sequential
// implementations (pre-drawn job slice, per-sample tally over
// stats.MeanEstimate, one sim.RunObserved per run) — the same pattern
// parity_test.go uses in internal/sim. Mean, event frequencies, run
// fractions, and metrics are compared bitwise at every parallelism and
// batch size; the half-width, which the engine now derives from event
// counts in canonical order rather than a run-order sample sum, is
// pinned to 1e-12.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/protocols/multiparty"
	"repro/internal/protocols/twoparty"
	"repro/internal/sim"
	"repro/internal/stats"
)

// preparedRun mirrors the legacy estimator's pre-drawn job pair.
type preparedRun struct {
	inputs []sim.Value
	seed   int64
}

func legacyEstimate(proto sim.Protocol, adv sim.Adversary, gamma core.Payoff,
	sampler core.InputSampler, runs int, seed int64) (core.UtilityReport, error) {
	if runs <= 0 {
		return core.UtilityReport{}, core.ErrNoRuns
	}
	seeder := rand.New(rand.NewSource(seed))
	jobs := make([]preparedRun, runs)
	for i := range jobs {
		jobs[i].inputs = sampler(seeder)
		jobs[i].seed = seeder.Int63()
	}
	var metrics sim.Metrics
	outcomes := make([]core.Outcome, runs)
	for i := range jobs {
		tr, err := sim.RunObserved(proto, jobs[i].inputs, adv, jobs[i].seed, &metrics)
		if err != nil {
			return core.UtilityReport{}, fmt.Errorf("core: run %d: %w", i, err)
		}
		outcomes[i] = core.Classify(tr)
	}
	samples := make([]float64, 0, runs)
	events := make(map[core.Event]int, 4)
	violations, breaches, corrupted := 0, 0, 0
	for _, oc := range outcomes {
		events[oc.Event]++
		if oc.CorrectnessViolation {
			violations++
		}
		if oc.PrivacyBreach {
			breaches++
		}
		corrupted += oc.Corrupted
		samples = append(samples, gamma.Of(oc.Event))
	}
	est, err := stats.MeanEstimate(samples)
	if err != nil {
		return core.UtilityReport{}, err
	}
	freq := make(map[core.Event]float64, 4)
	for _, e := range core.Events() {
		freq[e] = float64(events[e]) / float64(runs)
	}
	return core.UtilityReport{
		Utility:               est,
		EventFreq:             freq,
		CorrectnessViolations: float64(violations) / float64(runs),
		PrivacyBreaches:       float64(breaches) / float64(runs),
		MeanCorrupted:         float64(corrupted) / float64(runs),
		Runs:                  runs,
		Metrics:               metrics,
	}, nil
}

func legacySup(proto sim.Protocol, advs []core.NamedAdversary, gamma core.Payoff,
	sampler core.InputSampler, runs int, seed int64) (core.SupReport, error) {
	rep := core.SupReport{All: make(map[string]core.UtilityReport, len(advs))}
	bestU := -1e18
	for i, na := range advs {
		r, err := legacyEstimate(proto, na.Adv, gamma, sampler, runs, seed+int64(i)*7919)
		if err != nil {
			return core.SupReport{}, fmt.Errorf("core: strategy %q: %w", na.Name, err)
		}
		rep.All[na.Name] = r
		rep.Metrics.Add(r.Metrics)
		if r.Utility.Mean > bestU {
			bestU = r.Utility.Mean
			rep.Best = na.Name
			rep.BestReport = r
		}
	}
	return rep, nil
}

// requireEquivalent asserts bitwise equality of everything except the
// half-width, which may differ in the last ulps (count-order vs
// run-order summation).
func requireEquivalent(t *testing.T, label string, want, got core.UtilityReport) {
	t.Helper()
	if want.Utility.Mean != got.Utility.Mean {
		t.Fatalf("%s: mean %v != legacy %v", label, got.Utility.Mean, want.Utility.Mean)
	}
	if want.Utility.N != got.Utility.N || want.Runs != got.Runs {
		t.Fatalf("%s: sample counts diverge: %+v vs %+v", label, got, want)
	}
	if d := math.Abs(want.Utility.HalfWidth - got.Utility.HalfWidth); d > 1e-12 {
		t.Fatalf("%s: half-width drift %g", label, d)
	}
	for _, e := range core.Events() {
		if want.EventFreq[e] != got.EventFreq[e] {
			t.Fatalf("%s: freq[%v] %v != legacy %v", label, e, got.EventFreq[e], want.EventFreq[e])
		}
	}
	if want.CorrectnessViolations != got.CorrectnessViolations ||
		want.PrivacyBreaches != got.PrivacyBreaches ||
		want.MeanCorrupted != got.MeanCorrupted {
		t.Fatalf("%s: run fractions diverge:\nlegacy: %+v\nnew:    %+v", label, want, got)
	}
	if want.Metrics != got.Metrics {
		t.Fatalf("%s: metrics diverge: %+v vs %+v", label, got.Metrics, want.Metrics)
	}
}

type equivCase struct {
	name    string
	proto   func() (sim.Protocol, error)
	newAdv  func() sim.Adversary
	sampler core.InputSampler
}

func equivCases(t *testing.T) []equivCase {
	t.Helper()
	two := func(r *rand.Rand) []sim.Value {
		return []sim.Value{uint64(r.Intn(256)), uint64(r.Intn(256))}
	}
	four := func(r *rand.Rand) []sim.Value {
		in := make([]sim.Value, 4)
		for i := range in {
			in[i] = uint64(r.Intn(16))
		}
		return in
	}
	gmw := func() (sim.Protocol, error) {
		fn, err := multiparty.Concat(4, 4)
		if err != nil {
			return nil, err
		}
		return multiparty.NewGMWHalf(fn), nil
	}
	return []equivCase{
		{"2sfe-opt/lock-abort:1", func() (sim.Protocol, error) { return twoparty.New(twoparty.Swap()), nil },
			func() sim.Adversary { return adversary.NewLockAbort(1) }, two},
		{"2sfe-opt/lock-abort:2", func() (sim.Protocol, error) { return twoparty.New(twoparty.Swap()), nil },
			func() sim.Adversary { return adversary.NewLockAbort(2) }, two},
		{"2sfe-opt/abort-at", func() (sim.Protocol, error) { return twoparty.New(twoparty.Swap()), nil },
			func() sim.Adversary { return adversary.NewAbortAt(3, 1) }, two},
		{"2sfe-opt/setup-abort", func() (sim.Protocol, error) { return twoparty.New(twoparty.Swap()), nil },
			func() sim.Adversary { return adversary.NewSetupAbort(2) }, two},
		{"2sfe-opt/agen", func() (sim.Protocol, error) { return twoparty.New(twoparty.Swap()), nil },
			func() sim.Adversary { return adversary.NewAgen() }, two},
		{"nsfe-opt/setup-attack", gmw,
			func() sim.Adversary { return multiparty.NewGMWSetupAttacker(1, 2) }, four},
		{"nsfe-opt/static", gmw,
			func() sim.Adversary { return adversary.NewStatic(2, 4) }, four},
	}
}

// TestEngineMatchesLegacyEstimate is the equivalence matrix for the
// options-based estimator: protocol × adversary × seed, at every
// parallelism level and batch size, against the frozen PR-1 estimator.
func TestEngineMatchesLegacyEstimate(t *testing.T) {
	for _, tc := range equivCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			proto, err := tc.proto()
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range []int64{0, 1, 42, -9} {
				want, err := legacyEstimate(proto, tc.newAdv(), core.StandardPayoff(), tc.sampler, 61, seed)
				if err != nil {
					t.Fatal(err)
				}
				for _, par := range []int{1, 2, 4, 0} {
					for _, batch := range []int{1, 3, 64, 0} {
						got, err := core.EstimateUtility(proto, tc.newAdv(), core.StandardPayoff(), tc.sampler, 61, seed,
							core.WithParallelism(par), core.WithBatchSize(batch))
						if err != nil {
							t.Fatal(err)
						}
						requireEquivalent(t, fmt.Sprintf("seed %d par %d batch %d", seed, par, batch), want, got)
					}
				}
			}
		})
	}
}

// TestEngineMatchesLegacySup pins the sup-search: per-strategy seeds,
// tie-breaking, and merged metrics against the frozen sequential search.
func TestEngineMatchesLegacySup(t *testing.T) {
	proto := twoparty.New(twoparty.Swap())
	sampler := func(r *rand.Rand) []sim.Value {
		return []sim.Value{uint64(r.Intn(256)), uint64(r.Intn(256))}
	}
	space := func() []core.NamedAdversary {
		return []core.NamedAdversary{
			{"lock-abort:1", adversary.NewLockAbort(1)},
			{"lock-abort:2", adversary.NewLockAbort(2)},
			{"setup-abort", adversary.NewSetupAbort(1)},
			{"agen", adversary.NewAgen()},
		}
	}
	for _, seed := range []int64{7, 99} {
		want, err := legacySup(proto, space(), core.StandardPayoff(), sampler, 53, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 2, 0} {
			got, err := core.SupUtility(proto, space(), core.StandardPayoff(), sampler, 53, seed, core.WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			if got.Best != want.Best {
				t.Fatalf("par %d: best %q != legacy %q", par, got.Best, want.Best)
			}
			if got.Metrics != want.Metrics {
				t.Fatalf("par %d: merged metrics diverge", par)
			}
			for name, w := range want.All {
				requireEquivalent(t, fmt.Sprintf("par %d strategy %s", par, name), w, got.All[name])
			}
		}
	}
}

// TestEstimateAllocs pins the allocation-lean property of the full core
// hot path (batcher draw + arena run + classify + tally) at
// parallelism 1.
func TestEstimateAllocs(t *testing.T) {
	proto := twoparty.New(twoparty.Swap())
	adv := adversary.NewLockAbort(1)
	sampler := func(r *rand.Rand) []sim.Value {
		return []sim.Value{uint64(r.Intn(256)), uint64(r.Intn(256))}
	}
	const runs = 200
	seed := int64(1)
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := core.EstimateUtility(proto, adv, core.StandardPayoff(), sampler, runs, seed, core.WithParallelism(1)); err != nil {
			t.Fatal(err)
		}
		seed++
	})
	perRun := allocs / runs
	const budget = 25
	if perRun > budget {
		t.Fatalf("estimator allocates %.1f/run, budget %d", perRun, budget)
	}
	t.Logf("estimator: %.1f allocs/run", perRun)
}
