package core

// This file holds the estimator's variance-reduction surface: control
// variates with an exactly known mean (residual estimation), common-
// random-numbers run seeding, and per-abort-round outcome tallies for
// post-stratification. Unlike every other Option, the statistical
// options here deliberately change what the estimator computes — they
// are all off by default, and with all of them off EstimateUtility's
// output is byte-identical to the frozen contract. See DESIGN.md §12.

import (
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/sim"
)

// ControlVariate is a per-run control C with exactly known expectation,
// expressed over the canonical events: a run classified into event E
// contributes EventValue[E-1] to C, and E[C] = Mean holds exactly (an
// analytic law, not an estimate). The estimator then samples only the
// residual payoff γ(E) − C and re-centres the mean by +Mean, so the
// reported utility estimates the same expectation with the residual's
// variance. When the control captures most of the outcome's randomness
// — the Gordon–Katz first-hit law is the motivating case, see
// GKFirstHitControl — the residual variance is near zero and the same
// half-width needs a small fraction of the runs.
type ControlVariate struct {
	// Name labels the control in reports and sweep notes.
	Name string
	// Mean is the control's exact expectation E[C].
	Mean float64
	// EventValue maps each canonical event (index Event−1, E00..E11
	// order) to the control's value on runs classified into it.
	EventValue [4]float64
}

// GKFirstHitControl is the control variate for the Gordon–Katz
// first-hit attacker: C = γ(E10)·1[E10], whose expectation is exactly
// γ(E10)·GKFirstHitExact(iters, h) by the first-hit law. At the paper's
// Gordon–Katz payoff (0, 0, 1, 0) the residual is identically zero, so
// the estimate is exact at any run count; at nearby payoffs the residual
// only carries the payoff's deviation from the γ10 axis.
func GKFirstHitControl(gamma Payoff, iters int, h float64) ControlVariate {
	g10 := gamma.Of(E10)
	return ControlVariate{
		Name: "gk-first-hit",
		Mean: g10 * GKFirstHitExact(iters, h),
		EventValue: [4]float64{
			E10 - 1: g10,
		},
	}
}

// WithControlVariate subtracts the control from every run's payoff and
// re-centres the reported mean by the control's exact expectation. The
// report's Utility then carries the residual's (typically much smaller)
// half-width; event frequencies and all other report fields are
// untouched. Passing a control whose Mean is not the true expectation
// of its EventValue silently biases the estimate — only use controls
// backed by an exact law.
func WithControlVariate(cv ControlVariate) Option {
	return func(o *options) { o.cv = &cv }
}

// WithPairedSeeds switches the estimator's per-run streams to common
// random numbers: run i's inputs and simulation seed derive from a
// per-run generator seeded by an FNV-1a mix of master and the global
// run index (offset + i, see WithPairedOffset) instead of the single
// sequential stream seeded by the estimation's own seed. Two
// estimations sharing a master therefore execute run i on identical
// coins no matter which cell, arm, or seed they belong to, so their
// per-run outcomes pair for stats.PairedEstimate. This changes the coin
// sequences (not the distribution): a paired estimate is not
// byte-comparable to an unpaired one.
func WithPairedSeeds(master int64) Option {
	return func(o *options) { o.paired, o.pairedMaster = true, master }
}

// WithPairedOffset shifts the global run index of a paired estimation's
// first run (default 0): run i uses index offset + i of the master
// stream. Sequential estimations that together form one logical sample
// (the search engine's growing waves) pass their cumulative run count
// so re-estimating at a larger count replays the same prefix. Without
// WithPairedSeeds the offset is ignored.
func WithPairedOffset(offset int) Option {
	return func(o *options) { o.pairedOffset = offset }
}

// WithEventLog records run i's classified event into log[i]. The log
// must have length ≥ runs; each run writes only its own index, so one
// estimation's writes never race. Combined with WithPairedSeeds, two
// cells' logs give the per-run outcome pairs that
// stats.PairedEstimate turns into a narrow delta interval. The log
// never affects the estimate.
func WithEventLog(log []Event) Option {
	return func(o *options) { o.eventLog = log }
}

// WithAbortRoundStrata accumulates per-(abort round, event) counts into
// t, keyed by the wire round the strategy reported through
// sim.RoundAborter (stratum 0 collects runs with no abort, and all runs
// of strategies that do not implement the capability). The tally never
// affects the estimate; reduce it with stats.StratifiedEstimate using
// the abort-round law's known weights.
func WithAbortRoundStrata(t *AbortRoundTally) Option {
	return func(o *options) { o.strata = t }
}

// AbortRoundTally accumulates outcome counts stratified by abort round.
// It is safe for concurrent use by the estimation workers; the merged
// counts are plain sums, so the tally's content is independent of
// worker scheduling.
type AbortRoundTally struct {
	mu     sync.Mutex
	counts map[int]*[4]int64
}

// NewAbortRoundTally returns an empty tally.
func NewAbortRoundTally() *AbortRoundTally {
	return &AbortRoundTally{counts: make(map[int]*[4]int64)}
}

func (t *AbortRoundTally) add(round int, e Event) {
	idx := int(e) - 1
	if idx < 0 || idx >= 4 {
		return
	}
	t.mu.Lock()
	if t.counts == nil {
		t.counts = make(map[int]*[4]int64)
	}
	c := t.counts[round]
	if c == nil {
		c = new([4]int64)
		t.counts[round] = c
	}
	c[idx]++
	t.mu.Unlock()
}

// Rounds returns the abort rounds observed, sorted ascending (round 0,
// when present, is the no-abort stratum).
func (t *AbortRoundTally) Rounds() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	rounds := make([]int, 0, len(t.counts))
	for r := range t.counts {
		rounds = append(rounds, r)
	}
	sort.Ints(rounds)
	return rounds
}

// Counts returns the event counts (canonical E00..E11 order) tallied
// for one abort round.
func (t *AbortRoundTally) Counts(round int) [4]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c := t.counts[round]; c != nil {
		return *c
	}
	return [4]int64{}
}

// Total returns the tally's total run count across all strata.
func (t *AbortRoundTally) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, c := range t.counts {
		for _, v := range c {
			n += v
		}
	}
	return n
}

// PairedRunSeed derives the seed of global run index idx from a CRN
// master: FNV-1a over the master's eight bytes then the index's eight
// bytes, masked to a non-negative int64. It is exported so layers that
// replay individual runs (checkpoint resume, debugging) can reproduce a
// paired estimation's exact coin sequence.
func PairedRunSeed(master int64, idx int) int64 {
	h := fnv.New64a()
	var buf [16]byte
	v := uint64(master)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	w := uint64(idx)
	for i := 0; i < 8; i++ {
		buf[8+i] = byte(w >> (8 * i))
	}
	h.Write(buf[:])
	return int64(h.Sum64() &^ (1 << 63))
}

// roundAborted extracts the abort round of the most recent run from a
// worker's strategy instance, or 0 when the strategy never aborted or
// does not expose the capability.
func roundAborted(adv sim.Adversary) int {
	if ra, ok := adv.(sim.RoundAborter); ok {
		if r, aborted := ra.AbortedRound(); aborted {
			return r
		}
	}
	return 0
}
