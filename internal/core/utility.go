package core

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/stats"
)

// InputSampler draws one input vector per run — it plays the role of the
// environment Z choosing inputs. Lower-bound experiments use the input
// distribution from the corresponding proof (the least favorable
// environment of Equation 2).
type InputSampler func(r *rand.Rand) []sim.Value

// FixedInputs returns a sampler that always produces the given vector.
func FixedInputs(vals ...sim.Value) InputSampler {
	return func(*rand.Rand) []sim.Value { return append([]sim.Value(nil), vals...) }
}

// ErrNoRuns is returned when a utility estimate is requested with runs<=0.
var ErrNoRuns = errors.New("core: need at least one run")

// UtilityReport summarizes a Monte-Carlo utility estimation.
type UtilityReport struct {
	// Utility estimates u_A(Π, A) = Σ γ_ij · Pr[E_ij].
	Utility stats.Estimate
	// EventFreq holds the empirical Pr[E_ij].
	EventFreq map[Event]float64
	// CorrectnessViolations is the fraction of runs in which an honest
	// party output a wrong value.
	CorrectnessViolations float64
	// PrivacyBreaches is the fraction of runs with a verified input
	// extraction.
	PrivacyBreaches float64
	// MeanCorrupted is the average number of corrupted parties.
	MeanCorrupted float64
	// Runs is the sample count.
	Runs int
}

// String renders the report compactly.
func (r UtilityReport) String() string {
	return fmt.Sprintf("u=%s events[E00=%.3f E01=%.3f E10=%.3f E11=%.3f]",
		r.Utility, r.EventFreq[E00], r.EventFreq[E01], r.EventFreq[E10], r.EventFreq[E11])
}

// EstimateUtility measures the attacker utility of strategy adv against
// proto under payoff gamma by repeated seeded simulation: the empirical
// version of Equation (2) for a fixed (adversary, environment) pair.
func EstimateUtility(proto sim.Protocol, adv sim.Adversary, gamma Payoff,
	sampler InputSampler, runs int, seed int64) (UtilityReport, error) {
	if runs <= 0 {
		return UtilityReport{}, ErrNoRuns
	}
	seeder := rand.New(rand.NewSource(seed))
	samples := make([]float64, 0, runs)
	events := make(map[Event]int, 4)
	violations, breaches, corrupted := 0, 0, 0
	for i := 0; i < runs; i++ {
		inputs := sampler(seeder)
		tr, err := sim.Run(proto, inputs, adv, seeder.Int63())
		if err != nil {
			return UtilityReport{}, fmt.Errorf("core: run %d: %w", i, err)
		}
		oc := Classify(tr)
		events[oc.Event]++
		if oc.CorrectnessViolation {
			violations++
		}
		if oc.PrivacyBreach {
			breaches++
		}
		corrupted += oc.Corrupted
		samples = append(samples, gamma.Of(oc.Event))
	}
	est, err := stats.MeanEstimate(samples)
	if err != nil {
		return UtilityReport{}, err
	}
	freq := make(map[Event]float64, 4)
	for _, e := range Events() {
		freq[e] = float64(events[e]) / float64(runs)
	}
	return UtilityReport{
		Utility:               est,
		EventFreq:             freq,
		CorrectnessViolations: float64(violations) / float64(runs),
		PrivacyBreaches:       float64(breaches) / float64(runs),
		MeanCorrupted:         float64(corrupted) / float64(runs),
		Runs:                  runs,
	}, nil
}

// NamedAdversary pairs a strategy with a label for sup-utility searches.
type NamedAdversary struct {
	Name string
	Adv  sim.Adversary
}

// SupReport is the result of a sup-utility search over a strategy space.
type SupReport struct {
	// Best is the label of the utility-maximizing strategy.
	Best string
	// BestReport is its utility report.
	BestReport UtilityReport
	// All holds every strategy's report, keyed by label.
	All map[string]UtilityReport
}

// SupUtility approximates sup_A u_A(Π, A) over a finite strategy space —
// the left-hand side of Definition 1 restricted to the documented
// strategies (which, for the protocols studied here, include the
// proof-optimal attackers).
func SupUtility(proto sim.Protocol, advs []NamedAdversary, gamma Payoff,
	sampler InputSampler, runs int, seed int64) (SupReport, error) {
	if len(advs) == 0 {
		return SupReport{}, errors.New("core: empty strategy space")
	}
	rep := SupReport{All: make(map[string]UtilityReport, len(advs))}
	bestU := -1e18
	for i, na := range advs {
		r, err := EstimateUtility(proto, na.Adv, gamma, sampler, runs, seed+int64(i)*7919)
		if err != nil {
			return SupReport{}, fmt.Errorf("core: strategy %q: %w", na.Name, err)
		}
		rep.All[na.Name] = r
		if r.Utility.Mean > bestU {
			bestU = r.Utility.Mean
			rep.Best = na.Name
			rep.BestReport = r
		}
	}
	return rep, nil
}

// Relation is the outcome of comparing two protocols' sup-utilities under
// the relative-fairness relation of Definition 1.
type Relation int

// Comparison outcomes. AtLeastAsFair(A,B) means Π_A ⪰γ Π_B.
const (
	// StrictlyFairer: Π_A's best attacker earns noticeably less.
	StrictlyFairer Relation = iota + 1
	// EquallyFair: the sup-utilities agree within tolerance.
	EquallyFair
	// StrictlyLessFair: Π_A's best attacker earns noticeably more.
	StrictlyLessFair
)

// String names the relation.
func (r Relation) String() string {
	switch r {
	case StrictlyFairer:
		return "strictly fairer"
	case EquallyFair:
		return "equally fair"
	case StrictlyLessFair:
		return "strictly less fair"
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Compare orders protocol A versus protocol B by their estimated
// sup-utilities with tolerance tol (the empirical stand-in for the
// negligible slack in Definition 1).
func Compare(supA, supB stats.Estimate, tol float64) Relation {
	switch {
	case supA.Mean < supB.Mean-tol:
		return StrictlyFairer
	case supA.Mean > supB.Mean+tol:
		return StrictlyLessFair
	default:
		return EquallyFair
	}
}

// AtLeastAsFair reports Π_A ⪰γ Π_B: sup u(Π_A) ≤ sup u(Π_B) + tol.
func AtLeastAsFair(supA, supB stats.Estimate, tol float64) bool {
	return Compare(supA, supB, tol) != StrictlyLessFair
}
