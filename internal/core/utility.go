package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/stats"
)

// InputSampler draws one input vector per run — it plays the role of the
// environment Z choosing inputs. Lower-bound experiments use the input
// distribution from the corresponding proof (the least favorable
// environment of Equation 2).
type InputSampler func(r *rand.Rand) []sim.Value

// FixedInputs returns a sampler that always produces the given vector.
func FixedInputs(vals ...sim.Value) InputSampler {
	return func(*rand.Rand) []sim.Value { return append([]sim.Value(nil), vals...) }
}

// ErrNoRuns is returned when a utility estimate is requested with runs<=0.
var ErrNoRuns = errors.New("core: need at least one run")

// UtilityReport summarizes a Monte-Carlo utility estimation.
type UtilityReport struct {
	// Utility estimates u_A(Π, A) = Σ γ_ij · Pr[E_ij].
	Utility stats.Estimate
	// EventFreq holds the empirical Pr[E_ij].
	EventFreq map[Event]float64
	// CorrectnessViolations is the fraction of runs in which an honest
	// party output a wrong value.
	CorrectnessViolations float64
	// PrivacyBreaches is the fraction of runs with a verified input
	// extraction.
	PrivacyBreaches float64
	// MeanCorrupted is the average number of corrupted parties.
	MeanCorrupted float64
	// Runs is the sample count.
	Runs int
	// Metrics aggregates the engine's event counters over every run
	// (rounds stepped, messages committed, corruptions, setup aborts),
	// merged across the estimation workers.
	Metrics sim.Metrics
}

// String renders the report compactly.
func (r UtilityReport) String() string {
	return fmt.Sprintf("u=%s events[E00=%.3f E01=%.3f E10=%.3f E11=%.3f]",
		r.Utility, r.EventFreq[E00], r.EventFreq[E01], r.EventFreq[E10], r.EventFreq[E11])
}

// DefaultParallelism is the worker count used when a parallelism argument
// is <= 0: one worker per available CPU.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// preparedRun is one pre-drawn Monte-Carlo job: the environment's input
// vector and the simulation seed for a single run.
type preparedRun struct {
	inputs []sim.Value
	seed   int64
}

// prepareRuns draws every run's (inputs, seed) pair sequentially from the
// master seeder. This is the determinism contract of the estimator: the
// master stream is consumed in exactly the order the original sequential
// loop used (sampler first, then Int63, per run), so the jobs — and
// therefore the estimate — are identical no matter how many workers later
// execute them.
func prepareRuns(sampler InputSampler, runs int, seed int64) []preparedRun {
	seeder := rand.New(rand.NewSource(seed))
	jobs := make([]preparedRun, runs)
	for i := range jobs {
		jobs[i].inputs = sampler(seeder)
		jobs[i].seed = seeder.Int63()
	}
	return jobs
}

// tally folds per-run outcomes — in run-index order — into a report.
func tally(outcomes []Outcome, gamma Payoff) (UtilityReport, error) {
	runs := len(outcomes)
	samples := make([]float64, 0, runs)
	events := make(map[Event]int, 4)
	violations, breaches, corrupted := 0, 0, 0
	for _, oc := range outcomes {
		events[oc.Event]++
		if oc.CorrectnessViolation {
			violations++
		}
		if oc.PrivacyBreach {
			breaches++
		}
		corrupted += oc.Corrupted
		samples = append(samples, gamma.Of(oc.Event))
	}
	est, err := stats.MeanEstimate(samples)
	if err != nil {
		return UtilityReport{}, err
	}
	freq := make(map[Event]float64, 4)
	for _, e := range Events() {
		freq[e] = float64(events[e]) / float64(runs)
	}
	return UtilityReport{
		Utility:               est,
		EventFreq:             freq,
		CorrectnessViolations: float64(violations) / float64(runs),
		PrivacyBreaches:       float64(breaches) / float64(runs),
		MeanCorrupted:         float64(corrupted) / float64(runs),
		Runs:                  runs,
	}, nil
}

// EstimateUtility measures the attacker utility of strategy adv against
// proto under payoff gamma by repeated seeded simulation: the empirical
// version of Equation (2) for a fixed (adversary, environment) pair. It
// runs on a single goroutine; EstimateUtilityParallel produces the
// bit-identical report on a worker pool.
func EstimateUtility(proto sim.Protocol, adv sim.Adversary, gamma Payoff,
	sampler InputSampler, runs int, seed int64) (UtilityReport, error) {
	return EstimateUtilityParallel(proto, adv, gamma, sampler, runs, seed, 1)
}

// EstimateUtilityParallel is EstimateUtility with the runs fanned out to a
// worker pool. parallelism <= 0 selects DefaultParallelism. The report is
// byte-identical to the sequential estimator's for the same (runs, seed):
// all randomness is pre-drawn sequentially by prepareRuns, each run is
// simulated from its own seed, and outcomes are aggregated in run-index
// order. Workers never share mutable attacker state: each gets its own
// strategy via sim.CloneAdversary; a non-cloneable strategy falls back to
// a single worker.
func EstimateUtilityParallel(proto sim.Protocol, adv sim.Adversary, gamma Payoff,
	sampler InputSampler, runs int, seed int64, parallelism int) (UtilityReport, error) {
	return EstimateUtilityObserved(proto, adv, gamma, sampler, runs, seed, parallelism, nil)
}

// ObserverFactory builds a per-run engine observer; the estimator calls
// it once per run (with the run index) and attaches the result to that
// run's execution. A nil factory, or a nil observer for a given run,
// attaches nothing. The factory may be called from multiple estimation
// workers concurrently and must be safe for that; the observers it
// returns are each used by exactly one run.
type ObserverFactory func(run int) sim.Observer

// EstimateUtilityObserved is EstimateUtilityParallel with the engine's
// event stream exposed: every run carries an engine metrics counter
// (merged into UtilityReport.Metrics) plus the factory's observer, if
// any. Observers never affect the estimate — the report stays
// byte-identical for any parallelism and any factory.
func EstimateUtilityObserved(proto sim.Protocol, adv sim.Adversary, gamma Payoff,
	sampler InputSampler, runs int, seed int64, parallelism int, factory ObserverFactory) (UtilityReport, error) {
	if runs <= 0 {
		return UtilityReport{}, ErrNoRuns
	}
	jobs := prepareRuns(sampler, runs, seed)
	workers := parallelism
	if workers <= 0 {
		workers = DefaultParallelism()
	}
	if workers > runs {
		workers = runs
	}
	var clones []sim.Adversary
	if workers > 1 {
		clones = make([]sim.Adversary, workers)
		clones[0] = adv
		for w := 1; w < workers; w++ {
			c, ok := sim.CloneAdversary(adv)
			if !ok {
				// Fallback: a strategy we cannot copy must not be shared
				// across goroutines, so serialize its runs.
				workers = 1
				clones = nil
				break
			}
			clones[w] = c
		}
	}
	// runOne executes job i with the worker's strategy, feeding the
	// worker's metrics counter and the per-run observer.
	runOne := func(i int, worker sim.Adversary, metrics *sim.Metrics) (Outcome, error) {
		obs := make([]sim.Observer, 0, 2)
		obs = append(obs, metrics)
		if factory != nil {
			if o := factory(i); o != nil {
				obs = append(obs, o)
			}
		}
		tr, err := sim.RunObserved(proto, jobs[i].inputs, worker, jobs[i].seed, obs...)
		if err != nil {
			return Outcome{}, err
		}
		return Classify(tr), nil
	}
	outcomes := make([]Outcome, runs)
	if workers <= 1 {
		var metrics sim.Metrics
		for i := range jobs {
			oc, err := runOne(i, adv, &metrics)
			if err != nil {
				return UtilityReport{}, fmt.Errorf("core: run %d: %w", i, err)
			}
			outcomes[i] = oc
		}
		rep, err := tally(outcomes, gamma)
		rep.Metrics = metrics
		return rep, err
	}
	errs := make([]error, runs)
	workerMetrics := make([]sim.Metrics, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, worker sim.Adversary) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= runs {
					return
				}
				oc, err := runOne(i, worker, &workerMetrics[w])
				if err != nil {
					errs[i] = err
					continue
				}
				outcomes[i] = oc
			}
		}(w, clones[w])
	}
	wg.Wait()
	// Deterministic error reporting: the lowest-index failure, phrased
	// exactly as the sequential path would phrase it.
	for i, err := range errs {
		if err != nil {
			return UtilityReport{}, fmt.Errorf("core: run %d: %w", i, err)
		}
	}
	rep, err := tally(outcomes, gamma)
	// Counter sums are order-independent, so the merged metrics equal the
	// sequential path's for any worker count.
	for _, m := range workerMetrics {
		rep.Metrics.Add(m)
	}
	return rep, err
}

// NamedAdversary pairs a strategy with a label for sup-utility searches.
type NamedAdversary struct {
	Name string
	Adv  sim.Adversary
}

// SupReport is the result of a sup-utility search over a strategy space.
type SupReport struct {
	// Best is the label of the utility-maximizing strategy.
	Best string
	// BestReport is its utility report.
	BestReport UtilityReport
	// All holds every strategy's report, keyed by label.
	All map[string]UtilityReport
	// Metrics sums the engine counters over every strategy's estimation.
	Metrics sim.Metrics
}

// SupUtility approximates sup_A u_A(Π, A) over a finite strategy space —
// the left-hand side of Definition 1 restricted to the documented
// strategies (which, for the protocols studied here, include the
// proof-optimal attackers). It runs on a single goroutine;
// SupUtilityParallel produces the bit-identical report on a worker pool.
func SupUtility(proto sim.Protocol, advs []NamedAdversary, gamma Payoff,
	sampler InputSampler, runs int, seed int64) (SupReport, error) {
	return SupUtilityParallel(proto, advs, gamma, sampler, runs, seed, 1)
}

// SupUtilityParallel is SupUtility with the strategies fanned out to a
// worker pool; parallelism <= 0 selects DefaultParallelism. Each strategy
// keeps the sequential search's per-strategy seed (seed + i*7919), so
// every per-strategy report — and the best-strategy selection, which
// breaks utility ties in slice order — is byte-identical to SupUtility's.
// The strategies in advs must be distinct instances (as every space in
// package adversary supplies); each worker estimates a clone when the
// strategy is cloneable and otherwise owns the instance exclusively while
// its estimate runs. With a single strategy and parallelism > 1, the
// parallelism is spent inside EstimateUtilityParallel instead.
func SupUtilityParallel(proto sim.Protocol, advs []NamedAdversary, gamma Payoff,
	sampler InputSampler, runs int, seed int64, parallelism int) (SupReport, error) {
	return SupUtilityObserved(proto, advs, gamma, sampler, runs, seed, parallelism, nil)
}

// SupObserverFactory builds a per-run observer for a sup-search, keyed by
// the strategy label and run index. Same contract as ObserverFactory.
type SupObserverFactory func(strategy string, run int) sim.Observer

// SupUtilityObserved is SupUtilityParallel with the engine's event stream
// exposed per strategy (see EstimateUtilityObserved). The report —
// including the best-strategy selection — is unaffected by observation.
func SupUtilityObserved(proto sim.Protocol, advs []NamedAdversary, gamma Payoff,
	sampler InputSampler, runs int, seed int64, parallelism int, factory SupObserverFactory) (SupReport, error) {
	if len(advs) == 0 {
		return SupReport{}, errors.New("core: empty strategy space")
	}
	perStrategy := func(name string) ObserverFactory {
		if factory == nil {
			return nil
		}
		return func(run int) sim.Observer { return factory(name, run) }
	}
	workers := parallelism
	if workers <= 0 {
		workers = DefaultParallelism()
	}
	if workers > len(advs) {
		workers = len(advs)
	}
	// When the strategy space is narrower than the requested parallelism,
	// push the surplus into the per-strategy run loop.
	inner := 1
	if workers == 1 && parallelism != 1 {
		inner = parallelism
	}
	reports := make([]UtilityReport, len(advs))
	errs := make([]error, len(advs))
	if workers <= 1 {
		for i, na := range advs {
			reports[i], errs[i] = EstimateUtilityObserved(proto, na.Adv, gamma, sampler,
				runs, seed+int64(i)*7919, inner, perStrategy(na.Name))
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(advs) {
						return
					}
					adv := advs[i].Adv
					if c, ok := sim.CloneAdversary(adv); ok {
						adv = c
					}
					reports[i], errs[i] = EstimateUtilityObserved(proto, adv, gamma, sampler,
						runs, seed+int64(i)*7919, 1, perStrategy(advs[i].Name))
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return SupReport{}, fmt.Errorf("core: strategy %q: %w", advs[i].Name, err)
		}
	}
	rep := SupReport{All: make(map[string]UtilityReport, len(advs))}
	bestU := -1e18
	for i, na := range advs {
		r := reports[i]
		rep.All[na.Name] = r
		rep.Metrics.Add(r.Metrics)
		if r.Utility.Mean > bestU {
			bestU = r.Utility.Mean
			rep.Best = na.Name
			rep.BestReport = r
		}
	}
	return rep, nil
}

// Relation is the outcome of comparing two protocols' sup-utilities under
// the relative-fairness relation of Definition 1.
type Relation int

// Comparison outcomes. AtLeastAsFair(A,B) means Π_A ⪰γ Π_B.
const (
	// StrictlyFairer: Π_A's best attacker earns noticeably less.
	StrictlyFairer Relation = iota + 1
	// EquallyFair: the sup-utilities agree within tolerance.
	EquallyFair
	// StrictlyLessFair: Π_A's best attacker earns noticeably more.
	StrictlyLessFair
)

// String names the relation.
func (r Relation) String() string {
	switch r {
	case StrictlyFairer:
		return "strictly fairer"
	case EquallyFair:
		return "equally fair"
	case StrictlyLessFair:
		return "strictly less fair"
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Compare orders protocol A versus protocol B by their estimated
// sup-utilities with tolerance tol (the empirical stand-in for the
// negligible slack in Definition 1).
func Compare(supA, supB stats.Estimate, tol float64) Relation {
	switch {
	case supA.Mean < supB.Mean-tol:
		return StrictlyFairer
	case supA.Mean > supB.Mean+tol:
		return StrictlyLessFair
	default:
		return EquallyFair
	}
}

// AtLeastAsFair reports Π_A ⪰γ Π_B: sup u(Π_A) ≤ sup u(Π_B) + tol.
func AtLeastAsFair(supA, supB stats.Estimate, tol float64) bool {
	return Compare(supA, supB, tol) != StrictlyLessFair
}
