package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"

	"repro/internal/sim"
	"repro/internal/stats"
)

// InputSampler draws one input vector per run — it plays the role of the
// environment Z choosing inputs. Lower-bound experiments use the input
// distribution from the corresponding proof (the least favorable
// environment of Equation 2).
type InputSampler func(r *rand.Rand) []sim.Value

// FixedInputs returns a sampler that always produces the given vector.
func FixedInputs(vals ...sim.Value) InputSampler {
	return func(*rand.Rand) []sim.Value { return append([]sim.Value(nil), vals...) }
}

// InputSamplerInto is the allocation-free variant of InputSampler for
// the compiled estimator hot path: it appends one run's input vector to
// dst (length 0, engine-owned capacity) and returns the filled slice.
// Installed with WithSamplerInto, it replaces the positional sampler;
// the estimate is unchanged exactly when it draws from r identically to
// the sampler it replaces.
type InputSamplerInto func(r *rand.Rand, dst []sim.Value) []sim.Value

// FixedInputsInto is the InputSamplerInto form of FixedInputs.
func FixedInputsInto(vals ...sim.Value) InputSamplerInto {
	return func(_ *rand.Rand, dst []sim.Value) []sim.Value { return append(dst, vals...) }
}

// ErrNoRuns is returned when a utility estimate is requested with runs<=0.
var ErrNoRuns = errors.New("core: need at least one run")

// UtilityReport summarizes a Monte-Carlo utility estimation.
type UtilityReport struct {
	// Utility estimates u_A(Π, A) = Σ γ_ij · Pr[E_ij].
	Utility stats.Estimate
	// EventFreq holds the empirical Pr[E_ij].
	EventFreq map[Event]float64
	// CorrectnessViolations is the fraction of runs in which an honest
	// party output a wrong value.
	CorrectnessViolations float64
	// PrivacyBreaches is the fraction of runs with a verified input
	// extraction.
	PrivacyBreaches float64
	// MeanCorrupted is the average number of corrupted parties.
	MeanCorrupted float64
	// Runs is the sample count.
	Runs int
	// Metrics aggregates the engine's event counters over every run
	// (rounds stepped, messages committed, corruptions, setup aborts),
	// merged across the estimation workers.
	Metrics sim.Metrics
}

// String renders the report compactly.
func (r UtilityReport) String() string {
	return fmt.Sprintf("u=%s events[E00=%.3f E01=%.3f E10=%.3f E11=%.3f]",
		r.Utility, r.EventFreq[E00], r.EventFreq[E01], r.EventFreq[E10], r.EventFreq[E11])
}

// DefaultParallelism is the worker count used when no parallelism has
// been requested (or a non-positive one): one worker per available CPU.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// ObserverFactory builds a per-run engine observer; the estimator calls
// it once per run (with the run index) and attaches the result to that
// run's execution. A nil factory, or a nil observer for a given run,
// attaches nothing. The factory may be called from multiple estimation
// workers concurrently and must be safe for that; the observers it
// returns are each used by exactly one run. The observed trace is
// engine-owned and valid only for the duration of the callback (see
// sim.Observer).
type ObserverFactory func(run int) sim.Observer

// SupObserverFactory builds a per-run observer for a sup-search, keyed by
// the strategy label and run index. Same contract as ObserverFactory.
type SupObserverFactory func(strategy string, run int) sim.Observer

// NamedAdversary pairs a strategy with a label for sup-utility searches.
type NamedAdversary struct {
	Name string
	Adv  sim.Adversary
}

// SupReport is the result of a sup-utility search over a strategy space.
type SupReport struct {
	// Best is the label of the utility-maximizing strategy.
	Best string
	// BestReport is its utility report.
	BestReport UtilityReport
	// All holds every strategy's report, keyed by label.
	All map[string]UtilityReport
	// Metrics sums the engine counters over every strategy's estimation.
	Metrics sim.Metrics
}

// Relation is the outcome of comparing two protocols' sup-utilities under
// the relative-fairness relation of Definition 1.
type Relation int

// Comparison outcomes. AtLeastAsFair(A,B) means Π_A ⪰γ Π_B.
const (
	// StrictlyFairer: Π_A's best attacker earns noticeably less.
	StrictlyFairer Relation = iota + 1
	// EquallyFair: the sup-utilities agree within tolerance.
	EquallyFair
	// StrictlyLessFair: Π_A's best attacker earns noticeably more.
	StrictlyLessFair
)

// String names the relation.
func (r Relation) String() string {
	switch r {
	case StrictlyFairer:
		return "strictly fairer"
	case EquallyFair:
		return "equally fair"
	case StrictlyLessFair:
		return "strictly less fair"
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Compare orders protocol A versus protocol B by their estimated
// sup-utilities with tolerance tol (the empirical stand-in for the
// negligible slack in Definition 1).
func Compare(supA, supB stats.Estimate, tol float64) Relation {
	switch {
	case supA.Mean < supB.Mean-tol:
		return StrictlyFairer
	case supA.Mean > supB.Mean+tol:
		return StrictlyLessFair
	default:
		return EquallyFair
	}
}

// AtLeastAsFair reports Π_A ⪰γ Π_B: sup u(Π_A) ≤ sup u(Π_B) + tol.
func AtLeastAsFair(supA, supB stats.Estimate, tol float64) bool {
	return Compare(supA, supB, tol) != StrictlyLessFair
}
