// Package core implements the paper's utility-based fairness machinery:
// payoff vectors over the fairness events E00/E01/E10/E11 (Section 3),
// Monte-Carlo estimation of the attacker utility u_A(Π, A) (Equations 1–2),
// the relative-fairness relation and optimality notions (Definitions 1–2),
// utility-balanced fairness (Definition 5), corruption costs and ideal
// ~γ^C-fairness (Definitions 19–21, Theorem 6), and the closed-form bounds
// proved in Sections 4–5 for cross-checking measured values.
package core

import (
	"errors"
	"fmt"
)

// Event indexes the four fairness events of Section 3, Step 2. The first
// bit answers "did the adversary learn noticeable information about the
// corrupted parties' output?" and the second "did honest parties learn
// their output?".
type Event int

// The four events E_ij.
const (
	// E00: neither the adversary nor the honest parties receive outputs.
	E00 Event = iota + 1
	// E01: only the honest parties receive the output (also covers runs
	// with no corruption).
	E01
	// E10: the adversary receives the output and aborts before any honest
	// party does — the canonical fairness breach.
	E10
	// E11: both sides receive the output (also covers full corruption).
	E11
)

// String renders the event in the paper's notation.
func (e Event) String() string {
	switch e {
	case E00:
		return "E00"
	case E01:
		return "E01"
	case E10:
		return "E10"
	case E11:
		return "E11"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// Events lists all four events in canonical order.
func Events() []Event { return []Event{E00, E01, E10, E11} }

// Payoff is the vector ~γ = (γ00, γ01, γ10, γ11) assigning the attacker's
// reward for provoking each event.
type Payoff struct {
	G00, G01, G10, G11 float64
}

// Validation errors for the payoff classes.
var (
	ErrNotFair = errors.New(
		"core: payoff not in Γfair (need 0 = γ01 ≤ min{γ00, γ11} and max{γ00, γ11} < γ10)")
	ErrNotFairPlus = errors.New(
		"core: payoff not in Γ+fair (need 0 = γ01 ≤ γ00 ≤ γ11 < γ10)")
)

// Of returns the payoff of an event.
func (p Payoff) Of(e Event) float64 {
	switch e {
	case E00:
		return p.G00
	case E01:
		return p.G01
	case E10:
		return p.G10
	case E11:
		return p.G11
	default:
		return 0
	}
}

// ValidateFair checks membership in Γfair (Section 3):
//
//	0 = γ01 ≤ min{γ00, γ11} and max{γ00, γ11} < γ10.
func (p Payoff) ValidateFair() error {
	if p.G01 != 0 || p.G00 < 0 || p.G11 < 0 || p.G10 <= p.G00 || p.G10 <= p.G11 {
		return fmt.Errorf("%w: got %+v", ErrNotFair, p)
	}
	return nil
}

// ValidateFairPlus checks membership in Γ+fair (Section 4.2), which
// additionally assumes the attacker prefers learning the output:
//
//	0 = γ01 ≤ γ00 ≤ γ11 < γ10.
func (p Payoff) ValidateFairPlus() error {
	if err := p.ValidateFair(); err != nil {
		return errors.Join(ErrNotFairPlus, err)
	}
	if p.G00 > p.G11 {
		return fmt.Errorf("%w: γ00=%v > γ11=%v", ErrNotFairPlus, p.G00, p.G11)
	}
	return nil
}

// StandardPayoff is the payoff vector used by default in the experiments:
// γ = (0, 0, 1, 1/2) ∈ Γ+fair. Any Γ+fair vector gives the same ordering
// of the protocols studied here; this one makes the bounds easy to read
// ((γ10+γ11)/2 = 3/4, etc.).
func StandardPayoff() Payoff { return Payoff{G00: 0, G01: 0, G10: 1, G11: 0.5} }

// GordonKatzPayoff is the vector ~γ = (0, 0, 1, 0) used in Section 5 to
// relate utility-based fairness to 1/p-security: the utility then equals
// Pr[E10]. The vector is in Γ+fair (and hence in Γfair): Γ+fair requires
// 0 = γ01 ≤ γ00 ≤ γ11 < γ10, and here γ00 = γ11 = 0 < γ10 = 1 — the
// chain holds with equality in the middle, which Γ+fair permits.
func GordonKatzPayoff() Payoff { return Payoff{G00: 0, G01: 0, G10: 1, G11: 0} }
