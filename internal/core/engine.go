package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Option configures an estimation. The zero configuration — no options —
// uses one worker per CPU, the default batch size, and no observers;
// results are independent of every scheduling option (see
// EstimateUtility), so those options tune performance and
// instrumentation, never the estimate. The only exceptions are the
// explicitly statistical options in variance.go — WithControlVariate
// and WithPairedSeeds — which change the estimator or the coin
// sequences by design and are all off by default.
type Option func(*options)

type options struct {
	parallelism  int
	batchSize    int
	factory      ObserverFactory
	supFactory   SupObserverFactory
	metrics      *sim.Metrics
	noCompiled   bool
	samplerInto  InputSamplerInto
	cv           *ControlVariate
	paired       bool
	pairedMaster int64
	pairedOffset int
	eventLog     []Event
	strata       *AbortRoundTally
}

// WithParallelism sets the worker count: 1 forces a single worker,
// values <= 0 select DefaultParallelism (the default). Workers never
// share mutable attacker state — each gets its own strategy via
// sim.CloneAdversary, and a non-cloneable strategy falls back to a
// single worker.
func WithParallelism(parallelism int) Option {
	return func(o *options) { o.parallelism = parallelism }
}

// WithBatchSize sets how many runs a worker leases from the sampler
// stream at a time; <= 0 selects the default (64). Smaller batches
// balance ragged workloads better, larger ones reduce contention on the
// sampler lock. The estimate is identical for every batch size.
func WithBatchSize(n int) Option {
	return func(o *options) { o.batchSize = n }
}

// WithObserver attaches a per-run engine observer factory (see
// ObserverFactory). Observers never affect the estimate. In a
// SupUtility search the factory applies to every strategy's runs; use
// WithSupObserver to also receive the strategy label.
func WithObserver(factory ObserverFactory) Option {
	return func(o *options) { o.factory = factory }
}

// WithSupObserver attaches a per-run observer factory keyed by strategy
// label, for SupUtility searches (see SupObserverFactory). It takes
// precedence over WithObserver; EstimateUtility ignores it.
func WithSupObserver(factory SupObserverFactory) Option {
	return func(o *options) { o.supFactory = factory }
}

// WithMetrics accumulates the estimation's merged engine counters into
// *m (the same totals as UtilityReport.Metrics / SupReport.Metrics), so
// a caller aggregating over many estimations needs no manual merging.
func WithMetrics(m *sim.Metrics) Option {
	return func(o *options) { o.metrics = m }
}

// WithCompiledPlans toggles the compiled execution plans (sim.CompilePlan
// / sim.PlanRunner) on the estimator hot path. Compiled plans are on by
// default; pairs whose probe run fails fall back to the plain interpreter
// automatically, and a compiled run is bit-identical to an interpreted
// one (the frozen equivalence matrix in the package tests pins this), so
// the only reason to pass false is isolating the interpreter when
// debugging the engine itself.
func WithCompiledPlans(enabled bool) Option {
	return func(o *options) { o.noCompiled = !enabled }
}

// WithSamplerInto replaces the estimation's positional InputSampler with
// an allocation-free variant that fills an engine-owned buffer (see
// InputSamplerInto). It takes precedence over the positional sampler,
// which may then be nil. The estimate is unchanged as long as the two
// samplers draw identically from the master stream.
func WithSamplerInto(sampler InputSamplerInto) Option {
	return func(o *options) { o.samplerInto = sampler }
}

const defaultBatchSize = 64

func resolveOptions(opts []Option) options {
	var o options
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	return o
}

// preparedRun is one leased Monte-Carlo job: the environment's input
// vector and the simulation seed for a single run.
type preparedRun struct {
	inputs []sim.Value
	seed   int64
}

// batcher streams (inputs, seed) jobs to the estimation workers in the
// estimator's canonical order. This is the determinism contract: the
// master stream is consumed exactly as the original sequential loop
// consumed it (sampler first, then Int63, per run), one batch at a
// time under the lock, so run i receives the same job no matter how
// many workers lease batches or in what order they arrive — without
// materializing an O(runs) job slice up front.
//
// In paired (common-random-numbers) mode the single sequential stream
// is replaced by one per-run stream per job: the reusable source is
// reseeded to PairedRunSeed(master, offset + i) and the run's inputs
// and simulation seed are drawn from it, so run i's coins depend only
// on (master, offset + i) — never on the estimation's own seed or on
// how many runs precede it in this estimation.
type batcher struct {
	mu          sync.Mutex
	seeder      *rand.Rand
	sampler     InputSampler
	samplerInto InputSamplerInto
	next        int
	runs        int

	paired bool
	master int64
	offset int
	src    *rng.Source
	prng   *rand.Rand
}

// fill leases the next batch into buf (up to cap(buf) jobs), returning
// the base run index and the filled prefix; empty means work exhausted.
// An in-place sampler refills each slot's input slice, so a worker's
// batch buffer stops allocating once its slots have grown.
func (b *batcher) fill(buf []preparedRun) (int, []preparedRun) {
	b.mu.Lock()
	defer b.mu.Unlock()
	base := b.next
	k := b.runs - b.next
	if k > cap(buf) {
		k = cap(buf)
	}
	buf = buf[:k]
	for i := range buf {
		draw := b.seeder
		if b.paired {
			b.src.Seed(PairedRunSeed(b.master, b.offset+base+i))
			draw = b.prng
		}
		if b.samplerInto != nil {
			buf[i].inputs = b.samplerInto(draw, buf[i].inputs[:0])
		} else {
			buf[i].inputs = b.sampler(draw)
		}
		buf[i].seed = draw.Int63()
	}
	b.next += k
	return base, buf
}

// runTally is one worker's streaming outcome tally: integer counts
// only, so per-worker tallies merge into the global total by addition,
// independent of worker scheduling.
type runTally struct {
	events     [4]int64 // indexed by Event-1, canonical E00..E11 order
	violations int64
	breaches   int64
	corrupted  int64
}

// add folds one classified outcome into the tally. An outcome carrying
// an event outside the canonical four (in particular the zero Event of a
// mis-built Outcome) is rejected as an error rather than indexing out of
// bounds; the estimator reports it through the per-run error path.
func (t *runTally) add(oc Outcome) error {
	idx := int(oc.Event) - 1
	if idx < 0 || idx >= len(t.events) {
		return fmt.Errorf("outcome has invalid event %d", int(oc.Event))
	}
	t.events[idx]++
	if oc.CorrectnessViolation {
		t.violations++
	}
	if oc.PrivacyBreach {
		t.breaches++
	}
	t.corrupted += int64(oc.Corrupted)
	return nil
}

func (t *runTally) merge(o runTally) {
	for i := range t.events {
		t.events[i] += o.events[i]
	}
	t.violations += o.violations
	t.breaches += o.breaches
	t.corrupted += o.corrupted
}

// report reduces the merged counts to a UtilityReport. Mean and every
// frequency are bit-identical to the legacy per-sample tally for the
// paper's dyadic payoff vectors (see stats.EstimateFromCounts). With a
// control variate, the estimate runs over the residual payoffs
// γ(E) − C(E) and the mean is re-centred by the control's exact
// expectation; the half-width is the residual's. Event frequencies and
// the auxiliary rates are unaffected either way.
func (t *runTally) report(gamma Payoff, runs int, cv *ControlVariate) (UtilityReport, error) {
	events := Events()
	var values [4]float64
	for i, e := range events {
		values[i] = gamma.Of(e)
		if cv != nil {
			values[i] -= cv.EventValue[i]
		}
	}
	est, err := stats.EstimateFromCounts(values[:], t.events[:])
	if err != nil {
		return UtilityReport{}, err
	}
	if cv != nil {
		est.Mean += cv.Mean
	}
	freq := make(map[Event]float64, 4)
	for i, e := range events {
		freq[e] = float64(t.events[i]) / float64(runs)
	}
	return UtilityReport{
		Utility:               est,
		EventFreq:             freq,
		CorrectnessViolations: float64(t.violations) / float64(runs),
		PrivacyBreaches:       float64(t.breaches) / float64(runs),
		MeanCorrupted:         float64(t.corrupted) / float64(runs),
		Runs:                  runs,
	}, nil
}

// runError records a failed run for deterministic reporting.
type runError struct {
	run int
	err error
}

// simRunner is the per-worker execution surface: sim.Arena (the
// interpreter) and sim.PlanRunner (compiled-plan replay) both satisfy
// it with identical run semantics.
type simRunner interface {
	Run(inputs []sim.Value, adv sim.Adversary, seed int64, obs ...sim.Observer) (*sim.Trace, error)
}

// EstimateUtility measures the attacker utility of strategy adv against
// proto under payoff gamma by repeated seeded simulation: the empirical
// version of Equation (2) for a fixed (adversary, environment) pair.
//
// The estimate is a pure function of (runs, seed): every scheduling
// option — parallelism, batch size, observers — changes how the runs
// are scheduled, never what they compute. Workers lease batches of
// (inputs, seed) jobs drawn in the canonical master-stream order,
// replay them on per-worker sim.Arenas (reused execution state, no
// per-run allocation), and keep integer outcome tallies that merge
// order-independently into the report.
//
// The statistical options are the deliberate exception to that purity:
// WithPairedSeeds swaps the (runs, seed) coin stream for a shared
// common-random-numbers master stream, and WithControlVariate changes
// the estimator itself (same expectation, smaller variance). Both are
// off by default; with them off the report stays byte-identical to the
// frozen contract.
func EstimateUtility(proto sim.Protocol, adv sim.Adversary, gamma Payoff,
	sampler InputSampler, runs int, seed int64, opts ...Option) (UtilityReport, error) {
	o := resolveOptions(opts)
	if runs <= 0 {
		return UtilityReport{}, ErrNoRuns
	}
	workers := o.parallelism
	if workers <= 0 {
		workers = DefaultParallelism()
	}
	if workers > runs {
		workers = runs
	}
	clones := []sim.Adversary{adv}
	if workers > 1 {
		clones = make([]sim.Adversary, 1, workers)
		clones[0] = adv
		for w := 1; w < workers; w++ {
			c, ok := sim.CloneAdversary(adv)
			if !ok {
				// Fallback: a strategy we cannot copy must not be shared
				// across goroutines, so serialize its runs.
				workers = 1
				clones = clones[:1]
				break
			}
			clones = append(clones, c)
		}
	}
	batch := o.batchSize
	if batch <= 0 {
		batch = defaultBatchSize
	}
	if batch > runs {
		batch = runs
	}

	// Compile the pair's execution plan unless disabled. A pair whose
	// probe run fails is not compilable — those estimations silently run
	// on the plain interpreter, with identical results (plans change
	// stream construction and buffer sizing, never semantics).
	var plan *sim.Plan
	if !o.noCompiled {
		if p, perr := sim.CompilePlan(proto, adv); perr == nil {
			plan = p
		}
	}

	b := &batcher{seeder: rng.New(seed), sampler: sampler, samplerInto: o.samplerInto, runs: runs}
	if o.paired {
		b.paired, b.master, b.offset = true, o.pairedMaster, o.pairedOffset
		b.src = rng.NewSource(0)
		b.prng = rand.New(b.src)
	}
	if o.eventLog != nil && len(o.eventLog) < runs {
		return UtilityReport{}, fmt.Errorf("core: event log holds %d slots for %d runs", len(o.eventLog), runs)
	}
	tallies := make([]runTally, workers)
	workerMetrics := make([]sim.Metrics, workers)
	errLists := make([][]runError, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, worker sim.Adversary) {
			defer wg.Done()
			var arena simRunner
			if plan != nil {
				arena = sim.NewPlanRunner(plan)
			} else {
				arena = sim.NewArena(proto)
			}
			buf := make([]preparedRun, 0, batch)
			obs := make([]sim.Observer, 0, 2)
			for {
				base, jobs := b.fill(buf)
				if len(jobs) == 0 {
					return
				}
				for j := range jobs {
					i := base + j
					obs = append(obs[:0], &workerMetrics[w])
					if o.factory != nil {
						if ob := o.factory(i); ob != nil {
							obs = append(obs, ob)
						}
					}
					tr, err := arena.Run(jobs[j].inputs, worker, jobs[j].seed, obs...)
					if err == nil {
						oc := Classify(tr)
						if err = tallies[w].add(oc); err == nil {
							if o.eventLog != nil {
								o.eventLog[i] = oc.Event
							}
							if o.strata != nil {
								o.strata.add(roundAborted(worker), oc.Event)
							}
						}
					}
					if err != nil {
						errLists[w] = append(errLists[w], runError{run: i, err: err})
					}
				}
			}
		}(w, clones[w])
	}
	wg.Wait()

	// Deterministic error reporting: the lowest-index failure, phrased
	// exactly as the classic sequential loop phrased it.
	first := runError{run: runs}
	for _, list := range errLists {
		for _, re := range list {
			if re.run < first.run {
				first = re
			}
		}
	}
	if first.err != nil {
		return UtilityReport{}, fmt.Errorf("core: run %d: %w", first.run, first.err)
	}

	var total runTally
	var merged sim.Metrics
	for w := range tallies {
		total.merge(tallies[w])
		merged.Add(workerMetrics[w])
	}
	rep, err := total.report(gamma, runs, o.cv)
	if err != nil {
		return UtilityReport{}, err
	}
	rep.Metrics = merged
	if o.metrics != nil {
		o.metrics.Add(merged)
	}
	return rep, nil
}

// SupUtility approximates sup_A u_A(Π, A) over an eager strategy slice.
// It is the documented one-line adapter over SupUtilitySpace — the
// legacy signature every pre-StrategySpace caller used — and produces
// bit-identical reports to it (the frozen sup matrices in the package
// tests pin this).
func SupUtility(proto sim.Protocol, advs []NamedAdversary, gamma Payoff,
	sampler InputSampler, runs int, seed int64, opts ...Option) (SupReport, error) {
	return SupUtilitySpace(proto, SliceSpace(advs), gamma, sampler, runs, seed, opts...)
}

// SupUtilitySpace approximates sup_A u_A(Π, A) over a finite strategy
// space — the left-hand side of Definition 1 restricted to the space's
// strategies (which, for the protocols studied here, include the
// proof-optimal attackers). This is the exhaustive evaluation: every
// strategy is estimated at the full run count. For large raw spaces,
// the racing/branch-and-bound engine in internal/search reaches the
// same best strategy at a fraction of the runs.
//
// Each strategy keeps the canonical per-strategy seed (seed + i*7919),
// so every per-strategy report — and the best-strategy selection, which
// breaks utility ties in space order — is independent of parallelism.
// Each worker estimates a clone when the strategy is cloneable and
// otherwise owns the instance exclusively while its estimate runs. With
// a single strategy (or a non-parallel space) and parallelism > 1, the
// parallelism is spent inside each strategy's run loop instead.
func SupUtilitySpace(proto sim.Protocol, space StrategySpace, gamma Payoff,
	sampler InputSampler, runs int, seed int64, opts ...Option) (SupReport, error) {
	o := resolveOptions(opts)
	if space == nil || space.Len() == 0 {
		return SupReport{}, errors.New("core: empty strategy space")
	}
	// Materialize the enumeration once: the exhaustive evaluation visits
	// every index anyway, and a single At call per index preserves the
	// instance-exclusivity contract for lazily constructed strategies.
	advs := make([]NamedAdversary, space.Len())
	for i := range advs {
		advs[i] = space.At(i)
	}
	perStrategy := func(name string) ObserverFactory {
		if o.supFactory != nil {
			f := o.supFactory
			return func(run int) sim.Observer { return f(name, run) }
		}
		return o.factory
	}
	workers := o.parallelism
	if workers <= 0 {
		workers = DefaultParallelism()
	}
	if workers > len(advs) {
		workers = len(advs)
	}
	// When the strategy space is narrower than the requested parallelism,
	// push the surplus into the per-strategy run loop.
	inner := 1
	if workers == 1 && o.parallelism != 1 {
		inner = o.parallelism
	}
	reports := make([]UtilityReport, len(advs))
	errs := make([]error, len(advs))
	estimate := func(i int, adv sim.Adversary, par int) {
		eopts := make([]Option, 0, 5)
		eopts = append(eopts, WithParallelism(par))
		if o.batchSize > 0 {
			eopts = append(eopts, WithBatchSize(o.batchSize))
		}
		if f := perStrategy(advs[i].Name); f != nil {
			eopts = append(eopts, WithObserver(f))
		}
		if o.noCompiled {
			eopts = append(eopts, WithCompiledPlans(false))
		}
		if o.samplerInto != nil {
			eopts = append(eopts, WithSamplerInto(o.samplerInto))
		}
		reports[i], errs[i] = EstimateUtility(proto, adv, gamma, sampler,
			runs, seed+int64(i)*7919, eopts...)
	}
	if workers <= 1 {
		for i, na := range advs {
			estimate(i, na.Adv, inner)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(advs) {
						return
					}
					adv := advs[i].Adv
					if c, ok := sim.CloneAdversary(adv); ok {
						adv = c
					}
					estimate(i, adv, 1)
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return SupReport{}, fmt.Errorf("core: strategy %q: %w", advs[i].Name, err)
		}
	}
	rep := SupReport{All: make(map[string]UtilityReport, len(advs))}
	// Best-strategy selection: the first strategy with a comparable
	// (non-NaN) mean seeds the maximum, so arbitrarily negative utilities
	// still win over nothing, NaN means never become Best, and ties keep
	// breaking in slice order. If no strategy yields a comparable mean the
	// sup is undefined — report that instead of an empty Best.
	bestIdx := -1
	for i, na := range advs {
		r := reports[i]
		rep.All[na.Name] = r
		rep.Metrics.Add(r.Metrics)
		if math.IsNaN(r.Utility.Mean) {
			continue
		}
		if bestIdx < 0 || r.Utility.Mean > reports[bestIdx].Utility.Mean {
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return SupReport{}, errors.New("core: no strategy produced a comparable utility (all estimated means are NaN)")
	}
	rep.Best = advs[bestIdx].Name
	rep.BestReport = reports[bestIdx]
	if o.metrics != nil {
		o.metrics.Add(rep.Metrics)
	}
	return rep, nil
}
