package core

import (
	"strings"
	"testing"
)

// TestRunTallyRejectsInvalidEvent is the regression for the tally
// indexing bug: an outcome carrying an event outside E00..E11 — in
// particular the zero Event of a mis-built Outcome — used to index
// events[-1] and panic inside an estimation worker. It must instead be
// reported as a per-run error (white-box: Classify can never emit such
// an outcome, so the guard is only reachable from here).
func TestRunTallyRejectsInvalidEvent(t *testing.T) {
	var tl runTally
	if err := tl.add(Outcome{}); err == nil {
		t.Fatal("zero-event outcome tallied without error")
	} else if !strings.Contains(err.Error(), "invalid event") {
		t.Fatalf("error %q does not name the invalid event", err)
	}
	if err := tl.add(Outcome{Event: Event(99)}); err == nil {
		t.Fatal("out-of-range event tallied without error")
	}
	for _, e := range Events() {
		if err := tl.add(Outcome{Event: e}); err != nil {
			t.Fatalf("valid event %v rejected: %v", e, err)
		}
	}
	if tl.events != [4]int64{1, 1, 1, 1} {
		t.Fatalf("events = %v after one tally each", tl.events)
	}
}
