package core_test

// Engine-level tests for the variance-reduction options: control
// variates (exact-residual estimation), common-random-numbers pairing,
// and abort-round stratification tallies. Everything here exercises the
// contract DESIGN.md §12 states: the options change coin streams or the
// estimator, never the estimand, and with all of them off the engine is
// untouched (the frozen byte-identity matrices in internal/sweep and
// internal/search pin that half).

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/protocols/gordonkatz"
	"repro/internal/protocols/twoparty"
	"repro/internal/sim"
	"repro/internal/stats"
)

func uniform2(r *rand.Rand) []sim.Value {
	return []sim.Value{uint64(r.Intn(1 << 20)), uint64(r.Intn(1 << 20))}
}

// TestGKFirstHitControlMean pins the control's exact law: E[C] is the
// payoff's γ10 times the first-hit probability, and the control pays
// γ10 exactly on E10 runs and nothing elsewhere.
func TestGKFirstHitControlMean(t *testing.T) {
	gamma := core.Payoff{G00: 0.1, G01: 0.2, G10: 0.8, G11: 0.4}
	cv := core.GKFirstHitControl(gamma, 8, 0.5)
	if want := 0.8 * core.GKFirstHitExact(8, 0.5); cv.Mean != want {
		t.Errorf("control mean %v, want %v", cv.Mean, want)
	}
	want := [4]float64{core.E10 - 1: 0.8}
	if cv.EventValue != want {
		t.Errorf("control event values %v, want %v", cv.EventValue, want)
	}
}

// TestControlVariateExactResidual: at the paper's Gordon–Katz payoff
// the first-hit control absorbs the entire payoff, so the residual is
// identically zero — the estimate equals the exact first-hit law with
// half-width exactly 0 at any run count, while the event frequencies
// (untouched by the control) still reflect the simulated runs.
func TestControlVariateExactResidual(t *testing.T) {
	proto, err := gordonkatz.NewPolyDomain(gordonkatz.AND(), 4)
	if err != nil {
		t.Fatal(err)
	}
	gamma := core.GordonKatzPayoff()
	cv := core.GKFirstHitControl(gamma, proto.NumRounds()/2, 0.5)
	const runs = 60
	rep, err := core.EstimateUtility(proto, gordonkatz.NewFirstHit(1), gamma,
		core.FixedInputs(uint64(1), uint64(1)), runs, 3, core.WithControlVariate(cv))
	if err != nil {
		t.Fatal(err)
	}
	exact := core.GKFirstHitExact(proto.NumRounds()/2, 0.5)
	if rep.Utility.Mean != exact {
		t.Errorf("residual estimate mean %v, want exact law %v", rep.Utility.Mean, exact)
	}
	if rep.Utility.HalfWidth != 0 {
		t.Errorf("zero residual: half-width %v, want exactly 0", rep.Utility.HalfWidth)
	}
	plain, err := core.EstimateUtility(proto, gordonkatz.NewFirstHit(1), gamma,
		core.FixedInputs(uint64(1), uint64(1)), runs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range core.Events() {
		if rep.EventFreq[e] != plain.EventFreq[e] {
			t.Errorf("event %v freq %v differs from plain %v — the control must not touch frequencies",
				e, rep.EventFreq[e], plain.EventFreq[e])
		}
	}
}

// TestControlVariateZeroIsIdentity: the zero control (no event value,
// mean 0) must reproduce the plain estimate exactly — subtracting
// nothing and re-centring by zero is the identity on every field.
func TestControlVariateZeroIsIdentity(t *testing.T) {
	proto := twoparty.New(twoparty.Swap())
	gamma := core.StandardPayoff()
	plain, err := core.EstimateUtility(proto, adversary.NewAbortAt(2, 1), gamma, uniform2, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := core.EstimateUtility(proto, adversary.NewAbortAt(2, 1), gamma, uniform2, 150, 5,
		core.WithControlVariate(core.ControlVariate{Name: "zero"}))
	if err != nil {
		t.Fatal(err)
	}
	if cv.Utility != plain.Utility {
		t.Errorf("zero control changed the estimate: %+v vs %+v", cv.Utility, plain.Utility)
	}
}

// pairedLog runs a paired estimation and returns the per-run event log.
func pairedLog(t *testing.T, adv sim.Adversary, master int64, offset, runs int, seed int64, par int) []core.Event {
	t.Helper()
	log := make([]core.Event, runs)
	_, err := core.EstimateUtility(twoparty.New(twoparty.Swap()), adv, core.StandardPayoff(),
		uniform2, runs, seed,
		core.WithPairedSeeds(master), core.WithPairedOffset(offset),
		core.WithEventLog(log), core.WithParallelism(par))
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// TestPairedSeedsIndependentOfSeedAndParallelism: under CRN pairing,
// run i's coins are a function of (master, offset+i) alone — the
// estimation's own seed and worker count must not move a single event.
func TestPairedSeedsIndependentOfSeedAndParallelism(t *testing.T) {
	const master, runs = 99, 200
	base := pairedLog(t, adversary.NewAbortAt(2, 1), master, 0, runs, 1, 1)
	otherSeed := pairedLog(t, adversary.NewAbortAt(2, 1), master, 0, runs, 12345, 1)
	parallel := pairedLog(t, adversary.NewAbortAt(2, 1), master, 0, runs, 777, 4)
	for i := range base {
		if base[i] != otherSeed[i] || base[i] != parallel[i] {
			t.Fatalf("run %d: events %v / %v / %v diverge across seed and parallelism", i, base[i], otherSeed[i], parallel[i])
		}
	}
}

// TestPairedOffsetSplitInvariance: two estimations covering [0,30) and
// [30,60) of the master stream must reproduce one estimation over
// [0,60) run for run — the property the search engine's growing waves
// rely on to extend an arm's sample without replaying its prefix.
func TestPairedOffsetSplitInvariance(t *testing.T) {
	const master = 4242
	whole := pairedLog(t, adversary.NewAbortAt(1, 1), master, 0, 60, 1, 1)
	head := pairedLog(t, adversary.NewAbortAt(1, 1), master, 0, 30, 2, 1)
	tail := pairedLog(t, adversary.NewAbortAt(1, 1), master, 30, 30, 3, 1)
	for i := 0; i < 30; i++ {
		if whole[i] != head[i] {
			t.Fatalf("run %d: %v != head %v", i, whole[i], head[i])
		}
		if whole[30+i] != tail[i] {
			t.Fatalf("run %d: %v != tail %v", 30+i, whole[30+i], tail[i])
		}
	}
}

// TestEventLogTooShort: a log with fewer slots than runs must be
// rejected eagerly, not written out of bounds.
func TestEventLogTooShort(t *testing.T) {
	log := make([]core.Event, 5)
	_, err := core.EstimateUtility(twoparty.New(twoparty.Swap()), adversary.NewAbortAt(1, 1),
		core.StandardPayoff(), uniform2, 10, 1, core.WithEventLog(log))
	if err == nil {
		t.Fatal("expected an error for a short event log")
	}
}

// TestAbortRoundStrataTally: the tally must partition exactly the
// estimation's runs by reported abort round — a fixed-round aborter
// lands every run in its round's stratum, and a strategy without the
// RoundAborter capability (sim.Passive) lands everything in stratum 0.
func TestAbortRoundStrataTally(t *testing.T) {
	proto := twoparty.New(twoparty.Swap())
	const runs = 120
	tally := core.NewAbortRoundTally()
	rep, err := core.EstimateUtility(proto, adversary.NewAbortAt(2, 1), core.StandardPayoff(),
		uniform2, runs, 9, core.WithAbortRoundStrata(tally), core.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := tally.Total(); got != runs {
		t.Fatalf("tally holds %d runs, want %d", got, runs)
	}
	rounds := tally.Rounds()
	if len(rounds) != 1 || rounds[0] != 2 {
		t.Fatalf("abort-at-2 strata rounds %v, want [2]", rounds)
	}
	counts := tally.Counts(2)
	for i, e := range core.Events() {
		if want := rep.EventFreq[e] * runs; math.Abs(float64(counts[i])-want) > 1e-9 {
			t.Errorf("stratum 2 event %v count %d, want %g", e, counts[i], want)
		}
	}

	passive := core.NewAbortRoundTally()
	if _, err := core.EstimateUtility(proto, sim.Passive{}, core.StandardPayoff(),
		uniform2, 40, 9, core.WithAbortRoundStrata(passive)); err != nil {
		t.Fatal(err)
	}
	if rounds := passive.Rounds(); len(rounds) != 1 || rounds[0] != 0 {
		t.Errorf("capability-less strategy strata rounds %v, want [0]", rounds)
	}
}

// TestAbortRoundStrataReduce closes the loop with stats: reducing a
// first-hit tally through StratifiedEstimate with proportional
// empirical weights reproduces the pooled mean (the post-stratification
// identity), on a workload whose abort round actually varies.
func TestAbortRoundStrataReduce(t *testing.T) {
	proto, err := gordonkatz.NewPolyDomain(gordonkatz.AND(), 2)
	if err != nil {
		t.Fatal(err)
	}
	gamma := core.StandardPayoff()
	const runs = 400
	tally := core.NewAbortRoundTally()
	rep, err := core.EstimateUtility(proto, gordonkatz.NewFirstHit(1), gamma,
		core.FixedInputs(uint64(1), uint64(1)), runs, 11, core.WithAbortRoundStrata(tally))
	if err != nil {
		t.Fatal(err)
	}
	rounds := tally.Rounds()
	if len(rounds) < 2 {
		t.Fatalf("first-hit strata rounds %v, want at least two strata", rounds)
	}
	values := []float64{gamma.Of(core.E00), gamma.Of(core.E01), gamma.Of(core.E10), gamma.Of(core.E11)}
	var strata []stats.Stratum
	for _, round := range rounds {
		c := tally.Counts(round)
		var n int64
		for _, v := range c {
			n += v
		}
		strata = append(strata, stats.Stratum{
			Weight: float64(n) / float64(runs),
			Values: values,
			Counts: c[:],
		})
	}
	est, err := stats.StratifiedEstimate(strata)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-rep.Utility.Mean) > 1e-12 {
		t.Errorf("stratified mean %v != pooled mean %v", est.Mean, rep.Utility.Mean)
	}
}

// TestPairedRunSeed pins the CRN seed derivation's basic properties:
// deterministic, non-negative (a rand seed), and index-sensitive.
func TestPairedRunSeed(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		s := core.PairedRunSeed(7, i)
		if s < 0 {
			t.Fatalf("PairedRunSeed(7, %d) = %d, want non-negative", i, s)
		}
		if s != core.PairedRunSeed(7, i) {
			t.Fatalf("PairedRunSeed(7, %d) not deterministic", i)
		}
		if seen[s] {
			t.Fatalf("PairedRunSeed(7, %d) = %d collides within the first 100 indices", i, s)
		}
		seen[s] = true
	}
	if core.PairedRunSeed(1, 0) == core.PairedRunSeed(2, 0) {
		t.Error("different masters must give different run seeds")
	}
}
