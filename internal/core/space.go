package core

import "fmt"

// StrategySpace is a lazily enumerable adversary-strategy space — the
// domain of the sup in Definition 1, sup_A u(Π, A), as the search and
// estimation layers see it. Indices are the space's canonical order:
// every deterministic contract downstream (per-strategy seeds, best-tie
// breaking, checkpoint record order) is phrased in terms of them.
//
// At may construct its strategy on every call; callers own the returned
// instance exclusively until their estimate of it completes (the same
// exclusivity the slice-based API required of distinct instances). A
// space itself must be safe for concurrent At calls with distinct
// indices.
type StrategySpace interface {
	// Len is the number of strategies in the space.
	Len() int
	// At returns strategy i (0 ≤ i < Len) with its canonical label.
	At(i int) NamedAdversary
	// Describe names the space canonically; the search engine hashes it
	// into arm keys, so equal descriptions must mean equal spaces.
	Describe() string
}

// SliceSpace adapts an eager []NamedAdversary — the classic strategy
// spaces of package adversary — to the StrategySpace interface. It is
// the documented one-line bridge from the legacy SupUtility signature.
type SliceSpace []NamedAdversary

// Len implements StrategySpace.
func (s SliceSpace) Len() int { return len(s) }

// At implements StrategySpace.
func (s SliceSpace) At(i int) NamedAdversary { return s[i] }

// Describe implements StrategySpace: the labels in order, which pins
// the space exactly (labels are unique within every space in this
// repository).
func (s SliceSpace) Describe() string {
	names := make([]byte, 0, 16*len(s))
	for i, na := range s {
		if i > 0 {
			names = append(names, '+')
		}
		names = append(names, na.Name...)
	}
	return fmt.Sprintf("slice(%s)", names)
}

// Axis is one dimension of a structured strategy space (e.g. the abort
// round, the corrupted set, the input substitution).
type Axis struct {
	// Name labels the dimension.
	Name string
	// Values are the dimension's points, in canonical order.
	Values []string
}

// BoundedSpace is a StrategySpace with enough structure for
// branch-and-bound: the space factors into axes, every strategy has
// coordinates along them, and each strategy carries a statically sound
// utility upper bound (derived from its event structure — e.g. a
// setup-aborting strategy can only realize E00/E01, so its utility is
// at most max(γ00, γ01) whatever the protocol does). The search engine
// admits arms in descending bound order and prunes, with zero runs, any
// arm whose bound cannot beat the incumbent's certified lower bound —
// which eliminates whole branches (all arms sharing a dominated axis
// value) at once.
type BoundedSpace interface {
	StrategySpace
	// Axes lists the dimensions.
	Axes() []Axis
	// Coord returns strategy i's coordinates along Axes (same length and
	// order). Implementations return a fresh or read-only slice.
	Coord(i int) []int
	// UpperBound returns a sound upper bound on strategy i's true
	// utility under gamma: no environment or scheduling can make the
	// strategy earn more. Plain max over the payoff vector is always
	// sound; tighter per-branch bounds are what make pruning bite.
	UpperBound(i int, gamma Payoff) float64
}
