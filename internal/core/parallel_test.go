package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/protocols/multiparty"
	"repro/internal/sim"
)

// The equivalence tests pin the tentpole determinism contract: the
// parallel estimator must reproduce the sequential estimator's
// UtilityReport exactly — same mean, same confidence interval, same
// event counts — for the same (runs, seed), at every parallelism.

func TestParallelEquivalenceTwoParty(t *testing.T) {
	for _, par := range []int{0, 2, 4, 7} {
		seq, err := EstimateUtility(flipProtocol{}, &grabber{}, StandardPayoff(), uniformInputs, 101, 42)
		if err != nil {
			t.Fatal(err)
		}
		parRep, err := EstimateUtility(flipProtocol{}, &grabber{}, StandardPayoff(), uniformInputs, 101, 42, WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, parRep) {
			t.Errorf("parallelism %d: report differs from sequential:\nseq: %+v\npar: %+v", par, seq, parRep)
		}
	}
}

func TestParallelEquivalenceMultiParty(t *testing.T) {
	fn, err := multiparty.Concat(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := multiparty.NewGMWHalf(fn)
	sampler := func(r *rand.Rand) []sim.Value {
		in := make([]sim.Value, 4)
		for i := range in {
			in[i] = uint64(r.Intn(16))
		}
		return in
	}
	// t = n/2 setup attacker: reconstructs from the coalition's shares and
	// aborts the setup — a stateful, cloneable multi-party strategy.
	adv := multiparty.NewGMWSetupAttacker(1, 2)
	seq, err := EstimateUtility(p, adv, StandardPayoff(), sampler, 60, 9)
	if err != nil {
		t.Fatal(err)
	}
	if seq.EventFreq[E10] != 1 {
		t.Fatalf("fixture should provoke E10 every run, got %v", seq.EventFreq)
	}
	parRep, err := EstimateUtility(p, adv, StandardPayoff(), sampler, 60, 9, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, parRep) {
		t.Errorf("multi-party report differs:\nseq: %+v\npar: %+v", seq, parRep)
	}
}

func TestParallelismExceedsRuns(t *testing.T) {
	seq, err := EstimateUtility(flipProtocol{}, &grabber{}, StandardPayoff(), uniformInputs, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	parRep, err := EstimateUtility(flipProtocol{}, &grabber{}, StandardPayoff(), uniformInputs, 5, 11, WithParallelism(64))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, parRep) {
		t.Errorf("parallelism > runs: report differs:\nseq: %+v\npar: %+v", seq, parRep)
	}
}

func TestParallelErrNoRuns(t *testing.T) {
	for _, runs := range []int{0, -3} {
		if _, err := EstimateUtility(flipProtocol{}, sim.Passive{}, StandardPayoff(),
			uniformInputs, runs, 1, WithParallelism(4)); !errors.Is(err, ErrNoRuns) {
			t.Errorf("runs=%d: %v, want ErrNoRuns", runs, err)
		}
	}
}

// noClone is a deliberately non-cloneable strategy: CloneAdversary
// returning nil signals "this instance cannot be copied".
type noClone struct{ *grabber }

func (noClone) CloneAdversary() sim.Adversary { return nil }

func TestParallelNonCloneableFallsBackToSequential(t *testing.T) {
	adv := noClone{&grabber{}}
	if _, ok := sim.CloneAdversary(adv); ok {
		t.Fatal("fixture should not be cloneable")
	}
	seq, err := EstimateUtility(flipProtocol{}, noClone{&grabber{}}, StandardPayoff(), uniformInputs, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	parRep, err := EstimateUtility(flipProtocol{}, adv, StandardPayoff(), uniformInputs, 40, 5, WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, parRep) {
		t.Errorf("fallback path differs:\nseq: %+v\npar: %+v", seq, parRep)
	}
}

func TestSupUtilityParallelismEquivalence(t *testing.T) {
	mkSpace := func() []NamedAdversary {
		return []NamedAdversary{
			{Name: "passive", Adv: sim.Passive{}},
			{Name: "grabber", Adv: &grabber{}},
			{Name: "grabber2", Adv: &grabber{}},
		}
	}
	seq, err := SupUtility(flipProtocol{}, mkSpace(), StandardPayoff(), uniformInputs, 80, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 2, 16} {
		got, err := SupUtility(flipProtocol{}, mkSpace(), StandardPayoff(), uniformInputs, 80, 13, WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, got) {
			t.Errorf("parallelism %d: sup report differs:\nseq: %+v\npar: %+v", par, seq, got)
		}
	}
	// A single-strategy space spends the parallelism inside the estimate;
	// the result must still match.
	one := []NamedAdversary{{Name: "grabber", Adv: &grabber{}}}
	seqOne, err := SupUtility(flipProtocol{}, one, StandardPayoff(), uniformInputs, 80, 13)
	if err != nil {
		t.Fatal(err)
	}
	parOne, err := SupUtility(flipProtocol{}, one, StandardPayoff(), uniformInputs, 80, 13, WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqOne, parOne) {
		t.Errorf("single-strategy sup differs:\nseq: %+v\npar: %+v", seqOne, parOne)
	}
}

// failingProtocol errors in Setup, exercising the estimator error paths.
type failingProtocol struct{ flipProtocol }

func (failingProtocol) Setup([]sim.Value, *rand.Rand) ([]sim.Value, error) {
	return nil, fmt.Errorf("boom")
}

func TestParallelErrorMatchesSequential(t *testing.T) {
	_, seqErr := EstimateUtility(failingProtocol{}, &grabber{}, StandardPayoff(), uniformInputs, 10, 3)
	if seqErr == nil {
		t.Fatal("sequential run should fail")
	}
	_, parErr := EstimateUtility(failingProtocol{}, &grabber{}, StandardPayoff(), uniformInputs, 10, 3, WithParallelism(4))
	if parErr == nil {
		t.Fatal("parallel run should fail")
	}
	// Deterministic reporting: both paths name the lowest failing run.
	if seqErr.Error() != parErr.Error() {
		t.Errorf("error mismatch: %q vs %q", seqErr, parErr)
	}
}
