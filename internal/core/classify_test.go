package core

import (
	"testing"

	"repro/internal/sim"
)

func mkTrace(n, t int, learned, delivered bool) *sim.Trace {
	tr := &sim.Trace{
		Inputs:         make([]sim.Value, n),
		ExpectedOutput: uint64(7),
		Corrupted:      make(map[sim.PartyID]bool),
		HonestOutputs:  make(map[sim.PartyID]sim.OutputRecord),
	}
	for i := 1; i <= t; i++ {
		tr.Corrupted[sim.PartyID(i)] = true
	}
	for i := t + 1; i <= n; i++ {
		if delivered {
			tr.HonestOutputs[sim.PartyID(i)] = sim.OutputRecord{Value: uint64(7), OK: true}
		} else {
			tr.HonestOutputs[sim.PartyID(i)] = sim.OutputRecord{OK: false}
		}
	}
	if learned {
		tr.AdvLearned = true
		tr.AdvValue = uint64(7)
	}
	return tr
}

func TestClassifyMatrix(t *testing.T) {
	tests := []struct {
		name               string
		n, t               int
		learned, delivered bool
		want               Event
	}{
		{"no corruption delivered", 2, 0, false, true, E01},
		{"no corruption undelivered", 2, 0, false, false, E00},
		{"all corrupted", 2, 2, true, true, E11},
		{"all corrupted not learned", 3, 3, false, false, E11},
		{"learned delivered", 2, 1, true, true, E11},
		{"learned undelivered", 2, 1, true, false, E10},
		{"unlearned delivered", 2, 1, false, true, E01},
		{"unlearned undelivered", 2, 1, false, false, E00},
		{"multi learned undelivered", 5, 3, true, false, E10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			oc := Classify(mkTrace(tt.n, tt.t, tt.learned, tt.delivered))
			if oc.Event != tt.want {
				t.Errorf("event = %v, want %v", oc.Event, tt.want)
			}
			if oc.Corrupted != tt.t {
				t.Errorf("corrupted = %d, want %d", oc.Corrupted, tt.t)
			}
		})
	}
}

func TestClassifyPartialDeliveryIsNotDelivery(t *testing.T) {
	// 3 parties, 1 corrupted, one honest delivered and one aborted:
	// counts as not-delivered (F⊥ aborts set everyone to ⊥).
	tr := mkTrace(3, 1, true, true)
	tr.HonestOutputs[3] = sim.OutputRecord{OK: false}
	if oc := Classify(tr); oc.Event != E10 {
		t.Errorf("partial delivery event = %v, want E10", oc.Event)
	}
}

func TestClassifyCorrectnessViolation(t *testing.T) {
	tr := mkTrace(2, 1, false, true)
	tr.HonestOutputs[2] = sim.OutputRecord{Value: uint64(999), OK: true}
	oc := Classify(tr)
	if !oc.CorrectnessViolation {
		t.Error("wrong honest output not flagged")
	}
	// A wrong output is not delivery: event must not be E01.
	if oc.Event == E01 {
		t.Error("wrong output classified as delivered")
	}
}

func TestClassifyPrivacyBreach(t *testing.T) {
	tr := mkTrace(2, 1, false, true)
	tr.PrivacyBreach = true
	if oc := Classify(tr); !oc.PrivacyBreach {
		t.Error("privacy breach not propagated")
	}
}
