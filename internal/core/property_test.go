package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// Property tests on classifier and utility invariants.

// randomTrace builds an arbitrary-but-wellformed trace from fuzz inputs.
func randomTrace(n, t int, learned, delivered, breach bool) *sim.Trace {
	if n < 1 {
		n = 1
	}
	n = n%8 + 1
	if t < 0 {
		t = -t
	}
	t = t % (n + 1)
	tr := &sim.Trace{
		Inputs:         make([]sim.Value, n),
		ExpectedOutput: uint64(7),
		Corrupted:      make(map[sim.PartyID]bool),
		HonestOutputs:  make(map[sim.PartyID]sim.OutputRecord),
		PrivacyBreach:  breach,
	}
	for i := 1; i <= t; i++ {
		tr.Corrupted[sim.PartyID(i)] = true
	}
	for i := t + 1; i <= n; i++ {
		if delivered {
			tr.HonestOutputs[sim.PartyID(i)] = sim.OutputRecord{Value: uint64(7), OK: true}
		} else {
			tr.HonestOutputs[sim.PartyID(i)] = sim.OutputRecord{OK: false}
		}
	}
	if learned {
		tr.AdvLearned = true
		tr.AdvValue = uint64(7)
	}
	return tr
}

func TestClassifyAlwaysProducesValidEvent(t *testing.T) {
	f := func(n, tc int, learned, delivered, breach bool) bool {
		oc := Classify(randomTrace(n, tc, learned, delivered, breach))
		switch oc.Event {
		case E00, E01, E10, E11:
			return true
		default:
			return false
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUtilityBoundedByPayoffRange(t *testing.T) {
	// For any trace, the payoff of its event lies in [min γ, max γ].
	g := StandardPayoff()
	f := func(n, tc int, learned, delivered, breach bool) bool {
		oc := Classify(randomTrace(n, tc, learned, delivered, breach))
		u := g.Of(oc.Event)
		return u >= 0 && u <= g.G10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestClassifyMonotoneInLearning(t *testing.T) {
	// Fixing delivery, learning can only move the event "up" in attacker
	// preference for Γ+fair vectors: E00→E10 and E01→E11.
	g := StandardPayoff()
	f := func(n, tc int, delivered bool) bool {
		if n < 0 {
			n = -n
		}
		n = n%6 + 2
		if tc < 0 {
			tc = -tc
		}
		tc = tc%(n-1) + 1 // 1..n-1: genuine partial corruption
		base := Classify(randomTrace(n, tc, false, delivered, false))
		up := Classify(randomTrace(n, tc, true, delivered, false))
		return g.Of(up.Event) >= g.Of(base.Event)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClassifyDeliveryNeverHelpsBeyondE10(t *testing.T) {
	// With learning fixed true, withholding delivery gives E10 — the
	// maximal event — and delivering gives E11: denial is always weakly
	// preferred by a Γfair attacker.
	g := StandardPayoff()
	f := func(n, tc int) bool {
		if n < 0 {
			n = -n
		}
		n = n%6 + 2
		if tc < 0 {
			tc = -tc
		}
		tc = tc%(n-1) + 1
		deny := Classify(randomTrace(n, tc, true, false, false))
		give := Classify(randomTrace(n, tc, true, true, false))
		return g.Of(deny.Event) >= g.Of(give.Event)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEstimateUtilityWithinEventHull(t *testing.T) {
	// Any measured utility is a convex combination of the payoff values.
	g := StandardPayoff()
	rep, err := EstimateUtility(flipProtocol{}, &grabber{}, g, uniformInputs, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Utility.Mean < 0 || rep.Utility.Mean > g.G10 {
		t.Errorf("utility %v outside [0, γ10]", rep.Utility.Mean)
	}
	var total float64
	for _, e := range Events() {
		total += rep.EventFreq[e]
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("event frequencies sum to %v", total)
	}
}

func TestSupUtilityIsMaxOfAll(t *testing.T) {
	advs := []NamedAdversary{
		{Name: "passive", Adv: sim.Passive{}},
		{Name: "grabber", Adv: &grabber{}},
	}
	rep, err := SupUtility(flipProtocol{}, advs, StandardPayoff(), uniformInputs, 100, 6)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range rep.All {
		if r.Utility.Mean > rep.BestReport.Utility.Mean {
			t.Errorf("strategy %s (%v) beats the reported best (%v)",
				name, r.Utility.Mean, rep.BestReport.Utility.Mean)
		}
	}
}

func TestPayoffOrderingInvariants(t *testing.T) {
	// Any valid Γ+fair vector orders the events E01 ≤ E00 ≤ E11 < E10.
	f := func(a, b, c uint16) bool {
		g := Payoff{
			G01: 0,
			G00: float64(a % 100),
			G11: float64(a%100) + float64(b%100),
			G10: float64(a%100) + float64(b%100) + float64(c%100) + 1,
		}
		if g.ValidateFairPlus() != nil {
			return true // not a Γ+fair instance; nothing to check
		}
		return g.Of(E01) <= g.Of(E00) && g.Of(E00) <= g.Of(E11) && g.Of(E11) < g.Of(E10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFixedInputsIndependentOfRNG(t *testing.T) {
	s := FixedInputs(uint64(3))
	a := s(rand.New(rand.NewSource(1)))
	b := s(rand.New(rand.NewSource(999)))
	if !sim.ValuesEqual(a, b) {
		t.Error("FixedInputs depends on the RNG")
	}
}
