package field

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewReduces(t *testing.T) {
	tests := []struct {
		name string
		in   uint64
		want Element
	}{
		{"zero", 0, 0},
		{"one", 1, 1},
		{"modulus", Modulus, 0},
		{"modulus+1", Modulus + 1, 1},
		{"max uint64", ^uint64(0), Element(^uint64(0) % Modulus)},
		{"2*modulus", 2 * Modulus, 0},
		{"below modulus", Modulus - 1, Element(Modulus - 1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := New(tt.in); got != tt.want {
				t.Errorf("New(%d) = %d, want %d", tt.in, got, tt.want)
			}
		})
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := New(a), New(b)
		return x.Add(y).Sub(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddCommutative(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := New(a), New(b)
		return x.Add(y) == y.Add(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddAssociative(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := New(a), New(b), New(c)
		return x.Add(y).Add(z) == x.Add(y.Add(z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := New(a), New(b)
		return x.Mul(y) == y.Mul(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := New(a), New(b), New(c)
		return x.Mul(y).Mul(z) == x.Mul(y.Mul(z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := New(a), New(b), New(c)
		return x.Mul(y.Add(z)) == x.Mul(y).Add(x.Mul(z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeg(t *testing.T) {
	f := func(a uint64) bool {
		x := New(a)
		return x.Add(x.Neg()) == Zero
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulIdentity(t *testing.T) {
	f := func(a uint64) bool {
		x := New(a)
		return x.Mul(One) == x && x.Mul(Zero) == Zero
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInv(t *testing.T) {
	f := func(a uint64) bool {
		x := New(a)
		if x.IsZero() {
			return true
		}
		inv, err := x.Inv()
		if err != nil {
			return false
		}
		return x.Mul(inv) == One
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvZero(t *testing.T) {
	if _, err := Zero.Inv(); err != ErrNotInvertible {
		t.Errorf("Inv(0) error = %v, want ErrNotInvertible", err)
	}
	if _, err := One.Div(Zero); err != ErrNotInvertible {
		t.Errorf("Div by 0 error = %v, want ErrNotInvertible", err)
	}
}

func TestDiv(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := New(a), New(b)
		if y.IsZero() {
			return true
		}
		q, err := x.Div(y)
		if err != nil {
			return false
		}
		return q.Mul(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExp(t *testing.T) {
	tests := []struct {
		base Element
		k    uint64
		want Element
	}{
		{2, 0, 1},
		{2, 1, 2},
		{2, 10, 1024},
		{3, 4, 81},
		{0, 5, 0},
		{0, 0, 1}, // convention: 0^0 = 1
	}
	for _, tt := range tests {
		if got := tt.base.Exp(tt.k); got != tt.want {
			t.Errorf("%v^%d = %v, want %v", tt.base, tt.k, got, tt.want)
		}
	}
}

func TestExpFermat(t *testing.T) {
	// a^(p-1) = 1 for a != 0 (Fermat).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		a := New(rng.Uint64())
		if a.IsZero() {
			continue
		}
		if got := a.Exp(Modulus - 1); got != One {
			t.Fatalf("a^(p-1) = %v for a=%v, want 1", got, a)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		x := New(a)
		y, err := FromBytes(x.Bytes())
		return err == nil && x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromBytesBadLength(t *testing.T) {
	if _, err := FromBytes([]byte{1, 2, 3}); err == nil {
		t.Error("FromBytes(3 bytes) succeeded, want error")
	}
}

func TestRandUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		e, err := Rand(rng)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(e) >= Modulus {
			t.Fatalf("Rand produced out-of-range element %d", e)
		}
	}
}

func TestRandNotConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := make(map[Element]bool)
	for i := 0; i < 32; i++ {
		e, err := Rand(rng)
		if err != nil {
			t.Fatal(err)
		}
		seen[e] = true
	}
	if len(seen) < 30 {
		t.Errorf("expected ~32 distinct random elements, got %d", len(seen))
	}
}

func TestRandReadError(t *testing.T) {
	if _, err := Rand(bytes.NewReader(nil)); err == nil {
		t.Error("Rand on empty reader succeeded, want error")
	}
}

func TestSum(t *testing.T) {
	if got := Sum(nil); got != Zero {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
	if got := Sum([]Element{1, 2, 3}); got != Element(6) {
		t.Errorf("Sum(1,2,3) = %v, want 6", got)
	}
	// Wrap-around.
	if got := Sum([]Element{Element(Modulus - 1), 2}); got != One {
		t.Errorf("Sum(p-1, 2) = %v, want 1", got)
	}
}

func TestEval(t *testing.T) {
	// f(x) = 3 + 2x + x^2; f(2) = 3 + 4 + 4 = 11.
	coeffs := []Element{3, 2, 1}
	if got := Eval(coeffs, 2); got != Element(11) {
		t.Errorf("Eval = %v, want 11", got)
	}
	if got := Eval(nil, 5); got != Zero {
		t.Errorf("Eval(empty) = %v, want 0", got)
	}
}

func TestInterpolateRecoversConstant(t *testing.T) {
	// Degree-2 polynomial with secret 42 at 0.
	rng := rand.New(rand.NewSource(9))
	coeffs := []Element{42}
	for i := 0; i < 2; i++ {
		c, err := Rand(rng)
		if err != nil {
			t.Fatal(err)
		}
		coeffs = append(coeffs, c)
	}
	xs := []Element{1, 2, 3}
	ys := make([]Element, len(xs))
	for i, x := range xs {
		ys[i] = Eval(coeffs, x)
	}
	got, err := Interpolate(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if got != Element(42) {
		t.Errorf("Interpolate = %v, want 42", got)
	}
}

func TestInterpolateQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		deg := rng.Intn(5) + 1
		coeffs := make([]Element, deg)
		for i := range coeffs {
			c, err := Rand(rng)
			if err != nil {
				t.Fatal(err)
			}
			coeffs[i] = c
		}
		xs := make([]Element, deg)
		ys := make([]Element, deg)
		for i := range xs {
			xs[i] = Element(i + 1)
			ys[i] = Eval(coeffs, xs[i])
		}
		got, err := Interpolate(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if got != coeffs[0] {
			t.Fatalf("trial %d: Interpolate = %v, want %v", trial, got, coeffs[0])
		}
	}
}

func TestInterpolateErrors(t *testing.T) {
	if _, err := Interpolate(nil, nil); err == nil {
		t.Error("Interpolate(no points) succeeded")
	}
	if _, err := Interpolate([]Element{1}, []Element{1, 2}); err == nil {
		t.Error("Interpolate(mismatched lengths) succeeded")
	}
	if _, err := Interpolate([]Element{1, 1}, []Element{2, 3}); err == nil {
		t.Error("Interpolate(duplicate xs) succeeded")
	}
}

func BenchmarkMul(b *testing.B) {
	x, y := New(123456789123456789), New(987654321987654321)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = x.Mul(y)
	}
	_ = x
}

func BenchmarkInv(b *testing.B) {
	x := New(123456789123456789)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := x.Inv(); err != nil {
			b.Fatal(err)
		}
	}
}
