// Package field implements arithmetic in the prime field GF(p) for the
// Mersenne prime p = 2^61 - 1.
//
// The field underlies the information-theoretic MACs and the secret-sharing
// schemes used by the fairness protocols: one-time MAC tags are computed as
// a·m + b over GF(p), and additive/Shamir shares are field elements. The
// Mersenne modulus admits branch-light reduction, keeping the simulator's
// inner loops cheap.
package field

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"math/rand"
)

// Modulus is the field characteristic, the Mersenne prime 2^61 - 1.
const Modulus uint64 = (1 << 61) - 1

// Element is an element of GF(2^61-1), always kept reduced to [0, Modulus).
type Element uint64

// Common constants.
const (
	Zero Element = 0
	One  Element = 1
)

// ErrNotInvertible is returned when asking for the inverse of zero.
var ErrNotInvertible = errors.New("field: zero has no multiplicative inverse")

// New reduces an arbitrary uint64 into the field.
func New(v uint64) Element {
	// Two-step Mersenne reduction: v = hi·2^61 + lo ≡ hi + lo (mod p).
	v = (v >> 61) + (v & uint64(Modulus))
	if v >= Modulus {
		v -= Modulus
	}
	return Element(v)
}

// Uint64 returns the canonical representative in [0, Modulus).
func (e Element) Uint64() uint64 { return uint64(e) }

// IsZero reports whether e is the additive identity.
func (e Element) IsZero() bool { return e == 0 }

// Add returns e + o mod p.
func (e Element) Add(o Element) Element {
	s := uint64(e) + uint64(o) // < 2^62, no overflow
	if s >= Modulus {
		s -= Modulus
	}
	return Element(s)
}

// Sub returns e - o mod p.
func (e Element) Sub(o Element) Element {
	d := uint64(e) - uint64(o)
	if uint64(e) < uint64(o) {
		d += Modulus
	}
	return Element(d)
}

// Neg returns -e mod p.
func (e Element) Neg() Element {
	if e == 0 {
		return 0
	}
	return Element(Modulus - uint64(e))
}

// Mul returns e · o mod p using a 128-bit product and Mersenne folding.
func (e Element) Mul(o Element) Element {
	hi, lo := bits.Mul64(uint64(e), uint64(o))
	// Product = hi·2^64 + lo = (hi·8 + lo>>61)·2^61 + (lo & p).
	// Since 2^61 ≡ 1 (mod p): product ≡ hi·8 + lo>>61 + (lo & p).
	folded := hi<<3 | lo>>61
	rem := lo & uint64(Modulus)
	s := folded + rem // folded < 2^61+…, still fits: hi < 2^58 so folded < 2^61
	s = (s >> 61) + (s & uint64(Modulus))
	if s >= Modulus {
		s -= Modulus
	}
	return Element(s)
}

// Exp returns e^k mod p by square-and-multiply.
func (e Element) Exp(k uint64) Element {
	result := One
	base := e
	for k > 0 {
		if k&1 == 1 {
			result = result.Mul(base)
		}
		base = base.Mul(base)
		k >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse via Fermat's little theorem
// (e^(p-2)). It returns ErrNotInvertible for zero.
func (e Element) Inv() (Element, error) {
	if e == 0 {
		return 0, ErrNotInvertible
	}
	return e.Exp(Modulus - 2), nil
}

// Div returns e / o, or ErrNotInvertible when o is zero.
func (e Element) Div(o Element) (Element, error) {
	inv, err := o.Inv()
	if err != nil {
		return 0, err
	}
	return e.Mul(inv), nil
}

// String renders the canonical representative.
func (e Element) String() string { return fmt.Sprintf("%d", uint64(e)) }

// Bytes returns the 8-byte big-endian encoding of the element.
func (e Element) Bytes() []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(e))
	return b[:]
}

// FromBytes decodes an 8-byte big-endian encoding, reducing mod p.
func FromBytes(b []byte) (Element, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("field: need 8 bytes, got %d", len(b))
	}
	return New(binary.BigEndian.Uint64(b)), nil
}

// Rand draws a uniform field element from r. It uses rejection sampling so
// the distribution is exactly uniform over [0, Modulus).
func Rand(r io.Reader) (Element, error) {
	// Concrete fast path: with a *rand.Rand the read buffer stays on the
	// stack (the interface call below forces it to the heap). The byte
	// stream consumed is identical either way.
	if rr, ok := r.(*rand.Rand); ok {
		return randFromRand(rr)
	}
	var buf [8]byte
	for {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, fmt.Errorf("field: read randomness: %w", err)
		}
		v := binary.BigEndian.Uint64(buf[:]) >> 3 // 61 random bits
		if v < Modulus {
			return Element(v), nil
		}
	}
}

func randFromRand(r *rand.Rand) (Element, error) {
	var buf [8]byte
	for {
		if _, err := r.Read(buf[:]); err != nil {
			return 0, fmt.Errorf("field: read randomness: %w", err)
		}
		v := binary.BigEndian.Uint64(buf[:]) >> 3 // 61 random bits
		if v < Modulus {
			return Element(v), nil
		}
	}
}

// Sum adds a slice of elements.
func Sum(elems []Element) Element {
	var acc Element
	for _, e := range elems {
		acc = acc.Add(e)
	}
	return acc
}

// Eval evaluates the polynomial with the given coefficients (constant term
// first) at point x, by Horner's rule.
func Eval(coeffs []Element, x Element) Element {
	var acc Element
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = acc.Mul(x).Add(coeffs[i])
	}
	return acc
}

// Interpolate returns the value at x=0 of the unique polynomial of degree
// < len(points) passing through the given (x, y) points (Lagrange
// interpolation at zero). The x coordinates must be distinct and nonzero.
func Interpolate(xs, ys []Element) (Element, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("field: interpolate: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return 0, errors.New("field: interpolate: no points")
	}
	var secret Element
	for i := range xs {
		num, den := One, One
		for j := range xs {
			if i == j {
				continue
			}
			num = num.Mul(xs[j])
			den = den.Mul(xs[j].Sub(xs[i]))
		}
		coef, err := num.Div(den)
		if err != nil {
			return 0, fmt.Errorf("field: interpolate: duplicate x coordinate: %w", err)
		}
		secret = secret.Add(ys[i].Mul(coef))
	}
	return secret, nil
}
