package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/protocols/contract"
	"repro/internal/protocols/twoparty"
	"repro/internal/sim"
)

// contractSampler draws random contract signatures.
func contractSampler(r *rand.Rand) []sim.Value {
	return []sim.Value{uint64(r.Int63()), uint64(r.Int63())}
}

// swapSampler draws random swap-function inputs.
func swapSampler(r *rand.Rand) []sim.Value {
	return []sim.Value{uint64(r.Intn(1 << 20)), uint64(r.Intn(1 << 20))}
}

// E01ContractSigning reproduces the Introduction's headline comparison:
// the best attacker earns γ10 against Π1 but only (γ10+γ11)/2 against
// Π2 — "protocol Π2 is twice as fair as protocol Π1".
func E01ContractSigning(cfg Config) (Result, error) {
	g := cfg.Gamma
	res := Result{
		ID:    "E01",
		Title: "Contract signing: Π2 is twice as fair as Π1",
		Claim: "Introduction; Π1 → γ10, Π2 → (γ10+γ11)/2",
	}
	sup1, err := cfg.sup(contract.Pi1{}, core.SliceSpace(adversary.TwoPartySpace(contract.Pi1{}.NumRounds())),
		g, contractSampler, cfg.SupRuns, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	sup2, err := cfg.sup(contract.Pi2{}, core.SliceSpace(adversary.TwoPartySpace(contract.Pi2{}.NumRounds())),
		g, contractSampler, cfg.SupRuns, cfg.Seed+1)
	if err != nil {
		return Result{}, err
	}
	r1 := eqRow("sup u(Π1)", g.G10, sup1.BestReport.Utility.Mean, sup1.BestReport.Utility.HalfWidth, cfg.Tolerance)
	r1.Note = "best: " + sup1.Best
	r2 := eqRow("sup u(Π2)", core.TwoPartyOptimalBound(g), sup2.BestReport.Utility.Mean,
		sup2.BestReport.Utility.HalfWidth, cfg.Tolerance)
	r2.Note = "best: " + sup2.Best
	rel := core.Compare(sup2.BestReport.Utility, sup1.BestReport.Utility, cfg.Tolerance)
	res.Rows = append(res.Rows, r1, r2,
		boolRow("Π2 strictly fairer than Π1", true, rel == core.StrictlyFairer))
	return res, nil
}

// E02TwoPartyUpper reproduces Theorem 3: no adversary in the strategy
// space earns more than (γ10+γ11)/2 against ΠOpt-2SFE.
func E02TwoPartyUpper(cfg Config) (Result, error) {
	g := cfg.Gamma
	p := twoparty.New(twoparty.Swap())
	res := Result{
		ID:    "E02",
		Title: "ΠOpt-2SFE upper bound",
		Claim: "Theorem 3: u_A(ΠOpt-2SFE, A) ≤ (γ10+γ11)/2",
	}
	sup, err := cfg.sup(p, core.SliceSpace(adversary.TwoPartySpace(p.NumRounds())), g, swapSampler, cfg.SupRuns, cfg.Seed+2)
	if err != nil {
		return Result{}, err
	}
	row := leRow("sup u(ΠOpt-2SFE)", core.TwoPartyOptimalBound(g),
		sup.BestReport.Utility.Mean, sup.BestReport.Utility.HalfWidth, cfg.Tolerance)
	row.Note = "best: " + sup.Best
	res.Rows = append(res.Rows, row)
	// Event split of the best one-sided attack: E10 and E11 each ~1/2.
	rep, err := cfg.estimate(p, adversary.NewLockAbort(1), g, swapSampler, cfg.Runs, cfg.Seed+3)
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows,
		eqRow("Pr[E10] under A1", 0.5, rep.EventFreq[core.E10], rep.Utility.HalfWidth, cfg.Tolerance),
		eqRow("Pr[E11] under A1", 0.5, rep.EventFreq[core.E11], rep.Utility.HalfWidth, cfg.Tolerance),
	)
	return res, nil
}

// E03TwoPartyLower reproduces Theorem 4 and Lemma 7: Agen achieves
// (γ10+γ11)/2 on the swap function, the pair A1/A2 sums to γ10+γ11, and
// the fixed-order baseline concedes γ10.
func E03TwoPartyLower(cfg Config) (Result, error) {
	g := cfg.Gamma
	p := twoparty.New(twoparty.Swap())
	res := Result{
		ID:    "E03",
		Title: "Two-party lower bounds (swap function)",
		Claim: "Theorem 4: u(Agen) ≥ (γ10+γ11)/2; Lemma 7: u(A1)+u(A2) ≥ γ10+γ11",
	}
	agen, err := cfg.estimate(p, adversary.NewAgen(), g, swapSampler, cfg.Runs, cfg.Seed+4)
	if err != nil {
		return Result{}, err
	}
	u1, err := cfg.estimate(p, adversary.NewLockAbort(1), g, swapSampler, cfg.Runs, cfg.Seed+5)
	if err != nil {
		return Result{}, err
	}
	u2, err := cfg.estimate(p, adversary.NewLockAbort(2), g, swapSampler, cfg.Runs, cfg.Seed+6)
	if err != nil {
		return Result{}, err
	}
	fixed, err := cfg.estimate(twoparty.NewFixedOrder(twoparty.Swap(), 2),
		adversary.NewLockAbort(2), g, swapSampler, cfg.Runs, cfg.Seed+7)
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows,
		geRow("u(Agen) vs (γ10+γ11)/2", core.TwoPartyOptimalBound(g), agen.Utility.Mean, agen.Utility.HalfWidth, cfg.Tolerance),
		geRow("u(A1)+u(A2) vs γ10+γ11", core.TwoPartyLowerPairSum(g),
			u1.Utility.Mean+u2.Utility.Mean, u1.Utility.HalfWidth+u2.Utility.HalfWidth, cfg.Tolerance),
		eqRow("fixed-order baseline", g.G10, fixed.Utility.Mean, fixed.Utility.HalfWidth, cfg.Tolerance),
	)
	return res, nil
}

// E04ReconstructionRounds reproduces Lemmas 9 and 10: ΠOpt-2SFE's two
// reconstruction rounds are optimal — a single simultaneous round grants
// the rushing aborter γ10.
func E04ReconstructionRounds(cfg Config) (Result, error) {
	g := cfg.Gamma
	res := Result{
		ID:    "E04",
		Title: "Reconstruction-round optimality",
		Claim: "Lemma 9: two rounds suffice; Lemma 10: one round forces γ10",
	}
	// Aborting during/before the setup phase of ΠOpt-2SFE gains nothing
	// (Lemma 9's content: the adversary has no advantage before the
	// reconstruction phase).
	opt := twoparty.New(twoparty.Swap())
	setupAbort, err := cfg.estimate(opt, adversary.NewSetupAbort(2), g, swapSampler, cfg.Runs, cfg.Seed+8)
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows,
		eqRow("setup abort utility (=γ01)", g.G01, setupAbort.Utility.Mean, setupAbort.Utility.HalfWidth, cfg.Tolerance))

	// The single-round protocol: rushing abort at round 1 earns γ10.
	one := twoparty.NewOneRound(twoparty.Swap())
	rush, err := cfg.estimate(one, adversary.NewAbortAt(1, 2), g, swapSampler, cfg.Runs, cfg.Seed+9)
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows,
		eqRow("one-round protocol, rushing abort", g.G10, rush.Utility.Mean, rush.Utility.HalfWidth, cfg.Tolerance))

	// And the comparison: the one-round protocol is strictly less fair.
	res.Rows = append(res.Rows, boolRow("one-round strictly less fair than ΠOpt-2SFE", true,
		rush.Utility.Mean > core.TwoPartyOptimalBound(g)+cfg.Tolerance))
	return res, nil
}

// describeEvents summarizes an event distribution for notes.
func describeEvents(rep core.UtilityReport) string {
	return fmt.Sprintf("E00=%.2f E01=%.2f E10=%.2f E11=%.2f",
		rep.EventFreq[core.E00], rep.EventFreq[core.E01], rep.EventFreq[core.E10], rep.EventFreq[core.E11])
}
