// Package experiments regenerates every quantitative claim of the paper
// as a paper-vs-measured table. The paper has no numbered tables or
// figures — its evaluation is the set of theorems and lemmas that pin
// down exact attacker utilities — so each experiment corresponds to one
// such result (see DESIGN.md §3 for the index).
//
// All experiments are deterministic given (Runs, Seed) and share a
// Γ+fair payoff vector; E11/E12 use the Section 5 vector (0,0,1,0).
package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mathx"
)

// Config controls the Monte-Carlo effort.
type Config struct {
	// Runs is the number of simulated executions per measurement.
	Runs int
	// SupRuns is the per-strategy run count inside sup-searches (smaller,
	// since a whole space is swept).
	SupRuns int
	// Seed drives all randomness.
	Seed int64
	// Gamma is the payoff vector for the Γ+fair experiments.
	Gamma core.Payoff
	// Tolerance widens the paper-vs-measured comparison (sampling slack).
	Tolerance float64
}

// DefaultConfig is the configuration used for EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		Runs:      2000,
		SupRuns:   400,
		Seed:      20150302, // the paper's revision date
		Gamma:     core.StandardPayoff(),
		Tolerance: 0.05,
	}
}

// QuickConfig is a fast configuration for benchmarks and smoke tests.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Runs = 200
	cfg.SupRuns = 80
	cfg.Tolerance = 0.12
	return cfg
}

// Row is one paper-vs-measured comparison.
type Row struct {
	// Label names the quantity.
	Label string
	// Paper is the closed-form value the paper predicts. NaN when the
	// paper only gives an inequality; then Bound and Dir apply.
	Paper float64
	// Measured is the Monte-Carlo estimate.
	Measured float64
	// CI is the half-width of the 95% confidence interval.
	CI float64
	// Dir is the comparison direction: "=", "<=", ">=".
	Dir string
	// Pass reports whether the measurement is consistent with the paper.
	Pass bool
	// Note carries extra context (best strategy name, event split, …).
	Note string
}

// Result is one experiment's outcome.
type Result struct {
	// ID is the experiment identifier (E01..E12).
	ID string
	// Title describes the claim under test.
	Title string
	// Claim cites the paper result.
	Claim string
	// Rows are the comparisons.
	Rows []Row
}

// Pass reports whether every row passed.
func (r Result) Pass() bool {
	for _, row := range r.Rows {
		if !row.Pass {
			return false
		}
	}
	return true
}

// eqRow builds an equality comparison row.
func eqRow(label string, paper, measured, ci, tol float64) Row {
	return Row{
		Label: label, Paper: paper, Measured: measured, CI: ci, Dir: "=",
		Pass: math.Abs(measured-paper) <= tol+ci,
	}
}

// leRow builds a measured ≤ paper row.
func leRow(label string, paper, measured, ci, tol float64) Row {
	return Row{
		Label: label, Paper: paper, Measured: measured, CI: ci, Dir: "<=",
		Pass: mathx.LessOrApprox(measured-ci, paper, tol),
	}
}

// geRow builds a measured ≥ paper row.
func geRow(label string, paper, measured, ci, tol float64) Row {
	return Row{
		Label: label, Paper: paper, Measured: measured, CI: ci, Dir: ">=",
		Pass: mathx.GreaterOrApprox(measured+ci, paper, tol),
	}
}

// boolRow builds a yes/no expectation row (1 = holds).
func boolRow(label string, want, got bool) Row {
	toF := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	return Row{Label: label, Paper: toF(want), Measured: toF(got), Dir: "=", Pass: want == got}
}

// Experiment pairs an ID with its runner.
type Experiment struct {
	ID  string
	Run func(Config) (Result, error)
}

// All lists every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"E01", E01ContractSigning},
		{"E02", E02TwoPartyUpper},
		{"E03", E03TwoPartyLower},
		{"E04", E04ReconstructionRounds},
		{"E05", E05MultiPartyUpper},
		{"E06", E06MultiPartyLower},
		{"E07", E07BalancedSum},
		{"E08", E08GMWUnbalanced},
		{"E09", E09Separations},
		{"E10", E10CorruptionCost},
		{"E11", E11GordonKatz},
		{"E12", E12PartialFairnessSeparation},
		{"E13", E13Ablations},
		{"E14", E14AttackGame},
		{"E15", E15SubstrateGap},
	}
}

// RunAll executes every experiment.
func RunAll(cfg Config) ([]Result, error) {
	var out []Result
	for _, e := range All() {
		r, err := e.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}
