// Package experiments regenerates every quantitative claim of the paper
// as a paper-vs-measured table. The paper has no numbered tables or
// figures — its evaluation is the set of theorems and lemmas that pin
// down exact attacker utilities — so each experiment corresponds to one
// such result (see DESIGN.md §3 for the index).
//
// All experiments are deterministic given (Runs, Seed) and share a
// Γ+fair payoff vector; E11/E12 use the Section 5 vector (0,0,1,0).
package experiments

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/sim"
	"repro/internal/sim/trace"
)

// Config controls the Monte-Carlo effort.
type Config struct {
	// Runs is the number of simulated executions per measurement.
	Runs int
	// SupRuns is the per-strategy run count inside sup-searches (smaller,
	// since a whole space is swept).
	SupRuns int
	// Seed drives all randomness.
	Seed int64
	// Gamma is the payoff vector for the Γ+fair experiments.
	Gamma core.Payoff
	// Tolerance widens the paper-vs-measured comparison (sampling slack).
	Tolerance float64
	// Parallelism is the worker count for RunAll and for every estimate
	// inside the experiments: 0 selects core.DefaultParallelism (one
	// worker per CPU), 1 forces sequential execution. Results are
	// identical either way — see the determinism contract on
	// core.EstimateUtility.
	Parallelism int
	// Metrics, when non-nil, accumulates the engine metrics (runs,
	// rounds, messages, corruptions, …) of every measurement made through
	// this config. Observation never changes results.
	Metrics *MetricsCollector
	// Trace, when non-nil, receives a JSONL transcript of every simulated
	// run made through this config (labeled with run indices and, inside
	// sup-searches, strategy names).
	Trace *trace.Sink
}

// MetricsCollector aggregates engine metrics across measurements; safe
// for the concurrent estimates RunAll issues.
type MetricsCollector struct {
	mu sync.Mutex
	m  sim.Metrics
}

func (c *MetricsCollector) Add(m sim.Metrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.Add(m)
}

// Total returns the metrics accumulated so far.
func (c *MetricsCollector) Total() sim.Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m
}

// DefaultConfig is the configuration used for EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		Runs:      2000,
		SupRuns:   400,
		Seed:      20150302, // the paper's revision date
		Gamma:     core.StandardPayoff(),
		Tolerance: 0.05,
	}
}

// QuickConfig is a fast configuration for benchmarks and smoke tests.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Runs = 200
	cfg.SupRuns = 80
	cfg.Tolerance = 0.12
	// A fixed worker count (not DefaultParallelism) so that tests exercise
	// the worker pool even on single-CPU hosts.
	cfg.Parallelism = 4
	return cfg
}

// estimate is core.EstimateUtility at the configured parallelism; every
// experiment goes through it so -parallel, the metrics collector, and
// the transcript sink reach each measurement.
func (c Config) estimate(proto sim.Protocol, adv sim.Adversary, g core.Payoff,
	sampler core.InputSampler, runs int, seed int64) (core.UtilityReport, error) {
	opts := []core.Option{core.WithParallelism(c.Parallelism)}
	if c.Trace != nil {
		opts = append(opts, core.WithObserver(func(run int) sim.Observer {
			return c.Trace.Recorder(trace.Meta{Run: run})
		}))
	}
	rep, err := core.EstimateUtility(proto, adv, g, sampler, runs, seed, opts...)
	if err == nil && c.Metrics != nil {
		c.Metrics.Add(rep.Metrics)
	}
	return rep, err
}

// sup is core.SupUtilitySpace at the configured parallelism. Eager
// strategy slices pass through core.SliceSpace at the call site.
func (c Config) sup(proto sim.Protocol, space core.StrategySpace, g core.Payoff,
	sampler core.InputSampler, runs int, seed int64) (core.SupReport, error) {
	opts := []core.Option{core.WithParallelism(c.Parallelism)}
	if c.Trace != nil {
		opts = append(opts, core.WithSupObserver(func(strategy string, run int) sim.Observer {
			return c.Trace.Recorder(trace.Meta{Strategy: strategy, Run: run})
		}))
	}
	rep, err := core.SupUtilitySpace(proto, space, g, sampler, runs, seed, opts...)
	if err == nil && c.Metrics != nil {
		c.Metrics.Add(rep.Metrics)
	}
	return rep, err
}

// Row is one paper-vs-measured comparison.
type Row struct {
	// Label names the quantity.
	Label string
	// Paper is the closed-form value the paper predicts. NaN when the
	// paper only gives an inequality; then Bound and Dir apply.
	Paper float64
	// Measured is the Monte-Carlo estimate.
	Measured float64
	// CI is the half-width of the 95% confidence interval.
	CI float64
	// Dir is the comparison direction: "=", "<=", ">=".
	Dir string
	// Pass reports whether the measurement is consistent with the paper.
	Pass bool
	// Note carries extra context (best strategy name, event split, …).
	Note string
}

// Result is one experiment's outcome.
type Result struct {
	// ID is the experiment identifier (E01..E12).
	ID string
	// Title describes the claim under test.
	Title string
	// Claim cites the paper result.
	Claim string
	// Rows are the comparisons.
	Rows []Row
	// Metrics aggregates the engine events behind this experiment's
	// measurements (filled by RunAll; zero when the runner was called
	// directly without a Config.Metrics collector).
	Metrics sim.Metrics
}

// Pass reports whether every row passed.
func (r Result) Pass() bool {
	for _, row := range r.Rows {
		if !row.Pass {
			return false
		}
	}
	return true
}

// eqRow builds an equality comparison row.
func eqRow(label string, paper, measured, ci, tol float64) Row {
	return Row{
		Label: label, Paper: paper, Measured: measured, CI: ci, Dir: "=",
		Pass: math.Abs(measured-paper) <= tol+ci,
	}
}

// leRow builds a measured ≤ paper row.
func leRow(label string, paper, measured, ci, tol float64) Row {
	return Row{
		Label: label, Paper: paper, Measured: measured, CI: ci, Dir: "<=",
		Pass: mathx.LessOrApprox(measured-ci, paper, tol),
	}
}

// geRow builds a measured ≥ paper row.
func geRow(label string, paper, measured, ci, tol float64) Row {
	return Row{
		Label: label, Paper: paper, Measured: measured, CI: ci, Dir: ">=",
		Pass: mathx.GreaterOrApprox(measured+ci, paper, tol),
	}
}

// boolRow builds a yes/no expectation row (1 = holds).
func boolRow(label string, want, got bool) Row {
	toF := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	return Row{Label: label, Paper: toF(want), Measured: toF(got), Dir: "=", Pass: want == got}
}

// Experiment pairs an ID with its runner.
type Experiment struct {
	ID  string
	Run func(Config) (Result, error)
}

// All lists every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"E01", E01ContractSigning},
		{"E02", E02TwoPartyUpper},
		{"E03", E03TwoPartyLower},
		{"E04", E04ReconstructionRounds},
		{"E05", E05MultiPartyUpper},
		{"E06", E06MultiPartyLower},
		{"E07", E07BalancedSum},
		{"E08", E08GMWUnbalanced},
		{"E09", E09Separations},
		{"E10", E10CorruptionCost},
		{"E11", E11GordonKatz},
		{"E12", E12PartialFairnessSeparation},
		{"E13", E13Ablations},
		{"E14", E14AttackGame},
		{"E15", E15SubstrateGap},
	}
}

// RunAll executes every experiment. With cfg.Parallelism != 1 the
// experiments run concurrently (each is seeded independently from
// cfg.Seed, so the results are identical to the sequential order); the
// returned slice is always in All() order, and on failure the error of
// the earliest experiment is reported.
func RunAll(cfg Config) ([]Result, error) {
	all := All()
	out := make([]Result, len(all))
	errs := make([]error, len(all))
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = core.DefaultParallelism()
	}
	if workers > len(all) {
		workers = len(all)
	}
	// Each experiment runs with its own metrics collector so Result.Metrics
	// is per-experiment; the caller's collector (if any) gets the totals.
	runOne := func(i int) (Result, error) {
		ecfg := cfg
		col := &MetricsCollector{}
		ecfg.Metrics = col
		res, err := all[i].Run(ecfg)
		res.Metrics = col.Total()
		if cfg.Metrics != nil {
			cfg.Metrics.Add(res.Metrics)
		}
		return res, err
	}
	if workers <= 1 {
		for i := range all {
			out[i], errs[i] = runOne(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(all) {
						return
					}
					out[i], errs[i] = runOne(i)
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", all[i].ID, err)
		}
	}
	return out, nil
}
