package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/protocols/gordonkatz"
	"repro/internal/sim"
	"repro/internal/stats"
)

// wilsonRow cross-checks a small empirical frequency against an upper
// bound with a Wilson score interval, which stays informative near 0
// where the Hoeffding/normal half-widths are hopelessly loose. freq is
// the measured frequency over runs trials; the row passes when the
// Wilson lower end stays consistent with freq ≤ bound + tol.
func wilsonRow(label string, bound, freq float64, runs int, tol float64) (Row, error) {
	successes := int64(math.Round(freq * float64(runs)))
	lo, hi, err := stats.WilsonInterval(successes, int64(runs))
	if err != nil {
		return Row{}, err
	}
	return Row{
		Label: label, Paper: bound, Measured: freq, CI: (hi - lo) / 2, Dir: "<=",
		Pass: lo <= bound+tol,
		Note: fmt.Sprintf("Wilson 95%% [%.4f, %.4f]", lo, hi),
	}, nil
}

// worstAND is the Gordon–Katz worst-case environment for AND: x = (1, 1).
func worstAND(*rand.Rand) []sim.Value {
	return []sim.Value{uint64(1), uint64(1)}
}

// E11GordonKatz reproduces Theorems 23/24: the Gordon–Katz protocols
// bound the attacker utility by 1/p under ~γ = (0,0,1,0), at round cost
// O(p·|Y|) (poly domain) and O(p²·|Z|) (poly range).
func E11GordonKatz(cfg Config) (Result, error) {
	g := core.GordonKatzPayoff()
	res := Result{
		ID:    "E11",
		Title: "Gordon–Katz 1/p-security in the utility framework",
		Claim: "Theorems 23/24: ū_A ≤ 1/p for ~γ = (0,0,1,0)",
	}
	for _, p := range []int{2, 4, 8} {
		proto, err := gordonkatz.NewPolyDomain(gordonkatz.AND(), p)
		if err != nil {
			return Result{}, err
		}
		rep, err := cfg.estimate(proto, gordonkatz.NewFirstHit(1), g, worstAND, cfg.Runs, cfg.Seed+int64(p))
		if err != nil {
			return Result{}, err
		}
		row := leRow(fmt.Sprintf("polydomain p=%d first-hit attacker", p),
			1.0/float64(p), rep.Utility.Mean, rep.Utility.HalfWidth, cfg.Tolerance/2)
		row.Note = describeEvents(rep)
		res.Rows = append(res.Rows, row)
		// The attack matches the exact closed form (1−(1−h)^r)/(r·h).
		res.Rows = append(res.Rows, eqRow(fmt.Sprintf("polydomain p=%d vs exact first-hit", p),
			core.GKFirstHitExact(proto.Iterations, 0.5), rep.Utility.Mean, rep.Utility.HalfWidth, cfg.Tolerance/2))
		// The same 1/p ceiling on Pr[E10] itself, certified with a Wilson
		// score interval — the small-frequency cross-check the normal CI
		// is too loose for at large p.
		wr, err := wilsonRow(fmt.Sprintf("polydomain p=%d Pr[E10] (Wilson)", p),
			1.0/float64(p), rep.EventFreq[core.E10], rep.Runs, cfg.Tolerance/2)
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows, wr)
		// Round complexity O(p·|Y|).
		res.Rows = append(res.Rows, eqRow(fmt.Sprintf("polydomain p=%d iterations", p),
			float64(p*2), float64(proto.Iterations), 0, 0))
	}
	pr, err := gordonkatz.NewPolyRange(gordonkatz.AND(), 3)
	if err != nil {
		return Result{}, err
	}
	rep, err := cfg.estimate(pr, adversary.NewLockAbort(1), g, worstAND, cfg.Runs, cfg.Seed+9)
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows,
		leRow("polyrange p=3 first-hit attacker", 1.0/3.0, rep.Utility.Mean, rep.Utility.HalfWidth, cfg.Tolerance/2),
		eqRow("polyrange p=3 iterations (p²·|Z|)", float64(3*3*2), float64(pr.Iterations), 0, 0))

	// The multi-party extension (Beimel et al.): 3-party AND, worst-case
	// all-ones environment, single corruption and a 2-coalition.
	mp, err := gordonkatz.NewMultiParty(gordonkatz.ANDn(3), 4)
	if err != nil {
		return Result{}, err
	}
	worst3 := func(*rand.Rand) []sim.Value {
		return []sim.Value{uint64(1), uint64(1), uint64(1)}
	}
	for _, set := range [][]sim.PartyID{{1}, {1, 2}} {
		mrep, err := cfg.estimate(mp, adversary.NewLockAbort(set...), g, worst3,
			cfg.Runs, cfg.Seed+int64(20+len(set)))
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows, leRow(
			fmt.Sprintf("multiparty p=4, coalition size %d", len(set)),
			0.25, mrep.Utility.Mean, mrep.Utility.HalfWidth, cfg.Tolerance/2))
	}
	res.Rows = append(res.Rows, eqRow("multiparty p=4 iterations (p times product domain)",
		float64(4*8), float64(mp.Iterations), 0, 0))
	return res, nil
}

// E12PartialFairnessSeparation reproduces Section 5's comparison: our
// notion strictly implies 1/p-security. The leaky protocol Π̃ passes the
// Gordon–Katz conditions (1/2-security, "full privacy" as separately
// quantified properties) yet leaks p1's input with probability 1/4 — a
// verified privacy breach that no simulator for F_sfe^$ can produce
// (Lemmas 25–27).
func E12PartialFairnessSeparation(cfg Config) (Result, error) {
	g := core.GordonKatzPayoff()
	res := Result{
		ID:    "E12",
		Title: "Utility-based fairness strictly implies 1/p-security (Π̃ separation)",
		Claim: "Lemmas 25–27",
	}
	pitilde, err := gordonkatz.NewPitilde()
	if err != nil {
		return Result{}, err
	}
	// Lemma 27 (½-security): sup utility over the space stays ≤ 1/2.
	advs := core.SliceSpace{
		{Name: "lock-p1", Adv: adversary.NewLockAbort(1)},
		{Name: "lock-p2", Adv: adversary.NewLockAbort(2)},
		{Name: "leak-extractor", Adv: gordonkatz.NewLeakExtractor()},
		{Name: "abort-r1-p2", Adv: adversary.NewAbortAt(1, 2)},
	}
	sup, err := cfg.sup(pitilde, advs, g, worstAND, cfg.SupRuns, cfg.Seed+40)
	if err != nil {
		return Result{}, err
	}
	supRow := leRow("Π̃ sup utility (1/2-security)", 0.5,
		sup.BestReport.Utility.Mean, sup.BestReport.Utility.HalfWidth, cfg.Tolerance/2)
	supRow.Note = "best: " + sup.Best
	res.Rows = append(res.Rows, supRow)

	// Lemma 26: the extractor breaches privacy w.p. 1/4.
	leak, err := cfg.estimate(pitilde, gordonkatz.NewLeakExtractor(), g,
		func(r *rand.Rand) []sim.Value { return []sim.Value{uint64(r.Intn(2)), uint64(0)} },
		cfg.Runs, cfg.Seed+41)
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows,
		eqRow("Π̃ input-extraction probability", 0.25, leak.PrivacyBreaches, 0.03, cfg.Tolerance))
	// Wilson cross-check of the same small frequency: the 95% score
	// interval around the measured breach rate must contain 1/4.
	breaches := int64(math.Round(leak.PrivacyBreaches * float64(leak.Runs)))
	lo, hi, err := stats.WilsonInterval(breaches, int64(leak.Runs))
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows, Row{
		Label: "Π̃ extraction probability (Wilson)", Paper: 0.25,
		Measured: leak.PrivacyBreaches, CI: (hi - lo) / 2, Dir: "=",
		Pass: lo-cfg.Tolerance <= 0.25 && 0.25 <= hi+cfg.Tolerance,
		Note: fmt.Sprintf("Wilson 95%% [%.4f, %.4f]", lo, hi),
	})

	// Lemma 25 direction: the genuine GK protocol shows no breach and
	// keeps utility ≤ 1/p under the same probing.
	genuine, err := gordonkatz.NewPolyDomain(gordonkatz.AND(), 4)
	if err != nil {
		return Result{}, err
	}
	clean, err := cfg.estimate(genuine, gordonkatz.NewLeakExtractor(), g,
		worstAND, cfg.Runs, cfg.Seed+42)
	if err != nil {
		return Result{}, err
	}
	cleanRow, err := wilsonRow("genuine GK breach rate (Wilson)", 0,
		clean.PrivacyBreaches, clean.Runs, 0)
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows,
		eqRow("genuine GK protocol breach probability", 0, clean.PrivacyBreaches, 0, 0),
		cleanRow,
		boolRow("Π̃ fails our notion while 1/2-secure", true,
			leak.PrivacyBreaches > 0.1 && sup.BestReport.Utility.Mean <= 0.5+cfg.Tolerance))
	return res, nil
}
