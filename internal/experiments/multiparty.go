package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/protocols/multiparty"
	"repro/internal/sim"
)

// concatBits is the per-party input width of the concatenation function.
const concatBits = 8

func concatFn(n int) (multiparty.Function, error) {
	return multiparty.Concat(n, concatBits)
}

func nSampler(n int) core.InputSampler {
	return func(r *rand.Rand) []sim.Value {
		in := make([]sim.Value, n)
		for i := range in {
			in[i] = uint64(r.Intn(1 << concatBits))
		}
		return in
	}
}

// perTSup measures the best t-adversary utility for each t = 1..n−1 over
// the standard space, optionally extended with protocol-specific
// attackers.
func perTSup(p sim.Protocol, g core.Payoff, n int, cfg Config,
	extra map[int][]core.NamedAdversary) (core.PerTUtilities, error) {
	out := make(core.PerTUtilities, 0, n-1)
	for t := 1; t < n; t++ {
		space := adversary.MultiPartyTSpace(n, t, p.NumRounds())
		space = append(space, extra[t]...)
		sup, err := cfg.sup(p, core.SliceSpace(space), g, nSampler(n), cfg.SupRuns, cfg.Seed+int64(100*t))
		if err != nil {
			return nil, err
		}
		out = append(out, sup.BestReport.Utility.Mean)
	}
	return out, nil
}

// gmwExtras builds the GMW setup attackers for every t.
func gmwExtras(n int) map[int][]core.NamedAdversary {
	extra := make(map[int][]core.NamedAdversary)
	for t := 1; t < n; t++ {
		for si, set := range adversary.TSubsets(n, t) {
			extra[t] = append(extra[t], core.NamedAdversary{
				Name: fmt.Sprintf("gmw-setup-t%d-s%d", t, si),
				Adv:  multiparty.NewGMWSetupAttacker(set...),
			})
		}
	}
	return extra
}

// E05MultiPartyUpper reproduces Lemma 11: u_A(ΠOpt-nSFE, A_t) =
// (t·γ10 + (n−t)·γ11)/n for every t, and the sup stays at t = n−1.
func E05MultiPartyUpper(cfg Config) (Result, error) {
	g := cfg.Gamma
	res := Result{
		ID:    "E05",
		Title: "ΠOpt-nSFE per-t utilities",
		Claim: "Lemma 11: u_A(ΠOpt-nSFE, A_t) ≤ (t·γ10+(n−t)·γ11)/n",
	}
	for _, n := range []int{3, 5} {
		fn, err := concatFn(n)
		if err != nil {
			return Result{}, err
		}
		p := multiparty.NewOptN(fn)
		for t := 1; t < n; t++ {
			rep, err := cfg.estimate(p, adversary.NewLockAbort(adversary.TSubsets(n, t)[0]...),
				g, nSampler(n), cfg.Runs, cfg.Seed+int64(10*n+t))
			if err != nil {
				return Result{}, err
			}
			res.Rows = append(res.Rows, eqRow(
				fmt.Sprintf("n=%d t=%d lock-abort", n, t),
				core.MultiPartyTBound(g, n, t), rep.Utility.Mean, rep.Utility.HalfWidth, cfg.Tolerance))
		}
	}
	return res, nil
}

// E06MultiPartyLower reproduces Lemma 13: the mixed all-but-one adversary
// achieves ((n−1)·γ10 + γ11)/n on the concatenation function.
func E06MultiPartyLower(cfg Config) (Result, error) {
	g := cfg.Gamma
	res := Result{
		ID:    "E06",
		Title: "Multi-party lower bound (concatenation)",
		Claim: "Lemma 13: some A earns ≥ ((n−1)·γ10+γ11)/n against any protocol",
	}
	for _, n := range []int{3, 5} {
		fn, err := concatFn(n)
		if err != nil {
			return Result{}, err
		}
		p := multiparty.NewOptN(fn)
		rep, err := cfg.estimate(p, adversary.NewAllButMixer(n), g, nSampler(n), cfg.Runs, cfg.Seed+int64(20+n))
		if err != nil {
			return Result{}, err
		}
		row := geRow(fmt.Sprintf("n=%d allbut-mixer", n),
			core.MultiPartyOptimalBound(g, n), rep.Utility.Mean, rep.Utility.HalfWidth, cfg.Tolerance)
		row.Note = describeEvents(rep)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// E07BalancedSum reproduces Lemmas 14 and 16: the per-t utility sum of
// ΠOpt-nSFE equals (n−1)(γ10+γ11)/2 — the utility-balanced optimum.
func E07BalancedSum(cfg Config) (Result, error) {
	g := cfg.Gamma
	res := Result{
		ID:    "E07",
		Title: "Utility-balanced fairness of ΠOpt-nSFE",
		Claim: "Lemmas 14/16: Σ_t u_A(ΠOpt-nSFE, A_t) = (n−1)(γ10+γ11)/2",
	}
	for _, n := range []int{4, 5} {
		fn, err := concatFn(n)
		if err != nil {
			return Result{}, err
		}
		p := multiparty.NewOptN(fn)
		per, err := perTSup(p, g, n, cfg, nil)
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows,
			eqRow(fmt.Sprintf("n=%d per-t sum", n), core.BalancedSumBound(g, n), per.Sum(), 0, cfg.Tolerance*float64(n-1)),
			boolRow(fmt.Sprintf("n=%d utility-balanced", n), true,
				core.IsUtilityBalanced(per, g, cfg.Tolerance*float64(n-1))))
	}
	return res, nil
}

// E08GMWUnbalanced reproduces Lemma 17: Π_GMW^{1/2} with even n has the
// step utility profile (γ11 below n/2, γ10 at and above) and its per-t
// sum strictly exceeds the balanced bound.
func E08GMWUnbalanced(cfg Config) (Result, error) {
	g := cfg.Gamma
	n := 4
	res := Result{
		ID:    "E08",
		Title: "Traditional fairness is not utility-balanced (Π_GMW^{1/2}, even n)",
		Claim: "Lemma 17: t ≥ n/2 → γ10, t < n/2 → γ11; sum exceeds (n−1)(γ10+γ11)/2 by (γ10−γ11)/2",
	}
	fn, err := concatFn(n)
	if err != nil {
		return Result{}, err
	}
	p := multiparty.NewGMWHalf(fn)
	per, err := perTSup(p, g, n, cfg, gmwExtras(n))
	if err != nil {
		return Result{}, err
	}
	wants := []float64{g.G11, g.G10, g.G10}
	for i, want := range wants {
		res.Rows = append(res.Rows, eqRow(fmt.Sprintf("n=%d t=%d", n, i+1), want, per[i], 0, cfg.Tolerance))
	}
	res.Rows = append(res.Rows,
		geRow("per-t sum vs balanced bound + (γ10−γ11)/2", core.GMWEvenNSumLowerBound(g, n), per.Sum(), 0, cfg.Tolerance*2),
		boolRow("utility-balanced", false, core.IsUtilityBalanced(per, g, cfg.Tolerance)))
	return res, nil
}

// E09Separations reproduces Appendix B.1: the Lemma 18 protocol is
// optimally fair but not balanced; the hybrid Π0 (odd n) is balanced but
// not optimally fair.
func E09Separations(cfg Config) (Result, error) {
	g := cfg.Gamma
	res := Result{
		ID:    "E09",
		Title: "Optimal fairness and utility balance are incomparable",
		Claim: "Lemma 18 and the Π0 hybrid (Appendix B.1)",
	}
	// Lemma 18 protocol, n = 4.
	n := 4
	fn, err := concatFn(n)
	if err != nil {
		return Result{}, err
	}
	p18 := multiparty.NewLemma18(fn)
	special, err := cfg.estimate(p18, multiparty.NewLemma18Attacker(1), g, nSampler(n), cfg.Runs, cfg.Seed+30)
	if err != nil {
		return Result{}, err
	}
	want18 := g.G10/float64(n) + float64(n-1)/float64(n)*(g.G10+g.G11)/2
	res.Rows = append(res.Rows,
		eqRow("Lemma18 single-corruption attack", want18, special.Utility.Mean, special.Utility.HalfWidth, cfg.Tolerance))

	extra := map[int][]core.NamedAdversary{
		1: {{Name: "lemma18-special", Adv: multiparty.NewLemma18Attacker(1)}},
	}
	per18, err := perTSup(p18, g, n, cfg, extra)
	if err != nil {
		return Result{}, err
	}
	supAll := per18[n-2] // t = n−1 profile dominates for this protocol
	res.Rows = append(res.Rows,
		leRow("Lemma18 sup utility", core.MultiPartyOptimalBound(g, n), supAll, 0, cfg.Tolerance),
		boolRow("Lemma18 utility-balanced", false, core.IsUtilityBalanced(per18, g, cfg.Tolerance)))

	// Π0 hybrid with odd n = 5: balanced but attackable at ⌈n/2⌉.
	n = 5
	fn5, err := concatFn(n)
	if err != nil {
		return Result{}, err
	}
	p0 := multiparty.NewHybrid(fn5)
	attack, err := cfg.estimate(p0, adversary.NewLockAbort(1, 2, 3), g, nSampler(n), cfg.Runs, cfg.Seed+31)
	if err != nil {
		return Result{}, err
	}
	per0, err := perTSup(p0, g, n, cfg, gmwExtras(n))
	if err != nil {
		return Result{}, err
	}
	// The strictness margin is half the theoretical gap γ10 − bound =
	// (γ10−γ11)/n, independent of the sampling tolerance.
	gap := (g.G10 - core.MultiPartyOptimalBound(g, n)) / 2
	res.Rows = append(res.Rows,
		eqRow("Π0 (odd n) ⌈n/2⌉-corruption attack", g.G10, attack.Utility.Mean, attack.Utility.HalfWidth, cfg.Tolerance),
		boolRow("Π0 exceeds the optimal-fairness bound", true,
			attack.Utility.Mean > core.MultiPartyOptimalBound(g, n)+gap),
		eqRow("Π0 per-t sum", core.BalancedSumBound(g, n), per0.Sum(), 0, cfg.Tolerance*float64(n)))
	return res, nil
}

// E10CorruptionCost reproduces Theorem 6 via Lemma 22: with the optimal
// cost c(t) = u(t) − γ11, ΠOpt-nSFE is ideally ~γ^C-fair, and any
// strictly cheaper cost function fails.
func E10CorruptionCost(cfg Config) (Result, error) {
	g := cfg.Gamma
	n := 4
	res := Result{
		ID:    "E10",
		Title: "Utility balance as optimal corruption cost",
		Claim: "Theorem 6 / Lemma 22: c(t) = u(t) − s(t) is the optimal cost function",
	}
	fn, err := concatFn(n)
	if err != nil {
		return Result{}, err
	}
	p := multiparty.NewOptN(fn)
	per, err := perTSup(p, g, n, cfg, nil)
	if err != nil {
		return Result{}, err
	}
	opt := core.OptimalCost(per, g)
	cheaper := func(t int) float64 { return opt(t) - 0.1 }
	res.Rows = append(res.Rows,
		boolRow("ideally fair under optimal cost", true, core.IsIdeallyCFair(per, g, opt, cfg.Tolerance)),
		boolRow("NOT ideally fair under free corruption", false, core.IsIdeallyCFair(per, g, core.ZeroCost, cfg.Tolerance)),
		boolRow("NOT ideally fair under strictly dominated cost", false,
			core.IsIdeallyCFair(per, g, cheaper, cfg.Tolerance/2)),
		boolRow("optimal cost strictly dominates the cheaper one", true,
			core.StrictlyDominates(opt, cheaper, n, 0)))
	for t := 1; t < n; t++ {
		res.Rows = append(res.Rows, eqRow(
			fmt.Sprintf("c(%d) = u(%d) − γ11", t, t),
			core.MultiPartyTBound(g, n, t)-core.IdealBound(g), opt(t), 0, cfg.Tolerance))
	}
	return res, nil
}
