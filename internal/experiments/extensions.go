package experiments

import (
	"fmt"
	"math"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/protocols/contract"
	"repro/internal/protocols/gordonkatz"
	"repro/internal/protocols/twoparty"
	"repro/internal/rpdgame"
	"repro/internal/sim"
)

// Extension experiments beyond the paper's explicit statements: design-
// choice ablations (E13) and the RPD attack meta-game of footnote 1
// (E14).

// E13Ablations sweeps the design choices DESIGN.md calls out:
//
//   - the reconstruction-order bias q of ΠOpt-2SFE: the attacker's best
//     utility is max{q,1−q}·γ10 + min{q,1−q}·γ11, uniquely minimized at
//     the paper's uniform q = 1/2;
//   - the Section 4.1 remark that functions admitting 1/p-secure
//     solutions beat the general two-party optimum: the Gordon–Katz AND
//     protocol under the Γ+fair vector earns ((p−1)·γ11 + γ10)/p, below
//     (γ10+γ11)/2 for every p > 2.
func E13Ablations(cfg Config) (Result, error) {
	g := cfg.Gamma
	res := Result{
		ID:    "E13",
		Title: "Ablations: order bias and the small-domain bonus",
		Claim: "Section 4.1 design choices; remark after Theorem 3",
	}
	// Order-bias sweep.
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		p := twoparty.NewBiasedOrder(twoparty.Swap(), q)
		sup, err := cfg.sup(p, core.SliceSpace{
			{Name: "lock-p1", Adv: adversary.NewLockAbort(1)},
			{Name: "lock-p2", Adv: adversary.NewLockAbort(2)},
		}, g, swapSampler, cfg.Runs, cfg.Seed+int64(q*100))
		if err != nil {
			return Result{}, err
		}
		hi, lo := q, 1-q
		if lo > hi {
			hi, lo = lo, hi
		}
		want := hi*g.G10 + lo*g.G11
		row := eqRow(fmt.Sprintf("order bias q=%.2f", q), want,
			sup.BestReport.Utility.Mean, sup.BestReport.Utility.HalfWidth, cfg.Tolerance)
		row.Note = "best: " + sup.Best
		res.Rows = append(res.Rows, row)
	}
	res.Rows = append(res.Rows, boolRow("q=1/2 is the minimizer", true, func() bool {
		// The closed form max{q,1−q}γ10+min{q,1−q}γ11 is minimized at 1/2
		// for every Γfair vector; re-verify on the measured grid by
		// checking the q=0.5 row is the smallest.
		min, at := math.Inf(1), -1
		for i, row := range res.Rows {
			if row.Measured < min {
				min, at = row.Measured, i
			}
		}
		return at == 2 // the q=0.5 row
	}()))

	// Small-domain bonus under Γ+fair: the sup over abort attacks and
	// honest completion (which banks γ11) stays below the general
	// two-party optimum for every p > 2.
	for _, p := range []int{2, 4, 8} {
		proto, err := gordonkatz.NewPolyDomain(gordonkatz.AND(), p)
		if err != nil {
			return Result{}, err
		}
		sup, err := cfg.sup(proto, core.SliceSpace{
			{Name: "lock-p1", Adv: adversary.NewLockAbort(1)},
			{Name: "lock-p2", Adv: adversary.NewLockAbort(2)},
			{Name: "complete-p1", Adv: adversary.NewStatic(1)},
		}, g, core.FixedInputs(uint64(1), uint64(1)), cfg.Runs, cfg.Seed+int64(50+p))
		if err != nil {
			return Result{}, err
		}
		row := leRow(
			fmt.Sprintf("GK(AND) p=%d under Γ+fair vs ((p−1)γ11+γ10)/p", p),
			core.GordonKatzBound(g, p), sup.BestReport.Utility.Mean,
			sup.BestReport.Utility.HalfWidth, cfg.Tolerance)
		row.Note = "best: " + sup.Best
		res.Rows = append(res.Rows, row)
	}
	res.Rows = append(res.Rows, boolRow("small-domain p=4 beats the general optimum", true,
		core.GordonKatzBound(g, 4) < core.TwoPartyOptimalBound(g)))
	return res, nil
}

// E14AttackGame verifies the paper's footnote 1 numerically: in the RPD
// attack meta-game over the two-party protocols of this repository, the
// designer's backward-induction choice is an optimally fair protocol and
// the game value is the paper's optimum (γ10+γ11)/2.
func E14AttackGame(cfg Config) (Result, error) {
	g := cfg.Gamma
	res := Result{
		ID:    "E14",
		Title: "The RPD attack meta-game equilibrium",
		Claim: "Footnote 1: optimally fair protocols are the designer's minimax choice",
	}
	protocols := []struct {
		name  string
		proto sim.Protocol
	}{
		{"Pi1", contract.Pi1{}},
		{"Pi2", contract.Pi2{}},
		{"2SFE-fixed2", twoparty.NewFixedOrder(twoparty.Swap(), 2)},
		{"2SFE-oneround", twoparty.NewOneRound(twoparty.Swap())},
		{"2SFE-opt", twoparty.New(twoparty.Swap())},
	}
	cols := []core.NamedAdversary{
		{Name: "passive", Adv: sim.Passive{}},
		{Name: "lock-p1", Adv: adversary.NewLockAbort(1)},
		{Name: "lock-p2", Adv: adversary.NewLockAbort(2)},
		{Name: "abort-r1-p2", Adv: adversary.NewAbortAt(1, 2)},
		{Name: "agen", Adv: adversary.NewAgen()},
	}
	game := rpdgame.Matrix{}
	for _, c := range cols {
		game.ColNames = append(game.ColNames, c.Name)
	}
	for pi, entry := range protocols {
		game.RowNames = append(game.RowNames, entry.name)
		row := make([]float64, len(cols))
		sampler := swapSampler
		if entry.name == "Pi1" || entry.name == "Pi2" {
			sampler = contractSampler
		}
		for ci, c := range cols {
			rep, err := cfg.estimate(entry.proto, c.Adv, g, sampler,
				cfg.SupRuns, cfg.Seed+int64(1000+pi*10+ci))
			if err != nil {
				return Result{}, err
			}
			row[ci] = rep.Utility.Mean
		}
		game.Payoff = append(game.Payoff, row)
	}

	sol, err := game.SolveSequential()
	if err != nil {
		return Result{}, err
	}
	picked := game.RowNames[sol.Row]
	res.Rows = append(res.Rows,
		eqRow("game value", core.TwoPartyOptimalBound(g), sol.Value, 0, cfg.Tolerance),
		boolRow("designer picks an optimally fair protocol", true,
			picked == "2SFE-opt" || picked == "Pi2"))
	res.Rows[len(res.Rows)-1].Note = "picked: " + picked + ", attacker: " + game.ColNames[sol.Col]

	// The simultaneous variant's mixed equilibrium agrees on the value.
	fp, err := game.FictitiousPlay(20000)
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows,
		eqRow("fictitious-play value", sol.Value, fp.Value, 0, cfg.Tolerance))
	return res, nil
}
