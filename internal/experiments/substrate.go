package experiments

import (
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gmwproto"
	"repro/internal/protocols/twoparty"
	"repro/internal/sim"
)

// E15SubstrateGap measures the motivating gap of the paper on the real
// message-passing substrate: the unfair SFE protocol Π_GMW (Beaver-triple
// online phase, one broadcast round per AND layer + output reveal)
// concedes γ10 with probability 1 to the rushing lock-and-abort
// adversary, while wrapping the same function in ΠOpt-2SFE caps every
// attacker at (γ10+γ11)/2. Mid-protocol aborts of the substrate earn
// nothing (γ00 at best): the entire unfairness is concentrated in the
// output-reveal round, which is exactly the round the paper's protocols
// restructure.
func E15SubstrateGap(cfg Config) (Result, error) {
	g := cfg.Gamma
	res := Result{
		ID:    "E15",
		Title: "The unfair substrate vs its fair wrapper (Π_GMW online phase)",
		Claim: "Cleve-style gap: sup u(Π_GMW) = γ10; ΠOpt-2SFE closes it to (γ10+γ11)/2",
	}
	const bits = 6
	circ, err := circuit.MillionairesCircuit(bits)
	if err != nil {
		return Result{}, err
	}
	raw, err := gmwproto.New("millionaires", circ, 2)
	if err != nil {
		return Result{}, err
	}
	sampler := func(r *rand.Rand) []sim.Value {
		return []sim.Value{uint64(r.Intn(1 << bits)), uint64(r.Intn(1 << bits))}
	}

	// The rushing grab at the output round.
	for _, target := range []sim.PartyID{1, 2} {
		rep, err := cfg.estimate(raw, adversary.NewLockAbort(target), g,
			sampler, cfg.Runs, cfg.Seed+int64(target))
		if err != nil {
			return Result{}, err
		}
		row := eqRow("Π_GMW rushing grab (corrupt p"+string('0'+rune(target))+")",
			g.G10, rep.Utility.Mean, rep.Utility.HalfWidth, cfg.Tolerance)
		row.Note = describeEvents(rep)
		res.Rows = append(res.Rows, row)
	}

	// Mid-protocol aborts earn γ00 = nothing.
	mid, err := cfg.estimate(raw, adversary.NewAbortAt(1, 2), g, sampler, cfg.Runs, cfg.Seed+3)
	if err != nil {
		return Result{}, err
	}
	res.Rows = append(res.Rows,
		eqRow("Π_GMW mid-protocol abort", g.G00, mid.Utility.Mean, mid.Utility.HalfWidth, cfg.Tolerance))

	// The fair wrapper for the same function.
	fair := twoparty.New(twoparty.Millionaires())
	wrapped, err := cfg.sup(fair, core.SliceSpace(adversary.TwoPartySpace(fair.NumRounds())), g,
		sampler, cfg.SupRuns, cfg.Seed+4)
	if err != nil {
		return Result{}, err
	}
	row := leRow("ΠOpt-2SFE(millionaires) sup", core.TwoPartyOptimalBound(g),
		wrapped.BestReport.Utility.Mean, wrapped.BestReport.Utility.HalfWidth, cfg.Tolerance)
	row.Note = "best: " + wrapped.Best
	res.Rows = append(res.Rows, row,
		boolRow("wrapper strictly fairer than substrate", true,
			wrapped.BestReport.Utility.Mean < g.G10-(g.G10-core.TwoPartyOptimalBound(g))/2))

	// Round complexity note: the online phase costs AND-depth+1 rounds.
	res.Rows = append(res.Rows, eqRow("Π_GMW online rounds (AND depth + 1)",
		float64(circ.AndDepth()+1), float64(raw.NumRounds()), 0, 0))
	return res, nil
}
