package experiments

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/sim/trace"
)

func TestRowBuilders(t *testing.T) {
	r := eqRow("x", 1.0, 1.02, 0.01, 0.02)
	if !r.Pass {
		t.Error("1.02 vs 1.0 with tol 0.02 + ci 0.01 should pass")
	}
	r = eqRow("x", 1.0, 1.2, 0.01, 0.02)
	if r.Pass {
		t.Error("1.2 vs 1.0 should fail")
	}
	r = leRow("x", 0.5, 0.52, 0.01, 0.02)
	if !r.Pass {
		t.Error("0.52 ≤ 0.5 within slack should pass")
	}
	r = leRow("x", 0.5, 0.6, 0.01, 0.02)
	if r.Pass {
		t.Error("0.6 ≤ 0.5 should fail")
	}
	r = geRow("x", 0.5, 0.48, 0.01, 0.02)
	if !r.Pass {
		t.Error("0.48 ≥ 0.5 within slack should pass")
	}
	r = geRow("x", 0.5, 0.3, 0.01, 0.02)
	if r.Pass {
		t.Error("0.3 ≥ 0.5 should fail")
	}
	if !boolRow("x", true, true).Pass || boolRow("x", true, false).Pass {
		t.Error("boolRow semantics")
	}
}

func TestResultPass(t *testing.T) {
	r := Result{Rows: []Row{{Pass: true}, {Pass: true}}}
	if !r.Pass() {
		t.Error("all-pass result")
	}
	r.Rows = append(r.Rows, Row{Pass: false})
	if r.Pass() {
		t.Error("one failing row")
	}
}

func TestConfigs(t *testing.T) {
	d := DefaultConfig()
	q := QuickConfig()
	if q.Runs >= d.Runs {
		t.Error("quick config should be cheaper")
	}
	if err := d.Gamma.ValidateFairPlus(); err != nil {
		t.Errorf("default gamma not Γ+fair: %v", err)
	}
}

func TestAllComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.Run == nil {
			t.Errorf("%s has no runner", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	if len(ids) != 15 {
		t.Errorf("expected 15 experiments, got %d", len(ids))
	}
}

// TestExperimentsPassQuick runs every experiment at quick settings and
// requires every row to pass — the end-to-end reproduction check.
func TestExperimentsPassQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short mode")
	}
	cfg := QuickConfig()
	results, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		for _, row := range res.Rows {
			if !row.Pass {
				t.Errorf("%s %q: paper %s %v, measured %v ± %v (%s)",
					res.ID, row.Label, row.Dir, row.Paper, row.Measured, row.CI, row.Note)
			}
			if math.IsNaN(row.Measured) {
				t.Errorf("%s %q: NaN measurement", res.ID, row.Label)
			}
		}
	}
}

// TestParallelMatchesSequential pins the determinism contract at the
// experiment level: the same Config run sequentially and with a worker
// pool must produce byte-identical Results.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep skipped in -short mode")
	}
	for _, id := range []string{"E04", "E05", "E08"} {
		var exp *Experiment
		for _, e := range All() {
			if e.ID == id {
				cp := e
				exp = &cp
				break
			}
		}
		if exp == nil {
			t.Fatalf("experiment %s not registered", id)
		}
		seqCfg := QuickConfig()
		seqCfg.Parallelism = 1
		parCfg := QuickConfig()
		parCfg.Parallelism = 4
		seq, err := exp.Run(seqCfg)
		if err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}
		par, err := exp.Run(parCfg)
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s: parallel result differs from sequential:\nseq: %+v\npar: %+v", id, seq, par)
		}
	}
}

// TestRunAllParallelMatchesSequential checks the experiment-level
// fan-out too: RunAll at Parallelism 1 and 4 must agree on every row.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep skipped in -short mode")
	}
	seqCfg := QuickConfig()
	seqCfg.Parallelism = 1
	seqCfg.Runs, seqCfg.SupRuns = 80, 40
	parCfg := seqCfg
	parCfg.Parallelism = 4
	seq, err := RunAll(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAll(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("RunAll results differ between Parallelism 1 and 4")
	}
}

// TestMetricsAndTracePlumbing checks that a config-level metrics
// collector and transcript sink see every run an experiment makes, and
// that the two agree with each other.
func TestMetricsAndTracePlumbing(t *testing.T) {
	var exp *Experiment
	for _, e := range All() {
		if e.ID == "E01" {
			cp := e
			exp = &cp
			break
		}
	}
	if exp == nil {
		t.Fatal("E01 not registered")
	}
	cfg := QuickConfig()
	cfg.Runs, cfg.SupRuns = 40, 20
	var buf bytes.Buffer
	cfg.Metrics = &MetricsCollector{}
	cfg.Trace = trace.NewSink(&buf)
	if _, err := exp.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Trace.Err(); err != nil {
		t.Fatal(err)
	}
	m := cfg.Metrics.Total()
	if m.Runs == 0 || m.Rounds == 0 || m.Messages == 0 {
		t.Fatalf("collector missed the experiment's runs: %+v", m)
	}
	st := cfg.Trace.Stats()
	if st.Runs != m.Runs || st.Rounds != m.Rounds || st.Sends != m.Messages || st.Deliveries != m.Deliveries {
		t.Errorf("transcript stats %+v disagree with metrics %+v", st, m)
	}
	if _, err := trace.Parse(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("transcript not parseable: %v", err)
	}
}

// TestRunAllFillsResultMetrics checks RunAll's per-experiment metrics
// and the caller-level totals.
func TestRunAllFillsResultMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	cfg := QuickConfig()
	cfg.Runs, cfg.SupRuns = 40, 20
	cfg.Metrics = &MetricsCollector{}
	results, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum sim.Metrics
	for _, res := range results {
		if res.Metrics.Runs == 0 {
			t.Errorf("%s: Result.Metrics empty", res.ID)
		}
		sum.Add(res.Metrics)
	}
	if total := cfg.Metrics.Total(); total != sum {
		t.Errorf("config totals %+v != sum of per-experiment metrics %+v", total, sum)
	}
}
