package faultinject

import (
	"sync"
	"testing"
	"time"
)

func TestScheduleMatchesAndExhausts(t *testing.T) {
	s := NewSchedule(
		Rule{Party: 2, Dir: DirHostToClient, Round: 1, Op: Drop},
		Rule{Party: 1, Seq: 3, Op: Corrupt, Times: 2},
	)
	p := Point{Party: 2, Dir: DirHostToClient, Seq: 2, Round: 1}
	if d := s.Decide(p); d.Op != Drop {
		t.Fatalf("first decide = %v, want drop", d.Op)
	}
	if d := s.Decide(p); d.Op != None {
		t.Errorf("rule fired twice: %v", d.Op)
	}
	// Wrong party, direction, round: no match.
	for _, q := range []Point{
		{Party: 1, Dir: DirHostToClient, Seq: 9, Round: 1},
		{Party: 2, Dir: DirClientToHost, Seq: 9, Round: 1},
		{Party: 2, Dir: DirHostToClient, Seq: 9, Round: 2},
	} {
		if d := s.Decide(q); d.Op != None {
			t.Errorf("point %+v matched: %v", q, d.Op)
		}
	}
	// Seq-pinned rule fires Times times.
	q := Point{Party: 1, Dir: DirClientToHost, Seq: 3, Round: 2}
	for i := 0; i < 2; i++ {
		if d := s.Decide(q); d.Op != Corrupt {
			t.Fatalf("fire %d = %v, want corrupt", i, d.Op)
		}
	}
	if d := s.Decide(q); d.Op != None {
		t.Errorf("seq rule fired a third time: %v", d.Op)
	}
}

func TestScheduleKillRequiresClientDirection(t *testing.T) {
	s := NewSchedule(Rule{Party: 1, Round: 2, Op: Kill})
	// A host→client frame at the kill round must not consume the rule.
	if d := s.Decide(Point{Party: 1, Dir: DirHostToClient, Seq: 4, Round: 2}); d.Op != None {
		t.Fatalf("kill fired on host frame: %v", d.Op)
	}
	if d := s.Decide(Point{Party: 1, Dir: DirClientToHost, Seq: 3, Round: 2}); d.Op != Kill {
		t.Fatalf("kill did not fire on client frame: %v", d.Op)
	}
}

func TestRandomDeterministicAndInterleavingIndependent(t *testing.T) {
	prof := Profile{Drop: 0.2, Delay: 0.2, Corrupt: 0.1, MaxDelay: 40 * time.Millisecond}
	a, err := NewRandom(7, prof)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRandom(7, prof)
	points := make([]Point, 0, 200)
	for party := 1; party <= 2; party++ {
		for seq := uint64(1); seq <= 50; seq++ {
			points = append(points, Point{Party: party, Dir: DirHostToClient, Seq: seq})
			points = append(points, Point{Party: party, Dir: DirClientToHost, Seq: seq})
		}
	}
	// Same seed, opposite query order: identical decisions.
	got := make([]Decision, len(points))
	for i, p := range points {
		got[i] = a.Decide(p)
	}
	for i := len(points) - 1; i >= 0; i-- {
		if d := b.Decide(points[i]); d != got[i] {
			t.Fatalf("point %+v: %v != %v under reordering", points[i], d, got[i])
		}
	}
	// Concurrent queries race-free and still deterministic.
	c, _ := NewRandom(7, prof)
	var wg sync.WaitGroup
	for i := range points {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if d := c.Decide(points[i]); d != got[i] {
				t.Errorf("concurrent decide mismatch at %+v", points[i])
			}
		}(i)
	}
	wg.Wait()
	// A different seed must not reproduce the same decision sequence.
	d2, _ := NewRandom(8, prof)
	same := true
	for i, p := range points {
		if d2.Decide(p) != got[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical fault sequences")
	}
}

func TestRandomKillFiresOnce(t *testing.T) {
	r, err := NewRandom(1, Profile{KillParty: 2, KillRound: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d := r.Decide(Point{Party: 2, Dir: DirClientToHost, Seq: 2, Round: 2}); d.Op != None {
		t.Errorf("killed before the kill round: %v", d.Op)
	}
	if d := r.Decide(Point{Party: 2, Dir: DirHostToClient, Seq: 3, Round: 3}); d.Op != None {
		t.Errorf("killed on a host frame: %v", d.Op)
	}
	if d := r.Decide(Point{Party: 2, Dir: DirClientToHost, Seq: 3, Round: 3}); d.Op != Kill {
		t.Fatalf("no kill at the kill round: %v", d.Op)
	}
	if d := r.Decide(Point{Party: 2, Dir: DirClientToHost, Seq: 4, Round: 4}); d.Op != None {
		t.Errorf("party killed twice: %v", d.Op)
	}
	if d := r.Decide(Point{Party: 1, Dir: DirClientToHost, Seq: 3, Round: 3}); d.Op == Kill {
		t.Error("wrong party killed")
	}
}

func TestRandomRejectsOverfullProfile(t *testing.T) {
	if _, err := NewRandom(1, Profile{Drop: 0.6, Corrupt: 0.6}); err == nil {
		t.Error("profile with rate sum 1.2 accepted")
	}
}

func TestRandomDelayBounded(t *testing.T) {
	const maxDelay = 10 * time.Millisecond
	r, err := NewRandom(3, Profile{Delay: 1, MaxDelay: maxDelay})
	if err != nil {
		t.Fatal(err)
	}
	sawDelay := false
	for seq := uint64(1); seq <= 100; seq++ {
		d := r.Decide(Point{Party: 1, Dir: DirClientToHost, Seq: seq})
		if d.Op != Delay {
			t.Fatalf("seq %d: op %v, want delay", seq, d.Op)
		}
		if d.Delay < 0 || d.Delay >= maxDelay {
			t.Fatalf("seq %d: delay %v outside [0, %v)", seq, d.Delay, maxDelay)
		}
		if d.Delay > 0 {
			sawDelay = true
		}
	}
	if !sawDelay {
		t.Error("every injected delay was zero")
	}
}

func TestOpAndDirectionStrings(t *testing.T) {
	for op, want := range map[Op]string{
		None: "none", Drop: "drop", Delay: "delay", Duplicate: "duplicate",
		Reorder: "reorder", Corrupt: "corrupt", Disconnect: "disconnect", Kill: "kill",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, want)
		}
	}
	if DirHostToClient.String() == DirClientToHost.String() {
		t.Error("direction strings collide")
	}
}
