// Package faultinject provides deterministic, seeded fault schedules
// for chaos-testing the TCP transport. An Injector decides, for every
// session frame about to cross the wire for the first time, whether the
// frame is dropped, delayed, duplicated, reordered, or corrupted — or
// whether the connection disconnects, or the sending party crashes
// outright (a fail-stop).
//
// Determinism contract — a chaos run is replayable from its inputs
// alone:
//
//   - Schedule fires Rules matched on (party, direction, round, seq).
//     Rules that pin Party and Dir are interleaving-independent, because
//     each peer's per-direction frame sequence is deterministic; a rule
//     left at "any party" may fire on whichever peer's frame races there
//     first, so fully deterministic schedules pin Party and Dir.
//   - Random derives every decision by hashing (seed, party, dir, seq),
//     so concurrent peers draw identical decisions no matter how their
//     goroutines interleave: the whole run is a pure function of
//     (seed, Profile).
//
// The transport consults the injector only on a frame's *first*
// transmission — retransmissions after a reconnect/resume handshake
// bypass injection — so every transient fault is survivable by replay
// and the session's outputs stay byte-identical to a fault-free run.
// Only Kill (and a peer exceeding its resume budget) is unrecoverable:
// the engine converts it into the model's fail-stop abort.
package faultinject

import (
	"fmt"
	"sync"
	"time"
)

// Op is the action taken on a frame (or its connection).
type Op int

const (
	// None passes the frame through untouched.
	None Op = iota
	// Drop suppresses the frame's first transmission; the receiver's
	// stall triggers a reconnect/resume, and replay heals the loss.
	Drop
	// Delay holds the frame for Decision.Delay before writing it.
	Delay
	// Duplicate writes the frame twice; the receiver's sequence-number
	// dedup discards the copy.
	Duplicate
	// Reorder holds the frame back and writes it after the next frame;
	// the receiver's sequence buffer restores order.
	Reorder
	// Corrupt flips payload bytes after the checksum is computed; the
	// receiver detects the mismatch and recovers the pristine frame via
	// resume replay.
	Corrupt
	// Disconnect closes the connection after the frame is written — a
	// transient fault healed by the reconnect/resume handshake.
	Disconnect
	// Kill crashes the sending party process permanently (fail-stop).
	// Kill is meaningful only on client endpoints (DirClientToHost);
	// the session host never crashes, so host-side Kill decisions are
	// downgraded to Disconnect.
	Kill
)

// String names the op for logs and error messages.
func (o Op) String() string {
	switch o {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Duplicate:
		return "duplicate"
	case Reorder:
		return "reorder"
	case Corrupt:
		return "corrupt"
	case Disconnect:
		return "disconnect"
	case Kill:
		return "kill"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Direction of a frame relative to the session host.
type Direction int

const (
	// DirAny is the Rule wildcard matching both directions; Points never
	// carry it.
	DirAny Direction = iota
	// DirHostToClient marks frames the host sends to a party.
	DirHostToClient
	// DirClientToHost marks frames a party sends to the host.
	DirClientToHost
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case DirAny:
		return "any"
	case DirHostToClient:
		return "host→client"
	case DirClientToHost:
		return "client→host"
	default:
		return fmt.Sprintf("dir(%d)", int(d))
	}
}

// Point identifies one frame about to cross the wire for the first time.
type Point struct {
	// Party is the 1-based id of the client endpoint of the connection.
	Party int
	// Dir is the frame's direction (never DirAny).
	Dir Direction
	// Seq is the frame's per-direction reliable sequence number
	// (1-based; the host's setup frame is seq 1).
	Seq uint64
	// Round is the wire round the frame belongs to: 0 for the setup
	// frame, r for round-r inbox/batch frames, NumRounds()+2 for the
	// final output frame.
	Round int
}

// Decision is the injector's verdict for one Point.
type Decision struct {
	Op Op
	// Delay is the hold duration when Op == Delay.
	Delay time.Duration
}

// Injector decides the fate of frames. Implementations must be safe for
// concurrent use: the host and every client goroutine share one
// injector.
type Injector interface {
	Decide(p Point) Decision
}

// Rule matches Points and fires an Op a bounded number of times.
// Zero-valued match fields are wildcards.
type Rule struct {
	// Party matches the client endpoint; 0 = any party.
	Party int
	// Dir matches the frame direction; DirAny = either. Kill rules
	// additionally require DirClientToHost regardless (only parties
	// crash), so a DirAny Kill rule never consumes itself on host
	// frames.
	Dir Direction
	// Round matches the frame's wire round; 0 = any round (the setup
	// frame, which is round 0, is matched by Seq instead).
	Round int
	// Seq matches the per-direction sequence number; 0 = any.
	Seq uint64
	// Times bounds how often the rule fires; <= 0 means once.
	Times int
	// Op is the action, with Delay as its parameter.
	Op    Op
	Delay time.Duration
}

func (r Rule) matches(p Point) bool {
	if r.Party != 0 && r.Party != p.Party {
		return false
	}
	if r.Op == Kill && p.Dir != DirClientToHost {
		return false
	}
	if r.Dir != DirAny && r.Dir != p.Dir {
		return false
	}
	if r.Round != 0 && r.Round != p.Round {
		return false
	}
	if r.Seq != 0 && r.Seq != p.Seq {
		return false
	}
	return true
}

// Schedule is an explicit, replayable fault plan: the first matching
// rule with budget left fires. The zero Schedule injects nothing.
type Schedule struct {
	mu        sync.Mutex
	rules     []Rule
	remaining []int
}

var _ Injector = (*Schedule)(nil)

// NewSchedule builds a schedule from rules, each firing Times times
// (default once).
func NewSchedule(rules ...Rule) *Schedule {
	s := &Schedule{rules: rules, remaining: make([]int, len(rules))}
	for i, r := range rules {
		if r.Times <= 0 {
			s.remaining[i] = 1
		} else {
			s.remaining[i] = r.Times
		}
	}
	return s
}

// Decide implements Injector.
func (s *Schedule) Decide(p Point) Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.rules {
		if s.remaining[i] == 0 || !r.matches(p) {
			continue
		}
		s.remaining[i]--
		return Decision{Op: r.Op, Delay: r.Delay}
	}
	return Decision{}
}

// Profile configures the seeded Random injector: independent per-frame
// fault probabilities (their sum must be <= 1) plus an optional fatal
// fault.
type Profile struct {
	// Drop, Delay, Duplicate, Reorder, Corrupt, Disconnect are the
	// per-frame probabilities of the corresponding transient fault.
	Drop, Delay, Duplicate, Reorder, Corrupt, Disconnect float64
	// MaxDelay bounds the injected delay; the actual hold time is a
	// seed-determined duration in [0, MaxDelay). Zero disables delays
	// even when Delay > 0.
	MaxDelay time.Duration
	// KillParty/KillRound, when KillParty > 0, crash that party at the
	// first client→host frame with Round >= KillRound — the fail-stop
	// fault of the chaos matrix.
	KillParty int
	KillRound int
}

func (p Profile) rateSum() float64 {
	return p.Drop + p.Delay + p.Duplicate + p.Reorder + p.Corrupt + p.Disconnect
}

// Random is the seeded, interleaving-independent injector: every
// decision is a pure hash of (seed, party, dir, seq).
type Random struct {
	seed int64
	prof Profile
	mu   sync.Mutex
	dead map[int]bool // parties already killed (guarded by mu)
}

var _ Injector = (*Random)(nil)

// NewRandom builds a Random injector; it returns an error when the
// profile's fault probabilities sum past 1.
func NewRandom(seed int64, prof Profile) (*Random, error) {
	if s := prof.rateSum(); s > 1 {
		return nil, fmt.Errorf("faultinject: fault probabilities sum to %.3f > 1", s)
	}
	return &Random{seed: seed, prof: prof, dead: make(map[int]bool)}, nil
}

// Decide implements Injector.
func (r *Random) Decide(p Point) Decision {
	if r.prof.KillParty > 0 && p.Party == r.prof.KillParty &&
		p.Dir == DirClientToHost && p.Round >= r.prof.KillRound {
		r.mu.Lock()
		first := !r.dead[p.Party]
		r.dead[p.Party] = true
		r.mu.Unlock()
		if first {
			return Decision{Op: Kill}
		}
		return Decision{}
	}
	u := uniform(hashPoint(r.seed, p))
	cum := 0.0
	for _, c := range []struct {
		rate float64
		op   Op
	}{
		{r.prof.Drop, Drop},
		{r.prof.Delay, Delay},
		{r.prof.Duplicate, Duplicate},
		{r.prof.Reorder, Reorder},
		{r.prof.Corrupt, Corrupt},
		{r.prof.Disconnect, Disconnect},
	} {
		cum += c.rate
		if c.rate > 0 && u < cum {
			d := Decision{Op: c.op}
			if c.op == Delay {
				if r.prof.MaxDelay <= 0 {
					return Decision{}
				}
				d.Delay = time.Duration(hashPoint(r.seed^0x5bf03635, p) % uint64(r.prof.MaxDelay))
			}
			return d
		}
	}
	return Decision{}
}

// splitmix64 finalizer: a fast, well-mixed 64-bit hash step.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashPoint hashes a frame's identity. Round is deliberately excluded:
// (party, dir, seq) already identifies a first transmission uniquely,
// and keeping the hash independent of round numbering makes decisions
// stable under protocol-length changes.
func hashPoint(seed int64, p Point) uint64 {
	h := mix(uint64(seed) ^ 0x6a09e667f3bcc908)
	h = mix(h ^ uint64(p.Party)<<32 ^ uint64(p.Dir))
	h = mix(h ^ p.Seq)
	return h
}

// uniform maps a hash to [0, 1).
func uniform(h uint64) float64 { return float64(h>>11) / (1 << 53) }
