// Package gmwproto implements the paper's unfair SFE protocol Π_GMW as a
// genuine message-passing protocol over the fairness engine, in the
// standard offline/online paradigm: a trusted-dealer hybrid (the offline
// phase / F_triples functionality) XOR-shares the parties' input bits and
// one Beaver multiplication triple per AND gate; the online phase then
// needs one broadcast round per AND layer — each party opens the masked
// operands d = x⊕a, e = y⊕b — plus a final round broadcasting the output
// wires' shares.
//
// The protocol is secure *with abort*: any corrupted party can withhold
// its final-round share after (rushing) seeing everyone else's, learning
// the output exclusively. That attack surface is the whole point — it is
// what the paper's fairness layer (ΠOpt-2SFE/ΠOpt-nSFE) is wrapped around
// — and experiment E15 measures it: sup u(Π_GMW) = γ10, against
// (γ10+γ11)/2 for the optimally fair wrapper.
//
// Malicious deviations *within* the arithmetic (lying about d/e shares)
// are outside the abort-only adversary model, exactly as the ZK
// compilation of GMW is outside the paper's scope; a lying share
// manifests as a correctness violation in the trace and is flagged, not
// silently accepted.
package gmwproto

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/circuit"
	"repro/internal/sim"
)

// Protocol is the Beaver-triple GMW online protocol for a fixed circuit.
type Protocol struct {
	circ    *circuit.Circuit
	n       int
	layers  [][]int
	perBits []int // input bits owned by each party
	label   string
}

var _ sim.Protocol = (*Protocol)(nil)

// Errors from the constructor.
var (
	ErrTooManyOutputs = errors.New("gmwproto: circuit outputs exceed 64 bits")
	ErrPartyCount     = errors.New("gmwproto: need at least 2 parties")
)

// New builds the protocol for circ among n parties. The circuit's output
// bits are packed little-endian into the protocol's uint64 global output.
func New(label string, circ *circuit.Circuit, n int) (*Protocol, error) {
	if n < 2 {
		return nil, ErrPartyCount
	}
	if err := circ.Validate(); err != nil {
		return nil, fmt.Errorf("gmwproto: %w", err)
	}
	if len(circ.Outputs) > 64 {
		return nil, ErrTooManyOutputs
	}
	perBits := make([]int, n)
	for w, owner := range circ.InputOwner {
		if owner < 0 || owner >= n {
			return nil, fmt.Errorf("gmwproto: input wire %d owned by party %d of %d", w, owner, n)
		}
		perBits[owner]++
	}
	return &Protocol{
		circ:    circ,
		n:       n,
		layers:  circ.Layers(),
		perBits: perBits,
		label:   label,
	}, nil
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "gmw-online-" + p.label }

// NumParties implements sim.Protocol.
func (p *Protocol) NumParties() int { return p.n }

// NumRounds implements sim.Protocol: one broadcast round per AND layer
// plus the output-share round.
func (p *Protocol) NumRounds() int { return len(p.layers) + 1 }

// DefaultInput implements sim.Protocol.
func (p *Protocol) DefaultInput(sim.PartyID) sim.Value { return uint64(0) }

// Func implements sim.Protocol: clear-circuit evaluation on the unpacked
// inputs, outputs packed little-endian.
func (p *Protocol) Func(inputs []sim.Value) sim.Value {
	global := p.unpack(inputs)
	out, err := p.circ.Eval(global)
	if err != nil {
		return uint64(0)
	}
	return circuit.BitsToUint(out)
}

// unpack expands per-party packed inputs into the global wire assignment.
func (p *Protocol) unpack(inputs []sim.Value) []bool {
	global := make([]bool, p.circ.NumInputs)
	cursor := make([]int, p.n)
	for w, owner := range p.circ.InputOwner {
		x, _ := inputs[owner].(uint64)
		global[w] = x&(1<<uint(cursor[owner])) != 0
		cursor[owner]++
	}
	return global
}

// triple is one party's share of a Beaver triple (a, b, c) with c = a∧b.
type triple struct {
	A, B, C bool
}

// setupOut is one party's offline-phase output.
type setupOut struct {
	// InputShares[w] is this party's XOR share of input wire w.
	InputShares []bool
	// Triples[k] is this party's share of AND gate k's triple, indexed
	// by position in the circuit's AND-gate enumeration order.
	Triples map[int]triple
}

// Setup implements sim.Protocol: the F_triples dealer.
func (p *Protocol) Setup(inputs []sim.Value, rng *rand.Rand) ([]sim.Value, error) {
	global := p.unpack(inputs)
	outs := make([]setupOut, p.n)
	for i := range outs {
		outs[i] = setupOut{
			InputShares: make([]bool, p.circ.NumInputs),
			Triples:     make(map[int]triple, p.circ.NumAndGates()),
		}
	}
	shareBit := func(bit bool) []bool {
		shares := make([]bool, p.n)
		acc := false
		for i := 0; i < p.n-1; i++ {
			shares[i] = rng.Intn(2) == 1
			acc = acc != shares[i]
		}
		shares[p.n-1] = acc != bit
		return shares
	}
	for w, bit := range global {
		for i, s := range shareBit(bit) {
			outs[i].InputShares[w] = s
		}
	}
	for g, gate := range p.circ.Gates {
		if gate.Kind != circuit.KindAnd {
			continue
		}
		a := rng.Intn(2) == 1
		b := rng.Intn(2) == 1
		c := a && b
		as, bs, cs := shareBit(a), shareBit(b), shareBit(c)
		for i := 0; i < p.n; i++ {
			outs[i].Triples[g] = triple{A: as[i], B: bs[i], C: cs[i]}
		}
	}
	values := make([]sim.Value, p.n)
	for i := range outs {
		values[i] = outs[i]
	}
	return values, nil
}

// deMsg carries one party's masked-operand shares for a layer's AND
// gates, in the layer's gate order.
type deMsg struct {
	Layer int
	D, E  []bool
}

// outMsg carries one party's output-wire shares.
type outMsg struct {
	Shares []bool
}

// NewParty implements sim.Protocol.
func (p *Protocol) NewParty(id sim.PartyID, _ sim.Value, out sim.Value, aborted bool, _ *rand.Rand) (sim.Party, error) {
	m := &machine{proto: p, id: id, aborted: aborted}
	if aborted {
		return m, nil
	}
	so, ok := out.(setupOut)
	if !ok {
		return nil, fmt.Errorf("gmwproto: party %d: bad setup output %T", id, out)
	}
	m.wires = make([]bool, p.circ.NumWires())
	m.known = make([]bool, p.circ.NumWires())
	copy(m.wires, so.InputShares)
	for w := range so.InputShares {
		m.known[w] = true
	}
	m.triples = so.Triples
	m.propagateFree()
	return m, nil
}

type machine struct {
	proto   *Protocol
	id      sim.PartyID
	aborted bool

	wires   []bool
	known   []bool
	triples map[int]triple

	result uint64
	done   bool
	failed bool
}

// propagateFree evaluates XOR/NOT gates whose operands are known and
// non-AND-blocked, repeatedly until a fixpoint.
func (m *machine) propagateFree() {
	for {
		progress := false
		for g, gate := range m.proto.circ.Gates {
			w := m.proto.circ.NumInputs + g
			if m.known[w] || gate.Kind == circuit.KindAnd {
				continue
			}
			switch gate.Kind {
			case circuit.KindXor:
				if m.known[gate.A] && m.known[gate.B] {
					m.wires[w] = m.wires[gate.A] != m.wires[gate.B]
					m.known[w] = true
					progress = true
				}
			case circuit.KindNot:
				if m.known[gate.A] {
					// Only party 1 flips its share (XOR-sharing of ¬x).
					m.wires[w] = m.wires[gate.A] != (m.id == 1)
					m.known[w] = true
					progress = true
				}
			}
		}
		if !progress {
			return
		}
	}
}

// layerDE builds this party's d/e shares for the layer's gates.
func (m *machine) layerDE(layer []int) (deMsg, bool) {
	msg := deMsg{D: make([]bool, len(layer)), E: make([]bool, len(layer))}
	for i, g := range layer {
		gate := m.proto.circ.Gates[g]
		if !m.known[gate.A] || !m.known[gate.B] {
			return deMsg{}, false
		}
		tr := m.triples[g]
		msg.D[i] = m.wires[gate.A] != tr.A
		msg.E[i] = m.wires[gate.B] != tr.B
	}
	return msg, true
}

// applyLayer consumes all parties' d/e shares for the given layer.
func (m *machine) applyLayer(layerIdx int, inbox []sim.Message) bool {
	layer := m.proto.layers[layerIdx]
	// Collect one deMsg per party (including our own, recomputed).
	own, ok := m.layerDE(layer)
	if !ok {
		return false
	}
	received := map[sim.PartyID]deMsg{m.id: own}
	for _, msg := range inbox {
		dm, ok := msg.Payload.(deMsg)
		if !ok || dm.Layer != layerIdx || msg.From == m.id {
			continue
		}
		if len(dm.D) != len(layer) || len(dm.E) != len(layer) {
			return false
		}
		received[msg.From] = dm
	}
	if len(received) != m.proto.n {
		return false
	}
	ids := make([]sim.PartyID, 0, len(received))
	for id := range received {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, g := range layer {
		d, e := false, false
		for _, id := range ids {
			d = d != received[id].D[i]
			e = e != received[id].E[i]
		}
		tr := m.triples[g]
		// z_j = c_j ⊕ d·b_j ⊕ e·a_j (⊕ d·e for party 1).
		z := tr.C
		if d {
			z = z != tr.B
		}
		if e {
			z = z != tr.A
		}
		if d && e && m.id == 1 {
			z = !z
		}
		w := m.proto.circ.NumInputs + g
		m.wires[w] = z
		m.known[w] = true
	}
	m.propagateFree()
	return true
}

func (m *machine) Round(round int, inbox []sim.Message) ([]sim.Message, error) {
	if m.aborted || m.failed || m.done {
		return nil, nil
	}
	numLayers := len(m.proto.layers)
	switch {
	case round <= numLayers:
		// Consume the previous layer's openings (round ≥ 2), then send
		// this layer's d/e shares.
		if round >= 2 && !m.applyLayer(round-2, inbox) {
			m.failed = true
			return nil, nil
		}
		msg, ok := m.layerDE(m.proto.layers[round-1])
		if !ok {
			m.failed = true
			return nil, nil
		}
		msg.Layer = round - 1
		return []sim.Message{{From: m.id, To: sim.Broadcast, Payload: msg}}, nil
	case round == numLayers+1:
		// Consume the last layer (if any), then broadcast output shares.
		if numLayers > 0 && !m.applyLayer(numLayers-1, inbox) {
			m.failed = true
			return nil, nil
		}
		shares := make([]bool, len(m.proto.circ.Outputs))
		for i, w := range m.proto.circ.Outputs {
			if !m.known[w] {
				m.failed = true
				return nil, nil
			}
			shares[i] = m.wires[w]
		}
		return []sim.Message{{From: m.id, To: sim.Broadcast, Payload: outMsg{Shares: shares}}}, nil
	default:
		// Finalize: reconstruct the outputs from all shares. Our own
		// shares are known locally; the inbox must supply everyone
		// else's.
		own := make([]bool, len(m.proto.circ.Outputs))
		for i, w := range m.proto.circ.Outputs {
			if !m.known[w] {
				m.failed = true
				return nil, nil
			}
			own[i] = m.wires[w]
		}
		received := map[sim.PartyID][]bool{m.id: own}
		for _, msg := range inbox {
			if msg.From == m.id {
				continue
			}
			if om, ok := msg.Payload.(outMsg); ok && len(om.Shares) == len(m.proto.circ.Outputs) {
				received[msg.From] = om.Shares
			}
		}
		if len(received) != m.proto.n {
			m.failed = true
			return nil, nil
		}
		out := make([]bool, len(m.proto.circ.Outputs))
		for _, shares := range received {
			for i, s := range shares {
				out[i] = out[i] != s
			}
		}
		m.result, m.done = circuit.BitsToUint(out), true
	}
	return nil, nil
}

func (m *machine) Output() (sim.Value, bool) {
	if !m.done {
		return nil, false
	}
	return m.result, true
}

func (m *machine) Clone() sim.Party {
	cp := *m
	cp.wires = append([]bool(nil), m.wires...)
	cp.known = append([]bool(nil), m.known...)
	// triples are read-only after setup; sharing the map is safe for
	// lookahead but we copy for strict isolation.
	cp.triples = make(map[int]triple, len(m.triples))
	for k, v := range m.triples {
		cp.triples[k] = v
	}
	return &cp
}

// RegisterGobTypes registers the protocol's wire payloads and setup
// outputs with encoding/gob, for running it over the transport package's
// TCP sessions. Safe to call multiple times.
func RegisterGobTypes() {
	gob.Register(setupOut{})
	gob.Register(deMsg{})
	gob.Register(outMsg{})
	gob.Register(uint64(0))
}
