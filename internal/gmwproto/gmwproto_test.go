package gmwproto

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sim"
)

func mustProto(t *testing.T, label string, c *circuit.Circuit, n int) *Protocol {
	t.Helper()
	p, err := New(label, c, n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestHonestANDMatchesClear(t *testing.T) {
	c, err := circuit.AndCircuit()
	if err != nil {
		t.Fatal(err)
	}
	p := mustProto(t, "and", c, 2)
	for x := uint64(0); x < 2; x++ {
		for y := uint64(0); y < 2; y++ {
			tr, err := sim.Run(p, []sim.Value{x, y}, sim.Passive{}, int64(x*2+y))
			if err != nil {
				t.Fatal(err)
			}
			if !tr.AllHonestDelivered() {
				t.Fatalf("AND(%d,%d): %+v", x, y, tr.HonestOutputs)
			}
			if !sim.ValuesEqual(tr.ExpectedOutput, x&y) {
				t.Fatalf("expected %v, circuit func gave %v", x&y, tr.ExpectedOutput)
			}
		}
	}
}

func TestHonestMillionairesManySeeds(t *testing.T) {
	const bits = 8
	c, err := circuit.MillionairesCircuit(bits)
	if err != nil {
		t.Fatal(err)
	}
	p := mustProto(t, "millionaires", c, 2)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		x := uint64(rng.Intn(256))
		y := uint64(rng.Intn(256))
		tr, err := sim.Run(p, []sim.Value{x, y}, sim.Passive{}, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(0)
		if x > y {
			want = 1
		}
		if !tr.AllHonestDelivered() || !sim.ValuesEqual(tr.ExpectedOutput, want) {
			t.Fatalf("trial %d x=%d y=%d: outputs %+v want %d", trial, x, y, tr.HonestOutputs, want)
		}
	}
}

func TestHonestThreePartyMax(t *testing.T) {
	c, err := circuit.MaxCircuit(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	p := mustProto(t, "max3", c, 3)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		in := []sim.Value{uint64(rng.Intn(64)), uint64(rng.Intn(64)), uint64(rng.Intn(64))}
		tr, err := sim.Run(p, in, sim.Passive{}, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if !tr.AllHonestDelivered() {
			t.Fatalf("trial %d: %+v (expected %v)", trial, tr.HonestOutputs, tr.ExpectedOutput)
		}
	}
}

func TestRoundComplexityIsAndDepthPlusOne(t *testing.T) {
	c, err := circuit.MillionairesCircuit(8)
	if err != nil {
		t.Fatal(err)
	}
	p := mustProto(t, "m8", c, 2)
	if p.NumRounds() != c.AndDepth()+1 {
		t.Errorf("rounds = %d, AND depth = %d", p.NumRounds(), c.AndDepth())
	}
}

func TestUnfairnessRushingGrab(t *testing.T) {
	// The headline: the unfair substrate concedes γ10 with probability 1
	// to the rushing lock-and-abort adversary — the gap ΠOpt-2SFE closes.
	c, err := circuit.MillionairesCircuit(4)
	if err != nil {
		t.Fatal(err)
	}
	p := mustProto(t, "m4", c, 2)
	g := core.StandardPayoff()
	sampler := func(r *rand.Rand) []sim.Value {
		return []sim.Value{uint64(r.Intn(16)), uint64(r.Intn(16))}
	}
	rep, err := core.EstimateUtility(p, adversary.NewLockAbort(2), g, sampler, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EventFreq[core.E10] < 0.99 {
		t.Errorf("E10 freq %v, want ~1 (events %v)", rep.EventFreq[core.E10], rep.EventFreq)
	}
}

func TestMidProtocolAbortDeniesEveryone(t *testing.T) {
	// Aborting during the DE rounds leaves everyone (including the
	// adversary, pre-output) without a result: E00.
	c, err := circuit.MillionairesCircuit(4)
	if err != nil {
		t.Fatal(err)
	}
	p := mustProto(t, "m4", c, 2)
	tr, err := sim.Run(p, []sim.Value{uint64(9), uint64(3)}, adversary.NewAbortAt(1, 2), 4)
	if err != nil {
		t.Fatal(err)
	}
	if oc := core.Classify(tr); oc.Event != core.E00 {
		t.Errorf("event %v, want E00", oc.Event)
	}
}

func TestSetupAbortEndsBot(t *testing.T) {
	c, err := circuit.AndCircuit()
	if err != nil {
		t.Fatal(err)
	}
	p := mustProto(t, "and", c, 2)
	tr, err := sim.Run(p, []sim.Value{uint64(1), uint64(1)}, adversary.NewSetupAbort(1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.SetupAborted {
		t.Fatal("setup not aborted")
	}
	if rec := tr.HonestOutputs[2]; rec.OK {
		t.Errorf("party 2 output %v after offline abort", rec.Value)
	}
}

func TestConstructorErrors(t *testing.T) {
	c, err := circuit.AndCircuit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New("x", c, 1); err != ErrPartyCount {
		t.Errorf("n=1: %v", err)
	}
	wide, err := circuit.ConcatCircuit(2, 30) // keeps n·bits within concat limit
	if err != nil {
		t.Fatal(err)
	}
	if len(wide.Outputs) <= 64 {
		// Build a >64-output circuit directly.
		b := circuit.NewBuilder()
		xs := b.Inputs(0, 1)
		for i := 0; i < 65; i++ {
			b.Output(b.Not(b.Not(xs[0])))
		}
		over, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := New("over", over, 2); err != ErrTooManyOutputs {
			t.Errorf("65 outputs: %v", err)
		}
	}
	bad := &circuit.Circuit{NumInputs: 1, InputOwner: []int{7}}
	if _, err := New("bad", bad, 2); err == nil {
		t.Error("bad owner accepted")
	}
	invalid := &circuit.Circuit{NumInputs: 1, InputOwner: []int{0}, Outputs: []int{9}}
	if _, err := New("invalid", invalid, 2); err == nil {
		t.Error("invalid circuit accepted")
	}
}

func TestFuncPacksOutputs(t *testing.T) {
	c, err := circuit.SwapCircuit(4)
	if err != nil {
		t.Fatal(err)
	}
	p := mustProto(t, "swap4", c, 2)
	got := p.Func([]sim.Value{uint64(0b1010), uint64(0b0011)})
	// Swap outputs y ‖ x: low 4 bits y=0011, high 4 bits x=1010.
	want := uint64(0b0011 | 0b1010<<4)
	if !sim.ValuesEqual(got, want) {
		t.Errorf("Func = %b, want %b", got, want)
	}
}

func TestLyingShareFlaggedAsViolation(t *testing.T) {
	// A corrupted party flipping its output share corrupts the honest
	// party's reconstruction — the classifier flags it as a correctness
	// violation (not simulatable), never as a clean delivery.
	c, err := circuit.AndCircuit()
	if err != nil {
		t.Fatal(err)
	}
	p := mustProto(t, "and", c, 2)
	adv := &shareFlipper{}
	// Inputs (0, 1): the true output 0 is forced by x1 = 0, so the
	// flipped reconstruction 1 is not explainable by any corrupted-input
	// substitution — a genuine correctness violation.
	tr, err := sim.Run(p, []sim.Value{uint64(0), uint64(1)}, adv, 6)
	if err != nil {
		t.Fatal(err)
	}
	oc := core.Classify(tr)
	if !oc.CorrectnessViolation {
		t.Errorf("flipped share not flagged: %+v", tr.HonestOutputs)
	}
}

// shareFlipper runs party 2 honestly but flips its output-round share.
type shareFlipper struct {
	adversary.Static
}

func (s *shareFlipper) Reset(ctx *sim.AdvContext) {
	s.Static.Targets = []sim.PartyID{2}
	s.Static.Reset(ctx)
}

func (s *shareFlipper) Act(round int, inboxes map[sim.PartyID][]sim.Message, rushed []sim.Message) []sim.Message {
	out := s.Static.Act(round, inboxes, rushed)
	for i := range out {
		if om, ok := out[i].Payload.(outMsg); ok {
			flipped := append([]bool(nil), om.Shares...)
			flipped[0] = !flipped[0]
			out[i].Payload = outMsg{Shares: flipped}
		}
	}
	return out
}

func BenchmarkOnlineMillionaires8(b *testing.B) {
	c, err := circuit.MillionairesCircuit(8)
	if err != nil {
		b.Fatal(err)
	}
	p, err := New("m8", c, 2)
	if err != nil {
		b.Fatal(err)
	}
	in := []sim.Value{uint64(200), uint64(100)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(p, in, sim.Passive{}, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
