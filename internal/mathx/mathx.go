// Package mathx provides small numeric helpers shared by the fairness
// engine: tolerance-based comparisons standing in for the paper's
// "up to a negligible function" relations, and combinatorial utilities.
package mathx

import "math"

// DefaultTolerance is the default slack used when comparing empirical
// utility estimates against the paper's closed-form bounds. It plays the
// role of the negligible function µ in the paper's ≤-up-to-negligible
// relation, widened to absorb Monte-Carlo sampling error.
const DefaultTolerance = 0.02

// ApproxEqual reports |a - b| <= tol.
func ApproxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// LessOrApprox reports a <= b + tol, the empirical analogue of the paper's
//
//	a ≤(negl) b.
func LessOrApprox(a, b, tol float64) bool {
	return a <= b+tol
}

// GreaterOrApprox reports a >= b - tol, the empirical analogue of ≥(negl).
func GreaterOrApprox(a, b, tol float64) bool {
	return a >= b-tol
}

// Clamp limits v to the interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// Binomial returns C(n, k) as a float64 (exact for small arguments; the
// fairness experiments only need n up to a few dozen).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	result := 1.0
	for i := 0; i < k; i++ {
		result = result * float64(n-i) / float64(i+1)
	}
	return result
}

// MinInt returns the smaller of a and b.
func MinInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MaxInt returns the larger of a and b.
func MaxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MaxFloat returns the maximum of a non-empty slice, or -Inf for empty.
func MaxFloat(vs []float64) float64 {
	m := math.Inf(-1)
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// SumFloat returns the sum of the slice.
func SumFloat(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}
