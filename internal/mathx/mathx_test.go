package mathx

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	tests := []struct {
		a, b, tol float64
		want      bool
	}{
		{1.0, 1.0, 0, true},
		{1.0, 1.01, 0.02, true},
		{1.0, 1.03, 0.02, false},
		{-1.0, -1.01, 0.02, true},
	}
	for _, tt := range tests {
		if got := ApproxEqual(tt.a, tt.b, tt.tol); got != tt.want {
			t.Errorf("ApproxEqual(%v,%v,%v)=%v, want %v", tt.a, tt.b, tt.tol, got, tt.want)
		}
	}
}

func TestLessGreaterOrApprox(t *testing.T) {
	if !LessOrApprox(1.01, 1.0, 0.02) {
		t.Error("1.01 should be ≤(0.02) 1.0")
	}
	if LessOrApprox(1.05, 1.0, 0.02) {
		t.Error("1.05 should not be ≤(0.02) 1.0")
	}
	if !GreaterOrApprox(0.99, 1.0, 0.02) {
		t.Error("0.99 should be ≥(0.02) 1.0")
	}
	if GreaterOrApprox(0.95, 1.0, 0.02) {
		t.Error("0.95 should not be ≥(0.02) 1.0")
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		v, lo, hi, want float64
	}{
		{0.5, 0, 1, 0.5},
		{-1, 0, 1, 0},
		{2, 0, 1, 1},
	}
	for _, tt := range tests {
		if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v)=%v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestBinomial(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1},
		{5, 5, 1},
		{5, 2, 10},
		{10, 3, 120},
		{5, 6, 0},
		{5, -1, 0},
		{0, 0, 1},
	}
	for _, tt := range tests {
		if got := Binomial(tt.n, tt.k); got != tt.want {
			t.Errorf("Binomial(%d,%d)=%v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestBinomialSymmetry(t *testing.T) {
	for n := 0; n <= 20; n++ {
		for k := 0; k <= n; k++ {
			if Binomial(n, k) != Binomial(n, n-k) {
				t.Fatalf("C(%d,%d) != C(%d,%d)", n, k, n, n-k)
			}
		}
	}
}

func TestMinMaxInt(t *testing.T) {
	if MinInt(3, 5) != 3 || MinInt(5, 3) != 3 {
		t.Error("MinInt wrong")
	}
	if MaxInt(3, 5) != 5 || MaxInt(5, 3) != 5 {
		t.Error("MaxInt wrong")
	}
}

func TestMaxFloat(t *testing.T) {
	if got := MaxFloat([]float64{1, 3, 2}); got != 3 {
		t.Errorf("MaxFloat = %v, want 3", got)
	}
	if got := MaxFloat(nil); !math.IsInf(got, -1) {
		t.Errorf("MaxFloat(nil) = %v, want -Inf", got)
	}
}

func TestSumFloat(t *testing.T) {
	if got := SumFloat([]float64{1, 2, 3.5}); got != 6.5 {
		t.Errorf("SumFloat = %v, want 6.5", got)
	}
	if got := SumFloat(nil); got != 0 {
		t.Errorf("SumFloat(nil) = %v, want 0", got)
	}
}
