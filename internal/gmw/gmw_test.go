package gmw

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/ot"
)

// evalGlobal runs a full GMW evaluation on a global input assignment.
func evalGlobal(t *testing.T, circ *circuit.Circuit, n int, global []bool, engine ot.Engine, seed int64) []bool {
	t.Helper()
	e, err := NewEvaluator(circ, n, engine)
	if err != nil {
		t.Fatal(err)
	}
	inputs, err := InputsFromGlobal(circ, global, n)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Evaluate(rand.New(rand.NewSource(seed)), inputs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAndMatchesClear(t *testing.T) {
	circ, err := circuit.AndCircuit()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []bool{false, true} {
		for _, y := range []bool{false, true} {
			in := []bool{x, y}
			want, err := circ.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			got := evalGlobal(t, circ, 2, in, ot.Dealer{}, 1)
			if got[0] != want[0] {
				t.Errorf("AND(%v,%v): gmw=%v clear=%v", x, y, got[0], want[0])
			}
		}
	}
}

func TestMillionairesMatchesClearManySeeds(t *testing.T) {
	const bits = 6
	circ, err := circuit.MillionairesCircuit(bits)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		x := uint64(rng.Intn(64))
		y := uint64(rng.Intn(64))
		in := append(circuit.UintToBits(x, bits), circuit.UintToBits(y, bits)...)
		want, err := circ.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		got := evalGlobal(t, circ, 2, in, ot.Dealer{}, int64(trial))
		if got[0] != want[0] {
			t.Fatalf("trial %d: millionaires(%d,%d) gmw=%v want %v", trial, x, y, got[0], want[0])
		}
	}
}

func TestMultiPartyMaxMatchesClear(t *testing.T) {
	const n, bits = 4, 4
	circ, err := circuit.MaxCircuit(n, bits)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		global := make([]bool, circ.NumInputs)
		for i := range global {
			global[i] = rng.Intn(2) == 1
		}
		want, err := circ.Eval(global)
		if err != nil {
			t.Fatal(err)
		}
		got := evalGlobal(t, circ, n, global, ot.Dealer{}, int64(100+trial))
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("trial %d output bit %d: gmw=%v want %v", trial, k, got[k], want[k])
			}
		}
	}
}

func TestWithNaorPinkasOT(t *testing.T) {
	// Full cryptographic OT on a small circuit.
	circ, err := circuit.AndCircuit()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []bool{false, true} {
		for _, y := range []bool{false, true} {
			in := []bool{x, y}
			got := evalGlobal(t, circ, 2, in, ot.NaorPinkas{}, 4)
			if got[0] != (x && y) {
				t.Errorf("NP-OT AND(%v,%v) = %v", x, y, got[0])
			}
		}
	}
}

func TestSumCircuitThreeParties(t *testing.T) {
	circ, err := circuit.SumCircuit(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		vals := []uint64{uint64(rng.Intn(8)), uint64(rng.Intn(8)), uint64(rng.Intn(8))}
		var global []bool
		for _, v := range vals {
			global = append(global, circuit.UintToBits(v, 3)...)
		}
		got := evalGlobal(t, circ, 3, global, ot.Dealer{}, int64(trial))
		if circuit.BitsToUint(got) != vals[0]+vals[1]+vals[2] {
			t.Fatalf("sum=%d want %d", circuit.BitsToUint(got), vals[0]+vals[1]+vals[2])
		}
	}
}

func TestRevealExceptHidesOutput(t *testing.T) {
	// Withholding one party's shares must leave the output uniformly
	// masked: over many runs with the same inputs, the partial reveal
	// should flip ~50/50.
	circ, err := circuit.AndCircuit()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(circ, 2, ot.Dealer{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := Inputs{{true}, {true}} // true output = 1
	const trials = 400
	ones := 0
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < trials; i++ {
		shares, err := e.EvaluateShares(rng, inputs)
		if err != nil {
			t.Fatal(err)
		}
		partial := shares.RevealExcept(map[int]bool{1: true})
		if partial[0] {
			ones++
		}
		// Full reveal must still be correct.
		if full := shares.Reveal(); !full[0] {
			t.Fatal("full reveal wrong")
		}
	}
	if ones < trials*40/100 || ones > trials*60/100 {
		t.Errorf("partial reveal biased: %d/%d ones — output leaks", ones, trials)
	}
}

func TestSharesUniform(t *testing.T) {
	// Any single party's output share must be unbiased regardless of the
	// true output (XOR-sharing privacy).
	circ, err := circuit.AndCircuit()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(circ, 2, ot.Dealer{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const trials = 400
	ones := 0
	for i := 0; i < trials; i++ {
		shares, err := e.EvaluateShares(rng, Inputs{{false}, {false}})
		if err != nil {
			t.Fatal(err)
		}
		if shares[0][0] {
			ones++
		}
	}
	if ones < trials*40/100 || ones > trials*60/100 {
		t.Errorf("share biased: %d/%d", ones, trials)
	}
}

func TestNewEvaluatorErrors(t *testing.T) {
	circ, err := circuit.AndCircuit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEvaluator(circ, 1, ot.Dealer{}); !errors.Is(err, ErrPartyCount) {
		t.Errorf("n=1: %v, want ErrPartyCount", err)
	}
	bad := &circuit.Circuit{NumInputs: 1, InputOwner: []int{5}}
	if _, err := NewEvaluator(bad, 2, ot.Dealer{}); err == nil {
		t.Error("owner out of range accepted")
	}
	invalid := &circuit.Circuit{NumInputs: 1, InputOwner: []int{0}, Outputs: []int{9}}
	if _, err := NewEvaluator(invalid, 2, ot.Dealer{}); err == nil {
		t.Error("invalid circuit accepted")
	}
}

func TestEvaluateInputErrors(t *testing.T) {
	circ, err := circuit.AndCircuit()
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(circ, 2, ot.Dealer{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	if _, err := e.EvaluateShares(rng, Inputs{{true}}); !errors.Is(err, ErrInputShape) {
		t.Errorf("missing party: %v", err)
	}
	if _, err := e.EvaluateShares(rng, Inputs{{}, {true}}); !errors.Is(err, ErrInputShape) {
		t.Errorf("too few bits: %v", err)
	}
	if _, err := e.EvaluateShares(rng, Inputs{{true, false}, {true}}); !errors.Is(err, ErrInputShape) {
		t.Errorf("too many bits: %v", err)
	}
}

func TestInputsFromGlobalErrors(t *testing.T) {
	circ, err := circuit.AndCircuit()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InputsFromGlobal(circ, []bool{true}, 2); !errors.Is(err, ErrInputShape) {
		t.Errorf("wrong global size: %v", err)
	}
}

func TestRevealEmpty(t *testing.T) {
	if got := (Shares{}).Reveal(); got != nil {
		t.Errorf("empty reveal = %v, want nil", got)
	}
	if got := (Shares{}).RevealExcept(nil); got != nil {
		t.Errorf("empty reveal-except = %v, want nil", got)
	}
}

func BenchmarkGMWMillionaires8Bit(b *testing.B) {
	circ, err := circuit.MillionairesCircuit(8)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEvaluator(circ, 2, ot.Dealer{})
	if err != nil {
		b.Fatal(err)
	}
	inputs, err := InputsFromGlobal(circ, make([]bool, 16), 2)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Evaluate(rng, inputs); err != nil {
			b.Fatal(err)
		}
	}
}
