// Package gmw implements an n-party GMW-style secure function evaluation
// substrate over boolean circuits: every wire is XOR-shared among the
// parties, XOR/NOT gates are local, and each AND gate is computed with
// one 1-out-of-2 oblivious transfer per ordered party pair (the classic
// cross-term trick: for z = (⊕x_i)(⊕y_i), party i and party j jointly
// reshare x_i·y_j with the sender's fresh random pad as its share).
//
// This is the paper's Π_GMW hybrid — the adaptively secure but *unfair*
// SFE protocol invoked in phase 1 of ΠOpt-2SFE and ΠOpt-nSFE. Its single
// fairness-relevant attack surface is exactly the one the paper analyses:
// during the output-reveal step, a corrupted party may learn the output
// from the honest parties' shares while withholding its own (security
// with abort). The staged API below exposes that surface: EvaluateShares
// stops at "everybody holds an XOR share of each output wire", and Reveal
// is a separate, abortable step.
//
// Malicious behaviour *inside* the evaluation phase (wrong OT inputs,
// inconsistent shares) is out of scope here, as it is in the paper: the
// fairness results treat the phase-1 SFE as an ideally secure hybrid and
// apply the RPD composition theorem. See DESIGN.md, Substitutions.
package gmw

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/circuit"
	"repro/internal/ot"
)

// Errors returned by the evaluator.
var (
	ErrPartyCount = errors.New("gmw: need at least 2 parties")
	ErrInputShape = errors.New("gmw: input bits do not match circuit input owners")
)

// Evaluator runs GMW evaluations of a fixed circuit among n parties.
type Evaluator struct {
	circ *circuit.Circuit
	n    int
	ot   ot.Engine
}

// NewEvaluator validates the circuit and returns an evaluator for n
// parties using the given OT engine.
func NewEvaluator(circ *circuit.Circuit, n int, engine ot.Engine) (*Evaluator, error) {
	if n < 2 {
		return nil, ErrPartyCount
	}
	if err := circ.Validate(); err != nil {
		return nil, fmt.Errorf("gmw: %w", err)
	}
	for i, owner := range circ.InputOwner {
		if owner < 0 || owner >= n {
			return nil, fmt.Errorf("gmw: input wire %d owned by party %d, have %d parties", i, owner, n)
		}
	}
	return &Evaluator{circ: circ, n: n, ot: engine}, nil
}

// Shares is the post-evaluation state: Shares[p][k] is party p's XOR
// share of output wire k.
type Shares [][]bool

// NumParties returns the number of parties in the sharing.
func (s Shares) NumParties() int { return len(s) }

// Reveal combines all parties' output shares (the final, abortable step).
func (s Shares) Reveal() []bool {
	if len(s) == 0 {
		return nil
	}
	out := make([]bool, len(s[0]))
	for _, ps := range s {
		for k, b := range ps {
			out[k] = out[k] != b
		}
	}
	return out
}

// RevealExcept combines the output shares of all parties except those in
// withhold, modeling an abort during reveal: the result is what the
// remaining parties can compute — a uniformly random mask of the true
// output, carrying no information (tested as such).
func (s Shares) RevealExcept(withhold map[int]bool) []bool {
	if len(s) == 0 {
		return nil
	}
	out := make([]bool, len(s[0]))
	for p, ps := range s {
		if withhold[p] {
			continue
		}
		for k, b := range ps {
			out[k] = out[k] != b
		}
	}
	return out
}

// Inputs maps each party to its input bits, in circuit wire order
// restricted to the wires that party owns.
type Inputs [][]bool

// InputsFromGlobal splits a full input-wire assignment into per-party
// vectors according to the circuit's InputOwner labels.
func InputsFromGlobal(circ *circuit.Circuit, global []bool, n int) (Inputs, error) {
	if len(global) != circ.NumInputs {
		return nil, fmt.Errorf("%w: %d bits for %d input wires", ErrInputShape, len(global), circ.NumInputs)
	}
	in := make(Inputs, n)
	for w, owner := range circ.InputOwner {
		if owner < 0 || owner >= n {
			return nil, fmt.Errorf("%w: wire %d owner %d", ErrInputShape, w, owner)
		}
		in[owner] = append(in[owner], global[w])
	}
	return in, nil
}

// EvaluateShares runs the sharing and gate-evaluation phases and stops
// before reveal, returning every party's output-wire shares.
func (e *Evaluator) EvaluateShares(rng io.Reader, inputs Inputs) (Shares, error) {
	if len(inputs) != e.n {
		return nil, fmt.Errorf("%w: inputs for %d parties, want %d", ErrInputShape, len(inputs), e.n)
	}
	// wires[p][w] is party p's share of wire w.
	wires := make([][]bool, e.n)
	for p := range wires {
		wires[p] = make([]bool, e.circ.NumWires())
	}

	// Input sharing: the owner XOR-shares each of its input bits.
	cursor := make([]int, e.n)
	for w, owner := range e.circ.InputOwner {
		if cursor[owner] >= len(inputs[owner]) {
			return nil, fmt.Errorf("%w: party %d supplied %d bits, needs more", ErrInputShape, owner, len(inputs[owner]))
		}
		bit := inputs[owner][cursor[owner]]
		cursor[owner]++
		if err := e.shareBit(rng, wires, w, bit); err != nil {
			return nil, err
		}
	}
	for p, c := range cursor {
		if c != len(inputs[p]) {
			return nil, fmt.Errorf("%w: party %d supplied %d bits, circuit uses %d", ErrInputShape, p, len(inputs[p]), c)
		}
	}

	// Gate evaluation.
	for g, gate := range e.circ.Gates {
		w := e.circ.NumInputs + g
		switch gate.Kind {
		case circuit.KindXor:
			for p := range wires {
				wires[p][w] = wires[p][gate.A] != wires[p][gate.B]
			}
		case circuit.KindNot:
			for p := range wires {
				wires[p][w] = wires[p][gate.A]
			}
			wires[0][w] = !wires[0][w]
		case circuit.KindAnd:
			if err := e.andGate(rng, wires, gate, w); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("gmw: gate %d: unknown kind %d", g, int(gate.Kind))
		}
	}

	out := make(Shares, e.n)
	for p := range out {
		out[p] = make([]bool, len(e.circ.Outputs))
		for k, ow := range e.circ.Outputs {
			out[p][k] = wires[p][ow]
		}
	}
	return out, nil
}

// Evaluate runs the full protocol honestly: evaluate then reveal.
func (e *Evaluator) Evaluate(rng io.Reader, inputs Inputs) ([]bool, error) {
	shares, err := e.EvaluateShares(rng, inputs)
	if err != nil {
		return nil, err
	}
	return shares.Reveal(), nil
}

// shareBit XOR-shares bit into wires[·][w].
func (e *Evaluator) shareBit(rng io.Reader, wires [][]bool, w int, bit bool) error {
	acc := false
	var buf [1]byte
	for p := 0; p < e.n-1; p++ {
		if _, err := io.ReadFull(rng, buf[:]); err != nil {
			return fmt.Errorf("gmw: share randomness: %w", err)
		}
		s := buf[0]&1 == 1
		wires[p][w] = s
		acc = acc != s
	}
	wires[e.n-1][w] = acc != bit
	return nil
}

// andGate computes shares of wires[·][A] ∧ wires[·][B]:
//
//	z = (⊕ x_p)(⊕ y_p) = ⊕_p x_p·y_p ⊕ ⊕_{i≠j} x_i·y_j.
//
// Each ordered cross term x_i·y_j is reshared with one OT: sender i picks
// a random pad r and offers (r ⊕ x_i·0, r ⊕ x_i·1); receiver j selects
// with y_j. Sender's share of the term is r, receiver's is the message.
func (e *Evaluator) andGate(rng io.Reader, wires [][]bool, gate circuit.Gate, w int) error {
	z := make([]bool, e.n)
	for p := 0; p < e.n; p++ {
		z[p] = wires[p][gate.A] && wires[p][gate.B]
	}
	var buf [1]byte
	for i := 0; i < e.n; i++ {
		for j := 0; j < e.n; j++ {
			if i == j {
				continue
			}
			if _, err := io.ReadFull(rng, buf[:]); err != nil {
				return fmt.Errorf("gmw: and-gate randomness: %w", err)
			}
			r := buf[0]&1 == 1
			xi := wires[i][gate.A]
			m0 := boolByte(r) // r ⊕ x_i·0
			m1 := boolByte(r != xi)
			choice := 0
			if wires[j][gate.B] {
				choice = 1
			}
			got, err := e.ot.Transfer(rng, [][]byte{{m0}, {m1}}, choice)
			if err != nil {
				return fmt.Errorf("gmw: and-gate OT (%d→%d): %w", i, j, err)
			}
			if len(got) != 1 || got[0] > 1 {
				return fmt.Errorf("gmw: and-gate OT (%d→%d): malformed response", i, j)
			}
			z[i] = z[i] != r
			z[j] = z[j] != (got[0] == 1)
		}
	}
	for p := 0; p < e.n; p++ {
		wires[p][w] = z[p]
	}
	return nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
