package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMeanEstimateBasic(t *testing.T) {
	est, err := MeanEstimate([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean != 3 {
		t.Errorf("Mean = %v, want 3", est.Mean)
	}
	if est.N != 5 {
		t.Errorf("N = %d, want 5", est.N)
	}
	if est.HalfWidth <= 0 {
		t.Errorf("HalfWidth = %v, want > 0", est.HalfWidth)
	}
}

func TestMeanEstimateEmpty(t *testing.T) {
	if _, err := MeanEstimate(nil); err != ErrNoSamples {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
}

func TestMeanEstimateSingle(t *testing.T) {
	// One sample carries no variance information: the half-width must be
	// +Inf so a 1-run estimate can never certify a bound (the old
	// half-width of 0 claimed an exact answer from a single run).
	est, err := MeanEstimate([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean != 7 || !math.IsInf(est.HalfWidth, 1) {
		t.Errorf("single sample: got %+v", est)
	}
	if est.LeqWithin(6, 0) != true {
		t.Errorf("an infinite interval must stay consistent with any bound")
	}
}

func TestMeanEstimateConstant(t *testing.T) {
	est, err := MeanEstimate([]float64{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean != 2 || est.HalfWidth != 0 {
		t.Errorf("constant samples: got %+v", est)
	}
}

func TestMeanEstimateCoversTruth(t *testing.T) {
	// Draw Bernoulli(0.3) samples; the CI should cover 0.3 nearly always.
	rng := rand.New(rand.NewSource(11))
	covered := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		samples := make([]float64, 500)
		for i := range samples {
			if rng.Float64() < 0.3 {
				samples[i] = 1
			}
		}
		est, err := MeanEstimate(samples)
		if err != nil {
			t.Fatal(err)
		}
		if est.Lo() <= 0.3 && 0.3 <= est.Hi() {
			covered++
		}
	}
	if covered < trials*90/100 {
		t.Errorf("95%% CI covered truth only %d/%d times", covered, trials)
	}
}

func TestBernoulliEstimate(t *testing.T) {
	est, err := BernoulliEstimate(30, 100)
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean != 0.3 {
		t.Errorf("Mean = %v, want 0.3", est.Mean)
	}
	if est.HalfWidth <= 0 {
		t.Errorf("HalfWidth = %v, want > 0", est.HalfWidth)
	}
}

func TestBernoulliEstimateEmpty(t *testing.T) {
	if _, err := BernoulliEstimate(0, 0); err != ErrNoSamples {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
}

func TestHoeffdingHalfWidth(t *testing.T) {
	hw := HoeffdingHalfWidth(1000, 0.05)
	want := math.Sqrt(math.Log(40) / 2000)
	if math.Abs(hw-want) > 1e-12 {
		t.Errorf("hw = %v, want %v", hw, want)
	}
	if !math.IsInf(HoeffdingHalfWidth(0, 0.05), 1) {
		t.Error("hw(0) should be +Inf")
	}
	// More samples -> tighter interval.
	if HoeffdingHalfWidth(10000, 0.05) >= HoeffdingHalfWidth(100, 0.05) {
		t.Error("Hoeffding half-width should shrink with n")
	}
}

func TestSamplesFor(t *testing.T) {
	n := SamplesFor(0.01, 0.05)
	// The returned n must actually achieve the requested half-width.
	if HoeffdingHalfWidth(int64(n), 0.05) > 0.01+1e-12 {
		t.Errorf("SamplesFor(0.01) = %d gives hw %v > 0.01", n, HoeffdingHalfWidth(int64(n), 0.05))
	}
	if SamplesFor(0, 0.05) != math.MaxInt32 {
		t.Error("SamplesFor(0) should saturate")
	}
}

func TestEstimateComparisons(t *testing.T) {
	e := Estimate{Mean: 0.5, HalfWidth: 0.05, N: 100}
	if !e.LeqWithin(0.5, 0) {
		t.Error("0.5±0.05 should be ≤ 0.5")
	}
	if !e.LeqWithin(0.46, 0) {
		t.Error("lower CI end 0.45 ≤ 0.46 should hold")
	}
	if e.LeqWithin(0.40, 0) {
		t.Error("0.5±0.05 should not be ≤ 0.40")
	}
	if !e.GeqWithin(0.54, 0) {
		t.Error("upper CI end 0.55 ≥ 0.54 should hold")
	}
	if e.GeqWithin(0.60, 0) {
		t.Error("0.5±0.05 should not be ≥ 0.60")
	}
	if !e.MatchesWithin(0.52, 0) {
		t.Error("0.52 lies within [0.45, 0.55]")
	}
	if e.MatchesWithin(0.60, 0) {
		t.Error("0.60 outside [0.45, 0.55]")
	}
	if !e.MatchesWithin(0.60, 0.06) {
		t.Error("0.60 within slack-widened interval")
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Mean: 0.5, HalfWidth: 0.01, N: 42}
	if got := e.String(); got != "0.5000 ± 0.0100 (n=42)" {
		t.Errorf("String() = %q", got)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	if c.Total() != 0 || c.Freq("x") != 0 {
		t.Error("empty counter not zero")
	}
	c.Add("E10")
	c.Add("E10")
	c.Add("E11")
	if c.Total() != 3 {
		t.Errorf("Total = %d, want 3", c.Total())
	}
	if c.Count("E10") != 2 {
		t.Errorf("Count(E10) = %d, want 2", c.Count("E10"))
	}
	if got := c.Freq("E11"); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Freq(E11) = %v, want 1/3", got)
	}
	est, err := c.FreqEstimate("E10")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-2.0/3) > 1e-12 {
		t.Errorf("FreqEstimate mean = %v, want 2/3", est.Mean)
	}
	if _, err := NewCounter().FreqEstimate("none"); err != ErrNoSamples {
		t.Errorf("FreqEstimate on empty = %v, want ErrNoSamples", err)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi, err := WilsonInterval(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 0 || hi > 1 || lo >= hi {
		t.Errorf("interval [%v, %v] malformed", lo, hi)
	}
	if 0.05 < lo || 0.05 > hi {
		t.Errorf("point estimate outside interval [%v, %v]", lo, hi)
	}
	// Extreme cases stay in [0, 1] and contain the estimate.
	lo, hi, err = WilsonInterval(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi <= 0 {
		t.Errorf("zero-success interval [%v, %v]", lo, hi)
	}
	lo, hi, err = WilsonInterval(50, 50)
	if err != nil {
		t.Fatal(err)
	}
	if hi != 1 || lo >= 1 {
		t.Errorf("all-success interval [%v, %v]", lo, hi)
	}
	if _, _, err := WilsonInterval(0, 0); err != ErrNoSamples {
		t.Errorf("n=0: %v", err)
	}
	// Wilson beats Hoeffding for small p.
	_, hi, err = WilsonInterval(2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if width := hi - 0.002; width >= HoeffdingHalfWidth(1000, 0.05) {
		t.Errorf("Wilson width %v not tighter than Hoeffding %v", width, HoeffdingHalfWidth(1000, 0.05))
	}
}

func TestEstimateFromCountsMatchesMeanEstimate(t *testing.T) {
	values := []float64{0, 0, 1, 0.5}
	cases := [][]int64{
		{1, 0, 0, 0},
		{0, 0, 7, 0},
		{3, 1, 4, 1},
		{120, 7, 993, 880},
		{0, 0, 12345, 54321},
	}
	for _, counts := range cases {
		var samples []float64
		for i, c := range counts {
			for j := int64(0); j < c; j++ {
				samples = append(samples, values[i])
			}
		}
		want, err := MeanEstimate(samples)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EstimateFromCounts(values, counts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Mean != want.Mean || got.N != want.N {
			t.Fatalf("counts %v: got %+v, want %+v", counts, got, want)
		}
		// Dyadic values: the half-width agrees too, up to associativity.
		if diff := math.Abs(got.HalfWidth - want.HalfWidth); diff > 1e-12 {
			t.Fatalf("counts %v: half-width %v vs %v (diff %v)", counts, got.HalfWidth, want.HalfWidth, diff)
		}
	}
}

// TestEstimateFromCountsPropertyDyadic is the property pin behind the
// batched engine's determinism contract: for dyadic values (every value
// and every partial sum exactly representable) the count-reduced mean is
// bit-identical to MeanEstimate over the expanded sample slice in ANY
// order, the sample counts agree exactly, and the half-width agrees up
// to the documented floating-point-associativity tolerance.
func TestEstimateFromCountsPropertyDyadic(t *testing.T) {
	rng := rand.New(rand.NewSource(20150302))
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(6)
		values := make([]float64, k)
		for i := range values {
			// m / 2^e with m < 2^10, e ≤ 8: exactly representable, and sums
			// of a few hundred of them stay far below 2^53 ulps of slack.
			m := rng.Intn(1 << 10)
			e := uint(rng.Intn(9))
			values[i] = float64(m) / float64(int64(1)<<e)
		}
		counts := make([]int64, k)
		var total int64
		for i := range counts {
			counts[i] = int64(rng.Intn(60))
			total += counts[i]
		}
		if total == 0 {
			counts[rng.Intn(k)] = 1
			total = 1
		}

		samples := make([]float64, 0, total)
		for i, c := range counts {
			for j := int64(0); j < c; j++ {
				samples = append(samples, values[i])
			}
		}
		// Shuffle: the mean must not depend on sample order.
		rng.Shuffle(len(samples), func(i, j int) {
			samples[i], samples[j] = samples[j], samples[i]
		})

		want, err := MeanEstimate(samples)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EstimateFromCounts(values, counts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Mean != want.Mean {
			t.Fatalf("trial %d: mean %v != %v (values %v counts %v)",
				trial, got.Mean, want.Mean, values, counts)
		}
		if got.N != want.N || got.N != total {
			t.Fatalf("trial %d: N %d / %d, want %d", trial, got.N, want.N, total)
		}
		// Half-width: evaluated in different summation orders, so allow a
		// few ulps relative to the magnitude of the sum of squares.
		tol := 1e-12 * math.Max(1, math.Abs(want.HalfWidth))
		if diff := math.Abs(got.HalfWidth - want.HalfWidth); diff > tol {
			t.Fatalf("trial %d: half-width %v vs %v (diff %v > tol %v)",
				trial, got.HalfWidth, want.HalfWidth, diff, tol)
		}
	}
}

// TestEstimateFromCountsLargeTally pins the int64 total: a tally beyond
// MaxInt32 must survive into Estimate.N undamaged on every platform.
func TestEstimateFromCountsLargeTally(t *testing.T) {
	const big = int64(3) << 31 // 6442450944 > MaxInt32
	est, err := EstimateFromCounts([]float64{0, 1}, []int64{big, big})
	if err != nil {
		t.Fatal(err)
	}
	if est.N != 2*big {
		t.Errorf("N = %d, want %d", est.N, 2*big)
	}
	if est.Mean != 0.5 {
		t.Errorf("Mean = %v, want 0.5", est.Mean)
	}
}

func TestEstimateFromCountsErrors(t *testing.T) {
	if _, err := EstimateFromCounts([]float64{1}, []int64{0}); err != ErrNoSamples {
		t.Fatalf("zero counts: err = %v, want ErrNoSamples", err)
	}
	if _, err := EstimateFromCounts([]float64{1, 2}, []int64{1}); err == nil {
		t.Fatal("length mismatch: expected error")
	}
	if _, err := EstimateFromCounts([]float64{1}, []int64{-1}); err == nil {
		t.Fatal("negative count: expected error")
	}
}
