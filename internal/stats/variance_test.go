package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestEstimateFromCountsSingle pins the streaming form of the n = 1
// rule: a single tallied sample must report half-width +Inf (no variance
// information), matching MeanEstimate — the old code divided by n−1 = 0
// into a NaN that LeqWithin silently treated as certainty.
func TestEstimateFromCountsSingle(t *testing.T) {
	est, err := EstimateFromCounts([]float64{0, 0, 1, 0.5}, []int64{0, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean != 1 || !math.IsInf(est.HalfWidth, 1) || est.N != 1 {
		t.Errorf("single tallied sample: got %v ± %v (n=%d), want 1 ± +Inf (n=1)",
			est.Mean, est.HalfWidth, est.N)
	}
	if !est.LeqWithin(2, 0) || !est.GeqWithin(0, 0) {
		t.Error("an infinite interval must stay consistent with any bound")
	}
}

// TestCounterZeroValue: the zero Counter must be ready to use — Add
// allocates the category map lazily instead of panicking on a nil map.
func TestCounterZeroValue(t *testing.T) {
	var c Counter
	c.Add("E10")
	c.Add("E10")
	if c.Total() != 2 || c.Count("E10") != 2 {
		t.Errorf("zero-value Counter after two Adds: Total=%d Count=%d, want 2/2",
			c.Total(), c.Count("E10"))
	}
}

// TestHoeffdingHalfWidthSaturation pins the out-of-range delta rules:
// non-positive (and NaN) deltas demand certainty and saturate to +Inf
// instead of leaking NaN through ln(2/δ), delta ≥ 2 demands nothing and
// yields 0, and the meaningful range keeps the exact closed form.
func TestHoeffdingHalfWidthSaturation(t *testing.T) {
	for _, delta := range []float64{0, -1, math.Inf(-1), math.NaN()} {
		if hw := HoeffdingHalfWidth(100, delta); !math.IsInf(hw, 1) {
			t.Errorf("HoeffdingHalfWidth(100, %v) = %v, want +Inf", delta, hw)
		}
	}
	for _, delta := range []float64{2, 3, math.Inf(1)} {
		if hw := HoeffdingHalfWidth(100, delta); hw != 0 {
			t.Errorf("HoeffdingHalfWidth(100, %v) = %v, want 0", delta, hw)
		}
	}
	want := math.Sqrt(math.Log(2/0.05) / 200)
	if hw := HoeffdingHalfWidth(100, 0.05); hw != want {
		t.Errorf("in-range delta must keep the exact closed form: %v != %v", hw, want)
	}
}

// TestBernoulliEstimateClamping: out-of-range success counts saturate to
// the boundary probability instead of reporting a rate outside [0, 1].
func TestBernoulliEstimateClamping(t *testing.T) {
	est, err := BernoulliEstimate(-3, 10)
	if err != nil || est.Mean != 0 {
		t.Errorf("BernoulliEstimate(-3, 10) = %v, %v; want mean 0", est.Mean, err)
	}
	est, err = BernoulliEstimate(15, 10)
	if err != nil || est.Mean != 1 {
		t.Errorf("BernoulliEstimate(15, 10) = %v, %v; want mean 1", est.Mean, err)
	}
	if _, err := BernoulliEstimate(5, -1); err != ErrNoSamples {
		t.Errorf("BernoulliEstimate(5, -1) err = %v, want ErrNoSamples", err)
	}
}

// TestPairedEstimateSelfPaired: pairing a sample against itself gives
// exactly mean 0 with half-width 0 for n ≥ 2 — every difference is
// identically zero, so certainty is honest.
func TestPairedEstimateSelfPaired(t *testing.T) {
	a := []float64{0.3, 1, 0, 0.5, 0.5}
	est, err := PairedEstimate(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean != 0 || est.HalfWidth != 0 || est.N != int64(len(a)) {
		t.Errorf("self-paired: got %v ± %v (n=%d), want exactly 0 ± 0 (n=%d)",
			est.Mean, est.HalfWidth, est.N, len(a))
	}
}

// TestPairedEstimateDegenerate covers the package's degenerate-sample
// rules for the paired estimator.
func TestPairedEstimateDegenerate(t *testing.T) {
	if _, err := PairedEstimate(nil, nil); err != ErrNoSamples {
		t.Errorf("zero pairs: err = %v, want ErrNoSamples", err)
	}
	if _, err := PairedEstimate([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch: expected error")
	}
	est, err := PairedEstimate([]float64{1}, []float64{0.25})
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean != 0.75 || !math.IsInf(est.HalfWidth, 1) {
		t.Errorf("one pair: got %v ± %v, want 0.75 ± +Inf", est.Mean, est.HalfWidth)
	}
}

// TestPairedEstimateBeatsUnpaired: on strongly correlated samples the
// paired interval must be far narrower than the two-sample comparison —
// the whole point of common random numbers. The unpaired comparator is
// the same estimator over independently drawn samples.
func TestPairedEstimateBeatsUnpaired(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 4000
	a := make([]float64, n)
	b := make([]float64, n)
	ind := make([]float64, n)
	for i := range a {
		x := r.Float64()
		a[i] = x
		b[i] = x + 0.01*r.Float64() // near-perfectly correlated
		ind[i] = r.Float64()        // independent draw of b's marginal-ish law
	}
	paired, err := PairedEstimate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	unpaired, err := PairedEstimate(a, ind)
	if err != nil {
		t.Fatal(err)
	}
	if paired.HalfWidth*10 > unpaired.HalfWidth {
		t.Errorf("paired hw %v not ≪ unpaired hw %v", paired.HalfWidth, unpaired.HalfWidth)
	}
}

// TestPairedEstimateZWidens: a larger quantile must scale the half-width
// linearly (the union-bound budgets the sweep and search pass down).
func TestPairedEstimateZWidens(t *testing.T) {
	a := []float64{1, 0, 1, 1, 0, 1}
	b := []float64{0, 0, 1, 0, 1, 1}
	e1, err := PairedEstimateZ(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	e3, err := PairedEstimateZ(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e3.HalfWidth-3*e1.HalfWidth) > 1e-12 {
		t.Errorf("z=3 hw %v != 3 × z=1 hw %v", e3.HalfWidth, e1.HalfWidth)
	}
	if e1.Mean != e3.Mean {
		t.Errorf("quantile must not move the mean: %v vs %v", e1.Mean, e3.Mean)
	}
}

// TestStratifiedEstimateDegenerateAgreement pins the soundness anchor
// the sweep's determinism contract relies on: a single stratum with
// weight 1 must reproduce EstimateFromCounts over the same tallies bit
// for bit — mean, half-width, and sample count.
func TestStratifiedEstimateDegenerateAgreement(t *testing.T) {
	values := []float64{0, 0, 1, 0.5}
	counts := []int64{17, 3, 41, 39}
	pooled, err := EstimateFromCounts(values, counts)
	if err != nil {
		t.Fatal(err)
	}
	strat, err := StratifiedEstimate([]Stratum{{Weight: 1, Values: values, Counts: counts}})
	if err != nil {
		t.Fatal(err)
	}
	if strat.Mean != pooled.Mean || strat.HalfWidth != pooled.HalfWidth || strat.N != pooled.N {
		t.Errorf("weight-1 stratum %v ± %v (n=%d) not bit-identical to pooled %v ± %v (n=%d)",
			strat.Mean, strat.HalfWidth, strat.N, pooled.Mean, pooled.HalfWidth, pooled.N)
	}
}

// TestStratifiedEstimateErrors covers the malformed-input surface.
func TestStratifiedEstimateErrors(t *testing.T) {
	if _, err := StratifiedEstimate(nil); err != ErrNoSamples {
		t.Errorf("no strata: err = %v, want ErrNoSamples", err)
	}
	if _, err := StratifiedEstimate([]Stratum{
		{Weight: -0.5, Values: []float64{1}, Counts: []int64{2}},
	}); err == nil {
		t.Error("negative weight: expected error")
	}
	if _, err := StratifiedEstimate([]Stratum{
		{Weight: math.NaN(), Values: []float64{1}, Counts: []int64{2}},
	}); err == nil {
		t.Error("NaN weight: expected error")
	}
	if _, err := StratifiedEstimate([]Stratum{
		{Weight: 1, Values: []float64{1, 2}, Counts: []int64{1}},
	}); err == nil {
		t.Error("length mismatch: expected error")
	}
}

// TestStratifiedEstimateMissingStratum: a positive-weight stratum with
// no samples (or only one) makes the half-width +Inf — the estimate
// cannot claim the missing stratum's contribution with any confidence —
// while zero-weight strata may be empty without penalty.
func TestStratifiedEstimateMissingStratum(t *testing.T) {
	sampled := Stratum{Weight: 0.5, Values: []float64{0, 1}, Counts: []int64{10, 10}}
	est, err := StratifiedEstimate([]Stratum{sampled, {Weight: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(est.HalfWidth, 1) {
		t.Errorf("empty positive-weight stratum: hw = %v, want +Inf", est.HalfWidth)
	}
	est, err = StratifiedEstimate([]Stratum{sampled,
		{Weight: 0.5, Values: []float64{1}, Counts: []int64{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(est.HalfWidth, 1) {
		t.Errorf("single-sample stratum: hw = %v, want +Inf", est.HalfWidth)
	}
	est, err = StratifiedEstimate([]Stratum{
		{Weight: 1, Values: sampled.Values, Counts: sampled.Counts},
		{Weight: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(est.HalfWidth, 1) {
		t.Errorf("empty zero-weight stratum must not poison the interval: hw = %v", est.HalfWidth)
	}
}

// TestStratifiedEstimateProportionalWeights: with empirical proportional
// weights w_k = n_k/n the stratified mean equals the pooled mean (the
// post-stratification identity) and the interval never widens beyond
// rounding, since only between-stratum variance is removed.
func TestStratifiedEstimateProportionalWeights(t *testing.T) {
	values := []float64{0, 1}
	strata := []Stratum{
		{Values: values, Counts: []int64{40, 10}},
		{Values: values, Counts: []int64{5, 45}},
	}
	var n int64
	for _, st := range strata {
		for _, c := range st.Counts {
			n += c
		}
	}
	var pooledCounts = []int64{45, 55}
	for i := range strata {
		var nk int64
		for _, c := range strata[i].Counts {
			nk += c
		}
		strata[i].Weight = float64(nk) / float64(n)
	}
	pooled, err := EstimateFromCounts(values, pooledCounts)
	if err != nil {
		t.Fatal(err)
	}
	strat, err := StratifiedEstimate(strata)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(strat.Mean-pooled.Mean) > 1e-12 {
		t.Errorf("proportional-weight mean %v != pooled mean %v", strat.Mean, pooled.Mean)
	}
	if strat.HalfWidth > pooled.HalfWidth*1.01 {
		t.Errorf("stratified hw %v wider than pooled %v", strat.HalfWidth, pooled.HalfWidth)
	}
}
