// Package stats provides the Monte-Carlo estimation machinery used to
// measure adversarial utilities empirically.
//
// The paper's quantities — Pr[E_ij], u_A(Π, A), the utility sums of
// Definition 5 — are expectations over the coins of the protocol, the
// adversary, and the environment. We estimate them by repeated seeded
// simulation and report confidence intervals so that comparisons against
// the closed-form bounds are statistically meaningful.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoSamples is returned when an estimate is requested with zero samples.
var ErrNoSamples = errors.New("stats: no samples")

// Estimate is the result of a Monte-Carlo estimation: a sample mean with a
// two-sided confidence half-width.
type Estimate struct {
	// Mean is the sample mean.
	Mean float64
	// HalfWidth is the half-width of the confidence interval around Mean.
	HalfWidth float64
	// N is the number of samples. It is an int64 so that streaming tallies
	// reduced through EstimateFromCounts keep their exact totals even on
	// 32-bit builds, where batched counts can exceed MaxInt32.
	N int64
}

// Lo returns the lower end of the confidence interval.
func (e Estimate) Lo() float64 { return e.Mean - e.HalfWidth }

// Hi returns the upper end of the confidence interval.
func (e Estimate) Hi() float64 { return e.Mean + e.HalfWidth }

// String formats the estimate as "mean ± hw (n=N)".
func (e Estimate) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", e.Mean, e.HalfWidth, e.N)
}

// LeqWithin reports whether the estimate is consistent with mean ≤ bound,
// i.e. the lower confidence end does not exceed the bound by more than
// slack. This is the empirical analogue of the paper's ≤ up to negligible.
func (e Estimate) LeqWithin(bound, slack float64) bool {
	return e.Lo() <= bound+slack
}

// GeqWithin reports whether the estimate is consistent with mean ≥ bound.
func (e Estimate) GeqWithin(bound, slack float64) bool {
	return e.Hi() >= bound-slack
}

// MatchesWithin reports whether bound lies within the confidence interval
// widened by slack on both sides.
func (e Estimate) MatchesWithin(bound, slack float64) bool {
	return e.Lo()-slack <= bound && bound <= e.Hi()+slack
}

// MeanEstimate computes the sample mean with a normal-approximation 95%
// confidence interval (1.96 · s/√n). A single sample carries no variance
// information, so its half-width is +Inf — one run must never certify a
// bound through LeqWithin.
func MeanEstimate(samples []float64) (Estimate, error) {
	n := len(samples)
	if n == 0 {
		return Estimate{}, ErrNoSamples
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean := sum / float64(n)
	if n == 1 {
		return Estimate{Mean: mean, HalfWidth: math.Inf(1), N: 1}, nil
	}
	var ss float64
	for _, s := range samples {
		d := s - mean
		ss += d * d
	}
	variance := ss / float64(n-1)
	hw := 1.96 * math.Sqrt(variance/float64(n))
	return Estimate{Mean: mean, HalfWidth: hw, N: int64(n)}, nil
}

// EstimateFromCounts is the streaming-tally form of MeanEstimate: the
// mean and confidence half-width of a sample multiset that takes value
// values[i] with multiplicity counts[i]. Estimation loops that classify
// runs into a few categories (the fairness events E00..E11) accumulate
// plain integer counts per worker — order-independent, so per-worker
// tallies merge into one total by addition — and reduce them here,
// deterministically in index order, instead of materializing a
// per-run sample slice.
//
// When every value (and hence every partial sum of samples) is exactly
// representable — true for dyadic payoff vectors like the paper's
// (0, 0, 1, ½) — the Mean is bit-identical to MeanEstimate over the
// expanded samples in any order. The half-width is evaluated from the
// counts in index order, which can differ from a per-sample summation
// in the last few ulps (floating-point associativity).
func EstimateFromCounts(values []float64, counts []int64) (Estimate, error) {
	if len(values) != len(counts) {
		return Estimate{}, fmt.Errorf("stats: %d values for %d counts", len(values), len(counts))
	}
	var n int64
	for _, c := range counts {
		if c < 0 {
			return Estimate{}, fmt.Errorf("stats: negative count %d", c)
		}
		n += c
	}
	if n == 0 {
		return Estimate{}, ErrNoSamples
	}
	var sum float64
	for i, c := range counts {
		sum += float64(c) * values[i]
	}
	mean := sum / float64(n)
	if n == 1 {
		// One sample: no variance information, never false certainty.
		return Estimate{Mean: mean, HalfWidth: math.Inf(1), N: 1}, nil
	}
	var ss float64
	for i, c := range counts {
		d := values[i] - mean
		ss += float64(c) * (d * d)
	}
	variance := ss / float64(n-1)
	hw := 1.96 * math.Sqrt(variance/float64(n))
	return Estimate{Mean: mean, HalfWidth: hw, N: n}, nil
}

// BernoulliEstimate computes the empirical probability of successes
// successes out of n trials with a Hoeffding-style 95% confidence interval
// (half-width sqrt(ln(2/0.05) / (2n))), which is distribution-free. The
// counts are int64 so streaming tallies keep their exact totals on
// 32-bit builds; untyped int literals still work unchanged.
//
// Out-of-range counts saturate the way WilsonScore clamps its rate: a
// success count below 0 or above n yields the boundary probability (0 or
// 1) instead of a rate outside [0, 1], and n ≤ 0 is ErrNoSamples.
func BernoulliEstimate(successes, n int64) (Estimate, error) {
	if n <= 0 {
		return Estimate{}, ErrNoSamples
	}
	if successes < 0 {
		successes = 0
	}
	if successes > n {
		successes = n
	}
	p := float64(successes) / float64(n)
	hw := HoeffdingHalfWidth(n, 0.05)
	return Estimate{Mean: p, HalfWidth: hw, N: n}, nil
}

// HoeffdingHalfWidth returns the half-width t such that a mean of n
// [0,1]-bounded samples deviates from its expectation by more than t with
// probability at most delta: t = sqrt(ln(2/delta) / (2n)).
//
// Out-of-range deltas saturate like ZQuantile instead of leaking NaN
// into every downstream LeqWithin: delta ≤ 0 (or NaN) demands certainty
// and yields +Inf, delta ≥ 2 demands nothing and yields 0. Every delta
// in (0, 2) — in particular the whole meaningful (0, 1) range — keeps
// the exact closed form, bit for bit.
func HoeffdingHalfWidth(n int64, delta float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	if !(delta > 0) { // also catches NaN
		return math.Inf(1)
	}
	if delta >= 2 {
		return 0
	}
	return math.Sqrt(math.Log(2/delta) / (2 * float64(n)))
}

// SamplesFor returns the number of [0,1]-bounded samples needed for a
// Hoeffding half-width of at most eps at confidence 1-delta. The sweep
// engine (internal/sweep) uses it for adaptive sampling: per-cell run
// counts are sized to a target half-width instead of a flat count.
//
// The result saturates at MaxInt32: a tiny positive eps (or a
// vanishing delta) yields an astronomically large float count whose
// naive int conversion would overflow the platform int — the search
// engine's union-bound δ′ = δ/#checks reaches that regime at scale —
// so unrepresentable demands clamp instead of wrapping negative.
func SamplesFor(eps, delta float64) int {
	if eps <= 0 {
		return math.MaxInt32
	}
	n := math.Ceil(math.Log(2/delta) / (2 * eps * eps))
	if !(n < math.MaxInt32) { // also catches NaN from a non-positive delta
		return math.MaxInt32
	}
	if n < 1 {
		return 1
	}
	return int(n)
}

// ZQuantile returns the two-sided normal quantile z such that a
// standard normal lies in [−z, z] with probability 1 − delta:
// z = √2 · erfinv(1 − delta). It converts a union-bound per-check
// budget δ′ into the z used by WilsonScore, so elimination decisions
// made many times over a search still hold jointly with probability
// ≥ 1 − δ. Out-of-range deltas saturate: delta ≥ 1 gives 0 (no
// confidence demanded), delta ≤ 0 gives +Inf (certainty demanded).
func ZQuantile(delta float64) float64 {
	if delta >= 1 {
		return 0
	}
	if delta <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt2 * math.Erfinv(1-delta)
}

// Counter tallies categorical outcomes (e.g. the events E00..E11) and
// produces per-category frequency estimates. Tallies are int64 so a
// long-lived counter fed by many estimations never wraps on 32-bit
// builds. The zero Counter is ready to use, like the rest of the
// package: Add allocates the category map lazily.
type Counter struct {
	counts map[string]int64
	total  int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int64)}
}

// Add records one occurrence of the category.
func (c *Counter) Add(category string) {
	if c.counts == nil {
		c.counts = make(map[string]int64)
	}
	c.counts[category]++
	c.total++
}

// Total returns the number of recorded occurrences.
func (c *Counter) Total() int64 { return c.total }

// Count returns the tally for one category.
func (c *Counter) Count(category string) int64 { return c.counts[category] }

// Freq returns the empirical frequency of the category (0 if no samples).
func (c *Counter) Freq(category string) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[category]) / float64(c.total)
}

// FreqEstimate returns the frequency of the category with a Hoeffding 95%
// confidence interval.
func (c *Counter) FreqEstimate(category string) (Estimate, error) {
	return BernoulliEstimate(c.counts[category], c.total)
}

// WilsonInterval returns the Wilson score interval for successes/n at
// 95% confidence — tighter than Hoeffding for probabilities near 0 or 1.
// The Gordon–Katz experiments (E11/E12) use it to cross-check the small
// E10 and privacy-breach frequencies, and the sweep engine
// (internal/sweep) uses it to certify measured Pr[E10] against the 1/p
// ceiling.
func WilsonInterval(successes, n int64) (lo, hi float64, err error) {
	if n == 0 {
		return 0, 0, ErrNoSamples
	}
	lo, hi = WilsonScore(float64(successes)/float64(n), n, 1.96)
	return lo, hi, nil
}

// WilsonScore is the generalized Wilson interval: success rate p ∈
// [0, 1] (fractional rates are allowed — a [lo, hi]-bounded utility
// scaled to [0, 1] yields one), sample count n, and an explicit normal
// quantile z (see ZQuantile for deriving z from a union-bound budget).
// The search engine's racing eliminations run on these intervals. All
// arithmetic is in float64 — n only ever enters as float64(n), so
// counts near the int64 boundary neither overflow nor panic; they just
// produce the (correctly tiny) interval. Results are clamped to [0, 1].
func WilsonScore(p float64, n int64, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 || math.IsNaN(lo) {
		lo = 0
	}
	if hi > 1 || math.IsNaN(hi) {
		hi = 1
	}
	return lo, hi
}
