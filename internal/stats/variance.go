package stats

// This file holds the variance-reduction estimators: paired differences
// (common random numbers) and post-stratification with known stratum
// weights. Both reduce the half-width of a certified comparison without
// touching its mean's correctness — see DESIGN.md §12 for when each
// lever is sound.

import (
	"fmt"
	"math"
)

// PairedEstimate estimates E[a − b] from paired samples: a[i] and b[i]
// must come from the same coin sequence (common random numbers), so the
// per-pair differences d_i = a_i − b_i are i.i.d. and their sample
// variance — typically far below var(a) + var(b) when the pairing
// correlates the runs — drives the confidence interval. The interval is
// the 95% normal approximation, matching MeanEstimate's convention; use
// PairedEstimateZ for an explicit union-bound quantile.
//
// Degenerate cases follow the package's rules: zero pairs is
// ErrNoSamples, one pair has half-width +Inf, and a self-paired input
// (b aliasing a's values) gives exactly mean 0 with half-width 0 for
// n ≥ 2 — certainty is honest there, every difference is identically 0.
func PairedEstimate(a, b []float64) (Estimate, error) {
	return PairedEstimateZ(a, b, 1.96)
}

// PairedEstimateZ is PairedEstimate with an explicit normal quantile z
// (see ZQuantile), so sweep and search layers can widen paired deltas to
// their union-bound budgets: half-width z · s_d/√n.
func PairedEstimateZ(a, b []float64, z float64) (Estimate, error) {
	if len(a) != len(b) {
		return Estimate{}, fmt.Errorf("stats: %d paired samples against %d", len(a), len(b))
	}
	n := len(a)
	if n == 0 {
		return Estimate{}, ErrNoSamples
	}
	var sum float64
	for i := range a {
		sum += a[i] - b[i]
	}
	mean := sum / float64(n)
	if n == 1 {
		return Estimate{Mean: mean, HalfWidth: math.Inf(1), N: 1}, nil
	}
	var ss float64
	for i := range a {
		d := (a[i] - b[i]) - mean
		ss += d * d
	}
	variance := ss / float64(n-1)
	hw := z * math.Sqrt(variance/float64(n))
	return Estimate{Mean: mean, HalfWidth: hw, N: int64(n)}, nil
}

// Stratum is one post-stratification cell: the stratum's known
// probability Weight and its sampled outcomes in the count-based form of
// EstimateFromCounts (value values[i] observed counts[i] times).
type Stratum struct {
	// Weight is the stratum's known probability mass. Weights must be
	// non-negative; the caller normalizes them (they sum to 1 when the
	// strata partition the sample space).
	Weight float64
	// Values and Counts form the stratum's sample multiset.
	Values []float64
	Counts []int64
}

// StratifiedEstimate reduces per-stratum tallies to the
// post-stratification estimate with known weights: mean Σ w_k·m_k and
// 95% half-width 1.96·√(Σ w_k²·s_k²/n_k). When the stratum variable
// (e.g. the abort round) explains part of the outcome's variance, the
// within-stratum variances s_k² are smaller than the pooled variance and
// the interval shrinks — the mean stays an unbiased estimate of the same
// expectation as long as the weights are the strata's true
// probabilities.
//
// Degenerate case: a single stratum with weight 1 reproduces
// EstimateFromCounts over the same tallies bit for bit. A positive-
// weight stratum with no samples (or a single sample, which carries no
// variance information) makes the half-width +Inf: the estimate cannot
// claim the missing stratum's contribution with any confidence. Zero-
// weight strata contribute nothing and may be empty.
func StratifiedEstimate(strata []Stratum) (Estimate, error) {
	return StratifiedEstimateZ(strata, 1.96)
}

// StratifiedEstimateZ is StratifiedEstimate with an explicit normal
// quantile z (see ZQuantile).
func StratifiedEstimateZ(strata []Stratum, z float64) (Estimate, error) {
	if len(strata) == 0 {
		return Estimate{}, ErrNoSamples
	}
	var mean, varsum float64
	var n int64
	tight := true // every sampled positive-weight stratum had ≥ 2 samples
	for k, st := range strata {
		if st.Weight < 0 || math.IsNaN(st.Weight) {
			return Estimate{}, fmt.Errorf("stats: stratum %d has invalid weight %v", k, st.Weight)
		}
		m, variance, nk, err := countMoments(st.Values, st.Counts)
		if err != nil {
			return Estimate{}, fmt.Errorf("stats: stratum %d: %w", k, err)
		}
		if nk == 0 {
			if st.Weight > 0 {
				tight = false
			}
			continue
		}
		n += nk
		if st.Weight == 0 {
			continue
		}
		mean += st.Weight * m
		if nk == 1 {
			tight = false
			continue
		}
		varsum += st.Weight * st.Weight * (variance / float64(nk))
	}
	if n == 0 {
		return Estimate{}, ErrNoSamples
	}
	hw := z * math.Sqrt(varsum)
	if !tight {
		hw = math.Inf(1)
	}
	return Estimate{Mean: mean, HalfWidth: hw, N: n}, nil
}

// countMoments computes the mean and Bessel-corrected variance of a
// count-based sample multiset with exactly EstimateFromCounts'
// arithmetic (same accumulation order, same expressions), so a single
// weight-1 stratum reproduces the pooled estimator bit for bit. An
// empty multiset is not an error here — StratifiedEstimateZ treats it
// as a missing stratum.
func countMoments(values []float64, counts []int64) (mean, variance float64, n int64, err error) {
	if len(values) != len(counts) {
		return 0, 0, 0, fmt.Errorf("stats: %d values for %d counts", len(values), len(counts))
	}
	for _, c := range counts {
		if c < 0 {
			return 0, 0, 0, fmt.Errorf("stats: negative count %d", c)
		}
		n += c
	}
	if n == 0 {
		return 0, 0, 0, nil
	}
	var sum float64
	for i, c := range counts {
		sum += float64(c) * values[i]
	}
	mean = sum / float64(n)
	if n == 1 {
		return mean, 0, 1, nil
	}
	var ss float64
	for i, c := range counts {
		d := values[i] - mean
		ss += float64(c) * (d * d)
	}
	return mean, ss / float64(n-1), n, nil
}
