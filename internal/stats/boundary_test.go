package stats

import (
	"math"
	"testing"
)

// TestWilsonIntervalDegenerate pins the interval ends for the two
// degenerate arms the search engine's eliminations must survive: an arm
// with zero successes and an arm with all successes. The lower end of
// the all-success interval must stay strictly below 1 (and the upper
// end of the no-success interval strictly above 0) for every finite n —
// Wilson never certifies a probability of exactly 0 or 1 from finitely
// many samples, which is what keeps a temporarily perfect arm from
// killing a true-optimal rival on noise.
func TestWilsonIntervalDegenerate(t *testing.T) {
	for _, n := range []int64{1, 2, 7, 100, 1 << 20, 1 << 40, math.MaxInt64 / 2, math.MaxInt64} {
		lo, hi, err := WilsonInterval(0, n)
		if err != nil {
			t.Fatalf("WilsonInterval(0, %d): %v", n, err)
		}
		if lo != 0 {
			t.Errorf("WilsonInterval(0, %d): lo = %g, want 0", n, lo)
		}
		if !(hi > 0) || !(hi <= 1) {
			t.Errorf("WilsonInterval(0, %d): hi = %g, want in (0, 1]", n, hi)
		}
		lo, hi, err = WilsonInterval(n, n)
		if err != nil {
			t.Fatalf("WilsonInterval(%d, %d): %v", n, n, err)
		}
		if !(hi <= 1) || !(hi >= lo) || !(lo >= 0) {
			t.Errorf("WilsonInterval(%d, %d) = [%g, %g], want an ordered sub-[0,1] interval", n, n, lo, hi)
		}
		// Wilson never certifies exactly 1 from finitely many samples —
		// until n is so large that the true lower end rounds to 1 in
		// float64 (≈ z²/2n below one ulp). Assert strictness in the whole
		// regime where it is representable.
		if n <= 1<<40 && !(lo < 1) {
			t.Errorf("WilsonInterval(%d, %d): lo = %g, want strictly below 1", n, n, lo)
		}
	}
}

// TestWilsonScoreProperties is the property sweep over n up to the
// int64 boundary: intervals are always within [0, 1], ordered, contain
// the point estimate, shrink with n, and widen with z. No count here
// can overflow — WilsonScore works in float64 throughout.
func TestWilsonScoreProperties(t *testing.T) {
	ns := []int64{1, 3, 10, 1000, 1 << 31, 1 << 62, math.MaxInt64 - 1, math.MaxInt64}
	ps := []float64{0, 0.001, 0.25, 0.5, 0.75, 0.999, 1}
	zs := []float64{0.5, 1.96, 3.3, 5}
	for _, n := range ns {
		for _, p := range ps {
			prevHalf := math.Inf(1)
			for _, z := range zs {
				lo, hi := WilsonScore(p, n, z)
				if math.IsNaN(lo) || math.IsNaN(hi) {
					t.Fatalf("WilsonScore(%g, %d, %g) = NaN interval", p, n, z)
				}
				if lo < 0 || hi > 1 || lo > hi {
					t.Fatalf("WilsonScore(%g, %d, %g) = [%g, %g], not an ordered [0,1] interval", p, n, z, lo, hi)
				}
				if p < lo-1e-12 || p > hi+1e-12 {
					t.Errorf("WilsonScore(%g, %d, %g) = [%g, %g] excludes the point estimate", p, n, z, lo, hi)
				}
				_ = prevHalf
			}
			// Monotone in z at fixed (p, n): a stricter confidence demand
			// can only widen the interval.
			lo1, hi1 := WilsonScore(p, n, 1.0)
			lo2, hi2 := WilsonScore(p, n, 4.0)
			if hi2-lo2 < hi1-lo1-1e-12 {
				t.Errorf("WilsonScore(%g, %d): z=4 interval narrower than z=1", p, n)
			}
		}
	}
	// Monotone in n at fixed (p, z): more samples never widen.
	for _, p := range ps {
		prev := math.Inf(1)
		for _, n := range ns {
			lo, hi := WilsonScore(p, n, 1.96)
			if hi-lo > prev+1e-12 {
				t.Errorf("WilsonScore(%g, %d, 1.96): interval widened with more samples", p, n)
			}
			prev = hi - lo
		}
	}
	// Degenerate z values saturate instead of corrupting the interval.
	if lo, hi := WilsonScore(0.5, 100, math.Inf(1)); lo != 0 || hi != 1 {
		t.Errorf("WilsonScore(0.5, 100, +Inf) = [%g, %g], want [0, 1]", lo, hi)
	}
	if lo, hi := WilsonScore(0.5, 0, 1.96); lo != 0 || hi != 1 {
		t.Errorf("WilsonScore with n=0 = [%g, %g], want the vacuous [0, 1]", lo, hi)
	}
}

// TestWilsonScoreMatchesWilsonInterval pins the refactor: the legacy
// 95% WilsonInterval must be bit-identical to WilsonScore at z = 1.96
// (the sweep's certified gk records depend on these exact bits).
func TestWilsonScoreMatchesWilsonInterval(t *testing.T) {
	for _, n := range []int64{1, 10, 500, 20000, 1 << 40} {
		for _, s := range []int64{0, 1, n / 3, n / 2, n - 1, n} {
			if s < 0 {
				continue
			}
			lo1, hi1, err := WilsonInterval(s, n)
			if err != nil {
				t.Fatal(err)
			}
			lo2, hi2 := WilsonScore(float64(s)/float64(n), n, 1.96)
			if lo1 != lo2 || hi1 != hi2 {
				t.Errorf("WilsonInterval(%d, %d) = [%g, %g] but WilsonScore = [%g, %g]",
					s, n, lo1, hi1, lo2, hi2)
			}
		}
	}
}

// TestSamplesForSaturates pins the overflow fix: demands beyond int32
// clamp to MaxInt32 instead of converting an over-range float to int
// (which wraps platform-dependently), and valid demands stay exact.
func TestSamplesForSaturates(t *testing.T) {
	cases := []struct {
		eps, delta float64
		want       int
	}{
		{0, 0.05, math.MaxInt32},
		{-1, 0.05, math.MaxInt32},
		{1e-9, 0.05, math.MaxInt32}, // ~1.8e18 demanded: clamp
		{1e-300, 0.05, math.MaxInt32},
		{0.05, 0, math.MaxInt32},    // delta=0: infinite demand, clamp
		{0.05, -0.5, math.MaxInt32}, // NaN from log of negative: clamp
		{1, 0.05, 2},                // ceil(ln(40)/2) = 2
		{10, 0.5, 1},                // demand below one sample floors at 1
	}
	for _, c := range cases {
		if got := SamplesFor(c.eps, c.delta); got != c.want {
			t.Errorf("SamplesFor(%g, %g) = %d, want %d", c.eps, c.delta, got, c.want)
		}
	}
	// Exactness in the normal regime, against the closed form.
	got := SamplesFor(0.05, 0.01)
	want := int(math.Ceil(math.Log(2/0.01) / (2 * 0.05 * 0.05)))
	if got != want {
		t.Errorf("SamplesFor(0.05, 0.01) = %d, want %d", got, want)
	}
	if got := SamplesFor(1e-5, 1e-3); got <= 0 {
		t.Errorf("SamplesFor(1e-5, 1e-3) = %d, must be positive (overflow guard)", got)
	}
}

// TestZQuantile pins the union-bound z conversion: the classic 95%
// two-sided z, monotonicity in delta, and the saturating ends.
func TestZQuantile(t *testing.T) {
	if z := ZQuantile(0.05); math.Abs(z-1.959964) > 1e-5 {
		t.Errorf("ZQuantile(0.05) = %g, want ≈1.95996", z)
	}
	if z := ZQuantile(0.01); math.Abs(z-2.575829) > 1e-5 {
		t.Errorf("ZQuantile(0.01) = %g, want ≈2.57583", z)
	}
	prev := math.Inf(1)
	for _, d := range []float64{1e-12, 1e-6, 0.001, 0.05, 0.5, 0.99} {
		z := ZQuantile(d)
		if z >= prev {
			t.Errorf("ZQuantile(%g) = %g, not decreasing (prev %g)", d, z, prev)
		}
		prev = z
	}
	if z := ZQuantile(1); z != 0 {
		t.Errorf("ZQuantile(1) = %g, want 0", z)
	}
	if z := ZQuantile(0); !math.IsInf(z, 1) {
		t.Errorf("ZQuantile(0) = %g, want +Inf", z)
	}
	if z := ZQuantile(-0.1); !math.IsInf(z, 1) {
		t.Errorf("ZQuantile(-0.1) = %g, want +Inf", z)
	}
}
