// Package rpdgame implements the attack game of the Rational Protocol
// Design framework [GKMTZ13] that the paper's definitions instantiate:
// a two-party sequential zero-sum game with perfect information between a
// protocol designer D (who moves first, publishing Π) and an attacker A
// (who observes Π and picks the utility-maximizing strategy).
//
// The paper's footnote 1 observes that its optimally fair protocols
// "imply an equilibrium in the attack meta-game": with the attacker
// best-responding, the designer's minimax choice is an optimally fair
// protocol, and the game value is the paper's optimal utility. This
// package provides the game-theoretic machinery to verify that claim
// numerically (experiment E14): pure-strategy backward induction for the
// sequential game, plus fictitious play for the simultaneous-move
// variant's mixed equilibria.
package rpdgame

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a zero-sum game in attacker-payoff form: Payoff[i][j] is the
// attacker's utility when the designer plays row i (a protocol) and the
// attacker plays column j (a strategy). The designer's payoff is the
// negation (the game is zero-sum by definition in RPD).
type Matrix struct {
	// RowNames label the designer's choices (protocols).
	RowNames []string
	// ColNames label the attacker's strategies.
	ColNames []string
	// Payoff is the attacker-utility matrix, len(RowNames) ×
	// len(ColNames).
	Payoff [][]float64
}

// Errors returned by the solvers.
var (
	ErrEmpty  = errors.New("rpdgame: empty game")
	ErrRagged = errors.New("rpdgame: ragged payoff matrix")
)

// Validate checks the matrix shape.
func (m Matrix) Validate() error {
	if len(m.Payoff) == 0 || len(m.ColNames) == 0 {
		return ErrEmpty
	}
	if len(m.Payoff) != len(m.RowNames) {
		return fmt.Errorf("%w: %d rows, %d row names", ErrRagged, len(m.Payoff), len(m.RowNames))
	}
	for i, row := range m.Payoff {
		if len(row) != len(m.ColNames) {
			return fmt.Errorf("%w: row %d has %d entries, want %d", ErrRagged, i, len(row), len(m.ColNames))
		}
	}
	return nil
}

// BestResponse returns the attacker's utility-maximizing column against
// row i, with its value.
func (m Matrix) BestResponse(row int) (col int, value float64) {
	value = math.Inf(-1)
	for j, u := range m.Payoff[row] {
		if u > value {
			col, value = j, u
		}
	}
	return col, value
}

// Solution is the backward-induction outcome of the sequential game.
type Solution struct {
	// Row is the designer's minimax protocol choice.
	Row int
	// Col is the attacker's best response to it.
	Col int
	// Value is the game value (the attacker's equilibrium utility — the
	// paper's "optimal fairness" level).
	Value float64
}

// SolveSequential performs backward induction: for each protocol the
// attacker best-responds; the designer picks the protocol minimizing the
// attacker's best-response utility. With perfect information and the
// designer moving first, pure strategies are optimal.
func (m Matrix) SolveSequential() (Solution, error) {
	if err := m.Validate(); err != nil {
		return Solution{}, err
	}
	best := Solution{Row: -1, Value: math.Inf(1)}
	for i := range m.Payoff {
		j, v := m.BestResponse(i)
		if v < best.Value {
			best = Solution{Row: i, Col: j, Value: v}
		}
	}
	return best, nil
}

// MixedSolution is an approximate equilibrium of the simultaneous-move
// variant.
type MixedSolution struct {
	// RowStrategy and ColStrategy are the empirical mixed strategies.
	RowStrategy, ColStrategy []float64
	// Value is the approximate game value (attacker utility).
	Value float64
	// Iterations is the fictitious-play round count.
	Iterations int
}

// FictitiousPlay approximates the mixed minimax equilibrium of the
// simultaneous zero-sum game by Brown–Robinson fictitious play: both
// players repeatedly best-respond to the opponent's empirical mixture.
// For zero-sum games the empirical mixtures converge to the equilibrium;
// the returned value lies within O(1/√iters) of the true game value.
func (m Matrix) FictitiousPlay(iters int) (MixedSolution, error) {
	if err := m.Validate(); err != nil {
		return MixedSolution{}, err
	}
	if iters < 1 {
		return MixedSolution{}, errors.New("rpdgame: need at least one iteration")
	}
	rows, cols := len(m.RowNames), len(m.ColNames)
	rowCounts := make([]float64, rows)
	colCounts := make([]float64, cols)
	// Cumulative payoffs: attacker's for each column, designer's
	// (negated attacker) for each row.
	colScore := make([]float64, cols) // attacker cumulative utility per column
	rowScore := make([]float64, rows) // attacker cumulative utility per row (designer minimizes)

	row, col := 0, 0
	for it := 0; it < iters; it++ {
		rowCounts[row]++
		colCounts[col]++
		for j := 0; j < cols; j++ {
			colScore[j] += m.Payoff[row][j]
		}
		for i := 0; i < rows; i++ {
			rowScore[i] += m.Payoff[i][col]
		}
		// Attacker best-responds to the designer's empirical mixture.
		col = argmax(colScore)
		// Designer best-responds (minimizes attacker utility).
		row = argmin(rowScore)
	}
	total := float64(iters)
	rs := make([]float64, rows)
	cs := make([]float64, cols)
	for i := range rs {
		rs[i] = rowCounts[i] / total
	}
	for j := range cs {
		cs[j] = colCounts[j] / total
	}
	return MixedSolution{
		RowStrategy: rs,
		ColStrategy: cs,
		Value:       guaranteeOf(m.Payoff, rs),
		Iterations:  iters,
	}, nil
}

// guaranteeOf is the designer-side security value of a mixed protocol
// choice: the attacker's best response to the mixture. (The bilinear
// product of both empirical mixtures lags below the game value because
// the attacker's mixture still contains its early exploratory moves.)
func guaranteeOf(payoff [][]float64, rs []float64) float64 {
	best := math.Inf(-1)
	for j := range payoff[0] {
		var v float64
		for i, row := range payoff {
			v += rs[i] * row[j]
		}
		if v > best {
			best = v
		}
	}
	return best
}

func argmax(vs []float64) int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range vs {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

func argmin(vs []float64) int {
	best, bestV := 0, math.Inf(1)
	for i, v := range vs {
		if v < bestV {
			best, bestV = i, v
		}
	}
	return best
}
