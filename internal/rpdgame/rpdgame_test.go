package rpdgame

import (
	"errors"
	"math"
	"testing"
)

func fairnessToyGame() Matrix {
	// Attacker utilities from the paper's running examples (γ = (0,0,1,½)):
	// rows: Π1, Π2, fixed-order 2SFE, ΠOpt-2SFE;
	// cols: lock-abort-p1, lock-abort-p2, passive.
	return Matrix{
		RowNames: []string{"Pi1", "Pi2", "fixed2", "opt2SFE"},
		ColNames: []string{"lock-p1", "lock-p2", "passive"},
		Payoff: [][]float64{
			{0.50, 1.00, 0},
			{0.75, 0.75, 0},
			{0.50, 1.00, 0},
			{0.75, 0.75, 0},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := fairnessToyGame().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Matrix{}).Validate(); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: %v", err)
	}
	bad := fairnessToyGame()
	bad.Payoff[1] = bad.Payoff[1][:1]
	if err := bad.Validate(); !errors.Is(err, ErrRagged) {
		t.Errorf("ragged: %v", err)
	}
	missing := fairnessToyGame()
	missing.RowNames = missing.RowNames[:2]
	if err := missing.Validate(); !errors.Is(err, ErrRagged) {
		t.Errorf("row-name mismatch: %v", err)
	}
}

func TestBestResponse(t *testing.T) {
	g := fairnessToyGame()
	col, v := g.BestResponse(0)
	if col != 1 || v != 1.0 {
		t.Errorf("best response to Π1 = (%d, %v), want (1, 1.0)", col, v)
	}
	col, v = g.BestResponse(1)
	if v != 0.75 {
		t.Errorf("best response to Π2 value %v, want 0.75", v)
	}
	_ = col
}

func TestSolveSequentialPicksOptimalProtocol(t *testing.T) {
	g := fairnessToyGame()
	sol, err := g.SolveSequential()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 0.75 {
		t.Errorf("game value = %v, want 0.75 (the paper's optimum)", sol.Value)
	}
	name := g.RowNames[sol.Row]
	if name != "Pi2" && name != "opt2SFE" {
		t.Errorf("designer picked %s, want an optimally fair protocol", name)
	}
}

func TestSolveSequentialErrors(t *testing.T) {
	if _, err := (Matrix{}).SolveSequential(); err == nil {
		t.Error("empty game solved")
	}
}

func TestFictitiousPlayMatchingPennies(t *testing.T) {
	// Classic: value 0, both mix 50/50.
	g := Matrix{
		RowNames: []string{"H", "T"},
		ColNames: []string{"h", "t"},
		Payoff:   [][]float64{{1, -1}, {-1, 1}},
	}
	sol, err := g.FictitiousPlay(20000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Value) > 0.02 {
		t.Errorf("value = %v, want ≈ 0", sol.Value)
	}
	for i, p := range sol.RowStrategy {
		if math.Abs(p-0.5) > 0.05 {
			t.Errorf("row %d prob %v, want ≈ 0.5", i, p)
		}
	}
}

func TestFictitiousPlaySaddlePoint(t *testing.T) {
	// A game with a pure saddle point: value 2 at (row 1, col 0).
	g := Matrix{
		RowNames: []string{"r0", "r1"},
		ColNames: []string{"c0", "c1"},
		Payoff:   [][]float64{{3, 5}, {2, 1}},
	}
	sol, err := g.FictitiousPlay(5000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Value-2) > 0.05 {
		t.Errorf("value = %v, want ≈ 2", sol.Value)
	}
	if sol.RowStrategy[1] < 0.95 {
		t.Errorf("designer should settle on r1, got %v", sol.RowStrategy)
	}
}

func TestFictitiousPlayAgreesWithSequentialOnToyGame(t *testing.T) {
	g := fairnessToyGame()
	seq, err := g.SolveSequential()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := g.FictitiousPlay(20000)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-sum with designer-favourable rows available: the simultaneous
	// value cannot exceed the sequential one and here they coincide.
	if math.Abs(fp.Value-seq.Value) > 0.03 {
		t.Errorf("fp value %v vs sequential %v", fp.Value, seq.Value)
	}
}

func TestFictitiousPlayErrors(t *testing.T) {
	if _, err := (Matrix{}).FictitiousPlay(10); err == nil {
		t.Error("empty game")
	}
	if _, err := fairnessToyGame().FictitiousPlay(0); err == nil {
		t.Error("zero iterations")
	}
}
