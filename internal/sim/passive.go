package sim

// Passive is the no-corruption adversary: the baseline strategy under
// which every protocol must deliver correct outputs to everyone. The
// classifier maps its runs to the event E01 (the paper: "this event also
// accounts for cases where the adversary does not corrupt any party").
type Passive struct{}

var (
	_ Adversary       = Passive{}
	_ AdversaryCloner = Passive{}
)

// CloneAdversary implements AdversaryCloner; Passive is stateless, so the
// value itself is a valid clone.
func (p Passive) CloneAdversary() Adversary { return p }

// Reset implements Adversary.
func (Passive) Reset(*AdvContext) {}

// InitialCorruptions implements Adversary: corrupts nobody.
func (Passive) InitialCorruptions() []PartyID { return nil }

// SubstituteInput implements Adversary: keeps the original input.
func (Passive) SubstituteInput(_ PartyID, orig Value) Value { return orig }

// ObserveSetup implements Adversary: never aborts.
func (Passive) ObserveSetup(map[PartyID]Value) bool { return false }

// CorruptBefore implements Adversary: never corrupts.
func (Passive) CorruptBefore(int) []PartyID { return nil }

// OnCorrupt implements Adversary.
func (Passive) OnCorrupt(PartyID, Party, Value) {}

// Act implements Adversary: sends nothing.
func (Passive) Act(int, map[PartyID][]Message, []Message) []Message { return nil }

// Learned implements Adversary: learns nothing.
func (Passive) Learned() (Value, bool) { return nil, false }
