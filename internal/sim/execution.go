package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/rng"
)

// PartyBackend runs the protocol machines for an Execution. The engine
// owns the model (corruptions, rushing, routing, the trace); the backend
// owns the machines. The in-memory backend calls Party methods directly;
// the TCP transport's backend forwards frames to remote party processes.
type PartyBackend interface {
	// StartParty builds/initializes party id with its effective input,
	// private setup output, the setup-abort flag, and the party's RNG
	// seed (drawn from the execution's master seed, so every backend
	// reproduces the same machine randomness).
	StartParty(id PartyID, input Value, setupOut Value, setupAborted bool, seed int64) error
	// PartyRound advances party id one round on its inbox and returns
	// its outgoing messages.
	PartyRound(id PartyID, round int, inbox []Message) ([]Message, error)
	// PartyOutput returns party id's final output.
	PartyOutput(id PartyID) (OutputRecord, error)
	// Machine returns party id's live machine for adversarial handover,
	// or nil when machines are not host-local. A backend returning nil
	// supports only honest executions: the engine refuses to corrupt a
	// party it cannot hand over.
	Machine(id PartyID) Party
	// AuditInfo returns party id's AuditInfo when the machine exposes
	// one (see AuditedParty); ok=false otherwise.
	AuditInfo(id PartyID) (Value, bool)
}

// localBackend is the in-memory backend: machines live in-process and
// are stepped by direct method calls. Party RNGs are retained and
// reseeded across runs (machines draw all randomness at construction,
// so a previous run's machine never touches a reseeded stream). A
// backend built by a PlanRunner additionally draws the party streams
// through slab sources (see internal/rng.SlabSource) and reuses machine
// objects of protocols implementing ReusableParty.
type localBackend struct {
	proto    Protocol
	machines []Party
	rngs     []*rand.Rand
	// sources, when non-nil, are the slab sources behind rngs, one per
	// party; the plan runner tunes their pre-drawn prefixes per run.
	sources []*rng.SlabSource
}

func newLocalBackend(proto Protocol) *localBackend {
	n := proto.NumParties()
	return &localBackend{proto: proto, machines: make([]Party, n), rngs: make([]*rand.Rand, n)}
}

// newSlabBackend is newLocalBackend with every party RNG drawing through
// a slab source, for plan-driven executions.
func newSlabBackend(proto Protocol) *localBackend {
	b := newLocalBackend(proto)
	b.sources = make([]*rng.SlabSource, len(b.rngs))
	for i := range b.sources {
		b.sources[i] = rng.NewSlabSource()
	}
	return b
}

func (b *localBackend) StartParty(id PartyID, input Value, setupOut Value, setupAborted bool, seed int64) error {
	r := b.rngs[id-1]
	if r == nil {
		if b.sources != nil {
			r = rand.New(b.sources[id-1])
			r.Seed(seed)
		} else {
			r = rng.New(seed)
		}
		b.rngs[id-1] = r
	} else {
		r.Seed(seed)
	}
	if prev := b.machines[id-1]; prev != nil {
		if ru, ok := prev.(ReusableParty); ok && ru.Reinit(id, input, setupOut, setupAborted, r) {
			return nil
		}
	}
	m, err := b.proto.NewParty(id, input, setupOut, setupAborted, r)
	if err != nil {
		return err
	}
	b.machines[id-1] = m
	return nil
}

func (b *localBackend) PartyRound(id PartyID, round int, inbox []Message) ([]Message, error) {
	return b.machines[id-1].Round(round, inbox)
}

func (b *localBackend) PartyOutput(id PartyID) (OutputRecord, error) {
	v, ok := b.machines[id-1].Output()
	return OutputRecord{Value: v, OK: ok}, nil
}

func (b *localBackend) Machine(id PartyID) Party { return b.machines[id-1] }

func (b *localBackend) AuditInfo(id PartyID) (Value, bool) {
	if ap, ok := b.machines[id-1].(AuditedParty); ok {
		return ap.AuditInfo(), true
	}
	return nil, false
}

// Execution phase-ordering errors.
var (
	// ErrPhase reports a phase method called out of order.
	ErrPhase = errors.New("sim: execution phase out of order")
	// ErrRemoteCorruption reports an adversarial corruption against a
	// backend that cannot hand over machines (e.g. the TCP transport,
	// whose machines live in remote party processes).
	ErrRemoteCorruption = errors.New("sim: corruption requires an in-memory backend")
)

// execState tracks the phase an Execution is in.
type execState int

const (
	execCreated execState = iota
	execRounds
	execDone
)

// Execution is one protocol run decomposed into individually callable
// phases:
//
//	e, _ := NewExecution(proto, inputs, adv, seed, observers...)
//	e.SetupPhase()                  // corruption, substitution, hybrid setup
//	for r := 1; r <= e.TotalRounds(); r++ {
//	    e.Step(r)                   // one synchronous message round
//	}
//	tr, _ := e.Finalize()           // outputs, audits, verified verdicts
//
// Run wraps the four phases back into the classic single call and
// produces a trace identical to the pre-stepper engine's. The phases
// exist so that callers can hold the execution open between rounds: the
// TCP transport drives one wire round per Step, round-level attack
// strategies can be scheduled between Steps, and Observers stream every
// engine event as it happens instead of reading a post-hoc trace.
//
// Every per-run allocation (trace maps, inbox lanes, RNG streams, the
// adversary context, scratch buffers) lives on the Execution and is
// reinitialized in place by reset, so an Arena can replay millions of
// runs on one Execution without reallocating; a one-shot Execution pays
// each allocation exactly once, as before.
type Execution struct {
	proto   Protocol
	adv     Adversary
	backend PartyBackend
	obs     []Observer
	// streams, when non-nil, routes the master/protocol/adversary RNG
	// streams through slab sources instead of fully seeded ones; the
	// plan runner sets the per-stream pre-draw sizes before each run.
	// The emitted streams are bit-identical either way.
	streams *execStreams
	// setupFn replaces proto.Setup when the protocol implements
	// ScratchSetupProtocol (one scratch evaluator per Execution).
	setupFn func(inputs []Value, rng *rand.Rand) ([]Value, error)

	n          int
	inputs     []Value // environment-chosen inputs
	effective  []Value // after adversarial substitution
	setupOuts  []Value
	partySeeds []int64
	master     *rand.Rand
	protoRNG   *rand.Rand
	advRNG     *rand.Rand
	trace      *Trace

	inboxes     [][]Message
	totalRounds int
	state       execState
	nextRound   int

	// Reusable per-run state. traceStore backs trace; the buffers below
	// are truncated/cleared by reset, never freed, so their capacity
	// survives across arena runs.
	traceStore     Trace
	advCtx         AdvContext
	spare          [][]Message // next-round lanes, swapped with inboxes
	honestOut      []Message
	rushed         []Message
	corruptScratch []PartyID
	corruptSetup   map[PartyID]Value
	corruptInboxes map[PartyID][]Message
	effectiveBuf   []Value
	setupDefaults  []Value
	finalDefaults  []Value
	ctxInputs      []Value
}

// newExecutionShell builds an Execution skeleton bound to a protocol and
// backend but no run; reset readies it for one.
func newExecutionShell(proto Protocol, backend PartyBackend) *Execution {
	if backend == nil {
		backend = newLocalBackend(proto)
	}
	e := &Execution{
		proto:       proto,
		backend:     backend,
		n:           proto.NumParties(),
		totalRounds: proto.NumRounds() + 1, // +1 finalize call
	}
	if sp, ok := proto.(ScratchSetupProtocol); ok {
		e.setupFn = sp.NewSetupScratch()
	}
	return e
}

// reset (re)initializes the execution for one run, reusing every buffer,
// map, and RNG stream the previous run left behind. The master-stream
// draw order is the engine's determinism contract — protocol stream,
// adversary stream, then one seed per party — and matches the classic
// Run exactly, so a reused execution reproduces a fresh one bit for bit.
func (e *Execution) reset(inputs []Value, adv Adversary, seed int64, obs []Observer) error {
	if len(inputs) != e.n {
		return fmt.Errorf("%w: got %d, want %d", ErrInputCount, len(inputs), e.n)
	}
	e.adv = adv
	e.obs = obs
	if e.master == nil {
		if st := e.streams; st != nil {
			// The master stream draws exactly 2+n values per run (the
			// protocol seed, the adversary seed, then one per party), so
			// its slab want is fixed once.
			st.master.SetWant(e.n + 2)
			e.master = rand.New(st.master)
			e.master.Seed(seed)
			e.protoRNG = rand.New(st.proto)
			e.protoRNG.Seed(e.master.Int63())
			e.advRNG = rand.New(st.adv)
			e.advRNG.Seed(e.master.Int63())
		} else {
			e.master = rng.New(seed)
			e.protoRNG = rng.New(e.master.Int63())
			e.advRNG = rng.New(e.master.Int63())
		}
		e.partySeeds = make([]int64, e.n)
	} else {
		e.master.Seed(seed)
		e.protoRNG.Seed(e.master.Int63())
		e.advRNG.Seed(e.master.Int63())
	}
	for i := range e.partySeeds {
		e.partySeeds[i] = e.master.Int63()
	}

	e.inputs = append(e.inputs[:0], inputs...)
	e.effective = nil
	e.setupOuts = nil
	e.state = execCreated
	e.nextRound = 0
	if e.inboxes == nil {
		e.inboxes = make([][]Message, e.n)
		e.spare = make([][]Message, e.n)
	} else {
		for i := range e.inboxes {
			e.inboxes[i] = e.inboxes[i][:0]
			e.spare[i] = e.spare[i][:0]
		}
	}

	tr := &e.traceStore
	e.trace = tr
	tr.ProtocolName = e.proto.Name()
	tr.Inputs = append(tr.Inputs[:0], inputs...)
	tr.EffectiveInputs = nil
	tr.ExpectedOutput = nil
	tr.DefaultedOutput = nil
	tr.HybridOutput = nil
	tr.SetupAudit = nil
	tr.Audit = nil
	if tr.HonestAudits == nil {
		tr.HonestAudits = make(map[PartyID]Value)
	} else {
		clear(tr.HonestAudits)
	}
	tr.SetupAborted = false
	if tr.Corrupted == nil {
		tr.Corrupted = make(map[PartyID]bool)
	} else {
		clear(tr.Corrupted)
	}
	if tr.HonestOutputs == nil {
		tr.HonestOutputs = make(map[PartyID]OutputRecord)
	} else {
		clear(tr.HonestOutputs)
	}
	tr.FailStops = nil
	tr.AdvLearned = false
	tr.AdvValue = nil
	tr.PrivacyBreach = false
	tr.BreachedParty = 0
	tr.RoundsRun = 0

	e.ctxInputs = append(e.ctxInputs[:0], inputs...)
	e.advCtx = AdvContext{
		Protocol:   e.proto,
		Inputs:     e.ctxInputs,
		TrueOutput: e.proto.Func(inputs),
		RNG:        e.advRNG,
	}
	adv.Reset(&e.advCtx)
	return nil
}

// NewExecution prepares an in-memory execution: it seeds the engine's
// RNG streams (in the same master order as the classic Run) and resets
// the adversary. No protocol code runs until SetupPhase.
func NewExecution(proto Protocol, inputs []Value, adv Adversary, seed int64, obs ...Observer) (*Execution, error) {
	return NewExecutionWithBackend(proto, inputs, adv, seed, nil, obs...)
}

// NewExecutionWithBackend is NewExecution with the party machines run by
// an explicit backend; backend == nil selects the in-memory backend.
func NewExecutionWithBackend(proto Protocol, inputs []Value, adv Adversary, seed int64,
	backend PartyBackend, obs ...Observer) (*Execution, error) {
	e := newExecutionShell(proto, backend)
	if err := e.reset(inputs, adv, seed, obs); err != nil {
		return nil, err
	}
	return e, nil
}

// TotalRounds returns the number of Step calls an execution takes: the
// protocol's message rounds plus the finalize round.
func (e *Execution) TotalRounds() int { return e.totalRounds }

// FailStop converts party id into a fail-stop abort: from the next Step
// on, the party's machine is no longer driven, no messages are routed to
// it, and Finalize collects no output from it — exactly the silence an
// abort adversary produces after corrupting the party and stopping, so
// surviving honest parties default the crashed party's input and the
// fairness classifier prices the run like an adversarial abort (see
// Trace.FailStops and core.Classify).
//
// round is the wire round the failure was detected in (0 = setup phase).
// FailStop may be called between SetupPhase and Finalize — typically by
// a transport host that lost a peer irrecoverably — and is idempotent
// per party. Observers implementing FailStopObserver receive the event.
func (e *Execution) FailStop(id PartyID, round int, cause string) error {
	if e.state != execRounds {
		return fmt.Errorf("%w: FailStop(%d) in state %d", ErrPhase, id, e.state)
	}
	if id < 1 || PartyID(e.n) < id {
		return fmt.Errorf("%w: %d", ErrBadParty, id)
	}
	tr := e.trace
	if tr.FailStops == nil {
		tr.FailStops = make(map[PartyID]FailStopInfo)
	}
	if _, dup := tr.FailStops[id]; dup {
		return nil
	}
	tr.FailStops[id] = FailStopInfo{Round: round, Cause: cause}
	for _, o := range e.obs {
		if f, ok := o.(FailStopObserver); ok {
			f.PartyFailStopped(round, id, cause)
		}
	}
	return nil
}

// corruptedSorted returns the currently corrupted set in ascending id
// order, for deterministic iteration (and a deterministic event stream).
// The returned slice is scratch, valid until the next call.
func (e *Execution) corruptedSorted() []PartyID {
	ids := e.corruptScratch[:0]
	for id := range e.trace.Corrupted {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	e.corruptScratch = ids
	return ids
}

// handover gives the adversary a newly corrupted party's machine. It
// fails when the backend cannot produce machines (remote executions are
// honest-only).
func (e *Execution) handover(id PartyID) error {
	m := e.backend.Machine(id)
	if m == nil {
		if _, isLocal := e.backend.(*localBackend); !isLocal {
			return fmt.Errorf("%w: party %d", ErrRemoteCorruption, id)
		}
	}
	e.adv.OnCorrupt(id, m, e.setupOutOf(id))
	return nil
}

func (e *Execution) setupOutOf(id PartyID) Value {
	if e.setupOuts == nil {
		return nil
	}
	return e.setupOuts[id-1]
}

// SetupPhase runs the pre-round phases: static corruption, adversarial
// input substitution, the hybrid setup (with the adversary's abort
// decision), and party-machine construction.
func (e *Execution) SetupPhase() error {
	if e.state != execCreated {
		return fmt.Errorf("%w: SetupPhase called twice", ErrPhase)
	}
	tr, n := e.trace, e.n
	for _, o := range e.obs {
		o.RunStarted(e.proto, tr.Inputs)
	}

	// Static corruptions and input substitution.
	for _, id := range e.adv.InitialCorruptions() {
		if id < 1 || PartyID(n) < id {
			return fmt.Errorf("%w: %d", ErrBadParty, id)
		}
		tr.Corrupted[id] = true
	}
	for _, o := range e.obs {
		for _, id := range e.corruptedSorted() {
			o.PartyCorrupted(0, id)
		}
	}
	effective := append(e.effectiveBuf[:0], e.inputs...)
	e.effectiveBuf = effective
	for _, id := range e.corruptedSorted() {
		effective[id-1] = e.adv.SubstituteInput(id, e.inputs[id-1])
		for _, o := range e.obs {
			o.InputSubstituted(id, e.inputs[id-1], effective[id-1])
		}
	}
	tr.EffectiveInputs = effective
	e.effective = effective

	// Hybrid setup.
	setup := e.proto.Setup
	if e.setupFn != nil {
		setup = e.setupFn
	}
	setupOuts, err := setup(effective, e.protoRNG)
	if err != nil {
		return fmt.Errorf("sim: setup: %w", err)
	}
	if setupOuts != nil && len(setupOuts) != n && len(setupOuts) != n+1 {
		return fmt.Errorf("sim: setup returned %d outputs for %d parties", len(setupOuts), n)
	}
	if len(setupOuts) == n+1 {
		tr.SetupAudit = setupOuts[n]
		setupOuts = setupOuts[:n]
	}
	e.setupOuts = setupOuts
	if e.corruptSetup == nil {
		e.corruptSetup = make(map[PartyID]Value)
	} else {
		clear(e.corruptSetup)
	}
	for id := range tr.Corrupted {
		e.corruptSetup[id] = e.setupOutOf(id)
	}
	// A setup abort is only meaningful with at least one corruption, and
	// the protocol's hybrid may be robust against small coalitions.
	abortRequested := len(tr.Corrupted) > 0 && e.adv.ObserveSetup(e.corruptSetup)
	if policy, ok := e.proto.(SetupAbortPolicy); ok && abortRequested {
		abortRequested = policy.SetupAbortable(len(tr.Corrupted))
	}
	tr.SetupAborted = abortRequested
	tr.HybridOutput = e.proto.Func(effective)
	for _, o := range e.obs {
		o.SetupFinished(tr.SetupAborted)
	}

	if tr.SetupAborted {
		// Honest parties proceed on defaults for corrupted parties.
		withDefaults := append(e.setupDefaults[:0], e.inputs...)
		e.setupDefaults = withDefaults
		for id := range tr.Corrupted {
			withDefaults[id-1] = e.proto.DefaultInput(id)
		}
		tr.ExpectedOutput = e.proto.Func(withDefaults)
		tr.EffectiveInputs = withDefaults
	} else {
		tr.ExpectedOutput = e.proto.Func(effective)
	}

	// Build machines. Corrupted machines are handed to the adversary.
	for i := 0; i < n; i++ {
		id := PartyID(i + 1)
		if err := e.backend.StartParty(id, effective[i], e.setupOutOf(id), tr.SetupAborted, e.partySeeds[i]); err != nil {
			return fmt.Errorf("sim: new party %d: %w", id, err)
		}
	}
	for _, id := range e.corruptedSorted() {
		if err := e.handover(id); err != nil {
			return err
		}
	}

	e.state = execRounds
	e.nextRound = 1
	return nil
}

// deliverInto routes one round message into the next-round lanes.
// Broadcasts go to everyone (including the sender) in deterministic
// order; fail-stopped parties receive nothing.
func (e *Execution) deliverInto(next [][]Message, m Message) {
	tr, n := e.trace, e.n
	if m.To == Broadcast {
		for i := 0; i < n; i++ {
			if tr.FailStopped(PartyID(i + 1)) {
				continue
			}
			next[i] = append(next[i], m)
		}
		return
	}
	if m.To >= 1 && m.To <= PartyID(n) && !tr.FailStopped(m.To) {
		next[m.To-1] = append(next[m.To-1], m)
	}
}

// Step executes message round `round` (which must be the next round in
// sequence): adaptive corruption, honest party moves, the rushing
// adversary's reply, and message routing into the next round's inboxes.
func (e *Execution) Step(round int) error {
	if e.state != execRounds || round != e.nextRound || round > e.totalRounds {
		return fmt.Errorf("%w: Step(%d) in state %d (next round %d)", ErrPhase, round, e.state, e.nextRound)
	}
	tr, n, r := e.trace, e.n, round
	for _, o := range e.obs {
		o.RoundStarted(r)
	}

	// Adaptive corruption before the round.
	for _, id := range e.adv.CorruptBefore(r) {
		if id < 1 || PartyID(n) < id {
			return fmt.Errorf("%w: %d", ErrBadParty, id)
		}
		if tr.Corrupted[id] {
			continue
		}
		tr.Corrupted[id] = true
		for _, o := range e.obs {
			o.PartyCorrupted(r, id)
		}
		if err := e.handover(id); err != nil {
			return err
		}
	}

	// Deliver this round's inboxes: honest parties consume them in their
	// Round call below; corrupted parties' inboxes go to the adversary.
	// Fail-stopped parties are gone — nothing is delivered to them.
	for _, o := range e.obs {
		for i := 0; i < n; i++ {
			if tr.FailStopped(PartyID(i + 1)) {
				continue
			}
			for _, m := range e.inboxes[i] {
				o.MessageDelivered(r, PartyID(i+1), m)
			}
		}
	}

	// Honest parties move first. Fail-stopped parties stay silent, the
	// same silence an abort adversary produces after round FailStops[id].
	honestOut := e.honestOut[:0]
	rushed := e.rushed[:0]
	for i := 0; i < n; i++ {
		id := PartyID(i + 1)
		if tr.Corrupted[id] || tr.FailStopped(id) {
			continue
		}
		out, err := e.backend.PartyRound(id, r, e.inboxes[i])
		if err != nil {
			return fmt.Errorf("sim: party %d round %d: %w", id, r, err)
		}
		for _, m := range out {
			m.From = id // the channel authenticates the sender
			honestOut = append(honestOut, m)
			if m.To == Broadcast || tr.Corrupted[m.To] {
				rushed = append(rushed, m)
			}
			for _, o := range e.obs {
				o.MessageSent(r, m, false)
			}
		}
	}
	e.honestOut, e.rushed = honestOut, rushed

	// Rushing adversary acts, with the corrupted parties' delivered
	// inboxes and the rushed view of this round's honest messages. The
	// map and slices are engine scratch: valid only during Act.
	if e.corruptInboxes == nil {
		e.corruptInboxes = make(map[PartyID][]Message)
	} else {
		clear(e.corruptInboxes)
	}
	for id := range tr.Corrupted {
		e.corruptInboxes[id] = e.inboxes[id-1]
	}
	advOut := e.adv.Act(r, e.corruptInboxes, rushed)
	for i := range advOut {
		if !tr.Corrupted[advOut[i].From] {
			return fmt.Errorf("sim: adversary sent as honest party %d", advOut[i].From)
		}
	}
	for _, o := range e.obs {
		for _, m := range advOut {
			o.MessageSent(r, m, true)
		}
	}

	// Route all round-r messages into next-round inboxes.
	next := e.spare
	for _, m := range honestOut {
		e.deliverInto(next, m)
	}
	for _, m := range advOut {
		e.deliverInto(next, m)
	}
	// Stable delivery order: by sender then position (already stable
	// since we appended honest in id order, then adversarial).
	for i := range next {
		sortStableBySender(next[i])
	}
	// Swap lanes: the consumed inboxes become next round's (truncated)
	// routing target.
	old := e.inboxes
	e.inboxes = next
	for i := range old {
		old[i] = old[i][:0]
	}
	e.spare = old
	tr.RoundsRun = r
	for _, o := range e.obs {
		o.RoundEnded(r)
	}
	e.nextRound++
	return nil
}

// Finalize collects honest outputs and audit data, verifies the
// adversary's learned/privacy-breach claims, and returns the finished
// trace. Every message round must have been stepped first.
//
// The trace (and everything it references) belongs to the execution:
// with a one-shot Execution it stays valid indefinitely, but an Arena
// invalidates it at the next Run.
func (e *Execution) Finalize() (*Trace, error) {
	if e.state != execRounds || e.nextRound <= e.totalRounds {
		return nil, fmt.Errorf("%w: Finalize in state %d after round %d/%d", ErrPhase, e.state, e.nextRound-1, e.totalRounds)
	}
	tr, n := e.trace, e.n

	// Compute the defaulted output w.r.t. the final deviating set:
	// corrupted parties and fail-stopped parties alike are the ones whose
	// inputs surviving honest parties replace with defaults.
	defaulted := append(e.finalDefaults[:0], e.inputs...)
	e.finalDefaults = defaulted
	for id := range tr.Corrupted {
		defaulted[id-1] = e.proto.DefaultInput(id)
	}
	for id := range tr.FailStops {
		defaulted[id-1] = e.proto.DefaultInput(id)
	}
	tr.DefaultedOutput = e.proto.Func(defaulted)

	// Collect honest outputs and audit data. Fail-stopped parties are
	// gone — they produce no output, like a corrupted aborter.
	for i := 0; i < n; i++ {
		id := PartyID(i + 1)
		if tr.Corrupted[id] || tr.FailStopped(id) {
			continue
		}
		rec, err := e.backend.PartyOutput(id)
		if err != nil {
			return nil, fmt.Errorf("sim: output of party %d: %w", id, err)
		}
		tr.HonestOutputs[id] = rec
		if v, ok := e.backend.AuditInfo(id); ok {
			tr.HonestAudits[id] = v
		}
		for _, o := range e.obs {
			o.OutputProduced(id, rec)
		}
	}

	// Verify the adversary's learned-output claim: it must match either
	// the ideal-world expected output or the value the hybrid computed
	// before a setup abort. A protocol-level OutcomeAuditor overrides
	// this default rule.
	if auditor, ok := e.proto.(OutcomeAuditor); ok {
		audit := auditor.AuditOutcome(tr)
		tr.Audit = &audit
		if audit.Learned {
			tr.AdvLearned = true
			tr.AdvValue = audit.LearnedValue
		}
	} else if v, ok := e.adv.Learned(); ok &&
		(ValuesEqual(v, tr.ExpectedOutput) || ValuesEqual(v, tr.HybridOutput)) {
		tr.AdvLearned = true
		tr.AdvValue = v
	}
	// Verify a privacy-breach claim if the strategy makes one.
	if ex, ok := e.adv.(InputExtractor); ok {
		if victim, v, claimed := ex.ExtractedInput(); claimed {
			if victim >= 1 && victim <= PartyID(n) && !tr.Corrupted[victim] &&
				ValuesEqual(v, e.inputs[victim-1]) {
				tr.PrivacyBreach = true
				tr.BreachedParty = victim
			}
		}
	}
	e.state = execDone
	for _, o := range e.obs {
		o.RunFinished(tr)
	}
	return tr, nil
}
