package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// PartyBackend runs the protocol machines for an Execution. The engine
// owns the model (corruptions, rushing, routing, the trace); the backend
// owns the machines. The in-memory backend calls Party methods directly;
// the TCP transport's backend forwards frames to remote party processes.
type PartyBackend interface {
	// StartParty builds/initializes party id with its effective input,
	// private setup output, the setup-abort flag, and the party's RNG
	// seed (drawn from the execution's master seed, so every backend
	// reproduces the same machine randomness).
	StartParty(id PartyID, input Value, setupOut Value, setupAborted bool, seed int64) error
	// PartyRound advances party id one round on its inbox and returns
	// its outgoing messages.
	PartyRound(id PartyID, round int, inbox []Message) ([]Message, error)
	// PartyOutput returns party id's final output.
	PartyOutput(id PartyID) (OutputRecord, error)
	// Machine returns party id's live machine for adversarial handover,
	// or nil when machines are not host-local. A backend returning nil
	// supports only honest executions: the engine refuses to corrupt a
	// party it cannot hand over.
	Machine(id PartyID) Party
	// AuditInfo returns party id's AuditInfo when the machine exposes
	// one (see AuditedParty); ok=false otherwise.
	AuditInfo(id PartyID) (Value, bool)
}

// localBackend is the in-memory backend: machines live in-process and
// are stepped by direct method calls.
type localBackend struct {
	proto    Protocol
	machines []Party
}

func newLocalBackend(proto Protocol) *localBackend {
	return &localBackend{proto: proto, machines: make([]Party, proto.NumParties())}
}

func (b *localBackend) StartParty(id PartyID, input Value, setupOut Value, setupAborted bool, seed int64) error {
	m, err := b.proto.NewParty(id, input, setupOut, setupAborted, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	b.machines[id-1] = m
	return nil
}

func (b *localBackend) PartyRound(id PartyID, round int, inbox []Message) ([]Message, error) {
	return b.machines[id-1].Round(round, inbox)
}

func (b *localBackend) PartyOutput(id PartyID) (OutputRecord, error) {
	v, ok := b.machines[id-1].Output()
	return OutputRecord{Value: v, OK: ok}, nil
}

func (b *localBackend) Machine(id PartyID) Party { return b.machines[id-1] }

func (b *localBackend) AuditInfo(id PartyID) (Value, bool) {
	if ap, ok := b.machines[id-1].(AuditedParty); ok {
		return ap.AuditInfo(), true
	}
	return nil, false
}

// Execution phase-ordering errors.
var (
	// ErrPhase reports a phase method called out of order.
	ErrPhase = errors.New("sim: execution phase out of order")
	// ErrRemoteCorruption reports an adversarial corruption against a
	// backend that cannot hand over machines (e.g. the TCP transport,
	// whose machines live in remote party processes).
	ErrRemoteCorruption = errors.New("sim: corruption requires an in-memory backend")
)

// execState tracks the phase an Execution is in.
type execState int

const (
	execCreated execState = iota
	execRounds
	execDone
)

// Execution is one protocol run decomposed into individually callable
// phases:
//
//	e, _ := NewExecution(proto, inputs, adv, seed, observers...)
//	e.SetupPhase()                  // corruption, substitution, hybrid setup
//	for r := 1; r <= e.TotalRounds(); r++ {
//	    e.Step(r)                   // one synchronous message round
//	}
//	tr, _ := e.Finalize()           // outputs, audits, verified verdicts
//
// Run wraps the four phases back into the classic single call and
// produces a trace identical to the pre-stepper engine's. The phases
// exist so that callers can hold the execution open between rounds: the
// TCP transport drives one wire round per Step, round-level attack
// strategies can be scheduled between Steps, and Observers stream every
// engine event as it happens instead of reading a post-hoc trace.
type Execution struct {
	proto   Protocol
	adv     Adversary
	backend PartyBackend
	obs     []Observer

	n          int
	inputs     []Value // environment-chosen inputs
	effective  []Value // after adversarial substitution
	setupOuts  []Value
	partySeeds []int64
	protoRNG   *rand.Rand
	trace      *Trace

	inboxes     [][]Message
	totalRounds int
	state       execState
	nextRound   int
}

// NewExecution prepares an in-memory execution: it seeds the engine's
// RNG streams (in the same master order as the classic Run) and resets
// the adversary. No protocol code runs until SetupPhase.
func NewExecution(proto Protocol, inputs []Value, adv Adversary, seed int64, obs ...Observer) (*Execution, error) {
	return NewExecutionWithBackend(proto, inputs, adv, seed, nil, obs...)
}

// NewExecutionWithBackend is NewExecution with the party machines run by
// an explicit backend; backend == nil selects the in-memory backend.
func NewExecutionWithBackend(proto Protocol, inputs []Value, adv Adversary, seed int64,
	backend PartyBackend, obs ...Observer) (*Execution, error) {
	n := proto.NumParties()
	if len(inputs) != n {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrInputCount, len(inputs), n)
	}
	if backend == nil {
		backend = newLocalBackend(proto)
	}
	master := rand.New(rand.NewSource(seed))
	protoRNG := rand.New(rand.NewSource(master.Int63()))
	advRNG := rand.New(rand.NewSource(master.Int63()))
	partySeeds := make([]int64, n)
	for i := range partySeeds {
		partySeeds[i] = master.Int63()
	}

	e := &Execution{
		proto:   proto,
		adv:     adv,
		backend: backend,
		obs:     obs,
		n:       n,
		inputs:  append([]Value(nil), inputs...),
		trace: &Trace{
			ProtocolName:  proto.Name(),
			Inputs:        append([]Value(nil), inputs...),
			Corrupted:     make(map[PartyID]bool),
			HonestOutputs: make(map[PartyID]OutputRecord),
		},
		partySeeds:  partySeeds,
		protoRNG:    protoRNG,
		totalRounds: proto.NumRounds() + 1, // +1 finalize call
	}

	adv.Reset(&AdvContext{
		Protocol:   proto,
		Inputs:     append([]Value(nil), inputs...),
		TrueOutput: proto.Func(inputs),
		RNG:        advRNG,
	})
	return e, nil
}

// TotalRounds returns the number of Step calls an execution takes: the
// protocol's message rounds plus the finalize round.
func (e *Execution) TotalRounds() int { return e.totalRounds }

// FailStop converts party id into a fail-stop abort: from the next Step
// on, the party's machine is no longer driven, no messages are routed to
// it, and Finalize collects no output from it — exactly the silence an
// abort adversary produces after corrupting the party and stopping, so
// surviving honest parties default the crashed party's input and the
// fairness classifier prices the run like an adversarial abort (see
// Trace.FailStops and core.Classify).
//
// round is the wire round the failure was detected in (0 = setup phase).
// FailStop may be called between SetupPhase and Finalize — typically by
// a transport host that lost a peer irrecoverably — and is idempotent
// per party. Observers implementing FailStopObserver receive the event.
func (e *Execution) FailStop(id PartyID, round int, cause string) error {
	if e.state != execRounds {
		return fmt.Errorf("%w: FailStop(%d) in state %d", ErrPhase, id, e.state)
	}
	if id < 1 || PartyID(e.n) < id {
		return fmt.Errorf("%w: %d", ErrBadParty, id)
	}
	tr := e.trace
	if tr.FailStops == nil {
		tr.FailStops = make(map[PartyID]FailStopInfo)
	}
	if _, dup := tr.FailStops[id]; dup {
		return nil
	}
	tr.FailStops[id] = FailStopInfo{Round: round, Cause: cause}
	for _, o := range e.obs {
		if f, ok := o.(FailStopObserver); ok {
			f.PartyFailStopped(round, id, cause)
		}
	}
	return nil
}

// corruptedSorted returns the currently corrupted set in ascending id
// order, for deterministic iteration (and a deterministic event stream).
func (e *Execution) corruptedSorted() []PartyID {
	ids := make([]PartyID, 0, len(e.trace.Corrupted))
	for id := range e.trace.Corrupted {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// handover gives the adversary a newly corrupted party's machine. It
// fails when the backend cannot produce machines (remote executions are
// honest-only).
func (e *Execution) handover(id PartyID) error {
	m := e.backend.Machine(id)
	if m == nil {
		if _, isLocal := e.backend.(*localBackend); !isLocal {
			return fmt.Errorf("%w: party %d", ErrRemoteCorruption, id)
		}
	}
	e.adv.OnCorrupt(id, m, e.setupOutOf(id))
	return nil
}

func (e *Execution) setupOutOf(id PartyID) Value {
	if e.setupOuts == nil {
		return nil
	}
	return e.setupOuts[id-1]
}

// SetupPhase runs the pre-round phases: static corruption, adversarial
// input substitution, the hybrid setup (with the adversary's abort
// decision), and party-machine construction.
func (e *Execution) SetupPhase() error {
	if e.state != execCreated {
		return fmt.Errorf("%w: SetupPhase called twice", ErrPhase)
	}
	tr, n := e.trace, e.n
	for _, o := range e.obs {
		o.RunStarted(e.proto, tr.Inputs)
	}

	// Static corruptions and input substitution.
	for _, id := range e.adv.InitialCorruptions() {
		if id < 1 || PartyID(n) < id {
			return fmt.Errorf("%w: %d", ErrBadParty, id)
		}
		tr.Corrupted[id] = true
	}
	for _, o := range e.obs {
		for _, id := range e.corruptedSorted() {
			o.PartyCorrupted(0, id)
		}
	}
	effective := append([]Value(nil), e.inputs...)
	for _, id := range e.corruptedSorted() {
		effective[id-1] = e.adv.SubstituteInput(id, e.inputs[id-1])
		for _, o := range e.obs {
			o.InputSubstituted(id, e.inputs[id-1], effective[id-1])
		}
	}
	tr.EffectiveInputs = effective
	e.effective = effective

	// Hybrid setup.
	setupOuts, err := e.proto.Setup(effective, e.protoRNG)
	if err != nil {
		return fmt.Errorf("sim: setup: %w", err)
	}
	if setupOuts != nil && len(setupOuts) != n && len(setupOuts) != n+1 {
		return fmt.Errorf("sim: setup returned %d outputs for %d parties", len(setupOuts), n)
	}
	if len(setupOuts) == n+1 {
		tr.SetupAudit = setupOuts[n]
		setupOuts = setupOuts[:n]
	}
	e.setupOuts = setupOuts
	corruptedSetup := make(map[PartyID]Value)
	for id := range tr.Corrupted {
		corruptedSetup[id] = e.setupOutOf(id)
	}
	// A setup abort is only meaningful with at least one corruption, and
	// the protocol's hybrid may be robust against small coalitions.
	abortRequested := len(tr.Corrupted) > 0 && e.adv.ObserveSetup(corruptedSetup)
	if policy, ok := e.proto.(SetupAbortPolicy); ok && abortRequested {
		abortRequested = policy.SetupAbortable(len(tr.Corrupted))
	}
	tr.SetupAborted = abortRequested
	tr.HybridOutput = e.proto.Func(effective)
	for _, o := range e.obs {
		o.SetupFinished(tr.SetupAborted)
	}

	if tr.SetupAborted {
		// Honest parties proceed on defaults for corrupted parties.
		withDefaults := append([]Value(nil), e.inputs...)
		for id := range tr.Corrupted {
			withDefaults[id-1] = e.proto.DefaultInput(id)
		}
		tr.ExpectedOutput = e.proto.Func(withDefaults)
		tr.EffectiveInputs = withDefaults
	} else {
		tr.ExpectedOutput = e.proto.Func(effective)
	}

	// Build machines. Corrupted machines are handed to the adversary.
	for i := 0; i < n; i++ {
		id := PartyID(i + 1)
		if err := e.backend.StartParty(id, effective[i], e.setupOutOf(id), tr.SetupAborted, e.partySeeds[i]); err != nil {
			return fmt.Errorf("sim: new party %d: %w", id, err)
		}
	}
	for _, id := range e.corruptedSorted() {
		if err := e.handover(id); err != nil {
			return err
		}
	}

	e.inboxes = make([][]Message, n)
	e.state = execRounds
	e.nextRound = 1
	return nil
}

// Step executes message round `round` (which must be the next round in
// sequence): adaptive corruption, honest party moves, the rushing
// adversary's reply, and message routing into the next round's inboxes.
func (e *Execution) Step(round int) error {
	if e.state != execRounds || round != e.nextRound || round > e.totalRounds {
		return fmt.Errorf("%w: Step(%d) in state %d (next round %d)", ErrPhase, round, e.state, e.nextRound)
	}
	tr, n, r := e.trace, e.n, round
	for _, o := range e.obs {
		o.RoundStarted(r)
	}

	// Adaptive corruption before the round.
	for _, id := range e.adv.CorruptBefore(r) {
		if id < 1 || PartyID(n) < id {
			return fmt.Errorf("%w: %d", ErrBadParty, id)
		}
		if tr.Corrupted[id] {
			continue
		}
		tr.Corrupted[id] = true
		for _, o := range e.obs {
			o.PartyCorrupted(r, id)
		}
		if err := e.handover(id); err != nil {
			return err
		}
	}

	// Deliver this round's inboxes: honest parties consume them in their
	// Round call below; corrupted parties' inboxes go to the adversary.
	// Fail-stopped parties are gone — nothing is delivered to them.
	for _, o := range e.obs {
		for i := 0; i < n; i++ {
			if tr.FailStopped(PartyID(i + 1)) {
				continue
			}
			for _, m := range e.inboxes[i] {
				o.MessageDelivered(r, PartyID(i+1), m)
			}
		}
	}

	// Honest parties move first. Fail-stopped parties stay silent, the
	// same silence an abort adversary produces after round FailStops[id].
	var honestOut []Message
	var rushed []Message
	for i := 0; i < n; i++ {
		id := PartyID(i + 1)
		if tr.Corrupted[id] || tr.FailStopped(id) {
			continue
		}
		out, err := e.backend.PartyRound(id, r, e.inboxes[i])
		if err != nil {
			return fmt.Errorf("sim: party %d round %d: %w", id, r, err)
		}
		for _, m := range out {
			m.From = id // the channel authenticates the sender
			honestOut = append(honestOut, m)
			if m.To == Broadcast || tr.Corrupted[m.To] {
				rushed = append(rushed, m)
			}
			for _, o := range e.obs {
				o.MessageSent(r, m, false)
			}
		}
	}

	// Rushing adversary acts, with the corrupted parties' delivered
	// inboxes and the rushed view of this round's honest messages.
	corruptInboxes := make(map[PartyID][]Message, len(tr.Corrupted))
	for id := range tr.Corrupted {
		corruptInboxes[id] = e.inboxes[id-1]
	}
	advOut := e.adv.Act(r, corruptInboxes, rushed)
	for i := range advOut {
		if !tr.Corrupted[advOut[i].From] {
			return fmt.Errorf("sim: adversary sent as honest party %d", advOut[i].From)
		}
	}
	for _, o := range e.obs {
		for _, m := range advOut {
			o.MessageSent(r, m, true)
		}
	}

	// Route all round-r messages into next-round inboxes. Broadcasts go
	// to everyone (including the sender) in deterministic order.
	next := make([][]Message, n)
	deliver := func(m Message) {
		if m.To == Broadcast {
			for i := 0; i < n; i++ {
				if tr.FailStopped(PartyID(i + 1)) {
					continue
				}
				next[i] = append(next[i], m)
			}
			return
		}
		if m.To >= 1 && m.To <= PartyID(n) && !tr.FailStopped(m.To) {
			next[m.To-1] = append(next[m.To-1], m)
		}
	}
	for _, m := range honestOut {
		deliver(m)
	}
	for _, m := range advOut {
		deliver(m)
	}
	// Stable delivery order: by sender then position (already stable
	// since we appended honest in id order, then adversarial).
	for i := range next {
		sortStableBySender(next[i])
	}
	e.inboxes = next
	tr.RoundsRun = r
	for _, o := range e.obs {
		o.RoundEnded(r)
	}
	e.nextRound++
	return nil
}

// Finalize collects honest outputs and audit data, verifies the
// adversary's learned/privacy-breach claims, and returns the finished
// trace. Every message round must have been stepped first.
func (e *Execution) Finalize() (*Trace, error) {
	if e.state != execRounds || e.nextRound <= e.totalRounds {
		return nil, fmt.Errorf("%w: Finalize in state %d after round %d/%d", ErrPhase, e.state, e.nextRound-1, e.totalRounds)
	}
	tr, n := e.trace, e.n

	// Compute the defaulted output w.r.t. the final deviating set:
	// corrupted parties and fail-stopped parties alike are the ones whose
	// inputs surviving honest parties replace with defaults.
	defaulted := append([]Value(nil), e.inputs...)
	for id := range tr.Corrupted {
		defaulted[id-1] = e.proto.DefaultInput(id)
	}
	for id := range tr.FailStops {
		defaulted[id-1] = e.proto.DefaultInput(id)
	}
	tr.DefaultedOutput = e.proto.Func(defaulted)

	// Collect honest outputs and audit data. Fail-stopped parties are
	// gone — they produce no output, like a corrupted aborter.
	tr.HonestAudits = make(map[PartyID]Value)
	for i := 0; i < n; i++ {
		id := PartyID(i + 1)
		if tr.Corrupted[id] || tr.FailStopped(id) {
			continue
		}
		rec, err := e.backend.PartyOutput(id)
		if err != nil {
			return nil, fmt.Errorf("sim: output of party %d: %w", id, err)
		}
		tr.HonestOutputs[id] = rec
		if v, ok := e.backend.AuditInfo(id); ok {
			tr.HonestAudits[id] = v
		}
		for _, o := range e.obs {
			o.OutputProduced(id, rec)
		}
	}

	// Verify the adversary's learned-output claim: it must match either
	// the ideal-world expected output or the value the hybrid computed
	// before a setup abort. A protocol-level OutcomeAuditor overrides
	// this default rule.
	if auditor, ok := e.proto.(OutcomeAuditor); ok {
		audit := auditor.AuditOutcome(tr)
		tr.Audit = &audit
		if audit.Learned {
			tr.AdvLearned = true
			tr.AdvValue = audit.LearnedValue
		}
	} else if v, ok := e.adv.Learned(); ok &&
		(ValuesEqual(v, tr.ExpectedOutput) || ValuesEqual(v, tr.HybridOutput)) {
		tr.AdvLearned = true
		tr.AdvValue = v
	}
	// Verify a privacy-breach claim if the strategy makes one.
	if ex, ok := e.adv.(InputExtractor); ok {
		if victim, v, claimed := ex.ExtractedInput(); claimed {
			if victim >= 1 && victim <= PartyID(n) && !tr.Corrupted[victim] &&
				ValuesEqual(v, e.inputs[victim-1]) {
				tr.PrivacyBreach = true
				tr.BreachedParty = victim
			}
		}
	}
	e.state = execDone
	for _, o := range e.obs {
		o.RunFinished(tr)
	}
	return tr, nil
}
