package sim

import (
	"math/rand"
	"testing"
)

// policyProtocol is a hybrid protocol with a robust setup below a
// threshold of 2 corruptions.
type policyProtocol struct{ hybridProtocol }

func (policyProtocol) SetupAbortable(corrupted int) bool { return corrupted >= 2 }

func TestSetupAbortPolicyBlocksSmallCoalitions(t *testing.T) {
	adv := &setupAborter{}
	tr, err := Run(policyProtocol{}, []Value{uint64(3), uint64(4)}, adv, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SetupAborted {
		t.Error("single corruption aborted a robust setup")
	}
}

// doubleAborter corrupts both parties and aborts the setup.
type doubleAborter struct{ setupAborter }

func (d *doubleAborter) InitialCorruptions() []PartyID { return []PartyID{1, 2} }

func TestSetupAbortPolicyAllowsThreshold(t *testing.T) {
	adv := &doubleAborter{}
	tr, err := Run(policyProtocol{}, []Value{uint64(3), uint64(4)}, adv, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.SetupAborted {
		t.Error("threshold coalition could not abort")
	}
}

// setupSpy adaptively corrupts party 1 before round 1 and records the
// setup output handed over.
type setupSpy struct {
	gotSetup Value
}

func (s *setupSpy) Reset(*AdvContext)                        { s.gotSetup = nil }
func (s *setupSpy) InitialCorruptions() []PartyID            { return nil }
func (s *setupSpy) SubstituteInput(_ PartyID, v Value) Value { return v }
func (s *setupSpy) ObserveSetup(map[PartyID]Value) bool      { return false }
func (s *setupSpy) CorruptBefore(round int) []PartyID {
	if round == 1 {
		return []PartyID{1}
	}
	return nil
}
func (s *setupSpy) OnCorrupt(_ PartyID, _ Party, setupOut Value)        { s.gotSetup = setupOut }
func (s *setupSpy) Act(int, map[PartyID][]Message, []Message) []Message { return nil }
func (s *setupSpy) Learned() (Value, bool)                              { return nil, false }

func TestAdaptiveCorruptionDeliversSetupOutput(t *testing.T) {
	adv := &setupSpy{}
	tr, err := Run(hybridProtocol{}, []Value{uint64(3), uint64(4)}, adv, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Corrupted[1] {
		t.Fatal("party 1 not corrupted")
	}
	// hybridProtocol's setup gives party 1 the sum (7).
	if !ValuesEqual(adv.gotSetup, uint64(7)) {
		t.Errorf("setup output on corruption = %v, want 7", adv.gotSetup)
	}
}

// auditingParty is a machine exposing audit info.
type auditingParty struct {
	exchangeParty
	marker int
}

func (p *auditingParty) AuditInfo() Value { return p.marker }
func (p *auditingParty) Clone() Party     { cp := *p; return &cp }

type auditingProtocol struct{ exchangeProtocol }

func (auditingProtocol) NewParty(id PartyID, input Value, _ Value, _ bool, _ *rand.Rand) (Party, error) {
	return &auditingParty{
		exchangeParty: exchangeParty{id: id, input: input.(uint64)},
		marker:        int(id) * 10,
	}, nil
}

func TestHonestAuditsCollected(t *testing.T) {
	tr, err := Run(auditingProtocol{}, []Value{uint64(1), uint64(2)}, Passive{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ValuesEqual(tr.HonestAudits[1], 10) || !ValuesEqual(tr.HonestAudits[2], 20) {
		t.Errorf("audits = %v", tr.HonestAudits)
	}
}

// auditedProtocol overrides the outcome: always learned with value 42,
// never delivered.
type auditedProtocol struct{ exchangeProtocol }

func (auditedProtocol) AuditOutcome(tr *Trace) OutcomeAudit {
	return OutcomeAudit{Learned: true, LearnedValue: uint64(42), Delivered: false, RandomReplaced: true}
}

func TestOutcomeAuditorOverrides(t *testing.T) {
	tr, err := Run(auditedProtocol{}, []Value{uint64(1), uint64(2)}, Passive{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.AdvLearned || !ValuesEqual(tr.AdvValue, uint64(42)) {
		t.Errorf("auditor learned override not applied: %v/%v", tr.AdvLearned, tr.AdvValue)
	}
	if tr.AllHonestDelivered() {
		t.Error("auditor delivered override not applied")
	}
	if !tr.AnyHonestWrong() {
		t.Error("auditor random-replaced override not applied")
	}
}

// hiddenAuditProtocol returns n+1 setup values.
type hiddenAuditProtocol struct{ hybridProtocol }

func (hiddenAuditProtocol) Setup(inputs []Value, rng *rand.Rand) ([]Value, error) {
	sum := inputs[0].(uint64) + inputs[1].(uint64)
	return []Value{sum, nil, "hidden-state"}, nil
}

func TestHiddenSetupAuditState(t *testing.T) {
	spy := &setupSpy{}
	tr, err := Run(hiddenAuditProtocol{}, []Value{uint64(3), uint64(4)}, spy, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !ValuesEqual(tr.SetupAudit, "hidden-state") {
		t.Errorf("SetupAudit = %v", tr.SetupAudit)
	}
	// The hidden value must never be handed to the adversary: party 1's
	// setup output is the sum, not the audit state.
	if !ValuesEqual(spy.gotSetup, uint64(7)) {
		t.Errorf("adversary saw %v", spy.gotSetup)
	}
}

// badSetupProtocol returns a wrong-length setup slice.
type badSetupProtocol struct{ hybridProtocol }

func (badSetupProtocol) Setup([]Value, *rand.Rand) ([]Value, error) {
	return []Value{nil, nil, nil, nil}, nil
}

func TestSetupLengthValidation(t *testing.T) {
	if _, err := Run(badSetupProtocol{}, []Value{uint64(1), uint64(2)}, Passive{}, 7); err == nil {
		t.Error("4 setup outputs for 2 parties accepted")
	}
}

func TestCorruptingSamePartyTwiceIsIdempotent(t *testing.T) {
	adv := &recorrupter{}
	tr, err := Run(exchangeProtocol{}, []Value{uint64(1), uint64(2)}, adv, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumCorrupted() != 1 {
		t.Errorf("corrupted = %d", tr.NumCorrupted())
	}
	if adv.handovers != 1 {
		t.Errorf("OnCorrupt called %d times, want 1", adv.handovers)
	}
}

// recorrupter names party 1 both statically and adaptively.
type recorrupter struct {
	handovers int
}

func (r *recorrupter) Reset(*AdvContext)                                   { r.handovers = 0 }
func (r *recorrupter) InitialCorruptions() []PartyID                       { return []PartyID{1} }
func (r *recorrupter) SubstituteInput(_ PartyID, v Value) Value            { return v }
func (r *recorrupter) ObserveSetup(map[PartyID]Value) bool                 { return false }
func (r *recorrupter) CorruptBefore(int) []PartyID                         { return []PartyID{1} }
func (r *recorrupter) OnCorrupt(PartyID, Party, Value)                     { r.handovers++ }
func (r *recorrupter) Act(int, map[PartyID][]Message, []Message) []Message { return nil }
func (r *recorrupter) Learned() (Value, bool)                              { return nil, false }
