package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/protocols/twoparty"
	"repro/internal/sim"
)

func runOnce(t *testing.T, obs ...sim.Observer) *sim.Trace {
	t.Helper()
	proto := twoparty.New(twoparty.Swap())
	tr, err := sim.RunObserved(proto, []sim.Value{uint64(3), uint64(5)}, adversary.NewLockAbort(1), 7, obs...)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRecorderCapturesFullRun(t *testing.T) {
	rec := NewRecorder(Meta{Strategy: "lock-abort:1", Run: 3})
	var m sim.Metrics
	tr := runOnce(t, rec, &m)

	lines := rec.Lines()
	if len(lines) == 0 {
		t.Fatal("no lines recorded")
	}
	if lines[0].Type != "run_start" || lines[len(lines)-1].Type != "run_end" {
		t.Fatalf("stream not bracketed: first=%s last=%s", lines[0].Type, lines[len(lines)-1].Type)
	}
	counts := map[string]int{}
	for i, l := range lines {
		if l.Run != 3 || l.Strategy != "lock-abort:1" {
			t.Fatalf("line %d lost meta: %+v", i, l)
		}
		if l.Seq != i {
			t.Fatalf("line %d has seq %d", i, l.Seq)
		}
		counts[l.Type]++
	}
	if got, want := counts["round_start"], tr.RoundsRun; got != want {
		t.Errorf("round_start lines = %d, want %d", got, want)
	}
	if got, want := int64(counts["send"]), m.Messages; got != want {
		t.Errorf("send lines = %d, metrics say %d", got, want)
	}
	if got, want := int64(counts["deliver"]), m.Deliveries; got != want {
		t.Errorf("deliver lines = %d, metrics say %d", got, want)
	}
	if counts["corrupt"] != tr.NumCorrupted() {
		t.Errorf("corrupt lines = %d, want %d", counts["corrupt"], tr.NumCorrupted())
	}
	end := lines[len(lines)-1]
	if end.Rounds != tr.RoundsRun || end.Learned != tr.AdvLearned || end.Corrupted != tr.NumCorrupted() {
		t.Errorf("run_end %+v disagrees with trace", end)
	}
}

func TestSinkJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewSink(&buf)
	var m sim.Metrics
	runOnce(t, sink.Recorder(Meta{Proto: "", Run: 0}), &m)
	runOnce(t, sink.Recorder(Meta{Run: 1}), &m)
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	lines, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	st := sink.Stats()
	if int64(len(lines)) != st.Lines {
		t.Fatalf("parsed %d lines, sink wrote %d", len(lines), st.Lines)
	}
	if st.Runs != 2 || st.Runs != m.Runs {
		t.Errorf("sink runs = %d, metrics runs = %d, want 2", st.Runs, m.Runs)
	}
	if st.Sends != m.Messages {
		t.Errorf("sink sends = %d, metrics messages = %d", st.Sends, m.Messages)
	}
	if st.Rounds != m.Rounds {
		t.Errorf("sink rounds = %d, metrics rounds = %d", st.Rounds, m.Rounds)
	}
	if lines[0].Proto == "" {
		t.Error("run_start did not default proto name from the protocol")
	}
}

func TestFprintPretty(t *testing.T) {
	var buf bytes.Buffer
	sink := NewSink(&buf)
	runOnce(t, sink.Recorder(Meta{Strategy: "lock-abort:1"}))

	var out bytes.Buffer
	if err := Fprint(&out, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"▶", "round 1", "output", "■ rounds="} {
		if !strings.Contains(text, want) {
			t.Errorf("pretty output missing %q:\n%s", want, text)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage parsed")
	}
}
