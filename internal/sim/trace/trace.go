// Package trace turns the engine's Observer event stream into a
// structured, serializable transcript: a Recorder buffers one run's
// events as typed lines, a Sink multiplexes many concurrent runs into a
// single JSONL stream (one JSON object per line, whole runs written
// atomically), and Fprint pretty-prints a JSONL transcript back into a
// human-readable round-by-round log.
//
// The JSONL schema (one Line per event; zero-valued fields omitted
// except where noted):
//
//	{"run":R,"seq":S,"type":"run_start","proto":"...","parties":N,"inputs":"[...]"}
//	{"run":R,"seq":S,"type":"corrupt","round":r,"party":P}        round 0 = static
//	{"run":R,"seq":S,"type":"substitute","party":P,"orig":"...","value":"..."}
//	{"run":R,"seq":S,"type":"setup","aborted":bool}
//	{"run":R,"seq":S,"type":"round_start","round":r}
//	{"run":R,"seq":S,"type":"deliver","round":r,"party":P,"from":F,"payload":"..."}
//	{"run":R,"seq":S,"type":"send","round":r,"from":F,"to":T,"broadcast":bool,
//	 "corrupt":bool,"payload":"..."}                              to omitted on broadcast
//	{"run":R,"seq":S,"type":"output","party":P,"ok":bool,"value":"..."}
//	{"run":R,"seq":S,"type":"round_end","round":r}
//	{"run":R,"seq":S,"type":"run_end","rounds":N,"learned":bool,"breach":bool,
//	 "corrupted":t}
//
// Lines carry optional "proto" and "strategy" metadata so transcripts
// from sup-searches (many strategies) and experiment sweeps (many
// protocols) stay self-describing after concatenation.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/sim"
)

// maxPayload bounds the rendered payload string; transcripts are logs,
// not wire formats, so huge payloads are elided.
const maxPayload = 160

// Line is one transcript event, the unit of the JSONL stream.
type Line struct {
	// Proto and Strategy are optional metadata identifying the workload
	// the run belongs to.
	Proto    string `json:"proto,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	// Run is the run index within its estimation; Seq orders lines
	// within the run.
	Run int `json:"run"`
	Seq int `json:"seq"`
	// Type discriminates the event (see the package comment's schema).
	Type string `json:"type"`
	// Round is the message round, when the event belongs to one.
	Round int `json:"round,omitempty"`
	// Party is the subject party (corruption target, recipient, …).
	Party int `json:"party,omitempty"`
	// Parties is n (run_start only).
	Parties int `json:"parties,omitempty"`
	// From and To address a message; Broadcast marks To == broadcast.
	From      int  `json:"from,omitempty"`
	To        int  `json:"to,omitempty"`
	Broadcast bool `json:"broadcast,omitempty"`
	// Corrupt marks adversarial senders on send lines.
	Corrupt bool `json:"corrupt,omitempty"`
	// Payload / Inputs / Orig / Value render protocol data via %v.
	Payload string `json:"payload,omitempty"`
	Inputs  string `json:"inputs,omitempty"`
	Orig    string `json:"orig,omitempty"`
	Value   string `json:"value,omitempty"`
	// OK is the output's non-⊥ flag (output lines).
	OK bool `json:"ok,omitempty"`
	// Aborted marks a setup abort (setup lines).
	Aborted bool `json:"aborted,omitempty"`
	// Rounds, Learned, Breach, Corrupted summarize the run (run_end).
	Rounds    int  `json:"rounds,omitempty"`
	Learned   bool `json:"learned,omitempty"`
	Breach    bool `json:"breach,omitempty"`
	Corrupted int  `json:"corrupted,omitempty"`
	// Cause is the canonical failure description (failstop lines);
	// FailStops counts fail-stopped parties (run_end lines).
	Cause     string `json:"cause,omitempty"`
	FailStops int    `json:"failstops,omitempty"`
}

// render stringifies a protocol value for the transcript.
func render(v any) string {
	s := fmt.Sprintf("%v", v)
	if len(s) > maxPayload {
		s = s[:maxPayload] + "…"
	}
	return s
}

// Meta labels a Recorder's lines.
type Meta struct {
	// Proto is the protocol name (defaulted from RunStarted if empty).
	Proto string
	// Strategy is the adversary/strategy label.
	Strategy string
	// Run is the run index.
	Run int
}

// Recorder is a sim.Observer that buffers one run's transcript. When
// built by a Sink it flushes the whole run to the sink's JSONL stream on
// RunFinished; a standalone Recorder just accumulates (read Lines).
type Recorder struct {
	meta  Meta
	lines []Line
	sink  *Sink
}

var (
	_ sim.Observer         = (*Recorder)(nil)
	_ sim.FailStopObserver = (*Recorder)(nil)
)

// NewRecorder returns a standalone Recorder for one run.
func NewRecorder(meta Meta) *Recorder { return &Recorder{meta: meta} }

// Lines returns the recorded transcript.
func (r *Recorder) Lines() []Line { return r.lines }

func (r *Recorder) add(l Line) {
	l.Proto = r.meta.Proto
	l.Strategy = r.meta.Strategy
	l.Run = r.meta.Run
	l.Seq = len(r.lines)
	r.lines = append(r.lines, l)
}

// RunStarted implements sim.Observer.
func (r *Recorder) RunStarted(proto sim.Protocol, inputs []sim.Value) {
	if r.meta.Proto == "" {
		r.meta.Proto = proto.Name()
	}
	r.add(Line{Type: "run_start", Parties: proto.NumParties(), Inputs: render(inputs)})
}

// PartyCorrupted implements sim.Observer.
func (r *Recorder) PartyCorrupted(round int, id sim.PartyID) {
	r.add(Line{Type: "corrupt", Round: round, Party: int(id)})
}

// InputSubstituted implements sim.Observer.
func (r *Recorder) InputSubstituted(id sim.PartyID, orig, substituted sim.Value) {
	r.add(Line{Type: "substitute", Party: int(id), Orig: render(orig), Value: render(substituted)})
}

// SetupFinished implements sim.Observer.
func (r *Recorder) SetupFinished(aborted bool) {
	r.add(Line{Type: "setup", Aborted: aborted})
}

// RoundStarted implements sim.Observer.
func (r *Recorder) RoundStarted(round int) {
	r.add(Line{Type: "round_start", Round: round})
}

// MessageDelivered implements sim.Observer.
func (r *Recorder) MessageDelivered(round int, to sim.PartyID, m sim.Message) {
	r.add(Line{Type: "deliver", Round: round, Party: int(to), From: int(m.From), Payload: render(m.Payload)})
}

// MessageSent implements sim.Observer.
func (r *Recorder) MessageSent(round int, m sim.Message, corrupt bool) {
	l := Line{Type: "send", Round: round, From: int(m.From), Corrupt: corrupt, Payload: render(m.Payload)}
	if m.To == sim.Broadcast {
		l.Broadcast = true
	} else {
		l.To = int(m.To)
	}
	r.add(l)
}

// RoundEnded implements sim.Observer.
func (r *Recorder) RoundEnded(round int) {
	r.add(Line{Type: "round_end", Round: round})
}

// OutputProduced implements sim.Observer.
func (r *Recorder) OutputProduced(id sim.PartyID, rec sim.OutputRecord) {
	r.add(Line{Type: "output", Party: int(id), OK: rec.OK, Value: render(rec.Value)})
}

// PartyFailStopped implements sim.FailStopObserver: a party removed
// from the run by an unrecoverable infrastructure failure.
func (r *Recorder) PartyFailStopped(round int, id sim.PartyID, cause string) {
	r.add(Line{Type: "failstop", Round: round, Party: int(id), Cause: cause})
}

// RunFinished implements sim.Observer.
func (r *Recorder) RunFinished(tr *sim.Trace) {
	r.add(Line{
		Type:      "run_end",
		Rounds:    tr.RoundsRun,
		Learned:   tr.AdvLearned,
		Breach:    tr.PrivacyBreach,
		Corrupted: tr.NumCorrupted(),
		FailStops: len(tr.FailStops),
	})
	if r.sink != nil {
		r.sink.flush(r.lines)
	}
}

// Stats counts transcript lines by kind, for cross-checking against the
// engine's sim.Metrics.
type Stats struct {
	// Lines is the total JSONL line count.
	Lines int64
	// Runs counts run_end lines.
	Runs int64
	// Rounds counts round_start lines.
	Rounds int64
	// Sends counts send lines; Deliveries counts deliver lines.
	Sends      int64
	Deliveries int64
}

// Sink serializes whole-run transcripts from concurrently executing runs
// into one JSONL stream. Each run's lines are written contiguously (the
// Recorder flushes on RunFinished under the sink's lock), so a parallel
// estimation produces a file whose runs may be reordered but never
// interleaved; the run/seq fields keep it fully reconstructable.
type Sink struct {
	mu    sync.Mutex
	enc   *json.Encoder
	stats Stats
	err   error
}

// NewSink wraps w in a transcript sink.
func NewSink(w io.Writer) *Sink { return &Sink{enc: json.NewEncoder(w)} }

// Recorder returns a per-run Recorder that flushes into the sink when
// its run finishes. Each run needs its own Recorder.
func (s *Sink) Recorder(meta Meta) *Recorder { return &Recorder{meta: meta, sink: s} }

func (s *Sink) flush(lines []Line) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range lines {
		if s.err == nil {
			s.err = s.enc.Encode(l)
		}
		s.stats.Lines++
		switch l.Type {
		case "run_end":
			s.stats.Runs++
		case "round_start":
			s.stats.Rounds++
		case "send":
			s.stats.Sends++
		case "deliver":
			s.stats.Deliveries++
		}
	}
}

// Stats returns the line counts written so far.
func (s *Sink) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Err returns the first write error, if any.
func (s *Sink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
