package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Parse reads a JSONL transcript back into lines.
func Parse(r io.Reader) ([]Line, error) {
	var lines []Line
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l Line
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", len(lines)+1, err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return lines, nil
}

// FormatLine renders one transcript line as a human-readable log line.
func FormatLine(l Line) string {
	tag := fmt.Sprintf("[run %d]", l.Run)
	if l.Strategy != "" {
		tag = fmt.Sprintf("[run %d %s]", l.Run, l.Strategy)
	}
	switch l.Type {
	case "run_start":
		return fmt.Sprintf("%s ▶ %s n=%d inputs=%s", tag, l.Proto, l.Parties, l.Inputs)
	case "corrupt":
		if l.Round == 0 {
			return fmt.Sprintf("%s ✦ corrupt p%d (static)", tag, l.Party)
		}
		return fmt.Sprintf("%s ✦ corrupt p%d before round %d", tag, l.Party, l.Round)
	case "substitute":
		return fmt.Sprintf("%s ✦ p%d input %s → %s", tag, l.Party, l.Orig, l.Value)
	case "setup":
		if l.Aborted {
			return fmt.Sprintf("%s ✦ hybrid setup ABORTED", tag)
		}
		return fmt.Sprintf("%s hybrid setup ok", tag)
	case "round_start":
		return fmt.Sprintf("%s ── round %d ──", tag, l.Round)
	case "deliver":
		return fmt.Sprintf("%s r%-2d   p%d ← p%d  %s", tag, l.Round, l.Party, l.From, l.Payload)
	case "send":
		arrow, dst := "→", fmt.Sprintf("p%d", l.To)
		if l.Broadcast {
			arrow, dst = "⇒", "∗"
		}
		who := fmt.Sprintf("p%d", l.From)
		if l.Corrupt {
			who = "adv:" + who
		}
		return fmt.Sprintf("%s r%-2d   %s %s %s  %s", tag, l.Round, who, arrow, dst, l.Payload)
	case "round_end":
		return ""
	case "output":
		if !l.OK {
			return fmt.Sprintf("%s output p%d = ⊥", tag, l.Party)
		}
		return fmt.Sprintf("%s output p%d = %s", tag, l.Party, l.Value)
	case "failstop":
		if l.Round == 0 {
			return fmt.Sprintf("%s ✖ p%d FAIL-STOP during setup (%s)", tag, l.Party, l.Cause)
		}
		return fmt.Sprintf("%s ✖ p%d FAIL-STOP at round %d (%s)", tag, l.Party, l.Round, l.Cause)
	case "run_end":
		if l.FailStops > 0 {
			return fmt.Sprintf("%s ■ rounds=%d corrupted=%d failstops=%d learned=%v breach=%v",
				tag, l.Rounds, l.Corrupted, l.FailStops, l.Learned, l.Breach)
		}
		return fmt.Sprintf("%s ■ rounds=%d corrupted=%d learned=%v breach=%v",
			tag, l.Rounds, l.Corrupted, l.Learned, l.Breach)
	default:
		return fmt.Sprintf("%s ? %s", tag, l.Type)
	}
}

// Fprint pretty-prints a JSONL transcript stream to w.
func Fprint(w io.Writer, r io.Reader) error {
	lines, err := Parse(r)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for _, l := range lines {
		s := FormatLine(l)
		if s == "" {
			continue
		}
		if _, err := fmt.Fprintln(bw, s); err != nil {
			return err
		}
	}
	return bw.Flush()
}
