package sim_test

// Arena-parity test: a reused Arena must produce traces
// reflect.DeepEqual-identical to one-shot sim.Run for every protocol ×
// adversary pair the experiment harness exercises, regardless of what
// ran on the arena before. This is the reuse half of the estimator's
// determinism contract (the frozen-legacy half is parity_test.go).

import (
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/protocols/twoparty"
	"repro/internal/sim"
)

func TestArenaMatchesRun(t *testing.T) {
	for _, tc := range parityCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			proto, inputs, err := tc.proto()
			if err != nil {
				t.Fatal(err)
			}
			arena := sim.NewArena(proto)
			// One adversary instance across every arena run — exactly how
			// the estimator drives it (Reset per run); the reference run
			// gets a fresh instance each time.
			adv := tc.newAdv()
			for seed := int64(0); seed < 12; seed++ {
				got, gotErr := arena.Run(inputs, adv, seed)
				want, wantErr := sim.Run(proto, inputs, tc.newAdv(), seed)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("seed %d: run err %v, arena err %v", seed, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seed %d: traces diverge\nrun:   %+v\narena: %+v", seed, want, got)
				}
			}
		})
	}
}

// TestArenaRunAllocs pins the allocation-lean property the Arena exists
// for: a steady-state ΠOpt-2SFE run must stay within a small allocation
// budget (protocol machine construction and sharing included).
func TestArenaRunAllocs(t *testing.T) {
	proto := twoparty.New(twoparty.Swap())
	adv := adversary.NewLockAbort(1)
	inputs := []sim.Value{uint64(111), uint64(222)}
	arena := sim.NewArena(proto)
	if _, err := arena.Run(inputs, adv, 0); err != nil {
		t.Fatal(err)
	}
	seed := int64(1)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := arena.Run(inputs, adv, seed); err != nil {
			t.Fatal(err)
		}
		seed++
	})
	const budget = 25
	if allocs > budget {
		t.Fatalf("arena run allocates %.1f times, budget %d", allocs, budget)
	}
	t.Logf("arena run: %.1f allocs", allocs)
}
