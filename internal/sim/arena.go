package sim

// Arena replays many runs of one protocol on a single reused Execution:
// the allocation-lean hot path of the Monte-Carlo estimator. Where Run
// allocates a fresh engine per call, an Arena resets the same one —
// trace maps are cleared, inbox lanes and scratch buffers truncated,
// and the RNG streams reseeded in place (see Execution.reset) — so the
// steady-state cost of a run is the protocol's own work.
//
// Determinism: Arena.Run produces a trace reflect.DeepEqual-identical
// to Run(proto, inputs, adv, seed) for every (inputs, adv, seed),
// regardless of what ran on the arena before (pinned by
// TestArenaMatchesRun).
//
// The returned *Trace and everything it references — and the AdvContext
// handed to the adversary, and any inbox slices shown to it — are
// engine-owned and valid only until the next Run call. Extract what you
// need (e.g. core.Classify) before rerunning. Observers receive the
// same live trace in RunFinished; the Observer contract already forbids
// retaining it.
//
// An Arena is not safe for concurrent use: the parallel estimator gives
// each worker its own.
type Arena struct {
	exec *Execution
}

// NewArena returns an arena for proto backed by the in-memory backend.
func NewArena(proto Protocol) *Arena {
	return &Arena{exec: newExecutionShell(proto, nil)}
}

// Run executes one protocol instance against the adversary with the
// given seed, reusing the arena's engine state, and returns the trace —
// valid only until the next Run.
func (a *Arena) Run(inputs []Value, adv Adversary, seed int64, obs ...Observer) (*Trace, error) {
	e := a.exec
	if err := e.reset(inputs, adv, seed, obs); err != nil {
		return nil, err
	}
	if err := e.SetupPhase(); err != nil {
		return nil, err
	}
	for r := 1; r <= e.TotalRounds(); r++ {
		if err := e.Step(r); err != nil {
			return nil, err
		}
	}
	return e.Finalize()
}
