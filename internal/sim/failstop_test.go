package sim

import (
	"errors"
	"fmt"
	"testing"
)

// failStopLog records FailStopObserver events alongside the full stream.
type failStopLog struct {
	NopObserver
	events []string
}

func (l *failStopLog) PartyFailStopped(round int, id PartyID, cause string) {
	l.events = append(l.events, fmt.Sprintf("p%d@r%d:%s", id, round, cause))
}

func TestFailStopConvertsPartyToAbort(t *testing.T) {
	var m Metrics
	log := &failStopLog{}
	e, err := NewExecution(exchangeProtocol{}, []Value{uint64(3), uint64(4)}, Passive{}, 1, &m, log)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetupPhase(); err != nil {
		t.Fatal(err)
	}
	// Party 1 crashes before round 1: from here on it is silent.
	if err := e.FailStop(1, 1, "connection lost"); err != nil {
		t.Fatal(err)
	}
	// Idempotent: a second report of the same party is a no-op.
	if err := e.FailStop(1, 2, "stall"); err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= e.TotalRounds(); r++ {
		if err := e.Step(r); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := e.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	info, ok := tr.FailStops[1]
	if !ok {
		t.Fatal("no FailStops entry for party 1")
	}
	if info.Round != 1 || info.Cause != "connection lost" {
		t.Errorf("FailStops[1] = %+v, want round 1 cause %q", info, "connection lost")
	}
	if !tr.FailStopped(1) || tr.FailStopped(2) {
		t.Errorf("FailStopped flags wrong: %+v", tr.FailStops)
	}
	if tr.NumCorrupted() != 0 {
		t.Errorf("fail-stop recorded as corruption: %d", tr.NumCorrupted())
	}
	if tr.NumDeviating() != 1 {
		t.Errorf("NumDeviating = %d, want 1", tr.NumDeviating())
	}
	// The crashed party produces no output; the survivor is recorded.
	if _, ok := tr.HonestOutputs[1]; ok {
		t.Error("fail-stopped party has an output record")
	}
	if _, ok := tr.HonestOutputs[2]; !ok {
		t.Error("surviving party has no output record")
	}
	// The defaulted output substitutes the crashed party's default input.
	if !ValuesEqual(tr.DefaultedOutput, uint64(4)) {
		t.Errorf("DefaultedOutput = %v, want 4 (default 0 + 4)", tr.DefaultedOutput)
	}
	if m.FailStops != 1 {
		t.Errorf("Metrics.FailStops = %d, want 1", m.FailStops)
	}
	if len(log.events) != 1 {
		t.Errorf("observer saw %d fail-stop events, want 1: %v", len(log.events), log.events)
	}
}

func TestFailStopBeforeSetupOrBadPartyRejected(t *testing.T) {
	e, err := NewExecution(exchangeProtocol{}, []Value{uint64(1), uint64(2)}, Passive{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.FailStop(1, 0, "too early"); !errors.Is(err, ErrPhase) {
		t.Errorf("FailStop before SetupPhase: %v, want ErrPhase", err)
	}
	if err := e.SetupPhase(); err != nil {
		t.Fatal(err)
	}
	if err := e.FailStop(9, 1, "no such party"); !errors.Is(err, ErrBadParty) {
		t.Errorf("FailStop(9): %v, want ErrBadParty", err)
	}
}

func TestFailStopSkipsDeliveriesToDeadParty(t *testing.T) {
	var withStop, without Metrics
	run := func(m *Metrics, stop bool) *Trace {
		e, err := NewExecution(exchangeProtocol{}, []Value{uint64(5), uint64(6)}, Passive{}, 4, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.SetupPhase(); err != nil {
			t.Fatal(err)
		}
		if stop {
			if err := e.FailStop(2, 1, "killed"); err != nil {
				t.Fatal(err)
			}
		}
		for r := 1; r <= e.TotalRounds(); r++ {
			if err := e.Step(r); err != nil {
				t.Fatal(err)
			}
		}
		tr, err := e.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	run(&without, false)
	run(&withStop, true)
	// Party 2 dead from round 1: it neither sends nor receives, so both
	// the send and delivery counts drop relative to the honest run.
	if withStop.Messages >= without.Messages {
		t.Errorf("messages %d with fail-stop, %d without — dead party still sending",
			withStop.Messages, without.Messages)
	}
	if withStop.Deliveries >= without.Deliveries {
		t.Errorf("deliveries %d with fail-stop, %d without — messages still delivered to dead party",
			withStop.Deliveries, without.Deliveries)
	}
}
