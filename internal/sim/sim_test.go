package sim

import (
	"errors"
	"math/rand"
	"testing"
)

// exchangeProtocol is a minimal two-party test protocol: each party holds
// a uint64; in round 1 both send their input to the other; in round 2
// (finalize) each outputs the sum. No hybrid setup.
type exchangeProtocol struct{}

func (exchangeProtocol) Name() string               { return "test-exchange" }
func (exchangeProtocol) NumParties() int            { return 2 }
func (exchangeProtocol) NumRounds() int             { return 1 }
func (exchangeProtocol) DefaultInput(PartyID) Value { return uint64(0) }

func (exchangeProtocol) Func(inputs []Value) Value {
	return inputs[0].(uint64) + inputs[1].(uint64)
}

func (exchangeProtocol) Setup([]Value, *rand.Rand) ([]Value, error) { return nil, nil }

func (exchangeProtocol) NewParty(id PartyID, input Value, _ Value, _ bool, _ *rand.Rand) (Party, error) {
	return &exchangeParty{id: id, input: input.(uint64)}, nil
}

type exchangeParty struct {
	id     PartyID
	input  uint64
	result uint64
	done   bool
}

func (p *exchangeParty) Round(round int, inbox []Message) ([]Message, error) {
	switch round {
	case 1:
		other := PartyID(3 - int(p.id))
		return []Message{{From: p.id, To: other, Payload: p.input}}, nil
	case 2:
		for _, m := range inbox {
			if v, ok := m.Payload.(uint64); ok {
				p.result = p.input + v
				p.done = true
			}
		}
		return nil, nil
	default:
		return nil, nil
	}
}

func (p *exchangeParty) Output() (Value, bool) {
	if !p.done {
		return nil, false
	}
	return p.result, true
}

func (p *exchangeParty) Clone() Party {
	cp := *p
	return &cp
}

// silencer corrupts one party statically and sends nothing.
type silencer struct {
	target PartyID
}

func (s *silencer) Reset(*AdvContext)                                   {}
func (s *silencer) InitialCorruptions() []PartyID                       { return []PartyID{s.target} }
func (s *silencer) SubstituteInput(_ PartyID, v Value) Value            { return v }
func (s *silencer) ObserveSetup(map[PartyID]Value) bool                 { return false }
func (s *silencer) CorruptBefore(int) []PartyID                         { return nil }
func (s *silencer) OnCorrupt(PartyID, Party, Value)                     {}
func (s *silencer) Act(int, map[PartyID][]Message, []Message) []Message { return nil }
func (s *silencer) Learned() (Value, bool)                              { return nil, false }

func TestHonestRunDelivers(t *testing.T) {
	tr, err := Run(exchangeProtocol{}, []Value{uint64(3), uint64(4)}, Passive{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumCorrupted() != 0 {
		t.Errorf("corrupted = %d, want 0", tr.NumCorrupted())
	}
	if !tr.AllHonestDelivered() {
		t.Errorf("honest run did not deliver: %+v", tr.HonestOutputs)
	}
	if !ValuesEqual(tr.ExpectedOutput, uint64(7)) {
		t.Errorf("expected output %v, want 7", tr.ExpectedOutput)
	}
	if tr.AdvLearned {
		t.Error("passive adversary marked as having learned output")
	}
}

func TestSilencedPartyDeniesOutput(t *testing.T) {
	tr, err := Run(exchangeProtocol{}, []Value{uint64(3), uint64(4)}, &silencer{target: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumCorrupted() != 1 {
		t.Fatalf("corrupted = %d, want 1", tr.NumCorrupted())
	}
	rec, ok := tr.HonestOutputs[2]
	if !ok {
		t.Fatal("no record for honest party 2")
	}
	if rec.OK {
		t.Errorf("party 2 output %v despite silent counterparty", rec.Value)
	}
	if tr.AllHonestDelivered() {
		t.Error("AllHonestDelivered true despite ⊥ output")
	}
}

func TestWrongInputCount(t *testing.T) {
	if _, err := Run(exchangeProtocol{}, []Value{uint64(1)}, Passive{}, 1); !errors.Is(err, ErrInputCount) {
		t.Errorf("err = %v, want ErrInputCount", err)
	}
}

func TestBadCorruptionTarget(t *testing.T) {
	if _, err := Run(exchangeProtocol{}, []Value{uint64(1), uint64(2)}, &silencer{target: 9}, 1); !errors.Is(err, ErrBadParty) {
		t.Errorf("err = %v, want ErrBadParty", err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	t1, err := Run(exchangeProtocol{}, []Value{uint64(5), uint64(6)}, Passive{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Run(exchangeProtocol{}, []Value{uint64(5), uint64(6)}, Passive{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !ValuesEqual(t1.HonestOutputs, t2.HonestOutputs) {
		t.Error("same seed produced different traces")
	}
}

// learner corrupts party 1, runs it honestly via the engine-provided
// machine, and reports the output it computes.
type learner struct {
	ctx     *AdvContext
	machine Party
	inbox   []Message
	learned Value
	ok      bool
}

func (l *learner) Reset(ctx *AdvContext) {
	l.ctx, l.machine, l.inbox, l.learned, l.ok = ctx, nil, nil, nil, false
}
func (l *learner) InitialCorruptions() []PartyID            { return []PartyID{1} }
func (l *learner) SubstituteInput(_ PartyID, v Value) Value { return v }
func (l *learner) ObserveSetup(map[PartyID]Value) bool      { return false }
func (l *learner) CorruptBefore(int) []PartyID              { return nil }
func (l *learner) OnCorrupt(_ PartyID, m Party, _ Value)    { l.machine = m }

func (l *learner) Act(round int, inboxes map[PartyID][]Message, _ []Message) []Message {
	// Run the corrupted machine honestly on its delivered inbox.
	out, err := l.machine.Round(round, inboxes[1])
	if err != nil {
		return nil
	}
	if v, ok := l.machine.Output(); ok {
		l.learned, l.ok = v, true
	}
	return out
}

func (l *learner) Learned() (Value, bool) { return l.learned, l.ok }

func TestLearnedClaimVerified(t *testing.T) {
	tr, err := Run(exchangeProtocol{}, []Value{uint64(10), uint64(20)}, &learner{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.AdvLearned {
		t.Error("honestly-running corrupted party should have learned the output")
	}
	if !ValuesEqual(tr.AdvValue, uint64(30)) {
		t.Errorf("AdvValue = %v, want 30", tr.AdvValue)
	}
	// Honest party 2 also delivered (learner relayed honestly).
	if !tr.AllHonestDelivered() {
		t.Error("honest party should have delivered")
	}
}

// liar claims to have learned a bogus output.
type liar struct{ silencer }

func (l *liar) Learned() (Value, bool) { return uint64(999999), true }

func TestFalseLearnedClaimRejected(t *testing.T) {
	tr, err := Run(exchangeProtocol{}, []Value{uint64(1), uint64(2)}, &liar{silencer{target: 1}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.AdvLearned {
		t.Error("engine accepted a false learned-output claim")
	}
}

// fakeExtractor claims to have extracted an input.
type fakeExtractor struct {
	silencer
	victim PartyID
	value  Value
}

func (f *fakeExtractor) ExtractedInput() (PartyID, Value, bool) { return f.victim, f.value, true }

func TestPrivacyBreachVerification(t *testing.T) {
	// Correct claim about honest party 2's input.
	adv := &fakeExtractor{silencer: silencer{target: 1}, victim: 2, value: uint64(22)}
	tr, err := Run(exchangeProtocol{}, []Value{uint64(11), uint64(22)}, adv, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.PrivacyBreach || tr.BreachedParty != 2 {
		t.Errorf("verified extraction not recorded: %+v", tr)
	}
	// Wrong value: rejected.
	adv.value = uint64(99)
	tr, err = Run(exchangeProtocol{}, []Value{uint64(11), uint64(22)}, adv, 6)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PrivacyBreach {
		t.Error("false extraction claim accepted")
	}
	// Claim about a corrupted party: rejected (no breach of corrupted).
	adv.victim, adv.value = 1, uint64(11)
	tr, err = Run(exchangeProtocol{}, []Value{uint64(11), uint64(22)}, adv, 7)
	if err != nil {
		t.Fatal(err)
	}
	if tr.PrivacyBreach {
		t.Error("extraction of corrupted party's own input counted as breach")
	}
}

// hybridProtocol exercises the setup phase: setup computes the sum and
// hands it to party 1 only; round 1 party 1 forwards it; finalize: both
// output it. Default input is 0.
type hybridProtocol struct{}

func (hybridProtocol) Name() string               { return "test-hybrid" }
func (hybridProtocol) NumParties() int            { return 2 }
func (hybridProtocol) NumRounds() int             { return 1 }
func (hybridProtocol) DefaultInput(PartyID) Value { return uint64(0) }
func (hybridProtocol) Func(inputs []Value) Value {
	return inputs[0].(uint64) + inputs[1].(uint64)
}

func (hybridProtocol) Setup(inputs []Value, _ *rand.Rand) ([]Value, error) {
	sum := inputs[0].(uint64) + inputs[1].(uint64)
	return []Value{sum, nil}, nil
}

func (hybridProtocol) NewParty(id PartyID, _ Value, setupOut Value, aborted bool, _ *rand.Rand) (Party, error) {
	return &hybridParty{id: id, setupOut: setupOut, aborted: aborted}, nil
}

type hybridParty struct {
	id       PartyID
	setupOut Value
	aborted  bool
	result   Value
	done     bool
}

func (p *hybridParty) Round(round int, inbox []Message) ([]Message, error) {
	if p.aborted {
		return nil, nil
	}
	switch round {
	case 1:
		if p.id == 1 {
			p.result, p.done = p.setupOut, true
			return []Message{{From: 1, To: 2, Payload: p.setupOut}}, nil
		}
	case 2:
		if p.id == 2 {
			for _, m := range inbox {
				p.result, p.done = m.Payload, true
			}
		}
	}
	return nil, nil
}

func (p *hybridParty) Output() (Value, bool) { return p.result, p.done }
func (p *hybridParty) Clone() Party          { cp := *p; return &cp }

// setupAborter corrupts party 1 and aborts the setup, substituting input 5.
type setupAborter struct{ sawSetup map[PartyID]Value }

func (s *setupAborter) Reset(*AdvContext)                                   { s.sawSetup = nil }
func (s *setupAborter) InitialCorruptions() []PartyID                       { return []PartyID{1} }
func (s *setupAborter) SubstituteInput(PartyID, Value) Value                { return uint64(5) }
func (s *setupAborter) ObserveSetup(o map[PartyID]Value) bool               { s.sawSetup = o; return true }
func (s *setupAborter) CorruptBefore(int) []PartyID                         { return nil }
func (s *setupAborter) OnCorrupt(PartyID, Party, Value)                     {}
func (s *setupAborter) Act(int, map[PartyID][]Message, []Message) []Message { return nil }
func (s *setupAborter) Learned() (Value, bool)                              { return nil, false }

func TestHybridSetupRuns(t *testing.T) {
	tr, err := Run(hybridProtocol{}, []Value{uint64(3), uint64(4)}, Passive{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.AllHonestDelivered() {
		t.Errorf("hybrid protocol failed honestly: %+v", tr.HonestOutputs)
	}
}

func TestInputSubstitutionAndSetupAbort(t *testing.T) {
	adv := &setupAborter{}
	tr, err := Run(hybridProtocol{}, []Value{uint64(3), uint64(4)}, adv, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.SetupAborted {
		t.Fatal("setup abort not recorded")
	}
	// Adversary saw the corrupted party's setup output for the
	// substituted inputs (5 + 4 = 9).
	if got := adv.sawSetup[1]; !ValuesEqual(got, uint64(9)) {
		t.Errorf("adversary saw setup output %v, want 9", got)
	}
	// After abort the expected output uses the DEFAULT input (0+4).
	if !ValuesEqual(tr.ExpectedOutput, uint64(4)) {
		t.Errorf("expected output after abort = %v, want 4", tr.ExpectedOutput)
	}
	if !ValuesEqual(tr.EffectiveInputs[0], uint64(0)) {
		t.Errorf("effective input 1 = %v, want default 0", tr.EffectiveInputs[0])
	}
}

func TestPassiveNeverAbortsSetup(t *testing.T) {
	// With zero corruptions ObserveSetup cannot abort (engine rule).
	tr, err := Run(hybridProtocol{}, []Value{uint64(1), uint64(1)}, Passive{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tr.SetupAborted {
		t.Error("setup aborted without corruptions")
	}
}

// adaptive corrupts party 2 before round 2 and learns its output.
type adaptive struct {
	machine Party
	learned Value
	ok      bool
}

func (a *adaptive) Reset(*AdvContext)                        { a.machine, a.learned, a.ok = nil, nil, false }
func (a *adaptive) InitialCorruptions() []PartyID            { return nil }
func (a *adaptive) SubstituteInput(_ PartyID, v Value) Value { return v }
func (a *adaptive) ObserveSetup(map[PartyID]Value) bool      { return false }
func (a *adaptive) CorruptBefore(round int) []PartyID {
	if round == 2 {
		return []PartyID{2}
	}
	return nil
}
func (a *adaptive) OnCorrupt(_ PartyID, m Party, _ Value) { a.machine = m }
func (a *adaptive) Act(round int, inboxes map[PartyID][]Message, _ []Message) []Message {
	if a.machine == nil {
		return nil
	}
	out, err := a.machine.Round(round, inboxes[2])
	if err != nil {
		return nil
	}
	if v, ok := a.machine.Output(); ok {
		a.learned, a.ok = v, true
	}
	return out
}
func (a *adaptive) Learned() (Value, bool) { return a.learned, a.ok }

func TestAdaptiveCorruptionHandsOverMachine(t *testing.T) {
	tr, err := Run(exchangeProtocol{}, []Value{uint64(2), uint64(3)}, &adaptive{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Corrupted[2] {
		t.Fatal("party 2 not corrupted")
	}
	if !tr.AdvLearned {
		t.Error("adaptively corrupted machine run honestly should learn output")
	}
	// Party 1 still delivered: party 2 sent its round-1 message while
	// honest, and the adaptive adversary ran the machine honestly after.
	if rec := tr.HonestOutputs[1]; !rec.OK || !ValuesEqual(rec.Value, uint64(5)) {
		t.Errorf("party 1 output = %+v, want 5", rec)
	}
}

// impersonator tries to send a message as an honest party.
type impersonator struct{ silencer }

func (im *impersonator) Act(int, map[PartyID][]Message, []Message) []Message {
	return []Message{{From: 2, To: 1, Payload: uint64(666)}}
}

func TestAdversaryCannotImpersonateHonest(t *testing.T) {
	adv := &impersonator{silencer{target: 1}}
	if _, err := Run(exchangeProtocol{}, []Value{uint64(1), uint64(2)}, adv, 12); err == nil {
		t.Error("engine allowed message from honest party's identity")
	}
}

func TestBroadcastReachesEveryone(t *testing.T) {
	// A protocol where party 1 broadcasts its input; everyone outputs it.
	tr, err := Run(broadcastProtocol{n: 4}, []Value{uint64(9), uint64(0), uint64(0), uint64(0)}, Passive{}, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.AllHonestDelivered() {
		t.Errorf("broadcast outputs: %+v", tr.HonestOutputs)
	}
}

type broadcastProtocol struct{ n int }

func (p broadcastProtocol) Name() string                               { return "test-broadcast" }
func (p broadcastProtocol) NumParties() int                            { return p.n }
func (p broadcastProtocol) NumRounds() int                             { return 1 }
func (p broadcastProtocol) DefaultInput(PartyID) Value                 { return uint64(0) }
func (p broadcastProtocol) Func(inputs []Value) Value                  { return inputs[0] }
func (p broadcastProtocol) Setup([]Value, *rand.Rand) ([]Value, error) { return nil, nil }
func (p broadcastProtocol) NewParty(id PartyID, input Value, _ Value, _ bool, _ *rand.Rand) (Party, error) {
	return &broadcastParty{id: id, input: input}, nil
}

type broadcastParty struct {
	id     PartyID
	input  Value
	result Value
	done   bool
}

func (p *broadcastParty) Round(round int, inbox []Message) ([]Message, error) {
	switch round {
	case 1:
		if p.id == 1 {
			return []Message{{From: 1, To: Broadcast, Payload: p.input}}, nil
		}
	case 2:
		for _, m := range inbox {
			if m.From == 1 && m.To == Broadcast {
				p.result, p.done = m.Payload, true
			}
		}
	}
	return nil, nil
}

func (p *broadcastParty) Output() (Value, bool) { return p.result, p.done }
func (p *broadcastParty) Clone() Party          { cp := *p; return &cp }

func TestValuesEqual(t *testing.T) {
	if !ValuesEqual(uint64(1), uint64(1)) {
		t.Error("equal uints")
	}
	if ValuesEqual(uint64(1), uint64(2)) {
		t.Error("unequal uints")
	}
	if ValuesEqual(uint64(1), int(1)) {
		t.Error("different types should differ")
	}
	type pair struct{ A, B uint64 }
	if !ValuesEqual(pair{1, 2}, pair{1, 2}) {
		t.Error("equal structs")
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := &Trace{
		ExpectedOutput: uint64(7),
		HonestOutputs: map[PartyID]OutputRecord{
			1: {Value: uint64(7), OK: true},
			2: {Value: uint64(9), OK: true},
		},
	}
	if tr.AllHonestDelivered() {
		t.Error("AllHonestDelivered with a wrong output")
	}
	if !tr.AnyHonestWrong() {
		t.Error("AnyHonestWrong should detect the wrong output")
	}
	tr.HonestOutputs[2] = OutputRecord{OK: false}
	if tr.AnyHonestWrong() {
		t.Error("⊥ output is not a wrong output")
	}
	if tr.AllHonestDelivered() {
		t.Error("⊥ output is not delivery")
	}
}
