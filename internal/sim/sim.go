// Package sim is the synchronous protocol-execution engine underlying all
// fairness experiments. It follows the model the paper works in (Canetti's
// synchronous MPC model with guaranteed termination):
//
//   - Parties are deterministic machines advanced in lockstep rounds and
//     connected by bilateral secure channels plus an authenticated
//     broadcast channel.
//   - The adversary is rushing: in every round it observes the honest
//     parties' messages to corrupted parties (and all broadcasts) before
//     choosing the corrupted parties' own messages.
//   - Corruption is adaptive: before any round the adversary may corrupt
//     further parties, receiving their full internal state (the machine
//     object itself).
//   - Protocols may begin with a hybrid setup phase (the paper's
//     F-hybrid model): an ideal functionality computes per-party private
//     outputs from the (possibly substituted) inputs; the adversary sees
//     the corrupted parties' setup outputs and may abort the setup,
//     modeling an abort of the unfair SFE protocol Π_GMW of phase 1.
//
// Every run is driven by a single seed, making experiments reproducible.
package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"slices"
)

// PartyID identifies a party, 1-based as in the paper (p1, p2, …, pn).
type PartyID int

// Broadcast is the pseudo-recipient for broadcast messages.
const Broadcast PartyID = 0

// Value is a protocol input or output. Implementations use comparable
// types (integers, strings, small structs); equality is checked with
// reflect.DeepEqual.
type Value any

// ValuesEqual compares two values structurally.
func ValuesEqual(a, b Value) bool { return reflect.DeepEqual(a, b) }

// Message is a round message. To == Broadcast delivers to every party and
// is visible to the adversary.
type Message struct {
	From    PartyID
	To      PartyID
	Payload any
}

// Party is one protocol machine. The engine calls Round for r = 1..R+1
// where R is the protocol's NumRounds: the extra final call delivers the
// last round's messages so the machine can finalize its output (it should
// send nothing then). A missing expected message models an abort by the
// sender; machines must handle empty inboxes per their protocol's spec.
//
// Machines must draw all randomness during construction (in NewParty):
// Round must be deterministic given the machine state and inbox, so that
// Clone yields an independent machine (clones must not share live RNG
// state with the original).
type Party interface {
	// Round consumes the messages delivered this round and returns the
	// messages to send. Errors are protocol-implementation defects, not
	// adversarial events. The returned slice may be machine-owned
	// scratch, valid only until the machine's next Round call: the
	// engine (and well-behaved adversaries) copy the messages out
	// immediately.
	Round(round int, inbox []Message) ([]Message, error)
	// Output returns the machine's final output; ok=false means ⊥.
	Output() (Value, bool)
	// Clone deep-copies the machine, enabling adversarial lookahead
	// ("would this party output if everyone else went silent?").
	Clone() Party
}

// Protocol describes a protocol to the engine.
type Protocol interface {
	// Name identifies the protocol in traces and reports.
	Name() string
	// NumParties returns n.
	NumParties() int
	// NumRounds returns the number of message rounds after setup.
	NumRounds() int
	// Func is the ideal function the protocol evaluates (single global
	// output, wlog, as in the paper).
	Func(inputs []Value) Value
	// DefaultInput is the value honest parties substitute for a party
	// that aborted (the paper's "default value").
	DefaultInput(id PartyID) Value
	// Setup runs the hybrid phase on the effective inputs, returning one
	// private output per party (index id-1), or nil if the protocol has
	// no hybrid. A protocol may return n+1 values; the extra last value
	// is hidden audit state recorded in the trace (never shown to any
	// party or the adversary). Errors are defects, not adversarial
	// aborts.
	Setup(inputs []Value, rng *rand.Rand) ([]Value, error)
	// NewParty builds party id's machine. setupOut is its private setup
	// output (nil without a hybrid); setupAborted tells the machine the
	// hybrid phase was aborted by the adversary.
	NewParty(id PartyID, input Value, setupOut Value, setupAborted bool, rng *rand.Rand) (Party, error)
}

// AdvContext gives the adversary its (worst-case environment) knowledge:
// in RPD the environment colludes with the attacker, so lower-bound
// strategies may know all inputs and the true output.
type AdvContext struct {
	Protocol   Protocol
	Inputs     []Value
	TrueOutput Value
	RNG        *rand.Rand
}

// Adversary is an attack strategy. Implementations live in package
// adversary; the zero-corruption "honest" strategy is in this package for
// engine tests.
type Adversary interface {
	// Reset prepares the strategy for a fresh run.
	Reset(ctx *AdvContext)
	// InitialCorruptions is the statically corrupted set.
	InitialCorruptions() []PartyID
	// SubstituteInput lets the adversary replace a corrupted party's
	// input before the hybrid setup runs.
	SubstituteInput(id PartyID, orig Value) Value
	// ObserveSetup shows the corrupted parties' setup outputs; returning
	// true aborts the setup phase (aborting Π_GMW).
	ObserveSetup(outputs map[PartyID]Value) bool
	// CorruptBefore may name additional parties to corrupt before the
	// given message round (adaptive corruption).
	CorruptBefore(round int) []PartyID
	// OnCorrupt hands over a newly corrupted party's machine and its
	// private setup output. machine is nil when corruption happens
	// before machines exist (initial corruption).
	OnCorrupt(id PartyID, machine Party, setupOut Value)
	// Act is the rushing step of a message round. inboxes carries the
	// messages delivered to each corrupted party this round (sent in the
	// previous round); rushed contains the honest messages addressed to
	// corrupted parties plus all honest broadcasts *of this round*,
	// which the rushing adversary sees before committing its own. The
	// return value is the corrupted parties' messages for this round.
	Act(round int, inboxes map[PartyID][]Message, rushed []Message) []Message
	// Learned reports whether the adversary's view determined the
	// evaluation output, and the value it learned. The engine verifies
	// the claim against the expected output before trusting it.
	Learned() (Value, bool)
}

// InputExtractor is an optional adversary capability: claiming to have
// extracted an honest party's private input (a privacy breach). The
// engine verifies the claim against the party's true input.
type InputExtractor interface {
	ExtractedInput() (PartyID, Value, bool)
}

// AdversaryCloner is an optional Adversary capability: producing an
// independent strategy with the same configuration but no shared mutable
// state, so the parallel estimator can hand one copy to each worker.
// Because Reset runs before every simulation, a clone only needs to
// reproduce the strategy's configuration (targets, stop rounds, wrapped
// sub-strategies), never its per-run state. CloneAdversary may return nil
// to signal that this particular instance cannot be cloned (e.g. a mixer
// wrapping a non-cloneable strategy).
type AdversaryCloner interface {
	CloneAdversary() Adversary
}

// CloneAdversary returns an independent copy of adv if the strategy
// supports cloning, and reports whether it does. Callers that receive
// ok=false must not share adv across goroutines and should fall back to
// sequential execution.
func CloneAdversary(adv Adversary) (Adversary, bool) {
	c, ok := adv.(AdversaryCloner)
	if !ok {
		return nil, false
	}
	clone := c.CloneAdversary()
	if clone == nil {
		return nil, false
	}
	return clone, true
}

// RoundAborter is an optional Adversary capability: reporting the wire
// round at which the strategy went silent in its most recent run, for
// the estimator's abort-round stratification (core.WithAbortRoundStrata).
// aborted=false means the run completed without an adversarial abort.
// The report must describe the run that just finished — implementations
// clear it in Reset — and a strategy that never aborts simply does not
// implement the interface.
type RoundAborter interface {
	AbortedRound() (round int, aborted bool)
}

// ReusableParty is an optional Party capability for the estimation hot
// path: Reinit re-initializes the machine in place for a new run of the
// same protocol, sparing the allocation of a fresh machine. A
// successful Reinit must leave the machine observably indistinguishable
// from one freshly built by Protocol.NewParty with the same arguments.
// Returning false declines (wrong setup-output shape, incompatible
// parameters); the backend then falls back to NewParty, so declining is
// always safe.
type ReusableParty interface {
	Reinit(id PartyID, input Value, setupOut Value, setupAborted bool, rng *rand.Rand) bool
}

// PartyCopier is an optional Party capability: CopyFrom overwrites the
// receiver with a deep copy of src, so lookahead strategies can reuse
// one clone machine per party instead of allocating a fresh clone per
// inspection. It returns false when src's concrete type is not the
// receiver's; callers then fall back to Clone. The same independence
// contract as Clone applies: after CopyFrom the receiver must share no
// mutable state with src.
type PartyCopier interface {
	CopyFrom(src Party) bool
}

// ScratchSetupProtocol is an optional Protocol capability for the
// estimation hot path: NewSetupScratch returns a setup evaluator that
// the engine uses in place of Protocol.Setup for every run of one
// Execution. The evaluator may reuse internal buffers — the engine
// treats the returned slice and its values as valid only until the next
// setup call on the same Execution (parties copy what they keep, and
// adversaries may hold setup outputs only for the duration of the run).
// It must be semantically identical to Setup: same outputs, same
// randomness consumption, same errors.
type ScratchSetupProtocol interface {
	NewSetupScratch() func(inputs []Value, rng *rand.Rand) ([]Value, error)
}

// AuditedParty is an optional Party capability: exposing protocol-
// internal audit data (e.g. "last iteration with a valid share") that the
// trace records for honest parties. Audit data never reaches the
// adversary; it exists so a LearnedAuditor can reconstruct ideal-world
// events that the message transcript alone cannot pin down.
type AuditedParty interface {
	AuditInfo() Value
}

// OutcomeAudit is a protocol-issued override of the trace's default
// event bookkeeping (see OutcomeAuditor).
type OutcomeAudit struct {
	// Learned: the adversary's view genuinely determined the output.
	Learned bool
	// LearnedValue is the learned output when Learned.
	LearnedValue Value
	// Delivered: every honest party received a simulatable output (the
	// real one, or the default-input evaluation).
	Delivered bool
	// RandomReplaced: an honest output was replaced by a draw from the
	// F_sfe^$ distribution (the randomized-abort event of Appendix C.2).
	RandomReplaced bool
}

// OutcomeAuditor is an optional Protocol capability overriding the
// engine's default value-equality bookkeeping with hybrid-internal
// knowledge. The Gordon–Katz protocols need it twice over: an adversary
// aborting before the switch round i* may hold a value that coincides
// with the real output without having learned anything, and for small-
// range functions an honest party's random replacement may coincide with
// the real or defaulted output without being a delivery. AuditOutcome
// inspects the finished trace (including SetupAudit and HonestAudits).
type OutcomeAuditor interface {
	AuditOutcome(tr *Trace) OutcomeAudit
}

// SetupAbortPolicy is an optional Protocol capability restricting the
// adversary's power to abort the hybrid setup. Robust honest-majority
// hybrids (e.g. the fully secure Π_GMW^{1/2} of Lemma 17) guarantee
// output delivery below their corruption threshold, so an abort request
// from a small coalition simply has no effect.
type SetupAbortPolicy interface {
	// SetupAbortable reports whether a coalition of the given size can
	// abort the setup phase.
	SetupAbortable(corrupted int) bool
}

// OutputRecord is one honest party's final output.
type OutputRecord struct {
	Value Value
	OK    bool // false = ⊥
}

// FailStopInfo records one fail-stop abort: an honest party that stopped
// participating because of an unrecoverable infrastructure failure (a
// crashed client, an exhausted reconnect budget). The engine degrades
// the failure into the model's abort adversary — the party falls silent
// and surviving honest parties substitute its default input — so the
// fairness machinery prices real faults exactly like adversarial aborts
// instead of erroring out.
type FailStopInfo struct {
	// Round is the wire round the failure was detected in (0 = during
	// the setup phase).
	Round int
	// Cause is a canonical, deterministic description of the failure
	// ("connection lost; no resume within 150ms", …).
	Cause string
}

// Trace records everything the fairness classifier needs about one run.
type Trace struct {
	ProtocolName string
	// Inputs are the environment-chosen inputs; EffectiveInputs reflect
	// adversarial substitution of corrupted parties' inputs at setup.
	Inputs          []Value
	EffectiveInputs []Value
	// ExpectedOutput is the output the ideal functionality would deliver
	// given the effective inputs (or, after a setup abort, the honest
	// inputs with defaults substituted for corrupted parties).
	ExpectedOutput Value
	// DefaultedOutput is f on the honest inputs with the protocol's
	// default inputs substituted for every corrupted party: the output an
	// honest party computes locally after detecting a mid-protocol abort
	// (the paper's "takes a default value as the input of the corrupted
	// party"). Delivering it corresponds to the simulator sending the
	// default input to the functionality — event E01.
	DefaultedOutput Value
	// HybridOutput is f on the inputs the hybrid setup actually ran on
	// (the effective inputs before any abort-triggered default
	// substitution) — the value an adversary could have learned from the
	// hybrid even if it subsequently aborted the setup.
	HybridOutput Value
	// SetupAudit is the hidden audit state a Setup may emit (the n+1-th
	// return value); nil otherwise.
	SetupAudit Value
	// Audit is the protocol's OutcomeAudit override, when the protocol
	// implements OutcomeAuditor; nil otherwise.
	Audit *OutcomeAudit
	// HonestAudits collects AuditInfo() from honest machines that
	// implement AuditedParty.
	HonestAudits  map[PartyID]Value
	SetupAborted  bool
	Corrupted     map[PartyID]bool
	HonestOutputs map[PartyID]OutputRecord
	// FailStops records parties converted into fail-stop aborts by
	// infrastructure failures (nil when none occurred). Fail-stopped
	// parties are neither corrupted nor honest: they produce no output,
	// and the classifier counts them as abort-adversary corruptions.
	FailStops map[PartyID]FailStopInfo
	// AdvLearned is the engine-verified flag that the adversary's view
	// determined the output; AdvValue is the learned value.
	AdvLearned bool
	AdvValue   Value
	// PrivacyBreach is set when the adversary demonstrably extracted an
	// honest party's input (claim verified against the true input).
	PrivacyBreach bool
	// BreachedParty is the victim when PrivacyBreach is set.
	BreachedParty PartyID
	// RoundsRun counts executed message rounds (including the finalize
	// call).
	RoundsRun int
}

// NumCorrupted returns t, the corruption count.
func (tr *Trace) NumCorrupted() int { return len(tr.Corrupted) }

// FailStopped reports whether party id fail-stopped during the run.
func (tr *Trace) FailStopped(id PartyID) bool {
	_, ok := tr.FailStops[id]
	return ok
}

// NumDeviating returns the number of parties that deviated from the
// protocol: corrupted by the adversary or fail-stopped by an
// infrastructure failure. This is the effective t the fail-stop-to-abort
// degradation prices runs with — a crashed party is indistinguishable
// from a corrupted party that aborted at the same round.
func (tr *Trace) NumDeviating() int {
	n := len(tr.Corrupted)
	for id := range tr.FailStops {
		if !tr.Corrupted[id] {
			n++
		}
	}
	return n
}

// AllHonestDelivered reports whether every honest party produced a
// simulatable output: either all got the expected output, or all got the
// defaulted output (the local re-computation after a detected abort).
// With no honest parties it is vacuously true.
func (tr *Trace) AllHonestDelivered() bool {
	if tr.Audit != nil {
		return tr.Audit.Delivered
	}
	expected, defaulted := true, true
	for _, rec := range tr.HonestOutputs {
		if !rec.OK {
			return false
		}
		if !ValuesEqual(rec.Value, tr.ExpectedOutput) {
			expected = false
		}
		if !ValuesEqual(rec.Value, tr.DefaultedOutput) {
			defaulted = false
		}
	}
	return expected || defaulted
}

// AnyHonestWrong reports whether some honest party output a non-⊥ value
// that is neither the expected nor the defaulted output — a correctness
// violation (possible only for the Gordon–Katz-style protocols).
func (tr *Trace) AnyHonestWrong() bool {
	if tr.Audit != nil {
		return tr.Audit.RandomReplaced
	}
	for _, rec := range tr.HonestOutputs {
		if rec.OK && !ValuesEqual(rec.Value, tr.ExpectedOutput) &&
			!ValuesEqual(rec.Value, tr.DefaultedOutput) {
			return true
		}
	}
	return false
}

// Errors returned by Run.
var (
	ErrInputCount = errors.New("sim: wrong number of inputs")
	ErrBadParty   = errors.New("sim: corruption of unknown party")
)

// Run executes one protocol instance against the adversary with the given
// seed and returns the trace. It is a thin wrapper over the stepwise
// Execution engine (NewExecution → SetupPhase → Step → Finalize); callers
// that need per-round control or the engine's event stream use Execution
// and Observer directly.
func Run(proto Protocol, inputs []Value, adv Adversary, seed int64) (*Trace, error) {
	return RunObserved(proto, inputs, adv, seed)
}

// RunObserved is Run with the engine's event stream fanned out to the
// given observers (see the ordering contract on Observer).
func RunObserved(proto Protocol, inputs []Value, adv Adversary, seed int64, obs ...Observer) (*Trace, error) {
	e, err := NewExecution(proto, inputs, adv, seed, obs...)
	if err != nil {
		return nil, err
	}
	if err := e.SetupPhase(); err != nil {
		return nil, err
	}
	for r := 1; r <= e.TotalRounds(); r++ {
		if err := e.Step(r); err != nil {
			return nil, err
		}
	}
	return e.Finalize()
}

func sortStableBySender(ms []Message) {
	slices.SortStableFunc(ms, func(a, b Message) int { return int(a.From) - int(b.From) })
}
