package sim

import (
	"fmt"

	"repro/internal/rng"
)

// Compiled execution plans.
//
// The generic engine re-derives everything per run: five RNG streams are
// fully seeded (the dominant cost — each Seed warms up 607 state words),
// machines are rebuilt, and message lanes grow from empty. For a fixed
// (protocol, adversary) pair almost all of that structure is identical
// across runs: the round count, the corruption schedule, the per-stream
// randomness consumption, and the per-round lane shapes are properties
// of the pair, not of the inputs or the seed.
//
// CompilePlan runs the interpreter once in recording mode to capture
// that structure; a PlanRunner then replays runs on a private Execution
// whose streams are pre-drawn slabs sized by the plan (internal/rng's
// SlabSource) and whose lanes and scratch are pre-sized to the recorded
// shapes. Replay drives the same state machine as the interpreter — the
// semantics are shared, only the stream construction and buffer sizing
// are specialized — so a plan-driven run is bit-identical to an
// interpreted one by construction, and the estimator's frozen
// equivalence matrix (core.TestCompiledMatchesInterpreted*) pins it.
//
// Stream offsets recorded by the plan are a prediction, not a contract:
// a run that consumes more than its slab (an adversary mixing
// sub-strategies, a rejection-sampling long tail) transparently falls
// back to the full stream construction mid-run and stays exact; the
// runner then raises that stream's pre-draw for subsequent runs.

// execStreams bundles the slab sources behind a plan-driven Execution's
// engine streams (the party streams live in the backend).
type execStreams struct {
	master *rng.SlabSource
	proto  *rng.SlabSource
	adv    *rng.SlabSource
}

func newExecStreams() *execStreams {
	return &execStreams{
		master: rng.NewSlabSource(),
		proto:  rng.NewSlabSource(),
		adv:    rng.NewSlabSource(),
	}
}

// Plan is the compiled per-pair schedule: the structure of one
// (protocol, adversary) pair's runs as recorded from a probe run of the
// interpreter on the protocol's default inputs. A Plan is immutable
// after compilation and may back any number of PlanRunners concurrently
// (each runner keeps private adaptive state).
type Plan struct {
	proto       Protocol
	n           int
	totalRounds int

	// Recorded structure of the probe run.

	// Corrupted is the statically corrupted set, ascending.
	corrupted []PartyID
	// setupAborted records the adversary's setup-abort decision.
	setupAborted bool
	// adaptive[r-1] counts adaptive corruptions before round r.
	adaptive []int
	// laneCap[i] is the high-water inbox length of party i+1 across all
	// rounds; msgCap the high-water per-round send count.
	laneCap []int
	msgCap  int

	// Recorded RNG stream consumption (draw counts per run).
	protoDraws int
	advDraws   int
	partyDraws []int
}

// Corrupted returns the statically corrupted set the probe recorded,
// ascending. The slice is the plan's own; callers must not mutate it.
func (p *Plan) Corrupted() []PartyID { return p.corrupted }

// SetupAborted reports the probe run's setup-abort decision.
func (p *Plan) SetupAborted() bool { return p.setupAborted }

// StreamDraws returns the probe run's RNG consumption: the protocol
// stream, the adversary stream, and one count per party stream.
func (p *Plan) StreamDraws() (proto, adv int, party []int) {
	return p.protoDraws, p.advDraws, append([]int(nil), p.partyDraws...)
}

// planRecorder captures the structural schedule during the probe run.
type planRecorder struct {
	NopObserver
	n            int
	corrupted    []PartyID
	setupAborted bool
	adaptive     []int
	laneCap      []int
	laneCur      []int
	msgCap       int
	msgCur       int
}

func (r *planRecorder) PartyCorrupted(round int, id PartyID) {
	if round == 0 {
		r.corrupted = append(r.corrupted, id)
		return
	}
	for len(r.adaptive) < round {
		r.adaptive = append(r.adaptive, 0)
	}
	r.adaptive[round-1]++
}

func (r *planRecorder) SetupFinished(aborted bool) { r.setupAborted = aborted }

func (r *planRecorder) RoundStarted(int) {
	for i := range r.laneCur {
		r.laneCur[i] = 0
	}
	r.msgCur = 0
}

func (r *planRecorder) MessageDelivered(_ int, to PartyID, _ Message) {
	r.laneCur[to-1]++
	if r.laneCur[to-1] > r.laneCap[to-1] {
		r.laneCap[to-1] = r.laneCur[to-1]
	}
}

func (r *planRecorder) MessageSent(int, Message, bool) {
	r.msgCur++
	if r.msgCur > r.msgCap {
		r.msgCap = r.msgCur
	}
}

// planProbeSeed seeds the recording run. Any fixed seed works — the
// recorded shapes are a starting prediction that runners refine — but it
// must be deterministic so compiling is reproducible.
const planProbeSeed int64 = 1

// CompilePlan compiles the execution plan for one (protocol, adversary)
// pair by running the Execution state machine once in recording mode on
// the protocol's default inputs. Pairs whose probe run fails are not
// compilable; callers fall back to the plain interpreter. The adversary
// is driven through one run (its per-run state is disturbed exactly as
// any run disturbs it — Reset restores it); the compiled plan itself
// holds no adversary state, so one plan serves clones of the adversary
// as well.
func CompilePlan(proto Protocol, adv Adversary) (*Plan, error) {
	n := proto.NumParties()
	inputs := make([]Value, n)
	for i := range inputs {
		inputs[i] = proto.DefaultInput(PartyID(i + 1))
	}

	backend := newSlabBackend(proto)
	e := newExecutionShell(proto, backend)
	st := newExecStreams()
	e.streams = st
	rec := &planRecorder{n: n, laneCap: make([]int, n), laneCur: make([]int, n)}

	if err := e.reset(inputs, adv, planProbeSeed, []Observer{rec}); err != nil {
		return nil, fmt.Errorf("sim: compile plan: %w", err)
	}
	if err := e.SetupPhase(); err != nil {
		return nil, fmt.Errorf("sim: compile plan: %w", err)
	}
	for r := 1; r <= e.TotalRounds(); r++ {
		if err := e.Step(r); err != nil {
			return nil, fmt.Errorf("sim: compile plan: %w", err)
		}
	}
	if _, err := e.Finalize(); err != nil {
		return nil, fmt.Errorf("sim: compile plan: %w", err)
	}

	p := &Plan{
		proto:        proto,
		n:            n,
		totalRounds:  e.TotalRounds(),
		corrupted:    rec.corrupted,
		setupAborted: rec.setupAborted,
		adaptive:     rec.adaptive,
		laneCap:      rec.laneCap,
		msgCap:       rec.msgCap,
		protoDraws:   st.proto.Served(),
		advDraws:     st.adv.Served(),
		partyDraws:   make([]int, n),
	}
	for i, src := range backend.sources {
		p.partyDraws[i] = src.Served()
	}
	return p, nil
}

// PlanRunner replays a compiled plan: the estimator's hot path. It owns
// a private Execution whose five RNG streams are slab sources sized by
// the plan's recorded draw counts, and whose lanes and scratch buffers
// are pre-sized to the recorded shapes, so a steady-state run performs
// no engine allocation and no full stream seeding. Run has the exact
// signature and semantics of Arena.Run — same traces, same errors, same
// observer event stream — and the same validity rule: the returned
// trace lives until the next Run.
//
// A PlanRunner is not safe for concurrent use; the parallel estimator
// builds one per worker from a shared Plan.
type PlanRunner struct {
	plan    *Plan
	exec    *Execution
	streams *execStreams
	backend *localBackend

	// Adaptive per-stream pre-draw sizes, seeded from the plan and
	// raised whenever a run overdraws its slab.
	protoWant int
	advWant   int
	partyWant []int
}

// NewPlanRunner builds a runner for the plan.
func NewPlanRunner(plan *Plan) *PlanRunner {
	backend := newSlabBackend(plan.proto)
	e := newExecutionShell(plan.proto, backend)
	st := newExecStreams()
	e.streams = st

	// Pre-size the message lanes and send buffers to the recorded
	// shapes, so even the first runs grow nothing.
	n := plan.n
	e.inboxes = make([][]Message, n)
	e.spare = make([][]Message, n)
	for i := 0; i < n; i++ {
		e.inboxes[i] = make([]Message, 0, plan.laneCap[i])
		e.spare[i] = make([]Message, 0, plan.laneCap[i])
	}
	e.honestOut = make([]Message, 0, plan.msgCap)
	e.rushed = make([]Message, 0, plan.msgCap)

	return &PlanRunner{
		plan:      plan,
		exec:      e,
		streams:   st,
		backend:   backend,
		protoWant: plan.protoDraws,
		advWant:   plan.advDraws,
		partyWant: append([]int(nil), plan.partyDraws...),
	}
}

// Run executes one planned run. See Arena.Run for the contract.
func (p *PlanRunner) Run(inputs []Value, adv Adversary, seed int64, obs ...Observer) (*Trace, error) {
	p.streams.proto.SetWant(p.protoWant)
	p.streams.adv.SetWant(p.advWant)
	for i, src := range p.backend.sources {
		src.SetWant(p.partyWant[i])
	}

	e := p.exec
	if err := e.reset(inputs, adv, seed, obs); err != nil {
		return nil, err
	}
	if err := e.SetupPhase(); err != nil {
		return nil, err
	}
	for r := 1; r <= e.TotalRounds(); r++ {
		if err := e.Step(r); err != nil {
			return nil, err
		}
	}
	tr, err := e.Finalize()
	if err != nil {
		return nil, err
	}

	// Adaptive refinement: a stream that overdrew its slab paid one full
	// reseed this run; raise its pre-draw so subsequent runs do not.
	if s := p.streams.proto.Served(); s > p.protoWant {
		p.protoWant = s
	}
	if s := p.streams.adv.Served(); s > p.advWant {
		p.advWant = s
	}
	for i, src := range p.backend.sources {
		if s := src.Served(); s > p.partyWant[i] {
			p.partyWant[i] = s
		}
	}
	return tr, nil
}
