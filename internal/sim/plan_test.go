package sim_test

// Compiled-plan parity: a PlanRunner replaying a compiled plan must
// produce traces reflect.DeepEqual-identical to a plain Arena — and
// hence to one-shot sim.Run (arena_test.go) and the frozen legacy
// engine (parity_test.go) — for every protocol × adversary pair, at
// every seed, including the observer event stream. Plans change stream
// construction and buffer sizing, never semantics; these tests pin that.

import (
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/protocols/twoparty"
	"repro/internal/sim"
)

func TestPlanRunnerMatchesArena(t *testing.T) {
	for _, tc := range parityCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			proto, inputs, err := tc.proto()
			if err != nil {
				t.Fatal(err)
			}
			plan, err := sim.CompilePlan(proto, tc.newAdv())
			if err != nil {
				// Not compilable: the estimator falls back to the plain
				// interpreter for such pairs, so there is nothing to pin.
				t.Skipf("pair not compilable: %v", err)
			}
			runner := sim.NewPlanRunner(plan)
			arena := sim.NewArena(proto)
			// One adversary instance per engine across every run — exactly
			// how the estimator drives them (Reset per run).
			planAdv := tc.newAdv()
			arenaAdv := tc.newAdv()
			for seed := int64(-3); seed < 12; seed++ {
				var gotM, wantM sim.Metrics
				got, gotErr := runner.Run(inputs, planAdv, seed, &gotM)
				want, wantErr := arena.Run(inputs, arenaAdv, seed, &wantM)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("seed %d: arena err %v, plan err %v", seed, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seed %d: traces diverge\narena: %+v\nplan:  %+v", seed, want, got)
				}
				if wantM != gotM {
					t.Fatalf("seed %d: metrics diverge\narena: %+v\nplan:  %+v", seed, wantM, gotM)
				}
			}
		})
	}
}

// TestCompilePlanRecordsStructure pins the recorded schedule for the
// canonical pair: ΠOpt-2SFE under lock-abort corrupts exactly party 1
// statically, never aborts the setup, and consumes randomness on the
// master-derived streams.
func TestCompilePlanRecordsStructure(t *testing.T) {
	proto := twoparty.New(twoparty.Swap())
	plan, err := sim.CompilePlan(proto, adversary.NewLockAbort(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Corrupted(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("corrupted = %v, want [1]", got)
	}
	if plan.SetupAborted() {
		t.Fatal("setup abort recorded for a non-aborting adversary")
	}
	protoDraws, advDraws, partyDraws := plan.StreamDraws()
	if protoDraws == 0 {
		t.Fatal("no protocol-stream draws recorded (setup deals a sharing)")
	}
	if advDraws != 0 {
		t.Fatalf("adv draws = %d, want 0 (lock-abort is deterministic)", advDraws)
	}
	if len(partyDraws) != 2 {
		t.Fatalf("party draw counts = %v, want one per party", partyDraws)
	}
}

// TestCompilePlanProbeFailure pins the fallback trigger: a pair whose
// probe run errors is not compilable, and CompilePlan says so instead of
// returning a broken plan.
func TestCompilePlanProbeFailure(t *testing.T) {
	bad := twoparty.New(twoparty.Function{
		Name: "out-of-range",
		Eval: func(x1, x2 uint64) uint64 { return ^uint64(0) },
	})
	if _, err := sim.CompilePlan(bad, adversary.NewLockAbort(1)); err == nil {
		t.Fatal("CompilePlan succeeded for a protocol whose setup always fails")
	}
}

// hungryAdv draws a seed-dependent amount of adversary-stream randomness
// per run, so early runs overdraw the plan's recorded slab sizes and
// exercise the mid-run fallback plus the runner's adaptive refinement.
type hungryAdv struct {
	sim.Passive
	draws func(seed int64) int
	n     int64
}

func (h *hungryAdv) Reset(ctx *sim.AdvContext) {
	h.n++
	for i := h.draws(h.n); i > 0; i-- {
		ctx.RNG.Int63()
	}
}

func (h *hungryAdv) CloneAdversary() sim.Adversary { return &hungryAdv{draws: h.draws} }

func TestPlanRunnerAdaptiveOverdraw(t *testing.T) {
	proto := twoparty.New(twoparty.Swap())
	inputs := []sim.Value{uint64(111), uint64(222)}
	draws := func(run int64) int { return int(run%7) * 97 }
	plan, err := sim.CompilePlan(proto, &hungryAdv{draws: draws})
	if err != nil {
		t.Fatal(err)
	}
	runner := sim.NewPlanRunner(plan)
	arena := sim.NewArena(proto)
	planAdv := &hungryAdv{draws: draws}
	arenaAdv := &hungryAdv{draws: draws}
	for seed := int64(0); seed < 30; seed++ {
		got, err := runner.Run(inputs, planAdv, seed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := arena.Run(inputs, arenaAdv, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: traces diverge under overdraw", seed)
		}
	}
}

// TestPlanRunnerAllocs pins the tentpole's allocation property at the
// engine level: a steady-state planned ΠOpt-2SFE run with small inputs
// performs no engine allocation.
func TestPlanRunnerAllocs(t *testing.T) {
	proto := twoparty.New(twoparty.Millionaires())
	plan, err := sim.CompilePlan(proto, adversary.NewLockAbort(1))
	if err != nil {
		t.Fatal(err)
	}
	runner := sim.NewPlanRunner(plan)
	adv := adversary.NewLockAbort(1)
	inputs := []sim.Value{uint64(111), uint64(222)}
	// Warm up past first-run growth (adaptive wants, lane reuse).
	for seed := int64(0); seed < 8; seed++ {
		if _, err := runner.Run(inputs, adv, seed); err != nil {
			t.Fatal(err)
		}
	}
	seed := int64(100)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := runner.Run(inputs, adv, seed); err != nil {
			t.Fatal(err)
		}
		seed++
	})
	if allocs > 2 {
		t.Fatalf("planned run allocates %.1f/run, budget 2", allocs)
	}
	t.Logf("planned run: %.1f allocs/run", allocs)
}

// TestPlanRunnerErrorsMatchArena pins that a planned run fails exactly
// as an interpreted run fails — same error, no partial state leaking
// into the next run.
func TestPlanRunnerErrorsMatchArena(t *testing.T) {
	// Output range depends on the inputs: the probe run (default inputs,
	// in range) compiles fine, and only the poisoned input errors.
	proto := twoparty.New(twoparty.Function{
		Name: "sometimes-out-of-range",
		Eval: func(x1, x2 uint64) uint64 {
			if x1 == 13 {
				return ^uint64(0)
			}
			return x1 + x2
		},
	})
	plan, err := sim.CompilePlan(proto, adversary.NewLockAbort(1))
	if err != nil {
		t.Fatal(err)
	}
	runner := sim.NewPlanRunner(plan)
	arena := sim.NewArena(proto)
	adv := adversary.NewLockAbort(1)
	bad := []sim.Value{uint64(13), uint64(2)}
	good := []sim.Value{uint64(5), uint64(9)}
	wantErr := func(e error) string {
		if e == nil {
			return "<nil>"
		}
		return e.Error()
	}
	_, planErr := runner.Run(bad, adv, 3)
	_, arenaErr := arena.Run(bad, adv, 3)
	if planErr == nil || wantErr(planErr) != wantErr(arenaErr) {
		t.Fatalf("error mismatch: plan %v, arena %v", planErr, arenaErr)
	}
	// The failed run must not poison the next one.
	got, err := runner.Run(good, adv, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := arena.Run(good, adv, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("post-error traces diverge")
	}
}
