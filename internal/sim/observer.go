package sim

// Observer receives the event stream of one execution as the engine
// steps through its phases. Observers are engine-side instrumentation —
// the experimenter's lens, not part of the adversarial model: they see
// every message (including honest-to-honest traffic a rushing adversary
// never sees), so an Observer must never be handed to an Adversary.
//
// Event ordering contract, per run:
//
//	RunStarted
//	PartyCorrupted(0, id)*          static corruptions, ascending id
//	InputSubstituted(id, …)*        corrupted parties, ascending id
//	SetupFinished(aborted)
//	for each round r = 1..NumRounds()+1:
//	    RoundStarted(r)
//	    PartyCorrupted(r, id)*      adaptive corruptions, in CorruptBefore order
//	    MessageDelivered(r, to, m)* ascending recipient id, inbox order
//	    MessageSent(r, m, false)*   honest senders, ascending id
//	    MessageSent(r, m, true)*    the adversary's messages, in Act order
//	    RoundEnded(r)
//	OutputProduced(id, rec)*        honest parties, ascending id
//	RunFinished(tr)                 trace carries learned/breach verdicts
//
// Messages sent in round r are delivered at the start of round r+1; the
// MessageDelivered events of round r therefore replay the sends of round
// r−1 (routing included: a broadcast delivers to every party, a message
// to a corrupted party is consumed by the adversary).
//
// Callbacks run synchronously on the engine goroutine. Implementations
// must not retain the *Trace or mutate Message payloads; the parallel
// estimator gives every worker its own Observer, so implementations need
// no internal locking unless they share state across runs themselves.
type Observer interface {
	// RunStarted opens the stream: the protocol and the environment's
	// input vector.
	RunStarted(proto Protocol, inputs []Value)
	// PartyCorrupted reports a corruption; round 0 is static corruption
	// before setup, round r ≥ 1 is adaptive corruption before round r.
	PartyCorrupted(round int, id PartyID)
	// InputSubstituted reports the adversary replacing a corrupted
	// party's input before the hybrid setup (orig may equal substituted).
	InputSubstituted(id PartyID, orig, substituted Value)
	// SetupFinished closes the hybrid setup phase.
	SetupFinished(aborted bool)
	// RoundStarted opens message round r (r = NumRounds()+1 is the
	// finalize round).
	RoundStarted(round int)
	// MessageDelivered reports message m entering party to's inbox (or
	// the adversary's view, when to is corrupted) in round round.
	MessageDelivered(round int, to PartyID, m Message)
	// MessageSent reports a message committed in round round; corrupt
	// marks adversarial senders.
	MessageSent(round int, m Message, corrupt bool)
	// RoundEnded closes message round r.
	RoundEnded(round int)
	// OutputProduced reports one honest party's final output.
	OutputProduced(id PartyID, rec OutputRecord)
	// RunFinished closes the stream with the finished trace (learned and
	// privacy-breach verdicts are already verified).
	RunFinished(tr *Trace)
}

// FailStopObserver is an optional Observer extension receiving
// fail-stop abort events (Execution.FailStop): an honest party removed
// from the run by an unrecoverable infrastructure failure. It is a
// separate interface — not part of Observer — because fail-stops only
// occur in executions driven by a fallible transport; the in-memory
// engine's event stream (and its frozen parity contract) is unchanged.
// The event fires between RoundEnded(round) and the next RoundStarted
// when the transport detects the loss after a Step, or after
// SetupFinished with round 0 for setup-phase losses.
type FailStopObserver interface {
	// PartyFailStopped reports party id fail-stopping: detected in wire
	// round round (0 = setup phase), with a canonical cause description.
	PartyFailStopped(round int, id PartyID, cause string)
}

// NopObserver implements Observer with no-ops; embed it to implement
// only the events of interest.
type NopObserver struct{}

var _ Observer = NopObserver{}

// RunStarted implements Observer.
func (NopObserver) RunStarted(Protocol, []Value) {}

// PartyCorrupted implements Observer.
func (NopObserver) PartyCorrupted(int, PartyID) {}

// InputSubstituted implements Observer.
func (NopObserver) InputSubstituted(PartyID, Value, Value) {}

// SetupFinished implements Observer.
func (NopObserver) SetupFinished(bool) {}

// RoundStarted implements Observer.
func (NopObserver) RoundStarted(int) {}

// MessageDelivered implements Observer.
func (NopObserver) MessageDelivered(int, PartyID, Message) {}

// MessageSent implements Observer.
func (NopObserver) MessageSent(int, Message, bool) {}

// RoundEnded implements Observer.
func (NopObserver) RoundEnded(int) {}

// OutputProduced implements Observer.
func (NopObserver) OutputProduced(PartyID, OutputRecord) {}

// RunFinished implements Observer.
func (NopObserver) RunFinished(*Trace) {}

// Metrics counts engine events. It is both a plain value (mergeable with
// Add, so per-worker counters aggregate into one total) and an Observer:
// attach a *Metrics to an Execution and read the fields afterwards.
type Metrics struct {
	// Runs counts completed executions (RunFinished events).
	Runs int64
	// Rounds counts executed message rounds, finalize round included.
	Rounds int64
	// Messages counts committed messages (honest and adversarial).
	Messages int64
	// Broadcasts counts the subset of Messages sent to Broadcast.
	Broadcasts int64
	// Deliveries counts inbox deliveries (a broadcast delivers n times).
	Deliveries int64
	// Corruptions counts corruption events (static and adaptive).
	Corruptions int64
	// SetupAborts counts runs whose hybrid setup the adversary aborted.
	SetupAborts int64
	// FailStops counts fail-stop aborts: honest parties removed from a
	// run by unrecoverable infrastructure failures (Execution.FailStop).
	FailStops int64
}

var (
	_ Observer         = (*Metrics)(nil)
	_ FailStopObserver = (*Metrics)(nil)
)

// Add accumulates another metrics value into m.
func (m *Metrics) Add(o Metrics) {
	m.Runs += o.Runs
	m.Rounds += o.Rounds
	m.Messages += o.Messages
	m.Broadcasts += o.Broadcasts
	m.Deliveries += o.Deliveries
	m.Corruptions += o.Corruptions
	m.SetupAborts += o.SetupAborts
	m.FailStops += o.FailStops
}

// RunStarted implements Observer.
func (m *Metrics) RunStarted(Protocol, []Value) {}

// PartyCorrupted implements Observer.
func (m *Metrics) PartyCorrupted(int, PartyID) { m.Corruptions++ }

// InputSubstituted implements Observer.
func (m *Metrics) InputSubstituted(PartyID, Value, Value) {}

// SetupFinished implements Observer.
func (m *Metrics) SetupFinished(aborted bool) {
	if aborted {
		m.SetupAborts++
	}
}

// RoundStarted implements Observer.
func (m *Metrics) RoundStarted(int) { m.Rounds++ }

// MessageDelivered implements Observer.
func (m *Metrics) MessageDelivered(int, PartyID, Message) { m.Deliveries++ }

// MessageSent implements Observer.
func (m *Metrics) MessageSent(_ int, msg Message, _ bool) {
	m.Messages++
	if msg.To == Broadcast {
		m.Broadcasts++
	}
}

// RoundEnded implements Observer.
func (m *Metrics) RoundEnded(int) {}

// OutputProduced implements Observer.
func (m *Metrics) OutputProduced(PartyID, OutputRecord) {}

// RunFinished implements Observer.
func (m *Metrics) RunFinished(*Trace) { m.Runs++ }

// PartyFailStopped implements FailStopObserver.
func (m *Metrics) PartyFailStopped(int, PartyID, string) { m.FailStops++ }
