package sim_test

// Engine-parity test: the stepwise Execution engine must produce traces
// reflect.DeepEqual-identical to the pre-refactor monolithic Run for
// every protocol × adversary pair the experiment harness exercises.
// legacyRun below is a line-for-line copy of the seed's sim.Run (built
// on the exported API only), frozen here as the behavioral contract.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/adversary"
	"repro/internal/circuit"
	"repro/internal/gmwproto"
	"repro/internal/protocols/contract"
	"repro/internal/protocols/gordonkatz"
	"repro/internal/protocols/multiparty"
	"repro/internal/protocols/twoparty"
	"repro/internal/sim"
)

// legacyRun is the seed engine's Run, verbatim modulo exported-name
// qualification. Do not modify it: it is the parity reference.
func legacyRun(proto sim.Protocol, inputs []sim.Value, adv sim.Adversary, seed int64) (*sim.Trace, error) {
	n := proto.NumParties()
	if len(inputs) != n {
		return nil, fmt.Errorf("%w: got %d, want %d", sim.ErrInputCount, len(inputs), n)
	}
	master := rand.New(rand.NewSource(seed))
	protoRNG := rand.New(rand.NewSource(master.Int63()))
	advRNG := rand.New(rand.NewSource(master.Int63()))
	partyRNGs := make([]*rand.Rand, n)
	for i := range partyRNGs {
		partyRNGs[i] = rand.New(rand.NewSource(master.Int63()))
	}

	trace := &sim.Trace{
		ProtocolName:  proto.Name(),
		Inputs:        append([]sim.Value(nil), inputs...),
		Corrupted:     make(map[sim.PartyID]bool),
		HonestOutputs: make(map[sim.PartyID]sim.OutputRecord),
	}

	adv.Reset(&sim.AdvContext{
		Protocol:   proto,
		Inputs:     append([]sim.Value(nil), inputs...),
		TrueOutput: proto.Func(inputs),
		RNG:        advRNG,
	})

	for _, id := range adv.InitialCorruptions() {
		if id < 1 || sim.PartyID(n) < id {
			return nil, fmt.Errorf("%w: %d", sim.ErrBadParty, id)
		}
		trace.Corrupted[id] = true
	}
	effective := append([]sim.Value(nil), inputs...)
	for id := range trace.Corrupted {
		effective[id-1] = adv.SubstituteInput(id, inputs[id-1])
	}
	trace.EffectiveInputs = effective

	setupOuts, err := proto.Setup(effective, protoRNG)
	if err != nil {
		return nil, fmt.Errorf("sim: setup: %w", err)
	}
	if setupOuts != nil && len(setupOuts) != n && len(setupOuts) != n+1 {
		return nil, fmt.Errorf("sim: setup returned %d outputs for %d parties", len(setupOuts), n)
	}
	if len(setupOuts) == n+1 {
		trace.SetupAudit = setupOuts[n]
		setupOuts = setupOuts[:n]
	}
	setupOutOf := func(id sim.PartyID) sim.Value {
		if setupOuts == nil {
			return nil
		}
		return setupOuts[id-1]
	}
	corruptedSetup := make(map[sim.PartyID]sim.Value)
	for id := range trace.Corrupted {
		corruptedSetup[id] = setupOutOf(id)
	}
	abortRequested := len(trace.Corrupted) > 0 && adv.ObserveSetup(corruptedSetup)
	if policy, ok := proto.(sim.SetupAbortPolicy); ok && abortRequested {
		abortRequested = policy.SetupAbortable(len(trace.Corrupted))
	}
	trace.SetupAborted = abortRequested
	trace.HybridOutput = proto.Func(effective)

	if trace.SetupAborted {
		withDefaults := append([]sim.Value(nil), inputs...)
		for id := range trace.Corrupted {
			withDefaults[id-1] = proto.DefaultInput(id)
		}
		trace.ExpectedOutput = proto.Func(withDefaults)
		trace.EffectiveInputs = withDefaults
	} else {
		trace.ExpectedOutput = proto.Func(effective)
	}

	machines := make([]sim.Party, n)
	for i := 0; i < n; i++ {
		id := sim.PartyID(i + 1)
		m, err := proto.NewParty(id, effective[i], setupOutOf(id), trace.SetupAborted, partyRNGs[i])
		if err != nil {
			return nil, fmt.Errorf("sim: new party %d: %w", id, err)
		}
		machines[i] = m
	}
	for id := range trace.Corrupted {
		adv.OnCorrupt(id, machines[id-1], setupOutOf(id))
	}

	inboxes := make([][]sim.Message, n)
	totalRounds := proto.NumRounds() + 1
	for r := 1; r <= totalRounds; r++ {
		for _, id := range adv.CorruptBefore(r) {
			if id < 1 || sim.PartyID(n) < id {
				return nil, fmt.Errorf("%w: %d", sim.ErrBadParty, id)
			}
			if trace.Corrupted[id] {
				continue
			}
			trace.Corrupted[id] = true
			adv.OnCorrupt(id, machines[id-1], setupOutOf(id))
		}

		var honestOut []sim.Message
		var rushed []sim.Message
		for i := 0; i < n; i++ {
			id := sim.PartyID(i + 1)
			if trace.Corrupted[id] {
				continue
			}
			out, err := machines[i].Round(r, inboxes[i])
			if err != nil {
				return nil, fmt.Errorf("sim: party %d round %d: %w", id, r, err)
			}
			for _, m := range out {
				m.From = id
				honestOut = append(honestOut, m)
				if m.To == sim.Broadcast || trace.Corrupted[m.To] {
					rushed = append(rushed, m)
				}
			}
		}

		corruptInboxes := make(map[sim.PartyID][]sim.Message, len(trace.Corrupted))
		for id := range trace.Corrupted {
			corruptInboxes[id] = inboxes[id-1]
		}
		advOut := adv.Act(r, corruptInboxes, rushed)
		for i := range advOut {
			if !trace.Corrupted[advOut[i].From] {
				return nil, fmt.Errorf("sim: adversary sent as honest party %d", advOut[i].From)
			}
		}

		next := make([][]sim.Message, n)
		deliver := func(m sim.Message) {
			if m.To == sim.Broadcast {
				for i := 0; i < n; i++ {
					next[i] = append(next[i], m)
				}
				return
			}
			if m.To >= 1 && m.To <= sim.PartyID(n) {
				next[m.To-1] = append(next[m.To-1], m)
			}
		}
		for _, m := range honestOut {
			deliver(m)
		}
		for _, m := range advOut {
			deliver(m)
		}
		for i := range next {
			sort.SliceStable(next[i], func(a, b int) bool { return next[i][a].From < next[i][b].From })
		}
		inboxes = next
		trace.RoundsRun = r
	}

	defaulted := append([]sim.Value(nil), inputs...)
	for id := range trace.Corrupted {
		defaulted[id-1] = proto.DefaultInput(id)
	}
	trace.DefaultedOutput = proto.Func(defaulted)

	trace.HonestAudits = make(map[sim.PartyID]sim.Value)
	for i := 0; i < n; i++ {
		id := sim.PartyID(i + 1)
		if trace.Corrupted[id] {
			continue
		}
		v, ok := machines[i].Output()
		trace.HonestOutputs[id] = sim.OutputRecord{Value: v, OK: ok}
		if ap, ok := machines[i].(sim.AuditedParty); ok {
			trace.HonestAudits[id] = ap.AuditInfo()
		}
	}

	if auditor, ok := proto.(sim.OutcomeAuditor); ok {
		audit := auditor.AuditOutcome(trace)
		trace.Audit = &audit
		if audit.Learned {
			trace.AdvLearned = true
			trace.AdvValue = audit.LearnedValue
		}
	} else if v, ok := adv.Learned(); ok &&
		(sim.ValuesEqual(v, trace.ExpectedOutput) || sim.ValuesEqual(v, trace.HybridOutput)) {
		trace.AdvLearned = true
		trace.AdvValue = v
	}
	if ex, ok := adv.(sim.InputExtractor); ok {
		if victim, v, claimed := ex.ExtractedInput(); claimed {
			if victim >= 1 && victim <= sim.PartyID(n) && !trace.Corrupted[victim] &&
				sim.ValuesEqual(v, inputs[victim-1]) {
				trace.PrivacyBreach = true
				trace.BreachedParty = victim
			}
		}
	}
	return trace, nil
}

// parityCase is one protocol × adversary pair from the experiment
// harness's repertoire.
type parityCase struct {
	name   string
	proto  func() (sim.Protocol, []sim.Value, error)
	newAdv func() sim.Adversary
}

func parityCases(t *testing.T) []parityCase {
	t.Helper()
	twoPartyInputs := []sim.Value{uint64(111), uint64(222)}
	concat4 := func() (multiparty.Function, error) { return multiparty.Concat(4, 8) }
	multiInputs := []sim.Value{uint64(1), uint64(2), uint64(3), uint64(4)}

	multiProto := func(build func(multiparty.Function) sim.Protocol) func() (sim.Protocol, []sim.Value, error) {
		return func() (sim.Protocol, []sim.Value, error) {
			fn, err := concat4()
			if err != nil {
				return nil, nil, err
			}
			return build(fn), multiInputs, nil
		}
	}
	gkProto := func(rangeVariant bool) func() (sim.Protocol, []sim.Value, error) {
		return func() (sim.Protocol, []sim.Value, error) {
			var (
				p   gordonkatz.Protocol
				err error
			)
			if rangeVariant {
				p, err = gordonkatz.NewPolyRange(gordonkatz.AND(), 4)
			} else {
				p, err = gordonkatz.NewPolyDomain(gordonkatz.AND(), 4)
			}
			return p, []sim.Value{uint64(1), uint64(1)}, err
		}
	}

	cases := []parityCase{}
	// Contract signing (E01) and the two-party family (E02/E03/E13/E14).
	for _, p := range []struct {
		name  string
		build func() (sim.Protocol, []sim.Value, error)
	}{
		{"pi1", func() (sim.Protocol, []sim.Value, error) { return contract.Pi1{}, twoPartyInputs, nil }},
		{"pi2", func() (sim.Protocol, []sim.Value, error) { return contract.Pi2{}, twoPartyInputs, nil }},
		{"2sfe-opt", func() (sim.Protocol, []sim.Value, error) {
			return twoparty.New(twoparty.Swap()), twoPartyInputs, nil
		}},
		{"2sfe-fixed2", func() (sim.Protocol, []sim.Value, error) {
			return twoparty.NewFixedOrder(twoparty.Swap(), 2), twoPartyInputs, nil
		}},
		{"2sfe-oneround", func() (sim.Protocol, []sim.Value, error) {
			return twoparty.NewOneRound(twoparty.Swap()), twoPartyInputs, nil
		}},
	} {
		for _, a := range []struct {
			name string
			mk   func() sim.Adversary
		}{
			{"passive", func() sim.Adversary { return sim.Passive{} }},
			{"static:1", func() sim.Adversary { return adversary.NewStatic(1) }},
			{"lock-abort:1", func() sim.Adversary { return adversary.NewLockAbort(1) }},
			{"lock-abort:2", func() sim.Adversary { return adversary.NewLockAbort(2) }},
			{"abort:2:1", func() sim.Adversary { return adversary.NewAbortAt(2, 1) }},
			{"setup-abort:1", func() sim.Adversary { return adversary.NewSetupAbort(1) }},
			{"agen", func() sim.Adversary { return adversary.NewAgen() }},
		} {
			cases = append(cases, parityCase{p.name + "/" + a.name, p.build, a.mk})
		}
	}
	// Multi-party family (E05..E09).
	for _, p := range []struct {
		name  string
		build func() (sim.Protocol, []sim.Value, error)
	}{
		{"nsfe-opt", multiProto(func(fn multiparty.Function) sim.Protocol { return multiparty.NewOptN(fn) })},
		{"nsfe-gmw12", multiProto(func(fn multiparty.Function) sim.Protocol { return multiparty.NewGMWHalf(fn) })},
		{"nsfe-lemma18", multiProto(func(fn multiparty.Function) sim.Protocol { return multiparty.NewLemma18(fn) })},
		{"nsfe-hybrid", multiProto(func(fn multiparty.Function) sim.Protocol { return multiparty.NewHybrid(fn) })},
	} {
		for _, a := range []struct {
			name string
			mk   func() sim.Adversary
		}{
			{"passive", func() sim.Adversary { return sim.Passive{} }},
			{"static:1+2", func() sim.Adversary { return adversary.NewStatic(1, 2) }},
			{"lock-abort:1+3", func() sim.Adversary { return adversary.NewLockAbort(1, 3) }},
			{"setup-abort:1+2+3", func() sim.Adversary { return adversary.NewSetupAbort(1, 2, 3) }},
			{"allbut-mixer", func() sim.Adversary { return adversary.NewAllButMixer(4) }},
			{"allbut:4", func() sim.Adversary { return adversary.NewAllBut(4, 4) }},
		} {
			cases = append(cases, parityCase{p.name + "/" + a.name, p.build, a.mk})
		}
	}
	// Gordon–Katz partial fairness (E11/E12).
	for _, p := range []struct {
		name  string
		build func() (sim.Protocol, []sim.Value, error)
	}{
		{"gk-polydomain", gkProto(false)},
		{"gk-polyrange", gkProto(true)},
	} {
		for _, a := range []struct {
			name string
			mk   func() sim.Adversary
		}{
			{"passive", func() sim.Adversary { return sim.Passive{} }},
			{"first-hit:1", func() sim.Adversary { return gordonkatz.NewFirstHit(1) }},
			{"abort:3:2", func() sim.Adversary { return adversary.NewAbortAt(3, 2) }},
		} {
			cases = append(cases, parityCase{p.name + "/" + a.name, p.build, a.mk})
		}
	}
	// The leaky Π̃ with its input-extraction attack (E12).
	cases = append(cases, parityCase{
		"gk-pitilde/leak-extractor",
		func() (sim.Protocol, []sim.Value, error) {
			p, err := gordonkatz.NewPitilde()
			return p, []sim.Value{uint64(1), uint64(0)}, err
		},
		func() sim.Adversary { return gordonkatz.NewLeakExtractor() },
	})
	// The real message-passing substrate (E15).
	cases = append(cases, parityCase{
		"gmw-online/lock-abort:2",
		func() (sim.Protocol, []sim.Value, error) {
			circ, err := circuit.MillionairesCircuit(6)
			if err != nil {
				return nil, nil, err
			}
			p, err := gmwproto.New("m6", circ, 2)
			return p, []sim.Value{uint64(50), uint64(20)}, err
		},
		func() sim.Adversary { return adversary.NewLockAbort(2) },
	})
	return cases
}

func TestExecutionMatchesLegacyRun(t *testing.T) {
	for _, tc := range parityCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				proto, inputs, err := tc.proto()
				if err != nil {
					t.Fatal(err)
				}
				want, wantErr := legacyRun(proto, inputs, tc.newAdv(), seed)
				got, gotErr := sim.Run(proto, inputs, tc.newAdv(), seed)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("seed %d: legacy err %v, execution err %v", seed, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seed %d: traces diverge\nlegacy:    %+v\nexecution: %+v", seed, want, got)
				}
			}
		})
	}
}

// TestExecutionPhaseOrder pins the stepper's phase contract: phases must
// run in order and exactly once.
func TestExecutionPhaseOrder(t *testing.T) {
	proto := twoparty.New(twoparty.Swap())
	inputs := []sim.Value{uint64(1), uint64(2)}
	e, err := sim.NewExecution(proto, inputs, sim.Passive{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(1); err == nil {
		t.Error("Step before SetupPhase accepted")
	}
	if _, err := e.Finalize(); err == nil {
		t.Error("Finalize before SetupPhase accepted")
	}
	if err := e.SetupPhase(); err != nil {
		t.Fatal(err)
	}
	if err := e.SetupPhase(); err == nil {
		t.Error("second SetupPhase accepted")
	}
	if err := e.Step(2); err == nil {
		t.Error("out-of-order Step accepted")
	}
	for r := 1; r <= e.TotalRounds(); r++ {
		if err := e.Step(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Step(e.TotalRounds() + 1); err == nil {
		t.Error("Step past TotalRounds accepted")
	}
	tr, err := e.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if tr.RoundsRun != e.TotalRounds() {
		t.Errorf("RoundsRun = %d, want %d", tr.RoundsRun, e.TotalRounds())
	}
	if _, err := e.Finalize(); err == nil {
		t.Error("second Finalize accepted")
	}
}

// TestObserverEventStream sanity-checks the observer ordering contract on
// a small adversarial run: a metrics observer and the trace must agree.
func TestObserverEventStream(t *testing.T) {
	proto := twoparty.New(twoparty.Swap())
	inputs := []sim.Value{uint64(7), uint64(9)}
	var m sim.Metrics
	tr, err := sim.RunObserved(proto, inputs, adversary.NewLockAbort(1), 4, &m)
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs != 1 {
		t.Errorf("Runs = %d, want 1", m.Runs)
	}
	if int(m.Rounds) != tr.RoundsRun {
		t.Errorf("Rounds = %d, want %d", m.Rounds, tr.RoundsRun)
	}
	if int(m.Corruptions) != tr.NumCorrupted() {
		t.Errorf("Corruptions = %d, want %d", m.Corruptions, tr.NumCorrupted())
	}
	if m.Messages == 0 {
		t.Error("no messages observed")
	}
}
