package search_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/search"
)

// assertReportsEqual compares two reports through their JSON encoding
// (Metrics are scheduling-dependent and excluded from it).
func assertReportsEqual(t *testing.T, a, b *search.Report) {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	// Replayed differs by construction (one run resumed); the
	// certification report's engine diagnostics (Metrics, MeanCorrupted,
	// violation rates) are not recorded in the checkpoint and come back
	// zero on replay — mask both. The statistical content (utility,
	// interval, event frequencies, run counts) must match exactly.
	var ma, mb map[string]any
	if err := json.Unmarshal(ja, &ma); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(jb, &mb); err != nil {
		t.Fatal(err)
	}
	for _, m := range []map[string]any{ma, mb} {
		delete(m, "replayed")
		if br, ok := m["bestReport"].(map[string]any); ok {
			delete(br, "Metrics")
			delete(br, "MeanCorrupted")
			delete(br, "CorrectnessViolations")
			delete(br, "PrivacyBreaches")
		}
	}
	ja, _ = json.Marshal(ma)
	jb, _ = json.Marshal(mb)
	if !bytes.Equal(ja, jb) {
		t.Errorf("reports differ:\n%s\n%s", ja, jb)
	}
}

// TestResumeByteIdentity is the resume contract: a checkpoint
// interrupted at any record boundary — including right after a kill
// record, i.e. with an arm half-eliminated, and mid-line (a torn write)
// — resumes to a byte-identical file and an identical report.
func TestResumeByteIdentity(t *testing.T) {
	f := acceptanceFamilies(t)[0]
	o := acceptanceOptions
	o.FinalRuns = 800
	o.RaceRuns = 300
	dir := t.TempDir()

	full := filepath.Join(dir, "full.jsonl")
	o.Checkpoint = full
	want, err := search.Run(f.proto, f.space, f.gamma, f.sampler, 11, o)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(wantBytes), "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) < 4 {
		t.Fatalf("checkpoint too small to cut: %d lines", len(lines))
	}

	// Cut points: after the header only, a third of the way in, right
	// after the first kill record (an arm just got half-eliminated —
	// its rivals' counts are still mid-race), and just before the final
	// record.
	cuts := []int{1, len(lines) / 3, len(lines) - 1}
	for i, l := range lines {
		if strings.Contains(l, `"kind":"kill"`) {
			cuts = append(cuts, i+1)
			break
		}
	}
	for _, cut := range cuts {
		partial := filepath.Join(dir, "partial.jsonl")
		if err := os.WriteFile(partial, []byte(strings.Join(lines[:cut], "")), 0o644); err != nil {
			t.Fatal(err)
		}
		o.Checkpoint = partial
		got, err := search.Run(f.proto, f.space, f.gamma, f.sampler, 11, o)
		if err != nil {
			t.Fatalf("resume from %d lines: %v", cut, err)
		}
		gotBytes, err := os.ReadFile(partial)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBytes, wantBytes) {
			t.Errorf("resume from %d lines: checkpoint bytes differ from uninterrupted run", cut)
		}
		assertReportsEqual(t, want, got)
	}

	// Torn write: a prefix plus half of the next line. Resume must
	// truncate the tear and still converge byte-identically.
	cut := len(lines) / 2
	torn := strings.Join(lines[:cut], "") + lines[cut][:len(lines[cut])/2]
	partial := filepath.Join(dir, "torn.jsonl")
	if err := os.WriteFile(partial, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	o.Checkpoint = partial
	got, err := search.Run(f.proto, f.space, f.gamma, f.sampler, 11, o)
	if err != nil {
		t.Fatalf("resume from torn checkpoint: %v", err)
	}
	gotBytes, err := os.ReadFile(partial)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Error("torn resume: checkpoint bytes differ from uninterrupted run")
	}
	assertReportsEqual(t, want, got)

	// A completed checkpoint replays fully: no new simulation, same
	// report.
	o.Checkpoint = full
	again, err := search.Run(f.proto, f.space, f.gamma, f.sampler, 11, o)
	if err != nil {
		t.Fatal(err)
	}
	assertReportsEqual(t, want, again)
	finalBytes, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(finalBytes, wantBytes) {
		t.Error("full replay modified the checkpoint")
	}

	// A foreign checkpoint (different seed) must be refused, not
	// silently overwritten.
	o.Checkpoint = full
	if _, err := search.Run(f.proto, f.space, f.gamma, f.sampler, 12, o); err == nil {
		t.Error("foreign checkpoint accepted")
	}
}
