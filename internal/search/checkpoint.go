package search

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Record is one checkpoint line: a scheduling decision ("prune",
// "kill") or a batch of measured runs ("wave", "final"). The record
// sequence is a pure function of (params, seed) — the schedule is
// deterministic and every measured count is a pure function of the arm
// seed — which is what makes the JSONL stream byte-identical across
// re-runs and resumes.
//
// Unlike the sweep, the sequence cannot be validated against a static
// plan (eliminations depend on measurements), so resume validates
// structurally instead: the engine replays the loaded records through
// its deterministic schedule and rejects the checkpoint the moment a
// record's (kind, arm, wave) differs from what the schedule demands.
type Record struct {
	Kind   string   `json:"kind"` // "prune" | "wave" | "kill" | "final"
	Arm    string   `json:"arm"`
	Key    string   `json:"key"`
	Wave   int      `json:"wave,omitempty"`
	Runs   int      `json:"runs,omitempty"`   // runs this record adds (wave/final)
	Events [4]int64 `json:"events,omitempty"` // outcome counts for those runs, E00..E11
	Mean   float64  `json:"mean"`             // cumulative utility mean after this record
	Lo     float64  `json:"lo"`               // certified interval at record time
	Hi     float64  `json:"hi"`
	Bound  float64  `json:"bound,omitempty"` // prune: static UB; kill: leader's lower bound
	By     string   `json:"by,omitempty"`    // the leader responsible for a prune/kill
}

// header is the checkpoint's first line. A resume refuses a checkpoint
// whose header does not match the planned search exactly — replaying
// records from a different space, options, or seed would silently
// corrupt the schedule.
type header struct {
	Kind    string `json:"kind"` // always "search-header"
	Version int    `json:"version"`
	Seed    int64  `json:"seed"`
	Arms    int    `json:"arms"`
	// Grid fingerprints the search: the hash of the canonical parameter
	// string plus every arm key in order.
	Grid string `json:"grid"`
}

const checkpointVersion = 1

// marshalLine renders one checkpoint line. json.Marshal over the fixed
// struct shapes is deterministic (field order is declaration order), so
// equal records give equal bytes.
func marshalLine(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// checkpoint streams records to a JSONL file, flushing after every line
// so an interrupted search loses at most one torn trailing line.
type checkpoint struct {
	f *os.File
	w *bufio.Writer
}

func createCheckpoint(path string, hd header) (*checkpoint, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("search: create checkpoint: %w", err)
	}
	cp := &checkpoint{f: f, w: bufio.NewWriter(f)}
	line, err := marshalLine(hd)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := cp.w.Write(line); err != nil {
		f.Close()
		return nil, fmt.Errorf("search: write checkpoint header: %w", err)
	}
	if err := cp.flush(); err != nil {
		f.Close()
		return nil, err
	}
	return cp, nil
}

func (cp *checkpoint) flush() error {
	if err := cp.w.Flush(); err != nil {
		return fmt.Errorf("search: flush checkpoint: %w", err)
	}
	if err := cp.f.Sync(); err != nil {
		return fmt.Errorf("search: sync checkpoint: %w", err)
	}
	return nil
}

func (cp *checkpoint) append(rec Record) error {
	line, err := marshalLine(rec)
	if err != nil {
		return fmt.Errorf("search: marshal record %s/%s: %w", rec.Kind, rec.Arm, err)
	}
	if _, err := cp.w.Write(line); err != nil {
		return fmt.Errorf("search: write record %s/%s: %w", rec.Kind, rec.Arm, err)
	}
	return cp.flush()
}

func (cp *checkpoint) close() error {
	if err := cp.flush(); err != nil {
		cp.f.Close()
		return err
	}
	return cp.f.Close()
}

// loadCheckpoint reads a (possibly interrupted) checkpoint and returns
// the completed records in file order. It validates the header and
// tolerates exactly one torn trailing line (an interrupt mid-write),
// reported via truncateTo ≥ 0 — the byte offset the file must be
// truncated to before appending. Per-record schedule validation happens
// during replay, inside the engine.
func loadCheckpoint(path string, want header) (recs []Record, truncateTo int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, -1, fmt.Errorf("search: read checkpoint: %w", err)
	}
	wantHeader, err := marshalLine(want)
	if err != nil {
		return nil, -1, err
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 || !bytes.Equal(data[:nl+1], wantHeader) {
		return nil, -1, fmt.Errorf("search: checkpoint %s does not match this search (header mismatch)", path)
	}
	offset := int64(nl + 1)
	rest := data[nl+1:]
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			// Torn trailing line: the interrupt hit mid-write. Resume by
			// truncating it away and re-running its record.
			return recs, offset, nil
		}
		line := rest[:nl+1]
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// A complete but unparsable line is corruption, not a tear.
			return nil, -1, fmt.Errorf("search: checkpoint record %d: %w", len(recs), err)
		}
		recs = append(recs, rec)
		offset += int64(nl + 1)
		rest = rest[nl+1:]
	}
	return recs, offset, nil
}

// resumeCheckpoint reopens path for appending after loadCheckpoint,
// truncating any torn trailing line first.
func resumeCheckpoint(path string, truncateTo int64) (*checkpoint, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("search: reopen checkpoint: %w", err)
	}
	if err := f.Truncate(truncateTo); err != nil {
		f.Close()
		return nil, fmt.Errorf("search: truncate torn checkpoint tail: %w", err)
	}
	if _, err := f.Seek(truncateTo, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("search: seek checkpoint: %w", err)
	}
	return &checkpoint{f: f, w: bufio.NewWriter(f)}, nil
}

// emitter sequences the deterministic record stream: a loaded replay
// prefix is consumed first (validated step by step against the
// schedule, its measured counts substituting for simulation), then
// fresh records are computed and appended. Because the replay prefix's
// bytes stay in the file untouched and every fresh record is a pure
// function of (params, seed), an interrupted-then-resumed checkpoint is
// byte-identical to an uninterrupted one.
type emitter struct {
	cp     *checkpoint // nil when checkpointing is off
	replay []Record
	pos    int
}

// step produces the next record in the schedule: the expected identity
// is (kind, arm, wave); compute simulates it fresh. Returns the record
// and whether it came from replay.
func (e *emitter) step(kind, arm string, wave int, compute func() (Record, error)) (Record, bool, error) {
	if e.pos < len(e.replay) {
		rec := e.replay[e.pos]
		if rec.Kind != kind || rec.Arm != arm || rec.Wave != wave {
			return Record{}, false, fmt.Errorf(
				"search: checkpoint record %d is (%s %s wave %d), schedule expects (%s %s wave %d) — stale or foreign checkpoint",
				e.pos, rec.Kind, rec.Arm, rec.Wave, kind, arm, wave)
		}
		e.pos++
		return rec, true, nil
	}
	rec, err := compute()
	if err != nil {
		return Record{}, false, err
	}
	if e.cp != nil {
		if err := e.cp.append(rec); err != nil {
			return Record{}, false, err
		}
	}
	return rec, false, nil
}
