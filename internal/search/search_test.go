package search_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/protocols/contract"
	"repro/internal/protocols/gordonkatz"
	"repro/internal/protocols/twoparty"
	"repro/internal/search"
	"repro/internal/sim"
)

func uniform2(max int) core.InputSampler {
	return func(r *rand.Rand) []sim.Value {
		return []sim.Value{uint64(r.Intn(max)), uint64(r.Intn(max))}
	}
}

// family is one acceptance target: a protocol, its raw strategy space,
// and the paper's closed-form sup.
type family struct {
	name    string
	proto   sim.Protocol
	space   core.StrategySpace
	gamma   core.Payoff
	sampler core.InputSampler
	closed  float64 // closed-form sup_A u(Π, A)
	slack   float64 // Monte-Carlo slack on the closed-form check
}

func acceptanceFamilies(t *testing.T) []family {
	t.Helper()
	std := core.StandardPayoff()
	gk, err := gordonkatz.NewPolyDomain(gordonkatz.AND(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sfe := twoparty.New(twoparty.Swap())
	pi1, pi2 := contract.Pi1{}, contract.Pi2{}
	return []family{
		{
			name:    "2sfe",
			proto:   sfe,
			space:   adversary.NewRawTwoParty(sfe.NumRounds(), adversary.WithSubstitutions(uint64(0), uint64(1))),
			gamma:   std,
			sampler: uniform2(1 << 20),
			closed:  core.TwoPartyOptimalBound(std), // (γ10+γ11)/2 = 3/4
			slack:   0.02,
		},
		{
			name:    "pi1",
			proto:   pi1,
			space:   adversary.NewRawTwoParty(pi1.NumRounds(), adversary.WithSubstitutions(uint64(0))),
			gamma:   std,
			sampler: uniform2(1 << 16),
			closed:  std.G10, // Π1 is unfair: the aborting attacker earns γ10 outright
			slack:   0.02,
		},
		{
			name:    "pi2",
			proto:   pi2,
			space:   adversary.NewRawTwoParty(pi2.NumRounds(), adversary.WithSubstitutions(uint64(0))),
			gamma:   std,
			sampler: uniform2(1 << 16),
			closed:  core.TwoPartyOptimalBound(std), // Π2 is optimal: (γ10+γ11)/2
			slack:   0.02,
		},
		{
			name:  "gk-polydomain:2",
			proto: gk,
			space: adversary.NewRawTwoParty(gk.NumRounds(),
				adversary.WithFirstHit(func(p sim.PartyID) sim.Adversary { return gordonkatz.NewFirstHit(p) })),
			gamma:   core.GordonKatzPayoff(),
			sampler: core.FixedInputs(uint64(1), uint64(1)),
			closed:  core.GKFirstHitExact(gk.Iterations, 0.5), // exact first-hit success
			slack:   0.03,
		},
	}
}

var acceptanceOptions = search.Options{
	Wave:      100,
	Growth:    2,
	RaceRuns:  600,
	FinalRuns: 6000,
	Delta:     0.05,
}

// TestRecoversOptimal is the acceptance pin: on every family the racing
// engine recovers the proof-optimal adversary from the raw space — the
// same best-class strategy and the same utility (within certified
// half-widths) as exhaustive enumeration, the closed-form sup of the
// paper, at ≥10× fewer estimator runs. Everything here is a pure
// function of the seeds, so a pass is a deterministic pass.
func TestRecoversOptimal(t *testing.T) {
	for _, f := range acceptanceFamilies(t) {
		f := f
		t.Run(f.name, func(t *testing.T) {
			seed := int64(42)
			rep, err := search.Run(f.proto, f.space, f.gamma, f.sampler, seed, acceptanceOptions)
			if err != nil {
				t.Fatal(err)
			}
			exh := acceptanceOptions
			exh.Exhaustive = true
			ground, err := search.Run(f.proto, f.space, f.gamma, f.sampler, seed, exh)
			if err != nil {
				t.Fatal(err)
			}
			if ground.TotalRuns != rep.ExhaustiveRuns {
				t.Errorf("comparator cost %d runs, search predicted %d", ground.TotalRuns, rep.ExhaustiveRuns)
			}

			// The winner must sit in the exhaustive best equivalence class:
			// its certification interval overlaps the exhaustive best's.
			// (Strict name equality would be wrong — symmetric arms tie at
			// the true optimum and either may lead a finite sample.)
			var groundBest, searchArm *search.ArmResult
			for i := range ground.Arms {
				a := &ground.Arms[i]
				if a.Name == ground.Best {
					groundBest = a
				}
				if a.Name == rep.Best {
					searchArm = a
				}
			}
			if groundBest == nil || searchArm == nil {
				t.Fatalf("arms %q/%q missing from exhaustive report", ground.Best, rep.Best)
			}
			if searchArm.Hi < groundBest.Lo {
				t.Errorf("search best %q (exhaustive CI [%g, %g]) is outside the best class of %q ([%g, %g])",
					rep.Best, searchArm.Lo, searchArm.Hi, ground.Best, groundBest.Lo, groundBest.Hi)
			}
			// Both certification estimates run at the same (arm seed,
			// FinalRuns), so when the names agree the means must agree
			// exactly; across the tie class, within combined half-widths.
			if rep.Best == ground.Best && rep.BestReport.Utility.Mean != ground.BestReport.Utility.Mean {
				t.Errorf("same winner %q but means differ: %v vs %v — certification seeds drifted",
					rep.Best, rep.BestReport.Utility, ground.BestReport.Utility)
			}
			diff := math.Abs(rep.BestReport.Utility.Mean - ground.BestReport.Utility.Mean)
			if hw := rep.BestReport.Utility.HalfWidth + ground.BestReport.Utility.HalfWidth; diff > hw {
				t.Errorf("search sup %v vs exhaustive sup %v: differ by %g > combined half-width %g",
					rep.BestReport.Utility, ground.BestReport.Utility, diff, hw)
			}
			// Closed-form agreement (Definition 1 against the paper's
			// bounds).
			if d := math.Abs(ground.BestReport.Utility.Mean - f.closed); d > ground.BestReport.Utility.HalfWidth+f.slack {
				t.Errorf("exhaustive sup %v misses closed form %g by %g",
					ground.BestReport.Utility, f.closed, d)
			}
			if d := math.Abs(rep.BestReport.Utility.Mean - f.closed); d > rep.BestReport.Utility.HalfWidth+f.slack {
				t.Errorf("search sup %v misses closed form %g by %g",
					rep.BestReport.Utility, f.closed, d)
			}
			// The acceptance ratio: ≥10× fewer runs than exhaustive.
			if s := rep.Savings(); s < 10 {
				t.Errorf("savings ratio %.2f < 10 (search %d runs, exhaustive %d)",
					s, rep.TotalRuns, rep.ExhaustiveRuns)
			}
			t.Logf("%s: best %q u=%v, savings %.1f× (%d vs %d runs), %d waves",
				f.name, rep.Best, rep.BestReport.Utility, rep.Savings(),
				rep.TotalRuns, rep.ExhaustiveRuns, rep.Waves)
		})
	}
}

// TestSearchDeterministicAcrossParallelism pins the scheduling-only
// contract: parallelism and batch size never change the report.
func TestSearchDeterministicAcrossParallelism(t *testing.T) {
	f := acceptanceFamilies(t)[0]
	o := acceptanceOptions
	o.FinalRuns = 1000
	o.RaceRuns = 300
	o.Parallelism = 1
	r1, err := search.Run(f.proto, f.space, f.gamma, f.sampler, 7, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Parallelism = 4
	o.BatchSize = 3
	r2, err := search.Run(f.proto, f.space, f.gamma, f.sampler, 7, o)
	if err != nil {
		t.Fatal(err)
	}
	assertReportsEqual(t, r1, r2)
}

// TestSearchBoundsPrune pins the branch-and-bound step: under the
// standard payoff every setup-abort and passive arm (static bound 0)
// must be pruned with zero runs, and the honest never-abort arms
// (bound γ11) must never outlive the racing leader's certification.
func TestSearchBoundsPrune(t *testing.T) {
	f := acceptanceFamilies(t)[0]
	o := acceptanceOptions
	o.FinalRuns = 1000
	o.RaceRuns = 300
	rep, err := search.Run(f.proto, f.space, f.gamma, f.sampler, 3, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range rep.Arms {
		if a.Bound == 0 {
			if a.Status != search.StatusPruned || a.Runs != 0 {
				t.Errorf("zero-bound arm %q: status %s with %d runs, want pruned with 0", a.Name, a.Status, a.Runs)
			}
		}
		if a.Status == search.StatusBest && a.Name != rep.Best {
			t.Errorf("arm %q marked best but report names %q", a.Name, rep.Best)
		}
	}
}

// TestMaxArmsBeam pins the -arms beam knob: at most MaxArms arms race.
func TestMaxArmsBeam(t *testing.T) {
	f := acceptanceFamilies(t)[0]
	o := acceptanceOptions
	o.FinalRuns = 500
	o.RaceRuns = 200
	o.MaxArms = 4
	rep, err := search.Run(f.proto, f.space, f.gamma, f.sampler, 3, o)
	if err != nil {
		t.Fatal(err)
	}
	raced := 0
	for _, a := range rep.Arms {
		if a.Status != search.StatusPruned {
			raced++
		}
		if a.Status == search.StatusPruned && a.Runs != 0 {
			t.Errorf("pruned arm %q consumed %d runs", a.Name, a.Runs)
		}
	}
	if raced > 4 {
		t.Errorf("%d arms raced, beam allows 4", raced)
	}
}
