// Package search is the best-response search engine: it approximates
// sup_A u(Π, A) (Definition 1) over a first-class strategy space
// (core.StrategySpace) at a fraction of exhaustive cost, by racing /
// successive elimination over strategy arms plus branch-and-bound
// pruning over structured spaces (core.BoundedSpace).
//
// The schedule:
//
//  1. Admission. Arms are visited in descending static-upper-bound
//     order (ties in canonical space order). An arm whose bound cannot
//     beat the incumbent's certified lower bound is pruned with zero
//     estimator runs — this is the branch-and-bound step, and on
//     structured spaces it removes whole branches (every setup-abort
//     arm under a Γfair payoff, say) at once. Admitted arms get a
//     first wave of runs.
//  2. Racing. Waves grow geometrically (Wave·Growth^(w−1) runs, capped
//     so no arm exceeds RaceRuns). After each wave every surviving
//     arm's utility gets a Wilson score interval (the utility scaled to
//     [0, 1], z from the union-bound budget δ′ = δ/#checks via
//     stats.ZQuantile); an arm whose upper end falls below the leader's
//     lower end is killed. By the union bound, all eliminations are
//     jointly correct with probability ≥ 1 − δ.
//  3. Certification. The surviving leader alone is re-estimated fresh
//     at FinalRuns on its canonical arm seed — exactly the estimate the
//     exhaustive evaluation would have produced for it, so the final
//     report is byte-comparable with core.SupUtilitySpace's.
//
// Estimates are pure functions of (params, seed): per-arm seeds derive
// from FNV-1a arm keys exactly like the sweep's cell seeds, wave w of
// an arm runs at armSeed + w·7919, and the final estimate runs at the
// arm seed itself. Parallelism is spent inside each arm's estimate
// (scheduling only, per the estimator's determinism contract); the arm
// schedule itself is sequential so the checkpoint stream stays in
// canonical order.
package search

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Options configures a search. The zero value selects the documented
// defaults; every field except the statistical knobs (Wave, Growth,
// RaceRuns, FinalRuns, Delta, MaxArms, Exhaustive) is scheduling-only
// and never changes the result.
type Options struct {
	// Wave is the first wave's per-arm run count (default 100).
	Wave int
	// Growth is the per-wave geometric growth factor (default 2).
	Growth int
	// RaceRuns caps the racing runs spent on any one arm (default 1000).
	RaceRuns int
	// FinalRuns is the winner's certification estimate (default 5000) —
	// and the per-arm cost of the exhaustive comparator.
	FinalRuns int
	// Delta is the search-wide elimination error budget (default 0.05):
	// with probability ≥ 1−Delta no elimination removed a best arm.
	Delta float64
	// MaxArms, when positive, admits at most MaxArms arms to the race
	// (the top by static bound, ties in canonical order); the rest are
	// pruned. A beam knob for huge spaces — 0 means no cap.
	MaxArms int
	// Exhaustive disables racing and pruning: every arm is estimated at
	// FinalRuns on its arm seed. This is the ground-truth comparator the
	// acceptance tests and fairbench -search measure savings against.
	Exhaustive bool
	// PairedSeeds races the arms on common random numbers
	// (core.WithPairedSeeds): run i of every arm's racing waves draws its
	// coins from a search-wide master stream keyed by the cumulative run
	// index alone, so arms' runs pair index by index and a second
	// elimination rule applies — an arm whose paired deficit against the
	// leader (stats.PairedEstimateZ over the common run prefix) is
	// certifiably positive is killed even while both Wilson intervals
	// still overlap. The winner's certification estimate stays on the
	// canonical unpaired arm seed, so the final report remains
	// byte-comparable with the exhaustive evaluation. A statistical knob:
	// it changes racing coin sequences (and hence racing records), never
	// the certification semantics; off by default, byte-identical off.
	PairedSeeds bool

	// Parallelism is the worker count inside each arm estimate (<= 0
	// selects the estimator default).
	Parallelism int
	// BatchSize is the estimator batch size (<= 0 selects the default).
	BatchSize int
	// NoCompiledPlans disables compiled execution plans (debugging only).
	NoCompiledPlans bool
	// Checkpoint, when non-empty, streams the record sequence to this
	// JSONL file. If the file already exists it is resumed: completed
	// records replay (their measured counts substitute for simulation)
	// and the continuation is byte-identical to an uninterrupted run.
	Checkpoint string
}

func (o Options) withDefaults() Options {
	if o.Wave <= 0 {
		o.Wave = 100
	}
	if o.Growth < 1 {
		o.Growth = 2
	}
	if o.RaceRuns <= 0 {
		o.RaceRuns = 1000
	}
	if o.RaceRuns < o.Wave {
		o.RaceRuns = o.Wave
	}
	if o.FinalRuns <= 0 {
		o.FinalRuns = 5000
	}
	if o.Delta <= 0 || o.Delta >= 1 {
		o.Delta = 0.05
	}
	return o
}

// maxWaves is the deterministic wave-count ceiling: the number of waves
// after which every arm has reached RaceRuns.
func (o Options) maxWaves() int {
	cum, per, w := 0, o.Wave, 0
	for cum < o.RaceRuns && w < 64 {
		w++
		cum += per
		per *= o.Growth
	}
	return w
}

// Arm statuses in a Report.
const (
	StatusPruned   = "pruned"   // eliminated by static bound, zero runs
	StatusKilled   = "killed"   // eliminated by interval racing
	StatusSurvivor = "survivor" // raced to the cap, not the winner
	StatusBest     = "best"     // the certified winner
)

// ArmResult is one arm's outcome, in canonical space order.
type ArmResult struct {
	Name   string  `json:"name"`
	Key    string  `json:"key"`
	Index  int     `json:"index"`
	Bound  float64 `json:"bound"` // static utility upper bound
	Runs   int64   `json:"runs"`  // estimator runs consumed (racing + certification)
	Mean   float64 `json:"mean"`  // latest utility mean (0 when pruned unseen)
	Lo     float64 `json:"lo"`    // certified interval when decided
	Hi     float64 `json:"hi"`    // for pruned arms: the static bound
	Status string  `json:"status"`
	Wave   int     `json:"wave,omitempty"` // wave of the decision (0 = admission)
	By     string  `json:"by,omitempty"`   // leader responsible for the elimination
}

// Report is a completed search.
type Report struct {
	// Params is the canonical parameter string (see ParamString).
	Params string `json:"params"`
	// Best names the certified winner.
	Best string `json:"best"`
	// BestReport is the winner's certification estimate — the same
	// estimate exhaustive enumeration produces for that arm.
	BestReport core.UtilityReport `json:"bestReport"`
	// Arms lists every arm's outcome in canonical space order.
	Arms []ArmResult `json:"arms"`
	// TotalRuns counts every estimator run the search consumed
	// (admission + racing + certification).
	TotalRuns int64 `json:"totalRuns"`
	// ExhaustiveRuns is the comparator cost: arms × FinalRuns.
	ExhaustiveRuns int64 `json:"exhaustiveRuns"`
	// Waves is the number of racing waves executed.
	Waves int `json:"waves"`
	// Delta is the elimination budget; DeltaPrime the per-check share;
	// Z the Wilson quantile eliminations used.
	Delta      float64 `json:"delta"`
	DeltaPrime float64 `json:"deltaPrime"`
	Z          float64 `json:"z"`
	// Replayed counts checkpoint records consumed instead of simulated.
	Replayed int `json:"replayed,omitempty"`
	// Metrics aggregates engine counters over every simulated run.
	Metrics sim.Metrics `json:"-"`
}

// Savings is the runs-saved ratio against exhaustive enumeration.
func (r *Report) Savings() float64 {
	if r.TotalRuns == 0 {
		return math.Inf(1)
	}
	return float64(r.ExhaustiveRuns) / float64(r.TotalRuns)
}

// keyHash is FNV-1a 64 over "params|seed=%d" — the same scheme as
// sweep.KeyHash, duplicated here (three lines) rather than imported so
// the sweep can depend on this package without a cycle.
func keyHash(params string, seed int64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|seed=%d", params, seed)
	return h.Sum64()
}

// baseParams is the statistical identity of the searched problem —
// protocol, space, payoff — without the racing knobs. Per-arm seeds
// derive from it, so an arm's certification estimate is the same
// whatever schedule visits it: the racing winner's final estimate is
// bit-identical to the exhaustive comparator's estimate of that arm.
func baseParams(protoName, space string, gamma core.Payoff) string {
	return fmt.Sprintf("search|proto=%s|space=%s|g=%g,%g,%g,%g",
		protoName, space, gamma.G00, gamma.G01, gamma.G10, gamma.G11)
}

// ParamString is the search's canonical parameter string: every knob
// that can change the result, and nothing that cannot (parallelism,
// batch size, checkpoint paths are scheduling-only). The service layer
// keys its result cache with KeyHash over exactly this string.
func ParamString(protoName, space string, gamma core.Payoff, o Options) string {
	o = o.withDefaults()
	s := fmt.Sprintf("%s|wave=%d|growth=%d|race=%d|final=%d|delta=%g|arms=%d|exh=%t",
		baseParams(protoName, space, gamma),
		o.Wave, o.Growth, o.RaceRuns, o.FinalRuns, o.Delta, o.MaxArms, o.Exhaustive)
	// Appended only when set, so every pre-CRN cache key is unchanged.
	if o.PairedSeeds {
		s += "|crn=true"
	}
	return s
}

// arm is the engine's per-arm state.
type arm struct {
	idx    int
	name   string
	key    string
	seed   int64
	adv    sim.Adversary
	bound  float64
	counts [4]int64
	runs   int64
	mean   float64
	lo, hi float64
	status string
	wave   int
	by     string
	active bool
	// vals holds the per-run payoff sequence in paired order (CRN racing
	// only): vals[i] is the payoff of master-stream run i, so two arms'
	// vals pair index by index over their common prefix.
	vals []float64
}

type engine struct {
	proto   sim.Protocol
	gamma   core.Payoff
	sampler core.InputSampler
	seed    int64
	o       Options
	values  [4]float64 // gamma over the canonical events
	gmin    float64
	span    float64
	z       float64
	arms    []*arm
	em      *emitter
	metrics sim.Metrics
	total   int64
	// paired/master configure CRN racing (Options.PairedSeeds).
	paired bool
	master int64
}

// Run executes a best-response search over the space. See the package
// comment for the schedule and RunContext for cancellation.
func Run(proto sim.Protocol, space core.StrategySpace, gamma core.Payoff,
	sampler core.InputSampler, seed int64, o Options) (*Report, error) {
	return RunContext(context.Background(), proto, space, gamma, sampler, seed, o)
}

// RunContext is Run with cancellation: ctx is checked before every
// estimate, so a canceled search stops at a record boundary — the
// checkpoint stays resumable.
func RunContext(ctx context.Context, proto sim.Protocol, space core.StrategySpace,
	gamma core.Payoff, sampler core.InputSampler, seed int64, o Options) (*Report, error) {
	if space == nil || space.Len() == 0 {
		return nil, errors.New("search: empty strategy space")
	}
	o = o.withDefaults()
	params := ParamString(proto.Name(), space.Describe(), gamma, o)

	e := &engine{proto: proto, gamma: gamma, sampler: sampler, seed: seed, o: o}
	for i, ev := range core.Events() {
		e.values[i] = gamma.Of(ev)
	}
	e.gmin, e.span = math.Inf(1), 0
	gmax := math.Inf(-1)
	for _, v := range e.values {
		e.gmin = math.Min(e.gmin, v)
		gmax = math.Max(gmax, v)
	}
	e.span = gmax - e.gmin

	bounded, _ := space.(core.BoundedSpace)
	e.arms = make([]*arm, space.Len())
	base := baseParams(proto.Name(), space.Describe(), gamma)
	keys := params
	for i := range e.arms {
		na := space.At(i)
		// Arm keys hash the schedule-free base params: the arm's seed (and
		// hence its estimates) must not depend on which schedule visits it.
		h := keyHash(base+"|arm="+na.Name, seed)
		b := gmax
		if bounded != nil {
			b = bounded.UpperBound(i, gamma)
		}
		e.arms[i] = &arm{
			idx:   i,
			name:  na.Name,
			key:   fmt.Sprintf("%016x", h),
			seed:  int64(h &^ (1 << 63)),
			adv:   na.Adv,
			bound: b,
		}
		keys += "\n" + e.arms[i].key
	}

	// Union-bound accounting: at most one interval check per arm per
	// wave, plus the admission pass and the final certificate. CRN racing
	// adds a second (paired) elimination check per arm per wave, so the
	// per-check budget halves to keep the joint guarantee.
	checks := len(e.arms) * (o.maxWaves() + 2)
	if o.PairedSeeds {
		checks *= 2
	}
	deltaPrime := o.Delta / float64(checks)
	e.z = stats.ZQuantile(deltaPrime)
	if o.PairedSeeds {
		e.paired = true
		e.master = int64(keyHash(base+"|crn", seed) &^ (1 << 63))
	}

	// Checkpointing: create fresh, or resume an existing stream. A file
	// that exists but belongs to a different search is an error, never
	// silently overwritten.
	e.em = &emitter{}
	if o.Checkpoint != "" {
		hd := header{
			Kind:    "search-header",
			Version: checkpointVersion,
			Seed:    seed,
			Arms:    len(e.arms),
			Grid:    fmt.Sprintf("%016x", keyHash(keys, seed)),
		}
		if _, statErr := os.Stat(o.Checkpoint); statErr == nil {
			recs, truncateTo, err := loadCheckpoint(o.Checkpoint, hd)
			if err != nil {
				return nil, err
			}
			cp, err := resumeCheckpoint(o.Checkpoint, truncateTo)
			if err != nil {
				return nil, err
			}
			e.em = &emitter{cp: cp, replay: recs}
		} else {
			cp, err := createCheckpoint(o.Checkpoint, hd)
			if err != nil {
				return nil, err
			}
			e.em = &emitter{cp: cp}
		}
		defer e.em.cp.close()
	}

	var rep *Report
	var err error
	if o.Exhaustive {
		rep, err = e.runExhaustive(ctx)
	} else {
		rep, err = e.runRacing(ctx)
	}
	if err != nil {
		return nil, err
	}
	rep.Params = params
	rep.ExhaustiveRuns = int64(len(e.arms)) * int64(o.FinalRuns)
	rep.TotalRuns = e.total
	rep.Delta = o.Delta
	rep.DeltaPrime = deltaPrime
	rep.Z = e.z
	rep.Replayed = e.em.pos
	rep.Metrics = e.metrics
	rep.Arms = make([]ArmResult, len(e.arms))
	for i, a := range e.arms {
		rep.Arms[i] = ArmResult{
			Name: a.name, Key: a.key, Index: a.idx, Bound: a.bound,
			Runs: a.runs, Mean: a.mean, Lo: a.lo, Hi: a.hi,
			Status: a.status, Wave: a.wave, By: a.by,
		}
	}
	return rep, nil
}

// interval recomputes an arm's cumulative mean and Wilson interval
// from its accumulated counts.
func (e *engine) interval(a *arm) error {
	est, err := stats.EstimateFromCounts(e.values[:], a.counts[:])
	if err != nil {
		return fmt.Errorf("search: arm %q: %w", a.name, err)
	}
	a.mean = est.Mean
	if e.span == 0 {
		a.lo, a.hi = a.mean, a.mean
		return nil
	}
	p := (a.mean - e.gmin) / e.span
	lo, hi := stats.WilsonScore(p, a.runs, e.z)
	a.lo = e.gmin + lo*e.span
	a.hi = e.gmin + hi*e.span
	return nil
}

// estimate runs `runs` fresh simulations of the arm at the given seed
// and returns the outcome counts. extra appends caller options (the
// CRN racing options of a paired wave).
func (e *engine) estimate(a *arm, runs int, seed int64, extra ...core.Option) ([4]int64, core.UtilityReport, error) {
	opts := []core.Option{
		core.WithParallelism(e.o.Parallelism),
		core.WithMetrics(&e.metrics),
	}
	if e.o.BatchSize > 0 {
		opts = append(opts, core.WithBatchSize(e.o.BatchSize))
	}
	if e.o.NoCompiledPlans {
		opts = append(opts, core.WithCompiledPlans(false))
	}
	opts = append(opts, extra...)
	rep, err := core.EstimateUtility(e.proto, a.adv, e.gamma, e.sampler, runs, seed, opts...)
	if err != nil {
		return [4]int64{}, core.UtilityReport{}, fmt.Errorf("search: arm %q: %w", a.name, err)
	}
	var counts [4]int64
	for i, ev := range core.Events() {
		// EventFreq is count/runs exactly; the rounding recovers the
		// integer count exactly for runs ≤ 2^52.
		counts[i] = int64(math.Round(rep.EventFreq[ev] * float64(runs)))
	}
	return counts, rep, nil
}

// wave runs (or replays) one wave of an arm: addRuns fresh runs at the
// wave seed, folded into the arm's cumulative counts. In paired (CRN)
// mode the wave draws its coins from the master stream at the arm's
// cumulative run offset and logs per-run payoffs into a.vals; a
// replayed paired wave re-simulates only to recover that log (the
// replayed counts stay authoritative — the re-measurement is the same
// deterministic computation, so nothing can disagree).
func (e *engine) waveStep(ctx context.Context, a *arm, w, addRuns int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	pairedOpts := func(log []core.Event) []core.Option {
		return []core.Option{
			core.WithPairedSeeds(e.master),
			core.WithPairedOffset(int(a.runs)),
			core.WithEventLog(log),
		}
	}
	logVals := func(log []core.Event) {
		for _, ev := range log {
			a.vals = append(a.vals, e.values[ev-1])
		}
	}
	rec, replayed, err := e.em.step("wave", a.name, w, func() (Record, error) {
		var extra []core.Option
		var log []core.Event
		if e.paired {
			log = make([]core.Event, addRuns)
			extra = pairedOpts(log)
		}
		counts, _, err := e.estimate(a, addRuns, a.seed+int64(w)*7919, extra...)
		if err != nil {
			return Record{}, err
		}
		if e.paired {
			logVals(log)
		}
		for i, c := range counts {
			a.counts[i] += c
		}
		a.runs += int64(addRuns)
		if err := e.interval(a); err != nil {
			return Record{}, err
		}
		return Record{
			Kind: "wave", Arm: a.name, Key: a.key, Wave: w, Runs: addRuns,
			Events: counts, Mean: a.mean, Lo: a.lo, Hi: a.hi,
		}, nil
	})
	if err != nil {
		return err
	}
	if replayed {
		if rec.Runs != addRuns {
			return fmt.Errorf("search: checkpoint wave %d of %q has %d runs, schedule expects %d", w, a.name, rec.Runs, addRuns)
		}
		if e.paired {
			log := make([]core.Event, rec.Runs)
			if _, _, err := e.estimate(a, rec.Runs, a.seed+int64(w)*7919, pairedOpts(log)...); err != nil {
				return err
			}
			logVals(log)
		}
		for i, c := range rec.Events {
			a.counts[i] += c
		}
		a.runs += int64(rec.Runs)
		if err := e.interval(a); err != nil {
			return err
		}
	}
	e.total += int64(addRuns)
	return nil
}

// pairedDominated reports whether the leader's paired per-run advantage
// over arm a is certifiably positive: the z-widened PairedEstimate of
// lead − a over the arms' common master-stream prefix lies entirely
// above 0. Only meaningful under CRN racing (always false otherwise).
func (e *engine) pairedDominated(lead, a *arm) bool {
	if !e.paired {
		return false
	}
	m := len(lead.vals)
	if len(a.vals) < m {
		m = len(a.vals)
	}
	if m < 2 {
		return false
	}
	est, err := stats.PairedEstimateZ(lead.vals[:m], a.vals[:m], e.z)
	if err != nil {
		return false
	}
	return est.Lo() > 0
}

// leader returns the active arm with the greatest mean, ties broken in
// canonical order. Never-estimated arms (zero runs) and NaN means never
// lead.
func (e *engine) leader() *arm {
	var best *arm
	for _, a := range e.arms {
		if !a.active || a.runs == 0 || math.IsNaN(a.mean) {
			continue
		}
		if best == nil || a.mean > best.mean {
			best = a
		}
	}
	return best
}

func (e *engine) runRacing(ctx context.Context) (*Report, error) {
	o := e.o
	// Admission: descending static bound, ties in canonical order.
	order := make([]*arm, len(e.arms))
	copy(order, e.arms)
	sort.SliceStable(order, func(i, j int) bool { return order[i].bound > order[j].bound })

	admitted := 0
	incumbentLo := math.Inf(-1)
	incumbentBy := ""
	for _, a := range order {
		capped := o.MaxArms > 0 && admitted >= o.MaxArms
		if a.bound < incumbentLo || capped {
			by := incumbentBy
			if capped {
				by = "arms-cap"
			}
			rec, _, err := e.em.step("prune", a.name, 0, func() (Record, error) {
				return Record{
					Kind: "prune", Arm: a.name, Key: a.key,
					Hi: a.bound, Bound: a.bound, By: by,
				}, nil
			})
			if err != nil {
				return nil, err
			}
			a.status, a.by, a.hi = StatusPruned, rec.By, a.bound
			continue
		}
		if err := e.waveStep(ctx, a, 1, o.Wave); err != nil {
			return nil, err
		}
		a.active = true
		admitted++
		if a.lo > incumbentLo {
			incumbentLo, incumbentBy = a.lo, a.name
		}
	}
	if admitted == 0 {
		return nil, errors.New("search: no arm admitted (all pruned)")
	}

	// Racing waves.
	waves := 1
	per := o.Wave
	for w := 2; w <= o.maxWaves(); w++ {
		lead := e.leader()
		if lead == nil {
			return nil, errors.New("search: no comparable arm (all means NaN)")
		}
		// Elimination pass: kill any active arm whose certified upper end
		// (interval or static bound) falls below the leader's lower end —
		// or, under CRN racing, whose paired per-run deficit against the
		// leader is certifiably positive over the common run prefix (the
		// pairing cancels the shared coin noise, so correlated arms
		// separate waves earlier than their Wilson intervals do).
		for _, a := range e.arms {
			if !a.active || a == lead {
				continue
			}
			if math.Min(a.hi, a.bound) < lead.lo || e.pairedDominated(lead, a) {
				lo := lead.lo
				_, _, err := e.em.step("kill", a.name, w-1, func() (Record, error) {
					return Record{
						Kind: "kill", Arm: a.name, Key: a.key, Wave: w - 1,
						Mean: a.mean, Lo: a.lo, Hi: a.hi,
						Bound: lo, By: lead.name,
					}, nil
				})
				if err != nil {
					return nil, err
				}
				a.active = false
				a.status, a.wave, a.by = StatusKilled, w-1, lead.name
			}
		}
		active := 0
		for _, a := range e.arms {
			if a.active {
				active++
			}
		}
		if active <= 1 {
			break
		}
		per *= o.Growth
		progressed := false
		for _, a := range e.arms {
			if !a.active {
				continue
			}
			add := per
			if int64(add) > int64(o.RaceRuns)-a.runs {
				add = int(int64(o.RaceRuns) - a.runs)
			}
			if add <= 0 {
				continue
			}
			if err := e.waveStep(ctx, a, w, add); err != nil {
				return nil, err
			}
			progressed = true
		}
		if !progressed {
			break
		}
		waves = w
	}

	// Certification: the surviving leader gets a fresh estimate at the
	// canonical arm seed — exactly the exhaustive evaluation's estimate.
	winner := e.leader()
	if winner == nil {
		return nil, errors.New("search: no comparable arm (all means NaN)")
	}
	for _, a := range e.arms {
		if a.active && a != winner {
			a.status = StatusSurvivor
		}
	}
	best, err := e.finalStep(ctx, winner)
	if err != nil {
		return nil, err
	}
	winner.status = StatusBest
	return &Report{Best: winner.name, BestReport: best, Waves: waves}, nil
}

// finalStep runs (or replays) an arm's certification estimate.
func (e *engine) finalStep(ctx context.Context, a *arm) (core.UtilityReport, error) {
	if err := ctx.Err(); err != nil {
		return core.UtilityReport{}, err
	}
	var fresh *core.UtilityReport
	rec, replayed, err := e.em.step("final", a.name, 0, func() (Record, error) {
		counts, rep, err := e.estimate(a, e.o.FinalRuns, a.seed)
		if err != nil {
			return Record{}, err
		}
		fresh = &rep
		return Record{
			Kind: "final", Arm: a.name, Key: a.key, Runs: e.o.FinalRuns,
			Events: counts, Mean: rep.Utility.Mean,
			Lo: rep.Utility.Lo(), Hi: rep.Utility.Hi(),
		}, nil
	})
	if err != nil {
		return core.UtilityReport{}, err
	}
	e.total += int64(e.o.FinalRuns)
	var rep core.UtilityReport
	if replayed {
		if rec.Runs != e.o.FinalRuns {
			return core.UtilityReport{}, fmt.Errorf("search: checkpoint final of %q has %d runs, schedule expects %d",
				a.name, rec.Runs, e.o.FinalRuns)
		}
		rep, err = e.reportFromCounts(rec.Events, rec.Runs)
		if err != nil {
			return core.UtilityReport{}, err
		}
	} else {
		rep = *fresh
	}
	// The arm's reported interval becomes the certification interval.
	a.runs += int64(rec.Runs)
	a.mean = rep.Utility.Mean
	a.lo, a.hi = rep.Utility.Lo(), rep.Utility.Hi()
	return rep, nil
}

// reportFromCounts reconstructs a certification report from replayed
// counts. Utility, event frequencies, and run count are exact; the
// diagnostic rates (violations, breaches, corrupted) and engine metrics
// are not recorded in the checkpoint and come back zero.
func (e *engine) reportFromCounts(counts [4]int64, runs int) (core.UtilityReport, error) {
	est, err := stats.EstimateFromCounts(e.values[:], counts[:])
	if err != nil {
		return core.UtilityReport{}, err
	}
	freq := make(map[core.Event]float64, 4)
	for i, ev := range core.Events() {
		freq[ev] = float64(counts[i]) / float64(runs)
	}
	return core.UtilityReport{Utility: est, EventFreq: freq, Runs: runs}, nil
}

func (e *engine) runExhaustive(ctx context.Context) (*Report, error) {
	var best *arm
	var bestRep core.UtilityReport
	for _, a := range e.arms {
		rep, err := e.finalStep(ctx, a)
		if err != nil {
			return nil, err
		}
		a.status = StatusSurvivor
		if math.IsNaN(rep.Utility.Mean) {
			continue
		}
		if best == nil || rep.Utility.Mean > bestRep.Utility.Mean {
			best, bestRep = a, rep
		}
	}
	if best == nil {
		return nil, errors.New("search: no strategy produced a comparable utility")
	}
	best.status = StatusBest
	return &Report{Best: best.name, BestReport: bestRep}, nil
}
