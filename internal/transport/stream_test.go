package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// streamEcho runs a server that echoes every payload back, n clients
// each sending msgs payloads, and asserts exactly-once in-order
// delivery in both directions.
func streamEcho(t *testing.T, cfg StreamConfig, clients, msgs int) {
	t.Helper()
	srv, err := ListenStream("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	// Server side: accept each stream, echo everything it sends.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var swg sync.WaitGroup
		for i := 0; i < clients; i++ {
			sc, err := srv.Accept(10 * time.Second)
			if err != nil {
				t.Errorf("accept %d: %v", i, err)
				return
			}
			swg.Add(1)
			go func(sc *StreamConn) {
				defer swg.Done()
				for j := 0; j < msgs; j++ {
					p, err := sc.Recv(20 * time.Second)
					if err != nil {
						t.Errorf("server recv (stream %d, msg %d): %v", sc.ID(), j, err)
						return
					}
					if err := sc.Send(p); err != nil {
						t.Errorf("server echo (stream %d, msg %d): %v", sc.ID(), j, err)
						return
					}
				}
			}(sc)
		}
		swg.Wait()
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := DialStream(srv.Addr(), cfg)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer conn.Close()
			for j := 0; j < msgs; j++ {
				want := fmt.Sprintf("stream %d payload %d", conn.ID(), j)
				if err := conn.SendAt(j+1, []byte(want)); err != nil {
					t.Errorf("send %d: %v", j, err)
					return
				}
				got, err := conn.Recv(20 * time.Second)
				if err != nil {
					t.Errorf("client recv %d: %v", j, err)
					return
				}
				if string(got) != want {
					t.Errorf("echo mismatch: got %q want %q", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestStreamEchoFaultFree(t *testing.T) {
	streamEcho(t, StreamConfig{Timeout: 5 * time.Second, Seed: 1}, 3, 30)
}

// TestStreamChaosProfiles drives the echo workload through seeded
// random fault profiles: every transient fault class must heal into
// exactly-once in-order delivery.
func TestStreamChaosProfiles(t *testing.T) {
	profiles := []struct {
		name string
		prof faultinject.Profile
	}{
		{"drops", faultinject.Profile{Drop: 0.05}},
		{"reorder+dup", faultinject.Profile{Reorder: 0.08, Duplicate: 0.08}},
		{"corrupt+disconnect", faultinject.Profile{Corrupt: 0.04, Disconnect: 0.04}},
	}
	for _, tc := range profiles {
		t.Run(tc.name, func(t *testing.T) {
			inj, err := faultinject.NewRandom(42, tc.prof)
			if err != nil {
				t.Fatal(err)
			}
			cfg := StreamConfig{
				Timeout:    400 * time.Millisecond,
				MaxResumes: 1 << 16,
				Fault:      inj,
				Seed:       42,
			}
			streamEcho(t, cfg, 2, 25)
		})
	}
}

// TestStreamKill pins the crash semantics: an injected Kill surfaces as
// ErrKilled on the send, and the stream stays dead — no resume, every
// later operation fails with ErrStreamClosed.
func TestStreamKill(t *testing.T) {
	inj, err := faultinject.NewRandom(7, faultinject.Profile{KillParty: 1, KillRound: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := StreamConfig{Timeout: 2 * time.Second, Fault: inj, Seed: 7}
	srv, err := ListenStream("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go func() {
		sc, err := srv.Accept(5 * time.Second)
		if err != nil {
			return
		}
		for {
			if _, err := sc.Recv(2 * time.Second); err != nil {
				return
			}
		}
	}()

	conn, err := DialStream(srv.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var killed bool
	for r := 1; r <= 10; r++ {
		err := conn.SendAt(r, []byte("x"))
		if err == nil {
			continue
		}
		if errors.Is(err, ErrKilled) && r >= 5 {
			killed = true
			break
		}
		t.Fatalf("send round %d: unexpected error %v", r, err)
	}
	if !killed {
		t.Fatal("kill profile never fired")
	}
	if err := conn.Send([]byte("y")); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("send after kill: got %v, want ErrStreamClosed", err)
	}
	if _, err := conn.Recv(100 * time.Millisecond); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("recv after kill: got %v, want ErrStreamClosed", err)
	}
}

// TestStreamResumeAfterServerConnLoss breaks the server-side socket
// mid-stream and asserts the client heals by redial+resume with no
// loss or reorder.
func TestStreamResumeAfterServerConnLoss(t *testing.T) {
	cfg := StreamConfig{Timeout: 500 * time.Millisecond, MaxResumes: 64, Seed: 3}
	srv, err := ListenStream("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		sc, err := srv.Accept(5 * time.Second)
		if err != nil {
			done <- err
			return
		}
		for j := 0; j < 20; j++ {
			p, err := sc.Recv(10 * time.Second)
			if err != nil {
				done <- fmt.Errorf("server recv %d: %w", j, err)
				return
			}
			if string(p) != fmt.Sprintf("m%d", j) {
				done <- fmt.Errorf("server recv %d: got %q", j, p)
				return
			}
			if err := sc.Send(p); err != nil {
				done <- fmt.Errorf("server echo %d: %w", j, err)
				return
			}
			if j == 7 {
				// Tear down the transport conn (not the stream): the
				// client's receive path must redial and resume, and the
				// replayed outboxes must heal both directions.
				sc.breakAll("test-induced loss")
			}
		}
		done <- nil
	}()

	conn, err := DialStream(srv.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for j := 0; j < 20; j++ {
		want := fmt.Sprintf("m%d", j)
		if err := conn.Send([]byte(want)); err != nil {
			t.Fatalf("send %d: %v", j, err)
		}
		got, err := conn.Recv(10 * time.Second)
		if err != nil {
			t.Fatalf("client recv %d: %v", j, err)
		}
		if string(got) != want {
			t.Fatalf("echo %d: got %q want %q", j, got, want)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	conn.mu.Lock()
	resumes := conn.resumes
	conn.mu.Unlock()
	if resumes == 0 {
		t.Fatal("expected at least one client resume after the induced loss")
	}
}
