package transport

// The generic reliable stream layer: the session transport's frame
// machinery (per-direction sequence numbers, FNV-1a checksums, outbox
// replay, dedup/reorder windows, the reconnect/resume handshake)
// promoted to an application-agnostic byte-message stream. A
// StreamServer accepts many independent client streams — each its own
// resumable session with its own token — which is what the distributed
// sweep fabric (internal/fabric) runs its coordinator↔worker links
// over: the same chaos hardening the protocol sessions get, reused for
// lease grants, heartbeats, and checkpoint records.
//
// Delivery contract: every payload handed to Send is delivered to the
// peer exactly once and in order, as long as the connection can be
// healed within the receiver's deadline; faults the resume handshake
// cannot heal surface as errors, never as loss, reorder, or
// duplication. faultinject.Injector plugs in via StreamConfig.Fault
// exactly as it does for sessions (first transmission only; replays
// bypass injection), so a chaos run over a stream is replayable from
// (seed, profile).

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/sim"
)

// ErrStreamClosed is returned by stream operations after Close (or
// after an injected Kill crashed the endpoint).
var ErrStreamClosed = errors.New("transport: stream closed")

// ErrStreamStalled is returned by Recv when no in-order payload arrived
// within the deadline, recovery attempts included. The connection is
// poisoned before returning, so the next Recv (or the peer's resume)
// starts from a clean reconnect instead of a half-read gob stream.
var ErrStreamStalled = errors.New("transport: stream stalled past deadline")

// StreamConfig tunes one side of a reliable stream. The zero value is
// usable: every field falls back to the session transport's defaults.
type StreamConfig struct {
	// Timeout is the per-frame read/write deadline; zero means
	// DefaultRoundTimeout. Keep it above the expected gap between
	// incoming frames: a receiver that reads nothing for a full Timeout
	// tears the connection down and heals it by resume, which is
	// correct but costs a reconnect.
	Timeout time.Duration
	// DialTimeout bounds each client dial attempt; zero means Timeout.
	DialTimeout time.Duration
	// DialAttempts bounds the client connect/reconnect retry loop
	// (exponential backoff); zero means DefaultDialAttempts.
	DialAttempts int
	// ReconnectWait is how long the server side waits for a broken
	// client to resume before giving up a Recv; zero means Timeout/2.
	ReconnectWait time.Duration
	// MaxResumes bounds resume handshakes granted per stream; zero
	// means DefaultMaxResumes.
	MaxResumes int
	// Fault, when non-nil, is consulted on every sequenced frame's
	// first transmission, exactly like SessionConfig.Fault. Client
	// endpoints send DirClientToHost frames; server endpoints
	// DirHostToClient. The Party of both is the server-assigned
	// stream ID.
	Fault faultinject.Injector
	// Seed drives the server's session-token derivation (splitmix64 of
	// (Seed, stream ID)), so resume tokens replay deterministically.
	Seed int64
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Timeout <= 0 {
		c.Timeout = DefaultRoundTimeout
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = c.Timeout
	}
	if c.DialAttempts <= 0 {
		c.DialAttempts = DefaultDialAttempts
	}
	if c.ReconnectWait <= 0 {
		c.ReconnectWait = c.Timeout / 2
	}
	if c.MaxResumes <= 0 {
		c.MaxResumes = DefaultMaxResumes
	}
	return c
}

// StreamConn is one end of a reliable, resumable byte-message stream.
// Send and Recv are safe for concurrent use with each other (one
// sender goroutine plus one receiver goroutine is the intended shape).
type StreamConn struct {
	endpoint
	id    int
	token uint64
	cfg   StreamConfig

	// client-side redial state; empty addr on the server side.
	addr string

	// server-side resume plumbing (mirrors hostPeer).
	serverSide bool
	resumed    chan struct{}

	// resumes and closed are guarded by endpoint.mu.
	resumes int
	closed  bool
}

// ID returns the server-assigned stream identifier (1-based).
func (sc *StreamConn) ID() int { return sc.id }

// Close tears the stream down. The peer sees the loss as a connection
// fault; a closed stream refuses resumes, so the peer's recovery fails
// rather than resurrecting it.
func (sc *StreamConn) Close() error {
	sc.mu.Lock()
	sc.closed = true
	sc.mu.Unlock()
	sc.endpoint.close()
	return nil
}

func (sc *StreamConn) isClosed() bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.closed
}

// Send transmits one payload reliably (Round 0).
func (sc *StreamConn) Send(payload []byte) error { return sc.SendAt(0, payload) }

// SendAt transmits one payload reliably, stamping the frame's Round so
// fault schedules can target application-level progress (the fabric
// stamps the worker's record ordinal, making "crash at round r" mean
// "crash while sending the r-th record"). An injected Kill closes the
// stream permanently and returns ErrKilled.
func (sc *StreamConn) SendAt(round int, payload []byte) error {
	if sc.isClosed() {
		return ErrStreamClosed
	}
	err := sc.sendReliable(frame{Kind: kindData, ID: sc.id, Round: round, Output: payload})
	if errors.Is(err, ErrKilled) {
		// The crash is permanent: refuse any later send/recv/resume.
		sc.mu.Lock()
		sc.closed = true
		sc.mu.Unlock()
	}
	return err
}

// Recv returns the next in-order payload, healing the connection as
// needed (server: wait for the client's resume; client: redial and
// resume). The timeout bounds the whole operation including recovery;
// on expiry the connection is poisoned and ErrStreamStalled returned,
// so a later Recv starts from a clean resume.
func (sc *StreamConn) Recv(timeout time.Duration) ([]byte, error) {
	if sc.isClosed() {
		return nil, ErrStreamClosed
	}
	deadline := time.Now().Add(timeout)
	recover := sc.recoverClient
	if sc.serverSide {
		recover = sc.awaitResume
	}
	f, err := sc.recvReliable(deadline, recover)
	if err != nil {
		if errors.Is(err, errBudget) {
			sc.breakAll("stall (stream deadline)")
			return nil, ErrStreamStalled
		}
		if errors.Is(err, errNoResume) {
			return nil, fmt.Errorf("%w: peer did not resume within %v", ErrStreamStalled, sc.cfg.ReconnectWait)
		}
		return nil, err
	}
	if f.Kind != kindData {
		return nil, fmt.Errorf("transport: stream %d: unexpected %v frame", sc.id, f.Kind)
	}
	return f.Output, nil
}

// awaitResume is the server-side recovery step: wait (bounded by
// ReconnectWait and the op deadline) for the accept loop to install a
// resumed connection.
func (sc *StreamConn) awaitResume(deadline time.Time) error {
	wait := sc.cfg.ReconnectWait
	if rem := time.Until(deadline); rem < wait {
		wait = rem
	}
	if wait <= 0 {
		return errNoResume
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		sc.mu.Lock()
		broken, closed := sc.broken, sc.closed
		sc.mu.Unlock()
		if closed {
			return ErrStreamClosed
		}
		if !broken {
			return nil
		}
		select {
		case <-sc.resumed:
		case <-timer.C:
			return errNoResume
		}
	}
}

// handleResume (server accept-loop side) adopts a fresh connection for
// a broken stream: install, trim the outbox by the client's ack,
// answer with our ack, replay. A closed or resume-exhausted stream
// refuses, which is what keeps a worker the coordinator declared dead
// from resurrecting its session.
func (sc *StreamConn) handleResume(conn net.Conn, enc *gob.Encoder, dec *gob.Decoder, clientAck uint64) {
	sc.mu.Lock()
	if sc.closed || sc.resumes >= sc.cfg.MaxResumes {
		sc.mu.Unlock()
		_ = conn.Close()
		return
	}
	sc.resumes++
	if sc.conn != nil {
		_ = sc.conn.Close()
	}
	sc.conn, sc.enc, sc.dec = conn, enc, dec
	sc.gen++
	sc.broken = false
	i := 0
	for i < len(sc.outbox) && sc.outbox[i].Seq <= clientAck {
		i++
	}
	sc.outbox = append([]frame(nil), sc.outbox[i:]...)
	replay := append([]frame(nil), sc.outbox...)
	ack := sc.lastRecv
	sc.mu.Unlock()

	sc.wmu.Lock()
	if writeFrame(conn, enc, sc.timeout, frame{Kind: kindResumeAck, Ack: ack}) == nil {
		for _, f := range replay {
			if writeFrame(conn, enc, sc.timeout, f) != nil {
				break
			}
		}
	}
	sc.wmu.Unlock()

	select {
	case sc.resumed <- struct{}{}:
	default:
	}
}

// dialStream runs one handshake attempt per dial with exponential
// backoff, mirroring clientPeer.dialRetry.
func (sc *StreamConn) dialStream(attempt func(conn net.Conn, enc *gob.Encoder, dec *gob.Decoder) error) error {
	backoff := 20 * time.Millisecond
	var lastErr error
	for i := 0; i < sc.cfg.DialAttempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		conn, err := net.DialTimeout("tcp", sc.addr, sc.cfg.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		if err := attempt(conn, gob.NewEncoder(conn), gob.NewDecoder(conn)); err != nil {
			_ = conn.Close()
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("transport: dial %s after %d attempts: %w", sc.addr, sc.cfg.DialAttempts, lastErr)
}

// recoverClient is the client-side recovery step: redial, resume with
// our cumulative ack, adopt the server's ack, replay the outbox.
func (sc *StreamConn) recoverClient(deadline time.Time) error {
	if sc.isClosed() {
		return ErrStreamClosed
	}
	sc.mu.Lock()
	budget := sc.resumes < sc.cfg.MaxResumes
	if budget {
		sc.resumes++
	}
	sc.mu.Unlock()
	if !budget {
		return fmt.Errorf("transport: stream %d: resume budget (%d) exhausted", sc.id, sc.cfg.MaxResumes)
	}
	return sc.dialStream(func(conn net.Conn, enc *gob.Encoder, dec *gob.Decoder) error {
		if time.Now().After(deadline) {
			return errBudget
		}
		rf := frame{Kind: kindResume, ID: sc.id, Token: sc.token, Ack: sc.ackSeq()}
		if err := writeFrame(conn, enc, sc.timeout, rf); err != nil {
			return err
		}
		var ack frame
		if err := readFrame(conn, dec, sc.timeout, &ack); err != nil {
			return err
		}
		if ack.Kind != kindResumeAck {
			return fmt.Errorf("expected resume-ack frame, got %v", ack.Kind)
		}
		sc.install(conn, enc, dec)
		sc.trimOutbox(ack.Ack)
		replay := sc.replayList()
		sc.wmu.Lock()
		for _, f := range replay {
			if writeFrame(conn, enc, sc.timeout, f) != nil {
				break
			}
		}
		sc.wmu.Unlock()
		return nil
	})
}

// StreamServer accepts reliable client streams on one listener and
// routes resume handshakes back to the stream they belong to.
type StreamServer struct {
	ln  net.Listener
	cfg StreamConfig

	acceptCh chan *StreamConn
	done     chan struct{}

	mu     sync.Mutex
	conns  map[int]*StreamConn
	nextID int
	closed bool
}

// ListenStream starts a stream server on addr ("127.0.0.1:0" for an
// ephemeral test port).
func ListenStream(addr string, cfg StreamConfig) (*StreamServer, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &StreamServer{
		ln:       ln,
		cfg:      cfg,
		acceptCh: make(chan *StreamConn, 64),
		done:     make(chan struct{}),
		conns:    make(map[int]*StreamConn),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *StreamServer) Addr() string { return s.ln.Addr().String() }

// Accept returns the next fresh client stream, or an error when the
// timeout expires or the server closes. Streams already handed out are
// unaffected by either.
func (s *StreamServer) Accept(timeout time.Duration) (*StreamConn, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case sc := <-s.acceptCh:
		return sc, nil
	case <-timer.C:
		return nil, fmt.Errorf("transport: accept timed out after %v", timeout)
	case <-s.done:
		return nil, ErrStreamClosed
	}
}

// Close stops accepting new streams. Streams already accepted stay
// usable until their own Close.
func (s *StreamServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	return s.ln.Close()
}

func (s *StreamServer) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.handle(conn)
	}
}

// handle dispatches one fresh TCP connection: a hello opens a new
// stream (the server assigns the ID and token), a resume re-attaches a
// broken one.
func (s *StreamServer) handle(conn net.Conn) {
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	var f frame
	if err := readFrame(conn, dec, s.cfg.Timeout, &f); err != nil {
		_ = conn.Close()
		return
	}
	switch f.Kind {
	case kindHello:
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.nextID++
		id := s.nextID
		sc := &StreamConn{
			endpoint: endpoint{
				party:    id,
				dir:      faultinject.DirHostToClient,
				timeout:  s.cfg.Timeout,
				fault:    s.cfg.Fault,
				hostSide: true,
				pending:  make(map[uint64]frame),
			},
			id:         id,
			token:      sessionToken(s.cfg.Seed, sim.PartyID(id)),
			cfg:        s.cfg,
			serverSide: true,
			resumed:    make(chan struct{}, 1),
		}
		s.conns[id] = sc
		s.mu.Unlock()
		sc.install(conn, enc, dec)
		sc.wmu.Lock()
		err := writeFrame(conn, enc, s.cfg.Timeout, frame{Kind: kindWelcome, ID: id, Token: sc.token})
		sc.wmu.Unlock()
		if err != nil {
			// The client redials its hello; this half-open stream is
			// abandoned (its ID is burned, never reused).
			sc.breakAll(causeOf(err))
			return
		}
		select {
		case s.acceptCh <- sc:
		case <-s.done:
			_ = sc.Close()
		}
	case kindResume:
		s.mu.Lock()
		sc := s.conns[f.ID]
		s.mu.Unlock()
		if sc == nil || f.Token != sc.token {
			_ = conn.Close()
			return
		}
		sc.handleResume(conn, enc, dec, f.Ack)
	default:
		_ = conn.Close()
	}
}

// DialStream opens a reliable client stream to a StreamServer: dial
// with bounded retry, hello, adopt the server-assigned ID and token.
func DialStream(addr string, cfg StreamConfig) (*StreamConn, error) {
	cfg = cfg.withDefaults()
	sc := &StreamConn{
		endpoint: endpoint{
			dir:     faultinject.DirClientToHost,
			timeout: cfg.Timeout,
			fault:   cfg.Fault,
			pending: make(map[uint64]frame),
		},
		cfg:  cfg,
		addr: addr,
	}
	err := sc.dialStream(func(conn net.Conn, enc *gob.Encoder, dec *gob.Decoder) error {
		if err := writeFrame(conn, enc, cfg.Timeout, frame{Kind: kindHello}); err != nil {
			return err
		}
		var w frame
		if err := readFrame(conn, dec, cfg.Timeout, &w); err != nil {
			return err
		}
		if w.Kind != kindWelcome {
			return fmt.Errorf("expected welcome frame, got %v", w.Kind)
		}
		sc.id = w.ID
		sc.token = w.Token
		sc.party = w.ID
		sc.install(conn, enc, dec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sc, nil
}
