package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/protocols/contract"
	"repro/internal/protocols/multiparty"
	"repro/internal/sim"
)

// chaosTimeout is the round timeout for chaos tests: long enough that a
// loaded CI machine never trips it spuriously, short enough that the
// recovery paths (which cost ~1×RoundTimeout per healed fault) keep the
// suite fast.
const chaosTimeout = 250 * time.Millisecond

func mustConcat(t *testing.T, n, bits int) multiparty.Function {
	t.Helper()
	fn, err := multiparty.Concat(n, bits)
	if err != nil {
		t.Fatal(err)
	}
	return fn
}

// inMemoryTrace runs the fault-free reference execution.
func inMemoryTrace(t *testing.T, proto sim.Protocol, inputs []sim.Value, seed int64) *sim.Trace {
	t.Helper()
	tr, err := sim.Run(proto, inputs, sim.Passive{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// assertByteIdentical checks that the session's outputs equal the
// reference outputs byte-for-byte under the session codec — the
// resilience layer's healing guarantee.
func assertByteIdentical(t *testing.T, label string, got, want map[sim.PartyID]sim.OutputRecord) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d outputs, want %d", label, len(got), len(want))
		return
	}
	codec := GobCodec{}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Errorf("%s: party %d missing output", label, id)
			continue
		}
		if g.OK != w.OK {
			t.Errorf("%s: party %d OK=%v, want %v", label, id, g.OK, w.OK)
			continue
		}
		if !w.OK {
			continue
		}
		gb, err := codec.Encode(g.Value)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := codec.Encode(w.Value)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gb, wb) {
			t.Errorf("%s: party %d output %v not byte-identical to fault-free %v", label, id, g.Value, w.Value)
		}
	}
}

// runReportGuarded runs one session under an outer watchdog so a
// regression can never hang the suite.
func runReportGuarded(t *testing.T, proto sim.Protocol, inputs []sim.Value, seed int64, cfg SessionConfig) *SessionReport {
	t.Helper()
	type result struct {
		rep *SessionReport
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := RunSessionReport(proto, inputs, seed, cfg)
		done <- result{rep, err}
	}()
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatalf("session error: %v", res.err)
		}
		return res.rep
	case <-time.After(30 * time.Second):
		t.Fatal("chaos session hung")
		return nil
	}
}

// TestChaosMatrixRecoverableFaults is the seeded chaos matrix: protocol
// × fault schedule, every fault transient. Each cell must (a) heal —
// no fail-stops, outputs byte-identical to the fault-free in-memory
// run, observer metrics identical to an in-memory observed run — and
// (b) replay deterministically across a second run of the same
// (seed, schedule).
func TestChaosMatrixRecoverableFaults(t *testing.T) {
	register()
	protocols := []struct {
		name   string
		proto  sim.Protocol
		inputs []sim.Value
		seed   int64
	}{
		{"pi1", contract.Pi1{}, []sim.Value{uint64(101), uint64(202)}, 3},
		{"optn3", multiparty.NewOptN(mustConcat(t, 3, 8)), []sim.Value{uint64(1), uint64(2), uint64(3)}, 5},
	}
	schedules := []struct {
		name        string
		rules       []faultinject.Rule
		needsResume bool
	}{
		{"drop-setup", []faultinject.Rule{
			{Party: 1, Dir: faultinject.DirHostToClient, Seq: 1, Op: faultinject.Drop}}, true},
		{"drop-inbox-r1", []faultinject.Rule{
			{Party: 1, Dir: faultinject.DirHostToClient, Round: 1, Op: faultinject.Drop}}, true},
		{"drop-batch-r1", []faultinject.Rule{
			{Party: 2, Dir: faultinject.DirClientToHost, Round: 1, Op: faultinject.Drop}}, true},
		{"duplicate-batch", []faultinject.Rule{
			{Party: 2, Dir: faultinject.DirClientToHost, Round: 1, Op: faultinject.Duplicate}}, false},
		{"reorder-inbox", []faultinject.Rule{
			{Party: 1, Dir: faultinject.DirHostToClient, Round: 1, Op: faultinject.Reorder}}, true},
		{"corrupt-batch", []faultinject.Rule{
			{Party: 2, Dir: faultinject.DirClientToHost, Round: 1, Op: faultinject.Corrupt}}, true},
		{"disconnect-after-inbox", []faultinject.Rule{
			{Party: 1, Dir: faultinject.DirHostToClient, Round: 1, Op: faultinject.Disconnect}}, true},
		{"delay-inbox", []faultinject.Rule{
			{Party: 1, Dir: faultinject.DirHostToClient, Round: 1, Op: faultinject.Delay, Delay: 30 * time.Millisecond}}, false},
	}
	for _, pc := range protocols {
		ref := inMemoryTrace(t, pc.proto, pc.inputs, pc.seed)
		var refMetrics sim.Metrics
		if _, err := sim.RunObserved(pc.proto, pc.inputs, sim.Passive{}, pc.seed, &refMetrics); err != nil {
			t.Fatal(err)
		}
		for _, sc := range schedules {
			t.Run(pc.name+"/"+sc.name, func(t *testing.T) {
				var reports [2]*SessionReport
				for i := range reports {
					var m sim.Metrics
					cfg := SessionConfig{
						RoundTimeout: chaosTimeout,
						Fault:        faultinject.NewSchedule(sc.rules...),
						Observers:    []sim.Observer{&m},
					}
					reports[i] = runReportGuarded(t, pc.proto, pc.inputs, pc.seed, cfg)
					if len(reports[i].FailStops) != 0 {
						t.Fatalf("run %d: transient fault fail-stopped: %+v", i, reports[i].FailStops)
					}
					assertByteIdentical(t, fmt.Sprintf("run %d", i), reports[i].Outputs, ref.HonestOutputs)
					if m != refMetrics {
						t.Errorf("run %d: session metrics %+v differ from in-memory %+v", i, m, refMetrics)
					}
				}
				if sc.needsResume && reports[0].Resumes == 0 {
					t.Error("fault healed without any resume handshake — schedule did not exercise recovery")
				}
				assertByteIdentical(t, "determinism", reports[1].Outputs, reports[0].Outputs)
			})
		}
	}
}

// TestChaosRandomProfileHeals drives the seeded Random injector at low
// transient rates: the whole run is a pure function of (seed, profile),
// so outputs must stay byte-identical to the fault-free run and to a
// replay of the same seed.
func TestChaosRandomProfileHeals(t *testing.T) {
	register()
	proto := multiparty.NewOptN(mustConcat(t, 3, 8))
	inputs := []sim.Value{uint64(4), uint64(5), uint64(6)}
	prof := faultinject.Profile{
		Drop: 0.03, Delay: 0.05, Duplicate: 0.04, Reorder: 0.02, Corrupt: 0.02, Disconnect: 0.02,
		MaxDelay: 4 * time.Millisecond,
	}
	for seed := int64(1); seed <= 3; seed++ {
		ref := inMemoryTrace(t, proto, inputs, seed)
		var reports [2]*SessionReport
		for i := range reports {
			inj, err := faultinject.NewRandom(seed, prof)
			if err != nil {
				t.Fatal(err)
			}
			cfg := SessionConfig{RoundTimeout: chaosTimeout, Fault: inj, MaxResumes: 64}
			reports[i] = runReportGuarded(t, proto, inputs, seed, cfg)
			if len(reports[i].FailStops) != 0 {
				t.Fatalf("seed %d run %d: transient profile fail-stopped: %+v", seed, i, reports[i].FailStops)
			}
			assertByteIdentical(t, fmt.Sprintf("seed %d run %d", seed, i), reports[i].Outputs, ref.HonestOutputs)
		}
		assertByteIdentical(t, fmt.Sprintf("seed %d determinism", seed), reports[1].Outputs, reports[0].Outputs)
	}
}

// TestChaosClientCrashMidRound kills one party at its round-k batch:
// the session must terminate within the recovery budget with a
// deterministic fail-stop verdict naming the party, the round, and a
// connection-loss cause, while the survivors finish the run.
func TestChaosClientCrashMidRound(t *testing.T) {
	register()
	proto := multiparty.NewOptN(mustConcat(t, 3, 8))
	inputs := []sim.Value{uint64(7), uint64(8), uint64(9)}
	killRound := 2
	if proto.NumRounds() < killRound {
		killRound = 1
	}
	var verdicts [2]sim.FailStopInfo
	for i := range verdicts {
		var m sim.Metrics
		cfg := SessionConfig{
			RoundTimeout: chaosTimeout,
			Fault: faultinject.NewSchedule(faultinject.Rule{
				Party: 2, Dir: faultinject.DirClientToHost, Round: killRound, Op: faultinject.Kill,
			}),
			Observers: []sim.Observer{&m},
		}
		start := time.Now()
		rep := runReportGuarded(t, proto, inputs, 11, cfg)
		elapsed := time.Since(start)

		info, ok := rep.FailStops[2]
		if !ok {
			t.Fatalf("run %d: no fail-stop verdict for killed party 2: %+v", i, rep.FailStops)
		}
		verdicts[i] = info
		if info.Round != killRound {
			t.Errorf("run %d: fail-stop round = %d, want %d", i, info.Round, killRound)
		}
		if !strings.Contains(info.Cause, "connection lost") {
			t.Errorf("run %d: fail-stop cause %q does not name the connection loss", i, info.Cause)
		}
		if m.FailStops != 1 {
			t.Errorf("run %d: Metrics.FailStops = %d, want 1", i, m.FailStops)
		}
		for _, id := range []sim.PartyID{1, 3} {
			if _, ok := rep.Outputs[id]; !ok {
				t.Errorf("run %d: surviving party %d has no output record", i, id)
			}
		}
		if _, ok := rep.Outputs[2]; ok {
			t.Errorf("run %d: killed party 2 has an output record", i)
		}
		if want, ok := rep.ClientErrors[2]; !ok || !strings.Contains(want, "killed") {
			t.Errorf("run %d: ClientErrors[2] = %q, want the kill sentinel", i, want)
		}
		// Fatal faults must terminate within the recovery budget: kill
		// detection costs at most 2×RoundTimeout on top of the normal
		// session; the ceiling leaves slack for CI scheduling.
		if budget := 2*cfg.RoundTimeout + 2*time.Second; elapsed > budget {
			t.Errorf("run %d: session took %v, want under %v", i, elapsed, budget)
		}
	}
	if verdicts[0] != verdicts[1] {
		t.Errorf("fail-stop verdict not deterministic: %+v vs %+v", verdicts[0], verdicts[1])
	}
}

// TestChaosConnectionResetDuringSetup covers a peer whose connection
// resets right after the handshake, before any round traffic: the host
// must fail-stop it at round 1 with a connection-loss cause.
func TestChaosConnectionResetDuringSetup(t *testing.T) {
	register()
	proto := contract.Pi1{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	cfg := SessionConfig{Codec: GobCodec{}, RoundTimeout: chaosTimeout}

	go func() { _ = runClient(ln.Addr().String(), proto, 1, uint64(5), cfg) }()
	// Party 2 completes hello/welcome and immediately drops the line.
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
		_ = enc.Encode(frame{Kind: kindHello, ID: 2})
		var w frame
		_ = dec.Decode(&w)
		_ = conn.Close()
	}()

	type result struct {
		rep *SessionReport
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := hostSessionReport(ln, proto, []sim.Value{uint64(5), uint64(6)}, 1, cfg)
		done <- result{rep, err}
	}()
	var res result
	select {
	case res = <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("host hung on reset peer")
	}
	if res.err != nil {
		t.Fatalf("host errored instead of degrading: %v", res.err)
	}
	info, ok := res.rep.FailStops[2]
	if !ok {
		t.Fatalf("no fail-stop verdict for reset party 2: %+v", res.rep.FailStops)
	}
	if info.Round != 1 {
		t.Errorf("fail-stop round = %d, want 1 (first traffic after setup)", info.Round)
	}
	if !strings.Contains(info.Cause, "connection lost") && !strings.Contains(info.Cause, "stall") {
		t.Errorf("fail-stop cause %q names neither loss nor stall", info.Cause)
	}
}

// TestAcceptPhaseReportsMissingParties pins the bounded accept phase:
// when a party never connects, the session fails within AcceptTimeout
// and the error names exactly the missing parties.
func TestAcceptPhaseReportsMissingParties(t *testing.T) {
	register()
	proto := contract.Pi1{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	cfg := SessionConfig{Codec: GobCodec{}, RoundTimeout: chaosTimeout, AcceptTimeout: 300 * time.Millisecond}

	go func() { _ = runClient(ln.Addr().String(), proto, 1, uint64(5), cfg) }()

	done := make(chan error, 1)
	go func() {
		_, err := hostSessionReport(ln, proto, []sim.Value{uint64(5), uint64(6)}, 1, cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("accept phase completed without party 2")
		}
		if !strings.Contains(err.Error(), "[2]") || !strings.Contains(err.Error(), "never connected") {
			t.Errorf("accept error %q does not name the missing party", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("accept phase did not honor AcceptTimeout")
	}
}

// TestDialRetryBounded pins the client dial loop: a dead address fails
// after exactly DialAttempts tries instead of hanging or spinning.
func TestDialRetryBounded(t *testing.T) {
	// Reserve a port, then close it so dials are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	cfg := SessionConfig{RoundTimeout: chaosTimeout, DialTimeout: 100 * time.Millisecond, DialAttempts: 3}.withDefaults()
	c := newClientPeer(addr, 1, 2, cfg)
	if err := c.connect(); err == nil {
		t.Fatal("connect to dead address succeeded")
	} else if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("connect error %q does not report the attempt budget", err)
	}
}

// TestDialRetryConnectsToLateListener pins the retry/backoff path: a
// listener that appears only after the first dial attempt still gets
// the connection.
func TestDialRetryConnectsToLateListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()

	served := make(chan error, 1)
	go func() {
		time.Sleep(60 * time.Millisecond) // first dial attempt must miss
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			served <- err
			return
		}
		defer func() { _ = ln2.Close() }()
		conn, err := ln2.Accept()
		if err != nil {
			served <- err
			return
		}
		defer func() { _ = conn.Close() }()
		enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
		var hello frame
		if err := dec.Decode(&hello); err != nil {
			served <- err
			return
		}
		served <- enc.Encode(frame{Kind: kindWelcome, Token: 7})
	}()

	cfg := SessionConfig{RoundTimeout: chaosTimeout, DialTimeout: 100 * time.Millisecond, DialAttempts: 6}.withDefaults()
	c := newClientPeer(addr, 1, 2, cfg)
	if err := c.connect(); err != nil {
		t.Fatalf("connect via retry: %v", err)
	}
	defer c.close()
	if err := <-served; err != nil {
		t.Fatalf("late listener: %v", err)
	}
	if c.token != 7 {
		t.Errorf("client token = %d, want 7 from the welcome", c.token)
	}
}

// TestChaosSoakSeededProfiles is the longer seeded soak: several
// sessions under the Random injector, one in three also killing a
// party. Every session must terminate cleanly; transient-only seeds
// must heal byte-identically, kill seeds must produce the deterministic
// fail-stop verdict.
func TestChaosSoakSeededProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	register()
	proto := multiparty.NewOptN(mustConcat(t, 3, 8))
	inputs := []sim.Value{uint64(21), uint64(22), uint64(23)}
	for seed := int64(1); seed <= 6; seed++ {
		prof := faultinject.Profile{
			Drop: 0.03, Delay: 0.04, Duplicate: 0.03, Reorder: 0.02, Corrupt: 0.02, Disconnect: 0.02,
			MaxDelay: 3 * time.Millisecond,
		}
		fatal := seed%3 == 0
		if fatal {
			prof.KillParty, prof.KillRound = 2, 1
		}
		inj, err := faultinject.NewRandom(seed, prof)
		if err != nil {
			t.Fatal(err)
		}
		cfg := SessionConfig{RoundTimeout: chaosTimeout, Fault: inj, MaxResumes: 64}
		rep := runReportGuarded(t, proto, inputs, seed, cfg)
		if fatal {
			info, ok := rep.FailStops[2]
			if !ok {
				t.Errorf("seed %d: kill profile produced no fail-stop: %+v", seed, rep.FailStops)
				continue
			}
			if !strings.Contains(info.Cause, "connection lost") {
				t.Errorf("seed %d: kill cause %q", seed, info.Cause)
			}
		} else {
			if len(rep.FailStops) != 0 {
				t.Errorf("seed %d: transient-only profile fail-stopped: %+v", seed, rep.FailStops)
				continue
			}
			ref := inMemoryTrace(t, proto, inputs, seed)
			assertByteIdentical(t, fmt.Sprintf("seed %d", seed), rep.Outputs, ref.HonestOutputs)
		}
	}
}
