package transport

import (
	"encoding/gob"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/gmwproto"
	"repro/internal/protocols/contract"
	"repro/internal/protocols/gordonkatz"
	"repro/internal/protocols/multiparty"
	"repro/internal/protocols/twoparty"
	"repro/internal/sim"
)

var registerOnce sync.Once

func register() {
	registerOnce.Do(func() {
		contract.RegisterGobTypes()
		twoparty.RegisterGobTypes()
		multiparty.RegisterGobTypes()
		gordonkatz.RegisterGobTypes()
	})
}

func TestGobCodecRoundTrip(t *testing.T) {
	register()
	codec := GobCodec{}
	for _, v := range []any{uint64(42), contract.Pair{S1: 1, S2: 2}} {
		data, err := codec.Encode(v)
		if err != nil {
			t.Fatalf("encode %T: %v", v, err)
		}
		got, err := codec.Decode(data)
		if err != nil {
			t.Fatalf("decode %T: %v", v, err)
		}
		if !sim.ValuesEqual(v, got) {
			t.Errorf("roundtrip %T: got %v, want %v", v, got, v)
		}
	}
}

func TestGobCodecDecodeGarbage(t *testing.T) {
	if _, err := (GobCodec{}).Decode([]byte("not gob")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestPi1OverTCP(t *testing.T) {
	register()
	outs, err := RunSession(contract.Pi1{}, []sim.Value{uint64(101), uint64(202)}, GobCodec{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := contract.Pair{S1: 101, S2: 202}
	for id, rec := range outs {
		if !rec.OK || !sim.ValuesEqual(rec.Value, want) {
			t.Errorf("party %d output %+v, want %v", id, rec, want)
		}
	}
}

func TestPi2OverTCP(t *testing.T) {
	register()
	for seed := int64(0); seed < 4; seed++ { // both coin outcomes
		outs, err := RunSession(contract.Pi2{}, []sim.Value{uint64(7), uint64(8)}, GobCodec{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		want := contract.Pair{S1: 7, S2: 8}
		for id, rec := range outs {
			if !rec.OK || !sim.ValuesEqual(rec.Value, want) {
				t.Errorf("seed %d party %d output %+v", seed, id, rec)
			}
		}
	}
}

func TestOpt2SFEOverTCP(t *testing.T) {
	register()
	proto := twoparty.New(twoparty.Swap())
	for seed := int64(0); seed < 4; seed++ { // both reconstruction orders
		outs, err := RunSession(proto, []sim.Value{uint64(11), uint64(22)}, GobCodec{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		want := twoparty.Swap().Eval(11, 22)
		for id, rec := range outs {
			if !rec.OK || !sim.ValuesEqual(rec.Value, want) {
				t.Errorf("seed %d party %d output %+v, want %v", seed, id, rec, want)
			}
		}
	}
}

func TestOptNSFEOverTCP(t *testing.T) {
	register()
	fn, err := multiparty.Concat(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	proto := multiparty.NewOptN(fn)
	inputs := []sim.Value{uint64(1), uint64(2), uint64(3), uint64(4)}
	outs, err := RunSession(proto, inputs, GobCodec{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := fn.Eval([]uint64{1, 2, 3, 4})
	for id, rec := range outs {
		if !rec.OK || !sim.ValuesEqual(rec.Value, want) {
			t.Errorf("party %d output %+v, want %v", id, rec, want)
		}
	}
}

func TestGMWHalfOverTCP(t *testing.T) {
	register()
	fn, err := multiparty.Concat(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := RunSession(multiparty.NewGMWHalf(fn), []sim.Value{uint64(9), uint64(8), uint64(7)}, GobCodec{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := fn.Eval([]uint64{9, 8, 7})
	for id, rec := range outs {
		if !rec.OK || !sim.ValuesEqual(rec.Value, want) {
			t.Errorf("party %d output %+v, want %v", id, rec, want)
		}
	}
}

func TestGordonKatzOverTCP(t *testing.T) {
	register()
	proto, err := gordonkatz.NewPolyDomain(gordonkatz.AND(), 2)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := RunSession(proto, []sim.Value{uint64(1), uint64(1)}, GobCodec{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for id, rec := range outs {
		if !rec.OK || !sim.ValuesEqual(rec.Value, uint64(1)) {
			t.Errorf("party %d output %+v, want 1", id, rec)
		}
	}
}

func TestInputCountMismatch(t *testing.T) {
	register()
	if _, err := RunSession(contract.Pi1{}, []sim.Value{uint64(1)}, GobCodec{}, 1); err == nil {
		t.Error("mismatched inputs accepted")
	}
}

func TestTransportMatchesInMemoryEngine(t *testing.T) {
	register()
	proto := twoparty.New(twoparty.Millionaires())
	inputs := []sim.Value{uint64(90), uint64(45)}
	var m sim.Metrics
	outs, err := RunSessionConfig(proto, inputs, 8, SessionConfig{Observers: []sim.Observer{&m}})
	if err != nil {
		t.Fatal(err)
	}
	// The host drives the same Execution phases and RNG streams as the
	// in-memory engine, so each party's wire output must equal the
	// in-memory run's honest output record exactly.
	tr, err := sim.Run(proto, inputs, sim.Passive{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(tr.HonestOutputs) {
		t.Fatalf("TCP produced %d outputs, engine %d", len(outs), len(tr.HonestOutputs))
	}
	for id, rec := range outs {
		if want := tr.HonestOutputs[id]; !rec.OK || !sim.ValuesEqual(rec.Value, want.Value) || rec.OK != want.OK {
			t.Errorf("party %d TCP output %+v, engine produced %+v", id, rec, want)
		}
	}
	// The session's observer stream is the engine's: compare its metrics
	// with an in-memory observed run.
	var want sim.Metrics
	if _, err := sim.RunObserved(proto, inputs, sim.Passive{}, 8, &want); err != nil {
		t.Fatal(err)
	}
	if m != want {
		t.Errorf("TCP session metrics %+v, in-memory engine metrics %+v", m, want)
	}
}

// TestStalledClientFailStops pins the degradation contract: a party
// that says hello and then goes silent forever no longer fails the
// session with a timeout error — the host declares it dead within the
// 2×RoundTimeout recovery budget and completes the run with a fail-stop
// verdict naming the party, the round, and a stall cause.
func TestStalledClientFailStops(t *testing.T) {
	register()
	proto := contract.Pi1{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	cfg := SessionConfig{Codec: GobCodec{}, RoundTimeout: 200 * time.Millisecond}

	// Party 1 behaves; party 2 says hello and then goes silent forever.
	go func() { _ = runClient(ln.Addr().String(), proto, 1, uint64(5), cfg) }()
	stalled, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = stalled.Close() }()
	if err := gob.NewEncoder(stalled).Encode(frame{Kind: kindHello, ID: 2}); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	type result struct {
		rep *SessionReport
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := hostSessionReport(ln, proto, []sim.Value{uint64(5), uint64(6)}, 1, cfg)
		done <- result{rep, err}
	}()
	var res result
	select {
	case res = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("host hung on stalled client instead of honoring the recovery budget")
	}
	if res.err != nil {
		t.Fatalf("host errored instead of degrading: %v", res.err)
	}
	info, ok := res.rep.FailStops[2]
	if !ok {
		t.Fatalf("no fail-stop verdict for party 2: %+v", res.rep.FailStops)
	}
	if info.Round != 1 {
		t.Errorf("fail-stop round = %d, want 1", info.Round)
	}
	if !strings.Contains(info.Cause, "stall") {
		t.Errorf("fail-stop cause %q does not name the stall", info.Cause)
	}
	if _, ok := res.rep.Outputs[1]; !ok {
		t.Error("surviving party 1 has no output record")
	}
	if _, ok := res.rep.Outputs[2]; ok {
		t.Error("fail-stopped party 2 has an output record")
	}
	// Detection costs ~1.5×RoundTimeout (read timeout + reconnect wait);
	// the generous ceiling absorbs CI scheduling noise.
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("session took %v, want well under the recovery budget", elapsed)
	}
}

func TestRoundTimeoutDefault(t *testing.T) {
	cfg := SessionConfig{}.withDefaults()
	if cfg.RoundTimeout != DefaultRoundTimeout {
		t.Errorf("default RoundTimeout = %v, want %v", cfg.RoundTimeout, DefaultRoundTimeout)
	}
	if cfg.Codec == nil {
		t.Error("default Codec is nil")
	}
	if cfg.AcceptTimeout != cfg.RoundTimeout {
		t.Errorf("default AcceptTimeout = %v, want RoundTimeout", cfg.AcceptTimeout)
	}
	if cfg.DialTimeout != cfg.RoundTimeout {
		t.Errorf("default DialTimeout = %v, want RoundTimeout", cfg.DialTimeout)
	}
	if cfg.DialAttempts != DefaultDialAttempts {
		t.Errorf("default DialAttempts = %d, want %d", cfg.DialAttempts, DefaultDialAttempts)
	}
	if cfg.ReconnectWait != cfg.RoundTimeout/2 {
		t.Errorf("default ReconnectWait = %v, want RoundTimeout/2", cfg.ReconnectWait)
	}
	if cfg.MaxResumes != DefaultMaxResumes {
		t.Errorf("default MaxResumes = %d, want %d", cfg.MaxResumes, DefaultMaxResumes)
	}
}

func TestGKMultiPartyOverTCP(t *testing.T) {
	register()
	proto, err := gordonkatz.NewMultiParty(gordonkatz.ANDn(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := RunSession(proto, []sim.Value{uint64(1), uint64(1), uint64(1)}, GobCodec{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	for id, rec := range outs {
		if !rec.OK || !sim.ValuesEqual(rec.Value, uint64(1)) {
			t.Errorf("party %d output %+v, want 1", id, rec)
		}
	}
}

func TestLemma18OverTCP(t *testing.T) {
	register()
	fn, err := multiparty.Concat(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := RunSession(multiparty.NewLemma18(fn),
		[]sim.Value{uint64(1), uint64(2), uint64(3)}, GobCodec{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := fn.Eval([]uint64{1, 2, 3})
	for id, rec := range outs {
		if !rec.OK || !sim.ValuesEqual(rec.Value, want) {
			t.Errorf("party %d output %+v, want %v", id, rec, want)
		}
	}
}

func TestGMWOnlineOverTCP(t *testing.T) {
	register()
	gmwproto.RegisterGobTypes()
	circ, err := circuit.MillionairesCircuit(6)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := gmwproto.New("m6", circ, 2)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := RunSession(proto, []sim.Value{uint64(50), uint64(20)}, GobCodec{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	for id, rec := range outs {
		if !rec.OK || !sim.ValuesEqual(rec.Value, uint64(1)) {
			t.Errorf("party %d output %+v, want 1", id, rec)
		}
	}
}
