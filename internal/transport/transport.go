// Package transport executes protocols over real TCP connections: every
// party runs as a client speaking length-delimited gob frames to a
// round-synchronizing host over the loopback interface, exercising the
// same Party machines as the in-memory engine.
//
// The host is the shared sim.Execution engine running on a remote
// PartyBackend: NewExecutionWithBackend → SetupPhase → Step per wire
// round → Finalize, with party machines living in the client processes
// instead of in the host's memory. Observers attached via SessionConfig
// therefore see the identical event stream an in-memory run produces.
//
// # Resilience layer
//
// Every session frame carries a per-direction sequence number and an
// FNV-1a checksum, and both endpoints keep an outbox of unacknowledged
// frames. When a connection breaks — a timeout, a reset, a corrupted
// frame — the client redials and performs a resume handshake
// (kindResume with its session token and last-delivered sequence
// number, answered by kindResumeAck), after which both sides replay
// their outboxes. Receivers deduplicate and reorder by sequence number,
// so a healed session delivers exactly the frame stream a fault-free
// session would have: the engine above the transport never notices, and
// outputs are byte-identical to an in-memory run.
//
// Faults the resume handshake cannot heal degrade gracefully instead of
// hanging: a peer that stays silent past the round timeout and does not
// resume within SessionConfig.ReconnectWait is declared dead within a
// 2×RoundTimeout budget, and the host converts it into the model's
// fail-stop abort via sim.Execution.FailStop. The run then completes
// with the survivors — the crashed party priced exactly like a
// corrupted party that aborted at the same round (see DESIGN.md, "Fault
// model and degradation").
//
// Deterministic chaos testing plugs in via SessionConfig.Fault: a
// faultinject.Injector is consulted on every sequenced frame's *first*
// transmission (replays after a resume bypass injection), so a chaos
// run is a pure function of (seed, schedule) and every transient fault
// is survivable by replay.
//
// The transport runs *honest* sessions — fairness is a property
// quantified against the model's adversary, not against packet loss.
// Any corruption against the remote backend fails with
// sim.ErrRemoteCorruption. Message payloads cross the wire gob-encoded,
// so protocol packages expose RegisterGobTypes helpers for their
// payload types.
package transport

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/sim"
)

// Codec serializes protocol message payloads.
type Codec interface {
	Encode(payload any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// GobCodec encodes payloads with encoding/gob; concrete payload types
// must be registered (see the protocols' RegisterGobTypes helpers).
type GobCodec struct{}

var _ Codec = GobCodec{}

// payloadBox lets gob carry the payload interface.
type payloadBox struct {
	V any
}

// Encode implements Codec.
func (GobCodec) Encode(payload any) ([]byte, error) {
	var buf writeBuffer
	if err := gob.NewEncoder(&buf).Encode(payloadBox{V: payload}); err != nil {
		return nil, fmt.Errorf("transport: encode payload: %w", err)
	}
	return buf.data, nil
}

// Decode implements Codec.
func (GobCodec) Decode(data []byte) (any, error) {
	var box payloadBox
	if err := gob.NewDecoder(&readBuffer{data: data}).Decode(&box); err != nil {
		return nil, fmt.Errorf("transport: decode payload: %w", err)
	}
	return box.V, nil
}

type writeBuffer struct{ data []byte }

func (w *writeBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

type readBuffer struct {
	data []byte
	off  int
}

func (r *readBuffer) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// frame kinds.
type frameKind int

const (
	kindHello frameKind = iota + 1
	kindSetup
	kindInbox
	kindBatch
	kindOutput
	// kindWelcome answers a hello with the peer's session token.
	kindWelcome
	// kindResume reopens a broken session: ID, Token, Ack = last
	// sequence number the client delivered.
	kindResume
	// kindResumeAck confirms a resume: Ack = last sequence number the
	// host delivered. Both sides then replay their outboxes.
	kindResumeAck
	// kindBye acknowledges a party's output frame; the client stays
	// connected until it arrives so a lost output heals via replay.
	kindBye
	// kindData carries an opaque application payload over the generic
	// reliable stream layer (see stream.go); session frames never use it.
	kindData
)

// wireMsg is a serialized sim.Message.
type wireMsg struct {
	From, To int
	Payload  []byte
}

// frame is the session wire unit. Sequenced frames (setup, inbox,
// batch, output, bye) carry Seq >= 1 and a checksum; handshake frames
// (hello, welcome, resume, resumeAck) travel with Seq 0 outside the
// reliable layer.
type frame struct {
	Kind         frameKind
	ID           int // hello/resume: party id
	Round        int
	Msgs         []wireMsg
	SetupOut     []byte
	SetupAborted bool
	HasSetup     bool
	Seed         int64 // setup: the party's engine-drawn RNG seed
	Output       []byte
	OutputOK     bool
	Seq          uint64 // per-direction reliable sequence number
	Token        uint64 // welcome/resume: session token
	Ack          uint64 // resume/resumeAck: last delivered sequence
	Sum          uint32 // FNV-1a checksum of the sequenced frame
}

// frameSum hashes every content field of a sequenced frame (Sum
// excluded) so receivers detect corruption before gob-decoding payloads.
func frameSum(f *frame) uint32 {
	h := fnv.New32a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		_, _ = h.Write(b[:])
	}
	put(uint64(f.Kind))
	put(uint64(int64(f.ID)))
	put(uint64(int64(f.Round)))
	put(f.Seq)
	put(f.Token)
	put(f.Ack)
	put(uint64(f.Seed))
	var flags uint64
	if f.SetupAborted {
		flags |= 1
	}
	if f.HasSetup {
		flags |= 2
	}
	if f.OutputOK {
		flags |= 4
	}
	put(flags)
	put(uint64(len(f.SetupOut)))
	_, _ = h.Write(f.SetupOut)
	put(uint64(len(f.Output)))
	_, _ = h.Write(f.Output)
	for _, m := range f.Msgs {
		put(uint64(int64(m.From)))
		put(uint64(int64(m.To)))
		put(uint64(len(m.Payload)))
		_, _ = h.Write(m.Payload)
	}
	return h.Sum32()
}

func checkSum(f *frame) bool {
	want := f.Sum
	f.Sum = 0
	ok := frameSum(f) == want
	f.Sum = want
	return ok
}

// corruptFrame returns a copy of f with payload bytes flipped *after*
// the checksum was computed, modeling on-the-wire corruption the
// receiver must detect. Slices are copied so the outbox keeps the
// pristine frame for replay.
func corruptFrame(f frame) frame {
	flip := func(b []byte) []byte {
		c := append([]byte(nil), b...)
		c[0] ^= 0xff
		return c
	}
	switch {
	case len(f.Msgs) > 0 && len(f.Msgs[0].Payload) > 0:
		msgs := append([]wireMsg(nil), f.Msgs...)
		msgs[0].Payload = flip(msgs[0].Payload)
		f.Msgs = msgs
	case len(f.Output) > 0:
		f.Output = flip(f.Output)
	case len(f.SetupOut) > 0:
		f.SetupOut = flip(f.SetupOut)
	default:
		f.Sum ^= 0xdeadbeef
	}
	return f
}

// DefaultRoundTimeout bounds every read/write on the loopback sockets
// when SessionConfig.RoundTimeout is zero. Each wire round resets the
// deadline, so it is a per-frame stall bound, not a whole-session one.
const DefaultRoundTimeout = 30 * time.Second

// DefaultDialAttempts bounds the client's connect/reconnect retry loop
// when SessionConfig.DialAttempts is zero.
const DefaultDialAttempts = 4

// DefaultMaxResumes bounds how many resume handshakes the host grants
// one peer when SessionConfig.MaxResumes is zero.
const DefaultMaxResumes = 8

// SessionConfig tunes a TCP session.
type SessionConfig struct {
	// Codec serializes payloads; nil means GobCodec{}.
	Codec Codec
	// RoundTimeout is the per-frame read/write deadline on every socket;
	// zero means DefaultRoundTimeout. Every host receive carries an
	// absolute recovery budget of 2×RoundTimeout: a peer that cannot be
	// healed inside it is declared dead and fail-stopped, so a faulty
	// session terminates within the budget instead of hanging.
	RoundTimeout time.Duration
	// Observers receive the engine's event stream for the hosted run,
	// exactly as an in-memory sim.RunObserved would deliver it.
	// Observers that also implement sim.FailStopObserver additionally
	// see fail-stop abort events.
	Observers []sim.Observer
	// Fault, when non-nil, is consulted on every sequenced frame's
	// first transmission (never on resume replays). See faultinject.
	Fault faultinject.Injector
	// AcceptTimeout bounds the accept phase: if some party has not
	// completed its hello handshake within it, the session fails with
	// an error naming the missing parties. Zero means RoundTimeout.
	AcceptTimeout time.Duration
	// DialTimeout bounds each client dial attempt; zero means
	// RoundTimeout.
	DialTimeout time.Duration
	// DialAttempts bounds the client's connect/reconnect retry loop
	// (exponential backoff between attempts); zero means
	// DefaultDialAttempts.
	DialAttempts int
	// ReconnectWait is how long the host waits for a broken peer to
	// resume before declaring it dead; zero means RoundTimeout/2.
	ReconnectWait time.Duration
	// MaxResumes bounds resume handshakes granted per peer; zero means
	// DefaultMaxResumes.
	MaxResumes int
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.Codec == nil {
		c.Codec = GobCodec{}
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = DefaultRoundTimeout
	}
	if c.AcceptTimeout <= 0 {
		c.AcceptTimeout = c.RoundTimeout
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = c.RoundTimeout
	}
	if c.DialAttempts <= 0 {
		c.DialAttempts = DefaultDialAttempts
	}
	if c.ReconnectWait <= 0 {
		c.ReconnectWait = c.RoundTimeout / 2
	}
	if c.MaxResumes <= 0 {
		c.MaxResumes = DefaultMaxResumes
	}
	return c
}

// SessionReport is the full result of a chaos-tolerant session: the
// surviving parties' outputs, the finished trace, and the degradation
// record.
type SessionReport struct {
	// Outputs holds the surviving (non-fail-stopped) parties' outputs.
	Outputs map[sim.PartyID]sim.OutputRecord
	// Trace is the finished engine trace (FailStops included).
	Trace *sim.Trace
	// FailStops records the parties the session lost, with the wire
	// round and canonical cause of each loss (aliases Trace.FailStops).
	FailStops map[sim.PartyID]sim.FailStopInfo
	// Resumes counts successful reconnect/resume handshakes across all
	// peers — zero in a fault-free session.
	Resumes int
	// ClientErrors records per-party client-side errors. Errors of
	// fail-stopped parties are expected (the party crashed or was cut
	// off); an error from a surviving party fails the session instead.
	ClientErrors map[sim.PartyID]string
}

var (
	errNoResume = errors.New("transport: peer did not resume")
	errBudget   = errors.New("transport: recovery budget exhausted")
)

// ErrKilled is the client-side sentinel for a faultinject.Kill decision:
// the sending endpoint "crashes" by closing its connection and
// abandoning the run. Exported so stream-layer callers (the sweep
// fabric's chaos tests) can distinguish an injected crash from a real
// transport failure.
var ErrKilled = errors.New("transport: party killed by fault injection")

// causeOf canonicalizes an I/O error into a deterministic fail-stop
// cause: every flavor of connection teardown (EOF, ECONNRESET, use of
// closed connection) reads "connection lost", and every deadline
// expiry reads "stall (round timeout)", so chaos verdicts are stable
// across runs and platforms.
func causeOf(err error) string {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return "stall (round timeout)"
	}
	return "connection lost"
}

func writeFrame(conn net.Conn, enc *gob.Encoder, timeout time.Duration, f frame) error {
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	return enc.Encode(f)
}

func readFrame(conn net.Conn, dec *gob.Decoder, timeout time.Duration, f *frame) error {
	if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	return dec.Decode(f)
}

// endpoint is one end of a reliable frame stream: it assigns sequence
// numbers, buffers unacknowledged frames for replay, deduplicates and
// reorders received frames, and survives connection swaps (resume
// installs a fresh conn under mu and bumps gen so stale I/O errors from
// the old conn cannot poison the new one).
type endpoint struct {
	party    int                   // client party id of this connection
	dir      faultinject.Direction // direction of frames this endpoint sends
	timeout  time.Duration
	fault    faultinject.Injector
	hostSide bool

	mu        sync.Mutex
	conn      net.Conn
	enc       *gob.Encoder
	dec       *gob.Decoder
	gen       int
	broken    bool
	lastCause string

	sendSeq  uint64
	outbox   []frame // sent frames the peer has not acknowledged
	lastRecv uint64  // highest sequence delivered upward, in order
	pending  map[uint64]frame
	held     []frame // frames held back by a Reorder decision

	wmu sync.Mutex // serializes writes on the current conn
}

func (ep *endpoint) install(conn net.Conn, enc *gob.Encoder, dec *gob.Decoder) {
	ep.mu.Lock()
	if ep.conn != nil {
		_ = ep.conn.Close()
	}
	ep.conn, ep.enc, ep.dec = conn, enc, dec
	ep.gen++
	ep.broken = false
	ep.mu.Unlock()
}

// breakGen poisons the connection of generation gen; a resume that
// already installed a newer conn makes it a no-op.
func (ep *endpoint) breakGen(gen int, cause string) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.gen != gen || ep.broken {
		return
	}
	ep.broken = true
	ep.lastCause = cause
	if ep.conn != nil {
		_ = ep.conn.Close()
	}
}

// breakAll poisons whatever connection is current (sender-side faults).
func (ep *endpoint) breakAll(cause string) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.broken {
		return
	}
	ep.broken = true
	ep.lastCause = cause
	if ep.conn != nil {
		_ = ep.conn.Close()
	}
}

func (ep *endpoint) close() {
	ep.mu.Lock()
	if ep.conn != nil {
		_ = ep.conn.Close()
	}
	ep.mu.Unlock()
}

// writeCurrent writes one frame on the current conn, best-effort: a
// write failure poisons the conn and recovery happens on the receive
// path (the peer's stall triggers a resume, and the outbox replays).
func (ep *endpoint) writeCurrent(f frame) {
	ep.wmu.Lock()
	defer ep.wmu.Unlock()
	ep.mu.Lock()
	conn, enc, gen, broken := ep.conn, ep.enc, ep.gen, ep.broken
	ep.mu.Unlock()
	if broken || conn == nil {
		return
	}
	if err := writeFrame(conn, enc, ep.timeout, f); err != nil {
		ep.breakGen(gen, causeOf(err))
	}
}

// sendReliable assigns the next sequence number, checksums the frame,
// appends it to the outbox, and transmits it — subject to the fault
// injector, which is consulted only here, on first transmission.
// The only possible error is ErrKilled on client endpoints.
func (ep *endpoint) sendReliable(f frame) error {
	ep.mu.Lock()
	ep.sendSeq++
	f.Seq = ep.sendSeq
	f.Sum = 0
	f.Sum = frameSum(&f)
	ep.outbox = append(ep.outbox, f)
	held := ep.held
	ep.held = nil
	ep.mu.Unlock()

	var d faultinject.Decision
	if ep.fault != nil {
		d = ep.fault.Decide(faultinject.Point{Party: ep.party, Dir: ep.dir, Seq: f.Seq, Round: f.Round})
	}
	if d.Op == faultinject.Kill && ep.hostSide {
		d.Op = faultinject.Disconnect
	}

	switch d.Op {
	case faultinject.Drop:
		// First transmission suppressed; resume replay heals it.
	case faultinject.Delay:
		time.Sleep(d.Delay)
		ep.writeCurrent(f)
	case faultinject.Duplicate:
		ep.writeCurrent(f)
		ep.writeCurrent(f)
	case faultinject.Reorder:
		ep.mu.Lock()
		ep.held = append(ep.held, f)
		ep.mu.Unlock()
	case faultinject.Corrupt:
		ep.writeCurrent(corruptFrame(f))
	case faultinject.Disconnect:
		ep.writeCurrent(f)
		ep.breakAll("connection lost")
	case faultinject.Kill:
		ep.breakAll("connection lost")
		return ErrKilled
	default:
		ep.writeCurrent(f)
	}
	// Frames held back by an earlier Reorder decision follow the
	// current frame; the receiver's sequence buffer restores order.
	for _, h := range held {
		ep.writeCurrent(h)
	}
	return nil
}

// ackSeq is the cumulative ack this endpoint advertises on resume.
func (ep *endpoint) ackSeq() uint64 {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.lastRecv
}

// trimOutbox drops frames the peer acknowledged.
func (ep *endpoint) trimOutbox(ack uint64) {
	ep.mu.Lock()
	i := 0
	for i < len(ep.outbox) && ep.outbox[i].Seq <= ack {
		i++
	}
	ep.outbox = append([]frame(nil), ep.outbox[i:]...)
	ep.mu.Unlock()
}

// replayList snapshots the unacknowledged outbox for retransmission.
func (ep *endpoint) replayList() []frame {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return append([]frame(nil), ep.outbox...)
}

// recvReliable returns the next in-order sequenced frame, healing the
// stream as needed: duplicates are discarded, reordered frames are
// buffered until the gap fills, corrupt frames and I/O errors poison
// the conn, and recover is invoked to re-establish it (host: wait for
// the peer's resume; client: redial and resume). The absolute deadline
// bounds the whole operation, recovery included.
func (ep *endpoint) recvReliable(deadline time.Time, recover func(time.Time) error) (frame, error) {
	for {
		ep.mu.Lock()
		if f, ok := ep.pending[ep.lastRecv+1]; ok {
			delete(ep.pending, ep.lastRecv+1)
			ep.lastRecv++
			ep.mu.Unlock()
			return f, nil
		}
		conn, dec, gen, broken := ep.conn, ep.dec, ep.gen, ep.broken
		ep.mu.Unlock()

		if broken || conn == nil {
			if time.Now().After(deadline) {
				return frame{}, errBudget
			}
			if err := recover(deadline); err != nil {
				return frame{}, err
			}
			continue
		}

		rem := time.Until(deadline)
		if rem <= 0 {
			return frame{}, errBudget
		}
		to := ep.timeout
		if rem < to {
			to = rem
		}
		_ = conn.SetReadDeadline(time.Now().Add(to))
		var f frame
		if err := dec.Decode(&f); err != nil {
			// A mid-frame deadline leaves the gob stream unframed, so
			// every decode error forces a reconnect.
			ep.breakGen(gen, causeOf(err))
			continue
		}
		if f.Seq == 0 {
			continue // stray handshake frame; not part of the stream
		}
		if !checkSum(&f) {
			ep.breakGen(gen, "corrupt frame")
			continue
		}
		ep.mu.Lock()
		switch {
		case f.Seq <= ep.lastRecv:
			ep.mu.Unlock() // duplicate of a delivered frame
		case f.Seq == ep.lastRecv+1:
			ep.lastRecv++
			ep.mu.Unlock()
			return f, nil
		default:
			ep.pending[f.Seq] = f // ahead of a gap; buffer it
			ep.mu.Unlock()
		}
	}
}

// hostPeer is the host's reliable endpoint for one party, plus the
// degradation state the engine reads (dead/round/cause) and the resume
// plumbing the accept manager drives.
type hostPeer struct {
	endpoint
	id            sim.PartyID
	token         uint64
	reconnectWait time.Duration
	maxResumes    int

	resumed chan struct{} // signaled by handleResume

	// resumes, dead, deadRound, deadCause, reported are guarded by
	// endpoint.mu.
	resumes   int
	dead      bool
	deadRound int
	deadCause string
	reported  bool // FailStop already applied to the engine
}

func newHostPeer(id sim.PartyID, token uint64, cfg SessionConfig) *hostPeer {
	return &hostPeer{
		endpoint: endpoint{
			party:    int(id),
			dir:      faultinject.DirHostToClient,
			timeout:  cfg.RoundTimeout,
			fault:    cfg.Fault,
			hostSide: true,
			pending:  make(map[uint64]frame),
		},
		id:            id,
		token:         token,
		reconnectWait: cfg.ReconnectWait,
		maxResumes:    cfg.MaxResumes,
		resumed:       make(chan struct{}, 1),
	}
}

// handleResume (accept-manager side) adopts a fresh connection for a
// broken peer: install it, trim the outbox by the client's ack, answer
// with our own ack, and replay everything the client is missing.
func (p *hostPeer) handleResume(conn net.Conn, enc *gob.Encoder, dec *gob.Decoder, clientAck uint64) {
	p.mu.Lock()
	if p.dead || p.resumes >= p.maxResumes {
		p.mu.Unlock()
		_ = conn.Close()
		return
	}
	p.resumes++
	if p.conn != nil {
		_ = p.conn.Close()
	}
	p.conn, p.enc, p.dec = conn, enc, dec
	p.gen++
	p.broken = false
	i := 0
	for i < len(p.outbox) && p.outbox[i].Seq <= clientAck {
		i++
	}
	p.outbox = append([]frame(nil), p.outbox[i:]...)
	replay := append([]frame(nil), p.outbox...)
	ack := p.lastRecv
	p.mu.Unlock()

	p.wmu.Lock()
	if writeFrame(conn, enc, p.timeout, frame{Kind: kindResumeAck, Ack: ack}) == nil {
		for _, f := range replay {
			if writeFrame(conn, enc, p.timeout, f) != nil {
				break
			}
		}
	}
	p.wmu.Unlock()

	select {
	case p.resumed <- struct{}{}:
	default:
	}
}

// awaitResume is the host's recovery step: wait up to ReconnectWait
// (capped by the op deadline) for the accept manager to install a
// resumed connection. Expiry means the peer is gone for good.
func (p *hostPeer) awaitResume(deadline time.Time) error {
	wait := p.reconnectWait
	if rem := time.Until(deadline); rem < wait {
		wait = rem
	}
	if wait <= 0 {
		return errNoResume
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		p.mu.Lock()
		broken := p.broken
		p.mu.Unlock()
		if !broken {
			return nil
		}
		select {
		case <-p.resumed:
		case <-timer.C:
			return errNoResume
		}
	}
}

// recvHost receives the peer's next sequenced frame under the session's
// recovery budget: 2×RoundTimeout, resume waits included.
func (p *hostPeer) recvHost() (frame, error) {
	deadline := time.Now().Add(2 * p.timeout)
	return p.recvReliable(deadline, p.awaitResume)
}

func (p *hostPeer) markDead(round int, cause string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return
	}
	p.dead = true
	p.deadRound = round
	p.deadCause = cause
	p.broken = true
	if p.conn != nil {
		_ = p.conn.Close()
	}
}

func (p *hostPeer) isDead() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dead
}

// deathCause canonicalizes the terminal receive error into the
// fail-stop cause recorded in the trace.
func (p *hostPeer) deathCause(err error) string {
	p.mu.Lock()
	last := p.lastCause
	p.mu.Unlock()
	if last == "" {
		last = "connection lost"
	}
	switch {
	case errors.Is(err, errNoResume):
		return fmt.Sprintf("%s; no resume within %v", last, p.reconnectWait)
	case errors.Is(err, errBudget):
		return last + "; recovery budget exhausted"
	default:
		return last
	}
}

// sessionToken derives a peer's resume token deterministically from the
// session seed (splitmix64 finalizer), so chaos runs replay exactly.
func sessionToken(seed int64, id sim.PartyID) uint64 {
	z := uint64(seed) ^ 0x7f4a7c15<<32 ^ uint64(id)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// helloConn is a fresh connection that completed its hello.
type helloConn struct {
	id   sim.PartyID
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// acceptManager owns the listener for a session's lifetime: during the
// accept phase it feeds hello connections to the host, and for the rest
// of the session it routes resume handshakes to the broken peer they
// belong to.
type acceptManager struct {
	ln      net.Listener
	n       int
	timeout time.Duration

	mu    sync.Mutex
	peers map[sim.PartyID]*hostPeer // set once the accept phase completes

	helloCh chan helloConn
}

func newAcceptManager(ln net.Listener, n int, cfg SessionConfig) *acceptManager {
	return &acceptManager{ln: ln, n: n, timeout: cfg.RoundTimeout, helloCh: make(chan helloConn, 4*n)}
}

// run accepts connections until the listener closes.
func (am *acceptManager) run() {
	for {
		conn, err := am.ln.Accept()
		if err != nil {
			return
		}
		go am.handle(conn)
	}
}

func (am *acceptManager) handle(conn net.Conn) {
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	var f frame
	if err := readFrame(conn, dec, am.timeout, &f); err != nil {
		_ = conn.Close()
		return
	}
	switch f.Kind {
	case kindHello:
		if f.ID < 1 || f.ID > am.n {
			_ = conn.Close()
			return
		}
		select {
		case am.helloCh <- helloConn{id: sim.PartyID(f.ID), conn: conn, enc: enc, dec: dec}:
		default:
			_ = conn.Close() // accept phase over
		}
	case kindResume:
		am.mu.Lock()
		p := am.peers[sim.PartyID(f.ID)]
		am.mu.Unlock()
		if p == nil || f.Token != p.token {
			_ = conn.Close()
			return
		}
		p.handleResume(conn, enc, dec, f.Ack)
	default:
		_ = conn.Close()
	}
}

// acceptPhase collects the n party hellos within cfg.AcceptTimeout,
// answering each with a welcome carrying its session token. A client
// whose welcome was lost redials and re-hellos; the fresh connection
// replaces the stale one. On expiry the error names every party that
// never completed the handshake.
func (am *acceptManager) acceptPhase(seed int64, cfg SessionConfig) (map[sim.PartyID]*hostPeer, error) {
	peers := make(map[sim.PartyID]*hostPeer, am.n)
	timer := time.NewTimer(cfg.AcceptTimeout)
	defer timer.Stop()
	for len(peers) < am.n {
		select {
		case h := <-am.helloCh:
			p, dup := peers[h.id]
			if !dup {
				p = newHostPeer(h.id, sessionToken(seed, h.id), cfg)
				peers[h.id] = p
			}
			p.install(h.conn, h.enc, h.dec)
			p.wmu.Lock()
			if err := writeFrame(h.conn, h.enc, cfg.RoundTimeout, frame{Kind: kindWelcome, Token: p.token}); err != nil {
				p.breakAll(causeOf(err)) // client will redial its hello
			}
			p.wmu.Unlock()
		case <-timer.C:
			var missing []int
			for i := 1; i <= am.n; i++ {
				if _, ok := peers[sim.PartyID(i)]; !ok {
					missing = append(missing, i)
				}
			}
			sort.Ints(missing)
			return nil, fmt.Errorf("transport: accept phase timed out after %v: parties %v never connected",
				cfg.AcceptTimeout, missing)
		}
	}
	am.mu.Lock()
	am.peers = peers
	am.mu.Unlock()
	return peers, nil
}

// RunSession executes one honest run of proto over loopback TCP with the
// default round timeout. It returns every party's output.
func RunSession(proto sim.Protocol, inputs []sim.Value, codec Codec, seed int64) (map[sim.PartyID]sim.OutputRecord, error) {
	return RunSessionConfig(proto, inputs, seed, SessionConfig{Codec: codec})
}

// RunSessionConfig executes one honest run of proto over loopback TCP
// and returns every party's output. It requires a fully surviving
// session: a run degraded by fail-stops returns an error (use
// RunSessionReport to observe degradation instead).
func RunSessionConfig(proto sim.Protocol, inputs []sim.Value, seed int64, cfg SessionConfig) (map[sim.PartyID]sim.OutputRecord, error) {
	rep, err := RunSessionReport(proto, inputs, seed, cfg)
	if err != nil {
		return nil, err
	}
	if len(rep.FailStops) > 0 {
		var ids []int
		for id := range rep.FailStops {
			ids = append(ids, int(id))
		}
		sort.Ints(ids)
		return nil, fmt.Errorf("transport: session degraded: parties %v fail-stopped", ids)
	}
	return rep.Outputs, nil
}

// RunSessionReport executes one run of proto over loopback TCP — each
// party a TCP client, the host driving the shared sim.Execution phases
// against the remote machines — and reports the outcome, fail-stop
// degradation included. Transient connection faults heal via the
// reconnect/resume handshake with outputs byte-identical to a
// fault-free run; unrecoverable peers terminate within the recovery
// budget as fail-stop aborts rather than errors.
func RunSessionReport(proto sim.Protocol, inputs []sim.Value, seed int64, cfg SessionConfig) (*SessionReport, error) {
	cfg = cfg.withDefaults()
	n := proto.NumParties()
	if len(inputs) != n {
		return nil, fmt.Errorf("transport: %d inputs for %d parties", len(inputs), n)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	defer func() { _ = ln.Close() }()

	// Launch the party clients. Their machine RNG seeds arrive in the
	// setup frame, drawn by the engine from the session's master seed.
	var wg sync.WaitGroup
	clientErrs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			clientErrs[idx] = runClient(ln.Addr().String(), proto, sim.PartyID(idx+1), inputs[idx], cfg)
		}(i)
	}

	rep, hostErr := hostSessionReport(ln, proto, inputs, seed, cfg)
	wg.Wait()
	if hostErr != nil {
		return nil, hostErr
	}
	rep.ClientErrors = make(map[sim.PartyID]string)
	for i, cerr := range clientErrs {
		if cerr == nil {
			continue
		}
		id := sim.PartyID(i + 1)
		rep.ClientErrors[id] = cerr.Error()
		if _, stopped := rep.FailStops[id]; !stopped {
			// A surviving party's client failed even though the host
			// completed with it: that is a transport defect, not
			// degradation.
			return nil, fmt.Errorf("transport: party %d: %w", i+1, cerr)
		}
	}
	return rep, nil
}

// hostSessionReport accepts the party connections and drives the shared
// execution engine over them, degrading unrecoverable peers into
// fail-stop aborts between engine steps.
func hostSessionReport(ln net.Listener, proto sim.Protocol, inputs []sim.Value, seed int64, cfg SessionConfig) (*SessionReport, error) {
	cfg = cfg.withDefaults()
	n := proto.NumParties()
	am := newAcceptManager(ln, n, cfg)
	go am.run()

	peers, err := am.acceptPhase(seed, cfg)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, p := range peers {
			p.close()
		}
	}()

	backend := &remoteBackend{peers: peers, codec: cfg.Codec, inputs: inputs}
	e, err := sim.NewExecutionWithBackend(proto, inputs, sim.Passive{}, seed, backend, cfg.Observers...)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	// reportDead converts peers newly declared dead into the engine's
	// fail-stop abort, ascending id for deterministic event order.
	reportDead := func() error {
		for i := 1; i <= n; i++ {
			p := peers[sim.PartyID(i)]
			p.mu.Lock()
			fire := p.dead && !p.reported
			round, cause := p.deadRound, p.deadCause
			if fire {
				p.reported = true
			}
			p.mu.Unlock()
			if fire {
				if err := e.FailStop(sim.PartyID(i), round, cause); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := e.SetupPhase(); err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	for r := 1; r <= e.TotalRounds(); r++ {
		if err := e.Step(r); err != nil {
			return nil, fmt.Errorf("transport: %w", err)
		}
		if err := reportDead(); err != nil {
			return nil, fmt.Errorf("transport: %w", err)
		}
	}
	// Prefetch outputs before Finalize so output-phase losses degrade
	// into fail-stops too instead of erroring out of Finalize.
	if err := backend.collectOutputs(e.TotalRounds()); err != nil {
		return nil, err
	}
	if err := reportDead(); err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	tr, err := e.Finalize()
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	resumes := 0
	for _, p := range peers {
		p.mu.Lock()
		resumes += p.resumes
		p.mu.Unlock()
	}
	return &SessionReport{
		Outputs:   tr.HonestOutputs,
		Trace:     tr,
		FailStops: tr.FailStops,
		Resumes:   resumes,
	}, nil
}

// remoteBackend is the sim.PartyBackend whose machines live in remote
// party processes: StartParty ships the setup frame, PartyRound trades
// one inbox frame for one batch frame, PartyOutput serves the output
// prefetched by collectOutputs. Machine returns nil — remote sessions
// are honest-only. A dead peer behaves like a silent party (empty
// batches) until the host converts it into a fail-stop abort.
type remoteBackend struct {
	peers   map[sim.PartyID]*hostPeer
	codec   Codec
	inputs  []sim.Value // session inputs; clients already hold their own
	outputs map[sim.PartyID]sim.OutputRecord
}

var _ sim.PartyBackend = (*remoteBackend)(nil)

// StartParty implements sim.PartyBackend. The client keeps its own
// input, so only the setup output, abort flag, and RNG seed cross the
// wire; an input differing from the client's (adversarial substitution)
// is refused — the transport runs honest sessions only.
func (b *remoteBackend) StartParty(id sim.PartyID, input sim.Value, setupOut sim.Value, setupAborted bool, seed int64) error {
	if !sim.ValuesEqual(input, b.inputs[id-1]) {
		return fmt.Errorf("transport: party %d input substituted (%v != %v): %w",
			id, input, b.inputs[id-1], sim.ErrRemoteCorruption)
	}
	sf := frame{Kind: kindSetup, Round: 0, SetupAborted: setupAborted, Seed: seed}
	if setupOut != nil {
		data, err := b.codec.Encode(setupOut)
		if err != nil {
			return err
		}
		sf.SetupOut, sf.HasSetup = data, true
	}
	// Best-effort: a lost setup frame heals via resume replay when the
	// client's stall forces a reconnect.
	_ = b.peers[id].sendReliable(sf)
	return nil
}

// PartyRound implements sim.PartyBackend: one inbox frame out, one
// batch frame back. An unrecoverable peer is marked dead and returns an
// empty batch — the engine sees a silent party until the host applies
// the fail-stop after this step.
func (b *remoteBackend) PartyRound(id sim.PartyID, round int, inbox []sim.Message) ([]sim.Message, error) {
	p := b.peers[id]
	if p.isDead() {
		return nil, nil
	}
	inf := frame{Kind: kindInbox, Round: round}
	for _, m := range inbox {
		data, err := b.codec.Encode(m.Payload)
		if err != nil {
			return nil, err
		}
		inf.Msgs = append(inf.Msgs, wireMsg{From: int(m.From), To: int(m.To), Payload: data})
	}
	_ = p.sendReliable(inf)
	batch, err := p.recvHost()
	if err != nil {
		p.markDead(round, p.deathCause(err))
		return nil, nil
	}
	if batch.Kind != kindBatch || batch.Round != round {
		p.markDead(round, fmt.Sprintf("protocol violation: unexpected %v/r%d frame", batch.Kind, batch.Round))
		return nil, nil
	}
	out := make([]sim.Message, 0, len(batch.Msgs))
	for _, m := range batch.Msgs {
		payload, err := b.codec.Decode(m.Payload)
		if err != nil {
			return nil, fmt.Errorf("transport: round %d payload from %d: %w", round, id, err)
		}
		// The channel authenticates the sender; the engine restamps From.
		out = append(out, sim.Message{From: id, To: sim.PartyID(m.To), Payload: payload})
	}
	return out, nil
}

// collectOutputs prefetches every surviving peer's output frame (and
// acknowledges it with a bye so the client may exit), marking peers
// that cannot deliver one as dead.
func (b *remoteBackend) collectOutputs(totalRounds int) error {
	b.outputs = make(map[sim.PartyID]sim.OutputRecord, len(b.peers))
	for i := 1; i <= len(b.peers); i++ {
		id := sim.PartyID(i)
		p := b.peers[id]
		if p.isDead() {
			continue
		}
		of, err := p.recvHost()
		if err != nil {
			p.markDead(totalRounds, p.deathCause(err))
			continue
		}
		if of.Kind != kindOutput {
			p.markDead(totalRounds, fmt.Sprintf("protocol violation: unexpected %v frame", of.Kind))
			continue
		}
		rec := sim.OutputRecord{OK: of.OutputOK}
		if of.OutputOK {
			v, err := b.codec.Decode(of.Output)
			if err != nil {
				return fmt.Errorf("transport: output from %d: %w", id, err)
			}
			rec.Value = v
		}
		b.outputs[id] = rec
		_ = p.sendReliable(frame{Kind: kindBye, Round: totalRounds + 1})
	}
	return nil
}

// PartyOutput implements sim.PartyBackend, serving the prefetched
// output (fail-stopped parties are never asked).
func (b *remoteBackend) PartyOutput(id sim.PartyID) (sim.OutputRecord, error) {
	rec, ok := b.outputs[id]
	if !ok {
		return sim.OutputRecord{}, fmt.Errorf("transport: no output collected from %d", id)
	}
	return rec, nil
}

// Machine implements sim.PartyBackend: remote machines cannot be handed
// over, so corruption attempts fail with sim.ErrRemoteCorruption.
func (b *remoteBackend) Machine(sim.PartyID) sim.Party { return nil }

// AuditInfo implements sim.PartyBackend: remote machines do not expose
// audit state to the host.
func (b *remoteBackend) AuditInfo(sim.PartyID) (sim.Value, bool) { return nil, false }

// clientPeer is one party's reliable endpoint: it dials with bounded
// retry, and on a broken connection redials and resumes with the
// session token.
type clientPeer struct {
	endpoint
	addr         string
	id           sim.PartyID
	token        uint64
	dialTimeout  time.Duration
	dialAttempts int
	nParties     int
}

func newClientPeer(addr string, id sim.PartyID, nParties int, cfg SessionConfig) *clientPeer {
	return &clientPeer{
		endpoint: endpoint{
			party:   int(id),
			dir:     faultinject.DirClientToHost,
			timeout: cfg.RoundTimeout,
			fault:   cfg.Fault,
			pending: make(map[uint64]frame),
		},
		addr:         addr,
		id:           id,
		dialTimeout:  cfg.DialTimeout,
		dialAttempts: cfg.DialAttempts,
		nParties:     nParties,
	}
}

// dialRetry runs one handshake attempt per dial, with exponential
// backoff between attempts.
func (c *clientPeer) dialRetry(attempt func(conn net.Conn, enc *gob.Encoder, dec *gob.Decoder) error) error {
	backoff := 20 * time.Millisecond
	var lastErr error
	for i := 0; i < c.dialAttempts; i++ {
		if i > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		if err := attempt(conn, gob.NewEncoder(conn), gob.NewDecoder(conn)); err != nil {
			_ = conn.Close()
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("dial %s after %d attempts: %w", c.addr, c.dialAttempts, lastErr)
}

// connect performs the initial hello/welcome handshake.
func (c *clientPeer) connect() error {
	return c.dialRetry(func(conn net.Conn, enc *gob.Encoder, dec *gob.Decoder) error {
		if err := writeFrame(conn, enc, c.timeout, frame{Kind: kindHello, ID: int(c.id)}); err != nil {
			return err
		}
		var w frame
		if err := readFrame(conn, dec, c.timeout, &w); err != nil {
			return err
		}
		if w.Kind != kindWelcome {
			return fmt.Errorf("expected welcome frame, got %v", w.Kind)
		}
		c.token = w.Token
		c.install(conn, enc, dec)
		return nil
	})
}

// recover is the client's recovery step for recvReliable: redial, send
// a resume with our cumulative ack, adopt the host's ack, and replay
// our unacknowledged outbox.
func (c *clientPeer) recover(deadline time.Time) error {
	return c.dialRetry(func(conn net.Conn, enc *gob.Encoder, dec *gob.Decoder) error {
		if time.Now().After(deadline) {
			return errBudget
		}
		rf := frame{Kind: kindResume, ID: int(c.id), Token: c.token, Ack: c.ackSeq()}
		if err := writeFrame(conn, enc, c.timeout, rf); err != nil {
			return err
		}
		var ack frame
		if err := readFrame(conn, dec, c.timeout, &ack); err != nil {
			return err
		}
		if ack.Kind != kindResumeAck {
			return fmt.Errorf("expected resume-ack frame, got %v", ack.Kind)
		}
		c.install(conn, enc, dec)
		c.trimOutbox(ack.Ack)
		replay := c.replayList()
		c.wmu.Lock()
		for _, f := range replay {
			if writeFrame(conn, enc, c.timeout, f) != nil {
				break
			}
		}
		c.wmu.Unlock()
		return nil
	})
}

// expect receives the next in-order frame and checks its kind (and
// round, when nonzero). The budget scales with the party count: the
// host heals peers one at a time, so a client may legitimately wait
// through other peers' recoveries.
func (c *clientPeer) expect(kind frameKind, round int) (frame, error) {
	deadline := time.Now().Add(2 * time.Duration(c.nParties) * c.timeout)
	f, err := c.recvReliable(deadline, c.recover)
	if err != nil {
		return frame{}, err
	}
	if f.Kind != kind || (round != 0 && f.Round != round) {
		return frame{}, fmt.Errorf("expected %v/r%d frame, got %v/r%d", kind, round, f.Kind, f.Round)
	}
	return f, nil
}

// runClient is one party process: connect with bounded dial retry,
// handshake, round loop, output — all over the reliable frame layer, so
// transient connection faults heal transparently. It returns ErrKilled
// when the fault injector crashes the party.
func runClient(addr string, proto sim.Protocol, id sim.PartyID, input sim.Value, cfg SessionConfig) error {
	cfg = cfg.withDefaults()
	c := newClientPeer(addr, id, proto.NumParties(), cfg)
	if err := c.connect(); err != nil {
		return err
	}
	defer c.close()

	sf, err := c.expect(kindSetup, 0)
	if err != nil {
		return fmt.Errorf("setup: %w", err)
	}
	var setupOut sim.Value
	if sf.HasSetup {
		v, err := cfg.Codec.Decode(sf.SetupOut)
		if err != nil {
			return err
		}
		setupOut = v
	}
	machine, err := proto.NewParty(id, input, setupOut, sf.SetupAborted, rand.New(rand.NewSource(sf.Seed)))
	if err != nil {
		return err
	}

	totalRounds := proto.NumRounds() + 1
	for r := 1; r <= totalRounds; r++ {
		inf, err := c.expect(kindInbox, r)
		if err != nil {
			return fmt.Errorf("round %d inbox: %w", r, err)
		}
		inbox := make([]sim.Message, 0, len(inf.Msgs))
		for _, m := range inf.Msgs {
			payload, err := cfg.Codec.Decode(m.Payload)
			if err != nil {
				return fmt.Errorf("round %d payload: %w", r, err)
			}
			inbox = append(inbox, sim.Message{
				From: sim.PartyID(m.From), To: sim.PartyID(m.To), Payload: payload,
			})
		}
		out, err := machine.Round(r, inbox)
		if err != nil {
			return fmt.Errorf("round %d: %w", r, err)
		}
		batch := frame{Kind: kindBatch, Round: r}
		for _, m := range out {
			data, err := cfg.Codec.Encode(m.Payload)
			if err != nil {
				return fmt.Errorf("round %d encode: %w", r, err)
			}
			batch.Msgs = append(batch.Msgs, wireMsg{From: int(id), To: int(m.To), Payload: data})
		}
		if err := c.sendReliable(batch); err != nil {
			return err // ErrKilled: the party crashes here
		}
	}

	of := frame{Kind: kindOutput, Round: totalRounds + 1}
	if v, ok := machine.Output(); ok {
		data, err := cfg.Codec.Encode(v)
		if err != nil {
			return err
		}
		of.Output, of.OutputOK = data, true
	}
	if err := c.sendReliable(of); err != nil {
		return err
	}
	// Stay connected until the host acknowledges the output: a dropped
	// output frame heals via resume replay only while we are reachable.
	if _, err := c.expect(kindBye, 0); err != nil {
		return fmt.Errorf("bye: %w", err)
	}
	return nil
}
