// Package transport executes protocols over real TCP connections: every
// party runs as a client speaking length-delimited gob frames to a
// round-synchronizing host over the loopback interface, exercising the
// same Party machines as the in-memory engine.
//
// The transport runs *honest* sessions — it demonstrates that the
// protocol machines are genuinely message-driven state machines that
// survive serialization boundaries, and provides the skeleton a real
// deployment would flesh out. Adversarial executions (rushing,
// corruption, aborts) remain the in-memory engine's job: fairness is a
// property quantified against the model's adversary, not against packet
// loss.
//
// Message payloads cross the wire gob-encoded, so protocol packages
// expose RegisterGobTypes helpers for their payload types.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/sim"
)

// Codec serializes protocol message payloads.
type Codec interface {
	Encode(payload any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// GobCodec encodes payloads with encoding/gob; concrete payload types
// must be registered (see the protocols' RegisterGobTypes helpers).
type GobCodec struct{}

var _ Codec = GobCodec{}

// payloadBox lets gob carry the payload interface.
type payloadBox struct {
	V any
}

// Encode implements Codec.
func (GobCodec) Encode(payload any) ([]byte, error) {
	var buf writeBuffer
	if err := gob.NewEncoder(&buf).Encode(payloadBox{V: payload}); err != nil {
		return nil, fmt.Errorf("transport: encode payload: %w", err)
	}
	return buf.data, nil
}

// Decode implements Codec.
func (GobCodec) Decode(data []byte) (any, error) {
	var box payloadBox
	if err := gob.NewDecoder(&readBuffer{data: data}).Decode(&box); err != nil {
		return nil, fmt.Errorf("transport: decode payload: %w", err)
	}
	return box.V, nil
}

type writeBuffer struct{ data []byte }

func (w *writeBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

type readBuffer struct {
	data []byte
	off  int
}

func (r *readBuffer) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, errors.New("EOF")
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// frame kinds.
type frameKind int

const (
	kindHello frameKind = iota + 1
	kindSetup
	kindInbox
	kindBatch
	kindOutput
)

// wireMsg is a serialized sim.Message.
type wireMsg struct {
	From, To int
	Payload  []byte
}

// frame is the session wire unit.
type frame struct {
	Kind         frameKind
	ID           int // hello: party id
	Round        int
	Msgs         []wireMsg
	SetupOut     []byte
	SetupAborted bool
	HasSetup     bool
	Output       []byte
	OutputOK     bool
}

// sessionTimeout bounds every read/write on the loopback sockets.
const sessionTimeout = 30 * time.Second

// RunSession executes one honest run of proto over loopback TCP: the
// hybrid setup runs on the host, each party connects as a TCP client,
// and rounds proceed in lockstep. It returns every party's output.
func RunSession(proto sim.Protocol, inputs []sim.Value, codec Codec, seed int64) (map[sim.PartyID]sim.OutputRecord, error) {
	n := proto.NumParties()
	if len(inputs) != n {
		return nil, fmt.Errorf("transport: %d inputs for %d parties", len(inputs), n)
	}
	master := rand.New(rand.NewSource(seed))
	setupRNG := rand.New(rand.NewSource(master.Int63()))
	partySeeds := make([]int64, n)
	for i := range partySeeds {
		partySeeds[i] = master.Int63()
	}

	setupOuts, err := proto.Setup(inputs, setupRNG)
	if err != nil {
		return nil, fmt.Errorf("transport: setup: %w", err)
	}
	if len(setupOuts) == n+1 {
		setupOuts = setupOuts[:n] // hidden audit state stays on the host
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	defer func() { _ = ln.Close() }()

	// Launch the party clients.
	var wg sync.WaitGroup
	clientErrs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			clientErrs[idx] = runClient(ln.Addr().String(), proto, sim.PartyID(idx+1),
				inputs[idx], partySeeds[idx], codec)
		}(i)
	}

	outputs, hostErr := runHost(ln, proto, setupOuts, codec)
	wg.Wait()
	if hostErr != nil {
		return nil, hostErr
	}
	for i, err := range clientErrs {
		if err != nil {
			return nil, fmt.Errorf("transport: party %d: %w", i+1, err)
		}
	}
	return outputs, nil
}

// runHost accepts the n party connections and drives the rounds.
func runHost(ln net.Listener, proto sim.Protocol, setupOuts []sim.Value, codec Codec) (map[sim.PartyID]sim.OutputRecord, error) {
	n := proto.NumParties()
	conns := make(map[sim.PartyID]*peer, n)
	defer func() {
		for _, p := range conns {
			_ = p.conn.Close()
		}
	}()

	for i := 0; i < n; i++ {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("transport: accept: %w", err)
		}
		p := newPeer(conn)
		hello, err := p.recv()
		if err != nil {
			return nil, fmt.Errorf("transport: handshake: %w", err)
		}
		if hello.Kind != kindHello || hello.ID < 1 || hello.ID > n {
			return nil, fmt.Errorf("transport: bad hello %+v", hello)
		}
		id := sim.PartyID(hello.ID)
		if _, dup := conns[id]; dup {
			return nil, fmt.Errorf("transport: duplicate party %d", id)
		}
		conns[id] = p
		// Send the party its private setup output.
		sf := frame{Kind: kindSetup}
		if setupOuts != nil {
			data, err := codec.Encode(setupOuts[id-1])
			if err != nil {
				return nil, err
			}
			sf.SetupOut, sf.HasSetup = data, true
		}
		if err := p.send(sf); err != nil {
			return nil, err
		}
	}

	inboxes := make(map[sim.PartyID][]wireMsg, n)
	totalRounds := proto.NumRounds() + 1
	for r := 1; r <= totalRounds; r++ {
		// Deliver inboxes.
		for id, p := range conns {
			if err := p.send(frame{Kind: kindInbox, Round: r, Msgs: inboxes[id]}); err != nil {
				return nil, fmt.Errorf("transport: round %d deliver to %d: %w", r, id, err)
			}
		}
		// Collect and route batches.
		next := make(map[sim.PartyID][]wireMsg, n)
		for id := sim.PartyID(1); id <= sim.PartyID(n); id++ {
			batch, err := conns[id].recv()
			if err != nil {
				return nil, fmt.Errorf("transport: round %d batch from %d: %w", r, id, err)
			}
			if batch.Kind != kindBatch || batch.Round != r {
				return nil, fmt.Errorf("transport: unexpected frame %+v from %d", batch.Kind, id)
			}
			for _, m := range batch.Msgs {
				m.From = int(id) // the channel authenticates the sender
				if m.To == int(sim.Broadcast) {
					for to := sim.PartyID(1); to <= sim.PartyID(n); to++ {
						next[to] = append(next[to], m)
					}
					continue
				}
				if m.To >= 1 && m.To <= n {
					next[sim.PartyID(m.To)] = append(next[sim.PartyID(m.To)], m)
				}
			}
		}
		inboxes = next
	}

	// Collect outputs.
	outputs := make(map[sim.PartyID]sim.OutputRecord, n)
	for id, p := range conns {
		of, err := p.recv()
		if err != nil {
			return nil, fmt.Errorf("transport: output from %d: %w", id, err)
		}
		if of.Kind != kindOutput {
			return nil, fmt.Errorf("transport: expected output frame from %d", id)
		}
		rec := sim.OutputRecord{OK: of.OutputOK}
		if of.OutputOK {
			v, err := codec.Decode(of.Output)
			if err != nil {
				return nil, err
			}
			rec.Value = v
		}
		outputs[id] = rec
	}
	return outputs, nil
}

// runClient is one party process: connect, handshake, round loop, output.
func runClient(addr string, proto sim.Protocol, id sim.PartyID, input sim.Value, seed int64, codec Codec) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer func() { _ = conn.Close() }()
	p := newPeer(conn)

	if err := p.send(frame{Kind: kindHello, ID: int(id)}); err != nil {
		return err
	}
	sf, err := p.recv()
	if err != nil {
		return err
	}
	if sf.Kind != kindSetup {
		return fmt.Errorf("expected setup frame, got %v", sf.Kind)
	}
	var setupOut sim.Value
	if sf.HasSetup {
		v, err := codec.Decode(sf.SetupOut)
		if err != nil {
			return err
		}
		setupOut = v
	}
	machine, err := proto.NewParty(id, input, setupOut, sf.SetupAborted, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}

	totalRounds := proto.NumRounds() + 1
	for r := 1; r <= totalRounds; r++ {
		inf, err := p.recv()
		if err != nil {
			return fmt.Errorf("round %d inbox: %w", r, err)
		}
		if inf.Kind != kindInbox || inf.Round != r {
			return fmt.Errorf("round %d: unexpected frame %v/%d", r, inf.Kind, inf.Round)
		}
		inbox := make([]sim.Message, 0, len(inf.Msgs))
		for _, m := range inf.Msgs {
			payload, err := codec.Decode(m.Payload)
			if err != nil {
				return fmt.Errorf("round %d payload: %w", r, err)
			}
			inbox = append(inbox, sim.Message{
				From: sim.PartyID(m.From), To: sim.PartyID(m.To), Payload: payload,
			})
		}
		out, err := machine.Round(r, inbox)
		if err != nil {
			return fmt.Errorf("round %d: %w", r, err)
		}
		batch := frame{Kind: kindBatch, Round: r}
		for _, m := range out {
			data, err := codec.Encode(m.Payload)
			if err != nil {
				return fmt.Errorf("round %d encode: %w", r, err)
			}
			batch.Msgs = append(batch.Msgs, wireMsg{From: int(id), To: int(m.To), Payload: data})
		}
		if err := p.send(batch); err != nil {
			return err
		}
	}

	of := frame{Kind: kindOutput}
	if v, ok := machine.Output(); ok {
		data, err := codec.Encode(v)
		if err != nil {
			return err
		}
		of.Output, of.OutputOK = data, true
	}
	return p.send(of)
}

// peer wraps a connection with gob framing and deadlines.
type peer struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func newPeer(conn net.Conn) *peer {
	return &peer{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

func (p *peer) send(f frame) error {
	if err := p.conn.SetWriteDeadline(time.Now().Add(sessionTimeout)); err != nil {
		return err
	}
	return p.enc.Encode(f)
}

func (p *peer) recv() (frame, error) {
	if err := p.conn.SetReadDeadline(time.Now().Add(sessionTimeout)); err != nil {
		return frame{}, err
	}
	var f frame
	if err := p.dec.Decode(&f); err != nil {
		return frame{}, err
	}
	return f, nil
}
