// Package transport executes protocols over real TCP connections: every
// party runs as a client speaking length-delimited gob frames to a
// round-synchronizing host over the loopback interface, exercising the
// same Party machines as the in-memory engine.
//
// The host is the shared sim.Execution engine running on a remote
// PartyBackend: NewExecutionWithBackend → SetupPhase → Step per wire
// round → Finalize, with party machines living in the client processes
// instead of in the host's memory. Observers attached via SessionConfig
// therefore see the identical event stream an in-memory run produces.
//
// The transport runs *honest* sessions — it demonstrates that the
// protocol machines are genuinely message-driven state machines that
// survive serialization boundaries, and provides the skeleton a real
// deployment would flesh out. Adversarial executions (rushing,
// corruption, aborts) remain the in-memory engine's job: fairness is a
// property quantified against the model's adversary, not against packet
// loss. Any corruption against the remote backend fails with
// sim.ErrRemoteCorruption.
//
// Message payloads cross the wire gob-encoded, so protocol packages
// expose RegisterGobTypes helpers for their payload types.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/sim"
)

// Codec serializes protocol message payloads.
type Codec interface {
	Encode(payload any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// GobCodec encodes payloads with encoding/gob; concrete payload types
// must be registered (see the protocols' RegisterGobTypes helpers).
type GobCodec struct{}

var _ Codec = GobCodec{}

// payloadBox lets gob carry the payload interface.
type payloadBox struct {
	V any
}

// Encode implements Codec.
func (GobCodec) Encode(payload any) ([]byte, error) {
	var buf writeBuffer
	if err := gob.NewEncoder(&buf).Encode(payloadBox{V: payload}); err != nil {
		return nil, fmt.Errorf("transport: encode payload: %w", err)
	}
	return buf.data, nil
}

// Decode implements Codec.
func (GobCodec) Decode(data []byte) (any, error) {
	var box payloadBox
	if err := gob.NewDecoder(&readBuffer{data: data}).Decode(&box); err != nil {
		return nil, fmt.Errorf("transport: decode payload: %w", err)
	}
	return box.V, nil
}

type writeBuffer struct{ data []byte }

func (w *writeBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

type readBuffer struct {
	data []byte
	off  int
}

func (r *readBuffer) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, errors.New("EOF")
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// frame kinds.
type frameKind int

const (
	kindHello frameKind = iota + 1
	kindSetup
	kindInbox
	kindBatch
	kindOutput
)

// wireMsg is a serialized sim.Message.
type wireMsg struct {
	From, To int
	Payload  []byte
}

// frame is the session wire unit.
type frame struct {
	Kind         frameKind
	ID           int // hello: party id
	Round        int
	Msgs         []wireMsg
	SetupOut     []byte
	SetupAborted bool
	HasSetup     bool
	Seed         int64 // setup: the party's engine-drawn RNG seed
	Output       []byte
	OutputOK     bool
}

// DefaultRoundTimeout bounds every read/write on the loopback sockets
// when SessionConfig.RoundTimeout is zero. Each wire round resets the
// deadline, so it is a per-frame stall bound, not a whole-session one.
const DefaultRoundTimeout = 30 * time.Second

// SessionConfig tunes a TCP session.
type SessionConfig struct {
	// Codec serializes payloads; nil means GobCodec{}.
	Codec Codec
	// RoundTimeout is the per-frame read/write deadline on every socket;
	// zero means DefaultRoundTimeout. A client that stalls mid-round
	// fails the session with a timeout error instead of hanging the host.
	RoundTimeout time.Duration
	// Observers receive the engine's event stream for the hosted run,
	// exactly as an in-memory sim.RunObserved would deliver it.
	Observers []sim.Observer
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.Codec == nil {
		c.Codec = GobCodec{}
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = DefaultRoundTimeout
	}
	return c
}

// RunSession executes one honest run of proto over loopback TCP with the
// default round timeout. It returns every party's output.
func RunSession(proto sim.Protocol, inputs []sim.Value, codec Codec, seed int64) (map[sim.PartyID]sim.OutputRecord, error) {
	return RunSessionConfig(proto, inputs, seed, SessionConfig{Codec: codec})
}

// RunSessionConfig executes one honest run of proto over loopback TCP:
// each party connects as a TCP client, and the host drives the shared
// sim.Execution phases (setup, lockstep rounds, finalize) against the
// remote machines. It returns every party's output.
func RunSessionConfig(proto sim.Protocol, inputs []sim.Value, seed int64, cfg SessionConfig) (map[sim.PartyID]sim.OutputRecord, error) {
	cfg = cfg.withDefaults()
	n := proto.NumParties()
	if len(inputs) != n {
		return nil, fmt.Errorf("transport: %d inputs for %d parties", len(inputs), n)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	defer func() { _ = ln.Close() }()

	// Launch the party clients. Their machine RNG seeds arrive in the
	// setup frame, drawn by the engine from the session's master seed.
	var wg sync.WaitGroup
	clientErrs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			clientErrs[idx] = runClient(ln.Addr().String(), proto, sim.PartyID(idx+1),
				inputs[idx], cfg.Codec, cfg.RoundTimeout)
		}(i)
	}

	outputs, hostErr := hostSession(ln, proto, inputs, seed, cfg)
	wg.Wait()
	if hostErr != nil {
		return nil, hostErr
	}
	for i, err := range clientErrs {
		if err != nil {
			return nil, fmt.Errorf("transport: party %d: %w", i+1, err)
		}
	}
	return outputs, nil
}

// hostSession accepts the n party connections and drives the shared
// execution engine over them.
func hostSession(ln net.Listener, proto sim.Protocol, inputs []sim.Value, seed int64, cfg SessionConfig) (map[sim.PartyID]sim.OutputRecord, error) {
	cfg = cfg.withDefaults()
	n := proto.NumParties()
	peers := make(map[sim.PartyID]*peer, n)
	defer func() {
		for _, p := range peers {
			_ = p.conn.Close()
		}
	}()

	for i := 0; i < n; i++ {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("transport: accept: %w", err)
		}
		p := newPeer(conn, cfg.RoundTimeout)
		hello, err := p.recv()
		if err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("transport: handshake: %w", err)
		}
		if hello.Kind != kindHello || hello.ID < 1 || hello.ID > n {
			_ = conn.Close()
			return nil, fmt.Errorf("transport: bad hello %+v", hello)
		}
		id := sim.PartyID(hello.ID)
		if _, dup := peers[id]; dup {
			_ = conn.Close()
			return nil, fmt.Errorf("transport: duplicate party %d", id)
		}
		peers[id] = p
	}

	backend := &remoteBackend{peers: peers, codec: cfg.Codec, inputs: inputs}
	e, err := sim.NewExecutionWithBackend(proto, inputs, sim.Passive{}, seed, backend, cfg.Observers...)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	if err := e.SetupPhase(); err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	for r := 1; r <= e.TotalRounds(); r++ {
		if err := e.Step(r); err != nil {
			return nil, fmt.Errorf("transport: %w", err)
		}
	}
	tr, err := e.Finalize()
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return tr.HonestOutputs, nil
}

// remoteBackend is the sim.PartyBackend whose machines live in remote
// party processes: StartParty ships the setup frame, PartyRound trades
// one inbox frame for one batch frame, PartyOutput reads the output
// frame. Machine returns nil — remote sessions are honest-only.
type remoteBackend struct {
	peers  map[sim.PartyID]*peer
	codec  Codec
	inputs []sim.Value // session inputs; clients already hold their own
}

var _ sim.PartyBackend = (*remoteBackend)(nil)

// StartParty implements sim.PartyBackend. The client keeps its own
// input, so only the setup output, abort flag, and RNG seed cross the
// wire; an input differing from the client's (adversarial substitution)
// is refused — the transport runs honest sessions only.
func (b *remoteBackend) StartParty(id sim.PartyID, input sim.Value, setupOut sim.Value, setupAborted bool, seed int64) error {
	if !sim.ValuesEqual(input, b.inputs[id-1]) {
		return fmt.Errorf("transport: party %d input substituted (%v != %v): %w",
			id, input, b.inputs[id-1], sim.ErrRemoteCorruption)
	}
	sf := frame{Kind: kindSetup, SetupAborted: setupAborted, Seed: seed}
	if setupOut != nil {
		data, err := b.codec.Encode(setupOut)
		if err != nil {
			return err
		}
		sf.SetupOut, sf.HasSetup = data, true
	}
	if err := b.peers[id].send(sf); err != nil {
		return fmt.Errorf("transport: setup to %d: %w", id, err)
	}
	return nil
}

// PartyRound implements sim.PartyBackend.
func (b *remoteBackend) PartyRound(id sim.PartyID, round int, inbox []sim.Message) ([]sim.Message, error) {
	p := b.peers[id]
	inf := frame{Kind: kindInbox, Round: round}
	for _, m := range inbox {
		data, err := b.codec.Encode(m.Payload)
		if err != nil {
			return nil, err
		}
		inf.Msgs = append(inf.Msgs, wireMsg{From: int(m.From), To: int(m.To), Payload: data})
	}
	if err := p.send(inf); err != nil {
		return nil, fmt.Errorf("transport: round %d deliver to %d: %w", round, id, err)
	}
	batch, err := p.recv()
	if err != nil {
		return nil, fmt.Errorf("transport: round %d batch from %d: %w", round, id, err)
	}
	if batch.Kind != kindBatch || batch.Round != round {
		return nil, fmt.Errorf("transport: unexpected frame %v from %d", batch.Kind, id)
	}
	out := make([]sim.Message, 0, len(batch.Msgs))
	for _, m := range batch.Msgs {
		payload, err := b.codec.Decode(m.Payload)
		if err != nil {
			return nil, fmt.Errorf("transport: round %d payload from %d: %w", round, id, err)
		}
		// The channel authenticates the sender; the engine restamps From.
		out = append(out, sim.Message{From: id, To: sim.PartyID(m.To), Payload: payload})
	}
	return out, nil
}

// PartyOutput implements sim.PartyBackend.
func (b *remoteBackend) PartyOutput(id sim.PartyID) (sim.OutputRecord, error) {
	of, err := b.peers[id].recv()
	if err != nil {
		return sim.OutputRecord{}, fmt.Errorf("transport: output from %d: %w", id, err)
	}
	if of.Kind != kindOutput {
		return sim.OutputRecord{}, fmt.Errorf("transport: expected output frame from %d", id)
	}
	rec := sim.OutputRecord{OK: of.OutputOK}
	if of.OutputOK {
		v, err := b.codec.Decode(of.Output)
		if err != nil {
			return sim.OutputRecord{}, err
		}
		rec.Value = v
	}
	return rec, nil
}

// Machine implements sim.PartyBackend: remote machines cannot be handed
// over, so corruption attempts fail with sim.ErrRemoteCorruption.
func (b *remoteBackend) Machine(sim.PartyID) sim.Party { return nil }

// AuditInfo implements sim.PartyBackend: remote machines do not expose
// audit state to the host.
func (b *remoteBackend) AuditInfo(sim.PartyID) (sim.Value, bool) { return nil, false }

// runClient is one party process: connect, handshake, round loop, output.
// Its machine RNG seed arrives in the setup frame.
func runClient(addr string, proto sim.Protocol, id sim.PartyID, input sim.Value, codec Codec, timeout time.Duration) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer func() { _ = conn.Close() }()
	p := newPeer(conn, timeout)

	if err := p.send(frame{Kind: kindHello, ID: int(id)}); err != nil {
		return err
	}
	sf, err := p.recv()
	if err != nil {
		return err
	}
	if sf.Kind != kindSetup {
		return fmt.Errorf("expected setup frame, got %v", sf.Kind)
	}
	var setupOut sim.Value
	if sf.HasSetup {
		v, err := codec.Decode(sf.SetupOut)
		if err != nil {
			return err
		}
		setupOut = v
	}
	machine, err := proto.NewParty(id, input, setupOut, sf.SetupAborted, rand.New(rand.NewSource(sf.Seed)))
	if err != nil {
		return err
	}

	totalRounds := proto.NumRounds() + 1
	for r := 1; r <= totalRounds; r++ {
		inf, err := p.recv()
		if err != nil {
			return fmt.Errorf("round %d inbox: %w", r, err)
		}
		if inf.Kind != kindInbox || inf.Round != r {
			return fmt.Errorf("round %d: unexpected frame %v/%d", r, inf.Kind, inf.Round)
		}
		inbox := make([]sim.Message, 0, len(inf.Msgs))
		for _, m := range inf.Msgs {
			payload, err := codec.Decode(m.Payload)
			if err != nil {
				return fmt.Errorf("round %d payload: %w", r, err)
			}
			inbox = append(inbox, sim.Message{
				From: sim.PartyID(m.From), To: sim.PartyID(m.To), Payload: payload,
			})
		}
		out, err := machine.Round(r, inbox)
		if err != nil {
			return fmt.Errorf("round %d: %w", r, err)
		}
		batch := frame{Kind: kindBatch, Round: r}
		for _, m := range out {
			data, err := codec.Encode(m.Payload)
			if err != nil {
				return fmt.Errorf("round %d encode: %w", r, err)
			}
			batch.Msgs = append(batch.Msgs, wireMsg{From: int(id), To: int(m.To), Payload: data})
		}
		if err := p.send(batch); err != nil {
			return err
		}
	}

	of := frame{Kind: kindOutput}
	if v, ok := machine.Output(); ok {
		data, err := codec.Encode(v)
		if err != nil {
			return err
		}
		of.Output, of.OutputOK = data, true
	}
	return p.send(of)
}

// peer wraps a connection with gob framing and per-frame deadlines.
type peer struct {
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	timeout time.Duration
}

func newPeer(conn net.Conn, timeout time.Duration) *peer {
	if timeout <= 0 {
		timeout = DefaultRoundTimeout
	}
	return &peer{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn), timeout: timeout}
}

func (p *peer) send(f frame) error {
	if err := p.conn.SetWriteDeadline(time.Now().Add(p.timeout)); err != nil {
		return err
	}
	return p.enc.Encode(f)
}

func (p *peer) recv() (frame, error) {
	if err := p.conn.SetReadDeadline(time.Now().Add(p.timeout)); err != nil {
		return frame{}, err
	}
	var f frame
	if err := p.dec.Decode(&f); err != nil {
		return frame{}, err
	}
	return f, nil
}
