package adversary

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
)

// RawTwoParty is the raw two-party strategy product space of the
// ROADMAP: corrupted set × abort behaviour × input substitution, plus
// the passive baseline. Unlike the hand-curated TwoPartySpace it is not
// trimmed to the handful of proof-relevant attackers — it enumerates
// the full product so the search engine (internal/search) has something
// honest to search over — but it still contains every proof-optimal
// adversary for the protocols in this repository, so the searched sup
// matches the theoretical one up to sampling error.
//
// It implements core.BoundedSpace: each arm carries a statically sound
// utility upper bound derived from its event structure alone, which is
// what lets branch-and-bound prune dominated branches with zero
// estimator runs.
type RawTwoParty struct {
	rounds int
	subs   []sim.Value
	hit    func(target sim.PartyID) sim.Adversary

	abortVals []string // axis values: setup, r1..r{R+1}, [hit,] never
	subVals   []string // axis values: keep, x=v...
}

// RawOption configures a RawTwoParty space.
type RawOption func(*RawTwoParty)

// WithSubstitutions adds an input-substitution axis point per value: in
// those arms every corrupted party's input is replaced by the value
// before setup (via InputSubst). The values become part of the space's
// canonical description, so they must be printable stably with %v.
func WithSubstitutions(values ...sim.Value) RawOption {
	return func(s *RawTwoParty) { s.subs = append(s.subs, values...) }
}

// WithFirstHit adds a "hit" point on the abort axis whose strategies
// are built by fresh (e.g. gordonkatz.NewFirstHit): the timing attacker
// that aborts the moment its reconstructed value equals the true
// output. Kept as a factory so this package does not import the
// protocol packages that define such attackers.
func WithFirstHit(fresh func(target sim.PartyID) sim.Adversary) RawOption {
	return func(s *RawTwoParty) { s.hit = fresh }
}

// NewRawTwoParty builds the raw space for a two-party protocol with the
// given number of message rounds. The abort axis covers the setup
// abort, every round 1..rounds+1 (rounds+1 = abort after the last
// message, i.e. withhold nothing but the final step's effect), the
// optional first-hit attacker, and never aborting (honest-but-curious
// corruption).
func NewRawTwoParty(rounds int, opts ...RawOption) *RawTwoParty {
	s := &RawTwoParty{rounds: rounds}
	for _, o := range opts {
		o(s)
	}
	s.abortVals = append(s.abortVals, "setup")
	for r := 1; r <= rounds+1; r++ {
		s.abortVals = append(s.abortVals, fmt.Sprintf("r%d", r))
	}
	if s.hit != nil {
		s.abortVals = append(s.abortVals, "hit")
	}
	s.abortVals = append(s.abortVals, "never")
	s.subVals = []string{"keep"}
	for _, v := range s.subs {
		s.subVals = append(s.subVals, fmt.Sprintf("x=%v", v))
	}
	return s
}

// perSet is the number of arms sharing one corrupted set.
func (s *RawTwoParty) perSet() int { return len(s.abortVals) * len(s.subVals) }

// Len implements core.StrategySpace: the passive baseline plus the full
// product over the two one-party corrupted sets.
func (s *RawTwoParty) Len() int { return 1 + 2*s.perSet() }

// Describe implements core.StrategySpace.
func (s *RawTwoParty) Describe() string {
	hit := ""
	if s.hit != nil {
		hit = "+hit"
	}
	return fmt.Sprintf("raw2p(rounds=%d%s,subs=%d)", s.rounds, hit, len(s.subVals)-1)
}

// coords decomposes arm i (≥ 1) into (set, abort, sub) axis indices.
// The set index is 0-based over {p1, p2}.
func (s *RawTwoParty) coords(i int) (set, abort, sub int) {
	i--
	set = i / s.perSet()
	rest := i % s.perSet()
	return set, rest / len(s.subVals), rest % len(s.subVals)
}

// At implements core.StrategySpace. Arm 0 is the passive baseline; the
// rest follow the product order set-major, then abort, then
// substitution, so names like abort-r2-p1 line up with TwoPartySpace's
// spelling wherever both spaces contain the same attacker.
func (s *RawTwoParty) At(i int) core.NamedAdversary {
	if i == 0 {
		return core.NamedAdversary{Name: "passive", Adv: sim.Passive{}}
	}
	set, abort, sub := s.coords(i)
	target := sim.PartyID(set + 1)
	var name string
	var adv sim.Adversary
	switch av := s.abortVals[abort]; av {
	case "setup":
		name = fmt.Sprintf("setup-abort-p%d", target)
		adv = NewSetupAbort(target)
	case "hit":
		name = fmt.Sprintf("hit-p%d", target)
		adv = s.hit(target)
	case "never":
		name = fmt.Sprintf("honest-p%d", target)
		adv = NewStatic(target)
	default: // r%d
		name = fmt.Sprintf("abort-%s-p%d", av, target)
		var r int
		fmt.Sscanf(av, "r%d", &r)
		adv = NewAbortAt(r, target)
	}
	if sub > 0 {
		name += "-" + s.subVals[sub]
		adv = &InputSubst{Adversary: adv, Value: s.subs[sub-1]}
	}
	return core.NamedAdversary{Name: name, Adv: adv}
}

// Axes implements core.BoundedSpace.
func (s *RawTwoParty) Axes() []core.Axis {
	return []core.Axis{
		{Name: "set", Values: []string{"none", "p1", "p2"}},
		{Name: "abort", Values: append([]string(nil), s.abortVals...)},
		{Name: "sub", Values: append([]string(nil), s.subVals...)},
	}
}

// Coord implements core.BoundedSpace. The passive arm sits at set=none
// with the abort and substitution axes pinned to never/keep (the only
// values that mean anything without corruptions).
func (s *RawTwoParty) Coord(i int) []int {
	if i == 0 {
		return []int{0, len(s.abortVals) - 1, 0}
	}
	set, abort, sub := s.coords(i)
	return []int{set + 1, abort, sub}
}

// UpperBound implements core.BoundedSpace. The bounds come from the
// event structure alone, so they hold for every protocol and every
// environment:
//
//   - passive and setup-abort arms never see a reconstructed output, so
//     only E00/E01 can occur: at most max(γ00, γ01);
//   - never-abort arms complete the protocol, so every honest party
//     learns the output and only E01/E11 can occur: at most
//     max(γ01, γ11);
//   - aborting arms (round aborts and the first-hit attacker) can in
//     principle realize any event: the unconditional max over γ.
func (s *RawTwoParty) UpperBound(i int, gamma core.Payoff) float64 {
	var vals []float64
	if i == 0 {
		vals = []float64{gamma.G00, gamma.G01}
	} else {
		_, abort, _ := s.coords(i)
		switch s.abortVals[abort] {
		case "setup":
			vals = []float64{gamma.G00, gamma.G01}
		case "never":
			vals = []float64{gamma.G01, gamma.G11}
		default:
			vals = []float64{gamma.G00, gamma.G01, gamma.G10, gamma.G11}
		}
	}
	ub := math.Inf(-1)
	for _, v := range vals {
		ub = math.Max(ub, v)
	}
	return ub
}

var _ core.BoundedSpace = (*RawTwoParty)(nil)
