package adversary

import (
	"repro/internal/sim"
)

// Static is the base for strategies with a fixed corruption set that run
// the corrupted machines honestly unless a subclass decides otherwise.
// On its own it is the "honest-but-corrupted" strategy: it relays
// faithfully and reports the output once a corrupted machine produces it.
type Static struct {
	driver
	// Targets is the corrupted set.
	Targets []sim.PartyID
	// learned caches the first output any corrupted machine produced.
	learnedVal sim.Value
	learnedOK  bool
}

var _ sim.Adversary = (*Static)(nil)

// NewStatic corrupts exactly the given parties and runs them honestly.
func NewStatic(targets ...sim.PartyID) *Static {
	return &Static{Targets: targets}
}

// Reset implements sim.Adversary.
func (s *Static) Reset(ctx *sim.AdvContext) {
	s.driver.reset(ctx)
	s.learnedVal, s.learnedOK = nil, false
}

// InitialCorruptions implements sim.Adversary.
func (s *Static) InitialCorruptions() []sim.PartyID { return s.Targets }

// SubstituteInput implements sim.Adversary: keeps original inputs.
func (s *Static) SubstituteInput(_ sim.PartyID, orig sim.Value) sim.Value { return orig }

// ObserveSetup implements sim.Adversary: never aborts the hybrid.
func (s *Static) ObserveSetup(map[sim.PartyID]sim.Value) bool { return false }

// CorruptBefore implements sim.Adversary: static corruption only.
func (s *Static) CorruptBefore(int) []sim.PartyID { return nil }

// OnCorrupt implements sim.Adversary.
func (s *Static) OnCorrupt(id sim.PartyID, m sim.Party, _ sim.Value) { s.add(id, m) }

// Act implements sim.Adversary: honest execution.
func (s *Static) Act(round int, inboxes map[sim.PartyID][]sim.Message, _ []sim.Message) []sim.Message {
	out := s.stepHonest(round, inboxes)
	s.noteOutputs()
	return out
}

// Learned implements sim.Adversary.
func (s *Static) Learned() (sim.Value, bool) { return s.learnedVal, s.learnedOK }

func (s *Static) noteOutputs() {
	if s.learnedOK {
		return
	}
	for _, id := range s.ids() {
		if v, ok := s.machines[id].Output(); ok {
			s.learnedVal, s.learnedOK = v, true
			return
		}
	}
}

// AbortAt corrupts a fixed set, runs it honestly through round
// StopRound−1, and goes silent from StopRound on (while still reading
// everything it is sent and noting any output a corrupted machine can
// derive from its view, including the rushed messages of the abort
// round). StopRound 0 or negative means "never abort" — plain honest
// execution. A sweep over StopRound is the generic abort-timing attack
// space.
type AbortAt struct {
	Static
	// StopRound is the first message round in which the corrupted
	// parties send nothing.
	StopRound int
	// AbortSetup additionally aborts the hybrid setup phase.
	AbortSetup bool
	// abortedAt records the wire round the strategy first went silent in
	// during the current run (0 = has not aborted), for RoundAborter.
	abortedAt int
}

var (
	_ sim.Adversary    = (*AbortAt)(nil)
	_ sim.RoundAborter = (*AbortAt)(nil)
)

// NewAbortAt builds the strategy.
func NewAbortAt(stopRound int, targets ...sim.PartyID) *AbortAt {
	return &AbortAt{Static: Static{Targets: targets}, StopRound: stopRound}
}

// Reset implements sim.Adversary.
func (a *AbortAt) Reset(ctx *sim.AdvContext) {
	a.Static.Reset(ctx)
	a.abortedAt = 0
}

// ObserveSetup implements sim.Adversary.
func (a *AbortAt) ObserveSetup(map[sim.PartyID]sim.Value) bool { return a.AbortSetup }

// AbortedRound implements sim.RoundAborter: the wire round the last run
// went silent in, if the run reached StopRound at all.
func (a *AbortAt) AbortedRound() (int, bool) { return a.abortedAt, a.abortedAt > 0 }

// Act implements sim.Adversary.
func (a *AbortAt) Act(round int, inboxes map[sim.PartyID][]sim.Message, rushed []sim.Message) []sim.Message {
	aborted := a.StopRound > 0 && round >= a.StopRound
	var out []sim.Message
	if aborted {
		if a.abortedAt == 0 {
			a.abortedAt = round
		}
		// Keep feeding the machines their inboxes (the adversary still
		// reads its mail) but drop all outgoing messages.
		a.stepHonest(round, inboxes)
	} else {
		out = a.stepHonest(round, inboxes)
	}
	a.noteOutputs()
	if !a.learnedOK {
		// Even silent, a rushing adversary can complete its view with the
		// honest messages of this round.
		a.tryRushedLock(round, rushed)
	}
	return out
}

func (a *AbortAt) tryRushedLock(round int, rushed []sim.Message) {
	last := a.ctx.Protocol.NumRounds() + 1
	for _, id := range a.ids() {
		pending := filterFor(id, rushed)
		if len(pending) == 0 {
			continue
		}
		if v, ok := lookahead(a.machines[id], id, round+1, last, pending); ok {
			a.learnedVal, a.learnedOK = v, true
			return
		}
	}
}

// SetupAbort corrupts a fixed set and aborts the protocol's hybrid setup
// phase immediately (the "abort Π_GMW in phase 1" strategy).
type SetupAbort struct {
	Static
}

var _ sim.Adversary = (*SetupAbort)(nil)

// NewSetupAbort builds the strategy.
func NewSetupAbort(targets ...sim.PartyID) *SetupAbort {
	return &SetupAbort{Static: Static{Targets: targets}}
}

// ObserveSetup implements sim.Adversary: always aborts.
func (s *SetupAbort) ObserveSetup(map[sim.PartyID]sim.Value) bool { return true }

// Act implements sim.Adversary: silent after a setup abort.
func (s *SetupAbort) Act(int, map[sim.PartyID][]sim.Message, []sim.Message) []sim.Message {
	return nil
}

// InputSubst wraps another strategy, additionally substituting every
// corrupted party's input with a fixed value before the setup.
type InputSubst struct {
	sim.Adversary
	// Value replaces each corrupted input.
	Value sim.Value
}

// SubstituteInput implements sim.Adversary.
func (i *InputSubst) SubstituteInput(sim.PartyID, sim.Value) sim.Value { return i.Value }
