package adversary_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/protocols/twoparty"
	"repro/internal/sim"
)

// TestRawTwoPartyShape pins the raw space's enumeration contract: its
// size formula, unique stable names, and coherent Coord/Axes metadata —
// the search engine's arm keys and checkpoint byte-identity all hang
// off this order.
func TestRawTwoPartyShape(t *testing.T) {
	s := adversary.NewRawTwoParty(2,
		adversary.WithSubstitutions(uint64(0), uint64(1)),
		adversary.WithFirstHit(func(p sim.PartyID) sim.Adversary { return adversary.NewStatic(p) }),
	)
	// abort axis: setup, r1, r2, r3, hit, never = 6; subs: keep,0,1 = 3.
	want := 1 + 2*6*3
	if s.Len() != want {
		t.Fatalf("Len = %d, want %d", s.Len(), want)
	}
	axes := s.Axes()
	if len(axes) != 3 || axes[0].Name != "set" || axes[1].Name != "abort" || axes[2].Name != "sub" {
		t.Fatalf("unexpected axes %+v", axes)
	}
	seen := make(map[string]bool)
	for i := 0; i < s.Len(); i++ {
		na := s.At(i)
		if na.Adv == nil || na.Name == "" {
			t.Fatalf("arm %d incomplete: %+v", i, na)
		}
		if seen[na.Name] {
			t.Fatalf("duplicate arm name %q", na.Name)
		}
		seen[na.Name] = true
		c := s.Coord(i)
		if len(c) != len(axes) {
			t.Fatalf("arm %d: coord %v does not match axes", i, c)
		}
		for d, v := range c {
			if v < 0 || v >= len(axes[d].Values) {
				t.Fatalf("arm %d: coord %v out of axis %q range", i, c, axes[d].Name)
			}
		}
		// The set coordinate must agree with the party in the name.
		set := axes[0].Values[c[0]]
		switch {
		case na.Name == "passive":
			if set != "none" {
				t.Errorf("passive arm at set=%s", set)
			}
		case strings.Contains(na.Name, "-p1"):
			if set != "p1" {
				t.Errorf("arm %q at set=%s", na.Name, set)
			}
		case strings.Contains(na.Name, "-p2"):
			if set != "p2" {
				t.Errorf("arm %q at set=%s", na.Name, set)
			}
		}
	}
	if !seen["abort-r2-p1"] || !seen["honest-p2-x=1"] || !seen["hit-p1"] || !seen["setup-abort-p2-x=0"] {
		t.Fatalf("expected canonical arm names missing from %d arms", s.Len())
	}
	// Without the first-hit factory the hit axis point must disappear.
	plain := adversary.NewRawTwoParty(2)
	if plain.Len() != 1+2*5*1 {
		t.Fatalf("plain Len = %d, want 11", plain.Len())
	}
}

// TestRawTwoPartyBoundsSound verifies the branch-and-bound contract on
// a real protocol: every arm's measured utility stays at or below its
// static upper bound (up to the certified half-width). An unsound bound
// would let the search engine prune the true best response.
func TestRawTwoPartyBoundsSound(t *testing.T) {
	proto := twoparty.New(twoparty.Swap())
	g := core.StandardPayoff()
	s := adversary.NewRawTwoParty(proto.NumRounds(), adversary.WithSubstitutions(uint64(7)))
	sampler := func(r *rand.Rand) []sim.Value {
		return []sim.Value{uint64(r.Intn(1 << 16)), uint64(r.Intn(1 << 16))}
	}
	for i := 0; i < s.Len(); i++ {
		na := s.At(i)
		rep, err := core.EstimateUtility(proto, na.Adv, g, sampler, 400, 17)
		if err != nil {
			t.Fatalf("arm %q: %v", na.Name, err)
		}
		ub := s.UpperBound(i, g)
		if rep.Utility.Mean > ub+rep.Utility.HalfWidth {
			t.Errorf("arm %q: measured %v exceeds static bound %g", na.Name, rep.Utility, ub)
		}
	}
	// The bounds must actually discriminate: honest arms bounded by γ11,
	// setup/passive arms by 0 under the standard payoff.
	if ub := s.UpperBound(0, g); ub != 0 {
		t.Errorf("passive bound = %g, want 0", ub)
	}
}
