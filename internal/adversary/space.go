package adversary

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Strategy spaces for approximating sup_A u_A(Π, A) (Definition 1). The
// spaces always contain the proof-optimal attackers for the protocols in
// this repository, so the measured sup matches the theoretical one up to
// sampling error.

// TwoPartySpace is the canonical strategy space for two-party protocols:
// passive, one-sided lock-and-abort (A1, A2), their mixture (Agen),
// setup aborts, and abort-at-round sweeps for both parties.
func TwoPartySpace(rounds int) []core.NamedAdversary {
	advs := []core.NamedAdversary{
		{Name: "passive", Adv: sim.Passive{}},
		{Name: "honest-corrupt-p1", Adv: NewStatic(1)},
		{Name: "honest-corrupt-p2", Adv: NewStatic(2)},
		{Name: "lock-abort-p1", Adv: NewLockAbort(1)},
		{Name: "lock-abort-p2", Adv: NewLockAbort(2)},
		{Name: "agen", Adv: NewAgen()},
		{Name: "setup-abort-p1", Adv: NewSetupAbort(1)},
		{Name: "setup-abort-p2", Adv: NewSetupAbort(2)},
	}
	for r := 1; r <= rounds+1; r++ {
		advs = append(advs,
			core.NamedAdversary{Name: fmt.Sprintf("abort-r%d-p1", r), Adv: NewAbortAt(r, 1)},
			core.NamedAdversary{Name: fmt.Sprintf("abort-r%d-p2", r), Adv: NewAbortAt(r, 2)},
		)
	}
	return advs
}

// TSubsets returns the representative corrupted sets of size t used by
// the multi-party experiments: the prefix {1..t}, the suffix
// {n−t+1..n}, and the "straddle" set {1..t−1, n}. For the symmetric
// protocols studied here the per-t utility depends only on t, and these
// three probes guard the implementation against accidental asymmetry.
func TSubsets(n, t int) [][]sim.PartyID {
	prefix := make([]sim.PartyID, 0, t)
	suffix := make([]sim.PartyID, 0, t)
	straddle := make([]sim.PartyID, 0, t)
	for i := 1; i <= t; i++ {
		prefix = append(prefix, sim.PartyID(i))
		suffix = append(suffix, sim.PartyID(n-t+i))
	}
	for i := 1; i < t; i++ {
		straddle = append(straddle, sim.PartyID(i))
	}
	straddle = append(straddle, sim.PartyID(n))
	sets := [][]sim.PartyID{prefix}
	if n > t { // suffix differs from prefix only then
		sets = append(sets, suffix)
	}
	if t > 1 && n > t {
		sets = append(sets, straddle)
	}
	return sets
}

// MultiPartyTSpace is the strategy space for t-adversaries against an
// n-party protocol with the given number of message rounds.
func MultiPartyTSpace(n, t, rounds int) []core.NamedAdversary {
	var advs []core.NamedAdversary
	for si, set := range TSubsets(n, t) {
		tag := fmt.Sprintf("t%d-s%d", t, si)
		advs = append(advs,
			core.NamedAdversary{Name: "honest-" + tag, Adv: NewStatic(set...)},
			core.NamedAdversary{Name: "lock-abort-" + tag, Adv: NewLockAbort(set...)},
			core.NamedAdversary{Name: "setup-abort-" + tag, Adv: NewSetupAbort(set...)},
		)
		for r := 1; r <= rounds+1; r++ {
			advs = append(advs, core.NamedAdversary{
				Name: fmt.Sprintf("abort-r%d-%s", r, tag),
				Adv:  NewAbortAt(r, set...),
			})
		}
	}
	return advs
}

// MultiPartySpace is the union of the t-spaces for t = 1..n−1 plus the
// mixed Lemma 13 adversary.
func MultiPartySpace(n, rounds int) []core.NamedAdversary {
	advs := []core.NamedAdversary{
		{Name: "passive", Adv: sim.Passive{}},
		{Name: "allbut-mixer", Adv: NewAllButMixer(n)},
	}
	for t := 1; t < n; t++ {
		advs = append(advs, MultiPartyTSpace(n, t, rounds)...)
	}
	return advs
}
