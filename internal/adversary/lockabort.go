package adversary

import (
	"repro/internal/sim"
)

// LockAbort is the paper's proof adversary family A1/A2 (Lemma 7) and its
// multi-party generalization A_ī (Lemma 12): corrupt a fixed set, behave
// honestly, and in every round — *before* sending the round's messages —
// check whether the corrupted coalition already "holds the actual
// output", i.e. whether running the corrupted machines forward with every
// honest party silent (but the coalition still exchanging messages among
// itself) produces the true evaluation result. The moment the output is
// locked, record it and abort: the corrupted parties go silent.
//
// Two lock checks run each round, both on clones (the live machines are
// never disturbed):
//
//  1. delivered lock: feed the clones this round's delivered inboxes,
//     then play the coalition forward in isolation;
//  2. rushing lock: after the round is played honestly, additionally feed
//     the honest messages of the current round (already observed by the
//     rushing adversary) plus the coalition's own just-sent messages.
//
// A rushing lock also means the adversary learns the output, but the
// honest messages involved are already on the wire, so aborting cannot
// retract them — which is why those runs end in E11 rather than E10.
type LockAbort struct {
	Static
	aborted bool
	la      lookaheadScratch
}

// lookaheadScratch holds the buffers the two per-round lock checks churn
// through. They persist across Reset (the estimation arena reuses one
// strategy instance for every run) and are never shared: CloneAdversary
// rebuilds from configuration, so each worker's LockAbort owns its own.
type lookaheadScratch struct {
	clones   map[sim.PartyID]sim.Party
	seed     map[sim.PartyID][]sim.Message
	lanes    [2]map[sim.PartyID][]sim.Message
	produced []sim.Message
}

var _ sim.Adversary = (*LockAbort)(nil)

// NewLockAbort corrupts the given parties and plays lock-and-abort.
func NewLockAbort(targets ...sim.PartyID) *LockAbort {
	return &LockAbort{Static: Static{Targets: targets}}
}

// NewAllBut returns the Lemma 12 strategy A_ī for an n-party protocol:
// corrupt everyone except spared.
func NewAllBut(n int, spared sim.PartyID) *LockAbort {
	targets := make([]sim.PartyID, 0, n-1)
	for id := sim.PartyID(1); id <= sim.PartyID(n); id++ {
		if id != spared {
			targets = append(targets, id)
		}
	}
	return NewLockAbort(targets...)
}

// Reset implements sim.Adversary.
func (l *LockAbort) Reset(ctx *sim.AdvContext) {
	l.Static.Reset(ctx)
	l.aborted = false
}

// ObserveSetup implements sim.Adversary: setup is never aborted —
// aborting the hybrid can only yield γ00/γ01, never γ10 (the setup
// outputs reveal nothing before the reconstruction rounds).
func (l *LockAbort) ObserveSetup(map[sim.PartyID]sim.Value) bool { return false }

// Act implements sim.Adversary.
func (l *LockAbort) Act(round int, inboxes map[sim.PartyID][]sim.Message, rushed []sim.Message) []sim.Message {
	last := l.ctx.Protocol.NumRounds() + 1
	if l.aborted {
		return nil
	}

	// Delivered-lock check: would the coalition, after processing this
	// round's inboxes, reach the true output with all honest parties
	// silent?
	if v, ok := l.coalitionLookahead(round, inboxes, last, l.ctx.TrueOutput); ok {
		l.learnedVal, l.learnedOK = v, true
		l.aborted = true
		// Abort before sending this round's messages; still let the live
		// machines consume their inboxes so any later inspection starts
		// from a consistent state.
		l.consume(round, inboxes)
		return nil
	}

	// No delivered lock: compute the round honestly, but don't commit to
	// sending yet — the adversary is rushing, so it may inspect the
	// honest round-r messages first.
	out := l.stepHonest(round, inboxes)
	l.noteOutputs()

	// Rushing lock: if the already-observed honest messages of this
	// round lock the output for the coalition *without* our own round-r
	// messages, withhold them and abort — the honest sends cannot be
	// retracted, so we learn either way, and withholding denies the
	// honest parties whatever our messages would have given them. (This
	// is exactly the Lemma 10 attack on single-reconstruction-round
	// protocols.)
	if l.la.seed == nil {
		l.la.seed = make(map[sim.PartyID][]sim.Message, len(l.machines))
	}
	seed := routeInto(l.la.seed, l.machines, rushed)
	if v, ok := l.coalitionLookahead(round+1, seed, last, l.ctx.TrueOutput); ok {
		l.learnedVal, l.learnedOK = v, true
		l.aborted = true
		return nil
	}
	return out
}

// consume advances the live machines on their inboxes, discarding sends.
func (l *LockAbort) consume(round int, inboxes map[sim.PartyID][]sim.Message) {
	for _, id := range l.ids() {
		_, _ = l.machines[id].Round(round, inboxes[id])
	}
}

// routeInto builds per-machine inboxes from a message batch into dst,
// truncating its lanes in place: direct messages go to their corrupted
// recipient, broadcasts to every corrupted machine.
func routeInto(dst map[sim.PartyID][]sim.Message, machines map[sim.PartyID]sim.Party, msgs []sim.Message) map[sim.PartyID][]sim.Message {
	for id := range dst {
		dst[id] = dst[id][:0]
	}
	for _, m := range msgs {
		if m.To == sim.Broadcast {
			for id := range machines {
				dst[id] = append(dst[id], m)
			}
			continue
		}
		if _, ok := machines[m.To]; ok {
			dst[m.To] = append(dst[m.To], m)
		}
	}
	return dst
}

// coalitionLookahead clones every machine and plays the coalition forward
// from startRound through last, feeding seed as the startRound inboxes
// and thereafter delivering only intra-coalition messages (honest parties
// are silent). It reports whether any clone reaches the target output —
// Lemma 12's "some p_j would provide output if the execution continued
// without p_i" test, restricted to the *actual* output so that
// default-input fallbacks don't count (as in A1's check). seed is only
// read; the routed rounds double-buffer through the scratch lanes.
func (l *LockAbort) coalitionLookahead(startRound int,
	seed map[sim.PartyID][]sim.Message, last int, target sim.Value) (sim.Value, bool) {
	s := &l.la
	if s.clones == nil {
		s.clones = make(map[sim.PartyID]sim.Party, len(l.machines))
		s.lanes[0] = make(map[sim.PartyID][]sim.Message, len(l.machines))
		s.lanes[1] = make(map[sim.PartyID][]sim.Message, len(l.machines))
	}
	// Refresh the clone pool: machines implementing sim.PartyCopier are
	// overwritten in place (the estimation hot path — two lookaheads per
	// round would otherwise clone the whole coalition each), the rest
	// are cloned afresh. Stale entries for no-longer-held parties go.
	for id := range s.clones {
		if _, held := l.machines[id]; !held {
			delete(s.clones, id)
		}
	}
	for id, m := range l.machines {
		if c := s.clones[id]; c != nil {
			if cp, ok := c.(sim.PartyCopier); ok && cp.CopyFrom(m) {
				continue
			}
		}
		s.clones[id] = m.Clone()
	}
	inboxes := seed
	lane := 0
	for r := startRound; r <= last; r++ {
		s.produced = s.produced[:0]
		for id, c := range s.clones {
			msgs, err := c.Round(r, inboxes[id])
			if err != nil {
				continue
			}
			for _, m := range msgs {
				m.From = id
				s.produced = append(s.produced, m)
			}
		}
		for _, c := range s.clones {
			if v, ok := c.Output(); ok && sim.ValuesEqual(v, target) {
				return v, true
			}
		}
		inboxes = routeInto(s.lanes[lane], s.clones, s.produced)
		lane = 1 - lane
	}
	return nil, false
}

// Mixer draws one sub-strategy uniformly at random per run: the paper's
// Agen (Theorem 4) is Mixer{A1, A2}, and the Lemma 13 multi-party
// adversary is Mixer{A_1̄, …, A_n̄}.
type Mixer struct {
	// Strategies is the pool to draw from.
	Strategies []sim.Adversary
	active     sim.Adversary
}

var _ sim.Adversary = (*Mixer)(nil)

// NewMixer builds a uniform mixture.
func NewMixer(strategies ...sim.Adversary) *Mixer {
	return &Mixer{Strategies: strategies}
}

// NewAgen is the Theorem 4 adversary for two-party protocols: corrupt p1
// or p2 uniformly at random and play lock-and-abort.
func NewAgen() *Mixer {
	return NewMixer(NewLockAbort(1), NewLockAbort(2))
}

// NewAllButMixer is the Lemma 13 adversary: pick i uniformly and corrupt
// everyone else.
func NewAllButMixer(n int) *Mixer {
	strategies := make([]sim.Adversary, n)
	for i := 0; i < n; i++ {
		strategies[i] = NewAllBut(n, sim.PartyID(i+1))
	}
	return NewMixer(strategies...)
}

// Reset implements sim.Adversary: picks this run's strategy.
func (m *Mixer) Reset(ctx *sim.AdvContext) {
	m.active = m.Strategies[ctx.RNG.Intn(len(m.Strategies))]
	m.active.Reset(ctx)
}

// InitialCorruptions implements sim.Adversary.
func (m *Mixer) InitialCorruptions() []sim.PartyID { return m.active.InitialCorruptions() }

// SubstituteInput implements sim.Adversary.
func (m *Mixer) SubstituteInput(id sim.PartyID, orig sim.Value) sim.Value {
	return m.active.SubstituteInput(id, orig)
}

// ObserveSetup implements sim.Adversary.
func (m *Mixer) ObserveSetup(outputs map[sim.PartyID]sim.Value) bool {
	return m.active.ObserveSetup(outputs)
}

// CorruptBefore implements sim.Adversary.
func (m *Mixer) CorruptBefore(round int) []sim.PartyID { return m.active.CorruptBefore(round) }

// OnCorrupt implements sim.Adversary.
func (m *Mixer) OnCorrupt(id sim.PartyID, p sim.Party, setupOut sim.Value) {
	m.active.OnCorrupt(id, p, setupOut)
}

// Act implements sim.Adversary.
func (m *Mixer) Act(round int, inboxes map[sim.PartyID][]sim.Message, rushed []sim.Message) []sim.Message {
	return m.active.Act(round, inboxes, rushed)
}

// Learned implements sim.Adversary.
func (m *Mixer) Learned() (sim.Value, bool) { return m.active.Learned() }
