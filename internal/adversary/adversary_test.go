package adversary

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// relayProtocol is a 3-party test protocol: party 1 holds the input;
// round 1 it sends the value to party 2; round 2 party 2 forwards it to
// party 3; round 3 party 3 broadcasts it; everyone outputs the broadcast
// value. The chain structure makes coalition effects observable.
type relayProtocol struct{}

func (relayProtocol) Name() string                                       { return "test-relay" }
func (relayProtocol) NumParties() int                                    { return 3 }
func (relayProtocol) NumRounds() int                                     { return 3 }
func (relayProtocol) DefaultInput(sim.PartyID) sim.Value                 { return uint64(0) }
func (relayProtocol) Func(in []sim.Value) sim.Value                      { return in[0] }
func (relayProtocol) Setup([]sim.Value, *rand.Rand) ([]sim.Value, error) { return nil, nil }

func (relayProtocol) NewParty(id sim.PartyID, input sim.Value, _ sim.Value, _ bool, _ *rand.Rand) (sim.Party, error) {
	v, _ := input.(uint64)
	return &relayParty{id: id, input: v}, nil
}

type relayParty struct {
	id     sim.PartyID
	input  uint64
	value  uint64
	have   bool
	result uint64
	done   bool
}

func (p *relayParty) Round(round int, inbox []sim.Message) ([]sim.Message, error) {
	recv := func() (uint64, bool) {
		for _, m := range inbox {
			if v, ok := m.Payload.(uint64); ok {
				return v, true
			}
		}
		return 0, false
	}
	switch {
	case round == 1 && p.id == 1:
		return []sim.Message{{From: 1, To: 2, Payload: p.input}}, nil
	case round == 2 && p.id == 2:
		if v, ok := recv(); ok {
			p.value, p.have = v, true
			return []sim.Message{{From: 2, To: 3, Payload: v}}, nil
		}
	case round == 3 && p.id == 3:
		if v, ok := recv(); ok {
			p.value, p.have = v, true
			return []sim.Message{{From: 3, To: sim.Broadcast, Payload: v}}, nil
		}
	case round == 4:
		if v, ok := recv(); ok {
			p.result, p.done = v, true
		}
	}
	return nil, nil
}

func (p *relayParty) Output() (sim.Value, bool) {
	if !p.done {
		return nil, false
	}
	return p.result, true
}

func (p *relayParty) Clone() sim.Party { cp := *p; return &cp }

func inputs() []sim.Value { return []sim.Value{uint64(42), uint64(0), uint64(0)} }

func TestStaticRunsHonestly(t *testing.T) {
	adv := NewStatic(2)
	tr, err := sim.Run(relayProtocol{}, inputs(), adv, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.AllHonestDelivered() {
		t.Errorf("static adversary broke the honest run: %+v", tr.HonestOutputs)
	}
	// The corrupted machine eventually outputs, so the strategy learns.
	if !tr.AdvLearned {
		t.Error("honest-corrupt strategy should learn the output")
	}
}

func TestLockAbortOnChainMiddle(t *testing.T) {
	// Party 2 corrupted: after receiving the value in round 2, the
	// coalition "holds" it only if party 2's machine would output in
	// isolation — it would not (output comes from party 3's broadcast),
	// UNLESS the lookahead correctly simulates the coalition: with only
	// p2 corrupted, p2 alone never reaches an output, so no early lock;
	// the rushing lock fires once p3's broadcast is observed.
	adv := NewLockAbort(2)
	tr, err := sim.Run(relayProtocol{}, inputs(), adv, 2)
	if err != nil {
		t.Fatal(err)
	}
	// p2 relayed honestly (no lock before its send), so everyone got it.
	if !tr.AllHonestDelivered() {
		t.Errorf("outputs: %+v", tr.HonestOutputs)
	}
	if !tr.AdvLearned {
		t.Error("lock-abort should have learned via the broadcast")
	}
}

func TestLockAbortCoalitionChain(t *testing.T) {
	// Parties 2 AND 3 corrupted: after p1's round-1 send arrives at p2
	// (round 2), the coalition can finish alone (p2→p3→broadcast among
	// clones) — delivered lock fires and p1 never receives the output.
	adv := NewLockAbort(2, 3)
	tr, err := sim.Run(relayProtocol{}, inputs(), adv, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.AdvLearned {
		t.Fatal("coalition should lock the output")
	}
	if rec := tr.HonestOutputs[1]; rec.OK {
		t.Errorf("party 1 should have been denied the output, got %+v", rec)
	}
}

func TestNewAllBut(t *testing.T) {
	adv := NewAllBut(5, 3)
	got := adv.InitialCorruptions()
	want := []sim.PartyID{1, 2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("corruptions = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("corruptions = %v, want %v", got, want)
		}
	}
}

func TestMixerPicksUniformly(t *testing.T) {
	m := NewMixer(NewLockAbort(1), NewLockAbort(2), NewLockAbort(3))
	counts := map[sim.PartyID]int{}
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m.Reset(&sim.AdvContext{RNG: rng, Protocol: relayProtocol{}})
		ids := m.InitialCorruptions()
		if len(ids) != 1 {
			t.Fatalf("unexpected corruption set %v", ids)
		}
		counts[ids[0]]++
	}
	for id := sim.PartyID(1); id <= 3; id++ {
		if counts[id] < 60 {
			t.Errorf("strategy %d picked only %d/300 times", id, counts[id])
		}
	}
}

func TestAbortAtNeverAborts(t *testing.T) {
	// StopRound 0 = plain honest execution.
	adv := NewAbortAt(0, 2)
	tr, err := sim.Run(relayProtocol{}, inputs(), adv, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.AllHonestDelivered() {
		t.Error("non-aborting AbortAt should deliver")
	}
}

func TestAbortAtSilencesFromRound(t *testing.T) {
	// Party 2 silent from round 2: the relay chain is cut.
	adv := NewAbortAt(2, 2)
	tr, err := sim.Run(relayProtocol{}, inputs(), adv, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rec := tr.HonestOutputs[1]; rec.OK {
		t.Errorf("party 1 got %v despite the cut chain", rec.Value)
	}
	if rec := tr.HonestOutputs[3]; rec.OK {
		t.Errorf("party 3 got %v despite the cut chain", rec.Value)
	}
}

func TestSetupAbortStrategy(t *testing.T) {
	adv := NewSetupAbort(1)
	// relayProtocol has no hybrid, so the abort request is recorded but
	// the machines are unaffected except through the flag; the engine
	// still marks the setup aborted.
	tr, err := sim.Run(relayProtocol{}, inputs(), adv, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.SetupAborted {
		t.Error("setup abort not recorded")
	}
}

func TestInputSubstWrapper(t *testing.T) {
	adv := &InputSubst{Adversary: NewStatic(1), Value: uint64(7)}
	tr, err := sim.Run(relayProtocol{}, inputs(), adv, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.ValuesEqual(tr.EffectiveInputs[0], uint64(7)) {
		t.Errorf("effective input = %v, want 7", tr.EffectiveInputs[0])
	}
	if !sim.ValuesEqual(tr.ExpectedOutput, uint64(7)) {
		t.Errorf("expected output = %v, want 7", tr.ExpectedOutput)
	}
}

func TestTSubsets(t *testing.T) {
	sets := TSubsets(5, 2)
	if len(sets) != 3 {
		t.Fatalf("TSubsets(5,2) = %v", sets)
	}
	check := func(set []sim.PartyID, want ...sim.PartyID) {
		t.Helper()
		if len(set) != len(want) {
			t.Fatalf("set %v, want %v", set, want)
		}
		for i := range want {
			if set[i] != want[i] {
				t.Fatalf("set %v, want %v", set, want)
			}
		}
	}
	check(sets[0], 1, 2) // prefix
	check(sets[1], 4, 5) // suffix
	check(sets[2], 1, 5) // straddle
	// Full corruption minus nothing: only the prefix variant.
	if got := TSubsets(3, 3); len(got) != 1 {
		t.Errorf("TSubsets(3,3) = %v, want 1 set", got)
	}
	// Singletons: prefix {1} and suffix {n}.
	if got := TSubsets(4, 1); len(got) != 2 {
		t.Errorf("TSubsets(4,1) = %v, want 2 sets", got)
	}
}

func TestSpacesContainProofAdversaries(t *testing.T) {
	two := TwoPartySpace(2)
	names := map[string]bool{}
	for _, na := range two {
		if na.Adv == nil {
			t.Fatalf("nil adversary for %s", na.Name)
		}
		if names[na.Name] {
			t.Fatalf("duplicate strategy name %s", na.Name)
		}
		names[na.Name] = true
	}
	for _, want := range []string{"passive", "lock-abort-p1", "lock-abort-p2", "agen"} {
		if !names[want] {
			t.Errorf("two-party space missing %s", want)
		}
	}

	multi := MultiPartySpace(4, 1)
	mnames := map[string]bool{}
	for _, na := range multi {
		if mnames[na.Name] {
			t.Fatalf("duplicate strategy name %s", na.Name)
		}
		mnames[na.Name] = true
	}
	if !mnames["allbut-mixer"] {
		t.Error("multi-party space missing allbut-mixer")
	}
	// Per-t spaces present for every t.
	if !mnames["lock-abort-t1-s0"] || !mnames["lock-abort-t3-s0"] {
		t.Errorf("multi-party space missing per-t lock-aborts: %v", mnames)
	}
}

func TestRushedLearnWhileSilent(t *testing.T) {
	// An AbortAt adversary silent from round 1 still learns from the
	// rushed broadcast of round 3 (party 3 is honest and broadcasts).
	// Chain: abort at round 1 for corrupted p1 kills delivery of the
	// input... so use corrupted party 3 instead: silence from round 3
	// cuts the broadcast, but p3's machine HAS the value (received in
	// round 3 inbox) — lookahead learns it.
	adv := NewAbortAt(3, 3)
	tr, err := sim.Run(relayProtocol{}, inputs(), adv, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.AdvLearned {
		t.Error("silent party 3 should still learn from its inbox")
	}
	if rec := tr.HonestOutputs[1]; rec.OK {
		t.Error("party 1 should not receive the withheld broadcast")
	}
}

func TestLockAbortResetsBetweenRuns(t *testing.T) {
	adv := NewLockAbort(2, 3)
	for seed := int64(0); seed < 3; seed++ {
		tr, err := sim.Run(relayProtocol{}, inputs(), adv, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !tr.AdvLearned {
			t.Fatalf("seed %d: stale state broke the strategy", seed)
		}
	}
}
