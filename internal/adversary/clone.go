package adversary

import (
	"repro/internal/sim"
)

// Every strategy in this package implements sim.AdversaryCloner so the
// parallel estimator can give each worker its own copy. Clones are
// rebuilt from configuration alone (targets, stop rounds, wrapped
// sub-strategies) — never struct-copied, because the embedded driver's
// machine map and the learned-output caches are per-run mutable state
// that Reset re-initializes anyway.
var (
	_ sim.AdversaryCloner = (*Static)(nil)
	_ sim.AdversaryCloner = (*AbortAt)(nil)
	_ sim.AdversaryCloner = (*SetupAbort)(nil)
	_ sim.AdversaryCloner = (*LockAbort)(nil)
	_ sim.AdversaryCloner = (*Mixer)(nil)
	_ sim.AdversaryCloner = (*InputSubst)(nil)
	_ sim.AdversaryCloner = (*Factory)(nil)
)

// CloneAdversary implements sim.AdversaryCloner.
func (s *Static) CloneAdversary() sim.Adversary { return NewStatic(s.Targets...) }

// CloneAdversary implements sim.AdversaryCloner.
func (a *AbortAt) CloneAdversary() sim.Adversary {
	c := NewAbortAt(a.StopRound, a.Targets...)
	c.AbortSetup = a.AbortSetup
	return c
}

// CloneAdversary implements sim.AdversaryCloner.
func (s *SetupAbort) CloneAdversary() sim.Adversary { return NewSetupAbort(s.Targets...) }

// CloneAdversary implements sim.AdversaryCloner.
func (l *LockAbort) CloneAdversary() sim.Adversary { return NewLockAbort(l.Targets...) }

// CloneAdversary implements sim.AdversaryCloner. A mixture is cloneable
// exactly when every sub-strategy is.
func (m *Mixer) CloneAdversary() sim.Adversary {
	subs := make([]sim.Adversary, len(m.Strategies))
	for i, s := range m.Strategies {
		c, ok := sim.CloneAdversary(s)
		if !ok {
			return nil
		}
		subs[i] = c
	}
	return NewMixer(subs...)
}

// CloneAdversary implements sim.AdversaryCloner.
func (i *InputSubst) CloneAdversary() sim.Adversary {
	c, ok := sim.CloneAdversary(i.Adversary)
	if !ok {
		return nil
	}
	return &InputSubst{Adversary: c, Value: i.Value}
}

// Factory adapts an arbitrary construction function into a cloneable
// strategy: CloneAdversary invokes the function for a fresh instance.
// Use it to run ad-hoc stateful adversaries (e.g. from outside this
// package) on the parallel estimator without implementing
// sim.AdversaryCloner on the type itself.
type Factory struct {
	sim.Adversary
	fresh func() sim.Adversary
}

// NewFactory wraps fresh(), which must return a new independent strategy
// instance on every call. The returned Factory delegates to one instance
// and clones by calling fresh() again.
func NewFactory(fresh func() sim.Adversary) *Factory {
	return &Factory{Adversary: fresh(), fresh: fresh}
}

// CloneAdversary implements sim.AdversaryCloner.
func (f *Factory) CloneAdversary() sim.Adversary {
	return &Factory{Adversary: f.fresh(), fresh: f.fresh}
}
