// Package adversary is the attack-strategy library for the fairness
// experiments. It implements the proof adversaries of the paper —
// the one-sided lock-and-abort strategies A1/A2 (Lemma 7), their mixture
// Agen (Theorem 4), the multi-party A_ī (Lemma 12) and the pair
// Â_t/Ā_{n−t} (Lemma 15) — plus generic building blocks (static
// corruption with honest execution, abort-at-round sweeps, setup
// aborters) used to approximate sup_A u_A(Π, A) over a documented
// strategy space.
package adversary

import (
	"slices"

	"repro/internal/sim"
)

// driver manages the corrupted parties' machines, running them honestly
// on demand. Strategies embed it and decide when to stop. Its scratch
// buffers persist across Reset so a strategy reused by the estimation
// arena runs allocation-free in steady state; the slice stepHonest
// returns is valid only until the strategy's next Act.
type driver struct {
	ctx      *sim.AdvContext
	machines map[sim.PartyID]sim.Party

	idScratch  []sim.PartyID
	outScratch []sim.Message
}

func (d *driver) reset(ctx *sim.AdvContext) {
	d.ctx = ctx
	if d.machines == nil {
		d.machines = make(map[sim.PartyID]sim.Party)
	} else {
		clear(d.machines)
	}
}

func (d *driver) add(id sim.PartyID, m sim.Party) {
	if m != nil {
		d.machines[id] = m
	}
}

// ids returns the corrupted party IDs in deterministic order. The slice
// is driver-owned scratch, valid until the next ids call.
func (d *driver) ids() []sim.PartyID {
	out := d.idScratch[:0]
	for id := range d.machines {
		out = append(out, id)
	}
	slices.Sort(out)
	d.idScratch = out
	return out
}

// stepHonest advances every corrupted machine one round on its delivered
// inbox and returns their outgoing messages, exactly as honest execution
// would. The returned slice is driver-owned scratch.
func (d *driver) stepHonest(round int, inboxes map[sim.PartyID][]sim.Message) []sim.Message {
	out := d.outScratch[:0]
	for _, id := range d.ids() {
		msgs, err := d.machines[id].Round(round, inboxes[id])
		if err != nil {
			continue // a defective machine just goes silent
		}
		for _, m := range msgs {
			m.From = id
			out = append(out, m)
		}
	}
	d.outScratch = out
	return out
}

// lookahead plays a cloned machine forward assuming every *other* party
// goes silent: from round start..last it receives only its own broadcasts
// and self-addressed messages (a party always hears its own broadcast).
// It returns the machine's final output.
func lookahead(m sim.Party, id sim.PartyID, start, last int, pending []sim.Message) (sim.Value, bool) {
	clone := m.Clone()
	inbox := pending
	for r := start; r <= last; r++ {
		out, err := clone.Round(r, inbox)
		if err != nil {
			return nil, false
		}
		inbox = nil
		for _, msg := range out {
			if msg.To == sim.Broadcast || msg.To == id {
				msg.From = id
				inbox = append(inbox, msg)
			}
		}
	}
	return clone.Output()
}

// filterFor selects the messages addressed to id (directly or broadcast).
func filterFor(id sim.PartyID, msgs []sim.Message) []sim.Message {
	var out []sim.Message
	for _, m := range msgs {
		if m.To == id || m.To == sim.Broadcast {
			out = append(out, m)
		}
	}
	return out
}
