// Package adversary is the attack-strategy library for the fairness
// experiments. It implements the proof adversaries of the paper —
// the one-sided lock-and-abort strategies A1/A2 (Lemma 7), their mixture
// Agen (Theorem 4), the multi-party A_ī (Lemma 12) and the pair
// Â_t/Ā_{n−t} (Lemma 15) — plus generic building blocks (static
// corruption with honest execution, abort-at-round sweeps, setup
// aborters) used to approximate sup_A u_A(Π, A) over a documented
// strategy space.
package adversary

import (
	"sort"

	"repro/internal/sim"
)

// driver manages the corrupted parties' machines, running them honestly
// on demand. Strategies embed it and decide when to stop.
type driver struct {
	ctx      *sim.AdvContext
	machines map[sim.PartyID]sim.Party
}

func (d *driver) reset(ctx *sim.AdvContext) {
	d.ctx = ctx
	d.machines = make(map[sim.PartyID]sim.Party)
}

func (d *driver) add(id sim.PartyID, m sim.Party) {
	if m != nil {
		d.machines[id] = m
	}
}

// ids returns the corrupted party IDs in deterministic order.
func (d *driver) ids() []sim.PartyID {
	out := make([]sim.PartyID, 0, len(d.machines))
	for id := range d.machines {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// stepHonest advances every corrupted machine one round on its delivered
// inbox and returns their outgoing messages, exactly as honest execution
// would.
func (d *driver) stepHonest(round int, inboxes map[sim.PartyID][]sim.Message) []sim.Message {
	var out []sim.Message
	for _, id := range d.ids() {
		msgs, err := d.machines[id].Round(round, inboxes[id])
		if err != nil {
			continue // a defective machine just goes silent
		}
		for _, m := range msgs {
			m.From = id
			out = append(out, m)
		}
	}
	return out
}

// lookahead plays a cloned machine forward assuming every *other* party
// goes silent: from round start..last it receives only its own broadcasts
// and self-addressed messages (a party always hears its own broadcast).
// It returns the machine's final output.
func lookahead(m sim.Party, id sim.PartyID, start, last int, pending []sim.Message) (sim.Value, bool) {
	clone := m.Clone()
	inbox := pending
	for r := start; r <= last; r++ {
		out, err := clone.Round(r, inbox)
		if err != nil {
			return nil, false
		}
		inbox = nil
		for _, msg := range out {
			if msg.To == sim.Broadcast || msg.To == id {
				msg.From = id
				inbox = append(inbox, msg)
			}
		}
	}
	return clone.Output()
}

// filterFor selects the messages addressed to id (directly or broadcast).
func filterFor(id sim.PartyID, msgs []sim.Message) []sim.Message {
	var out []sim.Message
	for _, m := range msgs {
		if m.To == id || m.To == sim.Broadcast {
			out = append(out, m)
		}
	}
	return out
}
