package service

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// newTestPool builds a small pool with caching on.
func newTestPool(t *testing.T, workers int) *Pool {
	t.Helper()
	p := New(Config{Workers: workers, CacheSize: 64, Parallelism: 2})
	t.Cleanup(p.Close)
	return p
}

// tinySweepSpec is a fast single-family sweep for job tests.
func tinySweepSpec() sweep.Spec {
	spec := sweep.DefaultSpec()
	spec.Families = []string{"pi1"}
	spec.Gammas = sweep.StandardGammas()[:1]
	spec.Ns = []int{2}
	spec.Costs = []string{"zero"}
	spec.AbortSweep = false
	spec.Runs = 60
	spec.Seed = 7
	return spec
}

// TestEstimateMatchesCore pins the service determinism contract: an
// estimate job — fresh and cache-hit — returns the very bits a direct
// core.EstimateUtility call computes for the same (params, seed).
func TestEstimateMatchesCore(t *testing.T) {
	params := EstimateParams{Proto: "2sfe-opt", Adv: "lock-abort:1", Runs: 150, Seed: 42}
	proto, sampler, err := BuildProtocol(params.Proto)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := BuildAdversary(params.Adv, proto.NumParties())
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.EstimateUtility(proto, adv, core.StandardPayoff(), sampler, params.Runs, params.Seed)
	if err != nil {
		t.Fatal(err)
	}

	p := newTestPool(t, 2)
	for round, wantHit := range []bool{false, true} {
		j, err := p.Submit(params)
		if err != nil {
			t.Fatal(err)
		}
		res, err := j.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheHit != wantHit {
			t.Fatalf("round %d: CacheHit = %v, want %v", round, res.CacheHit, wantHit)
		}
		if !reflect.DeepEqual(*res.Estimate, want) {
			t.Fatalf("round %d: service report %+v != core report %+v", round, *res.Estimate, want)
		}
		wantJSON, _ := json.Marshal(want)
		gotJSON, _ := json.Marshal(res.Estimate)
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("round %d: JSON bodies differ:\n got %s\nwant %s", round, gotJSON, wantJSON)
		}
		if wantHit && res.Metrics != (sim.Metrics{}) {
			t.Fatalf("cache hit carried job metrics %+v, want zero", res.Metrics)
		}
	}
	st := p.Stats()
	if st.Submitted != 2 || st.Completed != 2 || st.CacheHits != 1 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want 2 submitted / 2 completed / 1 hit / 0 failed", st)
	}
}

// TestCacheKeyExcludesScheduling: parallelism is scheduling-only, so a
// resubmission at a different parallelism must hit the cache.
func TestCacheKeyExcludesScheduling(t *testing.T) {
	p := newTestPool(t, 2)
	params := EstimateParams{Proto: "pi2", Adv: "agen", Runs: 100, Seed: 5}
	j1, err := p.Submit(params, WithJobParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := j1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := p.Submit(params, WithJobParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := j2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("different parallelism missed the cache; scheduling leaked into the key")
	}
	if !reflect.DeepEqual(r1.Estimate, r2.Estimate) {
		t.Fatalf("cached report differs: %+v vs %+v", r1.Estimate, r2.Estimate)
	}
	if r1.Key == 0 || r1.Key != r2.Key {
		t.Fatalf("keys differ: %x vs %x", r1.Key, r2.Key)
	}
}

// TestSupJob checks a sup job against a direct core.SupUtility call.
func TestSupJob(t *testing.T) {
	params := SupParams{Proto: "2sfe-opt", Advs: []string{"passive", "lock-abort:1", "agen"}, Runs: 80, Seed: 9}
	proto, sampler, err := BuildProtocol(params.Proto)
	if err != nil {
		t.Fatal(err)
	}
	advs := make([]core.NamedAdversary, len(params.Advs))
	for i, name := range params.Advs {
		a, err := BuildAdversary(name, proto.NumParties())
		if err != nil {
			t.Fatal(err)
		}
		advs[i] = core.NamedAdversary{Name: name, Adv: a}
	}
	want, err := core.SupUtility(proto, advs, core.StandardPayoff(), sampler, params.Runs, params.Seed)
	if err != nil {
		t.Fatal(err)
	}

	p := newTestPool(t, 2)
	j, err := p.Submit(params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res.Sup, want) {
		t.Fatalf("sup job %+v != core %+v", *res.Sup, want)
	}
	if j2, _ := p.Submit(params); j2 != nil {
		if r2, err := j2.Wait(); err != nil || !r2.CacheHit {
			t.Fatalf("sup resubmission: hit=%v err=%v", r2.CacheHit, err)
		}
	}
}

// TestSweepJob checks a sweep job reproduces sweep.Run exactly.
func TestSweepJob(t *testing.T) {
	spec := tinySweepSpec()
	want, err := sweep.Run(spec, "", nil)
	if err != nil {
		t.Fatal(err)
	}

	p := newTestPool(t, 1)
	var seen int
	j, err := p.Submit(SweepParams{Spec: spec}, WithProgress(func(done, total int, rec sweep.Record, resumed bool) {
		seen++
	}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Breached {
		t.Fatal("tiny sweep breached unexpectedly")
	}
	if !reflect.DeepEqual(res.Sweep.Records, want.Records) {
		t.Fatalf("sweep job records differ from direct sweep.Run")
	}
	if seen != len(want.Records) {
		t.Fatalf("progress saw %d records, want %d", seen, len(want.Records))
	}

	// A progress callback is execution-local: the resubmission must
	// re-execute (no cache read) yet produce identical records.
	seen = 0
	j2, err := p.Submit(SweepParams{Spec: spec}, WithProgress(func(int, int, sweep.Record, bool) { seen++ }))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := j2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if r2.CacheHit {
		t.Fatal("job with progress callback was served from cache; side effects were skipped")
	}
	if seen != len(want.Records) {
		t.Fatalf("resubmitted progress saw %d records, want %d", seen, len(want.Records))
	}

	// Without local options the third submission is free.
	j3, err := p.Submit(SweepParams{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := j3.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !r3.CacheHit {
		t.Fatal("plain sweep resubmission missed the cache")
	}
	if !reflect.DeepEqual(r3.Sweep.Records, want.Records) {
		t.Fatal("cached sweep records differ")
	}
}

// TestExperimentJob checks an experiment job against a direct run.
func TestExperimentJob(t *testing.T) {
	cfg := experiments.QuickConfig()
	cfg.Runs = 80
	cfg.SupRuns = 40

	ecfg := cfg
	col := &experiments.MetricsCollector{}
	ecfg.Metrics = col
	want, err := experiments.All()[0].Run(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	want.Metrics = col.Total()

	p := newTestPool(t, 1)
	j, err := p.Submit(ExperimentParams{IDs: []string{"E01"}, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Experiments) != 1 {
		t.Fatalf("got %d experiment results, want 1", len(res.Experiments))
	}
	if !reflect.DeepEqual(res.Experiments[0], want) {
		t.Fatalf("experiment job result differs:\n got %+v\nwant %+v", res.Experiments[0], want)
	}
	if res.Metrics != want.Metrics {
		t.Fatalf("job metrics %+v != experiment metrics %+v", res.Metrics, want.Metrics)
	}
}

// TestValidation exercises Submit's eager rejection of malformed params.
func TestValidation(t *testing.T) {
	p := newTestPool(t, 1)
	cases := []Params{
		EstimateParams{Proto: "no-such-proto", Adv: "agen", Runs: 10, Seed: 1},
		EstimateParams{Proto: "pi1", Adv: "no-such-adv", Runs: 10, Seed: 1},
		EstimateParams{Proto: "pi1", Adv: "agen", Runs: 0, Seed: 1},
		SupParams{Proto: "pi1", Advs: nil, Runs: 10, Seed: 1},
		SupParams{Proto: "pi1", Advs: []string{"passive", "bogus"}, Runs: 10, Seed: 1},
		ExperimentParams{IDs: []string{"E99"}, Config: experiments.QuickConfig()},
		SweepParams{Spec: sweep.Spec{Families: []string{"no-such-family"}}},
	}
	for i, params := range cases {
		if _, err := p.Submit(params); err == nil {
			t.Errorf("case %d (%+v): Submit accepted invalid params", i, params)
		}
	}
	if st := p.Stats(); st.Submitted != 0 {
		t.Fatalf("invalid submissions counted: %+v", st)
	}
}

// TestPoolClose pins Submit-after-Close and double-Close behavior.
func TestPoolClose(t *testing.T) {
	p := New(Config{Workers: 1})
	p.Close()
	p.Close()
	if _, err := p.Submit(EstimateParams{Proto: "pi1", Adv: "agen", Runs: 10, Seed: 1}); err != ErrClosed {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
}
