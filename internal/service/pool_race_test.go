package service

import (
	"sync"
	"testing"

	"repro/internal/sim"
)

// TestMixedJobsMetricsAggregation hammers the pool with concurrent
// estimate, sup, and sweep jobs — including deliberate repeats that
// exercise the cache-hit fast path — and asserts the pool's merged
// metrics equal the sum of every job's own metrics, and the counters
// add up. Run under -race this doubles as the service layer's
// concurrency test (CI runs ./internal/service in the race matrix).
func TestMixedJobsMetricsAggregation(t *testing.T) {
	p := New(Config{Workers: 4, CacheSize: 32, Parallelism: 2})
	defer p.Close()

	type submission struct {
		params Params
	}
	var subs []submission
	// A mix of distinct parameter points plus repeats of each; repeats
	// race each other to the cache, so both fresh and hit paths run.
	protoAdv := []struct{ proto, adv string }{
		{"pi1", "agen"},
		{"pi2", "lock-abort:1"},
		{"2sfe-opt", "lock-abort:2"},
		{"2sfe-oneround", "agen"},
		{"gk-pitilde", "passive"},
	}
	for _, pa := range protoAdv {
		for rep := 0; rep < 4; rep++ {
			subs = append(subs, submission{EstimateParams{
				Proto: pa.proto, Adv: pa.adv, Runs: 60, Seed: 11,
			}})
		}
	}
	for rep := 0; rep < 4; rep++ {
		subs = append(subs, submission{SupParams{
			Proto: "2sfe-opt", Advs: []string{"passive", "lock-abort:1"}, Runs: 40, Seed: 3,
		}})
	}
	spec := tinySweepSpec()
	for rep := 0; rep < 2; rep++ {
		subs = append(subs, submission{SweepParams{Spec: spec}})
	}

	var (
		mu       sync.Mutex
		sum      sim.Metrics
		hits     int64
		finished int64
	)
	var wg sync.WaitGroup
	for _, s := range subs {
		wg.Add(1)
		go func(params Params) {
			defer wg.Done()
			j, err := p.Submit(params)
			if err != nil {
				t.Errorf("Submit(%+v): %v", params, err)
				return
			}
			res, err := j.Wait()
			if err != nil {
				t.Errorf("Wait(%+v): %v", params, err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			finished++
			sum.Add(res.Metrics)
			if res.CacheHit {
				hits++
				if res.Metrics != (sim.Metrics{}) {
					t.Errorf("cache hit carried metrics %+v", res.Metrics)
				}
			}
		}(s.params)
	}
	wg.Wait()

	if got := p.Metrics(); got != sum {
		t.Fatalf("pool metrics %+v != sum of per-job metrics %+v", got, sum)
	}
	st := p.Stats()
	if st.Submitted != int64(len(subs)) {
		t.Fatalf("submitted %d, want %d", st.Submitted, len(subs))
	}
	if st.Completed+st.Failed != st.Submitted {
		t.Fatalf("completed %d + failed %d != submitted %d", st.Completed, st.Failed, st.Submitted)
	}
	if st.Failed != 0 {
		t.Fatalf("%d jobs failed", st.Failed)
	}
	if st.CacheHits != hits {
		t.Fatalf("pool counted %d cache hits, callers saw %d", st.CacheHits, hits)
	}
	if finished != int64(len(subs)) {
		t.Fatalf("finished %d, want %d", finished, len(subs))
	}

	// Determinism across the whole hammer: resubmitting any point now
	// must be a pure cache hit with the identical report.
	j, err := p.Submit(EstimateParams{Proto: "pi1", Adv: "agen", Runs: 60, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("post-hammer resubmission missed the cache")
	}
}
