package service

import "testing"

func TestBuildProtocolAll(t *testing.T) {
	names := []string{
		"pi1", "pi2", "2sfe-opt", "2sfe-fixed2", "2sfe-oneround",
		"nsfe-opt:3", "nsfe-gmw12:4", "nsfe-lemma18:4", "nsfe-hybrid:5",
		"gk-polydomain:2", "gk-polyrange:2", "gk-pitilde",
		"nsfe-opt", // default n
	}
	for _, name := range names {
		p, sampler, err := BuildProtocol(name)
		if err != nil {
			t.Errorf("BuildProtocol(%q): %v", name, err)
			continue
		}
		if p == nil || sampler == nil {
			t.Errorf("BuildProtocol(%q): nil result", name)
		}
	}
}

func TestBuildProtocolErrors(t *testing.T) {
	for _, name := range []string{"bogus", "nsfe-opt:x", "gk-polydomain:-1"} {
		if _, _, err := BuildProtocol(name); err == nil {
			t.Errorf("BuildProtocol(%q) succeeded", name)
		}
	}
}

func TestBuildAdversaryAll(t *testing.T) {
	names := []string{
		"passive", "agen", "allbut-mixer", "leak-extractor",
		"static:1", "lock-abort:1+2", "setup-abort:2", "abort:3:1+2",
	}
	for _, name := range names {
		adv, err := BuildAdversary(name, 3)
		if err != nil {
			t.Errorf("BuildAdversary(%q): %v", name, err)
			continue
		}
		if adv == nil {
			t.Errorf("BuildAdversary(%q): nil", name)
		}
	}
}

func TestBuildAdversaryErrors(t *testing.T) {
	for _, name := range []string{"bogus", "lock-abort", "lock-abort:x", "abort:1", "abort:x:1", "abort:1:y"} {
		if _, err := BuildAdversary(name, 3); err == nil {
			t.Errorf("BuildAdversary(%q) succeeded", name)
		}
	}
}
