package service

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/search"
)

// TestSearchJob pins the search job's determinism contract: a pool job
// — fresh and cache-hit, at any parallelism — returns the very report a
// direct search.Run call computes for the same (params, seed).
func TestSearchJob(t *testing.T) {
	params := SearchParams{
		Proto: "pi1", Space: SpaceRaw,
		Wave: 40, Growth: 2, RaceRuns: 200, FinalRuns: 400, Seed: 11,
	}
	proto, sampler, err := BuildProtocol(params.Proto)
	if err != nil {
		t.Fatal(err)
	}
	space, err := BuildSpace(params.Space, params.Proto)
	if err != nil {
		t.Fatal(err)
	}
	want, err := search.Run(proto, space, DefaultPayoff(params.Proto), sampler, params.Seed, params.Options())
	if err != nil {
		t.Fatal(err)
	}

	p := newTestPool(t, 2)
	j, err := p.Submit(params, WithJobParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Search == nil {
		t.Fatal("search job returned no report")
	}
	if res.Search.Best != want.Best || !reflect.DeepEqual(res.Search.BestReport, want.BestReport) {
		t.Fatalf("service search best %q %+v != direct run %q %+v",
			res.Search.Best, res.Search.BestReport, want.Best, want.BestReport)
	}
	if res.Search.TotalRuns != want.TotalRuns || res.Search.Waves != want.Waves {
		t.Fatalf("schedule diverged: %d runs / %d waves vs %d / %d",
			res.Search.TotalRuns, res.Search.Waves, want.TotalRuns, want.Waves)
	}

	// Resubmission at a different parallelism must hit the cache:
	// scheduling knobs are excluded from the key by construction.
	j2, err := p.Submit(params, WithJobParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := j2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("search resubmission missed the cache")
	}
	if !reflect.DeepEqual(r2.Search, res.Search) {
		t.Fatalf("cached search report differs:\n got %+v\nwant %+v", r2.Search, res.Search)
	}
}

// TestSearchParamsKeyCoversKnobs: every result-changing knob must move
// the cache key; the statuses here are exactly the ones the racing
// engine's ParamString covers.
func TestSearchParamsKeyCoversKnobs(t *testing.T) {
	base := SearchParams{Proto: "pi1", RaceRuns: 200, FinalRuns: 400, Seed: 1}
	variants := []SearchParams{
		{Proto: "pi2", RaceRuns: 200, FinalRuns: 400, Seed: 1},
		{Proto: "pi1", RaceRuns: 300, FinalRuns: 400, Seed: 1},
		{Proto: "pi1", RaceRuns: 200, FinalRuns: 500, Seed: 1},
		{Proto: "pi1", RaceRuns: 200, FinalRuns: 400, Delta: 0.1, Seed: 1},
		{Proto: "pi1", RaceRuns: 200, FinalRuns: 400, MaxArms: 3, Seed: 1},
		{Proto: "pi1", RaceRuns: 200, FinalRuns: 400, Exhaustive: true, Seed: 1},
		{Proto: "pi1", Space: SpaceClassic, RaceRuns: 200, FinalRuns: 400, Seed: 1},
		{Proto: "pi1", Gamma: &[4]float64{0, 0, 1, 0}, RaceRuns: 200, FinalRuns: 400, Seed: 1},
	}
	ref := base.paramString()
	if ref == "" {
		t.Fatal("base paramString is empty")
	}
	for i, v := range variants {
		if s := v.paramString(); s == ref {
			t.Errorf("variant %d: paramString identical to base: %q", i, s)
		}
	}
}

// TestSearchParamsValidation rejects unresolvable names and malformed
// statistical knobs before any work is queued.
func TestSearchParamsValidation(t *testing.T) {
	cases := []struct {
		name string
		p    SearchParams
		want string
	}{
		{"unknown proto", SearchParams{Proto: "nope"}, "unknown"},
		{"unknown space", SearchParams{Proto: "pi1", Space: "fancy"}, "unknown strategy space"},
		{"raw space multi-party", SearchParams{Proto: "nsfe-opt:3", Space: SpaceRaw}, "two-party only"},
		{"negative knob", SearchParams{Proto: "pi1", RaceRuns: -1}, "negative"},
		{"delta too big", SearchParams{Proto: "pi1", Delta: 1}, "delta"},
		{"delta negative", SearchParams{Proto: "pi1", Delta: -0.1}, "delta"},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	ok := SearchParams{Proto: "pi1"}
	if err := ok.Validate(); err != nil {
		t.Errorf("default raw search on pi1 rejected: %v", err)
	}
	classic := SearchParams{Proto: "nsfe-opt:3", Space: SpaceClassic}
	if err := classic.Validate(); err != nil {
		t.Errorf("classic multi-party search rejected: %v", err)
	}
}

// TestBuildSpaceShapes pins the registry spaces' structure: raw carries
// the passive arm at index 0 and the first-hit arm only for the
// Gordon–Katz poly-domain protocols; classic adapts the curated slices.
func TestBuildSpaceShapes(t *testing.T) {
	raw, err := BuildSpace(SpaceRaw, "2sfe-opt")
	if err != nil {
		t.Fatal(err)
	}
	if raw.Len() == 0 || raw.At(0).Name != "passive" {
		t.Fatalf("raw space: len=%d first=%q, want passive at index 0", raw.Len(), raw.At(0).Name)
	}
	found := false
	gk, err := BuildSpace("", "gk-polydomain:2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < gk.Len(); i++ {
		if strings.HasPrefix(gk.At(i).Name, "hit-") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("gk-polydomain raw space is missing the first-hit arm")
	}
	for i := 0; i < raw.Len(); i++ {
		if strings.HasPrefix(raw.At(i).Name, "hit-") {
			t.Fatal("non-GK raw space unexpectedly carries a first-hit arm")
		}
	}
	classic, err := BuildSpace(SpaceClassic, "nsfe-opt:3")
	if err != nil {
		t.Fatal(err)
	}
	if classic.Len() == 0 {
		t.Fatal("classic multi-party space is empty")
	}
}
