package service

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/search"
	"repro/internal/sim"
	"repro/internal/sim/trace"
	"repro/internal/sweep"
)

// Config sizes a Pool.
type Config struct {
	// Workers is the number of concurrent job executors (0 = one per
	// CPU). Each estimate/sup job additionally fans out across the
	// estimator's own workers, so a small pool saturates the machine.
	Workers int
	// CacheSize is the LRU result-cache capacity in entries (0 selects
	// DefaultCacheSize, negative disables caching).
	CacheSize int
	// Parallelism is the default estimator worker count per job
	// (0 = one per CPU); WithJobParallelism overrides it per job.
	// Scheduling only — results are identical for every setting.
	Parallelism int
	// RetainJobs bounds how many completed jobs stay addressable by ID
	// (0 selects DefaultRetainJobs). The bound keeps an always-on
	// daemon's job table from growing without limit.
	RetainJobs int
}

// DefaultCacheSize is the result-cache capacity when Config.CacheSize
// is zero.
const DefaultCacheSize = 1024

// DefaultRetainJobs is the completed-job retention bound when
// Config.RetainJobs is zero.
const DefaultRetainJobs = 4096

// Stats are the pool's monotonic counters.
type Stats struct {
	// Submitted counts accepted jobs, including cache hits.
	Submitted int64
	// Completed counts jobs that finished successfully (cache hits
	// included); Failed counts jobs whose execution returned an error.
	Completed, Failed int64
	// CacheHits counts submissions served from the result cache.
	CacheHits int64
	// CacheEntries is the current result-cache population.
	CacheEntries int64
}

// Job is a submitted unit of work. Wait blocks until it completes.
type Job struct {
	// ID is the pool-unique job identifier, assigned at Submit.
	ID uint64
	// Kind echoes the parameter kind.
	Kind Kind

	params Params
	opts   jobOptions

	done   chan struct{}
	result *Result
	err    error
}

// Done returns a channel closed when the job has completed.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job completes and returns its result.
func (j *Job) Wait() (*Result, error) {
	<-j.done
	return j.result, j.err
}

// Finished reports completion without blocking.
func (j *Job) Finished() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// Pool executes jobs on a bounded set of workers, merges their engine
// metrics, and serves repeated cacheable submissions from an LRU result
// cache. Submit and the accessors are safe for concurrent use.
type Pool struct {
	workers     int
	parallelism int

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	cache    *lru
	inflight map[uint64]*Job // cache key → executing leader job
	jobs     map[uint64]*Job
	retired  []uint64 // completed job IDs in completion order, for pruning
	retain   int
	nextID   uint64
	stats    Stats
	metrics  sim.Metrics
	closed   bool
}

// New starts a pool. Close it to release the workers.
func New(cfg Config) *Pool {
	workers := cfg.Workers
	if workers <= 0 {
		workers = core.DefaultParallelism()
	}
	cacheSize := cfg.CacheSize
	if cacheSize == 0 {
		cacheSize = DefaultCacheSize
	}
	retain := cfg.RetainJobs
	if retain <= 0 {
		retain = DefaultRetainJobs
	}
	p := &Pool{
		workers:     workers,
		parallelism: cfg.Parallelism,
		queue:       make(chan *Job, 4*workers),
		cache:       newLRU(cacheSize),
		inflight:    make(map[uint64]*Job),
		jobs:        make(map[uint64]*Job),
		retain:      retain,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for j := range p.queue {
				p.execute(j)
			}
		}()
	}
	return p
}

// Close stops accepting jobs and waits for queued ones to finish.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.queue)
	p.wg.Wait()
}

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("service: pool is closed")

// cacheKey hashes a cacheable parameter set with the sweep's FNV-1a
// cell-key scheme. Returns 0, false for uncacheable jobs.
func cacheKey(params Params) (uint64, bool) {
	ps := params.paramString()
	if ps == "" {
		return 0, false
	}
	return sweep.KeyHash(ps, params.seed()), true
}

// Submit validates params and enqueues the job. A cacheable submission
// whose key is already resolved completes immediately with the cached
// result (CacheHit set, zero job metrics: no simulation ran). Submit
// blocks when every worker is busy and the queue is full.
func (p *Pool) Submit(params Params, opts ...JobOption) (*Job, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	var jo jobOptions
	jo.parallelism = p.parallelism
	for _, o := range opts {
		o(&jo)
	}
	key, cacheable := cacheKey(params)

	j := &Job{Kind: params.Kind(), params: params, opts: jo, done: make(chan struct{})}
	j.result = &Result{Kind: j.Kind, Key: key}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	p.nextID++
	j.ID = p.nextID
	p.jobs[j.ID] = j
	p.stats.Submitted++
	// Cache read, skipped for jobs with execution-local side effects
	// (trace sinks, checkpoints, progress callbacks must still run).
	if cacheable && !jo.local() {
		if cached, ok := p.cache.get(key); ok {
			j.result = hitResult(cached)
			p.stats.CacheHits++
			p.completeLocked(j)
			p.mu.Unlock()
			close(j.done)
			return j, nil
		}
		// Single-flight: a duplicate of an executing job follows its
		// leader instead of recomputing — a thundering herd of equal
		// requests costs one execution. Followers count as cache hits:
		// they run no simulation and alias the leader's result.
		if leader, ok := p.inflight[key]; ok {
			p.stats.CacheHits++
			p.mu.Unlock()
			go func() {
				<-leader.done
				p.mu.Lock()
				if leader.err != nil {
					j.err = leader.err
				} else {
					j.result = hitResult(leader.result)
				}
				p.completeLocked(j)
				p.mu.Unlock()
				close(j.done)
			}()
			return j, nil
		}
		p.inflight[key] = j
	}
	p.mu.Unlock()

	p.queue <- j
	return j, nil
}

// hitResult copies a completed result as a cache hit: same immutable
// report, zero job metrics (no simulation ran).
func hitResult(src *Result) *Result {
	hit := *src
	hit.CacheHit = true
	hit.Metrics = sim.Metrics{}
	return &hit
}

// Job returns a submitted job by ID while it is retained.
func (p *Pool) Job(id uint64) (*Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	return j, ok
}

// Metrics returns the engine metrics merged across every job this pool
// has executed (cache hits contribute nothing: they run no simulation).
func (p *Pool) Metrics() sim.Metrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.metrics
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.CacheEntries = int64(p.cache.len())
	return s
}

// completeLocked records a finished job and prunes retained ones.
// Callers hold p.mu and close j.done after unlocking.
func (p *Pool) completeLocked(j *Job) {
	if j.err != nil {
		p.stats.Failed++
	} else {
		p.stats.Completed++
	}
	p.retired = append(p.retired, j.ID)
	for len(p.retired) > p.retain {
		delete(p.jobs, p.retired[0])
		p.retired = p.retired[1:]
	}
}

// execute runs one job on a worker goroutine. A job whose context was
// canceled while it waited in the queue fails immediately without
// touching the engine, freeing the worker for live requests; canceled
// results are never cached (the err != nil path below skips the put).
func (p *Pool) execute(j *Job) {
	var res *Result
	var err error
	if ctx := j.opts.ctx; ctx != nil && ctx.Err() != nil {
		err = fmt.Errorf("service: job canceled before execution: %w", ctx.Err())
	} else {
		res, err = p.run(j)
	}

	p.mu.Lock()
	if err != nil {
		j.err = err
	} else {
		j.result = res
		p.metrics.Add(res.Metrics)
	}
	if key, cacheable := cacheKey(j.params); cacheable {
		if err == nil {
			p.cache.put(key, res)
		}
		if p.inflight[key] == j {
			delete(p.inflight, key)
		}
	}
	p.completeLocked(j)
	p.mu.Unlock()
	close(j.done)
}

// run dispatches on the job kind and produces its immutable result.
func (p *Pool) run(j *Job) (*Result, error) {
	key, _ := cacheKey(j.params)
	res := &Result{Kind: j.Kind, Key: key}
	switch params := j.params.(type) {
	case EstimateParams:
		proto, sampler, err := BuildProtocol(params.Proto)
		if err != nil {
			return nil, err
		}
		adv, err := BuildAdversary(params.Adv, proto.NumParties())
		if err != nil {
			return nil, err
		}
		opts := []core.Option{core.WithParallelism(j.opts.parallelism)}
		if sink := j.opts.traceSink; sink != nil {
			label := j.opts.traceLabel
			opts = append(opts, core.WithObserver(func(run int) sim.Observer {
				return sink.Recorder(trace.Meta{Strategy: label, Run: run})
			}))
		}
		rep, err := core.EstimateUtility(proto, adv, resolvePayoff(params.Gamma, params.Proto),
			sampler, params.Runs, params.Seed, opts...)
		if err != nil {
			return nil, err
		}
		res.Estimate = &rep
		res.Metrics = rep.Metrics

	case SupParams:
		proto, sampler, err := BuildProtocol(params.Proto)
		if err != nil {
			return nil, err
		}
		space := make(core.SliceSpace, len(params.Advs))
		for i, name := range params.Advs {
			adv, err := BuildAdversary(name, proto.NumParties())
			if err != nil {
				return nil, err
			}
			space[i] = core.NamedAdversary{Name: name, Adv: adv}
		}
		opts := []core.Option{core.WithParallelism(j.opts.parallelism)}
		if sink := j.opts.traceSink; sink != nil {
			opts = append(opts, core.WithSupObserver(func(strategy string, run int) sim.Observer {
				return sink.Recorder(trace.Meta{Strategy: strategy, Run: run})
			}))
		}
		rep, err := core.SupUtilitySpace(proto, space, resolvePayoff(params.Gamma, params.Proto),
			sampler, params.Runs, params.Seed, opts...)
		if err != nil {
			return nil, err
		}
		res.Sup = &rep
		res.Metrics = rep.Metrics

	case SearchParams:
		proto, sampler, err := BuildProtocol(params.Proto)
		if err != nil {
			return nil, err
		}
		space, err := BuildSpace(params.Space, params.Proto)
		if err != nil {
			return nil, err
		}
		ctx := j.opts.ctx
		if ctx == nil {
			ctx = context.Background()
		}
		o := params.Options()
		o.Parallelism = j.opts.parallelism
		o.Checkpoint = j.opts.checkpoint
		rep, err := search.RunContext(ctx, proto, space, resolvePayoff(params.Gamma, params.Proto),
			sampler, params.Seed, o)
		if err != nil {
			return nil, err
		}
		res.Search = rep
		res.Metrics = rep.Metrics

	case SweepParams:
		ctx := j.opts.ctx
		if ctx == nil {
			ctx = context.Background()
		}
		sum, err := sweep.RunContext(ctx, params.Spec, j.opts.checkpoint, j.opts.progress)
		switch {
		case err == nil:
		case errors.Is(err, sweep.ErrBreach):
			// A breach is a certified negative outcome, not a job
			// failure: the summary is complete and cacheable.
			res.Breached = true
		default:
			return nil, err
		}
		res.Sweep = sum

	case ExperimentParams:
		cfg := params.Config
		selected := map[string]bool{}
		for _, id := range params.IDs {
			selected[id] = true
		}
		for _, e := range experiments.All() {
			if len(selected) > 0 && !selected[e.ID] {
				continue
			}
			// A fresh collector per experiment, as the fairness command
			// has always printed per-experiment engine lines.
			ecfg := cfg
			col := &experiments.MetricsCollector{}
			ecfg.Metrics = col
			r, err := e.Run(ecfg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", e.ID, err)
			}
			r.Metrics = col.Total()
			res.Metrics.Add(r.Metrics)
			res.Experiments = append(res.Experiments, r)
		}

	default:
		return nil, fmt.Errorf("service: unknown params type %T", j.params)
	}
	return res, nil
}
